(* Deriving a test model from an RTL netlist, step by step.

   Run with:  dune exec examples/abstraction_pipeline.exe

   Shows the Section 6 guidelines on a small traffic-light controller:
   - removing datapath state and promoting its feedback to free inputs,
   - dropping unobservable logic (cone of influence),
   - re-encoding a one-hot register group in binary,
   - extracting the explicit machine and checking that the abstraction
     is an exact homomorphic quotient. *)

open Simcov_netlist

let ( !! ) = Expr.( !! )
let ( &&& ) = Expr.( &&& )
let ( ||| ) = Expr.( ||| )

(* A traffic-light controller: one-hot phase (green/yellow/red), a
   2-bit "vehicle counter" datapath that requests the phase change,
   and a debug shadow of the counter. *)
let build () =
  let open Circuit.Build in
  let ctx = create "traffic" in
  let tick = input ctx "tick" in
  let car = input ctx "car" in
  let green = reg ctx ~group:"phase" ~init:true "green" in
  let yellow = reg ctx ~group:"phase" "yellow" in
  let red = reg ctx ~group:"phase" "red" in
  let cnt = reg_vec ctx ~group:"datapath" "cnt" 2 in
  let shadow = reg_vec ctx ~group:"debug" "shadow" 2 in
  (* the counter counts cars; overflow requests the change *)
  let full = cnt.(0) &&& cnt.(1) in
  assign ctx cnt.(0) (Expr.mux car (!!(cnt.(0))) cnt.(0));
  assign ctx cnt.(1) (Expr.mux car (Expr.( ^^^ ) cnt.(1) cnt.(0)) cnt.(1));
  Array.iteri (fun k r -> assign ctx r cnt.(k)) shadow;
  (* phase rotation on tick, gated by the datapath request *)
  let advance = tick &&& (full ||| yellow ||| red) in
  assign ctx green (Expr.mux advance red green);
  assign ctx yellow (Expr.mux advance green yellow);
  assign ctx red (Expr.mux advance yellow red);
  output ctx "go" green;
  output ctx "stop" (red ||| yellow);
  finish ctx

let show label c = Format.printf "%-28s %a@." label Circuit.pp_stats c

let () =
  let c0 = build () in
  show "initial RTL:" c0;

  (* Step 1: abstract the datapath out — its feedback (the counter
     value) becomes free primary inputs, exactly like the paper's
     Processor Status Word treatment. *)
  let c1 = Simcov_abstraction.Netabs.free_group c0 "datapath" in
  show "datapath freed:" c1;

  (* Step 2: the debug shadow no longer influences anything
     observable; the cone-of-influence reduction removes it. *)
  let c2 = Simcov_abstraction.Netabs.cone_reduce c1 in
  show "cone reduced:" c2;

  (* Step 3: re-encode the one-hot phase in binary. *)
  let c3 = Simcov_abstraction.Netabs.onehot_to_binary c2 ~group:"phase" in
  show "one-hot -> binary:" c3;

  (* The abstract machine, explicitly. *)
  let m = Circuit.to_fsm c3 in
  Format.printf "explicit machine: %a@." Simcov_fsm.Fsm.pp m;

  (* The one-hot -> binary step is an exact re-encoding: the quotient
     by output-equivalence has the same behavior as the pre-step
     machine. Check by comparing simulations. *)
  let m2 = Circuit.to_fsm c2 in
  let rng = Simcov_util.Rng.create 5 in
  let agree = ref true in
  for _ = 1 to 200 do
    let word = List.init 20 (fun _ -> Simcov_util.Rng.int rng 16) in
    (* both machines share the input encoding (4 free+real inputs) *)
    if Simcov_fsm.Fsm.output_word m2 word <> Simcov_fsm.Fsm.output_word m word then
      agree := false
  done;
  Printf.printf "binary re-encoding preserves behavior on 200 random runs: %b\n" !agree;

  (* minimization tells us how much further state merging is possible *)
  let q, _ = Simcov_fsm.Fsm.minimize m in
  Format.printf "minimized: %a@." Simcov_fsm.Fsm.pp q;

  (* and the tour over the final model *)
  match Simcov_testgen.Tour.transition_tour m with
  | Some t ->
      Printf.printf "transition tour: %d inputs covering %d transitions\n"
        t.Simcov_testgen.Tour.length t.Simcov_testgen.Tour.n_transitions
  | None -> print_endline "model not strongly connected (tour by segments instead)"
