(* The second design class of the paper's Section 5: a fixed-program
   signal-processing ASIC.

   Run with:  dune exec examples/dsp_validation.exe

   "In the case of a fixed program processor (e.g. a signal processing
   ASIC) the input sequence is simply a sequence of data values."
   The device here is a saturating MAC unit whose pipelined
   implementation has a two-cycle multiplier: reads racing an in-flight
   MAC must stall or be served by the adder bypass, and clear must
   squash in-flight products — the same stall / forward / squash
   phenomena as the DLX case study, at a scale where every artifact is
   inspectable by eye. *)

open Simcov_dsp.Mac

let () =
  (* the behavioral specification *)
  let spec = Spec.create () in
  let responses = Spec.run spec [ Setc 3l; Mac 4l; Mac 5l; Read ] in
  Format.printf "spec: setc 3; mac 4; mac 5; read  =>  %a@."
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") pp_response)
    responses;

  (* the pipelined implementation agrees, stalling and forwarding as
     needed *)
  (match Validate.run [ Setc 3l; Mac 4l; Read; Mac 5l; Setc 7l; Read ] with
  | Validate.Pass n -> Printf.printf "pipeline matches on %d commands\n" n
  | Validate.Fail _ as f -> Format.printf "%a@." Validate.pp_outcome f);
  let p = Pipe.create () in
  let _ = Pipe.run p [ Setc 3l; Mac 4l; Read; Clear ] in
  let cycles, stalls, squashed = Pipe.stats p in
  Printf.printf "pipeline stats: %d cycles, %d stalls, %d squashed products\n" cycles
    stalls squashed;

  (* the control test model and its certificate *)
  let model = Simcov_fsm.Fsm.tabulate (Testmodel.build ()) in
  Format.printf "test model: %a@." Simcov_fsm.Fsm.pp model;
  let cert =
    match Simcov_core.Completeness.certify model with
    | Ok c -> c
    | Error _ -> failwith "certification failed"
  in
  Printf.printf "certificate: forall-%d-distinguishable; optimal tour %d transitions\n"
    cert.Simcov_core.Completeness.k cert.Simcov_core.Completeness.tour_length;

  (* the tour, concretized to a command stream, exposes every seeded bug *)
  let word = Simcov_core.Completeness.padded_tour model cert in
  let cmds = Testmodel.concretize word in
  Printf.printf "tour command stream (%d commands):\n  " (List.length cmds);
  List.iteri
    (fun k c ->
      if k < 14 then Format.printf "%a; " pp_cmd c
      else if k = 14 then print_string "...")
    cmds;
  print_newline ();
  List.iter
    (fun (name, detected) ->
      Printf.printf "  %-18s %s\n" name (if detected then "DETECTED" else "missed"))
    (Validate.bug_campaign cmds)
