(* Protocol conformance testing with transition tours.

   Run with:  dune exec examples/protocol_conformance.exe

   The paper's completeness argument descends from protocol
   conformance testing (Dahbura-Sabnani-Uyar): a transition tour
   catches all errors when every state can be told apart by what it
   answers. We model an alternating-bit-protocol sender in two
   flavors:

   - [abp_observable]: every response carries the sender's status word
     (sequence bit + waiting flag) — the protocol analogue of the
     paper's Requirement 5. Here the tour is a certified complete
     conformance test.
   - [abp_terse]: ignored acknowledgements are answered with a bare
     NAK that hides the state. ∀k-distinguishability fails for every
     k, and the tour misses injected errors. *)

open Simcov_fsm

(* ABP sender states: (seq bit, waiting-for-ack?) -> 4 states.
   Inputs: 0 = send-request, 1 = ack(0), 2 = ack(1). *)
let abp ~observable =
  let state seq waiting = (seq * 2) + if waiting then 1 else 0 in
  let seq_of s = s / 2 and waiting_of s = s mod 2 = 1 in
  let next s i =
    let seq = seq_of s and w = waiting_of s in
    match i with
    | 0 -> if w then s else state seq true (* transmit frame, start waiting *)
    | 1 -> if w && seq = 0 then state 1 false else s (* ack for bit 0 *)
    | _ -> if w && seq = 1 then state 0 false else s (* ack for bit 1 *)
  in
  let output s i =
    let seq = seq_of s and w = waiting_of s in
    let status = if observable then 100 + s else 0 in
    match i with
    | 0 -> status + if w then 20 + seq (* retransmit *) else 10 + seq (* frame(seq) *)
    | 1 -> status + if w && seq = 0 then 30 (* accept ack0 *) else 40 (* NAK *)
    | _ -> status + if w && seq = 1 then 31 (* accept ack1 *) else 40 (* NAK *)
  in
  Fsm.make ~n_states:4 ~n_inputs:3 ~next ~output
    ~state_name:(fun s ->
      Printf.sprintf "seq%d%s" (seq_of s) (if waiting_of s then "+wait" else ""))
    ~input_name:(fun i -> [| "send"; "ack0"; "ack1" |].(i))
    ()

let campaign m word =
  let faults =
    Simcov_coverage.Fault.all_transfer_faults m @ Simcov_coverage.Fault.all_output_faults m
  in
  Simcov_coverage.Detect.campaign m faults word

let () =
  let abp_observable = abp ~observable:true in
  let abp_terse = abp ~observable:false in
  Printf.printf "ABP sender: %d states, %d transitions\n"
    (Fsm.n_reachable abp_observable)
    (Fsm.n_transitions abp_observable);

  (* --- observable flavor: certified complete --- *)
  (match Fsm.min_forall_k abp_observable with
  | Some k -> Printf.printf "observable: forall-k-distinguishability at k = %d\n" k
  | None -> print_endline "observable: not distinguishable?!");
  let cert =
    match Simcov_core.Completeness.certify abp_observable with
    | Ok c -> c
    | Error _ -> failwith "certification failed"
  in
  let tour = Simcov_core.Completeness.padded_tour abp_observable cert in
  Printf.printf "observable: transition tour of %d inputs\n" (List.length tour);
  Printf.printf "  %s\n"
    (String.concat " " (List.map (fun i -> abp_observable.Fsm.input_name i) tour));
  let report = campaign abp_observable tour in
  Format.printf "observable: exhaustive fault campaign: %a@."
    Simcov_coverage.Detect.pp_report report;
  assert (Simcov_coverage.Detect.coverage_pct report = 100.0);
  print_endline "=> the tour is a complete conformance test (Theorem 1)";
  print_newline ();

  (* --- terse flavor: certification fails, and rightly so --- *)
  (match Fsm.min_forall_k ~bound:8 abp_terse with
  | Some k -> Printf.printf "terse: forall-k at k = %d?!\n" k
  | None ->
      print_endline
        "terse: no k makes all pairs forall-k-distinguishable (certification refused)");
  (match Simcov_core.Completeness.certify abp_terse with
  | Ok _ -> print_endline "terse: unexpectedly certified"
  | Error (Simcov_core.Completeness.Indistinguishable_pair (p, q)) ->
      Printf.printf "terse: certification fails on states %s / %s\n"
        (abp_terse.Fsm.state_name p) (abp_terse.Fsm.state_name q)
  | Error Simcov_core.Completeness.Not_strongly_connected ->
      print_endline "terse: not strongly connected");
  match Simcov_testgen.Tour.transition_tour abp_terse with
  | None -> print_endline "terse: no closed tour"
  | Some t ->
      let r = campaign abp_terse t.Simcov_testgen.Tour.word in
      Format.printf "terse: tour campaign: %a@." Simcov_coverage.Detect.pp_report r;
      if Simcov_coverage.Detect.coverage_pct r < 100.0 then
        print_endline "=> without observable status the tour is NOT complete"
