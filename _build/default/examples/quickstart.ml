(* Quickstart: the simulation-coverage methodology on a toy machine.

   Run with:  dune exec examples/quickstart.exe

   The flow is the paper's Figure 1 in miniature:
   1. define a test model (a Mealy machine),
   2. certify that a transition tour is a complete test set
      (∀k-distinguishability + strong connectivity, Theorem 1),
   3. generate the minimum-length tour (Chinese postman),
   4. inject an implementation error and expose it by simulating the
      tour on specification and implementation side by side. *)

open Simcov_fsm

let () =
  (* A tiny elevator controller: states = floors 0..2; inputs are
     "up", "down", "ring"; the output reports the floor reached, so
     every state responds distinctly to every input (the floor display
     is part of the response — Requirement 5). *)
  let floors = 3 in
  let model =
    Fsm.make ~n_states:floors ~n_inputs:3
      ~next:(fun s i ->
        match i with
        | 0 -> min (s + 1) (floors - 1) (* up *)
        | 1 -> max (s - 1) 0 (* down *)
        | _ -> s (* ring: stay *))
      ~output:(fun s i ->
        (* the position display shows the current floor alongside the
           action taken, so every response identifies the state —
           Requirement 5 in miniature *)
        (s * 4) + i)
      ~state_name:(fun s -> Printf.sprintf "floor%d" s)
      ~input_name:(fun i -> [| "up"; "down"; "ring" |].(i))
      ()
  in
  Printf.printf "model: %d states, %d transitions\n" (Fsm.n_reachable model)
    (Fsm.n_transitions model);

  (* 2. certify completeness *)
  (match Simcov_core.Completeness.certify model with
  | Ok cert ->
      Printf.printf
        "certificate: every state pair is forall-%d-distinguishable; optimal tour \
         has %d transitions\n"
        cert.Simcov_core.Completeness.k cert.Simcov_core.Completeness.tour_length
  | Error _ -> failwith "certification failed");

  (* 3. the tour *)
  let tour =
    match Simcov_testgen.Tour.transition_tour model with
    | Some t -> t
    | None -> failwith "no tour"
  in
  Printf.printf "tour inputs: %s\n"
    (String.concat " "
       (List.map (fun i -> model.Fsm.input_name i) tour.Simcov_testgen.Tour.word));

  (* 4. inject a transfer error: "up" from floor1 gets stuck at floor1 *)
  let fault =
    Simcov_coverage.Fault.Transfer { state = 1; input = 0; wrong_next = 1 }
  in
  let verdict =
    Simcov_coverage.Detect.run_verdict model fault tour.Simcov_testgen.Tour.word
  in
  Printf.printf "injected fault: %s\n"
    (Format.asprintf "%a" Simcov_coverage.Fault.pp fault);
  Printf.printf "tour exposes it: %b (excited at step %s, detected at step %s)\n"
    verdict.Simcov_coverage.Detect.detected
    (match verdict.Simcov_coverage.Detect.excite_step with
    | Some s -> string_of_int s
    | None -> "-")
    (match verdict.Simcov_coverage.Detect.detect_step with
    | Some s -> string_of_int s
    | None -> "-");

  (* every single transfer/output error is caught — Theorem 3 *)
  let rng = Simcov_util.Rng.create 7 in
  let report =
    match Simcov_core.Completeness.certify model with
    | Ok cert -> Simcov_core.Completeness.check_empirically rng model cert
    | Error _ -> assert false
  in
  Format.printf "fault campaign: %a@." Simcov_coverage.Detect.pp_report report
