(* The paper's case study, end to end: validate a 5-stage pipelined DLX
   implementation against its ISA specification using a transition tour
   of the derived control test model.

   Run with:  dune exec examples/dlx_validation.exe

   This is the headline experiment: under Requirements 1-5 the tour is
   a complete test set (Theorem 3); all seeded control bugs in the
   pipelined implementation (bypass, interlock, squash, ...) are
   exposed by the single tour-derived program. *)

let () =
  print_endline "=== full methodology on the default test model ===";
  let report = Simcov_core.Methodology.validate_dlx () in
  Format.printf "%a@." Simcov_core.Methodology.pp_run_report report;

  print_endline "";
  print_endline "=== Section 6.3 ablation: drop destination-register state ===";
  let ablation = Simcov_core.Methodology.ablation_dest_tracking () in
  Format.printf "%a@." Simcov_core.Methodology.pp_ablation_report ablation;

  print_endline "";
  print_endline "=== a look at the concretized tour program (first 24 lines) ===";
  let model = Simcov_dlx.Testmodel.build Simcov_dlx.Testmodel.default in
  (match Simcov_testgen.Tour.transition_tour model with
  | Some t ->
      let conc =
        Simcov_dlx.Testmodel.concretize Simcov_dlx.Testmodel.default
          t.Simcov_testgen.Tour.word
      in
      Array.iteri
        (fun k instr ->
          if k < 24 then Printf.printf "%4d: %s\n" k (Simcov_dlx.Isa.to_string instr))
        conc.Simcov_dlx.Testmodel.program
  | None -> ());

  print_endline "";
  print_endline "=== pipeline diagram for a load-use + branch snippet ===";
  (match
     Simcov_dlx.Isa.parse_program
       "addi r1, r0, 2\nlw r2, 0(r0)\nadd r3, r2, r1\nbnez r3, 1\nnop\nsw r3, 1(r0)"
   with
  | Ok p -> print_string (Simcov_dlx.Pipeline.trace (Simcov_dlx.Pipeline.create p))
  | Error e -> print_endline e);

  print_endline "";
  print_endline "=== how a single bug manifests ===";
  (* disable the load-use interlock and watch the first divergence *)
  let program =
    match
      Simcov_dlx.Isa.parse_program
        "addi r1, r0, 9\nsw r1, 0(r0)\nlw r2, 0(r0)\nadd r3, r2, r2\nsw r3, 1(r0)"
    with
    | Ok p -> p
    | Error e -> failwith e
  in
  let bugs = { Simcov_dlx.Pipeline.no_bugs with Simcov_dlx.Pipeline.no_load_interlock = true } in
  (match Simcov_dlx.Validate.run_program ~bugs program with
  | Simcov_dlx.Validate.Fail _ as f ->
      Format.printf "%a@." Simcov_dlx.Validate.pp_outcome f
  | Simcov_dlx.Validate.Pass _ -> print_endline "unexpectedly passed!")
