examples/quickstart.mli:
