examples/dlx_validation.ml: Array Format Printf Simcov_core Simcov_dlx Simcov_testgen
