examples/dsp_validation.mli:
