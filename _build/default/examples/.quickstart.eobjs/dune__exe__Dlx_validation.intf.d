examples/dlx_validation.mli:
