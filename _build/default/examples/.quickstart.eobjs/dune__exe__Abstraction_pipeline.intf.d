examples/abstraction_pipeline.mli:
