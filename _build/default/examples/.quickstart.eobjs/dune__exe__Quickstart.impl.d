examples/quickstart.ml: Array Format Fsm List Printf Simcov_core Simcov_coverage Simcov_fsm Simcov_testgen Simcov_util String
