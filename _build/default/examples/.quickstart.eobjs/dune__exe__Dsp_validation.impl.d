examples/dsp_validation.ml: Format List Pipe Printf Simcov_core Simcov_dsp Simcov_fsm Spec Testmodel Validate
