examples/abstraction_pipeline.ml: Array Circuit Expr Format List Printf Simcov_abstraction Simcov_fsm Simcov_netlist Simcov_testgen Simcov_util
