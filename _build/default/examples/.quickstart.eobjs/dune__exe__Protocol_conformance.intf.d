examples/protocol_conformance.mli:
