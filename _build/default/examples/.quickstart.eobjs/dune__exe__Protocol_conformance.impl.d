examples/protocol_conformance.ml: Array Format Fsm List Printf Simcov_core Simcov_coverage Simcov_fsm Simcov_testgen String
