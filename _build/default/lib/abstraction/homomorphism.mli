(** Homomorphic abstractions between explicit Mealy machines.

    Section 6.1 of the paper: "we use a homomorphic abstraction which
    is a many-to-one mapping A from states in the set Sc (concrete
    states) to states in the set Sa (abstract states) [...] this
    mapping preserves the transition relation."

    A mapping here also covers the input and output alphabets, since
    test models abstract instruction fields and merge output values.
    The quotient of a concrete machine may be nondeterministic (the
    paper notes the test model "may have non-deterministic outputs");
    {!quotient} reports the offending transitions so the caller can
    refine the state map — which is exactly the §6.3 "abstracting too
    much" loop. *)

open Simcov_fsm

type mapping = {
  n_abs_states : int;
  n_abs_inputs : int;
  state_map : int -> int;
  input_map : int -> int;
  output_map : int -> int;
}

type conflict = {
  abs_state : int;
  abs_input : int;
  first : int * int * int * int;  (** concrete (s, i, s', o) *)
  second : int * int * int * int;  (** concrete transition that disagrees *)
}

val quotient : Fsm.t -> mapping -> (Fsm.t, conflict) result
(** Build the abstract machine whose transitions are the images of the
    concrete machine's reachable transitions. [Error c] when two
    concrete transitions map to the same abstract (state, input) but
    disagree on the abstract (next, output) — the abstraction is not a
    function and must be refined. *)

val is_transition_preserving : Fsm.t -> Fsm.t -> mapping -> bool
(** Check that every reachable concrete transition [(s, i, s', o)] maps
    to an abstract transition: [abs] accepts [input_map i] in
    [state_map s], steps to [state_map s'] and outputs
    [output_map o]. This is the defining property of the abstraction
    (it holds by construction for {!quotient} results). *)

val identity_mapping : Fsm.t -> mapping

val compose : mapping -> mapping -> mapping
(** [compose outer inner] applies [inner] first. *)

val state_partition_by : Fsm.t -> (int -> 'a) -> mapping
(** Mapping that merges states with equal keys (inputs and outputs kept
    identical). Abstract state numbering follows first occurrence among
    [0 .. n_states - 1]. *)
