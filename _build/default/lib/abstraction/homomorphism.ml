open Simcov_fsm

type mapping = {
  n_abs_states : int;
  n_abs_inputs : int;
  state_map : int -> int;
  input_map : int -> int;
  output_map : int -> int;
}

type conflict = {
  abs_state : int;
  abs_input : int;
  first : int * int * int * int;
  second : int * int * int * int;
}

let quotient (m : Fsm.t) (a : mapping) =
  let tbl : (int * int, (int * int) * (int * int * int * int)) Hashtbl.t =
    Hashtbl.create 1024
  in
  let conflict = ref None in
  List.iter
    (fun (s, i, s', o) ->
      if !conflict = None then begin
        let key = (a.state_map s, a.input_map i) in
        let image = (a.state_map s', a.output_map o) in
        match Hashtbl.find_opt tbl key with
        | None -> Hashtbl.add tbl key (image, (s, i, s', o))
        | Some (image', witness) ->
            if image <> image' then
              conflict :=
                Some
                  {
                    abs_state = fst key;
                    abs_input = snd key;
                    first = witness;
                    second = (s, i, s', o);
                  }
      end)
    (Fsm.transitions m);
  match !conflict with
  | Some c -> Error c
  | None ->
      let abs =
        Fsm.make
          ~reset:(a.state_map m.Fsm.reset)
          ~valid:(fun s i -> Hashtbl.mem tbl (s, i))
          ~state_name:(fun s -> "a" ^ string_of_int s)
          ~n_states:a.n_abs_states ~n_inputs:a.n_abs_inputs
          ~next:(fun s i -> fst (fst (Hashtbl.find tbl (s, i))))
          ~output:(fun s i -> snd (fst (Hashtbl.find tbl (s, i))))
          ()
      in
      Ok abs

let is_transition_preserving (conc : Fsm.t) (abs : Fsm.t) (a : mapping) =
  List.for_all
    (fun (s, i, s', o) ->
      let sa = a.state_map s and ia = a.input_map i in
      abs.Fsm.valid sa ia
      && abs.Fsm.next sa ia = a.state_map s'
      && abs.Fsm.output sa ia = a.output_map o)
    (Fsm.transitions conc)

let identity_mapping (m : Fsm.t) =
  {
    n_abs_states = m.Fsm.n_states;
    n_abs_inputs = m.Fsm.n_inputs;
    state_map = Fun.id;
    input_map = Fun.id;
    output_map = Fun.id;
  }

let compose outer inner =
  {
    n_abs_states = outer.n_abs_states;
    n_abs_inputs = outer.n_abs_inputs;
    state_map = (fun s -> outer.state_map (inner.state_map s));
    input_map = (fun i -> outer.input_map (inner.input_map i));
    output_map = (fun o -> outer.output_map (inner.output_map o));
  }

let state_partition_by (m : Fsm.t) key =
  let classes = Hashtbl.create 64 in
  let assign = Array.make m.Fsm.n_states 0 in
  let count = ref 0 in
  for s = 0 to m.Fsm.n_states - 1 do
    let k = key s in
    match Hashtbl.find_opt classes k with
    | Some c -> assign.(s) <- c
    | None ->
        Hashtbl.add classes k !count;
        assign.(s) <- !count;
        incr count
  done;
  {
    n_abs_states = !count;
    n_abs_inputs = m.Fsm.n_inputs;
    state_map = (fun s -> assign.(s));
    input_map = Fun.id;
    output_map = Fun.id;
  }
