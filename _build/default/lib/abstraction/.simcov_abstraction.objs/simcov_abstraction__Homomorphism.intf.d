lib/abstraction/homomorphism.mli: Fsm Simcov_fsm
