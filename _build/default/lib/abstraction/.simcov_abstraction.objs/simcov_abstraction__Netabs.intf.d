lib/abstraction/netabs.mli: Circuit Simcov_netlist
