lib/abstraction/netabs.ml: Array Circuit Expr Fun Hashtbl Int List Map Option Printf Simcov_netlist
