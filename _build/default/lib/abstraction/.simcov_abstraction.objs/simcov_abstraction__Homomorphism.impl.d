lib/abstraction/homomorphism.ml: Array Fsm Fun Hashtbl List Simcov_fsm
