open Simcov_netlist

(* Rebuild a circuit keeping only registers in [keep] (a bool array
   indexed by old register index). References to removed registers are
   rewritten by [removed_ref], which receives the old index and must
   return an expression over NEW indices. Kept registers are
   re-indexed densely in order. *)
let rebuild (c : Circuit.t) ~keep ~removed_ref ~extra_inputs ~extra_regs =
  let n = Circuit.n_regs c in
  let new_index = Array.make n (-1) in
  let count = ref 0 in
  for r = 0 to n - 1 do
    if keep.(r) then begin
      new_index.(r) <- !count;
      incr count
    end
  done;
  let subst e =
    Expr.map_leaves ~input:Expr.input
      ~reg:(fun r -> if keep.(r) then Expr.reg new_index.(r) else removed_ref r)
      e
  in
  let kept_regs =
    Array.to_list c.Circuit.regs
    |> List.filteri (fun r _ -> keep.(r))
    |> List.map (fun (rg : Circuit.reg) -> { rg with Circuit.next = subst rg.Circuit.next })
  in
  let regs = Array.of_list (kept_regs @ extra_regs subst) in
  let outputs =
    Array.map
      (fun (o : Circuit.port) -> { o with Circuit.expr = subst o.Circuit.expr })
      c.Circuit.outputs
  in
  {
    c with
    Circuit.input_names = Array.append c.Circuit.input_names (Array.of_list extra_inputs);
    regs;
    outputs;
    input_constraint = subst c.Circuit.input_constraint;
  }

let free_regs (c : Circuit.t) to_remove =
  let n = Circuit.n_regs c in
  let keep = Array.make n true in
  List.iter (fun r -> keep.(r) <- false) to_remove;
  (* one fresh input per removed register, in index order *)
  let removed_sorted = List.sort_uniq Int.compare to_remove in
  let base = Circuit.n_inputs c in
  let input_of_removed = Hashtbl.create 8 in
  List.iteri (fun k r -> Hashtbl.add input_of_removed r (base + k)) removed_sorted;
  let extra_inputs =
    List.map (fun r -> "free_" ^ c.Circuit.regs.(r).Circuit.name) removed_sorted
  in
  rebuild c ~keep
    ~removed_ref:(fun r -> Expr.input (Hashtbl.find input_of_removed r))
    ~extra_inputs
    ~extra_regs:(fun _ -> [])

let free_group c group = free_regs c (Circuit.regs_in_group c group)

let drop_outputs (c : Circuit.t) ~keep =
  {
    c with
    Circuit.outputs =
      Array.of_list
        (List.filter
           (fun (o : Circuit.port) -> keep o.Circuit.port_name)
           (Array.to_list c.Circuit.outputs));
  }

let cone_reduce (c : Circuit.t) =
  let cone = Circuit.output_cone c in
  let keep = Array.make (Circuit.n_regs c) false in
  List.iter (fun r -> keep.(r) <- true) cone;
  (* removed registers influence nothing observable; replacing any
     residual reference with a constant is sound because no such
     reference can exist (they are outside the closure). *)
  rebuild c ~keep
    ~removed_ref:(fun _ -> Expr.fls)
    ~extra_inputs:[]
    ~extra_regs:(fun _ -> [])

let remove_output_buffers (c : Circuit.t) =
  let n = Circuit.n_regs c in
  let read_by_state = Array.make n false in
  let mark e =
    let _, rs = Expr.support e in
    List.iter (fun r -> read_by_state.(r) <- true) rs
  in
  Array.iter (fun (r : Circuit.reg) -> mark r.Circuit.next) c.Circuit.regs;
  mark c.Circuit.input_constraint;
  let keep = Array.make n true in
  for r = 0 to n - 1 do
    if not read_by_state.(r) then begin
      (* read only by outputs (or dead): retime it away *)
      let _, own = Expr.support c.Circuit.regs.(r).Circuit.next in
      (* avoid removing a register whose next depends on itself: the
         rewiring below would lose the feedback *)
      if not (List.mem r own) then keep.(r) <- false
    end
  done;
  (* Rewire output references to the removed registers' next logic.
     The next logic refers to OLD indices; rebuild's [removed_ref]
     must return NEW-index expressions, so we substitute recursively.
     Removal candidates may read each other only through outputs
     (impossible: regs read regs via next logic only), so the next
     exprs of removed regs reference only kept regs or inputs — except
     chains reg_a -> reg_b where b is also removed. Handle chains by
     recursion with a visited set (cycles were excluded above only for
     self-loops, so guard generally). *)
  let module M = Map.Make (Int) in
  let memo = ref M.empty in
  let rec removed_ref ?(seen = []) r =
    match M.find_opt r !memo with
    | Some e -> e
    | None ->
        if List.mem r seen then
          invalid_arg "Netabs.remove_output_buffers: cyclic buffer chain"
        else begin
          let next = c.Circuit.regs.(r).Circuit.next in
          let e =
            Expr.map_leaves ~input:Expr.input
              ~reg:(fun r' ->
                if keep.(r') then Expr.reg r' (* old index; rebuild re-substitutes *)
                else removed_ref ~seen:(r :: seen) r')
              next
          in
          memo := M.add r e !memo;
          e
        end
  in
  (* First inline chains among removed regs (still in OLD indices),
     then let rebuild re-index kept references. *)
  let inlined = Array.make n Expr.fls in
  for r = 0 to n - 1 do
    if not keep.(r) then inlined.(r) <- removed_ref r
  done;
  (* rebuild with a removed_ref that maps old kept indices. *)
  let new_index = Array.make n (-1) in
  let count = ref 0 in
  for r = 0 to n - 1 do
    if keep.(r) then begin
      new_index.(r) <- !count;
      incr count
    end
  done;
  rebuild c ~keep
    ~removed_ref:(fun r ->
      Expr.map_leaves ~input:Expr.input
        ~reg:(fun r' ->
          assert keep.(r');
          Expr.reg new_index.(r'))
        inlined.(r))
    ~extra_inputs:[]
    ~extra_regs:(fun _ -> [])

let onehot_to_binary (c : Circuit.t) ~group =
  let members = Circuit.regs_in_group c group in
  let m = List.length members in
  if m < 2 then invalid_arg "Netabs.onehot_to_binary: group too small";
  let width =
    let rec bits k acc = if k <= 1 then acc else bits ((k + 1) / 2) (acc + 1) in
    bits m 0
  in
  let pos_of = Hashtbl.create m in
  List.iteri (fun k r -> Hashtbl.add pos_of r k) members;
  let n = Circuit.n_regs c in
  let keep = Array.make n true in
  List.iter (fun r -> keep.(r) <- false) members;
  let n_kept = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 keep in
  (* binary registers appended after the kept ones *)
  let bin_vec = Array.init width (fun j -> Expr.reg (n_kept + j)) in
  let init_code =
    let rec find k = function
      | [] -> 0
      | r :: rest -> if c.Circuit.regs.(r).Circuit.init then k else find (k + 1) rest
    in
    find 0 members
  in
  let extra_regs subst =
    List.init width (fun j ->
        (* bit j of the next one-hot position: OR of old next functions
           of members whose position has bit j set, with leaves
           substituted into the new index space *)
        let next =
          Expr.disj
            (List.filteri (fun k _ -> (k lsr j) land 1 = 1) members
            |> List.map (fun r -> subst c.Circuit.regs.(r).Circuit.next))
        in
        {
          Circuit.name = Printf.sprintf "%s_bin[%d]" group j;
          group;
          init = (init_code lsr j) land 1 = 1;
          next;
        })
  in
  rebuild c ~keep
    ~removed_ref:(fun r -> Expr.Vec.decode bin_vec (Hashtbl.find pos_of r))
    ~extra_inputs:[] ~extra_regs

let tie_inputs (c : Circuit.t) bindings =
  let n = Circuit.n_inputs c in
  let value = Array.make n None in
  List.iter
    (fun (name, b) ->
      Array.iteri
        (fun i iname -> if iname = name then value.(i) <- Some b)
        c.Circuit.input_names)
    bindings;
  let new_index = Array.make n (-1) in
  let kept = ref [] in
  let count = ref 0 in
  for i = 0 to n - 1 do
    if value.(i) = None then begin
      new_index.(i) <- !count;
      kept := c.Circuit.input_names.(i) :: !kept;
      incr count
    end
  done;
  let subst e =
    Expr.map_leaves
      ~input:(fun i ->
        match value.(i) with Some b -> Expr.const b | None -> Expr.input new_index.(i))
      ~reg:Expr.reg e
  in
  {
    c with
    Circuit.input_names = Array.of_list (List.rev !kept);
    regs =
      Array.map (fun (r : Circuit.reg) -> { r with Circuit.next = subst r.Circuit.next }) c.Circuit.regs;
    outputs =
      Array.map (fun (o : Circuit.port) -> { o with Circuit.expr = subst o.Circuit.expr }) c.Circuit.outputs;
    input_constraint = subst c.Circuit.input_constraint;
  }

let constant_reg_elim (c : Circuit.t) =
  let n = Circuit.n_regs c in
  (* known.(r) = Some b when register r provably always holds b *)
  let known = Array.make n None in
  let subst_known e =
    Expr.map_leaves ~input:Expr.input
      ~reg:(fun r -> match known.(r) with Some b -> Expr.const b | None -> Expr.reg r)
      e
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for r = 0 to n - 1 do
      if known.(r) = None then begin
        let init = c.Circuit.regs.(r).Circuit.init in
        (* substitute known constants and, inductively, r's own initial
           value (catches hold-loops like [mux stall r const]) *)
        let next =
          Expr.map_leaves ~input:Expr.input
            ~reg:(fun r' ->
              if r' = r then Expr.const init
              else
                match known.(r') with
                | Some b -> Expr.const b
                | None -> Expr.reg r')
            (subst_known c.Circuit.regs.(r).Circuit.next)
        in
        match next with
        | Expr.Const b when b = init ->
            known.(r) <- Some b;
            changed := true
        | _ -> ()
      end
    done
  done;
  let keep = Array.map (fun k -> k = None) known in
  if Array.for_all Fun.id keep then c
  else
    rebuild c ~keep
      ~removed_ref:(fun r -> Expr.const (Option.get known.(r)))
      ~extra_inputs:[]
      ~extra_regs:(fun _ -> [])

type step = { label : string; pass : Circuit.t -> Circuit.t }

type trace_entry = {
  step_label : string;
  regs_before : int;
  regs_after : int;
  inputs_after : int;
  outputs_after : int;
  gates_after : int;
}

let run_sequence c steps =
  let trace = ref [] in
  let final =
    List.fold_left
      (fun acc { label; pass } ->
        let before = Circuit.n_regs acc in
        let next = pass acc in
        trace :=
          {
            step_label = label;
            regs_before = before;
            regs_after = Circuit.n_regs next;
            inputs_after = Circuit.n_inputs next;
            outputs_after = Circuit.n_outputs next;
            gates_after = Circuit.gate_count next;
          }
          :: !trace;
        next)
      c steps
  in
  (final, List.rev !trace)
