(** State-variable abstraction passes over netlists.

    These implement the paper's test-model derivation guidelines
    (Section 6.1): "an abstraction over state variables can be
    implemented by removing certain state elements from the concrete
    model, and all of the logic associated with only that part — this
    is a simple topological operation. Any communication signals
    between the abstract model and the parts abstracted out are now
    considered as input/output signals for the abstract model."

    Each pass returns a new circuit; the original is untouched. The
    Figure 3(b) abstraction sequence for the DLX model is the
    composition of these passes (see {!Simcov_dlx.Testmodel}). *)

open Simcov_netlist

val free_regs : Circuit.t -> int list -> Circuit.t
(** Remove the given registers. Every remaining reference to a removed
    register becomes a fresh primary input named after it (the paper's
    treatment of Processor Status Word signals once the datapath is
    abstracted). The removed registers' next-state logic disappears. *)

val free_group : Circuit.t -> string -> Circuit.t
(** [free_regs] over a whole register group. *)

val drop_outputs : Circuit.t -> keep:(string -> bool) -> Circuit.t
(** Remove output ports whose name fails [keep] ("remove outputs not
    affecting control logic"). No registers are touched; compose with
    {!cone_reduce} to delete logic that became unobservable. *)

val cone_reduce : Circuit.t -> Circuit.t
(** Delete registers outside the cone of influence of the outputs
    (transitively through next-state logic). Such registers can never
    affect any observable value, so deleting them is a strong
    homomorphic abstraction. *)

val remove_output_buffers : Circuit.t -> Circuit.t
(** Remove registers that only feed output ports (no next-state logic
    or constraint reads them): each such register is deleted and the
    outputs reading it are rewired to its next-state function ("no
    synchronizing latches for outputs"). This is a retiming: the
    affected outputs are observed one cycle earlier; the state-
    transition structure of the remaining registers is unchanged. *)

val onehot_to_binary : Circuit.t -> group:string -> Circuit.t
(** Re-encode a one-hot register group of size [m] into [ceil(log2 m)]
    binary registers (named ["<group>_bin\[j\]"], same group tag). All
    references to an old register [i] become a decode of the binary
    code for [i]. Requires the group to be genuinely one-hot: exactly
    one register initialized to true, and the next-state functions
    must preserve one-hotness along every reachable path (not checked
    statically; {!Simcov_netlist.Circuit.to_fsm} equivalence is the
    intended test). *)

val tie_inputs : Circuit.t -> (string * bool) list -> Circuit.t
(** Substitute constants for the named primary inputs and remove them
    from the interface. This is the paper's abstraction {e over primary
    inputs} ("only 2-bit address fields are required for 4 registers in
    the register file"): tying the high address bits to zero shrinks
    the input space, and {!constant_reg_elim} then removes the state
    bits that became constant. *)

val constant_reg_elim : Circuit.t -> Circuit.t
(** Iteratively remove registers that provably hold a constant: a
    register whose next-state function simplifies to its own initial
    value once already-known-constant registers are substituted. All
    references are replaced by the constant. *)

type step = { label : string; pass : Circuit.t -> Circuit.t }
(** A named abstraction step for sequence reports. *)

type trace_entry = {
  step_label : string;
  regs_before : int;
  regs_after : int;
  inputs_after : int;
  outputs_after : int;
  gates_after : int;
}

val run_sequence : Circuit.t -> step list -> Circuit.t * trace_entry list
(** Apply the steps in order, recording the per-step statistics that
    Figure 3(b) of the paper reports (state-element counts after each
    abstraction). *)
