(** Plain-text table rendering for experiment reports.

    Produces aligned, pipe-separated tables similar to the rows a paper
    reports, so benchmark output can be diffed against EXPERIMENTS.md. *)

type t

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a row; must have as many cells as there are headers. *)

val render : t -> string
(** Render with column alignment and a header separator. *)

val print : ?title:string -> t -> unit
(** [print ~title t] writes the table to stdout, preceded by a title
    banner when provided. *)
