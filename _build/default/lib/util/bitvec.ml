type t = { width : int; value : int }

let mask width = (1 lsl width) - 1

let create ~width v =
  assert (width > 0 && width <= 62);
  { width; value = v land mask width }

let zero ~width = create ~width 0

let width t = t.width
let to_int t = t.value

let get t i =
  assert (i >= 0 && i < t.width);
  (t.value lsr i) land 1 = 1

let set t i b =
  assert (i >= 0 && i < t.width);
  let bit = 1 lsl i in
  { t with value = (if b then t.value lor bit else t.value land lnot bit) }

let slice t ~lo ~hi =
  assert (0 <= lo && lo <= hi && hi < t.width);
  create ~width:(hi - lo + 1) (t.value lsr lo)

let concat hi lo =
  create ~width:(hi.width + lo.width) ((hi.value lsl lo.width) lor lo.value)

let popcount t =
  let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc + (v land 1)) in
  go t.value 0

let equal a b = a.width = b.width && a.value = b.value
let compare a b =
  let c = Int.compare a.width b.width in
  if c <> 0 then c else Int.compare a.value b.value

let fold_bits f t init =
  let rec go i acc = if i >= t.width then acc else go (i + 1) (f i (get t i) acc) in
  go 0 init

let pp ppf t =
  Format.fprintf ppf "0b";
  for i = t.width - 1 downto 0 do
    Format.pp_print_char ppf (if get t i then '1' else '0')
  done

let all ~width =
  let n = 1 lsl width in
  Seq.init n (fun v -> create ~width v)
