(** Fixed-width bit vectors backed by native [int].

    Widths up to 62 bits are supported, which covers every encoding in
    the project (instruction words, state codes, input cubes). Bit 0 is
    the least significant bit. *)

type t = private { width : int; value : int }

val create : width:int -> int -> t
(** [create ~width v] truncates [v] to [width] bits. Requires
    [0 < width <= 62]. *)

val zero : width:int -> t

val width : t -> int
val to_int : t -> int

val get : t -> int -> bool
(** [get t i] is bit [i]. Requires [0 <= i < width t]. *)

val set : t -> int -> bool -> t
(** Functional update of bit [i]. *)

val slice : t -> lo:int -> hi:int -> t
(** [slice t ~lo ~hi] extracts bits [lo..hi] inclusive as a new vector of
    width [hi - lo + 1]. *)

val concat : t -> t -> t
(** [concat hi lo] places [hi] above [lo]: result width is the sum. *)

val popcount : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int

val fold_bits : (int -> bool -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over bit indices from 0 to [width - 1]. *)

val pp : Format.formatter -> t -> unit
(** Prints as a binary literal, MSB first, e.g. [0b01011]. *)

val all : width:int -> t Seq.t
(** All [2^width] vectors in increasing numeric order. *)
