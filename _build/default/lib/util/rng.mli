(** Deterministic pseudo-random number generator (splitmix64).

    All randomness in the project flows through this module so that every
    experiment and property test is reproducible from a fixed seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy continuing from the current state. *)

val next : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val bool : t -> bool
(** Fair coin. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val split : t -> t
(** Derive a statistically independent generator (for parallel streams). *)
