lib/util/bitvec.ml: Format Int Seq
