lib/util/tabulate.mli:
