lib/util/rng.mli:
