lib/util/bitvec.mli: Format Seq
