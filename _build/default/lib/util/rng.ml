type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 finalizer: the output function of Steele et al.'s
   SplitMix generator; passes BigCrush when driven by a Weyl sequence. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let int t bound =
  assert (bound > 0);
  let v = Int64.to_int (Int64.shift_right_logical (next t) 1) land max_int in
  v mod bound

let bool t = Int64.logand (next t) 1L = 1L

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  v /. 9007199254740992.0 *. bound

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let split t = { state = mix (next t) }
