type t = { headers : string list; mutable rows : string list list }

let create headers = { headers; rows = [] }

let add_row t row =
  assert (List.length row = List.length t.headers);
  t.rows <- row :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter measure all;
  let buf = Buffer.create 256 in
  let emit row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf " | ";
        Buffer.add_string buf cell;
        Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  emit t.headers;
  List.iteri
    (fun i _ ->
      if i > 0 then Buffer.add_string buf "-+-";
      Buffer.add_string buf (String.make widths.(i) '-'))
    t.headers;
  Buffer.add_char buf '\n';
  List.iter emit rows;
  Buffer.contents buf

let print ?title t =
  (match title with
  | None -> ()
  | Some s ->
      print_newline ();
      print_endline ("== " ^ s ^ " ==");
      print_newline ());
  print_string (render t)
