(** Error detection by simulation, masking, and coverage campaigns.

    A fault is {e excited} when the faulted transition is traversed and
    {e exposed} (detected) when the observed outputs of the mutant
    differ from the golden machine's — possibly several steps later,
    which is exactly the gap between excitation and exposure that
    Section 4.2 illustrates with Figure 2. *)

open Simcov_fsm

type verdict = {
  detected : bool;
  excited : bool;
  detect_step : int option;  (** first step (0-based) with an observable difference *)
  excite_step : int option;  (** first traversal of the faulted transition (golden path) *)
}

val run_verdict : Fsm.t -> Fault.t -> int list -> verdict
(** Simulate golden and mutant in lockstep on the input word. An
    observable difference is a differing output or an input that is
    valid in one machine's current state and not the other's. The word
    is truncated at the first input invalid in {e both} runs. *)

val detects : Fsm.t -> Fault.t -> int list -> bool

(** {1 Campaigns} *)

type report = {
  total : int;
  effective : int;  (** faults that actually change behavior locally *)
  excited : int;
  detected : int;
  missed : Fault.t list;  (** effective, excited, yet undetected *)
}

val campaign : Fsm.t -> Fault.t list -> int list -> report
val coverage_pct : report -> float
(** [100 * detected / effective] (100.0 when there are no effective
    faults). *)

val pp_report : Format.formatter -> report -> unit

(** {1 Masking (Definition 4)} *)

val masked_windows : Fsm.t -> Fsm.t -> int list -> (int * int) list
(** Run golden and mutant on the word; return the maximal index windows
    [(j, l)] in which the state trajectories diverge at [j] and
    re-converge at [l] with no observable output difference inside —
    the operational form of a masked transfer error. An empty list
    means the trajectories never diverged or every divergence was
    exposed or never closed. *)

val has_masked_transfer : Fsm.t -> Fault.t list -> int list -> bool
(** Whether applying the faults produces at least one masked window on
    the word — used to check Requirement 4 experimentally. *)

(** {1 Transition coverage of a word} *)

val transitions_covered : Fsm.t -> int list -> (int * int) list
(** Distinct (state, input) pairs traversed by the word from reset. *)

val is_transition_tour : Fsm.t -> int list -> bool
(** Does the word traverse every reachable valid transition? *)

val state_coverage : Fsm.t -> int list -> int
val transition_coverage : Fsm.t -> int list -> int
