lib/coverage/stuckat.ml: Array Circuit Expr Format List Printf Simcov_netlist
