lib/coverage/fault.mli: Format Fsm Simcov_fsm Simcov_util
