lib/coverage/detect.mli: Fault Format Fsm Simcov_fsm
