lib/coverage/stuckat.mli: Circuit Format Simcov_netlist
