lib/coverage/observability.ml: Array Circuit Format List Simcov_netlist
