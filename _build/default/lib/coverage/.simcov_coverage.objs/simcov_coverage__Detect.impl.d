lib/coverage/detect.ml: Fault Format Fsm Hashtbl List Option Simcov_fsm
