lib/coverage/uniformity.ml: Fsm Hashtbl Homomorphism List Option Simcov_abstraction Simcov_fsm
