lib/coverage/observability.mli: Circuit Format Simcov_netlist
