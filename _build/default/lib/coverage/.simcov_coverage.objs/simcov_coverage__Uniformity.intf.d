lib/coverage/uniformity.mli: Fsm Homomorphism Simcov_abstraction Simcov_fsm
