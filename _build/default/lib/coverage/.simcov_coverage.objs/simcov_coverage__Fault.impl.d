lib/coverage/fault.ml: Array Format Fsm Hashtbl List Simcov_fsm Simcov_util
