(** Uniform vs. non-uniform output errors (Definition 2) through an
    abstraction.

    On a concrete Mealy machine, a single output fault is trivially
    uniform: the faulted transition itself always misbehaves. Non-
    uniformity appears at the {e test model} level: an abstract
    transition is the image of many concrete transitions, and an error
    is uniform on the abstract transition only if {e every} concrete
    pre-image transition misbehaves. Section 6.3's interlock example is
    exactly this: without the destination-register address in the test
    model state, the abstract "issue dependent instruction" transition
    mixes hazard and no-hazard concrete transitions, so the error shows
    only for some histories.

    Requirement 1 demands all output errors be uniform; {!classify}
    decides it for a fault set, and {!requirement1_holds} is the check
    the methodology core performs before certifying completeness. *)

open Simcov_fsm
open Simcov_abstraction

type classification = {
  abs_transition : int * int;  (** abstract (state, input) *)
  faulty_members : int;  (** concrete pre-image transitions that misbehave *)
  clean_members : int;  (** pre-image transitions that behave *)
}

val classify :
  Fsm.t -> Homomorphism.mapping -> faulty:(int * int -> bool) -> classification list
(** For each abstract transition with at least one faulty concrete
    member, count faulty and clean members. [faulty (s, i)] says
    whether the concrete transition misbehaves (e.g. an output fault
    was injected there, or a bug predicate holds). *)

val is_uniform : classification -> bool
(** No clean members: the error is exposed by every history reaching
    the abstract transition. *)

val requirement1_holds :
  Fsm.t -> Homomorphism.mapping -> faulty:(int * int -> bool) -> bool
(** All classified output errors are uniform (Requirement 1). *)
