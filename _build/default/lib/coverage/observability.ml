open Simcov_netlist

type report = {
  n_regs : int;
  toggled : int;
  observed : int;
  toggled_and_observed : int;
  steps : int;
}

(* outputs produced over [horizon] steps from [state], driven by the
   tail of the word starting at [inputs]; stops early at word end or
   on an input the constraint rejects in the perturbed state *)
let window_outputs c state inputs horizon =
  let rec go state inputs h acc =
    if h = 0 then List.rev acc
    else
      match inputs with
      | [] -> List.rev acc
      | iv :: rest ->
          if not (Circuit.input_valid c state iv) then List.rev acc
          else
            let state', outs = Circuit.step c state iv in
            go state' rest (h - 1) (outs :: acc)
  in
  go state inputs horizon []

let analyze ?(horizon = 4) (c : Circuit.t) word =
  let n = Circuit.n_regs c in
  let toggled = Array.make n false in
  let observed = Array.make n false in
  (* trajectory of states *)
  let states =
    let rec go state acc = function
      | [] -> List.rev acc
      | iv :: rest ->
          let state', _ = Circuit.step c state iv in
          go state' (state' :: acc) rest
    in
    Array.of_list (go (Circuit.initial_state c) [ Circuit.initial_state c ] word)
  in
  let word_arr = Array.of_list word in
  let steps = Array.length word_arr in
  (* toggling: value changes along the trajectory *)
  for t = 1 to steps do
    for r = 0 to n - 1 do
      if states.(t).(r) <> states.(t - 1).(r) then toggled.(r) <- true
    done
  done;
  (* observability: flip register r in the state before step t and see
     whether any output differs within the horizon *)
  let tail_from t =
    let rec go k acc = if k < t then List.rev acc else go (k - 1) (word_arr.(k) :: acc) in
    go (steps - 1) []
  in
  for t = 0 to steps - 1 do
    let tail = tail_from t in
    let base = window_outputs c states.(t) tail horizon in
    for r = 0 to n - 1 do
      if not observed.(r) then begin
        let flipped = Array.copy states.(t) in
        flipped.(r) <- not flipped.(r);
        let alt = window_outputs c flipped tail horizon in
        (* a length difference means the constraint rejected an input
           in the perturbed run — observable as well *)
        if List.length alt <> List.length base || List.exists2 ( <> ) base alt then
          observed.(r) <- true
      end
    done
  done;
  let count a = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 a in
  let both = ref 0 in
  for r = 0 to n - 1 do
    if toggled.(r) && observed.(r) then incr both
  done;
  {
    n_regs = n;
    toggled = count toggled;
    observed = count observed;
    toggled_and_observed = !both;
    steps;
  }

let pct a b = if b = 0 then 100.0 else 100.0 *. float_of_int a /. float_of_int b
let toggle_pct r = pct r.toggled r.n_regs
let observability_pct r = pct r.toggled_and_observed r.n_regs

let pp ppf r =
  Format.fprintf ppf
    "%d regs over %d steps: %d toggled (%.0f%%), %d observed, %d both (%.0f%%)" r.n_regs
    r.steps r.toggled (toggle_pct r) r.observed r.toggled_and_observed
    (observability_pct r)
