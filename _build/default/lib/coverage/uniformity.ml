open Simcov_fsm
open Simcov_abstraction

type classification = {
  abs_transition : int * int;
  faulty_members : int;
  clean_members : int;
}

let classify (m : Fsm.t) (a : Homomorphism.mapping) ~faulty =
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun (s, i, _, _) ->
      let key = (a.Homomorphism.state_map s, a.Homomorphism.input_map i) in
      let f, c = Option.value (Hashtbl.find_opt tbl key) ~default:(0, 0) in
      let entry = if faulty (s, i) then (f + 1, c) else (f, c + 1) in
      Hashtbl.replace tbl key entry)
    (Fsm.transitions m);
  Hashtbl.fold
    (fun abs_transition (faulty_members, clean_members) acc ->
      if faulty_members > 0 then { abs_transition; faulty_members; clean_members } :: acc
      else acc)
    tbl []
  |> List.sort compare

let is_uniform c = c.clean_members = 0

let requirement1_holds m a ~faulty = List.for_all is_uniform (classify m a ~faulty)
