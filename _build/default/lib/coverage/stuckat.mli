(** Stuck-at fault simulation on netlists.

    The classical gate-level test-quality metric, provided as a third
    reference point next to design-error (FSM fault) coverage and the
    observability metric: a {e stuck-at} fault pins a register output
    or a primary input to a constant. A test word detects the fault
    when the faulty circuit's outputs diverge from the good circuit's
    at some step.

    The paper's methodology targets {e design} errors, not fabrication
    faults; running both metrics on the same stimuli shows how
    different the populations are (a tour tuned for transition
    coverage is decent but not complete for stuck-ats, and vice
    versa). *)

open Simcov_netlist

type site = Reg_output of int | Primary_input of int

type fault = { site : site; stuck : bool }

val all_faults : Circuit.t -> fault list
(** Both polarities at every register output and primary input. *)

val detects : Circuit.t -> fault -> bool array list -> bool
(** Lockstep simulation of good vs faulty circuit on the word; the
    faulty circuit sees the pinned value everywhere the signal is
    read. Inputs are applied as given (an input stuck the other way
    simply overrides the stimulus). The word must be valid for the
    good circuit; constraint evaluation in the faulty circuit uses the
    pinned values (a combination turning invalid counts as detection,
    mirroring {!Detect}). *)

type report = { total : int; detected : int; missed : fault list }

val campaign : Circuit.t -> fault list -> bool array list -> report
val coverage_pct : report -> float
val pp_fault : Format.formatter -> fault -> unit
