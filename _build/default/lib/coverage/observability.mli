(** Observability-based coverage of netlist simulations.

    The paper surveys "a coverage metric based on observability/error
    propagation" (Devadas-Ghosh-Keutzer, cited as [11]) among the
    specification-validation metrics that do {e not} measure design
    error coverage. This module implements that style of metric for
    our netlists so the contrast can be made concrete: a test set can
    toggle every latch and still miss errors, and conversely.

    For an input word applied from the initial state:
    - a register {e toggles} when its value changes at some step;
    - a register is {e observed} when flipping its value at some step
      changes some primary output within the next [horizon] cycles
      (error propagation to an observable point).

    Both are necessary conditions for the word to detect a stuck-type
    error at the register, which makes the metric a cheap screen —
    and provably not a guarantee, unlike the certified tours of
    {!Simcov_core.Completeness}. *)

open Simcov_netlist

type report = {
  n_regs : int;
  toggled : int;
  observed : int;
  toggled_and_observed : int;
  steps : int;
}

val analyze : ?horizon:int -> Circuit.t -> bool array list -> report
(** [analyze c word] simulates [word] (default horizon 4). The word's
    vectors must be valid at each step. O(|regs| * |word| * horizon)
    simulation work. *)

val toggle_pct : report -> float
val observability_pct : report -> float
val pp : Format.formatter -> report -> unit
