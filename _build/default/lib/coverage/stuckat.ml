open Simcov_netlist

type site = Reg_output of int | Primary_input of int
type fault = { site : site; stuck : bool }

let all_faults (c : Circuit.t) =
  let regs =
    List.init (Circuit.n_regs c) (fun r ->
        [ { site = Reg_output r; stuck = false }; { site = Reg_output r; stuck = true } ])
  in
  let inputs =
    List.init (Circuit.n_inputs c) (fun i ->
        [
          { site = Primary_input i; stuck = false };
          { site = Primary_input i; stuck = true };
        ])
  in
  List.concat (regs @ inputs)

(* evaluate the faulty circuit one step: reads of the faulted signal
   see the pinned value; the register itself still updates (a stuck
   OUTPUT, not a stuck latch) which is the standard single-stuck-at
   model on the net *)
let faulty_step (c : Circuit.t) fault state inputs =
  let read_input i =
    match fault.site with Primary_input j when j = i -> fault.stuck | _ -> inputs.(i)
  in
  let read_reg r =
    match fault.site with Reg_output j when j = r -> fault.stuck | _ -> state.(r)
  in
  if not (Expr.eval ~inputs:read_input ~regs:read_reg c.Circuit.input_constraint) then None
  else begin
    let next =
      Array.map (fun (r : Circuit.reg) -> Expr.eval ~inputs:read_input ~regs:read_reg r.Circuit.next) c.Circuit.regs
    in
    let outs =
      Array.map
        (fun (o : Circuit.port) -> Expr.eval ~inputs:read_input ~regs:read_reg o.Circuit.expr)
        c.Circuit.outputs
    in
    Some (next, outs)
  end

let detects (c : Circuit.t) fault word =
  let rec go good bad = function
    | [] -> false
    | iv :: rest -> (
        let good', gout = Circuit.step c good iv in
        match faulty_step c fault bad iv with
        | None -> true (* constraint violated only in the faulty machine *)
        | Some (bad', bout) -> if gout <> bout then true else go good' bad' rest)
  in
  go (Circuit.initial_state c) (Circuit.initial_state c) word

type report = { total : int; detected : int; missed : fault list }

let campaign c faults word =
  let detected = ref 0 in
  let missed = ref [] in
  List.iter
    (fun f -> if detects c f word then incr detected else missed := f :: !missed)
    faults;
  { total = List.length faults; detected = !detected; missed = List.rev !missed }

let coverage_pct r =
  if r.total = 0 then 100.0 else 100.0 *. float_of_int r.detected /. float_of_int r.total

let pp_fault ppf f =
  let where =
    match f.site with
    | Reg_output r -> Printf.sprintf "reg %d" r
    | Primary_input i -> Printf.sprintf "input %d" i
  in
  Format.fprintf ppf "%s stuck-at-%d" where (if f.stuck then 1 else 0)
