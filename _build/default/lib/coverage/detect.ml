open Simcov_fsm

type verdict = {
  detected : bool;
  excited : bool;
  detect_step : int option;
  excite_step : int option;
}

let run_verdict (golden : Fsm.t) fault word =
  let mutant = Fault.apply golden fault in
  let fsite = Fault.site fault in
  let rec go step sg sm excite detect word =
    match word with
    | [] -> (excite, detect)
    | i :: rest -> (
        let vg = golden.Fsm.valid sg i and vm = mutant.Fsm.valid sm i in
        if vg <> vm then (excite, Some (Option.value detect ~default:step))
        else if not vg then (excite, detect) (* word invalid from here; stop *)
        else
          let excite = if (sg, i) = fsite && excite = None then Some step else excite in
          let og = golden.Fsm.output sg i and om = mutant.Fsm.output sm i in
          if og <> om then (excite, Some step)
          else
            match detect with
            | Some _ -> (excite, detect)
            | None ->
                go (step + 1) (golden.Fsm.next sg i) (mutant.Fsm.next sm i) excite detect
                  rest)
  in
  let excite_step, detect_step =
    go 0 golden.Fsm.reset mutant.Fsm.reset None None word
  in
  {
    detected = detect_step <> None;
    excited = excite_step <> None;
    detect_step;
    excite_step;
  }

let detects golden fault word = (run_verdict golden fault word).detected

type report = {
  total : int;
  effective : int;
  excited : int;
  detected : int;
  missed : Fault.t list;
}

let campaign golden faults word =
  let total = List.length faults in
  let effective = ref 0 and excited = ref 0 and detected = ref 0 in
  let missed = ref [] in
  List.iter
    (fun f ->
      if Fault.is_effective golden f then begin
        incr effective;
        let v = run_verdict golden f word in
        if v.excited then incr excited;
        if v.detected then incr detected
        else if v.excited then missed := f :: !missed
      end)
    faults;
  {
    total;
    effective = !effective;
    excited = !excited;
    detected = !detected;
    missed = List.rev !missed;
  }

let coverage_pct r =
  if r.effective = 0 then 100.0 else 100.0 *. float_of_int r.detected /. float_of_int r.effective

let pp_report ppf r =
  Format.fprintf ppf "faults: %d total, %d effective, %d excited, %d detected (%.1f%%), %d missed"
    r.total r.effective r.excited r.detected (coverage_pct r) (List.length r.missed)

(* Definition 4, operationally: windows where the two state
   trajectories diverge and silently re-converge. *)
let masked_windows (golden : Fsm.t) (mutant : Fsm.t) word =
  let rec go step sg sm window acc word =
    match word with
    | [] -> List.rev acc (* open window never closed: not masked *)
    | i :: rest -> (
        let vg = golden.Fsm.valid sg i and vm = mutant.Fsm.valid sm i in
        if vg <> vm then List.rev acc (* exposed; stop *)
        else if not vg then List.rev acc
        else
          let og = golden.Fsm.output sg i and om = mutant.Fsm.output sm i in
          if og <> om then List.rev acc (* exposed inside the window *)
          else
            let sg' = golden.Fsm.next sg i and sm' = mutant.Fsm.next sm i in
            match window with
            | None ->
                let window = if sg' <> sm' then Some step else None in
                go (step + 1) sg' sm' window acc rest
            | Some j ->
                if sg' = sm' then go (step + 1) sg' sm' None ((j, step) :: acc) rest
                else go (step + 1) sg' sm' window acc rest)
  in
  go 0 golden.Fsm.reset mutant.Fsm.reset None [] word

let has_masked_transfer golden faults word =
  let mutant = Fault.apply_all golden faults in
  masked_windows golden mutant word <> []

let transitions_covered (m : Fsm.t) word =
  let seen = Hashtbl.create 256 in
  let rec go s = function
    | [] -> ()
    | i :: rest ->
        if m.Fsm.valid s i then begin
          Hashtbl.replace seen (s, i) ();
          go (m.Fsm.next s i) rest
        end
  in
  go m.Fsm.reset word;
  Hashtbl.fold (fun k () acc -> k :: acc) seen [] |> List.sort compare

let is_transition_tour m word =
  List.length (transitions_covered m word) = Fsm.n_transitions m

let state_coverage (m : Fsm.t) word =
  let seen = Hashtbl.create 64 in
  let rec go s = function
    | [] -> ()
    | i :: rest ->
        if m.Fsm.valid s i then begin
          let s' = m.Fsm.next s i in
          Hashtbl.replace seen s' ();
          go s' rest
        end
  in
  Hashtbl.replace seen m.Fsm.reset ();
  go m.Fsm.reset word;
  Hashtbl.length seen

let transition_coverage m word = List.length (transitions_covered m word)
