(** Text serialization of circuits.

    A small line-oriented exchange format so derived test models can be
    dumped, diffed, and reloaded (the role the paper's Verilog/BLIF
    files played between VIS and SIS):

    {v
    circuit <name>
    input <name>
    reg <name> <group> <0|1> = <expr>
    output <name> = <expr>
    constraint <expr>
    v}

    Expressions are S-expressions over [(in N)], [(reg N)], [0], [1],
    [(not e)], [(and e e)], [(or e e)], [(xor e e)],
    [(mux c t e)]. Lines starting with [#] are comments. Register and
    input indices refer to declaration order. *)

val to_string : Circuit.t -> string

val of_string : string -> (Circuit.t, string) result
(** Inverse of {!to_string} (also accepts hand-written files). Errors
    carry a line number and description. *)

val save : Circuit.t -> string -> unit
(** Write to a file path. *)

val load : string -> (Circuit.t, string) result
