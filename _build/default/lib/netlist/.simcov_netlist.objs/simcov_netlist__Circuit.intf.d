lib/netlist/circuit.mli: Expr Format Simcov_fsm
