lib/netlist/serialize.ml: Array Buffer Circuit Expr In_channel List Printf Result String
