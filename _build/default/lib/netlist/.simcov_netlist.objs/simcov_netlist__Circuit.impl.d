lib/netlist/circuit.ml: Array Expr Format Hashtbl List Printf Queue Simcov_fsm
