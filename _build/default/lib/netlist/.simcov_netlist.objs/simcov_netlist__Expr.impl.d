lib/netlist/expr.ml: Array Hashtbl Int List
