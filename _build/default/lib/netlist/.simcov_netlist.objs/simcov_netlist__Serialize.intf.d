lib/netlist/serialize.mli: Circuit
