lib/netlist/expr.mli:
