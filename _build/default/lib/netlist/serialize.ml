let expr_to_buf buf e =
  let rec go = function
    | Expr.Const true -> Buffer.add_char buf '1'
    | Expr.Const false -> Buffer.add_char buf '0'
    | Expr.Input i -> Buffer.add_string buf (Printf.sprintf "(in %d)" i)
    | Expr.Reg r -> Buffer.add_string buf (Printf.sprintf "(reg %d)" r)
    | Expr.Not a ->
        Buffer.add_string buf "(not ";
        go a;
        Buffer.add_char buf ')'
    | Expr.And (a, b) -> binary "and" a b
    | Expr.Or (a, b) -> binary "or" a b
    | Expr.Xor (a, b) -> binary "xor" a b
    | Expr.Mux (s, h, l) ->
        Buffer.add_string buf "(mux ";
        go s;
        Buffer.add_char buf ' ';
        go h;
        Buffer.add_char buf ' ';
        go l;
        Buffer.add_char buf ')'
  and binary tag a b =
    Buffer.add_char buf '(';
    Buffer.add_string buf tag;
    Buffer.add_char buf ' ';
    go a;
    Buffer.add_char buf ' ';
    go b;
    Buffer.add_char buf ')'
  in
  go e

let to_string (c : Circuit.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf ("circuit " ^ c.Circuit.name ^ "\n");
  Array.iter (fun n -> Buffer.add_string buf ("input " ^ n ^ "\n")) c.Circuit.input_names;
  Array.iter
    (fun (r : Circuit.reg) ->
      Buffer.add_string buf
        (Printf.sprintf "reg %s %s %d = " r.Circuit.name r.Circuit.group
           (if r.Circuit.init then 1 else 0));
      expr_to_buf buf r.Circuit.next;
      Buffer.add_char buf '\n')
    c.Circuit.regs;
  Array.iter
    (fun (o : Circuit.port) ->
      Buffer.add_string buf ("output " ^ o.Circuit.port_name ^ " = ");
      expr_to_buf buf o.Circuit.expr;
      Buffer.add_char buf '\n')
    c.Circuit.outputs;
  if c.Circuit.input_constraint <> Expr.tru then begin
    Buffer.add_string buf "constraint ";
    expr_to_buf buf c.Circuit.input_constraint;
    Buffer.add_char buf '\n'
  end;
  Buffer.contents buf

(* --- parsing --- *)

type token = Lparen | Rparen | Atom of string

let tokenize s =
  let tokens = ref [] in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '(' ->
        tokens := Lparen :: !tokens;
        incr i
    | ')' ->
        tokens := Rparen :: !tokens;
        incr i
    | ' ' | '\t' -> incr i
    | _ ->
        let start = !i in
        while !i < n && s.[!i] <> '(' && s.[!i] <> ')' && s.[!i] <> ' ' && s.[!i] <> '\t' do
          incr i
        done;
        tokens := Atom (String.sub s start (!i - start)) :: !tokens);
  done;
  List.rev !tokens

let ( let* ) = Result.bind

let parse_expr tokens =
  let rec parse = function
    | Atom "0" :: rest -> Ok (Expr.Const false, rest)
    | Atom "1" :: rest -> Ok (Expr.Const true, rest)
    | Lparen :: Atom "in" :: Atom n :: Rparen :: rest -> (
        match int_of_string_opt n with
        | Some i when i >= 0 -> Ok (Expr.Input i, rest)
        | _ -> Error ("bad input index " ^ n))
    | Lparen :: Atom "reg" :: Atom n :: Rparen :: rest -> (
        match int_of_string_opt n with
        | Some r when r >= 0 -> Ok (Expr.Reg r, rest)
        | _ -> Error ("bad register index " ^ n))
    | Lparen :: Atom "not" :: rest ->
        let* a, rest = parse rest in
        let* rest = expect_rparen rest in
        Ok (Expr.Not a, rest)
    | Lparen :: Atom (("and" | "or" | "xor") as tag) :: rest ->
        let* a, rest = parse rest in
        let* b, rest = parse rest in
        let* rest = expect_rparen rest in
        let e =
          match tag with
          | "and" -> Expr.And (a, b)
          | "or" -> Expr.Or (a, b)
          | _ -> Expr.Xor (a, b)
        in
        Ok (e, rest)
    | Lparen :: Atom "mux" :: rest ->
        let* s, rest = parse rest in
        let* h, rest = parse rest in
        let* l, rest = parse rest in
        let* rest = expect_rparen rest in
        Ok (Expr.Mux (s, h, l), rest)
    | t :: _ ->
        Error
          (Printf.sprintf "unexpected token %s"
             (match t with Lparen -> "(" | Rparen -> ")" | Atom a -> a))
    | [] -> Error "unexpected end of expression"
  and expect_rparen = function
    | Rparen :: rest -> Ok rest
    | _ -> Error "expected )"
  in
  let* e, rest = parse tokens in
  match rest with [] -> Ok e | _ -> Error "trailing tokens after expression"

let split_eq line =
  match String.index_opt line '=' with
  | None -> Error "missing '='"
  | Some i ->
      Ok
        ( String.trim (String.sub line 0 i),
          String.trim (String.sub line (i + 1) (String.length line - i - 1)) )

let of_string text =
  let lines = String.split_on_char '\n' text in
  let name = ref "circuit" in
  let inputs = ref [] in
  let regs = ref [] in
  let outputs = ref [] in
  let constraints = ref [] in
  let parse_line lineno line =
    let line =
      match String.index_opt line '#' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    let line = String.trim line in
    if line = "" then Ok ()
    else
      let err msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
      match String.index_opt line ' ' with
      | None -> err ("cannot parse: " ^ line)
      | Some sp -> (
          let kw = String.sub line 0 sp in
          let rest = String.trim (String.sub line (sp + 1) (String.length line - sp - 1)) in
          match kw with
          | "circuit" ->
              name := rest;
              Ok ()
          | "input" ->
              inputs := rest :: !inputs;
              Ok ()
          | "reg" -> (
              match split_eq rest with
              | Error e -> err e
              | Ok (head, body) -> (
                  match String.split_on_char ' ' head |> List.filter (fun s -> s <> "") with
                  | [ rname; group; init ] -> (
                      match (int_of_string_opt init, parse_expr (tokenize body)) with
                      | Some iv, Ok next when iv = 0 || iv = 1 ->
                          regs :=
                            {
                              Circuit.name = rname;
                              group;
                              init = iv = 1;
                              next;
                            }
                            :: !regs;
                          Ok ()
                      | _, Error e -> err e
                      | _ -> err "bad reg init (want 0 or 1)")
                  | _ -> err "want: reg <name> <group> <0|1> = <expr>"))
          | "output" -> (
              match split_eq rest with
              | Error e -> err e
              | Ok (oname, body) -> (
                  match parse_expr (tokenize body) with
                  | Ok e ->
                      outputs := { Circuit.port_name = oname; expr = e } :: !outputs;
                      Ok ()
                  | Error e -> err e))
          | "constraint" -> (
              match parse_expr (tokenize rest) with
              | Ok e ->
                  constraints := e :: !constraints;
                  Ok ()
              | Error e -> err e)
          | _ -> err ("unknown keyword: " ^ kw))
  in
  let rec go lineno = function
    | [] -> Ok ()
    | line :: rest -> (
        match parse_line lineno line with Ok () -> go (lineno + 1) rest | Error _ as e -> e)
  in
  let* () = go 1 lines in
  let circuit =
    {
      Circuit.name = !name;
      input_names = Array.of_list (List.rev !inputs);
      regs = Array.of_list (List.rev !regs);
      outputs = Array.of_list (List.rev !outputs);
      input_constraint = List.fold_left Expr.( &&& ) Expr.tru (List.rev !constraints);
    }
  in
  (* sanity: leaf indices within bounds *)
  let ni = Circuit.n_inputs circuit and nr = Circuit.n_regs circuit in
  let check_expr e =
    let ins, rgs = Expr.support e in
    List.for_all (fun i -> i < ni) ins && List.for_all (fun r -> r < nr) rgs
  in
  let all_ok =
    Array.for_all (fun (r : Circuit.reg) -> check_expr r.Circuit.next) circuit.Circuit.regs
    && Array.for_all (fun (o : Circuit.port) -> check_expr o.Circuit.expr) circuit.Circuit.outputs
    && check_expr circuit.Circuit.input_constraint
  in
  if all_ok then Ok circuit else Error "expression references an undeclared input/register"

let save c path =
  let oc = open_out path in
  output_string oc (to_string c);
  close_out oc

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error e -> Error e
