lib/testgen/tour.ml: Array Cpp Digraph Fsm Hashtbl List Option Queue Simcov_fsm Simcov_graph Simcov_util
