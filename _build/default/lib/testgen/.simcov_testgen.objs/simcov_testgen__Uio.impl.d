lib/testgen/uio.ml: Array Fsm Hashtbl Int List Option Queue Simcov_fsm Tour
