lib/testgen/wmethod.ml: Array Fsm Fun List Simcov_coverage Simcov_fsm Tour
