lib/testgen/wmethod.mli: Fsm Simcov_coverage Simcov_fsm
