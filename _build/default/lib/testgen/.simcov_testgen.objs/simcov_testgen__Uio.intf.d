lib/testgen/uio.mli: Fsm Simcov_fsm
