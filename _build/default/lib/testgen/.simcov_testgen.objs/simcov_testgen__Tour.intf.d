lib/testgen/tour.mli: Fsm Simcov_fsm Simcov_util
