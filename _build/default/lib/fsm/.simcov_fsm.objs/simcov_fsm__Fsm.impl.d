lib/fsm/fsm.ml: Array Format Fun Hashtbl List Printf Queue Simcov_graph Simcov_util
