lib/fsm/fsm.mli: Format Simcov_graph Simcov_util
