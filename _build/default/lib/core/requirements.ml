open Simcov_fsm

type status = Satisfied of string | Violated of string | Assumed of string

let is_ok = function Satisfied _ | Assumed _ -> true | Violated _ -> false

type report = {
  r1_uniform_output_errors : status;
  r2_bounded_processing : status;
  r3_unique_outputs : status;
  r4_no_masking : status;
  r5_observable_interaction : status;
}

let all_ok r =
  is_ok r.r1_uniform_output_errors && is_ok r.r2_bounded_processing
  && is_ok r.r3_unique_outputs && is_ok r.r4_no_masking
  && is_ok r.r5_observable_interaction

let pp_status ppf = function
  | Satisfied e -> Format.fprintf ppf "satisfied (%s)" e
  | Violated e -> Format.fprintf ppf "VIOLATED (%s)" e
  | Assumed e -> Format.fprintf ppf "assumed (%s)" e

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>R1 uniform output errors:    %a@,\
     R2 bounded processing:       %a@,\
     R3 unique outputs:           %a@,\
     R4 no masked transfers:      %a@,\
     R5 observable interactions:  %a@]"
    pp_status r.r1_uniform_output_errors pp_status r.r2_bounded_processing pp_status
    r.r3_unique_outputs pp_status r.r4_no_masking pp_status
    r.r5_observable_interaction

let check_r1 concrete =
  match concrete with
  | None -> Assumed "no concrete machine supplied"
  | Some (machine, mapping, faulty) ->
      let classes = Simcov_coverage.Uniformity.classify machine mapping ~faulty in
      let bad = List.filter (fun c -> not (Simcov_coverage.Uniformity.is_uniform c)) classes in
      if bad = [] then
        Satisfied
          (Printf.sprintf "%d faulty abstract transitions, all uniform" (List.length classes))
      else
        let c = List.hd bad in
        Violated
          (Printf.sprintf
             "abstract transition (s%d, i%d) mixes %d faulty and %d clean concrete members"
             (fst c.Simcov_coverage.Uniformity.abs_transition)
             (snd c.Simcov_coverage.Uniformity.abs_transition)
             c.Simcov_coverage.Uniformity.faulty_members
             c.Simcov_coverage.Uniformity.clean_members)

let check_r2_r5 model k_bound =
  (* R5 first: pairwise single-step distinguishability *)
  let mat1 = Fsm.forall_k_matrix model ~k:1 in
  let seen = Fsm.reachable model in
  let r5_bad = ref None in
  for p = 0 to model.Fsm.n_states - 1 do
    for q = p + 1 to model.Fsm.n_states - 1 do
      if seen.(p) && seen.(q) && (not mat1.(p).(q)) && !r5_bad = None then
        r5_bad := Some (p, q)
    done
  done;
  let r5 =
    match !r5_bad with
    | None -> Satisfied "every reachable state pair is ∀1-distinguishable"
    | Some (p, q) ->
        Violated
          (Printf.sprintf "states %s and %s agree on some input's output"
             (model.Fsm.state_name p) (model.Fsm.state_name q))
  in
  let r2 =
    match Fsm.min_forall_k ~bound:k_bound model with
    | Some k -> Satisfied (Printf.sprintf "processing bounded: k = %d" k)
    | None -> Violated (Printf.sprintf "no k <= %d bounds exposure" k_bound)
  in
  (r2, r5)

let check_r4 model rng samples =
  match rng with
  | None -> Assumed "masking excluded by design (no registered error cancellation)"
  | Some rng -> (
      match Simcov_testgen.Tour.transition_tour model with
      | None -> Assumed "no tour available for the masking scan"
      | Some tour ->
          let faults = Simcov_coverage.Fault.sample_transfer_faults rng model ~count:samples in
          let masked =
            List.filter
              (fun f ->
                Simcov_coverage.Detect.has_masked_transfer model [ f ]
                  tour.Simcov_testgen.Tour.word)
              faults
          in
          if masked = [] then
            Satisfied
              (Printf.sprintf "no masked window under %d sampled transfer faults"
                 (List.length faults))
          else
            Violated
              (Format.asprintf "masked transfer error found: %a" Simcov_coverage.Fault.pp
                 (List.hd masked)))

let check ?concrete ?(k_bound = 8) ?rng ?(masking_samples = 100) model =
  let r2, r5 = check_r2_r5 model k_bound in
  {
    r1_uniform_output_errors = check_r1 concrete;
    r2_bounded_processing = r2;
    r3_unique_outputs =
      Assumed "discharged by data selection during concretization (checkpoints carry identity)";
    r4_no_masking = check_r4 model rng masking_samples;
    r5_observable_interaction = r5;
  }
