lib/core/methodology.mli: Completeness Format Requirements Simcov_coverage Simcov_dlx
