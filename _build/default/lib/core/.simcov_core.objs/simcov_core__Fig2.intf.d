lib/core/fig2.mli: Fsm Simcov_coverage Simcov_fsm Simcov_util
