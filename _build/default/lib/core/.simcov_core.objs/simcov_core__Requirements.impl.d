lib/core/requirements.ml: Array Format Fsm List Printf Simcov_coverage Simcov_fsm Simcov_testgen
