lib/core/completeness.ml: Array Fsm List Simcov_coverage Simcov_fsm Simcov_testgen
