lib/core/fig2.ml: Array Fsm Hashtbl List Simcov_coverage Simcov_fsm Simcov_testgen Simcov_util
