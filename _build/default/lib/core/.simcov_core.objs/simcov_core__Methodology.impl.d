lib/core/methodology.ml: Array Completeness Format Fsm List Pipeline Requirements Result Simcov_abstraction Simcov_coverage Simcov_dlx Simcov_fsm Simcov_testgen Simcov_util Testmodel Validate
