lib/core/completeness.mli: Fsm Simcov_coverage Simcov_fsm Simcov_util
