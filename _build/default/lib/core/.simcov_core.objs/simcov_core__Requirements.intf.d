lib/core/requirements.mli: Format Fsm Simcov_abstraction Simcov_fsm Simcov_util
