open Simcov_fsm

let state_names = [| "1"; "2"; "3"; "3'"; "4"; "4'"; "5" |]
let input_names = [| "a"; "b"; "c"; "r"; "d" |]

(* indices: 0="1" 1="2" 2="3" 3="3'" 4="4" 5="4'" 6="5";
   inputs: 0=a 1=b 2=c 3=r 4=d.

   The [d] edge from state 1 straight to state 3 is the completion of
   the paper's fragment into a closed machine: it lets a transition
   tour cover the (3, b) transition without traversing the error-prone
   (2, a) transition a second time, so the tour that continues (2, a)
   with [c] really never sees the corrupted successor respond to
   [b]. *)
let table ~c_outputs_differ =
  [
    (0, 0, 1, 0) (* 1 -a-> 2 *);
    (0, 4, 2, 0) (* 1 -d-> 3 *);
    (1, 0, 2, 0) (* 2 -a-> 3: the transition the error corrupts *);
    (2, 1, 4, 1) (* 3 -b-> 4, output 1 *);
    (3, 1, 5, 2) (* 3' -b-> 4', output 2: b exposes *);
    (2, 2, 6, 3) (* 3 -c-> 5 *);
    (3, 2, 6, (if c_outputs_differ then 5 else 3)) (* 3' -c-> 5 *);
    (4, 3, 0, 4);
    (5, 3, 0, 6);
    (6, 3, 0, 7);
  ]

let build ~c_outputs_differ =
  let m = Fsm.of_table (table ~c_outputs_differ) in
  {
    m with
    Fsm.state_name = (fun s -> state_names.(s));
    input_name = (fun i -> input_names.(i));
  }

let original = build ~c_outputs_differ:false
let repaired = build ~c_outputs_differ:true

let transfer_error = Simcov_coverage.Fault.Transfer { state = 1; input = 0; wrong_next = 3 }

(* reachable transitions of the golden machine: (1,a) (1,d) (2,a) (3,b)
   (3,c) (4,r) (5,r) — seven; each word covers all of them and
   traverses the faulty (2,a) transition exactly once. *)
let tour_via_b = [ 0; 0; 1; 3; 4; 2; 3 ] (* a a b r d c r *)
let tour_via_c = [ 0; 0; 2; 3; 4; 1; 3 ] (* a a c r d b r *)

type row = { machine : string; tour : string; is_tour : bool; detected : bool }

let experiment () =
  let row name m tname tour =
    {
      machine = name;
      tour = tname;
      is_tour = Simcov_testgen.Tour.word_is_tour m tour;
      detected = Simcov_coverage.Detect.detects m transfer_error tour;
    }
  in
  [
    row "original" original "<a,b> first" tour_via_b;
    row "original" original "<a,c> first" tour_via_c;
    row "repaired" repaired "<a,b> first" tour_via_b;
    row "repaired" repaired "<a,c> first" tour_via_c;
  ]

let random_tour_detection rng ~n m =
  let detected = ref 0 in
  for _ = 1 to n do
    (* random walk until full transition coverage (bounded) *)
    let covered = Hashtbl.create 16 in
    let total = Fsm.n_transitions m in
    let word = ref [] in
    let s = ref m.Fsm.reset in
    let steps = ref 0 in
    while Hashtbl.length covered < total && !steps < 10_000 do
      let inputs = Array.of_list (Fsm.valid_inputs m !s) in
      let i = Simcov_util.Rng.pick rng inputs in
      Hashtbl.replace covered (!s, i) ();
      word := i :: !word;
      s := m.Fsm.next !s i;
      incr steps
    done;
    (* pad with k = 1 extra step so a transfer error excited on the
       final transition still has its exposure window (Theorem 1) *)
    (match Fsm.valid_inputs m !s with
    | i :: _ -> word := i :: !word
    | [] -> ());
    if Simcov_coverage.Detect.detects m transfer_error (List.rev !word) then incr detected
  done;
  !detected
