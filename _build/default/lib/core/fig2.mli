(** The paper's Figure 2: the limitation of transition tours.

    A fragment of a test model where a transfer error on the [a]
    transition out of state 2 (to 3' instead of 3) is exposed by the
    continuation [b] (different outputs from 3 and 3') but not by [c]
    (same output). A transition tour that happens to cover the [a]
    transition followed by [c] never exposes the error.

    Two machines are provided: the [original] (outputs on [c]
    collide), and the [repaired] one where the state reached through
    the error is ∀1-distinguishable (the [c] outputs differ too — the
    Requirement 5 style fix), for which {e every} tour exposes the
    error. *)

open Simcov_fsm

val state_names : string array
val input_names : string array

val original : Fsm.t
(** 7 states (3' and 4' unreachable in the correct machine), inputs
    a, b, c, r, d: [r] closes the loop back to state 1, and [d] is a
    direct edge 1 -> 3 so a tour can cover the [b]/[c] transitions out
    of 3 while traversing the error-prone (2, a) transition exactly
    once. *)

val repaired : Fsm.t
(** Same structure with distinct outputs on [c] from 3 and 3'. *)

val transfer_error : Simcov_coverage.Fault.t
(** The 2 -a-> 3' transfer error of the figure. *)

val tour_via_b : int list
(** A transition tour whose [a]-coverage continues with [b]. *)

val tour_via_c : int list
(** A transition tour whose [a]-coverage continues with [c]. *)

type row = {
  machine : string;
  tour : string;
  is_tour : bool;
  detected : bool;
}

val experiment : unit -> row list
(** The Figure 2 demonstration: both tours on both machines. On
    [original], [tour_via_c] misses the error; on [repaired] every
    tour catches it. *)

val random_tour_detection : Simcov_util.Rng.t -> n:int -> Fsm.t -> int
(** Of [n] random covering walks (greedy with randomized tie-breaks is
    approximated by random walks extended to full coverage), how many
    detect the transfer error. *)
