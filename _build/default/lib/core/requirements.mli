(** Machine-checkable forms of the paper's Requirements 1–5.

    - {b R1} (Section 4.3): all output errors are uniform. Checked
      through an abstraction: every abstract transition whose concrete
      pre-image contains a misbehaving transition must have {e only}
      misbehaving members.
    - {b R2} (Section 5): the processing of each input completes in at
      most [k] transitions. On a test model this is the existence of a
      finite [k] for the ∀k-distinguishability construction; it is an
      assumption about the design (pipeline depth) that we take as a
      bound to search under.
    - {b R3}: each unique input yields a unique output — discharged by
      data selection during concretization (the concretizer emits
      checkpoint records carrying the instruction identity and distinct
      data); the checker validates a concrete run's checkpoint
      injectivity.
    - {b R4}: transfer errors are not masked — an assumption; checked
      empirically by looking for masked windows under sampled transfer
      faults.
    - {b R5}: interaction state is observable — checked as
      ∀1-distinguishability: distinct reachable states must disagree
      on some output for every applicable input. *)

open Simcov_fsm

type status =
  | Satisfied of string  (** evidence description *)
  | Violated of string
  | Assumed of string  (** taken as a design assumption, not checked *)

val is_ok : status -> bool
(** [Satisfied] or [Assumed]. *)

type report = {
  r1_uniform_output_errors : status;
  r2_bounded_processing : status;
  r3_unique_outputs : status;
  r4_no_masking : status;
  r5_observable_interaction : status;
}

val all_ok : report -> bool
val pp_report : Format.formatter -> report -> unit

val check :
  ?concrete:
    (Fsm.t * Simcov_abstraction.Homomorphism.mapping * (int * int -> bool)) ->
  ?k_bound:int ->
  ?rng:Simcov_util.Rng.t ->
  ?masking_samples:int ->
  Fsm.t ->
  report
(** [check model] evaluates the requirements on a test model.

    [concrete] supplies the concrete machine, the abstraction mapping
    and a predicate marking misbehaving concrete transitions, enabling
    the real R1 check; without it R1 is [Assumed].

    [rng] enables the empirical R4 masking scan (sampled transfer
    faults against the optimal tour); without it R4 is [Assumed]. *)
