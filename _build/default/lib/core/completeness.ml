open Simcov_fsm

type certificate = { k : int; n_states : int; n_transitions : int; tour_length : int }

type failure = Not_strongly_connected | Indistinguishable_pair of int * int

let first_bad_pair m ~scope ~k =
  let seen = Fsm.reachable m in
  let in_scope s = match scope with `Reachable -> seen.(s) | `All -> true in
  let mat = Fsm.forall_k_matrix m ~k in
  let bad = ref None in
  (try
     for p = 0 to m.Fsm.n_states - 1 do
       for q = p + 1 to m.Fsm.n_states - 1 do
         if in_scope p && in_scope q && not mat.(p).(q) then begin
           bad := Some (p, q);
           raise Exit
         end
       done
     done
   with Exit -> ());
  !bad

let certify ?(scope = `Reachable) ?(k_bound = 8) m =
  match Simcov_testgen.Tour.transition_tour m with
  | None -> Error Not_strongly_connected
  | Some tour ->
      let rec try_k k last_bad =
        if k > k_bound then
          match last_bad with
          | Some (p, q) -> Error (Indistinguishable_pair (p, q))
          | None -> assert false
        else
          match first_bad_pair m ~scope ~k with
          | None ->
              Ok
                {
                  k;
                  n_states = Fsm.n_reachable m;
                  n_transitions = tour.Simcov_testgen.Tour.n_transitions;
                  tour_length = tour.Simcov_testgen.Tour.length;
                }
          | Some bad -> try_k (k + 1) (Some bad)
      in
      try_k 1 None

let padded_tour m cert =
  match Simcov_testgen.Tour.transition_tour m with
  | None -> invalid_arg "Completeness.padded_tour: no tour"
  | Some tour ->
      (* the tour is a closed walk: it ends at reset; pad with k valid
         steps from there *)
      let rec pad s n acc =
        if n = 0 then List.rev acc
        else
          match Fsm.valid_inputs m s with
          | [] -> List.rev acc
          | i :: _ -> pad (m.Fsm.next s i) (n - 1) (i :: acc)
      in
      tour.Simcov_testgen.Tour.word @ pad m.Fsm.reset cert.k []

let check_empirically ?(n_transfer = 200) ?(n_output = 200) rng m cert =
  let word = padded_tour m cert in
  let n_outputs =
    List.fold_left (fun acc (_, _, _, o) -> max acc (o + 1)) 1 (Fsm.transitions m)
  in
  let faults =
    Simcov_coverage.Fault.sample_transfer_faults rng m ~count:n_transfer
    @ Simcov_coverage.Fault.sample_output_faults rng m ~n_outputs ~count:n_output
  in
  Simcov_coverage.Detect.campaign m faults word
