(** Completeness certification for transition tours (Theorems 1–3).

    Theorem 1: if all output errors are uniform (Requirement 1) and
    all states of the test model are ∀k-distinguishable from each
    other for some fixed k, then a transition tour of the test model
    is sufficient to expose all errors through simulation.

    [certify] establishes the machine-checkable half of that
    statement on a concrete test model: ∀k-distinguishability of every
    reachable state pair, and strong connectivity of the reachable
    transition graph (so a closed tour exists). Requirement 1 lives on
    the abstraction side and is checked separately
    ({!Requirements}). *)

open Simcov_fsm

type certificate = {
  k : int;  (** every distinct reachable pair is ∀k-distinguishable *)
  n_states : int;  (** reachable states *)
  n_transitions : int;
  tour_length : int;  (** optimal (Chinese-postman) tour length *)
}

type failure =
  | Not_strongly_connected
  | Indistinguishable_pair of int * int
      (** a pair not ∀k-distinguishable within the bound — either a
          larger k is needed or Requirement 5 is violated *)

val certify :
  ?scope:[ `Reachable | `All ] -> ?k_bound:int -> Fsm.t -> (certificate, failure) result
(** Find the smallest [k <= k_bound] (default 8) making every distinct
    pair of states ∀k-distinguishable, and build the optimal tour.

    [scope] (default [`Reachable]) selects the pairs that must be
    distinguishable. Use [`All] when implementation transfer errors
    can land in specification states that are unreachable in the
    correct machine — Figure 2's 3' is such a state, and the original
    fragment certifies under [`Reachable] yet its tours still miss the
    error; under [`All] certification correctly refuses. *)

val padded_tour : Fsm.t -> certificate -> int list
(** The certificate's tour followed by [k] extra (arbitrary valid)
    steps, so that even a transfer error excited on the tour's last
    transition has the [k] subsequent steps Theorem 1 needs for
    exposure. *)

val check_empirically :
  ?n_transfer:int ->
  ?n_output:int ->
  Simcov_util.Rng.t ->
  Fsm.t ->
  certificate ->
  Simcov_coverage.Detect.report
(** Fault-inject the test model (random transfer + output errors) and
    run the padded tour: under the certificate every effective fault
    must be detected. Returns the campaign report (the caller asserts
    [coverage_pct = 100]). *)
