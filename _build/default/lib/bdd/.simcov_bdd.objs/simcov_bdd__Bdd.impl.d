lib/bdd/bdd.ml: Array Buffer Float Format Hashtbl Int List Printf
