type t = False | True | Node of { v : int; lo : t; hi : t; uid : int }

type man = {
  nvars : int;
  unique : (int * int * int, t) Hashtbl.t;
  mutable next_uid : int;
  and_cache : (int * int, t) Hashtbl.t;
  xor_cache : (int * int, t) Hashtbl.t;
  not_cache : (int, t) Hashtbl.t;
  ite_cache : (int * int * int, t) Hashtbl.t;
}

let man ?(cache_size = 1 lsl 14) nvars =
  assert (nvars >= 0);
  {
    nvars;
    unique = Hashtbl.create cache_size;
    next_uid = 2;
    and_cache = Hashtbl.create cache_size;
    xor_cache = Hashtbl.create cache_size;
    not_cache = Hashtbl.create cache_size;
    ite_cache = Hashtbl.create cache_size;
  }

let num_vars m = m.nvars
let node_count m = Hashtbl.length m.unique + 2

let bfalse _ = False
let btrue _ = True
let of_bool _ b = if b then True else False

let id = function False -> 0 | True -> 1 | Node n -> n.uid

let mk m v lo hi =
  if lo == hi then lo
  else
    let key = (v, id lo, id hi) in
    match Hashtbl.find_opt m.unique key with
    | Some n -> n
    | None ->
        let n = Node { v; lo; hi; uid = m.next_uid } in
        m.next_uid <- m.next_uid + 1;
        Hashtbl.add m.unique key n;
        n

let var m v =
  assert (v >= 0 && v < m.nvars);
  mk m v False True

let nvar m v =
  assert (v >= 0 && v < m.nvars);
  mk m v True False

let is_true t = t == True
let is_false t = t == False
let equal a b = a == b

let topvar = function
  | Node n -> n.v
  | False | True -> invalid_arg "Bdd.topvar: constant"

let low = function
  | Node n -> n.lo
  | (False | True) as c -> c

let high = function
  | Node n -> n.hi
  | (False | True) as c -> c

let size t =
  let seen = Hashtbl.create 64 in
  let rec go t =
    match t with
    | False | True -> ()
    | Node n ->
        if not (Hashtbl.mem seen n.uid) then begin
          Hashtbl.add seen n.uid ();
          go n.lo;
          go n.hi
        end
  in
  go t;
  Hashtbl.length seen + 2

(* The variable of a node for cofactoring purposes: constants sort
   below every real variable. *)
let level = function False | True -> max_int | Node n -> n.v

let cof t v =
  match t with
  | Node n when n.v = v -> (n.lo, n.hi)
  | _ -> (t, t)

let rec bnot m t =
  match t with
  | False -> True
  | True -> False
  | Node n -> (
      match Hashtbl.find_opt m.not_cache n.uid with
      | Some r -> r
      | None ->
          let r = mk m n.v (bnot m n.lo) (bnot m n.hi) in
          Hashtbl.add m.not_cache n.uid r;
          r)

let rec band m a b =
  match (a, b) with
  | False, _ | _, False -> False
  | True, x | x, True -> x
  | Node na, Node nb ->
      if a == b then a
      else
        let key = if na.uid <= nb.uid then (na.uid, nb.uid) else (nb.uid, na.uid) in
        (match Hashtbl.find_opt m.and_cache key with
        | Some r -> r
        | None ->
            let v = min na.v nb.v in
            let alo, ahi = cof a v and blo, bhi = cof b v in
            let r = mk m v (band m alo blo) (band m ahi bhi) in
            Hashtbl.add m.and_cache key r;
            r)

let bor m a b = bnot m (band m (bnot m a) (bnot m b))

let rec bxor m a b =
  match (a, b) with
  | False, x | x, False -> x
  | True, x | x, True -> bnot m x
  | Node na, Node nb ->
      if a == b then False
      else
        let key = if na.uid <= nb.uid then (na.uid, nb.uid) else (nb.uid, na.uid) in
        (match Hashtbl.find_opt m.xor_cache key with
        | Some r -> r
        | None ->
            let v = min na.v nb.v in
            let alo, ahi = cof a v and blo, bhi = cof b v in
            let r = mk m v (bxor m alo blo) (bxor m ahi bhi) in
            Hashtbl.add m.xor_cache key r;
            r)

let bimp m a b = bor m (bnot m a) b
let biff m a b = bnot m (bxor m a b)

let rec ite m c t e =
  match c with
  | True -> t
  | False -> e
  | Node _ ->
      if t == e then t
      else if is_true t && is_false e then c
      else
        let key = (id c, id t, id e) in
        (match Hashtbl.find_opt m.ite_cache key with
        | Some r -> r
        | None ->
            let v = min (level c) (min (level t) (level e)) in
            let clo, chi = cof c v
            and tlo, thi = cof t v
            and elo, ehi = cof e v in
            let r = mk m v (ite m clo tlo elo) (ite m chi thi ehi) in
            Hashtbl.add m.ite_cache key r;
            r)

let conj m = List.fold_left (band m) True
let disj m = List.fold_left (bor m) False

let rec cofactor m t v b =
  match t with
  | False | True -> t
  | Node n ->
      if n.v > v then t
      else if n.v = v then if b then n.hi else n.lo
      else mk m n.v (cofactor m n.lo v b) (cofactor m n.hi v b)

(* Quantification: [vars] sorted ascending; membership probed with a
   per-call cache keyed by node uid (valid because the var set is fixed
   for the call). *)
let quantify m ~disjunctive vars t =
  let vset = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace vset v ()) vars;
  let cache = Hashtbl.create 256 in
  let combine a b = if disjunctive then bor m a b else band m a b in
  let rec go t =
    match t with
    | False | True -> t
    | Node n -> (
        match Hashtbl.find_opt cache n.uid with
        | Some r -> r
        | None ->
            let r =
              if Hashtbl.mem vset n.v then combine (go n.lo) (go n.hi)
              else mk m n.v (go n.lo) (go n.hi)
            in
            Hashtbl.add cache n.uid r;
            r)
  in
  go t

let exists m vars t = quantify m ~disjunctive:true vars t
let forall m vars t = quantify m ~disjunctive:false vars t

(* Fused AND-EXISTS: quantifies while conjoining, pruning as soon as a
   branch reaches True under the quantifier. *)
let and_exists m vars f g =
  let vset = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace vset v ()) vars;
  let cache = Hashtbl.create 1024 in
  let rec go f g =
    match (f, g) with
    | False, _ | _, False -> False
    | True, True -> True
    | _ ->
        let fid = id f and gid = id g in
        let key = if fid <= gid then (fid, gid) else (gid, fid) in
        (match Hashtbl.find_opt cache key with
        | Some r -> r
        | None ->
            let v = min (level f) (level g) in
            let flo, fhi = cof f v and glo, ghi = cof g v in
            let r =
              if Hashtbl.mem vset v then
                let lo = go flo glo in
                if is_true lo then True else bor m lo (go fhi ghi)
              else mk m v (go flo glo) (go fhi ghi)
            in
            Hashtbl.add cache key r;
            r)
  in
  go f g

let rename m subst t =
  let cache = Hashtbl.create 256 in
  let rec go t =
    match t with
    | False | True -> t
    | Node n -> (
        match Hashtbl.find_opt cache n.uid with
        | Some r -> r
        | None ->
            let v' = subst n.v in
            assert (v' >= 0 && v' < m.nvars);
            let r = mk m v' (go n.lo) (go n.hi) in
            Hashtbl.add cache n.uid r;
            r)
  in
  go t

let restrict_cube m assigns t =
  List.fold_left (fun acc (v, b) -> cofactor m acc v b) t assigns

let any_sat _m t =
  let rec go t acc =
    match t with
    | True -> List.rev acc
    | False -> raise Not_found
    | Node n -> if is_false n.hi then go n.lo ((n.v, false) :: acc) else go n.hi ((n.v, true) :: acc)
  in
  go t []

let sat_count _m ~nvars t =
  let cache = Hashtbl.create 256 in
  (* count over the subspace of variables >= from *)
  let rec go t from =
    match t with
    | False -> 0.0
    | True -> Float.of_int 1 *. Float.pow 2.0 (Float.of_int (nvars - from))
    | Node n ->
        let below =
          match Hashtbl.find_opt cache n.uid with
          | Some c -> c
          | None ->
              let c = go n.lo (n.v + 1) +. go n.hi (n.v + 1) in
              Hashtbl.add cache n.uid c;
              c
        in
        below *. Float.pow 2.0 (Float.of_int (n.v - from))
  in
  go t 0

let support _m t =
  let seen = Hashtbl.create 64 in
  let vars = Hashtbl.create 16 in
  let rec go t =
    match t with
    | False | True -> ()
    | Node n ->
        if not (Hashtbl.mem seen n.uid) then begin
          Hashtbl.add seen n.uid ();
          Hashtbl.replace vars n.v ();
          go n.lo;
          go n.hi
        end
  in
  go t;
  Hashtbl.fold (fun v () acc -> v :: acc) vars [] |> List.sort Int.compare

let eval _m t assign =
  let rec go t =
    match t with
    | True -> true
    | False -> false
    | Node n -> if assign n.v then go n.hi else go n.lo
  in
  go t

let iter_sat m ~vars f t =
  let k = Array.length vars in
  let buf = Array.make k false in
  let rec go i t =
    if i = k then begin
      match t with
      | True -> f buf
      | False -> ()
      | Node _ -> invalid_arg "Bdd.iter_sat: support escapes vars"
    end
    else if not (is_false t) then begin
      let v = vars.(i) in
      buf.(i) <- false;
      go (i + 1) (cofactor m t v false);
      buf.(i) <- true;
      go (i + 1) (cofactor m t v true)
    end
  in
  if not (is_false t) then go 0 t

let pp ppf t = Format.fprintf ppf "<bdd #%d, %d nodes>" (id t) (size t)

let to_dot ?(var_name = fun v -> "x" ^ string_of_int v) t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph bdd {\n";
  Buffer.add_string buf "  node [shape=circle];\n";
  Buffer.add_string buf "  F [shape=box, label=\"0\"];\n";
  Buffer.add_string buf "  T [shape=box, label=\"1\"];\n";
  let seen = Hashtbl.create 64 in
  let node_ref = function False -> "F" | True -> "T" | Node n -> "n" ^ string_of_int n.uid in
  let rec go t =
    match t with
    | False | True -> ()
    | Node n ->
        if not (Hashtbl.mem seen n.uid) then begin
          Hashtbl.add seen n.uid ();
          Buffer.add_string buf
            (Printf.sprintf "  n%d [label=\"%s\"];\n" n.uid (var_name n.v));
          Buffer.add_string buf
            (Printf.sprintf "  n%d -> %s [style=dashed];\n" n.uid (node_ref n.lo));
          Buffer.add_string buf (Printf.sprintf "  n%d -> %s;\n" n.uid (node_ref n.hi));
          go n.lo;
          go n.hi
        end
  in
  go t;
  Buffer.add_string buf (Printf.sprintf "  root [shape=none, label=\"\"];\n  root -> %s;\n" (node_ref t));
  Buffer.add_string buf "}\n";
  Buffer.contents buf
