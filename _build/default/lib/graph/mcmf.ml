type arc = { dst : int; mutable cap : int; cost : int; rev : int }

type t = {
  n : int;
  adj : arc array ref array; (* grown per node *)
  sizes : int array;
  mutable handles : (int * int * int) array; (* handle -> (node, index, cap0) *)
  mutable n_arcs : int;
}

(* Per node, a growable array of arcs. A forward arc at (u, i) has a
   twin at (v, rev); residual capacity moves between the two as flow is
   pushed. *)

let create n =
  {
    n;
    adj = Array.init n (fun _ -> ref [||]);
    sizes = Array.make n 0;
    handles = [||];
    n_arcs = 0;
  }

let push_arc t u arc =
  let a = t.adj.(u) in
  let size = t.sizes.(u) in
  if size >= Array.length !a then begin
    let bigger = Array.make (max 4 (2 * Array.length !a)) arc in
    Array.blit !a 0 bigger 0 size;
    a := bigger
  end;
  !a.(size) <- { arc with cap = arc.cap };
  t.sizes.(u) <- size + 1;
  size

let add_arc t ~src ~dst ~cap ~cost =
  assert (cap >= 0);
  (* Compute both slots up front so self-loop twins point correctly. *)
  let i = t.sizes.(src) in
  let j = t.sizes.(dst) + if src = dst then 1 else 0 in
  let _ = push_arc t src { dst; cap; cost; rev = j } in
  let _ = push_arc t dst { dst = src; cap = 0; cost = -cost; rev = i } in
  if t.n_arcs >= Array.length t.handles then begin
    let bigger = Array.make (max 8 (2 * Array.length t.handles)) (0, 0, 0) in
    Array.blit t.handles 0 bigger 0 t.n_arcs;
    t.handles <- bigger
  end;
  t.handles.(t.n_arcs) <- (src, i, cap);
  let handle = t.n_arcs in
  t.n_arcs <- handle + 1;
  handle

let solve t ~source ~sink =
  let dist = Array.make t.n max_int in
  let in_queue = Array.make t.n false in
  let pred_node = Array.make t.n (-1) in
  let pred_arc = Array.make t.n (-1) in
  let total_flow = ref 0 and total_cost = ref 0 in
  let continue = ref true in
  while !continue do
    Array.fill dist 0 t.n max_int;
    dist.(source) <- 0;
    let queue = Queue.create () in
    Queue.add source queue;
    in_queue.(source) <- true;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      in_queue.(u) <- false;
      let arcs = !(t.adj.(u)) in
      for i = 0 to t.sizes.(u) - 1 do
        let a = arcs.(i) in
        if a.cap > 0 && dist.(u) <> max_int && dist.(u) + a.cost < dist.(a.dst)
        then begin
          dist.(a.dst) <- dist.(u) + a.cost;
          pred_node.(a.dst) <- u;
          pred_arc.(a.dst) <- i;
          if not in_queue.(a.dst) then begin
            Queue.add a.dst queue;
            in_queue.(a.dst) <- true
          end
        end
      done
    done;
    if dist.(sink) = max_int then continue := false
    else begin
      let bottleneck = ref max_int in
      let v = ref sink in
      while !v <> source do
        let u = pred_node.(!v) in
        let a = !(t.adj.(u)).(pred_arc.(!v)) in
        if a.cap < !bottleneck then bottleneck := a.cap;
        v := u
      done;
      let v = ref sink in
      while !v <> source do
        let u = pred_node.(!v) in
        let a = !(t.adj.(u)).(pred_arc.(!v)) in
        a.cap <- a.cap - !bottleneck;
        let twin = !(t.adj.(a.dst)).(a.rev) in
        twin.cap <- twin.cap + !bottleneck;
        v := u
      done;
      total_flow := !total_flow + !bottleneck;
      total_cost := !total_cost + (!bottleneck * dist.(sink))
    end
  done;
  (!total_flow, !total_cost)

let flow_on t handle =
  assert (handle >= 0 && handle < t.n_arcs);
  let node, i, cap0 = t.handles.(handle) in
  let a = !(t.adj.(node)).(i) in
  cap0 - a.cap
