(** Shortest paths on directed multigraphs. *)

val bfs : Digraph.t -> source:int -> int array
(** Unit-cost distances from [source]; unreachable vertices get
    [max_int]. *)

val dijkstra : Digraph.t -> source:int -> int array * int array
(** [dijkstra g ~source] is [(dist, pred_edge)] using edge costs
    (which must be nonnegative). [pred_edge.(v)] is the id of the edge
    through which [v] was reached, or [-1] for the source and
    unreachable vertices. Unreachable distance is [max_int]. *)

val path_to : pred_edge:int array -> Digraph.t -> int -> int list
(** Reconstruct the edge-id path from the source to the given vertex
    using [pred_edge]; empty for the source itself. *)

val all_pairs : Digraph.t -> int array array
(** Dijkstra from every vertex: [dist.(u).(v)]. Intended for the small
    imbalance subproblems of the Chinese postman solver. *)
