let bfs g ~source =
  let n = Digraph.n_vertices g in
  let dist = Array.make n max_int in
  let queue = Queue.create () in
  dist.(source) <- 0;
  Queue.add source queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun e ->
        let w = e.Digraph.dst in
        if dist.(w) = max_int then begin
          dist.(w) <- dist.(v) + 1;
          Queue.add w queue
        end)
      (Digraph.out_edges g v)
  done;
  dist

(* Binary-heap Dijkstra over (dist, vertex) pairs encoded as a single
   int: dist * n + vertex. Costs are small, so no overflow concern. *)
module Heap = struct
  type t = { mutable a : int array; mutable size : int }

  let create () = { a = Array.make 16 0; size = 0 }
  let is_empty h = h.size = 0

  let push h x =
    if h.size >= Array.length h.a then begin
      let a = Array.make (2 * Array.length h.a) 0 in
      Array.blit h.a 0 a 0 h.size;
      h.a <- a
    end;
    let i = ref h.size in
    h.a.(!i) <- x;
    h.size <- h.size + 1;
    while !i > 0 && h.a.((!i - 1) / 2) > h.a.(!i) do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let pop h =
    let top = h.a.(0) in
    h.size <- h.size - 1;
    h.a.(0) <- h.a.(h.size);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.size && h.a.(l) < h.a.(!smallest) then smallest := l;
      if r < h.size && h.a.(r) < h.a.(!smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        let tmp = h.a.(!smallest) in
        h.a.(!smallest) <- h.a.(!i);
        h.a.(!i) <- tmp;
        i := !smallest
      end
    done;
    top
end

let dijkstra g ~source =
  let n = Digraph.n_vertices g in
  let dist = Array.make n max_int in
  let pred = Array.make n (-1) in
  let heap = Heap.create () in
  dist.(source) <- 0;
  Heap.push heap source;
  (* encoding: key = dist * n + vertex *)
  while not (Heap.is_empty heap) do
    let key = Heap.pop heap in
    let v = key mod n and d = key / n in
    if d = dist.(v) then
      List.iter
        (fun e ->
          let w = e.Digraph.dst in
          let nd = d + e.Digraph.cost in
          if nd < dist.(w) then begin
            dist.(w) <- nd;
            pred.(w) <- e.Digraph.id;
            Heap.push heap ((nd * n) + w)
          end)
        (Digraph.out_edges g v)
  done;
  (dist, pred)

let path_to ~pred_edge g v =
  let rec go v acc =
    match pred_edge.(v) with
    | -1 -> acc
    | id ->
        let e = Digraph.edge g id in
        go e.Digraph.src (id :: acc)
  in
  go v []

let all_pairs g =
  Array.init (Digraph.n_vertices g) (fun v -> fst (dijkstra g ~source:v))
