(** Directed multigraphs with integer-labeled, integer-weighted edges.

    Vertices are [0 .. n_vertices - 1]. Edges carry a [label] (used by
    FSM exports to remember which input symbol an edge corresponds to)
    and a nonnegative [cost] (used by tour optimization). Parallel edges
    and self-loops are allowed. *)

type edge = { id : int; src : int; dst : int; label : int; cost : int }

type t

val create : int -> t
(** [create n] is an empty graph on [n] vertices. *)

val n_vertices : t -> int
val n_edges : t -> int

val add_edge : t -> src:int -> dst:int -> label:int -> cost:int -> int
(** Adds an edge and returns its id. Ids are dense, starting at 0. *)

val edge : t -> int -> edge
(** Edge by id. *)

val out_edges : t -> int -> edge list
(** Outgoing edges of a vertex, in insertion order. *)

val in_degree : t -> int -> int
val out_degree : t -> int -> int

val iter_edges : (edge -> unit) -> t -> unit
val fold_edges : (edge -> 'a -> 'a) -> t -> 'a -> 'a

val reverse : t -> t
(** Graph with every edge flipped (labels and costs preserved). *)

val pp : Format.formatter -> t -> unit
