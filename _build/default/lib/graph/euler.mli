(** Eulerian circuits on directed multigraphs (Hierholzer's algorithm). *)

val circuit : Digraph.t -> start:int -> mult:int array -> int list option
(** [circuit g ~start ~mult] finds a closed walk from [start] that uses
    each edge [e] exactly [mult.(e.id)] times, or [None] when no such
    circuit exists (degrees unbalanced, or the used edges are not
    connected to [start]). The result is the list of edge ids in walk
    order. Runs in time linear in the total multiplicity. *)

val is_balanced : Digraph.t -> mult:int array -> bool
(** Whether every vertex has equal weighted in- and out-degree under the
    multiplicities. *)
