lib/graph/euler.mli: Digraph
