lib/graph/cpp.mli: Digraph
