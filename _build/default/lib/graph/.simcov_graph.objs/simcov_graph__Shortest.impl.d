lib/graph/shortest.ml: Array Digraph List Queue
