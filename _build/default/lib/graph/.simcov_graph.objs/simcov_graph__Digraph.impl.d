lib/graph/digraph.ml: Array Format List
