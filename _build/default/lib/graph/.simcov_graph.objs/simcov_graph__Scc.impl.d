lib/graph/scc.ml: Array Digraph List Queue
