lib/graph/scc.mli: Digraph
