lib/graph/mcmf.mli:
