lib/graph/cpp.ml: Array Digraph Euler List Mcmf Scc Shortest
