lib/graph/mcmf.ml: Array Queue
