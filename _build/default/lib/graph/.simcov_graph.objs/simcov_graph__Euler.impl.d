lib/graph/euler.ml: Array Digraph
