lib/graph/shortest.mli: Digraph
