let degrees g ~mult =
  let n = Digraph.n_vertices g in
  let indeg = Array.make n 0 and outdeg = Array.make n 0 in
  Digraph.iter_edges
    (fun e ->
      let m = mult.(e.Digraph.id) in
      outdeg.(e.Digraph.src) <- outdeg.(e.Digraph.src) + m;
      indeg.(e.Digraph.dst) <- indeg.(e.Digraph.dst) + m)
    g;
  (indeg, outdeg)

let is_balanced g ~mult =
  let indeg, outdeg = degrees g ~mult in
  let ok = ref true in
  Array.iteri (fun v d -> if d <> outdeg.(v) then ok := false) indeg;
  !ok

(* Hierholzer with per-vertex cursors. Each edge id is expanded [mult]
   times into per-vertex arrays of pending edge instances; the
   classical splice-free formulation pushes vertices on a stack and
   emits edges in reverse. *)
let circuit g ~start ~mult =
  if not (is_balanced g ~mult) then None
  else begin
    let n = Digraph.n_vertices g in
    let pending : int list array = Array.make n [] in
    let total = ref 0 in
    Digraph.iter_edges
      (fun e ->
        for _ = 1 to mult.(e.Digraph.id) do
          pending.(e.Digraph.src) <- e.Digraph.id :: pending.(e.Digraph.src);
          incr total
        done)
      g;
    if !total = 0 then Some []
    else begin
      (* stack of (vertex, incoming edge id used to get there) *)
      let stack = ref [ (start, -1) ] in
      let out = ref [] in
      let used = ref 0 in
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | (v, via) :: rest -> (
            match pending.(v) with
            | e :: es ->
                pending.(v) <- es;
                incr used;
                stack := ((Digraph.edge g e).Digraph.dst, e) :: !stack
            | [] ->
                stack := rest;
                if via >= 0 then out := via :: !out)
      done;
      if !used <> !total then None (* some edges unreachable from start *)
      else Some !out
    end
  end
