type tour = { edges : int list; length : int; cost : int; extra_cost : int }

let lower_bound g = Digraph.fold_edges (fun e acc -> acc + e.Digraph.cost) g 0

(* Balance in-/out-degrees by routing flow along original edges: a
   vertex with surplus incoming degree must start d extra edge copies,
   one with surplus outgoing degree must absorb them. The min-cost flow
   on the network (S -> surplus-in vertices, original edges with
   infinite capacity, deficit vertices -> T) gives the cheapest
   multiplicity augmentation; Hierholzer then produces the tour. *)
let solve g ~start =
  match Scc.restrict_strongly_connected g ~root:start with
  | None -> None
  | Some _members ->
      let n = Digraph.n_vertices g in
      let m = Digraph.n_edges g in
      if m = 0 then Some { edges = []; length = 0; cost = 0; extra_cost = 0 }
      else begin
        let indeg = Array.make n 0 and outdeg = Array.make n 0 in
        Digraph.iter_edges
          (fun e ->
            outdeg.(e.Digraph.src) <- outdeg.(e.Digraph.src) + 1;
            indeg.(e.Digraph.dst) <- indeg.(e.Digraph.dst) + 1)
          g;
        let net = Mcmf.create (n + 2) in
        let source = n and sink = n + 1 in
        let inf = m + 1 in
        (* Edge arcs: extra copies of each edge. Self-loops never need
           extra copies (they do not change the degree balance). *)
        let edge_handles = Array.make m (-1) in
        Digraph.iter_edges
          (fun e ->
            if e.Digraph.src <> e.Digraph.dst then
              edge_handles.(e.Digraph.id) <-
                Mcmf.add_arc net ~src:e.Digraph.src ~dst:e.Digraph.dst ~cap:inf
                  ~cost:e.Digraph.cost)
          g;
        for v = 0 to n - 1 do
          let d = indeg.(v) - outdeg.(v) in
          if d > 0 then ignore (Mcmf.add_arc net ~src:source ~dst:v ~cap:d ~cost:0)
          else if d < 0 then
            ignore (Mcmf.add_arc net ~src:v ~dst:sink ~cap:(-d) ~cost:0)
        done;
        let _flow, extra_cost = Mcmf.solve net ~source ~sink in
        let mult = Array.make m 1 in
        let extra_len = ref 0 in
        Digraph.iter_edges
          (fun e ->
            let id = e.Digraph.id in
            if edge_handles.(id) >= 0 then begin
              let f = Mcmf.flow_on net edge_handles.(id) in
              mult.(id) <- 1 + f;
              extra_len := !extra_len + f
            end)
          g;
        match Euler.circuit g ~start ~mult with
        | None -> None
        | Some edges ->
            Some
              {
                edges;
                length = m + !extra_len;
                cost = lower_bound g + extra_cost;
                extra_cost;
              }
      end

let greedy g ~start =
  match Scc.restrict_strongly_connected g ~root:start with
  | None -> None
  | Some _ ->
      let n = Digraph.n_vertices g in
      let m = Digraph.n_edges g in
      if m = 0 then Some { edges = []; length = 0; cost = 0; extra_cost = 0 }
      else begin
        let covered = Array.make m false in
        let n_covered = ref 0 in
        let walk = ref [] in
        let cost = ref 0 in
        let len = ref 0 in
        let current = ref start in
        (* Per-vertex stack of not-yet-taken out-edge ids; covered
           entries are lazily discarded, keeping the local lookup
           amortized O(1). *)
        let pending = Array.make n [] in
        Digraph.iter_edges
          (fun e -> pending.(e.Digraph.src) <- e.Digraph.id :: pending.(e.Digraph.src))
          g;
        let rec pop_uncovered v =
          match pending.(v) with
          | [] -> None
          | id :: rest ->
              pending.(v) <- rest;
              if covered.(id) then pop_uncovered v else Some id
        in
        let rec has_uncovered v =
          match pending.(v) with
          | [] -> false
          | id :: rest ->
              if covered.(id) then begin
                pending.(v) <- rest;
                has_uncovered v
              end
              else true
        in
        let take e =
          let id = e.Digraph.id in
          if not covered.(id) then begin
            covered.(id) <- true;
            incr n_covered
          end;
          walk := id :: !walk;
          cost := !cost + e.Digraph.cost;
          incr len;
          current := e.Digraph.dst
        in
        while !n_covered < m do
          match pop_uncovered !current with
          | Some id -> take (Digraph.edge g id)
          | None ->
              (* Dijkstra to the nearest vertex owning an uncovered
                 out-edge, then walk there. *)
              let dist, pred = Shortest.dijkstra g ~source:!current in
              let best = ref (-1) in
              for v = 0 to n - 1 do
                if
                  dist.(v) <> max_int
                  && (!best = -1 || dist.(v) < dist.(!best))
                  && has_uncovered v
                then best := v
              done;
              if !best = -1 then raise Exit (* unreachable: graph is SC *)
              else begin
                let path = Shortest.path_to ~pred_edge:pred g !best in
                List.iter (fun id -> take (Digraph.edge g id)) path
              end
        done;
        (* Return to start to make a closed walk, mirroring the CPP
           tour's circuit property. *)
        if !current <> start then begin
          let _, pred = Shortest.dijkstra g ~source:!current in
          let path = Shortest.path_to ~pred_edge:pred g start in
          List.iter (fun id -> take (Digraph.edge g id)) path
        end;
        Some
          {
            edges = List.rev !walk;
            length = !len;
            cost = !cost;
            extra_cost = !cost - lower_bound g;
          }
      end
