(** Strongly connected components (Tarjan's algorithm, iterative). *)

val components : Digraph.t -> int array * int
(** [components g] is [(comp, k)] where [comp.(v)] is the component index
    of vertex [v] (components are numbered [0 .. k - 1] in reverse
    topological order: an edge between components goes from a
    higher-numbered to a lower-numbered one... see note) and [k] is the
    number of components. Tarjan emits components in reverse topological
    order, so [comp.(u) >= comp.(v)] never holds for a cross edge
    [u -> v] pointing forward; concretely, for any edge [u -> v] with
    [comp.(u) <> comp.(v)], [comp.(u) > comp.(v)]. *)

val is_strongly_connected : Digraph.t -> bool
(** True when the whole vertex set forms a single component. For graphs
    with isolated vertices this is false unless [n <= 1]. *)

val restrict_strongly_connected : Digraph.t -> root:int -> int array option
(** [restrict_strongly_connected g ~root] returns [Some comp_members]
    (sorted vertex ids) of the component containing [root] if that
    component contains every edge endpoint reachable from [root];
    [None] when vertices reachable from [root] escape its component
    (i.e. the reachable subgraph is not strongly connected). *)
