(** Minimum-cost maximum-flow (successive shortest paths with SPFA).

    Used by the directed Chinese postman solver to balance vertex
    degrees at minimum extra tour cost. Capacities and costs are ints;
    costs may not create negative cycles (ours never do: all arc costs
    are nonnegative). *)

type t

val create : int -> t
(** [create n] is a flow network on [n] nodes. *)

val add_arc : t -> src:int -> dst:int -> cap:int -> cost:int -> int
(** Adds a forward arc (and its residual twin); returns a handle that
    can be passed to {!flow_on}. *)

val solve : t -> source:int -> sink:int -> int * int
(** [(max_flow, total_cost)] of a min-cost max-flow from [source] to
    [sink]. *)

val flow_on : t -> int -> int
(** Flow routed through a previously added arc (valid after {!solve}). *)
