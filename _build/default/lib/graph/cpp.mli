(** Directed Chinese Postman tours.

    The paper (Section 6.5) notes that a minimum-cost transition tour of
    an FSM corresponds directly to the (directed) Chinese postman
    problem, solvable in polynomial time. Given a strongly connected
    digraph, we find edge multiplicities [m.(e) >= 1] minimizing total
    cost such that the resulting multigraph is Eulerian, then extract
    the circuit. *)

type tour = {
  edges : int list;  (** edge ids in walk order, a closed walk *)
  length : int;  (** number of edge traversals *)
  cost : int;  (** total cost of the walk *)
  extra_cost : int;  (** cost added on top of visiting each edge once *)
}

val solve : Digraph.t -> start:int -> tour option
(** [solve g ~start] is the minimum-cost closed walk from [start]
    covering every edge at least once, or [None] if [g] (restricted to
    edge endpoints) is not strongly connected from [start]. Isolated
    vertices are ignored. *)

val lower_bound : Digraph.t -> int
(** Sum of edge costs: any covering walk costs at least this much. *)

val greedy : Digraph.t -> start:int -> tour option
(** Nearest-uncovered-edge heuristic: repeatedly BFS (by cost) to the
    closest vertex with an uncovered out-edge and take it. Always
    yields a covering walk on strongly connected inputs; typically
    longer than {!solve}'s, which is the comparison the tour-length
    ablation (experiment E6) reports. *)
