(** Symbolic (BDD-based) finite state machines.

    The implicit transition-relation representation the paper builds
    inside SIS (Section 7.2): current-state variables, next-state
    variables and input variables, with the transition relation
    T(s, x, s') = AND_i (s'_i <-> delta_i(s, x)), an input-validity
    constraint V(s, x), and an initial-state predicate. Current and
    next state variables are interleaved in the variable order, the
    standard heuristic for relation BDDs.

    Used to reproduce the paper's counts: reachable states (13,720 of
    2^22 there), valid input combinations (8228 of 2^25), and the
    number of distinct transitions (123 million). *)

open Simcov_bdd

type t = {
  man : Bdd.man;
  n_state_vars : int;
  n_input_vars : int;
  cur : int array;  (** current-state BDD variables *)
  nxt : int array;  (** next-state BDD variables *)
  inp : int array;  (** input BDD variables *)
  trans : Bdd.t;  (** T(cur, inp, nxt), conjoined with validity *)
  valid : Bdd.t;  (** V(cur, inp) *)
  init : Bdd.t;  (** I(cur) *)
  outputs : Bdd.t array;  (** O_k(cur, inp) per output bit *)
}

val of_circuit : Simcov_netlist.Circuit.t -> t
(** Compile a netlist: one state variable per register, one input
    variable per primary input. *)

val of_fsm : Simcov_fsm.Fsm.t -> t
(** Encode an explicit machine in binary (states and inputs packed
    little-endian; unreachable encodings excluded by validity). *)

(** {1 Traversal} *)

val image : t -> Bdd.t -> Bdd.t
(** Forward image over valid transitions: the set (over [cur] vars) of
    successors of the given set (over [cur] vars). *)

val preimage : t -> Bdd.t -> Bdd.t
(** States with a valid transition into the given set. *)

val reachable : t -> Bdd.t * int
(** Least fixpoint of [image] from [init]; also returns the number of
    iterations (the sequential depth + 1). *)

(** {1 Counting} *)

val count_states : t -> Bdd.t -> float
(** Number of states in a set over [cur] vars. *)

val count_reachable : t -> float

val count_transitions : t -> float
(** Number of distinct (reachable state, valid input) pairs — for a
    deterministic machine, the number of transitions a tour must
    cover. *)

val count_valid_inputs : t -> float
(** Number of input combinations valid in at least one reachable state
    (the paper's "only 8228 of 2^25 are valid"). *)

val state_space_size : t -> float
(** [2^n_state_vars]. *)

val input_space_size : t -> float

(** {1 Concretization} *)

val pick_state : t -> Bdd.t -> bool array option
(** Some concrete state in the set (arbitrary but deterministic). *)

val state_cube : t -> bool array -> Bdd.t
(** Characteristic function (over [cur] vars) of one concrete state. *)
