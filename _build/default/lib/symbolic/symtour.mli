(** Transition-tour generation over the implicit (BDD) representation.

    The paper generates its tour "by traversal of this implicit
    representation, along with consideration of input don't-cares"
    (Section 6.5) — no explicit state enumeration. This module does
    the same: it tracks the set of covered (state, input) pairs as a
    BDD and repeatedly walks (concretely, one cycle at a time) to the
    nearest state owning an uncovered valid transition, found through
    backward symbolic breadth-first layers.

    The resulting tours are not optimal (neither was the paper's:
    1069 M traversals over 123 M transitions); they exist to exercise
    models whose state spaces are far beyond explicit methods. Use
    {!Simcov_testgen.Tour} when the model fits in arrays. *)

open Simcov_netlist

type progress = {
  steps : int;  (** inputs applied so far *)
  covered : float;  (** transitions covered *)
  total : float;  (** reachable valid transitions *)
}

type result = {
  word : bool array list;  (** input vectors, in order, from the initial state *)
  complete : bool;  (** all reachable valid transitions covered *)
  progress : progress;
}

val generate : ?max_steps:int -> Circuit.t -> result
(** Greedy symbolic tour from the initial state. Stops when complete
    or after [max_steps] (default 100_000) inputs. The word is
    replayable with {!Simcov_netlist.Circuit.simulate}. *)

val coverage_of_word : Circuit.t -> bool array list -> float * float
(** [(covered, total)] transitions for an arbitrary input word (each
    vector must be valid when applied). *)
