lib/symbolic/symtour.mli: Circuit Simcov_netlist
