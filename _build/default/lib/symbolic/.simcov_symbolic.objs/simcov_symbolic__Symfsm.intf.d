lib/symbolic/symfsm.mli: Bdd Simcov_bdd Simcov_fsm Simcov_netlist
