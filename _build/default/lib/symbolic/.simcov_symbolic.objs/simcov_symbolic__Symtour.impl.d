lib/symbolic/symtour.ml: Array Bdd Circuit Float List Simcov_bdd Simcov_netlist Symfsm
