lib/symbolic/equiv.mli: Circuit Simcov_netlist
