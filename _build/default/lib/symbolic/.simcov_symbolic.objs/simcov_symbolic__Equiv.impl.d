lib/symbolic/equiv.ml: Array Bdd Circuit Expr Float List Simcov_bdd Simcov_netlist
