lib/symbolic/symfsm.ml: Array Bdd Circuit Expr Float Fsm List Simcov_bdd Simcov_fsm Simcov_netlist
