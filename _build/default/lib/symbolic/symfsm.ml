open Simcov_bdd

type t = {
  man : Bdd.man;
  n_state_vars : int;
  n_input_vars : int;
  cur : int array;
  nxt : int array;
  inp : int array;
  trans : Bdd.t;
  valid : Bdd.t;
  init : Bdd.t;
  outputs : Bdd.t array;
}

(* Variable layout: cur_i = 2i, nxt_i = 2i + 1 (interleaved), inputs
   after all state variables. *)
let layout ~n_state ~n_input =
  let cur = Array.init n_state (fun i -> 2 * i) in
  let nxt = Array.init n_state (fun i -> (2 * i) + 1) in
  let inp = Array.init n_input (fun j -> (2 * n_state) + j) in
  (cur, nxt, inp)

let bits_needed n =
  let rec go k acc = if k <= 1 then max acc 1 else go ((k + 1) / 2) (acc + 1) in
  go n 0

let of_circuit (c : Simcov_netlist.Circuit.t) =
  let open Simcov_netlist in
  let n_state = Circuit.n_regs c and n_input = Circuit.n_inputs c in
  let cur, nxt, inp = layout ~n_state ~n_input in
  let man = Bdd.man ((2 * n_state) + n_input) in
  let rec expr_bdd (e : Expr.t) =
    match e with
    | Expr.Const b -> Bdd.of_bool man b
    | Expr.Input i -> Bdd.var man inp.(i)
    | Expr.Reg r -> Bdd.var man cur.(r)
    | Expr.Not a -> Bdd.bnot man (expr_bdd a)
    | Expr.And (a, b) -> Bdd.band man (expr_bdd a) (expr_bdd b)
    | Expr.Or (a, b) -> Bdd.bor man (expr_bdd a) (expr_bdd b)
    | Expr.Xor (a, b) -> Bdd.bxor man (expr_bdd a) (expr_bdd b)
    | Expr.Mux (s, h, l) -> Bdd.ite man (expr_bdd s) (expr_bdd h) (expr_bdd l)
  in
  let valid = expr_bdd c.Circuit.input_constraint in
  let trans =
    Array.to_list c.Circuit.regs
    |> List.mapi (fun i (r : Circuit.reg) ->
           Bdd.biff man (Bdd.var man nxt.(i)) (expr_bdd r.Circuit.next))
    |> Bdd.conj man
    |> Bdd.band man valid
  in
  let init =
    Array.to_list c.Circuit.regs
    |> List.mapi (fun i (r : Circuit.reg) ->
           if r.Circuit.init then Bdd.var man cur.(i) else Bdd.nvar man cur.(i))
    |> Bdd.conj man
  in
  let outputs =
    Array.map (fun (o : Circuit.port) -> expr_bdd o.Circuit.expr) c.Circuit.outputs
  in
  { man; n_state_vars = n_state; n_input_vars = n_input; cur; nxt; inp; trans; valid; init; outputs }

let of_fsm (m : Simcov_fsm.Fsm.t) =
  let open Simcov_fsm in
  let n_state = bits_needed m.Fsm.n_states and n_input = bits_needed m.Fsm.n_inputs in
  let cur, nxt, inp = layout ~n_state ~n_input in
  let man = Bdd.man ((2 * n_state) + n_input) in
  let cube vars width v =
    Bdd.conj man
      (List.init width (fun b ->
           if (v lsr b) land 1 = 1 then Bdd.var man vars.(b) else Bdd.nvar man vars.(b)))
  in
  let trans = ref (Bdd.bfalse man) in
  let valid = ref (Bdd.bfalse man) in
  let n_outputs = ref 1 in
  let transitions = Fsm.transitions m in
  List.iter (fun (_, _, _, o) -> n_outputs := max !n_outputs (o + 1)) transitions;
  let out_bits = bits_needed !n_outputs in
  let outputs = Array.make out_bits (Bdd.bfalse man) in
  List.iter
    (fun (s, i, s', o) ->
      let si = Bdd.band man (cube cur n_state s) (cube inp n_input i) in
      valid := Bdd.bor man !valid si;
      trans := Bdd.bor man !trans (Bdd.band man si (cube nxt n_state s'));
      for b = 0 to out_bits - 1 do
        if (o lsr b) land 1 = 1 then outputs.(b) <- Bdd.bor man outputs.(b) si
      done)
    transitions;
  {
    man;
    n_state_vars = n_state;
    n_input_vars = n_input;
    cur;
    nxt;
    inp;
    trans = !trans;
    valid = !valid;
    init = cube cur n_state m.Fsm.reset;
    outputs;
  }

let cur_and_inp t = Array.to_list t.cur @ Array.to_list t.inp

let image t set =
  let img = Bdd.and_exists t.man (cur_and_inp t) set t.trans in
  (* img is over nxt vars; shift them down to cur *)
  Bdd.rename t.man (fun v -> if v < 2 * t.n_state_vars then v - 1 else v) img

let preimage t set =
  let set' = Bdd.rename t.man (fun v -> if v < 2 * t.n_state_vars then v + 1 else v) set in
  Bdd.and_exists t.man (Array.to_list t.nxt @ Array.to_list t.inp) set' t.trans

let reachable t =
  let rec go set n =
    let next = Bdd.bor t.man set (image t set) in
    if Bdd.equal next set then (set, n) else go next (n + 1)
  in
  go t.init 1

(* Count assignments of [f] over exactly [width] variables, given that
   support f is contained in those variables: total count divided by
   the free dimensions. *)
let count_over t f ~width =
  let total_vars = Bdd.num_vars t.man in
  Bdd.sat_count t.man ~nvars:total_vars f /. Float.pow 2.0 (Float.of_int (total_vars - width))

let count_states t set = count_over t set ~width:t.n_state_vars

let count_reachable t = count_states t (fst (reachable t))

let count_transitions t =
  let r, _ = reachable t in
  count_over t (Bdd.band t.man r t.valid) ~width:(t.n_state_vars + t.n_input_vars)

let count_valid_inputs t =
  let r, _ = reachable t in
  let v = Bdd.and_exists t.man (Array.to_list t.cur) r t.valid in
  count_over t v ~width:t.n_input_vars

let state_space_size t = Float.pow 2.0 (Float.of_int t.n_state_vars)
let input_space_size t = Float.pow 2.0 (Float.of_int t.n_input_vars)

let pick_state t set =
  if Bdd.is_false set then None
  else begin
    let assigns = Bdd.any_sat t.man set in
    let state = Array.make t.n_state_vars false in
    List.iter
      (fun (v, b) ->
        if v < 2 * t.n_state_vars && v mod 2 = 0 then state.(v / 2) <- b)
      assigns;
    Some state
  end

let state_cube t state =
  Bdd.conj t.man
    (List.init t.n_state_vars (fun i ->
         if state.(i) then Bdd.var t.man t.cur.(i) else Bdd.nvar t.man t.cur.(i)))
