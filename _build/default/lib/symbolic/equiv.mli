(** Symbolic sequential equivalence checking of netlists.

    Builds the product (miter) machine of two circuits sharing the
    same primary inputs and output count, computes the reachable set
    of the product with BDDs, and checks that no reachable
    (state, valid input) pair produces differing outputs.

    Used to {e formally} verify that behavior-preserving abstraction
    steps (the one-hot re-encoding, register-file truncation under
    tied inputs) really preserve the observable behavior — the
    "local transformations that we assume are correct (or can be
    easily proved)" of Section 7.1, proved. *)

open Simcov_netlist

type counterexample = {
  state_a : (string * bool) list;  (** register valuation of the first circuit *)
  state_b : (string * bool) list;
  inputs : (string * bool) list;
  output : string;  (** name of a differing output (first circuit's port name) *)
}

type result = Equivalent of { reachable_pairs : float } | Different of counterexample

val check : Circuit.t -> Circuit.t -> result
(** The circuits must have the same number of primary inputs (matched
    by position) and the same number of outputs (matched by
    position). The joint input constraint is the conjunction of both
    circuits'. Outputs are compared only on jointly valid inputs from
    jointly reachable state pairs.

    @raise Invalid_argument on interface mismatch. *)

val equivalent : Circuit.t -> Circuit.t -> bool
