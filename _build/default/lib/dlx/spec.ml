type commit = {
  at_pc : int;
  instr : Isa.t;
  reg_write : (int * int32) option;
  mem_write : (int * int32) option;
  next_pc : int;
}

type t = {
  program : Isa.t array;
  regs : int32 array;
  memory : int32 array;
  mutable pc_ : int;
}

let create ?(mem_words = 256) program =
  { program; regs = Array.make 32 0l; memory = Array.make mem_words 0l; pc_ = 0 }

let pc t = t.pc_
let reg t r = if r = 0 then 0l else t.regs.(r)

let set_reg t r v = if r <> 0 then t.regs.(r) <- v

let mem_index t a = ((a mod Array.length t.memory) + Array.length t.memory) mod Array.length t.memory
let mem t a = t.memory.(mem_index t a)
let set_mem t a v = t.memory.(mem_index t a) <- v

let halted t = t.pc_ < 0 || t.pc_ >= Array.length t.program

(* ALU semantics on 32-bit two's-complement values. *)
let alu (op : Isa.opcode) (a : int32) (b : int32) =
  let open Int32 in
  match op with
  | Isa.Add | Isa.Addi -> add a b
  | Isa.Sub -> sub a b
  | Isa.And | Isa.Andi -> logand a b
  | Isa.Or | Isa.Ori -> logor a b
  | Isa.Xor | Isa.Xori -> logxor a b
  | Isa.Slt | Isa.Slti -> if compare a b < 0 then 1l else 0l
  | Isa.Seq | Isa.Seqi -> if a = b then 1l else 0l
  | Isa.Sne | Isa.Snei -> if a <> b then 1l else 0l
  | Isa.Sge | Isa.Sgei -> if compare a b >= 0 then 1l else 0l
  | Isa.Sgt -> if compare a b > 0 then 1l else 0l
  | Isa.Sle -> if compare a b <= 0 then 1l else 0l
  | Isa.Sll | Isa.Slli -> shift_left a (to_int (logand b 31l))
  | Isa.Srl | Isa.Srli -> shift_right_logical a (to_int (logand b 31l))
  | Isa.Sra | Isa.Srai -> shift_right a (to_int (logand b 31l))
  | _ -> invalid_arg "Spec.alu: not an ALU opcode"

let step t =
  if halted t then None
  else begin
    let at_pc = t.pc_ in
    let i = t.program.(at_pc) in
    let rs1 = reg t i.Isa.rs1 and rs2 = reg t i.Isa.rs2 in
    let immv = Int32.of_int i.Isa.imm in
    let reg_write = ref None and mem_write = ref None in
    let next_pc = ref (at_pc + 1) in
    (match i.Isa.op with
    | Isa.Add | Isa.Sub | Isa.And | Isa.Or | Isa.Xor | Isa.Slt | Isa.Seq | Isa.Sne
    | Isa.Sge | Isa.Sgt | Isa.Sle | Isa.Sll | Isa.Srl | Isa.Sra ->
        if i.Isa.rd <> 0 then reg_write := Some (i.Isa.rd, alu i.Isa.op rs1 rs2)
    | Isa.Addi | Isa.Andi | Isa.Ori | Isa.Xori | Isa.Slti | Isa.Seqi | Isa.Snei
    | Isa.Sgei | Isa.Slli | Isa.Srli | Isa.Srai ->
        if i.Isa.rd <> 0 then reg_write := Some (i.Isa.rd, alu i.Isa.op rs1 immv)
    | Isa.Lhi ->
        if i.Isa.rd <> 0 then
          reg_write := Some (i.Isa.rd, Int32.shift_left immv 16)
    | Isa.Lw ->
        let addr = Int32.to_int (Int32.add rs1 immv) in
        if i.Isa.rd <> 0 then reg_write := Some (i.Isa.rd, mem t addr)
    | Isa.Sw ->
        let addr = Int32.to_int (Int32.add rs1 immv) in
        mem_write := Some (mem_index t addr, rs2)
    | Isa.Beqz -> if rs1 = 0l then next_pc := at_pc + 1 + i.Isa.imm
    | Isa.Bnez -> if rs1 <> 0l then next_pc := at_pc + 1 + i.Isa.imm
    | Isa.J -> next_pc := i.Isa.imm
    | Isa.Jal ->
        reg_write := Some (31, Int32.of_int (at_pc + 1));
        next_pc := i.Isa.imm
    | Isa.Jr -> next_pc := Int32.to_int rs1
    | Isa.Jalr ->
        reg_write := Some (31, Int32.of_int (at_pc + 1));
        next_pc := Int32.to_int rs1
    | Isa.Nop -> ());
    (match !reg_write with Some (r, v) -> set_reg t r v | None -> ());
    (match !mem_write with Some (a, v) -> t.memory.(a) <- v | None -> ());
    t.pc_ <- !next_pc;
    Some { at_pc; instr = i; reg_write = !reg_write; mem_write = !mem_write; next_pc = !next_pc }
  end

let run ?(max_steps = 10_000) t =
  let rec go n acc =
    if n = 0 then List.rev acc
    else
      match step t with
      | None -> List.rev acc
      | Some c -> go (n - 1) (c :: acc)
  in
  go max_steps []

let pp_commit ppf c =
  Format.fprintf ppf "@[%04d: %-24s" c.at_pc (Isa.to_string c.instr);
  (match c.reg_write with
  | Some (r, v) -> Format.fprintf ppf " r%d <- %ld" r v
  | None -> ());
  (match c.mem_write with
  | Some (a, v) -> Format.fprintf ppf " mem[%d] <- %ld" a v
  | None -> ());
  if c.next_pc <> c.at_pc + 1 then Format.fprintf ppf " -> pc %d" c.next_pc;
  Format.fprintf ppf "@]"
