(** The DLX instruction set (integer subset).

    Mirrors the scope of the paper's case study: "this design
    implements the DLX instruction set (except the floating-point and
    exception-handling instructions)" — register-register ALU ops,
    immediate ALU ops, loads/stores, branches and jumps. Words are 32
    bits; there are 32 architectural registers with [r0] hardwired to
    zero. *)

type opcode =
  (* R-type *)
  | Add
  | Sub
  | And
  | Or
  | Xor
  | Slt  (** set on less-than (signed) *)
  | Seq
  | Sne
  | Sge
  | Sgt
  | Sle
  | Sll
  | Srl
  | Sra
  (* I-type ALU *)
  | Addi
  | Andi
  | Ori
  | Xori
  | Slti
  | Seqi
  | Snei
  | Sgei
  | Slli
  | Srli
  | Srai
  | Lhi  (** load 16-bit immediate into the upper half of rd *)
  (* memory *)
  | Lw
  | Sw
  (* control *)
  | Beqz
  | Bnez
  | J
  | Jal
  | Jr
  | Jalr  (** jump through register, linking r31 *)
  | Nop

type t = { op : opcode; rd : int; rs1 : int; rs2 : int; imm : int }
(** [imm] is a signed 16-bit value for I-types and branches (word
    offset relative to the next instruction), and a 26-bit absolute
    word address for [J]/[Jal]. *)

val nop : t
val make : ?rd:int -> ?rs1:int -> ?rs2:int -> ?imm:int -> opcode -> t

(** {1 Instruction classes}

    The abstraction the test model uses: only the class and the
    register addresses matter to the pipeline control. *)

type iclass = Alu_rr | Alu_ri | Load | Store | Branch | Jump | Nopc

val class_of : opcode -> iclass
val class_index : iclass -> int
val class_of_index : int -> iclass
val n_classes : int
val class_name : iclass -> string

val writes_reg : t -> int option
(** Destination register actually written ([None] for [r0], stores,
    branches, plain jumps; [Jal] writes r31). *)

val reads_regs : t -> int list
(** Source registers actually read (excluding [r0]). *)

(** {1 Encoding} *)

val encode : t -> int32
(** 32-bit encoding: 6-bit opcode, 5/5/5-bit register fields, 16-bit
    immediate (R-types ignore it); J-types use a 26-bit field. *)

val decode : int32 -> t option
(** [None] on an illegal opcode. [decode (encode i) = Some (canon i)]
    where [canon] zeroes the fields the instruction does not use. *)

val canon : t -> t
(** Zero the unused fields (e.g. [rs2] of an I-type). *)

(** {1 Text} *)

val to_string : t -> string
val of_string : string -> (t, string) result
(** Parse one instruction, e.g. ["add r3, r1, r2"], ["lw r2, 4(r1)"],
    ["beqz r1, -2"], ["j 12"], ["nop"]. *)

val parse_program : string -> (t array, string) result
(** Parse a newline-separated program; ['#'] starts a comment. *)

val pp : Format.formatter -> t -> unit
