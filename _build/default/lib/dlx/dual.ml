type bugs = {
  pair_despite_raw : bool;
  pair_despite_waw : bool;
  pair_after_branch : bool;
  pair_two_mem : bool;
}

let no_bugs =
  {
    pair_despite_raw = false;
    pair_despite_waw = false;
    pair_after_branch = false;
    pair_two_mem = false;
  }

let bug_catalog =
  [
    ("pair_despite_raw", { no_bugs with pair_despite_raw = true });
    ("pair_despite_waw", { no_bugs with pair_despite_waw = true });
    ("pair_after_branch", { no_bugs with pair_after_branch = true });
    ("pair_two_mem", { no_bugs with pair_two_mem = true });
  ]

type t = {
  program : Isa.t array;
  regs : int32 array;
  memory : int32 array;
  bugs : bugs;
  mutable pc : int;
  mutable cycles : int;
  mutable duals : int;
  mutable singles : int;
}

let create ?(mem_words = 256) ?(bugs = no_bugs) program =
  {
    program;
    regs = Array.make 32 0l;
    memory = Array.make mem_words 0l;
    bugs;
    pc = 0;
    cycles = 0;
    duals = 0;
    singles = 0;
  }

let set_reg t r v = if r <> 0 then t.regs.(r) <- v
let mem_index t a = ((a mod Array.length t.memory) + Array.length t.memory) mod Array.length t.memory
let set_mem t a v = t.memory.(mem_index t a) <- v

let reg_file regs r = if r = 0 then 0l else regs.(r)

let is_mem (i : Isa.t) = i.Isa.op = Isa.Lw || i.Isa.op = Isa.Sw
let is_control (i : Isa.t) = Isa.class_of i.Isa.op = Isa.Branch || Isa.class_of i.Isa.op = Isa.Jump

let raw_dep (a : Isa.t) (b : Isa.t) =
  match Isa.writes_reg a with
  | Some rd -> List.mem rd (Isa.reads_regs b)
  | None -> false

let waw_dep (a : Isa.t) (b : Isa.t) =
  match (Isa.writes_reg a, Isa.writes_reg b) with
  | Some ra, Some rb -> ra = rb
  | _ -> false

(* execute one instruction against explicit register/memory views;
   returns (commit, taken_next_pc option) *)
let exec t ~read_reg ~read_mem at_pc (i : Isa.t) =
  let rs1 = read_reg i.Isa.rs1 and rs2 = read_reg i.Isa.rs2 in
  let immv = Int32.of_int i.Isa.imm in
  let reg_write = ref None and mem_write = ref None in
  let next_pc = ref (at_pc + 1) in
  (match Isa.class_of i.Isa.op with
  | Isa.Alu_rr -> if i.Isa.rd <> 0 then reg_write := Some (i.Isa.rd, Spec.alu i.Isa.op rs1 rs2)
  | Isa.Alu_ri ->
      if i.Isa.rd <> 0 then
        if i.Isa.op = Isa.Lhi then reg_write := Some (i.Isa.rd, Int32.shift_left immv 16)
        else reg_write := Some (i.Isa.rd, Spec.alu i.Isa.op rs1 immv)
  | Isa.Load ->
      let addr = Int32.to_int (Int32.add rs1 immv) in
      if i.Isa.rd <> 0 then reg_write := Some (i.Isa.rd, read_mem addr)
  | Isa.Store ->
      let addr = Int32.to_int (Int32.add rs1 immv) in
      mem_write := Some (mem_index t addr, rs2)
  | Isa.Branch ->
      let cond = if i.Isa.op = Isa.Beqz then rs1 = 0l else rs1 <> 0l in
      if cond then next_pc := at_pc + 1 + i.Isa.imm
  | Isa.Jump -> (
      match i.Isa.op with
      | Isa.J -> next_pc := i.Isa.imm
      | Isa.Jal ->
          reg_write := Some (31, Int32.of_int (at_pc + 1));
          next_pc := i.Isa.imm
      | Isa.Jr -> next_pc := Int32.to_int rs1
      | Isa.Jalr ->
          reg_write := Some (31, Int32.of_int (at_pc + 1));
          next_pc := Int32.to_int rs1
      | _ -> ())
  | Isa.Nopc -> ());
  ( {
      Spec.at_pc;
      instr = i;
      reg_write = !reg_write;
      mem_write = !mem_write;
      next_pc = !next_pc;
    },
    !next_pc )

let apply_commit t (c : Spec.commit) =
  (match c.Spec.reg_write with Some (r, v) -> set_reg t r v | None -> ());
  match c.Spec.mem_write with Some (a, v) -> t.memory.(a) <- v | None -> ()

let can_pair t a b =
  (not (is_control a) || t.bugs.pair_after_branch)
  && ((not (raw_dep a b)) || t.bugs.pair_despite_raw)
  && ((not (waw_dep a b)) || t.bugs.pair_despite_waw)
  && ((not (is_mem a && is_mem b)) || t.bugs.pair_two_mem)

let run ?(max_cycles = 100_000) t =
  let commits = ref [] in
  let n = Array.length t.program in
  while t.pc >= 0 && t.pc < n && t.cycles < max_cycles do
    t.cycles <- t.cycles + 1;
    let a = t.program.(t.pc) in
    let b = if t.pc + 1 < n then Some t.program.(t.pc + 1) else None in
    match b with
    | Some b when can_pair t a b ->
        t.duals <- t.duals + 1;
        (* both read the register file and memory as of the start of
           the cycle — that is precisely why illegal pairings are
           wrong *)
        let snapshot_regs = Array.copy t.regs in
        let snapshot_mem = Array.copy t.memory in
        let read_reg_snap r = reg_file snapshot_regs r in
        let read_mem_snap addr = snapshot_mem.(mem_index t addr) in
        let ca, next_a = exec t ~read_reg:read_reg_snap ~read_mem:read_mem_snap t.pc a in
        let cb, next_b =
          exec t ~read_reg:read_reg_snap ~read_mem:read_mem_snap (t.pc + 1) b
        in
        let taken_a = next_a <> t.pc + 1 in
        (* write-back: program order, except that a WAW pair issued by
           the [pair_despite_waw] bug resolves the write-port conflict
           the wrong way around, leaving the OLDER value architected *)
        if t.bugs.pair_despite_waw && waw_dep a b then begin
          apply_commit t cb;
          apply_commit t ca
        end
        else begin
          apply_commit t ca;
          apply_commit t cb
        end;
        commits := cb :: ca :: !commits;
        (* program order: a taken transfer in the older slot wins *)
        t.pc <- (if taken_a then next_a else next_b)
    | _ ->
        t.singles <- t.singles + 1;
        let read_reg r = reg_file t.regs r in
        let read_mem addr = t.memory.(mem_index t addr) in
        let ca, next_a = exec t ~read_reg ~read_mem t.pc a in
        apply_commit t ca;
        commits := ca :: !commits;
        t.pc <- next_a
  done;
  List.rev !commits

let stats t = (t.cycles, t.duals, t.singles)

(* ---------- pair coverage ---------- *)

type pair_class = { older : Isa.iclass; younger : Isa.iclass; raw : bool; waw : bool }

let classes = [ Isa.Alu_rr; Isa.Alu_ri; Isa.Load; Isa.Store; Isa.Branch; Isa.Jump; Isa.Nopc ]

let writes cls = match cls with Isa.Alu_rr | Isa.Alu_ri | Isa.Load -> true | _ -> false

(* classes whose concrete representative reads a general register in
   the younger slot; branches are kept in never-taken r0 form so the
   pair program's control flow stays deterministic, hence RAW pairs
   with a branch younger are not concretizable here and are excluded
   from the feasible class list *)
let reads cls =
  match cls with
  | Isa.Alu_rr | Isa.Alu_ri | Isa.Load | Isa.Store -> true
  | Isa.Branch | Isa.Jump | Isa.Nopc -> false

let pair_classes () =
  List.concat_map
    (fun older ->
      List.concat_map
        (fun younger ->
          List.concat_map
            (fun raw ->
              List.filter_map
                (fun waw ->
                  (* feasibility: RAW needs older to write and younger
                     to read; WAW needs both to write; a pair cannot be
                     both RAW and WAW here because the concretizer uses
                     distinct source and destination registers *)
                  if raw && not (writes older && reads younger) then None
                  else if waw && not (writes older && writes younger) then None
                  else if raw && waw then None
                  else Some { older; younger; raw; waw })
                [ false; true ])
            [ false; true ])
        classes)
    classes

(* One concrete pair per class. The machine pairs (pc, pc+1) wherever
   pc lands, so a split pair would shift the alignment of everything
   after it; each pair therefore lives in a 3-slot "island"
   [A; B; j next-island]: whether the pair issues together or splits,
   the jump separator puts the next island's A back at the fetch head
   (a jump in the younger slot pairs fine and transfers control; a
   jump in the older slot never pairs on a correct machine).

   r1/r2/r3 are working registers kept loaded with nonzero values;
   each island uses its own scratch memory cell, except that islands
   pairing two memory operations share one cell so the single-port
   violation is observable (the younger load must see the older
   store). *)
let concretize_pairs pcs =
  let preamble = 4 in
  let island k = preamble + (3 * k) in
  let n_islands = List.length pcs in
  let finish = island n_islands in
  let is_memc cls = cls = Isa.Load || cls = Isa.Store in
  let arr = Array.make finish Isa.nop in
  (* preamble: distinct register values, even-aligned with a nop *)
  arr.(0) <- Isa.make ~rd:1 ~rs1:0 ~imm:21 Isa.Addi;
  arr.(1) <- Isa.make ~rd:2 ~rs1:0 ~imm:33 Isa.Addi;
  arr.(2) <- Isa.make ~rd:3 ~rs1:0 ~imm:45 Isa.Addi;
  arr.(3) <- Isa.nop;
  List.iteri
    (fun k pc ->
      let base = island k in
      let next = island (k + 1) in
      let v = 100 + k in
      let shared_mem = is_memc pc.older && is_memc pc.younger in
      let rd_a = 1 + (k mod 3) in
      let other = 1 + ((k + 1) mod 3) in
      let inst_of cls ~slot =
        let my_rd = if slot = `A then rd_a else if pc.waw then rd_a else other in
        let my_rs =
          if slot = `B && pc.raw then rd_a else if slot = `A then other else 3
        in
        let c =
          if shared_mem then 200 + (k mod 50)
          else (2 * k) + (match slot with `A -> 0 | `B -> 1) mod 200
        in
        match cls with
        | Isa.Alu_rr -> Isa.make ~rd:my_rd ~rs1:my_rs ~rs2:3 Isa.Add
        | Isa.Alu_ri -> Isa.make ~rd:my_rd ~rs1:my_rs ~imm:v Isa.Addi
        | Isa.Load ->
            (* a RAW younger load takes the dependence through its
               address register (the classic address-generation
               interlock shape) *)
            Isa.make ~rd:my_rd ~rs1:(if slot = `B && pc.raw then rd_a else 0) ~imm:c Isa.Lw
        | Isa.Store ->
            Isa.make ~rs1:0 ~rs2:(if slot = `B && pc.raw then rd_a else my_rd) ~imm:c Isa.Sw
        | Isa.Branch ->
            (* never taken: deterministic fall-through on the golden
               machine; taken control is exercised by the Jump class *)
            Isa.make ~rs1:0 ~imm:1 Isa.Bnez
        | Isa.Jump ->
            (* an older-slot jump lands on this island's separator (so
               a correct machine, which never pairs past control,
               continues identically); a younger-slot jump lands on
               the next island directly *)
            Isa.make ~imm:(match slot with `A -> base + 2 | `B -> next) Isa.J
        | Isa.Nopc -> Isa.nop
      in
      arr.(base) <- inst_of pc.older ~slot:`A;
      arr.(base + 1) <- inst_of pc.younger ~slot:`B;
      (* the separator realigns the fetch head on the next island
         whether or not the pair issued together *)
      arr.(base + 2) <- Isa.make ~imm:next Isa.J)
    pcs;
  arr

let validate ?(bugs = no_bugs) program =
  let spec = Spec.create program in
  let dual = create ~bugs program in
  let expected = Spec.run spec in
  let actual = run dual in
  let rec compare idx exp act =
    match (exp, act) with
    | [], [] -> Validate.Pass idx
    | e :: exp', a :: act' ->
        if
          e.Spec.at_pc = a.Spec.at_pc && e.Spec.instr = a.Spec.instr
          && e.Spec.reg_write = a.Spec.reg_write
          && e.Spec.mem_write = a.Spec.mem_write
          && e.Spec.next_pc = a.Spec.next_pc
        then compare (idx + 1) exp' act'
        else Validate.Fail { Validate.index = idx; expected = Some e; actual = Some a }
    | e :: _, [] -> Validate.Fail { Validate.index = idx; expected = Some e; actual = None }
    | [], a :: _ -> Validate.Fail { Validate.index = idx; expected = None; actual = Some a }
  in
  compare 0 expected actual

let bug_campaign program =
  List.map
    (fun (name, bugs) ->
      (name, match validate ~bugs program with Validate.Fail _ -> true | Validate.Pass _ -> false))
    bug_catalog
