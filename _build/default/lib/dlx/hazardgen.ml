type template = { label : string; program : Isa.t array }

(* pad with [d - 1] independent instructions between producer and
   consumer so the dependence crosses the wanted pipeline distance *)
let gap d = List.init (d - 1) (fun _ -> Isa.nop)

let templates ?(n_regs = 4) () =
  let acc = ref [] in
  let add label instrs =
    acc := { label; program = Array.of_list instrs } :: !acc
  in
  let scratch rd = if rd = 1 then 2 else 1 in
  for rd = 1 to n_regs - 1 do
    let s = scratch rd in
    List.iter
      (fun d ->
        let tag kind use d = Printf.sprintf "%s-r%d-%s-d%d" kind rd use d in
        (* ALU producer *)
        let alu_producer = Isa.make ~rd ~rs1:0 ~imm:(7 + rd) Isa.Addi in
        add (tag "alu" "rs1" d)
          ([ alu_producer ] @ gap d @ [ Isa.make ~rd:s ~rs1:rd ~rs2:0 Isa.Add ]);
        (* the rs2 consumer reads another register through rs1 so
           that bugs comparing only the rs1 field stay silent on the
           stall/bypass they owe the rs2 dependence *)
        add (tag "alu" "rs2" d)
          ([ alu_producer ] @ gap d @ [ Isa.make ~rd:s ~rs1:s ~rs2:rd Isa.Add ]);
        add (tag "alu" "stdata" d)
          ([ alu_producer ] @ gap d @ [ Isa.make ~rs1:0 ~rs2:rd ~imm:1 Isa.Sw ]);
        add (tag "alu" "staddr" d)
          ([ alu_producer ] @ gap d @ [ Isa.make ~rs1:rd ~rs2:0 ~imm:2 Isa.Sw ]);
        add (tag "alu" "brcond" d)
          ([ alu_producer ] @ gap d
          @ [ Isa.make ~rs1:rd ~imm:1 Isa.Bnez; Isa.nop; Isa.make ~rd:s ~rs1:0 ~imm:1 Isa.Addi ]);
        (* load producer: seed memory first so the loaded value is
           nonzero and distinct *)
        let seed =
          [
            Isa.make ~rd:s ~rs1:0 ~imm:(40 + rd) Isa.Addi;
            Isa.make ~rs1:0 ~rs2:s ~imm:rd Isa.Sw;
          ]
        in
        let load_producer = Isa.make ~rd ~rs1:0 ~imm:rd Isa.Lw in
        add (tag "load" "rs1" d)
          (seed @ [ load_producer ] @ gap d @ [ Isa.make ~rd:s ~rs1:rd ~rs2:0 Isa.Add ]);
        add (tag "load" "rs2" d)
          (seed @ [ load_producer ] @ gap d @ [ Isa.make ~rd:s ~rs1:s ~rs2:rd Isa.Add ]);
        add (tag "load" "stdata" d)
          (seed @ [ load_producer ] @ gap d @ [ Isa.make ~rs1:0 ~rs2:rd ~imm:3 Isa.Sw ]);
        add (tag "load" "brcond" d)
          (seed @ [ load_producer ] @ gap d
          @ [ Isa.make ~rs1:rd ~imm:1 Isa.Bnez; Isa.nop; Isa.make ~rd:s ~rs1:0 ~imm:1 Isa.Addi ]))
      [ 1; 2; 3 ]
  done;
  (* control templates *)
  add "branch-taken-shadow"
    [
      Isa.make ~rd:1 ~rs1:0 ~imm:1 Isa.Addi;
      Isa.make ~rs1:1 ~imm:2 Isa.Bnez;
      Isa.make ~rd:2 ~rs1:0 ~imm:99 Isa.Addi (* shadow 1 *);
      Isa.make ~rd:3 ~rs1:0 ~imm:99 Isa.Addi (* shadow 2 *);
      Isa.make ~rs1:0 ~rs2:2 ~imm:4 Isa.Sw;
    ];
  add "branch-not-taken"
    [
      Isa.make ~rs1:1 ~imm:2 Isa.Bnez;
      Isa.make ~rd:2 ~rs1:0 ~imm:5 Isa.Addi;
      Isa.make ~rs1:0 ~rs2:2 ~imm:5 Isa.Sw;
    ];
  add "branch-both-polarities"
    [
      Isa.make ~rd:1 ~rs1:0 ~imm:0 Isa.Addi;
      Isa.make ~rs1:1 ~imm:1 Isa.Beqz;
      Isa.make ~rd:2 ~rs1:0 ~imm:99 Isa.Addi;
      Isa.make ~rs1:0 ~rs2:2 ~imm:6 Isa.Sw;
    ];
  add "jump-squash"
    [ Isa.make ~imm:2 Isa.J; Isa.make ~rd:2 ~rs1:0 ~imm:99 Isa.Addi; Isa.nop ];
  add "call-link" [ Isa.make ~imm:2 Isa.Jal; Isa.nop; Isa.make ~rs1:0 ~rs2:31 ~imm:7 Isa.Sw ];
  List.rev !acc

let suite ?n_regs () = List.map (fun t -> t.program) (templates ?n_regs ())

let total_instructions programs =
  List.fold_left (fun acc p -> acc + Array.length p) 0 programs

let bug_campaign ?n_regs () = Validate.bug_campaign_multi (suite ?n_regs ())
