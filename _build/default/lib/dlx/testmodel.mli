(** Issue-level explicit test model of the pipelined DLX control.

    One transition per {e issued instruction}: the input is the
    abstracted instruction (class + register addresses + the
    PSW-derived branch outcome, the paper's reduced "18-bit
    instruction format"), the state is the interaction state the
    paper's guidelines call out — the destination registers of the
    instructions still in flight ("addresses of destination registers
    from the current, and two previous, instructions" plus their
    write kinds) — and the outputs are the control actions (stall,
    forwarding selects, squash), optionally extended with the
    interaction state itself (Requirement 5).

    Two knobs reproduce the paper's ablations:
    - [track_dest = false] drops destination addresses from the state,
      the Section 6.3 "abstracting too much" scenario: the quotient is
      no longer a function of (state, input), and the forced-
      deterministic model misses interlock errors;
    - [observable_dest = false] hides the interaction state from the
      outputs, violating Requirement 5 and breaking
      ∀k-distinguishability. *)

open Simcov_fsm

type config = {
  n_regs : int;  (** power of two, ≥ 2; the paper's reduced file has 4 *)
  track_dest : bool;
  observable_dest : bool;
}

val default : config
(** 4 registers, destinations tracked and observable. *)

(** {1 Abstract inputs} *)

type abs_input = {
  cls : Isa.iclass;
  rd : int;
  rs1 : int;
  rs2 : int;
  taken : bool;
}

val input_code : config -> abs_input -> int
val input_decode : config -> int -> abs_input
val input_is_valid : config -> abs_input -> bool
(** Per-class field zeroing; [taken] only on branches. The count of
    valid codes mirrors the paper's "8228 of 2^25". *)

val n_input_codes : config -> int
val n_valid_inputs : config -> int

(** {1 The model} *)

val build : config -> Fsm.t
(** Deterministic Mealy machine; with [track_dest = false] the
    stall/forward outputs use the optimistic (assume-no-hazard)
    resolution — see above. *)

val dest_merge_mapping : config -> Simcov_abstraction.Homomorphism.mapping
(** The state abstraction from the dest-tracking model onto the
    dest-less one. [Homomorphism.quotient] of the full model under
    this mapping reports a conflict — the formal witness that dropping
    destination addresses abstracts too much (Section 6.3). *)

(** {1 Concretization}

    "A test sequence for the test model needs to be converted to a
    test sequence for the implementation simulation model" (Section
    4.3): abstract input words become real DLX programs. Branch
    directions demanded by the abstract input are realized by choosing
    [beqz]/[bnez] according to the architectural value of the source
    register at that point (the concretizer runs the specification
    alongside); taken branches and jumps get one never-issued filler
    slot so the redirect is a real squash. *)

type concrete = {
  program : Isa.t array;
  preload_regs : (int * int32) list;
  preload_mem : (int * int32) list;
  issue_map : int array;  (** issue index -> program counter *)
}

val concretize : config -> int list -> concrete
(** The input word must be valid for [build config]. *)

val pp_abs_input : config -> Format.formatter -> int -> unit
