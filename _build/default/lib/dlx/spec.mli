(** Architectural (ISA-level) DLX simulator — the golden specification.

    Executes one instruction per step, maintaining the architectural
    state (PC, 32 registers with r0 = 0, data memory). The observable
    checkpoint stream is the sequence of {!commit} records, one per
    executed instruction — the "comparison at special checkpointing
    steps, e.g. at the completion of each instruction" of Section 2. *)

type commit = {
  at_pc : int;
  instr : Isa.t;
  reg_write : (int * int32) option;  (** register and value written *)
  mem_write : (int * int32) option;  (** word address and value written *)
  next_pc : int;
}

type t

val create : ?mem_words:int -> Isa.t array -> t
(** Fresh machine at PC 0 with zeroed registers and memory (default
    256 memory words). Memory addresses are word-granular and wrap
    modulo the memory size. *)

val pc : t -> int
val reg : t -> int -> int32
val set_reg : t -> int -> int32 -> unit
(** Pre-loading registers for directed tests (writes to r0 are
    ignored). *)

val mem : t -> int -> int32
val set_mem : t -> int -> int32 -> unit
val halted : t -> bool
(** PC outside the program. *)

val alu : Isa.opcode -> int32 -> int32 -> int32
(** ALU semantics shared with the pipelined implementation's EX stage.
    @raise Invalid_argument on non-ALU opcodes. *)

val step : t -> commit option
(** Execute the instruction at PC; [None] when already halted. *)

val run : ?max_steps:int -> t -> commit list
(** Step until halt or the budget is exhausted. *)

val pp_commit : Format.formatter -> commit -> unit
