(** Directed pipeline-hazard test templates.

    The style of generator the paper cites as prior work: "automatic
    test program generation for pipelined processors" (Iwashita et
    al., ref [18]) enumerates architectural hazard scenarios directly
    — producer/consumer pairs at every pipeline distance, branch
    shadows, store-data dependences — instead of deriving them from a
    coverage argument.

    Provided as the structured baseline between random programs and
    the certified transition tour: compact and effective on known
    hazard classes, but with no completeness claim (what is not in the
    template list is not tested). *)

type template = { label : string; program : Isa.t array }

val templates : ?n_regs:int -> unit -> template list
(** All templates over destination registers [1 .. n_regs - 1]
    (default 4): ALU/load producers x rs1/rs2/store-data/store-address/
    branch-condition consumers x pipeline distances 1-3, plus
    taken/not-taken branch shadows and call/return. Every template is
    a self-contained program (operands initialized by the template
    itself). *)

val suite : ?n_regs:int -> unit -> Isa.t array list
(** Just the programs. *)

val total_instructions : Isa.t array list -> int

val bug_campaign : ?n_regs:int -> unit -> Validate.campaign_result
(** Run every template against the full pipeline bug catalog. *)
