lib/dlx/programs.mli: Isa Spec Validate
