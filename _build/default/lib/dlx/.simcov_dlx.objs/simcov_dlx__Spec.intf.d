lib/dlx/spec.mli: Format Isa
