lib/dlx/spec.ml: Array Format Int32 Isa List
