lib/dlx/validate.mli: Format Isa Pipeline Spec
