lib/dlx/dual.mli: Isa Spec Validate
