lib/dlx/hazardgen.ml: Array Isa List Printf Validate
