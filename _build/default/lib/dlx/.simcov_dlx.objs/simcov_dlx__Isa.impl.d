lib/dlx/isa.ml: Array Format Int32 List Printf Result String
