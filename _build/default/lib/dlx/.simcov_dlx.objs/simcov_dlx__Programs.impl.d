lib/dlx/programs.ml: Dual Isa List Printf Spec Validate
