lib/dlx/isa.mli: Format
