lib/dlx/validate.ml: Format List Pipeline Spec
