lib/dlx/control.ml: Array Circuit Expr List Netabs Printf Simcov_abstraction Simcov_netlist String
