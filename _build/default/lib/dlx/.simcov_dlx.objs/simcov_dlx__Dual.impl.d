lib/dlx/dual.ml: Array Int32 Isa List Spec Validate
