lib/dlx/testmodel.mli: Format Fsm Isa Simcov_abstraction Simcov_fsm
