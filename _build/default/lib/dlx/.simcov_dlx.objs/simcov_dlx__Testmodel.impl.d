lib/dlx/testmodel.ml: Array Format Fsm Fun Int32 Isa List Printf Simcov_abstraction Simcov_fsm Spec
