lib/dlx/pipeline.ml: Array Buffer Int32 Isa List Option Printf Spec
