lib/dlx/pipeline.mli: Isa Spec
