lib/dlx/control.mli: Circuit Simcov_abstraction Simcov_netlist
