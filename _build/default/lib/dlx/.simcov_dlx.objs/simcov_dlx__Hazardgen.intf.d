lib/dlx/hazardgen.mli: Isa Validate
