(** Cycle-accurate 5-stage pipelined DLX implementation.

    The implementation under validation: IF / ID / EX / MEM / WB with
    the features of the paper's case-study design — "interlock
    detection, bypassing, squashing and stalling":

    - load-use {e interlock}: a one-cycle stall when the instruction in
      ID reads the destination of a load in EX;
    - {e bypassing}: EX/MEM -> EX and MEM/WB -> EX operand forwarding
      (including store-data);
    - {e squashing}: branches and jumps resolve in EX; on a taken
      branch the two younger instructions are squashed;
    - register file write-before-read within a cycle.

    Commits are produced at WB in program order and are directly
    comparable with {!Spec.commit} records — that comparison at
    instruction completion is the validation checkpoint of Section 2.

    The {!bugs} record injects realistic control errors (disabled
    bypass paths, missing interlock, missing squash, ...), the
    implementation-error population for the coverage experiments. *)

type bugs = {
  no_exmem_forward : bool;  (** EX/MEM -> EX bypass disabled *)
  no_memwb_forward : bool;  (** MEM/WB -> EX bypass disabled *)
  no_load_interlock : bool;  (** load-use stall never inserted *)
  no_branch_squash : bool;  (** taken branch fails to kill younger slots *)
  forward_rs2_as_rs1 : bool;  (** operand-B bypass compares the wrong field *)
  interlock_ignores_rs2 : bool;  (** load-use detect checks rs1 only *)
  branch_polarity : bool;  (** beqz/bnez decided with inverted condition *)
  lost_store_forward : bool;  (** store data misses the MEM/WB bypass *)
  jal_no_link : bool;  (** jal does not write r31 *)
  bypass_fails_rd3 : bool;
      (** corner case: the EX/MEM bypass ignores producers whose
          destination is r3 — exposed only by specific register
          pairings, the kind of error Section 6.3 argues needs
          destination-aware test models *)
  interlock_fails_rd2 : bool;
      (** corner case: the load-use stall is skipped when the load's
          destination is r2 *)
  storedata_exmem_fails : bool;
      (** corner case: store data misses the EX/MEM bypass *)
}

val no_bugs : bugs
val bug_catalog : (string * bugs) list
(** Named single-bug variants, the standard error population. *)

type t

val create : ?mem_words:int -> ?bugs:bugs -> Isa.t array -> t

val set_reg : t -> int -> int32 -> unit
(** Pre-load a register (architectural and bypass-visible). *)

val set_mem : t -> int -> int32 -> unit

val cycle : t -> Spec.commit option
(** Advance one clock; returns the instruction committed at WB this
    cycle, if any. *)

val run : ?max_cycles:int -> t -> Spec.commit list
(** Run until the pipeline drains after the program ends (or the cycle
    budget is exhausted). *)

val stats : t -> int * int * int
(** [(cycles, stalls, squashed_slots)] so far. *)

val occupancy : t -> (string option * string option * string option * string option)
(** Instruction text currently in (IF/ID, ID/EX, EX/MEM, MEM/WB) — for
    trace display. *)

val trace : ?max_cycles:int -> t -> string
(** Run to completion while rendering a classic pipeline diagram: one
    line per cycle with the four pipeline-register slots, annotated
    with stalls and squashes. *)
