open Simcov_netlist
open Simcov_abstraction

let ( !! ) = Expr.( !! )
let ( &&& ) = Expr.( &&& )
let ( ||| ) = Expr.( ||| )

(* Class codes follow Isa.class_index:
   0 ALU-RR, 1 ALU-RI, 2 LOAD, 3 STORE, 4 BRANCH, 5 JUMP, 6 NOP. *)
let c_alu_rr = 0
let c_alu_ri = 1
let c_load = 2
let c_store = 3
let c_branch = 4
let c_jump = 5
let c_nop = 6
let n_classes = 7
let addr_width = 5

let build () =
  let open Circuit.Build in
  let ctx = create "dlx_control" in

  (* ---- primary inputs: the instruction word presented to decode and
     the datapath status ---- *)
  let instr_valid = input ctx "instr_valid" in
  let class_in = input_vec ctx "class_in" 3 in
  let rd_in = input_vec ctx "rd_in" addr_width in
  let rs1_in = input_vec ctx "rs1_in" addr_width in
  let rs2_in = input_vec ctx "rs2_in" addr_width in
  let taken_in = input ctx "taken_in" in

  let class_is k = Expr.Vec.eq_const class_in k in

  (* ---- state declarations ---- *)
  (* fetch controller *)
  let fetch_valid = reg ctx ~group:"fetch" ~init:true "fetch_valid" in
  let redirect_r = reg ctx ~group:"fetch" "redirect_r" in
  let delay1 = reg ctx ~group:"fetch" "delay1" in
  let delay2 = reg ctx ~group:"fetch" "delay2" in

  (* decode (ID) stage *)
  let id_valid = reg ctx ~group:"id" "id_valid" in
  let id_class =
    Array.init n_classes (fun k ->
        reg ctx ~group:"id_class" ~init:(k = c_nop) (Printf.sprintf "id_class%d" k))
  in
  let id_rd = reg_vec ctx ~group:"id_rd" "id_rd" addr_width in
  let id_rs1 = reg_vec ctx ~group:"id_rs1" "id_rs1" addr_width in
  let id_rs2 = reg_vec ctx ~group:"id_rs2" "id_rs2" addr_width in

  (* execute (EX) stage *)
  let ex_valid = reg ctx ~group:"ex" "ex_valid" in
  let ex_class =
    Array.init n_classes (fun k ->
        reg ctx ~group:"ex_class" ~init:(k = c_nop) (Printf.sprintf "ex_class%d" k))
  in
  let ex_rd = reg_vec ctx ~group:"ex_rd" "ex_rd" addr_width in
  let ex_rs1 = reg_vec ctx ~group:"ex_rs1" "ex_rs1" addr_width in
  let ex_rs2 = reg_vec ctx ~group:"ex_rs2" "ex_rs2" addr_width in

  (* memory (MEM) stage *)
  let mem_valid = reg ctx ~group:"mem" "mem_valid" in
  let mem_class =
    Array.init n_classes (fun k ->
        reg ctx ~group:"mem_class" ~init:(k = c_nop) (Printf.sprintf "mem_class%d" k))
  in
  let mem_rd = reg_vec ctx ~group:"mem_rd" "mem_rd" addr_width in
  (* source-address shadow pipeline kept only for debug observability *)
  let mem_rs1_dbg = reg_vec ctx ~group:"mem_dbg" "mem_rs1_dbg" addr_width in
  let wb_rs1_dbg = reg_vec ctx ~group:"mem_dbg" "wb_rs1_dbg" addr_width in

  (* writeback (WB) stage *)
  let wb_valid = reg ctx ~group:"wb" "wb_valid" in
  let wb_class =
    Array.init n_classes (fun k ->
        reg ctx ~group:"wb_class" ~init:(k = c_nop) (Printf.sprintf "wb_class%d" k))
  in
  let wb_rd = reg_vec ctx ~group:"wb_rd" "wb_rd" addr_width in

  (* ---- combinational control ---- *)
  let nonzero v = Expr.disj (Array.to_list v) in
  let id_uses_rs1 =
    id_class.(c_alu_rr) ||| id_class.(c_alu_ri) ||| id_class.(c_load)
    ||| id_class.(c_store) ||| id_class.(c_branch)
  in
  let id_uses_rs2 = id_class.(c_alu_rr) ||| id_class.(c_store) in
  let ex_writes = ex_class.(c_alu_rr) ||| ex_class.(c_alu_ri) ||| ex_class.(c_load) in
  let mem_writes = mem_class.(c_alu_rr) ||| mem_class.(c_alu_ri) ||| mem_class.(c_load) in
  (* defensive double-sided decode: asserts the writing classes and
     checks that no non-writing class bit is set, keeping the whole
     one-hot group live until the re-encoding step *)
  let wb_writes =
    (wb_class.(c_alu_rr) ||| wb_class.(c_alu_ri) ||| wb_class.(c_load))
    &&& !!(wb_class.(c_store) ||| wb_class.(c_branch) ||| wb_class.(c_jump)
          ||| wb_class.(c_nop))
  in

  (* load-use interlock: instruction in ID reads the destination of
     the load in EX *)
  let stall =
    id_valid &&& ex_valid &&& ex_class.(c_load) &&& nonzero ex_rd
    &&& ((id_uses_rs1 &&& Expr.Vec.eq id_rs1 ex_rd)
        ||| (id_uses_rs2 &&& Expr.Vec.eq id_rs2 ex_rd))
  in
  (* squash: taken branch or jump resolving in EX *)
  let squash = ex_valid &&& (ex_class.(c_jump) ||| (ex_class.(c_branch) &&& taken_in)) in

  (* forwarding selects for the instruction in EX *)
  let ex_uses_rs1 =
    ex_class.(c_alu_rr) ||| ex_class.(c_alu_ri) ||| ex_class.(c_load)
    ||| ex_class.(c_store) ||| ex_class.(c_branch)
  in
  let ex_uses_rs2 = ex_class.(c_alu_rr) ||| ex_class.(c_store) in
  let fwd_a_mem =
    ex_valid &&& ex_uses_rs1 &&& mem_valid &&& mem_writes &&& nonzero mem_rd
    &&& Expr.Vec.eq ex_rs1 mem_rd
  in
  let fwd_a_wb =
    ex_valid &&& ex_uses_rs1 &&& wb_valid &&& wb_writes &&& nonzero wb_rd
    &&& Expr.Vec.eq ex_rs1 wb_rd &&& !!fwd_a_mem
  in
  let fwd_b_mem =
    ex_valid &&& ex_uses_rs2 &&& mem_valid &&& mem_writes &&& nonzero mem_rd
    &&& Expr.Vec.eq ex_rs2 mem_rd
  in
  let fwd_b_wb =
    ex_valid &&& ex_uses_rs2 &&& wb_valid &&& wb_writes &&& nonzero wb_rd
    &&& Expr.Vec.eq ex_rs2 wb_rd &&& !!fwd_b_mem
  in
  let regwrite = wb_valid &&& wb_writes &&& nonzero wb_rd in
  let memwrite = mem_valid &&& mem_class.(c_store) in

  (* ---- interlock registers (registered control decisions, read by
     the fetch controller) ---- *)
  let stall_r = reg ctx ~group:"interlock" "stall_r" in
  let squash_r = reg ctx ~group:"interlock" "squash_r" in
  assign ctx stall_r stall;
  assign ctx squash_r squash;

  (* ---- fetch controller transitions ---- *)
  assign ctx fetch_valid (!!squash);
  assign ctx redirect_r squash_r;
  assign ctx delay1 (redirect_r ||| stall_r);
  (* holds itself on squash: stays with the fetch group instead of
     being retimed away by the output-buffer pass *)
  assign ctx delay2 (Expr.mux squash delay2 delay1);

  (* ---- ID stage transitions ---- *)
  (* a NOP is inserted when decode has nothing real to latch *)
  let insert_real = instr_valid &&& fetch_valid &&& !!squash in
  assign ctx id_valid (Expr.mux stall id_valid insert_real);
  Array.iteri
    (fun k r ->
      let decode_k =
        if k = c_nop then !!insert_real ||| (insert_real &&& class_is k)
        else insert_real &&& class_is k
      in
      assign ctx r (Expr.mux stall r decode_k))
    id_class;
  let gate_field field input_bits =
    Array.iteri
      (fun b r ->
        assign ctx r (Expr.mux stall r (Expr.mux insert_real input_bits.(b) Expr.fls)))
      field
  in
  gate_field id_rd rd_in;
  gate_field id_rs1 rs1_in;
  gate_field id_rs2 rs2_in;

  (* ---- EX stage transitions ---- *)
  let kill_ex = stall ||| squash in
  assign ctx ex_valid (Expr.mux kill_ex Expr.fls id_valid);
  Array.iteri
    (fun k r -> assign ctx r (Expr.mux kill_ex (Expr.const (k = c_nop)) id_class.(k)))
    ex_class;
  let move_field dst src =
    Array.iteri (fun b r -> assign ctx r (Expr.mux kill_ex Expr.fls src.(b))) dst
  in
  move_field ex_rd id_rd;
  move_field ex_rs1 id_rs1;
  move_field ex_rs2 id_rs2;

  (* ---- MEM stage transitions ---- *)
  assign ctx mem_valid ex_valid;
  Array.iteri (fun k r -> assign ctx r ex_class.(k)) mem_class;
  Array.iteri (fun b r -> assign ctx r ex_rd.(b)) mem_rd;
  Array.iteri (fun b r -> assign ctx r ex_rs1.(b)) mem_rs1_dbg;
  (* the debug shadow holds itself on squash so the output-buffer pass
     does not retime it away; only the cone reduction may remove it *)
  Array.iteri
    (fun b r -> assign ctx r (Expr.mux squash r mem_rs1_dbg.(b)))
    wb_rs1_dbg;

  (* ---- WB stage transitions ---- *)
  assign ctx wb_valid mem_valid;
  Array.iteri (fun k r -> assign ctx r mem_class.(k)) wb_class;
  Array.iteri (fun b r -> assign ctx r mem_rd.(b)) wb_rd;

  (* ---- synchronizing latches on the outputs to the datapath ---- *)
  let sync name e =
    let r = reg ctx ~group:"outsync" ("os_" ^ name) in
    assign ctx r e;
    output ctx name r;
    r
  in
  let _ = sync "stall" stall in
  let _ = sync "branch_sel" squash in
  let _ = sync "fwd_a_mem" fwd_a_mem in
  let _ = sync "fwd_a_wb" fwd_a_wb in
  let _ = sync "fwd_b_mem" fwd_b_mem in
  let _ = sync "fwd_b_wb" fwd_b_wb in
  let _ = sync "regwrite" regwrite in
  let _ = sync "memwrite" memwrite in
  let wbrd_sync =
    Array.mapi
      (fun b e ->
        let r = reg ctx ~group:"outsync" (Printf.sprintf "os_wb_rd%d" b) in
        assign ctx r e;
        r)
      wb_rd
  in
  output_vec ctx "wb_rd_out" wbrd_sync;

  (* observability outputs that keep the interaction state visible
     (Requirement 5): destination addresses in flight *)
  output_vec ctx "ex_rd_obs" ex_rd;
  output_vec ctx "mem_rd_obs" mem_rd;
  output ctx "ex_writes_obs" (ex_valid &&& ex_writes);

  (* the registered interlock decisions stay observable so that only
     the final abstraction step removes them *)
  output ctx "interlock_state_obs" (stall_r ||| squash_r);

  (* debug-only outputs, removed by the "outputs not affecting control
     logic" abstraction step *)
  output_vec ctx "dbg_wb_rs1" wb_rs1_dbg;
  output ctx "dbg_delay2" delay2;

  (* ---- input constraints: invalid instructions excluded ---- *)
  (* class codes 0..6 only *)
  constrain ctx (!!(Expr.Vec.eq_const class_in 7));
  (* invalid fetch presents a NOP with zeroed fields *)
  let fields_zero f = !!(nonzero f) in
  constrain ctx (instr_valid ||| (class_is c_nop &&& fields_zero rd_in &&& fields_zero rs1_in &&& fields_zero rs2_in));
  (* per-class field zeroing *)
  let uses_rd = class_is c_alu_rr ||| class_is c_alu_ri ||| class_is c_load in
  let uses_rs1 =
    class_is c_alu_rr ||| class_is c_alu_ri ||| class_is c_load ||| class_is c_store
    ||| class_is c_branch
  in
  let uses_rs2 = class_is c_alu_rr ||| class_is c_store in
  constrain ctx (uses_rd ||| fields_zero rd_in);
  constrain ctx (uses_rs1 ||| fields_zero rs1_in);
  constrain ctx (uses_rs2 ||| fields_zero rs2_in);
  (* the PSW-derived branch-test input can only pulse when a branch is
     actually resolving in EX (a state-dependent input constraint) *)
  constrain ctx (!!taken_in ||| (ex_valid &&& ex_class.(c_branch)));

  finish ctx

let high_addr_bits =
  List.concat_map
    (fun f -> List.init (addr_width - 2) (fun b -> (Printf.sprintf "%s[%d]" f (b + 2), false)))
    [ "rd_in"; "rs1_in"; "rs2_in" ]

let abstraction_sequence =
  [
    {
      Netabs.label = "no synchronizing latches for outputs";
      pass = Netabs.remove_output_buffers;
    };
    {
      Netabs.label = "4 registers instead of 32";
      pass =
        (fun c -> Netabs.constant_reg_elim (Netabs.tie_inputs c high_addr_bits));
    };
    { Netabs.label = "fetch controller removed"; pass = (fun c -> Netabs.free_group c "fetch") };
    {
      Netabs.label = "remove outputs not affecting control logic";
      pass =
        (fun c ->
          Netabs.cone_reduce
            (Netabs.drop_outputs c ~keep:(fun n ->
                 not (String.length n >= 4 && String.sub n 0 4 = "dbg_"))));
    };
    {
      Netabs.label = "1-hot to binary encoding";
      pass =
        (fun c ->
          List.fold_left
            (fun c g -> Netabs.onehot_to_binary c ~group:g)
            c
            [ "id_class"; "ex_class"; "mem_class"; "wb_class" ]);
    };
    {
      Netabs.label = "remove interlock registers";
      pass = (fun c -> Netabs.free_group c "interlock");
    };
  ]

let derive_test_model () = Netabs.run_sequence (build ()) abstraction_sequence
