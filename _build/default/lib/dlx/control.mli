(** The pipelined DLX control netlist — the paper's "initial abstract
    test model" (Figure 3a) — and its abstraction sequence (Figure 3b).

    The circuit contains only the control portion of the pipelined
    implementation: per-stage instruction-class registers (one-hot in
    the initial model), destination/source register-address fields,
    valid bits, a small fetch controller, registered interlock
    decisions and synchronizing latches on the outputs to the
    datapath. Signals that would come from the datapath (the branch
    test result — the Processor Status Word in the paper's account)
    are primary inputs, constrained to be consistent with the state
    ("relationships between datapath outputs modeled as primary
    inputs", Section 7.2).

    Instruction-word inputs use the full 5-bit register addresses; the
    "4 registers instead of 32" abstraction step ties the upper address
    bits to zero and sweeps the constant state away, reproducing the
    paper's 18-bit reduced instruction format. *)

open Simcov_netlist

val build : unit -> Circuit.t
(** The initial control model (5-bit register addresses, one-hot class
    encodings, output-sync latches, fetch controller, interlock
    registers). *)

val abstraction_sequence : Simcov_abstraction.Netabs.step list
(** The Figure 3(b) sequence, in the paper's order:
    + no synchronizing latches for outputs,
    + 4 registers instead of 32,
    + fetch controller removed,
    + remove outputs not affecting control logic,
    + one-hot to binary encoding,
    + remove interlock registers. *)

val derive_test_model : unit -> Circuit.t * Simcov_abstraction.Netabs.trace_entry list
(** [build] followed by the full sequence, with the per-step
    state-element counts Figure 3(b) reports. *)
