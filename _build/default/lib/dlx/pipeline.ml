type bugs = {
  no_exmem_forward : bool;
  no_memwb_forward : bool;
  no_load_interlock : bool;
  no_branch_squash : bool;
  forward_rs2_as_rs1 : bool;
  interlock_ignores_rs2 : bool;
  branch_polarity : bool;
  lost_store_forward : bool;
  jal_no_link : bool;
  bypass_fails_rd3 : bool;
  interlock_fails_rd2 : bool;
  storedata_exmem_fails : bool;
}

let no_bugs =
  {
    no_exmem_forward = false;
    no_memwb_forward = false;
    no_load_interlock = false;
    no_branch_squash = false;
    forward_rs2_as_rs1 = false;
    interlock_ignores_rs2 = false;
    branch_polarity = false;
    lost_store_forward = false;
    jal_no_link = false;
    bypass_fails_rd3 = false;
    interlock_fails_rd2 = false;
    storedata_exmem_fails = false;
  }

let bug_catalog =
  [
    ("no_exmem_forward", { no_bugs with no_exmem_forward = true });
    ("no_memwb_forward", { no_bugs with no_memwb_forward = true });
    ("no_load_interlock", { no_bugs with no_load_interlock = true });
    ("no_branch_squash", { no_bugs with no_branch_squash = true });
    ("forward_rs2_as_rs1", { no_bugs with forward_rs2_as_rs1 = true });
    ("interlock_ignores_rs2", { no_bugs with interlock_ignores_rs2 = true });
    ("branch_polarity", { no_bugs with branch_polarity = true });
    ("lost_store_forward", { no_bugs with lost_store_forward = true });
    ("jal_no_link", { no_bugs with jal_no_link = true });
    ("bypass_fails_rd3", { no_bugs with bypass_fails_rd3 = true });
    ("interlock_fails_rd2", { no_bugs with interlock_fails_rd2 = true });
    ("storedata_exmem_fails", { no_bugs with storedata_exmem_fails = true });
  ]

(* Pipeline registers. Payloads carry everything the younger stages
   need, including the commit-record fields assembled so far. *)
type slot_ifid = { fpc : int; finstr : Isa.t }
type slot_idex = { dpc : int; dinstr : Isa.t; a : int32; b : int32 }

type slot_exmem = {
  xpc : int;
  xinstr : Isa.t;
  alu : int32;
  store_data : int32;
  xnext_pc : int;
}

type slot_memwb = {
  mpc : int;
  minstr : Isa.t;
  value : int32;
  mem_write : (int * int32) option;
  mnext_pc : int;
}

type t = {
  program : Isa.t array;
  regs : int32 array;
  memory : int32 array;
  bugs : bugs;
  mutable pc : int;
  mutable s_ifid : slot_ifid option;
  mutable s_idex : slot_idex option;
  mutable s_exmem : slot_exmem option;
  mutable s_memwb : slot_memwb option;
  mutable cycles : int;
  mutable stalls : int;
  mutable squashes : int;
}

let create ?(mem_words = 256) ?(bugs = no_bugs) program =
  {
    program;
    regs = Array.make 32 0l;
    memory = Array.make mem_words 0l;
    bugs;
    pc = 0;
    s_ifid = None;
    s_idex = None;
    s_exmem = None;
    s_memwb = None;
    cycles = 0;
    stalls = 0;
    squashes = 0;
  }

let set_reg t r v = if r <> 0 then t.regs.(r) <- v
let mem_index t a = ((a mod Array.length t.memory) + Array.length t.memory) mod Array.length t.memory
let set_mem t a v = t.memory.(mem_index t a) <- v

let reg t r = if r = 0 then 0l else t.regs.(r)

(* Does this instruction write a register visible to forwarding? *)
let fwd_dest (i : Isa.t) = Isa.writes_reg i

let cycle t =
  t.cycles <- t.cycles + 1;
  let old_ifid = t.s_ifid
  and old_idex = t.s_idex
  and old_exmem = t.s_exmem
  and old_memwb = t.s_memwb in

  (* ---- WB: write the register file (first half of the cycle) and
     emit the commit record ---- *)
  let commit =
    match old_memwb with
    | None -> None
    | Some m ->
        let reg_write =
          match fwd_dest m.minstr with
          | Some rd when not (t.bugs.jal_no_link && m.minstr.Isa.op = Isa.Jal) ->
              set_reg t rd m.value;
              Some (rd, m.value)
          | _ -> None
        in
        Some
          {
            Spec.at_pc = m.mpc;
            instr = m.minstr;
            reg_write;
            mem_write = m.mem_write;
            next_pc = m.mnext_pc;
          }
  in

  (* ---- MEM ---- *)
  let new_memwb =
    match old_exmem with
    | None -> None
    | Some x -> (
        match x.xinstr.Isa.op with
        | Isa.Lw ->
            let v = t.memory.(mem_index t (Int32.to_int x.alu)) in
            Some { mpc = x.xpc; minstr = x.xinstr; value = v; mem_write = None; mnext_pc = x.xnext_pc }
        | Isa.Sw ->
            let a = mem_index t (Int32.to_int x.alu) in
            t.memory.(a) <- x.store_data;
            Some
              {
                mpc = x.xpc;
                minstr = x.xinstr;
                value = 0l;
                mem_write = Some (a, x.store_data);
                mnext_pc = x.xnext_pc;
              }
        | _ ->
            Some
              { mpc = x.xpc; minstr = x.xinstr; value = x.alu; mem_write = None; mnext_pc = x.xnext_pc })
  in

  (* ---- EX: forwarding, ALU, branch resolution ---- *)
  let redirect = ref None in
  let new_exmem =
    match old_idex with
    | None -> None
    | Some d ->
        let i = d.dinstr in
        (* operand forwarding: EX/MEM has priority over MEM/WB *)
        let forward ~field_reg ~read_value ~is_store_data =
          if field_reg = 0 then read_value
          else begin
            let from_exmem =
              if t.bugs.no_exmem_forward then None
              else if is_store_data && t.bugs.storedata_exmem_fails then None
              else
                match old_exmem with
                | Some x -> (
                    match fwd_dest x.xinstr with
                    | Some rd
                      when rd = field_reg
                           && x.xinstr.Isa.op <> Isa.Sw
                           && not (t.bugs.bypass_fails_rd3 && rd = 3) ->
                        Some x.alu
                    | _ -> None)
                | None -> None
            in
            let from_memwb =
              if t.bugs.no_memwb_forward then None
              else if is_store_data && t.bugs.lost_store_forward then None
              else
                match old_memwb with
                | Some m -> (
                    match fwd_dest m.minstr with
                    | Some rd when rd = field_reg -> Some m.value
                    | _ -> None)
                | None -> None
            in
            match (from_exmem, from_memwb) with
            | Some v, _ -> v
            | None, Some v -> v
            | None, None -> read_value
          end
        in
        let a = forward ~field_reg:i.Isa.rs1 ~read_value:d.a ~is_store_data:false in
        let b_field = if t.bugs.forward_rs2_as_rs1 then i.Isa.rs1 else i.Isa.rs2 in
        let b =
          forward ~field_reg:b_field ~read_value:d.b
            ~is_store_data:(i.Isa.op = Isa.Sw)
        in
        let immv = Int32.of_int i.Isa.imm in
        let fallthrough = d.dpc + 1 in
        let alu_result, next_pc =
          match i.Isa.op with
          | Isa.Add | Isa.Sub | Isa.And | Isa.Or | Isa.Xor | Isa.Slt | Isa.Seq | Isa.Sne
          | Isa.Sge | Isa.Sgt | Isa.Sle | Isa.Sll | Isa.Srl | Isa.Sra ->
              (Spec.alu i.Isa.op a b, fallthrough)
          | Isa.Addi | Isa.Andi | Isa.Ori | Isa.Xori | Isa.Slti | Isa.Seqi | Isa.Snei
          | Isa.Sgei | Isa.Slli | Isa.Srli | Isa.Srai ->
              (Spec.alu i.Isa.op a immv, fallthrough)
          | Isa.Lhi -> (Int32.shift_left immv 16, fallthrough)
          | Isa.Lw | Isa.Sw -> (Int32.add a immv, fallthrough)
          | Isa.Beqz ->
              let cond = a = 0l in
              let cond = if t.bugs.branch_polarity then not cond else cond in
              if cond then (0l, d.dpc + 1 + i.Isa.imm) else (0l, fallthrough)
          | Isa.Bnez ->
              let cond = a <> 0l in
              let cond = if t.bugs.branch_polarity then not cond else cond in
              if cond then (0l, d.dpc + 1 + i.Isa.imm) else (0l, fallthrough)
          | Isa.J -> (0l, i.Isa.imm)
          | Isa.Jal -> (Int32.of_int (d.dpc + 1), i.Isa.imm)
          | Isa.Jr -> (0l, Int32.to_int a)
          | Isa.Jalr -> (Int32.of_int (d.dpc + 1), Int32.to_int a)
          | Isa.Nop -> (0l, fallthrough)
        in
        if next_pc <> fallthrough then redirect := Some next_pc;
        Some
          { xpc = d.dpc; xinstr = i; alu = alu_result; store_data = b; xnext_pc = next_pc }
  in

  (* ---- interlock detection: load in EX (old_idex slot as seen by
     this cycle's EX is old_idex itself; the hazard pairs the load
     currently entering EX with the instruction sitting in ID) ---- *)
  let load_use_stall =
    if t.bugs.no_load_interlock then false
    else
      match (old_idex, old_ifid) with
      | Some d, Some f when d.dinstr.Isa.op = Isa.Lw -> (
          match Isa.writes_reg d.dinstr with
          | Some rd when t.bugs.interlock_fails_rd2 && rd = 2 -> false
          | Some rd ->
              let reads = Isa.reads_regs f.finstr in
              let reads =
                if t.bugs.interlock_ignores_rs2 then
                  match reads with [] -> [] | r :: _ -> [ r ]
                else reads
              in
              List.mem rd reads
          | None -> false)
      | _ -> false
  in

  (* ---- ID: register read (after WB's write) ---- *)
  let new_idex =
    if load_use_stall then begin
      t.stalls <- t.stalls + 1;
      None (* bubble into EX *)
    end
    else
      match old_ifid with
      | None -> None
      | Some f ->
          Some
            {
              dpc = f.fpc;
              dinstr = f.finstr;
              a = reg t f.finstr.Isa.rs1;
              b = reg t f.finstr.Isa.rs2;
            }
  in

  (* ---- IF ---- *)
  let new_ifid, new_pc =
    if load_use_stall then (old_ifid, t.pc)
    else if t.pc >= 0 && t.pc < Array.length t.program then
      (Some { fpc = t.pc; finstr = t.program.(t.pc) }, t.pc + 1)
    else (None, t.pc)
  in

  (* ---- apply redirect (squash younger slots) ---- *)
  let new_ifid, new_idex, new_pc =
    match !redirect with
    | Some target when not t.bugs.no_branch_squash ->
        let squashed =
          (match new_ifid with Some _ -> 1 | None -> 0)
          + (match new_idex with Some _ -> 1 | None -> 0)
        in
        t.squashes <- t.squashes + squashed;
        (None, None, target)
    | Some target ->
        (* buggy: younger instructions survive, but the PC still moves *)
        (new_ifid, new_idex, target)
    | None -> (new_ifid, new_idex, new_pc)
  in

  t.s_ifid <- new_ifid;
  t.s_idex <- new_idex;
  t.s_exmem <- new_exmem;
  t.s_memwb <- new_memwb;
  t.pc <- new_pc;
  commit

let drained t =
  t.s_ifid = None && t.s_idex = None && t.s_exmem = None && t.s_memwb = None
  && not (t.pc >= 0 && t.pc < Array.length t.program)

let run ?(max_cycles = 100_000) t =
  let rec go n acc =
    if n = 0 || drained t then List.rev acc
    else
      match cycle t with
      | Some c -> go (n - 1) (c :: acc)
      | None -> go (n - 1) acc
  in
  go max_cycles []

let stats t = (t.cycles, t.stalls, t.squashes)

let occupancy t =
  ( Option.map (fun s -> Isa.to_string s.finstr) t.s_ifid,
    Option.map (fun s -> Isa.to_string s.dinstr) t.s_idex,
    Option.map (fun s -> Isa.to_string s.xinstr) t.s_exmem,
    Option.map (fun s -> Isa.to_string s.minstr) t.s_memwb )

let trace ?(max_cycles = 200) t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%4s  %-20s %-20s %-20s %-20s %s\n" "cyc" "IF/ID" "ID/EX" "EX/MEM"
       "MEM/WB" "commit");
  let cell = function Some s -> s | None -> "-" in
  let n = ref 0 in
  while (not (drained t)) && !n < max_cycles do
    incr n;
    let stalls0 = t.stalls and squash0 = t.squashes in
    let commit = cycle t in
    let f, d, x, m = occupancy t in
    let note =
      (if t.stalls > stalls0 then " [stall]" else "")
      ^ if t.squashes > squash0 then " [squash]" else ""
    in
    Buffer.add_string buf
      (Printf.sprintf "%4d  %-20s %-20s %-20s %-20s %s%s\n" t.cycles (cell f) (cell d)
         (cell x) (cell m)
         (match commit with
         | Some c -> Isa.to_string c.Spec.instr
         | None -> "-")
         note)
  done;
  Buffer.contents buf
