open Simcov_fsm

type config = { n_regs : int; track_dest : bool; observable_dest : bool }

let default = { n_regs = 4; track_dest = true; observable_dest = true }

let addr_bits cfg =
  assert (cfg.n_regs >= 2 && cfg.n_regs land (cfg.n_regs - 1) = 0);
  let rec go k acc = if k <= 1 then acc else go (k lsr 1) (acc + 1) in
  go cfg.n_regs 0

type abs_input = { cls : Isa.iclass; rd : int; rs1 : int; rs2 : int; taken : bool }

let input_code cfg i =
  let w = addr_bits cfg in
  Isa.class_index i.cls lor (i.rd lsl 3) lor (i.rs1 lsl (3 + w))
  lor (i.rs2 lsl (3 + (2 * w)))
  lor ((if i.taken then 1 else 0) lsl (3 + (3 * w)))

let input_decode cfg code =
  let w = addr_bits cfg in
  let mask = (1 lsl w) - 1 in
  {
    cls = Isa.class_of_index (code land 7);
    rd = (code lsr 3) land mask;
    rs1 = (code lsr (3 + w)) land mask;
    rs2 = (code lsr (3 + (2 * w))) land mask;
    taken = (code lsr (3 + (3 * w))) land 1 = 1;
  }

let n_input_codes cfg = 1 lsl (4 + (3 * addr_bits cfg))

let uses_rd cls = match cls with Isa.Alu_rr | Isa.Alu_ri | Isa.Load -> true | _ -> false

let uses_rs1 cls =
  match cls with
  | Isa.Alu_rr | Isa.Alu_ri | Isa.Load | Isa.Store | Isa.Branch -> true
  | Isa.Jump | Isa.Nopc -> false

let uses_rs2 cls = match cls with Isa.Alu_rr | Isa.Store -> true | _ -> false

let input_is_valid _cfg i =
  let ok_field used v = used || v = 0 in
  ok_field (uses_rd i.cls) i.rd
  && ok_field (uses_rs1 i.cls) i.rs1
  && ok_field (uses_rs2 i.cls) i.rs2
  && ((not i.taken) || i.cls = Isa.Branch)

let n_valid_inputs cfg =
  let count = ref 0 in
  for code = 0 to n_input_codes cfg - 1 do
    (* class codes above 6 decode via class_of_index and would raise *)
    if code land 7 < 7 && input_is_valid cfg (input_decode cfg code) then incr count
  done;
  !count

(* ---- state encoding ----
   With dest tracking: p1 in [0, 2R-1): 0 = nothing in the EX/MEM
   neighbor slot, 1..R-1 = ALU write to that register, R..2R-2 = load
   write to register (p1 - R + 1). p2 in [0, R): 0 = nothing at
   MEM/WB distance, 1..R-1 = a write to that register.
   Without: p1 in {0 none, 1 alu, 2 load}, p2 in {0, 1}. *)

type p1 = P1_none | P1_alu of int | P1_load of int

let p1_size cfg = if cfg.track_dest then (2 * cfg.n_regs) - 1 else 3
let p2_size cfg = if cfg.track_dest then cfg.n_regs else 2

let p1_encode cfg = function
  | P1_none -> 0
  | P1_alu rd -> if cfg.track_dest then rd else 1
  | P1_load rd -> if cfg.track_dest then cfg.n_regs - 1 + rd else 2

let p1_decode cfg v =
  if cfg.track_dest then
    if v = 0 then P1_none
    else if v < cfg.n_regs then P1_alu v
    else P1_load (v - cfg.n_regs + 1)
  else match v with 0 -> P1_none | 1 -> P1_alu 0 | _ -> P1_load 0

let state_code cfg p1v p2v = (p1_encode cfg p1v * p2_size cfg) + p2v

let build cfg =
  let n_states = p1_size cfg * p2_size cfg in
  let n_inputs = n_input_codes cfg in
  let valid _s code =
    code land 7 < 7 && input_is_valid cfg (input_decode cfg code)
  in
  let decompose s = (p1_decode cfg (s / p2_size cfg), s mod p2_size cfg) in
  let stall_of s i =
    let p1v, _ = decompose s in
    match p1v with
    | P1_load rd when cfg.track_dest ->
        (uses_rs1 i.cls && i.rs1 = rd && rd <> 0)
        || (uses_rs2 i.cls && i.rs2 = rd && rd <> 0)
    | P1_load _ (* dest unknown: optimistic resolution *) | P1_alu _ | P1_none ->
        false
  in
  let fwd_of s i ~uses ~field =
    (* 0 = register file, 1 = EX/MEM bypass, 2 = MEM/WB bypass *)
    if not (uses i.cls) || field = 0 then 0
    else
      let p1v, p2v = decompose s in
      let stall = stall_of s i in
      let p1_match =
        cfg.track_dest
        && (match p1v with P1_alu rd | P1_load rd -> rd = field | P1_none -> false)
      in
      if p1_match then if stall then 2 else 1
      else if cfg.track_dest && p2v = field then if stall then 0 else 2
      else 0
  in
  let squash_of i = (i.cls = Isa.Branch && i.taken) || i.cls = Isa.Jump in
  let output s code =
    let i = input_decode cfg code in
    let stall = stall_of s i in
    let fa = fwd_of s i ~uses:uses_rs1 ~field:i.rs1 in
    let fb = fwd_of s i ~uses:uses_rs2 ~field:i.rs2 in
    let base =
      (if stall then 1 else 0)
      lor (fa lsl 1) lor (fb lsl 3)
      lor (if squash_of i then 1 lsl 5 else 0)
    in
    if cfg.observable_dest then
      let p1v, p2v = decompose s in
      base lor (p1_encode cfg p1v lsl 6) lor (p2v lsl 11)
    else base
  in
  let next s code =
    let i = input_decode cfg code in
    if squash_of i then state_code cfg P1_none 0
    else begin
      let p1v, _ = decompose s in
      let stall = stall_of s i in
      let p2' =
        if stall then 0
        else if cfg.track_dest then
          match p1v with P1_alu rd | P1_load rd -> rd | P1_none -> 0
        else match p1v with P1_none -> 0 | P1_alu _ | P1_load _ -> 1
      in
      let p1' =
        if uses_rd i.cls && (i.rd <> 0 || not cfg.track_dest) then
          match i.cls with
          | Isa.Load -> P1_load i.rd
          | Isa.Alu_rr | Isa.Alu_ri -> P1_alu i.rd
          | _ -> P1_none
        else P1_none
      in
      (p1_encode cfg p1' * p2_size cfg) + p2'
    end
  in
  Fsm.make ~n_states ~n_inputs ~valid ~next ~output
    ~state_name:(fun s ->
      let p1v, p2v = decompose s in
      let p1s =
        match p1v with
        | P1_none -> "-"
        | P1_alu r -> Printf.sprintf "alu:r%d" r
        | P1_load r -> Printf.sprintf "ld:r%d" r
      in
      Printf.sprintf "(%s|%s)" p1s (if p2v = 0 then "-" else Printf.sprintf "w:r%d" p2v))
    ~input_name:(fun code ->
      if code land 7 >= 7 then Printf.sprintf "inv%d" code
      else
        let i = input_decode cfg code in
        Printf.sprintf "%s d%d s%d t%d%s" (Isa.class_name i.cls) i.rd i.rs1 i.rs2
          (if i.taken then " T" else ""))
    ()

let dest_merge_mapping cfg =
  assert cfg.track_dest;
  let dcfg = { cfg with track_dest = false } in
  let full_p2 = p2_size cfg in
  {
    Simcov_abstraction.Homomorphism.n_abs_states = p1_size dcfg * p2_size dcfg;
    n_abs_inputs = n_input_codes cfg;
    state_map =
      (fun s ->
        let p1v = p1_decode cfg (s / full_p2) and p2v = s mod full_p2 in
        let p1a =
          match p1v with P1_none -> 0 | P1_alu _ -> 1 | P1_load _ -> 2
        in
        (p1a * 2) + if p2v = 0 then 0 else 1);
    input_map = Fun.id;
    output_map =
      (fun o ->
        (* strip the observable destination digest; keep control actions *)
        o land 0x3F);
  }

(* ---------- concretization ---------- *)

type concrete = {
  program : Isa.t array;
  preload_regs : (int * int32) list;
  preload_mem : (int * int32) list;
  issue_map : int array;
}

let concretize cfg word =
  let r = cfg.n_regs in
  let preload_regs = List.init (r - 1) (fun k -> (k + 1, Int32.of_int ((17 * (k + 1)) + 3))) in
  let preload_mem = List.init 64 (fun k -> (k, Int32.of_int ((7 * k) + 11))) in
  (* architectural shadow: track register values so branch directions
     demanded by the abstract inputs can be realized *)
  let regs = Array.make 32 0l in
  List.iter (fun (k, v) -> regs.(k) <- v) preload_regs;
  let memory = Array.make 256 0l in
  List.iter (fun (a, v) -> memory.(a) <- v) preload_mem;
  let mem_index a = ((a mod 256) + 256) mod 256 in
  let program = ref [] in
  let issue_map = ref [] in
  let pc = ref 0 in
  let counter = ref 0 in
  let jump_count = ref 0 in
  let emit ?(junk = false) instr =
    program := instr :: !program;
    if not junk then issue_map := !pc :: !issue_map;
    incr pc
  in
  let apply (i : Isa.t) =
    (* shadow semantics for the instructions the concretizer emits *)
    match i.Isa.op with
    | Isa.Add | Isa.Sub | Isa.Xor | Isa.And | Isa.Or | Isa.Slt ->
        if i.Isa.rd <> 0 then regs.(i.Isa.rd) <- Spec.alu i.Isa.op regs.(i.Isa.rs1) regs.(i.Isa.rs2)
    | Isa.Addi | Isa.Xori | Isa.Ori | Isa.Andi | Isa.Slti ->
        if i.Isa.rd <> 0 then
          regs.(i.Isa.rd) <- Spec.alu i.Isa.op regs.(i.Isa.rs1) (Int32.of_int i.Isa.imm)
    | Isa.Lw ->
        if i.Isa.rd <> 0 then
          regs.(i.Isa.rd) <- memory.(mem_index (Int32.to_int regs.(i.Isa.rs1) + i.Isa.imm))
    | Isa.Sw ->
        memory.(mem_index (Int32.to_int regs.(i.Isa.rs1) + i.Isa.imm)) <- regs.(i.Isa.rs2)
    | Isa.Jal -> regs.(31) <- Int32.of_int !pc (* pc already advanced past jal *)
    | _ -> ()
  in
  List.iter
    (fun code ->
      let i = input_decode cfg code in
      incr counter;
      match i.cls with
      | Isa.Alu_rr ->
          (* rotate through ALU ops for output diversity (Requirement 3) *)
          let ops = [| Isa.Add; Isa.Sub; Isa.Xor; Isa.Or |] in
          let instr =
            Isa.make ~rd:i.rd ~rs1:i.rs1 ~rs2:i.rs2 ops.(!counter mod Array.length ops)
          in
          emit instr;
          apply instr
      | Isa.Alu_ri ->
          let instr = Isa.make ~rd:i.rd ~rs1:i.rs1 ~imm:((!counter mod 97) + 1) Isa.Addi in
          emit instr;
          apply instr
      | Isa.Load ->
          let instr = Isa.make ~rd:i.rd ~rs1:i.rs1 ~imm:(!counter mod 8) Isa.Lw in
          emit instr;
          apply instr
      | Isa.Store ->
          let instr = Isa.make ~rs1:i.rs1 ~rs2:i.rs2 ~imm:(!counter mod 8) Isa.Sw in
          emit instr;
          apply instr
      | Isa.Branch ->
          (* choose the opcode whose runtime outcome matches [taken] *)
          let z = regs.(i.rs1) = 0l in
          let op = if z = i.taken then Isa.Beqz else Isa.Bnez in
          let instr = Isa.make ~rs1:i.rs1 ~imm:1 op in
          emit instr;
          if i.taken then emit ~junk:true Isa.nop
      | Isa.Jump ->
          incr jump_count;
          let op = if !jump_count land 1 = 0 then Isa.Jal else Isa.J in
          (* absolute target: skip exactly one junk slot *)
          let instr = Isa.make ~imm:(!pc + 2) op in
          emit instr;
          (if op = Isa.Jal then apply instr);
          emit ~junk:true Isa.nop
      | Isa.Nopc -> emit Isa.nop)
    word;
  {
    program = Array.of_list (List.rev !program);
    preload_regs;
    preload_mem;
    issue_map = Array.of_list (List.rev !issue_map);
  }

let pp_abs_input cfg ppf code =
  if code land 7 >= 7 then Format.fprintf ppf "<invalid %d>" code
  else begin
    let i = input_decode cfg code in
    Format.fprintf ppf "%s rd=%d rs1=%d rs2=%d%s" (Isa.class_name i.cls) i.rd i.rs1
      i.rs2
      (if i.taken then " taken" else "")
  end
