type opcode =
  | Add
  | Sub
  | And
  | Or
  | Xor
  | Slt
  | Seq
  | Sne
  | Sge
  | Sgt
  | Sle
  | Sll
  | Srl
  | Sra
  | Addi
  | Andi
  | Ori
  | Xori
  | Slti
  | Seqi
  | Snei
  | Sgei
  | Slli
  | Srli
  | Srai
  | Lhi
  | Lw
  | Sw
  | Beqz
  | Bnez
  | J
  | Jal
  | Jr
  | Jalr
  | Nop

type t = { op : opcode; rd : int; rs1 : int; rs2 : int; imm : int }

let nop = { op = Nop; rd = 0; rs1 = 0; rs2 = 0; imm = 0 }
let make ?(rd = 0) ?(rs1 = 0) ?(rs2 = 0) ?(imm = 0) op = { op; rd; rs1; rs2; imm }

type iclass = Alu_rr | Alu_ri | Load | Store | Branch | Jump | Nopc

let class_of = function
  | Add | Sub | And | Or | Xor | Slt | Seq | Sne | Sge | Sgt | Sle | Sll | Srl | Sra ->
      Alu_rr
  | Addi | Andi | Ori | Xori | Slti | Seqi | Snei | Sgei | Slli | Srli | Srai | Lhi ->
      Alu_ri
  | Lw -> Load
  | Sw -> Store
  | Beqz | Bnez -> Branch
  | J | Jal | Jr | Jalr -> Jump
  | Nop -> Nopc

let class_index = function
  | Alu_rr -> 0
  | Alu_ri -> 1
  | Load -> 2
  | Store -> 3
  | Branch -> 4
  | Jump -> 5
  | Nopc -> 6

let class_of_index = function
  | 0 -> Alu_rr
  | 1 -> Alu_ri
  | 2 -> Load
  | 3 -> Store
  | 4 -> Branch
  | 5 -> Jump
  | 6 -> Nopc
  | n -> invalid_arg (Printf.sprintf "Isa.class_of_index: %d" n)

let n_classes = 7

let class_name = function
  | Alu_rr -> "ALU-RR"
  | Alu_ri -> "ALU-RI"
  | Load -> "LOAD"
  | Store -> "STORE"
  | Branch -> "BRANCH"
  | Jump -> "JUMP"
  | Nopc -> "NOP"

let writes_reg i =
  match class_of i.op with
  | Alu_rr | Alu_ri | Load -> if i.rd = 0 then None else Some i.rd
  | Jump -> if i.op = Jal || i.op = Jalr then Some 31 else None
  | Store | Branch | Nopc -> None

let reads_regs i =
  let srcs =
    match class_of i.op with
    | Alu_rr -> [ i.rs1; i.rs2 ]
    | Alu_ri -> if i.op = Lhi then [] else [ i.rs1 ]
    | Load -> [ i.rs1 ]
    | Store -> [ i.rs1; i.rs2 ] (* address base; data *)
    | Branch -> [ i.rs1 ]
    | Jump -> if i.op = Jr || i.op = Jalr then [ i.rs1 ] else []
    | Nopc -> []
  in
  List.filter (fun r -> r <> 0) srcs

let canon i =
  let z = { i with rd = 0; rs1 = 0; rs2 = 0; imm = 0 } in
  match class_of i.op with
  | Alu_rr -> { z with rd = i.rd; rs1 = i.rs1; rs2 = i.rs2 }
  | Alu_ri ->
      if i.op = Lhi then { z with rd = i.rd; imm = i.imm }
      else { z with rd = i.rd; rs1 = i.rs1; imm = i.imm }
  | Load -> { z with rd = i.rd; rs1 = i.rs1; imm = i.imm }
  | Store -> { z with rs1 = i.rs1; rs2 = i.rs2; imm = i.imm }
  | Branch -> { z with rs1 = i.rs1; imm = i.imm }
  | Jump ->
      if i.op = Jr || i.op = Jalr then { z with rs1 = i.rs1 } else { z with imm = i.imm }
  | Nopc -> z

let opcode_num = function
  | Add -> 0
  | Sub -> 1
  | And -> 2
  | Or -> 3
  | Xor -> 4
  | Slt -> 5
  | Sll -> 6
  | Srl -> 7
  | Addi -> 8
  | Andi -> 9
  | Ori -> 10
  | Xori -> 11
  | Slti -> 12
  | Lhi -> 13
  | Lw -> 14
  | Sw -> 15
  | Beqz -> 16
  | Bnez -> 17
  | J -> 18
  | Jal -> 19
  | Jr -> 20
  | Nop -> 21
  | Seq -> 22
  | Sne -> 23
  | Sge -> 24
  | Sgt -> 25
  | Sle -> 26
  | Sra -> 27
  | Seqi -> 28
  | Snei -> 29
  | Sgei -> 30
  | Slli -> 31
  | Srli -> 32
  | Srai -> 33
  | Jalr -> 34

let opcode_of_num = function
  | 0 -> Some Add
  | 1 -> Some Sub
  | 2 -> Some And
  | 3 -> Some Or
  | 4 -> Some Xor
  | 5 -> Some Slt
  | 6 -> Some Sll
  | 7 -> Some Srl
  | 8 -> Some Addi
  | 9 -> Some Andi
  | 10 -> Some Ori
  | 11 -> Some Xori
  | 12 -> Some Slti
  | 13 -> Some Lhi
  | 14 -> Some Lw
  | 15 -> Some Sw
  | 16 -> Some Beqz
  | 17 -> Some Bnez
  | 18 -> Some J
  | 19 -> Some Jal
  | 20 -> Some Jr
  | 21 -> Some Nop
  | 22 -> Some Seq
  | 23 -> Some Sne
  | 24 -> Some Sge
  | 25 -> Some Sgt
  | 26 -> Some Sle
  | 27 -> Some Sra
  | 28 -> Some Seqi
  | 29 -> Some Snei
  | 30 -> Some Sgei
  | 31 -> Some Slli
  | 32 -> Some Srli
  | 33 -> Some Srai
  | 34 -> Some Jalr
  | _ -> None

(* Layout follows the real DLX formats:
   - R-type:  op(6) rs1(5) rs2(5) rd(5) unused(11)
   - I-type:  op(6) rs1(5) rd(5) imm(16) — stores carry their data
     register in the rd field (semantically rs2)
   - J-type:  op(6) imm(26) *)
let encode i =
  let i = canon i in
  let op = opcode_num i.op in
  match class_of i.op with
  | Jump when i.op <> Jr && i.op <> Jalr ->
      Int32.logor
        (Int32.shift_left (Int32.of_int op) 26)
        (Int32.of_int (i.imm land 0x3FFFFFF))
  | Alu_rr ->
      let w =
        (op lsl 26) lor ((i.rs1 land 31) lsl 21) lor ((i.rs2 land 31) lsl 16)
        lor ((i.rd land 31) lsl 11)
      in
      Int32.of_int w
  | _ ->
      let rd_field = if i.op = Sw then i.rs2 else i.rd in
      let w =
        (op lsl 26) lor ((i.rs1 land 31) lsl 21) lor ((rd_field land 31) lsl 16)
        lor (i.imm land 0xFFFF)
      in
      Int32.of_int w

let sign_extend_16 v = if v land 0x8000 <> 0 then v - 0x10000 else v

let decode w =
  let wi = Int32.to_int (Int32.logand w 0xFFFFFFFFl) land 0xFFFFFFFF in
  let op_num = (wi lsr 26) land 0x3F in
  match opcode_of_num op_num with
  | None -> None
  | Some op -> (
      match class_of op with
      | Jump when op <> Jr && op <> Jalr ->
          Some (canon { nop with op; imm = wi land 0x3FFFFFF })
      | Alu_rr ->
          let rs1 = (wi lsr 21) land 31 in
          let rs2 = (wi lsr 16) land 31 in
          let rd = (wi lsr 11) land 31 in
          Some (canon { op; rd; rs1; rs2; imm = 0 })
      | _ ->
          let rs1 = (wi lsr 21) land 31 in
          let rd_field = (wi lsr 16) land 31 in
          let imm = sign_extend_16 (wi land 0xFFFF) in
          let rd, rs2 = if op = Sw then (0, rd_field) else (rd_field, 0) in
          Some (canon { op; rd; rs1; rs2; imm }))

let mnemonic = function
  | Add -> "add"
  | Sub -> "sub"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Slt -> "slt"
  | Sll -> "sll"
  | Srl -> "srl"
  | Addi -> "addi"
  | Andi -> "andi"
  | Ori -> "ori"
  | Xori -> "xori"
  | Slti -> "slti"
  | Lhi -> "lhi"
  | Lw -> "lw"
  | Sw -> "sw"
  | Beqz -> "beqz"
  | Bnez -> "bnez"
  | J -> "j"
  | Jal -> "jal"
  | Jr -> "jr"
  | Jalr -> "jalr"
  | Nop -> "nop"
  | Seq -> "seq"
  | Sne -> "sne"
  | Sge -> "sge"
  | Sgt -> "sgt"
  | Sle -> "sle"
  | Sra -> "sra"
  | Seqi -> "seqi"
  | Snei -> "snei"
  | Sgei -> "sgei"
  | Slli -> "slli"
  | Srli -> "srli"
  | Srai -> "srai"

let opcode_of_mnemonic s =
  let all =
    [
      Add; Sub; And; Or; Xor; Slt; Seq; Sne; Sge; Sgt; Sle; Sll; Srl; Sra; Addi; Andi;
      Ori; Xori; Slti; Seqi; Snei; Sgei; Slli; Srli; Srai; Lhi; Lw; Sw; Beqz; Bnez; J;
      Jal; Jr; Jalr; Nop;
    ]
  in
  List.find_opt (fun op -> mnemonic op = s) all

let to_string i =
  let i = canon i in
  match class_of i.op with
  | Alu_rr -> Printf.sprintf "%s r%d, r%d, r%d" (mnemonic i.op) i.rd i.rs1 i.rs2
  | Alu_ri ->
      if i.op = Lhi then Printf.sprintf "lhi r%d, %d" i.rd i.imm
      else Printf.sprintf "%s r%d, r%d, %d" (mnemonic i.op) i.rd i.rs1 i.imm
  | Load -> Printf.sprintf "lw r%d, %d(r%d)" i.rd i.imm i.rs1
  | Store -> Printf.sprintf "sw r%d, %d(r%d)" i.rs2 i.imm i.rs1
  | Branch -> Printf.sprintf "%s r%d, %d" (mnemonic i.op) i.rs1 i.imm
  | Jump -> (
      match i.op with
      | Jr -> Printf.sprintf "jr r%d" i.rs1
      | Jalr -> Printf.sprintf "jalr r%d" i.rs1
      | _ -> Printf.sprintf "%s %d" (mnemonic i.op) i.imm)
  | Nopc -> "nop"

let pp ppf i = Format.pp_print_string ppf (to_string i)

(* --- parsing --- *)

let parse_reg s =
  let s = String.trim s in
  if String.length s >= 2 && s.[0] = 'r' then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some r when r >= 0 && r < 32 -> Ok r
    | _ -> Error ("bad register: " ^ s)
  else Error ("bad register: " ^ s)

let parse_int s =
  match int_of_string_opt (String.trim s) with
  | Some v -> Ok v
  | None -> Error ("bad immediate: " ^ s)

(* "imm(rN)" *)
let parse_mem_operand s =
  let s = String.trim s in
  match String.index_opt s '(' with
  | None -> Error ("bad memory operand: " ^ s)
  | Some i ->
      if String.length s = 0 || s.[String.length s - 1] <> ')' then
        Error ("bad memory operand: " ^ s)
      else
        let imm_s = String.sub s 0 i in
        let reg_s = String.sub s (i + 1) (String.length s - i - 2) in
        Result.bind (parse_int (if imm_s = "" then "0" else imm_s)) (fun imm ->
            Result.map (fun r -> (imm, r)) (parse_reg reg_s))

let ( let* ) = Result.bind

let of_string line =
  let line = String.trim line in
  match String.index_opt line ' ' with
  | None -> (
      match opcode_of_mnemonic line with
      | Some Nop -> Ok nop
      | _ -> Error ("cannot parse: " ^ line))
  | Some sp -> (
      let mn = String.sub line 0 sp in
      let rest = String.sub line (sp + 1) (String.length line - sp - 1) in
      let args = String.split_on_char ',' rest |> List.map String.trim in
      match opcode_of_mnemonic mn with
      | None -> Error ("unknown mnemonic: " ^ mn)
      | Some op -> (
          match (class_of op, args) with
          | Alu_rr, [ a; b; c ] ->
              let* rd = parse_reg a in
              let* rs1 = parse_reg b in
              let* rs2 = parse_reg c in
              Ok (make ~rd ~rs1 ~rs2 op)
          | Alu_ri, [ a; b ] when op = Lhi ->
              let* rd = parse_reg a in
              let* imm = parse_int b in
              Ok (make ~rd ~imm op)
          | Alu_ri, [ a; b; c ] ->
              let* rd = parse_reg a in
              let* rs1 = parse_reg b in
              let* imm = parse_int c in
              Ok (make ~rd ~rs1 ~imm op)
          | Load, [ a; b ] ->
              let* rd = parse_reg a in
              let* imm, rs1 = parse_mem_operand b in
              Ok (make ~rd ~rs1 ~imm op)
          | Store, [ a; b ] ->
              let* rs2 = parse_reg a in
              let* imm, rs1 = parse_mem_operand b in
              Ok (make ~rs1 ~rs2 ~imm op)
          | Branch, [ a; b ] ->
              let* rs1 = parse_reg a in
              let* imm = parse_int b in
              Ok (make ~rs1 ~imm op)
          | Jump, [ a ] when op = Jr || op = Jalr ->
              let* rs1 = parse_reg a in
              Ok (make ~rs1 op)
          | Jump, [ a ] ->
              let* imm = parse_int a in
              Ok (make ~imm op)
          | _ -> Error ("wrong operands for " ^ mn ^ ": " ^ rest)))

let parse_program text =
  let lines = String.split_on_char '\n' text in
  let rec go n acc = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | line :: rest -> (
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        let line = String.trim line in
        if line = "" then go (n + 1) acc rest
        else
          match of_string line with
          | Ok i -> go (n + 1) (i :: acc) rest
          | Error e -> Error (Printf.sprintf "line %d: %s" n e))
  in
  go 1 [] lines
