(** Dual-issue (2-wide, in-order) DLX implementation.

    Section 5 of the paper singles out issue parallelism as what makes
    processor validation hard ("an implementation may introduce
    parallelism in the processing of instructions in the form of
    pipelined or superscalar execution"), and the work it builds on
    (Ho et al.) validated a dual-issue pipelined processor. This
    module scales the methodology to that case: a 2-wide in-order
    machine whose {e pairing rules} are the control under validation.

    A younger instruction issues in the same cycle as its older
    neighbor only when:
    - it has no RAW dependence on the older one,
    - they do not write the same register (WAW),
    - the older one is not a control transfer (a branch or jump ends
      the issue group), and
    - at most one of the two accesses memory (single data port).

    The seeded bugs break exactly these rules, with the realistic
    microarchitectural consequence: an illegally paired younger
    instruction reads the register file and data memory {e before} its
    older neighbor's results are written.

    Commits are {!Spec.commit} records in program order, so validation
    against the architectural simulator works unchanged. *)

type bugs = {
  pair_despite_raw : bool;  (** RAW pairs issue; the younger reads stale registers *)
  pair_despite_waw : bool;  (** WAW pairs issue; the older write lands last *)
  pair_after_branch : bool;
      (** issue groups ignore control transfers: the younger commits
          even when the older branch/jump takes *)
  pair_two_mem : bool;
      (** two memory operations share the cycle; the younger reads
          memory before the older store lands *)
}

val no_bugs : bugs
val bug_catalog : (string * bugs) list

type t

val create : ?mem_words:int -> ?bugs:bugs -> Isa.t array -> t
val set_reg : t -> int -> int32 -> unit
val set_mem : t -> int -> int32 -> unit

val run : ?max_cycles:int -> t -> Spec.commit list
val stats : t -> int * int * int
(** [(cycles, dual_issues, single_issues)]. *)

(** {1 Pair coverage}

    The pairing control is memoryless, so its "transition tour" is a
    single pass over the abstract pair classes: (older class, younger
    class, RAW?, WAW?, both-memory?) with impossible combinations
    excluded. *)

type pair_class = {
  older : Isa.iclass;
  younger : Isa.iclass;
  raw : bool;
  waw : bool;
}

val pair_classes : unit -> pair_class list
(** All feasible pair classes. *)

val concretize_pairs : pair_class list -> Isa.t array
(** A program exercising each pair class once, with data chosen so
    that every illegal pairing would be observable (Requirement 3). *)

val validate : ?bugs:bugs -> Isa.t array -> Validate.outcome
(** Commit-stream comparison against {!Spec}. *)

val bug_campaign : Isa.t array -> (string * bool) list
