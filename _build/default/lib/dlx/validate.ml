type mismatch = {
  index : int;
  expected : Spec.commit option;
  actual : Spec.commit option;
}

type outcome = Pass of int | Fail of mismatch

let commits_equal (a : Spec.commit) (b : Spec.commit) =
  a.Spec.at_pc = b.Spec.at_pc
  && a.Spec.instr = b.Spec.instr
  && a.Spec.reg_write = b.Spec.reg_write
  && a.Spec.mem_write = b.Spec.mem_write
  && a.Spec.next_pc = b.Spec.next_pc

let run_program ?(bugs = Pipeline.no_bugs) ?(max_steps = 10_000) ?(preload_regs = [])
    ?(preload_mem = []) program =
  let spec = Spec.create program in
  let pipe = Pipeline.create ~bugs program in
  List.iter (fun (r, v) -> Spec.set_reg spec r v) preload_regs;
  List.iter (fun (r, v) -> Pipeline.set_reg pipe r v) preload_regs;
  List.iter (fun (a, v) -> Spec.set_mem spec a v) preload_mem;
  List.iter (fun (a, v) -> Pipeline.set_mem pipe a v) preload_mem;
  let expected = Spec.run ~max_steps spec in
  let actual = Pipeline.run ~max_cycles:(max_steps * 4) pipe in
  let rec compare idx exp act =
    match (exp, act) with
    | [], [] -> Pass idx
    | e :: exp', a :: act' ->
        if commits_equal e a then compare (idx + 1) exp' act'
        else Fail { index = idx; expected = Some e; actual = Some a }
    | e :: _, [] -> Fail { index = idx; expected = Some e; actual = None }
    | [], a :: _ -> Fail { index = idx; expected = None; actual = Some a }
  in
  compare 0 expected actual

let detects_bug ~program bugs =
  match run_program ~bugs program with Pass _ -> false | Fail _ -> true

type campaign_result = {
  bug_results : (string * bool) list;
  n_detected : int;
  n_bugs : int;
}

let bug_campaign_multi programs =
  let bug_results =
    List.map
      (fun (name, bugs) ->
        (name, List.exists (fun p -> detects_bug ~program:p bugs) programs))
      Pipeline.bug_catalog
  in
  {
    bug_results;
    n_detected = List.length (List.filter snd bug_results);
    n_bugs = List.length bug_results;
  }

let bug_campaign program = bug_campaign_multi [ program ]

let pp_outcome ppf = function
  | Pass n -> Format.fprintf ppf "PASS (%d commits compared)" n
  | Fail { index; expected; actual } ->
      Format.fprintf ppf "FAIL at commit %d:@\n  expected: %a@\n  actual:   %a" index
        (Format.pp_print_option ~none:(fun ppf () -> Format.pp_print_string ppf "(nothing)")
           Spec.pp_commit)
        expected
        (Format.pp_print_option ~none:(fun ppf () -> Format.pp_print_string ppf "(nothing)")
           Spec.pp_commit)
        actual
