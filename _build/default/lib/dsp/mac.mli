(** The second design class of Section 5: a fixed-program processor
    ("e.g. a signal processing ASIC") whose input sequence is simply a
    sequence of data values.

    The device is a saturating multiply-accumulate unit with four
    commands — load coefficient, MAC a sample, clear, read the
    accumulator. The pipelined implementation has a two-cycle
    multiplier and a one-cycle accumulator, so it exhibits the same
    control phenomena as the DLX pipeline at a smaller scale:

    - a {e read} racing a MAC still in the multiplier must {e stall};
    - a read racing a MAC in the accumulate stage is served by a
      {e bypass} from the adder;
    - {e clear} must {e squash} in-flight products;
    - the coefficient used by a MAC is the one at issue time, even if
      a later [Setc] overtakes it in the pipeline.

    [Spec] is the sample-per-step behavioral model, [Pipe] the
    cycle-accurate pipeline with a seeded-bug catalog, [Testmodel] the
    issue-level control FSM with its command-stream concretizer, and
    [Validate] the checkpoint comparison. *)

type cmd = Setc of int32 | Mac of int32 | Clear | Read

type response = Ack | Value of int32

val pp_cmd : Format.formatter -> cmd -> unit
val pp_response : Format.formatter -> response -> unit

val saturating_add : int32 -> int32 -> int32
(** 32-bit saturating addition (clamps at [Int32.min_int]/[max_int]). *)

val saturating_mul : int32 -> int32 -> int32

module Spec : sig
  type t

  val create : unit -> t
  val coefficient : t -> int32
  val accumulator : t -> int32
  val step : t -> cmd -> response
  val run : t -> cmd list -> response list
end

module Pipe : sig
  type bugs = {
    read_no_stall : bool;  (** read ignores a product still in the multiplier *)
    read_no_forward : bool;  (** read misses the accumulate-stage bypass *)
    clear_no_squash : bool;  (** clear lets in-flight products land afterwards *)
    setc_leaks : bool;  (** a MAC in flight picks up a newer coefficient *)
    saturation_wraps : bool;  (** the accumulator wraps instead of saturating *)
  }

  val no_bugs : bugs
  val bug_catalog : (string * bugs) list

  type t

  val create : ?bugs:bugs -> unit -> t

  val issue : t -> cmd -> response
  (** Issue one command (internally advancing the clock through any
      stall cycles) and return its response. Responses are produced in
      issue order, directly comparable with {!Spec.step}. *)

  val run : t -> cmd list -> response list
  val stats : t -> int * int * int
  (** (cycles, stalls, squashed products). *)
end

module Testmodel : sig
  open Simcov_fsm

  val build : ?observable:bool -> unit -> Fsm.t
  (** Issue-level control model: state = which of the two previous
      commands were MACs (their products still in flight); inputs =
      the four command classes; outputs = stall / forward / squash
      controls, plus the in-flight state when [observable] (default
      true — Requirement 5). *)

  val input_setc : int
  val input_mac : int
  val input_clear : int
  val input_read : int

  val concretize : int list -> cmd list
  (** Abstract input word -> command stream with distinct data values
      (Requirement 3). *)
end

module Validate : sig
  type outcome = Pass of int | Fail of { index : int; expected : response; actual : response }

  val run : ?bugs:Pipe.bugs -> cmd list -> outcome
  val bug_campaign : cmd list -> (string * bool) list
  val pp_outcome : Format.formatter -> outcome -> unit
end
