type cmd = Setc of int32 | Mac of int32 | Clear | Read
type response = Ack | Value of int32

let pp_cmd ppf = function
  | Setc v -> Format.fprintf ppf "setc %ld" v
  | Mac x -> Format.fprintf ppf "mac %ld" x
  | Clear -> Format.pp_print_string ppf "clear"
  | Read -> Format.pp_print_string ppf "read"

let pp_response ppf = function
  | Ack -> Format.pp_print_string ppf "ack"
  | Value v -> Format.fprintf ppf "value %ld" v

(* clamp a 64-bit intermediate into int32 range *)
let clamp64 v =
  if Int64.compare v (Int64.of_int32 Int32.max_int) > 0 then Int32.max_int
  else if Int64.compare v (Int64.of_int32 Int32.min_int) < 0 then Int32.min_int
  else Int64.to_int32 v

let saturating_add a b = clamp64 (Int64.add (Int64.of_int32 a) (Int64.of_int32 b))
let saturating_mul a b = clamp64 (Int64.mul (Int64.of_int32 a) (Int64.of_int32 b))

module Spec = struct
  type t = { mutable c : int32; mutable acc : int32 }

  let create () = { c = 0l; acc = 0l }
  let coefficient t = t.c
  let accumulator t = t.acc

  let step t = function
    | Setc v ->
        t.c <- v;
        Ack
    | Mac x ->
        t.acc <- saturating_add t.acc (saturating_mul t.c x);
        Ack
    | Clear ->
        t.acc <- 0l;
        Ack
    | Read -> Value t.acc

  let run t cmds = List.map (step t) cmds
end

module Pipe = struct
  type bugs = {
    read_no_stall : bool;
    read_no_forward : bool;
    clear_no_squash : bool;
    setc_leaks : bool;
    saturation_wraps : bool;
  }

  let no_bugs =
    {
      read_no_stall = false;
      read_no_forward = false;
      clear_no_squash = false;
      setc_leaks = false;
      saturation_wraps = false;
    }

  let bug_catalog =
    [
      ("read_no_stall", { no_bugs with read_no_stall = true });
      ("read_no_forward", { no_bugs with read_no_forward = true });
      ("clear_no_squash", { no_bugs with clear_no_squash = true });
      ("setc_leaks", { no_bugs with setc_leaks = true });
      ("saturation_wraps", { no_bugs with saturation_wraps = true });
    ]

  (* pipeline slots: a MAC spends one cycle in M1 (first multiplier
     half, holding the raw operand and the coefficient captured at
     issue), one in M2 (product formed), then its product lands in the
     accumulator at the next clock *)
  type mac_inflight = { operand : int32; captured_c : int32 }

  type t = {
    bugs : bugs;
    mutable c : int32;
    mutable acc : int32;
    mutable m1 : mac_inflight option;
    mutable m2 : mac_inflight option; (* second multiplier half *)
    mutable cycles : int;
    mutable stalls : int;
    mutable squashed : int;
  }

  let create ?(bugs = no_bugs) () =
    { bugs; c = 0l; acc = 0l; m1 = None; m2 = None; cycles = 0; stalls = 0; squashed = 0 }

  let add t a b =
    if t.bugs.saturation_wraps then Int32.add a b else saturating_add a b

  (* one clock: the M2 product accumulates, M1 moves to M2. The
     product is formed against the coefficient captured at issue; the
     [setc_leaks] bug wires the multiplier to the live coefficient
     register instead. *)
  let clock t =
    t.cycles <- t.cycles + 1;
    (match t.m2 with
    | Some m ->
        let c = if t.bugs.setc_leaks then t.c else m.captured_c in
        t.acc <- add t t.acc (saturating_mul c m.operand)
    | None -> ());
    t.m2 <- t.m1;
    t.m1 <- None

  let issue t cmd =
    match cmd with
    | Setc v ->
        clock t;
        t.c <- v;
        Ack
    | Mac x ->
        clock t;
        t.m1 <- Some { operand = x; captured_c = t.c };
        Ack
    | Clear ->
        (* clear takes effect immediately: in-flight products are
           squashed before they can land *)
        if not t.bugs.clear_no_squash then begin
          t.squashed <-
            (t.squashed + match t.m1 with Some _ -> 1 | None -> 0)
            + (match t.m2 with Some _ -> 1 | None -> 0);
          t.m1 <- None;
          t.m2 <- None
        end;
        clock t;
        t.acc <- 0l;
        Ack
    | Read ->
        (* The response mux sees the REGISTERED accumulator; when the
           adder is busy during the response cycle, the up-to-date sum
           exists only on the adder output and must be forwarded. A
           product still in the multiplier when the read issues is not
           forwardable at all: the read must stall one cycle. *)
        let registered = t.acc in
        let adder_busy = t.m2 <> None in
        clock t;
        if t.m2 <> None && not t.bugs.read_no_stall then begin
          (* a MAC issued last cycle is multiplying: wait for it *)
          t.stalls <- t.stalls + 1;
          let registered' = t.acc in
          clock t;
          (* the stalled cycle's adder result is forwarded *)
          if t.bugs.read_no_forward then Value registered' else Value t.acc
        end
        else if adder_busy && t.bugs.read_no_forward then Value registered
        else Value t.acc

  let run t cmds = List.map (issue t) cmds

  let stats t = (t.cycles, t.stalls, t.squashed)
end

module Testmodel = struct
  open Simcov_fsm

  let input_setc = 0
  let input_mac = 1
  let input_clear = 2
  let input_read = 3

  (* state = (d1, d2): was the previous / before-previous command a MAC
     whose product is still in flight at this issue *)
  let build ?(observable = true) () =
    let encode d1 d2 = (if d1 then 2 else 0) + if d2 then 1 else 0 in
    let d1_of s = s land 2 <> 0 and d2_of s = s land 1 <> 0 in
    let next s i =
      let d1 = d1_of s in
      if i = input_clear then encode false false (* squash *)
      else if i = input_mac then encode true d1
      else if i = input_read then
        (* a read stalls when d1: the d1 product advances an extra
           cycle and is consumed; either way nothing of the past
           remains closer than distance 2 *)
        encode false (if d1 then false else d1)
      else encode false d1 (* setc *)
    in
    let output s i =
      let d1 = d1_of s and d2 = d2_of s in
      let stall = i = input_read && d1 in
      let fwd = i = input_read && (d1 || d2) in
      let squash = if i = input_clear then (if d1 then 1 else 0) + if d2 then 1 else 0 else 0 in
      let base = (if stall then 1 else 0) lor (if fwd then 2 else 0) lor (squash lsl 2) in
      if observable then base lor (s lsl 4) else base
    in
    Fsm.make ~n_states:4 ~n_inputs:4 ~next ~output
      ~state_name:(fun s ->
        Printf.sprintf "(m%s,a%s)" (if d1_of s then "+" else "-") (if d2_of s then "+" else "-"))
      ~input_name:(fun i -> [| "setc"; "mac"; "clear"; "read" |].(i))
      ()

  let concretize word =
    let counter = ref 0 in
    (* Requirement 3 (unique input -> unique output) demands data that
       makes every product visible: establish a nonzero coefficient
       before the tour proper, otherwise MACs before the first Setc
       multiply by the reset coefficient 0 and their loss cannot be
       observed *)
    Setc 5l
    :: List.map
         (fun i ->
           incr counter;
           let sign v = if !counter land 1 = 0 then v else -v in
           if i = input_setc then
             (* occasionally drive the coefficient high enough that the
                following MACs exercise the saturating edge; otherwise
                keep values small and of alternating sign so the
                accumulator stays in the observable range — data
                selection per Requirement 3 *)
             if !counter mod 11 = 0 then Setc 0x2000_0000l
             else Setc (Int32.of_int (sign ((!counter * 7) + 1)))
           else if i = input_mac then
             if !counter mod 13 = 0 then Mac 0x2000_0000l
             else Mac (Int32.of_int (sign ((!counter * 13) + 3)))
           else if i = input_clear then Clear
           else Read)
         word
end

module Validate = struct
  type outcome = Pass of int | Fail of { index : int; expected : response; actual : response }

  let run ?(bugs = Pipe.no_bugs) cmds =
    let spec = Spec.create () in
    let pipe = Pipe.create ~bugs () in
    let rec go idx = function
      | [] -> Pass idx
      | cmd :: rest ->
          let expected = Spec.step spec cmd in
          let actual = Pipe.issue pipe cmd in
          if expected = actual then go (idx + 1) rest
          else Fail { index = idx; expected; actual }
    in
    go 0 cmds

  let bug_campaign cmds =
    List.map
      (fun (name, bugs) ->
        (name, match run ~bugs cmds with Fail _ -> true | Pass _ -> false))
      Pipe.bug_catalog

  let pp_outcome ppf = function
    | Pass n -> Format.fprintf ppf "PASS (%d responses compared)" n
    | Fail { index; expected; actual } ->
        Format.fprintf ppf "FAIL at command %d: expected %a, got %a" index pp_response
          expected pp_response actual
end
