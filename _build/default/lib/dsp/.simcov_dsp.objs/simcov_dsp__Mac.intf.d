lib/dsp/mac.mli: Format Fsm Simcov_fsm
