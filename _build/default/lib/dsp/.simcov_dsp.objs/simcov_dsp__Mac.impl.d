lib/dsp/mac.ml: Array Format Fsm Int32 Int64 List Printf Simcov_fsm
