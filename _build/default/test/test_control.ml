open Simcov_dlx
open Simcov_netlist
open Simcov_abstraction

let test_initial_model_shape () =
  let c = Control.build () in
  Alcotest.(check int) "101 state elements" 101 (Circuit.n_regs c);
  Alcotest.(check int) "20 primary inputs" 20 (Circuit.n_inputs c);
  Alcotest.(check bool) "has the documented groups" true
    (List.for_all
       (fun g -> List.mem g (Circuit.groups c))
       [ "fetch"; "id_class"; "ex_class"; "mem_class"; "wb_class"; "interlock"; "outsync" ])

let test_abstraction_sequence_counts () =
  let _, trace = Control.derive_test_model () in
  let counts = List.map (fun (t : Netabs.trace_entry) -> t.Netabs.regs_after) trace in
  (* the Figure 3(b) analogue: a strictly decreasing chain, six steps *)
  Alcotest.(check int) "six steps" 6 (List.length counts);
  Alcotest.(check (list int)) "documented sequence" [ 88; 58; 54; 50; 34; 32 ] counts;
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a > b && decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "strictly decreasing" true (decreasing (101 :: counts))

let test_each_step_removes_its_group () =
  let c = Control.build () in
  let step n = List.nth Control.abstraction_sequence n in
  let after1 = (step 0).Netabs.pass c in
  Alcotest.(check (list int)) "outsync gone" [] (Circuit.regs_in_group after1 "outsync");
  let after2 = (step 1).Netabs.pass after1 in
  Alcotest.(check int) "2-bit id_rd left" 2 (List.length (Circuit.regs_in_group after2 "id_rd"));
  let after3 = (step 2).Netabs.pass after2 in
  Alcotest.(check (list int)) "fetch gone" [] (Circuit.regs_in_group after3 "fetch");
  Alcotest.(check bool) "fetch promoted to inputs" true
    (Array.exists (fun n -> n = "free_fetch_valid") after3.Circuit.input_names);
  let after4 = (step 3).Netabs.pass after3 in
  Alcotest.(check (list int)) "debug shadow gone" [] (Circuit.regs_in_group after4 "mem_dbg");
  let after5 = (step 4).Netabs.pass after4 in
  Alcotest.(check int) "id class binary" 3 (List.length (Circuit.regs_in_group after5 "id_class"));
  let after6 = (step 5).Netabs.pass after5 in
  Alcotest.(check (list int)) "interlock gone" [] (Circuit.regs_in_group after6 "interlock")

(* random VALID input vectors for the control circuit *)
let random_valid_inputs rng (c : Circuit.t) state =
  let n = Circuit.n_inputs c in
  let rec try_once attempts =
    if attempts = 0 then None
    else begin
      let v = Array.init n (fun _ -> Simcov_util.Rng.bool rng) in
      if Circuit.input_valid c state v then Some v else try_once (attempts - 1)
    end
  in
  try_once 500

let simulate_randomly rng c steps =
  let rec go state n acc =
    if n = 0 then List.rev acc
    else
      match random_valid_inputs rng c state with
      | None -> List.rev acc
      | Some v ->
          let state', outs = Circuit.step c state v in
          go state' (n - 1) ((v, outs) :: acc)
  in
  go (Circuit.initial_state c) steps []

let test_onehot_step_preserves_behavior () =
  (* apply steps 1..4 then compare outputs before/after the one-hot
     re-encoding on shared random valid stimulus *)
  let c =
    List.fold_left
      (fun c k -> (List.nth Control.abstraction_sequence k).Netabs.pass c)
      (Control.build ()) [ 0; 1; 2; 3 ]
  in
  let c' = (List.nth Control.abstraction_sequence 4).Netabs.pass c in
  Alcotest.(check int) "same inputs" (Circuit.n_inputs c) (Circuit.n_inputs c');
  let rng = Simcov_util.Rng.create 41 in
  let trace = simulate_randomly rng c 60 in
  let rec replay state' = function
    | [] -> ()
    | (v, outs) :: rest ->
        Alcotest.(check bool) "input valid in re-encoded model" true
          (Circuit.input_valid c' state' v);
        let state'', outs' = Circuit.step c' state' v in
        Alcotest.(check (array bool)) "outputs agree" outs outs';
        replay state'' rest
  in
  replay (Circuit.initial_state c') trace

let test_stall_signal_behavior () =
  (* directed check on the initial model: a load followed by a
     dependent instruction raises the (synchronized) stall output *)
  let c = Control.build () in
  let zeros = Array.make (Circuit.n_inputs c) false in
  let instr ~cls ~rd ~rs1 =
    let v = Array.copy zeros in
    v.(0) <- true (* instr_valid *);
    (* class_in bits 1..3; rd bits 4..8; rs1 bits 9..13 *)
    for b = 0 to 2 do
      v.(1 + b) <- (cls lsr b) land 1 = 1
    done;
    for b = 0 to 4 do
      v.(4 + b) <- (rd lsr b) land 1 = 1;
      v.(9 + b) <- (rs1 lsr b) land 1 = 1
    done;
    v
  in
  let nopv =
    let v = Array.copy zeros in
    v.(0) <- true;
    for b = 0 to 2 do
      v.(1 + b) <- (6 lsr b) land 1 = 1
    done;
    v
  in
  let stall_idx =
    let found = ref (-1) in
    Array.iteri
      (fun k (o : Circuit.port) -> if o.Circuit.port_name = "stall" then found := k)
      c.Circuit.outputs;
    !found
  in
  (* cycle 1: load r1 enters ID; cycle 2: dependent ALU enters ID while
     the load is in EX -> stall computed, visible on the synchronized
     output one cycle later *)
  let inputs = [ instr ~cls:2 ~rd:1 ~rs1:2; instr ~cls:0 ~rd:3 ~rs1:1; nopv; nopv ] in
  (* the stall computes in cycle 3 (dependent in ID, load in EX) and the
     synchronized output shows it in cycle 4 *)
  let outs = Circuit.simulate c inputs in
  let stalls = List.map (fun o -> o.(stall_idx)) outs in
  Alcotest.(check (list bool)) "stall pulse" [ false; false; false; true ] stalls

let test_final_model_simulates () =
  let final, _ = Control.derive_test_model () in
  let rng = Simcov_util.Rng.create 17 in
  let trace = simulate_randomly rng final 100 in
  Alcotest.(check int) "100 random valid steps" 100 (List.length trace)

let suite =
  [
    Alcotest.test_case "initial model shape" `Quick test_initial_model_shape;
    Alcotest.test_case "sequence counts" `Quick test_abstraction_sequence_counts;
    Alcotest.test_case "steps remove groups" `Quick test_each_step_removes_its_group;
    Alcotest.test_case "onehot preserves behavior" `Quick test_onehot_step_preserves_behavior;
    Alcotest.test_case "stall signal" `Quick test_stall_signal_behavior;
    Alcotest.test_case "final model simulates" `Quick test_final_model_simulates;
  ]
