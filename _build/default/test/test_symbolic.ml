open Simcov_netlist
open Simcov_symbolic.Symfsm

let ( !! ) = Expr.( !! )
let ( &&& ) = Expr.( &&& )
let ( ^^^ ) = Expr.( ^^^ )

(* 2-bit counter with enable; state 00 -> 01 -> 10 -> 11 -> 00 *)
let counter_circuit () =
  let open Circuit.Build in
  let ctx = create "counter2" in
  let en = input ctx "en" in
  let b0 = reg ctx "b0" in
  let b1 = reg ctx "b1" in
  assign ctx b0 (Expr.mux en (!!b0) b0);
  assign ctx b1 (Expr.mux en (b1 ^^^ b0) b1);
  output ctx "wrap" (en &&& b0 &&& b1);
  finish ctx

(* A circuit whose reachable set is a strict subset: b1 can never
   become true because its next is b1 && b0 starting from 00. *)
let stuck_circuit () =
  let open Circuit.Build in
  let ctx = create "stuck" in
  let i = input ctx "i" in
  let b0 = reg ctx "b0" in
  let b1 = reg ctx "b1" in
  assign ctx b0 (i &&& !!b1);
  assign ctx b1 (b1 &&& b0);
  output ctx "o" b0;
  finish ctx

let test_of_circuit_shapes () =
  let t = of_circuit (counter_circuit ()) in
  Alcotest.(check int) "state vars" 2 t.n_state_vars;
  Alcotest.(check int) "input vars" 1 t.n_input_vars

let test_reachable_full () =
  let t = of_circuit (counter_circuit ()) in
  let _, iters = reachable t in
  Alcotest.(check (float 0.001)) "all 4 states" 4.0 (count_reachable t);
  Alcotest.(check bool) "few iterations" true (iters <= 5)

let test_reachable_strict_subset () =
  let t = of_circuit (stuck_circuit ()) in
  (* states: 00 and 10 only (b1 stays 0; b0 toggles with i) *)
  Alcotest.(check (float 0.001)) "2 of 4 states" 2.0 (count_reachable t)

let test_count_transitions () =
  let t = of_circuit (counter_circuit ()) in
  (* 4 reachable states x 2 inputs, no constraint *)
  Alcotest.(check (float 0.001)) "8 transitions" 8.0 (count_transitions t)

let test_counts_match_explicit () =
  let c = counter_circuit () in
  let t = of_circuit c in
  let m = Circuit.to_fsm c in
  Alcotest.(check (float 0.001)) "reachable matches"
    (float_of_int (Simcov_fsm.Fsm.n_reachable m))
    (count_reachable t);
  Alcotest.(check (float 0.001)) "transitions match"
    (float_of_int (Simcov_fsm.Fsm.n_transitions m))
    (count_transitions t)

let test_constraint_counts () =
  let open Circuit.Build in
  let ctx = create "constrained" in
  let a = input ctx "a" in
  let b = input ctx "b" in
  let r = reg ctx "r" in
  assign ctx r (a ^^^ b);
  output ctx "o" r;
  constrain ctx (Expr.( !! ) (a &&& b));
  let c = finish ctx in
  let t = of_circuit c in
  Alcotest.(check (float 0.001)) "3 of 4 input combos valid" 3.0 (count_valid_inputs t);
  Alcotest.(check (float 0.001)) "input space" 4.0 (input_space_size t);
  (* 2 reachable states x 3 valid inputs *)
  Alcotest.(check (float 0.001)) "6 transitions" 6.0 (count_transitions t)

let test_image_preimage () =
  let t = of_circuit (counter_circuit ()) in
  (* image of {00} under both inputs: {00 (en=0), 01 (en=1)} *)
  let s00 = state_cube t [| false; false |] in
  let img = image t s00 in
  Alcotest.(check (float 0.001)) "two successors" 2.0 (count_states t img);
  (* preimage of {01}: states that can reach 01 = {00 (en), 01 (hold)} *)
  let s01 = state_cube t [| true; false |] in
  let pre = preimage t s01 in
  Alcotest.(check (float 0.001)) "two predecessors" 2.0 (count_states t pre)

let test_pick_state () =
  let t = of_circuit (counter_circuit ()) in
  (match pick_state t t.init with
  | Some s -> Alcotest.(check bool) "initial is 00" true (s = [| false; false |])
  | None -> Alcotest.fail "init nonempty");
  Alcotest.(check bool) "empty set" true
    (pick_state t (Simcov_bdd.Bdd.bfalse t.man) = None)

let test_of_fsm_counts () =
  let counter3 =
    Simcov_fsm.Fsm.make ~n_states:3 ~n_inputs:2
      ~next:(fun s i -> if i = 0 then (s + 1) mod 3 else 0)
      ~output:(fun s i -> if i = 0 then (s + 1) mod 3 else s)
      ()
  in
  let t = of_fsm counter3 in
  Alcotest.(check (float 0.001)) "3 reachable" 3.0 (count_reachable t);
  Alcotest.(check (float 0.001)) "6 transitions" 6.0 (count_transitions t)

let test_of_fsm_respects_validity () =
  let m = Simcov_fsm.Fsm.of_table [ (0, 0, 1, 0); (1, 1, 0, 1) ] in
  let t = of_fsm m in
  Alcotest.(check (float 0.001)) "2 transitions" 2.0 (count_transitions t);
  Alcotest.(check (float 0.001)) "2 valid input combos" 2.0 (count_valid_inputs t)

let test_symbolic_vs_explicit_random () =
  let rng = Simcov_util.Rng.create 77 in
  for _ = 1 to 10 do
    let m = Simcov_fsm.Fsm.random_connected rng ~n_states:6 ~n_inputs:2 ~n_outputs:2 in
    let t = of_fsm m in
    Alcotest.(check (float 0.001)) "reachable agrees"
      (float_of_int (Simcov_fsm.Fsm.n_reachable m))
      (count_reachable t);
    Alcotest.(check (float 0.001)) "transitions agree"
      (float_of_int (Simcov_fsm.Fsm.n_transitions m))
      (count_transitions t)
  done

let suite =
  [
    Alcotest.test_case "of_circuit shapes" `Quick test_of_circuit_shapes;
    Alcotest.test_case "reachable full" `Quick test_reachable_full;
    Alcotest.test_case "reachable strict subset" `Quick test_reachable_strict_subset;
    Alcotest.test_case "count transitions" `Quick test_count_transitions;
    Alcotest.test_case "counts match explicit" `Quick test_counts_match_explicit;
    Alcotest.test_case "constraint counts" `Quick test_constraint_counts;
    Alcotest.test_case "image/preimage" `Quick test_image_preimage;
    Alcotest.test_case "pick state" `Quick test_pick_state;
    Alcotest.test_case "of_fsm counts" `Quick test_of_fsm_counts;
    Alcotest.test_case "of_fsm validity" `Quick test_of_fsm_respects_validity;
    Alcotest.test_case "symbolic vs explicit" `Quick test_symbolic_vs_explicit_random;
  ]
