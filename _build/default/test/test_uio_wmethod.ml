open Simcov_fsm
open Simcov_testgen

(* identity-output machine: every state revealed by any input *)
let ident =
  Fsm.make ~n_states:4 ~n_inputs:2
    ~next:(fun s i -> (s + i + 1) mod 4)
    ~output:(fun s i -> (s * 2) + i)
    ()

(* machine where state identification needs two steps: outputs equal on
   the first step from 0/1; successors answer differently *)
let two_step =
  Fsm.of_table
    [
      (0, 0, 2, 0);
      (1, 0, 3, 0);
      (2, 0, 0, 1);
      (3, 0, 1, 2);
    ]

let run_from (m : Fsm.t) s word =
  List.fold_left
    (fun (s, acc) i ->
      if m.Fsm.valid s i then
        let s', o = Fsm.step m s i in
        (s', `O o :: acc)
      else (s, `Invalid :: acc))
    (s, []) word
  |> snd

let check_is_uio m s word =
  let mine = run_from m s word in
  for q = 0 to m.Fsm.n_states - 1 do
    if q <> s then
      Alcotest.(check bool)
        (Printf.sprintf "uio separates %d from %d" s q)
        true
        (run_from m q word <> mine)
  done

let test_uio_ident () =
  for s = 0 to 3 do
    match Uio.uio ident s with
    | Some w ->
        Alcotest.(check int) "length 1" 1 (List.length w);
        check_is_uio ident s w
    | None -> Alcotest.fail "uio must exist"
  done

let test_uio_two_step () =
  (* states 1 and 3 are unreachable from reset, so identification
     against them needs scope `All *)
  match Uio.uio ~scope:`All two_step 0 with
  | Some w ->
      Alcotest.(check int) "needs 2 inputs" 2 (List.length w);
      check_is_uio two_step 0 w
  | None -> Alcotest.fail "uio must exist"

let test_uio_none_for_equivalent () =
  let m =
    Fsm.make ~n_states:2 ~n_inputs:1 ~next:(fun s _ -> 1 - s) ~output:(fun _ _ -> 0) ()
  in
  Alcotest.(check bool) "no uio between equivalent states" true (Uio.uio m 0 = None)

let test_uio_scope_all () =
  (* Figure 2: UIO of state 3 within reachable scope may pick [c]
     (3' unreachable); within All scope it must pick [b] *)
  let m = Simcov_core.Fig2.original in
  (match Uio.uio ~scope:`All m 2 with
  | Some w ->
      (* must separate 3 from 3' as well *)
      Alcotest.(check bool) "separates from 3'" true
        (run_from m 2 w <> run_from m 3 w)
  | None -> Alcotest.fail "uio must exist");
  match Uio.uio ~scope:`Reachable m 2 with
  | Some w -> Alcotest.(check int) "short in reachable scope" 1 (List.length w)
  | None -> Alcotest.fail "uio must exist"

let test_all_uios () =
  let uios = Uio.all_uios ident in
  Alcotest.(check int) "4 entries" 4 (Array.length uios);
  Array.iter (fun u -> Alcotest.(check bool) "present" true (u <> None)) uios

let test_checking_sequence_valid () =
  match Uio.checking_sequence ident with
  | Some cs ->
      ignore (Fsm.run ident cs);
      Alcotest.(check bool) "covers all transitions" true (Tour.word_is_tour ident cs)
  | None -> Alcotest.fail "checking sequence must exist"

let test_checking_sequence_catches_fig2_error () =
  (* the crown jewel: the plain tour via <a,c> misses the Figure 2
     transfer error; the checking sequence (UIOs over All states)
     cannot miss it *)
  let m = Simcov_core.Fig2.original in
  Alcotest.(check bool) "plain tour misses" false
    (Simcov_coverage.Detect.detects m Simcov_core.Fig2.transfer_error
       Simcov_core.Fig2.tour_via_c);
  match Uio.checking_sequence ~scope:`All m with
  | Some cs ->
      Alcotest.(check bool) "checking sequence detects" true
        (Simcov_coverage.Detect.detects m Simcov_core.Fig2.transfer_error cs)
  | None -> Alcotest.fail "checking sequence must exist"

let test_checking_sequence_all_transfer_faults () =
  let m = ident in
  match Uio.checking_sequence ~scope:`All m with
  | None -> Alcotest.fail "must exist"
  | Some cs ->
      let faults = Simcov_coverage.Fault.all_transfer_faults m in
      let report = Simcov_coverage.Detect.campaign m faults cs in
      Alcotest.(check (float 0.001)) "100%" 100.0
        (Simcov_coverage.Detect.coverage_pct report)

let test_length_overhead () =
  match Uio.length_overhead ident with
  | Some (tour, checking) ->
      Alcotest.(check bool) "checking longer than tour" true (checking > tour)
  | None -> Alcotest.fail "both must exist"

(* ---- W-method ---- *)

let test_characterization_set () =
  let w = Wmethod.characterization_set ident in
  Alcotest.(check bool) "nonempty" true (w <> []);
  (* every pair separated by some word *)
  for p = 0 to 3 do
    for q = p + 1 to 3 do
      Alcotest.(check bool)
        (Printf.sprintf "pair %d,%d separated" p q)
        true
        (List.exists (fun word -> run_from ident p word <> run_from ident q word) w)
    done
  done

let test_characterization_ignores_equivalent () =
  let m =
    Fsm.make ~n_states:2 ~n_inputs:1 ~next:(fun s _ -> 1 - s) ~output:(fun _ _ -> 0) ()
  in
  Alcotest.(check (list (list int))) "empty W" [] (Wmethod.characterization_set m)

let test_transition_cover () =
  let p = Wmethod.transition_cover ident in
  (* empty word + one word per transition *)
  Alcotest.(check int) "size" (1 + Fsm.n_transitions ident) (List.length p);
  Alcotest.(check bool) "contains empty word" true (List.mem [] p);
  (* every word executes from reset *)
  List.iter (fun w -> ignore (Fsm.run ident w)) p

let test_wmethod_suite_complete () =
  let words = Wmethod.suite ident in
  let faults =
    Simcov_coverage.Fault.all_transfer_faults ident
    @ Simcov_coverage.Fault.all_output_faults ident
  in
  let report = Wmethod.campaign ident faults words in
  Alcotest.(check (float 0.001)) "100% fault coverage" 100.0
    (Simcov_coverage.Detect.coverage_pct report)

let test_wmethod_catches_fig2_error () =
  let m = Simcov_core.Fig2.original in
  let words = Wmethod.suite ~scope:`All m in
  Alcotest.(check bool) "W-method detects the Figure 2 error" true
    (Wmethod.detects m Simcov_core.Fig2.transfer_error words)

let test_wmethod_cost () =
  let words = Wmethod.suite ident in
  let tour =
    match Tour.transition_tour ident with Some t -> t.Tour.length | None -> 0
  in
  Alcotest.(check bool) "W-method costs more input symbols" true
    (Wmethod.total_length words > tour)

let test_wmethod_extra_states () =
  (* a mutant with MORE states than the spec: a conditional output
     fault doubles the state space; the plain P.W suite can miss it,
     the m-extra suite with matching slack cannot (Chow) *)
  let diamond =
    Fsm.of_table
      [
        (0, 0, 1, 0);
        (0, 1, 2, 0);
        (1, 0, 3, 1);
        (2, 0, 3, 2);
        (3, 2, 0, 3);
      ]
  in
  let fault =
    Simcov_coverage.Fault.Conditional_output
      { state = 3; input = 2; wrong_output = 9; prev = (1, 0) }
  in
  let extra_suite = Wmethod.suite_extra ~scope:`All ~extra:1 diamond in
  Alcotest.(check bool) "extra suite detects the history-dependent fault" true
    (Wmethod.detects diamond fault extra_suite);
  Alcotest.(check bool) "extra suite costs more" true
    (Wmethod.total_length extra_suite > Wmethod.total_length (Wmethod.suite ~scope:`All diamond))

let qcheck_uio_really_unique =
  QCheck.Test.make ~name:"uio: returned words are unique identifiers" ~count:40
    QCheck.(pair (int_range 3 7) (int_range 1 500))
    (fun (n, seed) ->
      let rng = Simcov_util.Rng.create seed in
      let m = Fsm.random_connected rng ~n_states:n ~n_inputs:3 ~n_outputs:4 in
      let ok = ref true in
      for s = 0 to n - 1 do
        match Uio.uio m s with
        | None -> ()
        | Some w ->
            let mine = run_from m s w in
            for q = 0 to n - 1 do
              if q <> s && run_from m q w = mine then ok := false
            done
      done;
      !ok)

let qcheck_checking_sequence_complete =
  QCheck.Test.make
    ~name:"uio: checking sequences catch every transfer fault (scope=All)" ~count:25
    QCheck.(pair (int_range 3 6) (int_range 1 500))
    (fun (n, seed) ->
      let rng = Simcov_util.Rng.create seed in
      (* output = f(state, input) with many outputs: UIOs exist *)
      let m =
        Fsm.make ~n_states:n ~n_inputs:2
          ~next:(fun s i ->
            (s + i + 1 + Simcov_util.Rng.int (Simcov_util.Rng.copy rng) 1) mod n)
          ~output:(fun s i -> (s * 2) + i)
          ()
      in
      match Uio.checking_sequence ~scope:`All m with
      | None -> QCheck.assume_fail ()
      | Some cs ->
          let faults = Simcov_coverage.Fault.all_transfer_faults m in
          let report = Simcov_coverage.Detect.campaign m faults cs in
          Simcov_coverage.Detect.coverage_pct report = 100.0)

let qcheck_wmethod_complete_on_random =
  QCheck.Test.make ~name:"wmethod: P.W suites catch all single faults" ~count:25
    QCheck.(pair (int_range 3 6) (int_range 1 500))
    (fun (n, seed) ->
      let rng = Simcov_util.Rng.create seed in
      let m = Fsm.random_connected rng ~n_states:n ~n_inputs:3 ~n_outputs:6 in
      (* require pairwise inequivalent states (minimize to be sure) *)
      let q, _ = Fsm.minimize m in
      let words = Wmethod.suite q in
      let faults =
        Simcov_coverage.Fault.all_transfer_faults q
        @ Simcov_coverage.Fault.all_output_faults q
      in
      let report = Wmethod.campaign q faults words in
      Simcov_coverage.Detect.coverage_pct report = 100.0)

let suite =
  [
    Alcotest.test_case "uio ident" `Quick test_uio_ident;
    Alcotest.test_case "uio two-step" `Quick test_uio_two_step;
    Alcotest.test_case "uio none equivalent" `Quick test_uio_none_for_equivalent;
    Alcotest.test_case "uio scope all" `Quick test_uio_scope_all;
    Alcotest.test_case "all uios" `Quick test_all_uios;
    Alcotest.test_case "checking sequence valid" `Quick test_checking_sequence_valid;
    Alcotest.test_case "checking catches fig2" `Quick test_checking_sequence_catches_fig2_error;
    Alcotest.test_case "checking all transfers" `Quick test_checking_sequence_all_transfer_faults;
    Alcotest.test_case "length overhead" `Quick test_length_overhead;
    Alcotest.test_case "characterization set" `Quick test_characterization_set;
    Alcotest.test_case "characterization equivalent" `Quick test_characterization_ignores_equivalent;
    Alcotest.test_case "transition cover" `Quick test_transition_cover;
    Alcotest.test_case "wmethod complete" `Quick test_wmethod_suite_complete;
    Alcotest.test_case "wmethod catches fig2" `Quick test_wmethod_catches_fig2_error;
    Alcotest.test_case "wmethod cost" `Quick test_wmethod_cost;
    Alcotest.test_case "wmethod extra states" `Quick test_wmethod_extra_states;
    QCheck_alcotest.to_alcotest qcheck_uio_really_unique;
    QCheck_alcotest.to_alcotest qcheck_checking_sequence_complete;
    QCheck_alcotest.to_alcotest qcheck_wmethod_complete_on_random;
  ]
