open Simcov_core

let test_structure () =
  Alcotest.(check int) "7 states" 7 Fig2.original.Simcov_fsm.Fsm.n_states;
  Alcotest.(check int) "5 inputs" 5 Fig2.original.Simcov_fsm.Fsm.n_inputs;
  (* 3' and 4' are unreachable in the correct machine *)
  let r = Simcov_fsm.Fsm.reachable Fig2.original in
  Alcotest.(check bool) "3' unreachable" false r.(3);
  Alcotest.(check bool) "4' unreachable" false r.(5)

let test_both_words_are_tours () =
  List.iter
    (fun (m, name) ->
      Alcotest.(check bool) (name ^ ": via b") true
        (Simcov_testgen.Tour.word_is_tour m Fig2.tour_via_b);
      Alcotest.(check bool) (name ^ ": via c") true
        (Simcov_testgen.Tour.word_is_tour m Fig2.tour_via_c))
    [ (Fig2.original, "original"); (Fig2.repaired, "repaired") ]

let test_single_excitation () =
  (* each demonstration tour traverses the faulty (2, a) transition
     exactly once — the point of the figure *)
  let count word =
    let m = Fig2.original in
    let rec go s acc = function
      | [] -> acc
      | i :: rest ->
          let s', _ = Simcov_fsm.Fsm.step m s i in
          go s' (if s = 1 && i = 0 then acc + 1 else acc) rest
    in
    go m.Simcov_fsm.Fsm.reset 0 word
  in
  Alcotest.(check int) "via b: once" 1 (count Fig2.tour_via_b);
  Alcotest.(check int) "via c: once" 1 (count Fig2.tour_via_c)

let test_experiment_shape () =
  let rows = Fig2.experiment () in
  Alcotest.(check int) "four rows" 4 (List.length rows);
  let detected =
    List.map (fun (r : Fig2.row) -> (r.Fig2.machine, r.Fig2.tour, r.Fig2.detected)) rows
  in
  Alcotest.(check bool) "original via c misses" true
    (List.mem ("original", "<a,c> first", false) detected);
  Alcotest.(check bool) "original via b detects" true
    (List.mem ("original", "<a,b> first", true) detected);
  Alcotest.(check bool) "repaired always detects" true
    (List.for_all
       (fun (m, _, d) -> if m = "repaired" then d else true)
       detected)

let test_repaired_certifies_original_does_not () =
  Alcotest.(check bool) "original refuses (scope All)" true
    (Result.is_error (Completeness.certify ~scope:`All Fig2.original));
  Alcotest.(check bool) "repaired certifies (scope All)" true
    (Result.is_ok (Completeness.certify ~scope:`All Fig2.repaired))

let test_random_detection_gap () =
  let rng = Simcov_util.Rng.create 2026 in
  let d_orig = Fig2.random_tour_detection rng ~n:100 Fig2.original in
  let d_rep = Fig2.random_tour_detection rng ~n:100 Fig2.repaired in
  Alcotest.(check int) "repaired: certain" 100 d_rep;
  Alcotest.(check bool) "original: uncertain" true (d_orig < 100)

let suite =
  [
    Alcotest.test_case "structure" `Quick test_structure;
    Alcotest.test_case "both words are tours" `Quick test_both_words_are_tours;
    Alcotest.test_case "single excitation" `Quick test_single_excitation;
    Alcotest.test_case "experiment shape" `Quick test_experiment_shape;
    Alcotest.test_case "certification gap" `Quick test_repaired_certifies_original_does_not;
    Alcotest.test_case "random detection gap" `Quick test_random_detection_gap;
  ]
