open Simcov_dlx

let prog lines =
  match Isa.parse_program (String.concat "\n" lines) with
  | Ok p -> p
  | Error e -> failwith e

let check_pass ?bugs name program =
  match Dual.validate ?bugs program with
  | Validate.Pass _ -> ()
  | Validate.Fail _ as f ->
      Alcotest.failf "%s: %s" name (Format.asprintf "%a" Validate.pp_outcome f)

let check_fail ?bugs name program =
  match Dual.validate ?bugs program with
  | Validate.Fail _ -> ()
  | Validate.Pass _ -> Alcotest.failf "%s: expected a mismatch" name

let test_dual_independent_pair () =
  let p = prog [ "addi r1, r0, 5"; "addi r2, r0, 7"; "add r3, r1, r2"; "sw r3, 0(r0)" ] in
  check_pass "independent pairs" p;
  let d = Dual.create p in
  let _ = Dual.run d in
  let _, duals, singles = Dual.stats d in
  (* (addi, addi) pairs; (add, sw) is RAW through r3 and splits *)
  Alcotest.(check int) "one dual issue" 1 duals;
  Alcotest.(check int) "two single issues" 2 singles

let test_dual_raw_splits () =
  let p = prog [ "addi r1, r0, 5"; "add r2, r1, r1" ] in
  check_pass "raw pair splits" p;
  let d = Dual.create p in
  let _ = Dual.run d in
  let _, duals, singles = Dual.stats d in
  Alcotest.(check int) "no dual issue" 0 duals;
  Alcotest.(check int) "two singles" 2 singles

let test_dual_branch_ends_group () =
  let p = prog [ "addi r1, r0, 1"; "bnez r1, 1"; "addi r2, r0, 99"; "sw r2, 0(r0)" ] in
  check_pass "branch ends group" p

let test_dual_mem_port_conflict () =
  let p =
    prog [ "addi r1, r0, 7"; "sw r1, 0(r0)"; "lw r2, 0(r0)"; "sw r2, 1(r0)"; "lw r3, 1(r0)" ]
  in
  check_pass "one memory port" p;
  let d = Dual.create p in
  let _ = Dual.run d in
  let _, duals, _ = Dual.stats d in
  (* sw/lw to the same cell are RAW-through-memory: never paired *)
  Alcotest.(check bool) "memory ops mostly split" true (duals <= 1)

let test_dual_loop () =
  let p =
    prog
      [
        "addi r1, r0, 4";
        "addi r2, r0, 0";
        "add r2, r2, r1";
        "addi r1, r1, -1";
        "bnez r1, -3";
        "sw r2, 0(r0)";
      ]
  in
  check_pass "countdown loop" p

let test_bug_raw () =
  let p = prog [ "addi r1, r0, 5"; "add r2, r1, r1"; "sw r2, 0(r0)" ] in
  check_fail ~bugs:{ Dual.no_bugs with Dual.pair_despite_raw = true } "raw bug" p

let test_bug_waw () =
  (* both write r1; a later reader exposes the wrong survivor *)
  let p = prog [ "addi r1, r0, 5"; "addi r1, r0, 9"; "sw r1, 0(r0)" ] in
  check_fail ~bugs:{ Dual.no_bugs with Dual.pair_despite_waw = true } "waw bug" p

let test_bug_branch () =
  let p = prog [ "addi r1, r0, 1"; "bnez r1, 2"; "addi r2, r0, 99"; "nop"; "sw r2, 0(r0)" ] in
  check_fail ~bugs:{ Dual.no_bugs with Dual.pair_after_branch = true } "branch bug" p

let test_bug_two_mem () =
  let p = prog [ "addi r1, r0, 7"; "nop"; "sw r1, 3(r0)"; "lw r2, 3(r0)"; "sw r2, 4(r0)" ] in
  check_fail ~bugs:{ Dual.no_bugs with Dual.pair_two_mem = true } "two-mem bug" p

let test_pair_classes_feasible () =
  let pcs = Dual.pair_classes () in
  Alcotest.(check bool) "substantial class count" true (List.length pcs > 60);
  List.iter
    (fun (pc : Dual.pair_class) ->
      Alcotest.(check bool) "raw and waw exclusive" false (pc.Dual.raw && pc.Dual.waw))
    pcs

let test_pair_program_clean () =
  let program = Dual.concretize_pairs (Dual.pair_classes ()) in
  check_pass "pair-coverage program on the correct machine" program

let test_pair_program_catches_all_bugs () =
  let program = Dual.concretize_pairs (Dual.pair_classes ()) in
  List.iter
    (fun (name, detected) ->
      Alcotest.(check bool) ("pair coverage detects " ^ name) true detected)
    (Dual.bug_campaign program)

let qcheck_dual_equals_spec =
  (* dual-issue must match the architectural model on random programs *)
  QCheck.Test.make ~name:"dual: 2-wide machine == spec on random programs" ~count:200
    QCheck.(pair (int_range 5 40) (int_range 1 100000))
    (fun (len, seed) ->
      let rng = Simcov_util.Rng.create seed in
      let r () = Simcov_util.Rng.int rng 8 in
      let program =
        Array.init len (fun k ->
            match Simcov_util.Rng.int rng 10 with
            | 0 | 1 | 2 ->
                let ops = [| Isa.Add; Isa.Sub; Isa.Xor; Isa.Slt; Isa.Seq |] in
                Isa.make ~rd:(r ()) ~rs1:(r ()) ~rs2:(r ()) (Simcov_util.Rng.pick rng ops)
            | 3 | 4 -> Isa.make ~rd:(r ()) ~rs1:(r ()) ~imm:(Simcov_util.Rng.int rng 16) Isa.Addi
            | 5 -> Isa.make ~rd:(r ()) ~rs1:(r ()) ~imm:(Simcov_util.Rng.int rng 8) Isa.Lw
            | 6 -> Isa.make ~rs1:(r ()) ~rs2:(r ()) ~imm:(Simcov_util.Rng.int rng 8) Isa.Sw
            | 7 ->
                let max_off = max 1 (min 3 (len - k - 1)) in
                Isa.make ~rs1:(r ())
                  ~imm:(1 + Simcov_util.Rng.int rng max_off)
                  (if Simcov_util.Rng.bool rng then Isa.Beqz else Isa.Bnez)
            | _ -> Isa.nop)
      in
      match Dual.validate program with Validate.Pass _ -> true | Validate.Fail _ -> false)

let suite =
  [
    Alcotest.test_case "independent pair" `Quick test_dual_independent_pair;
    Alcotest.test_case "raw splits" `Quick test_dual_raw_splits;
    Alcotest.test_case "branch ends group" `Quick test_dual_branch_ends_group;
    Alcotest.test_case "mem port conflict" `Quick test_dual_mem_port_conflict;
    Alcotest.test_case "loop" `Quick test_dual_loop;
    Alcotest.test_case "bug raw" `Quick test_bug_raw;
    Alcotest.test_case "bug waw" `Quick test_bug_waw;
    Alcotest.test_case "bug branch" `Quick test_bug_branch;
    Alcotest.test_case "bug two mem" `Quick test_bug_two_mem;
    Alcotest.test_case "pair classes" `Quick test_pair_classes_feasible;
    Alcotest.test_case "pair program clean" `Quick test_pair_program_clean;
    Alcotest.test_case "pair program catches bugs" `Quick test_pair_program_catches_all_bugs;
    QCheck_alcotest.to_alcotest qcheck_dual_equals_spec;
  ]
