open Simcov_core
open Simcov_fsm

(* an identity-output machine: forall-1-distinguishable, strongly
   connected *)
let ident =
  Fsm.make ~n_states:4 ~n_inputs:2
    ~next:(fun s i -> (s + i + 1) mod 4)
    ~output:(fun s i -> (s * 2) + i)
    ()

let test_certify_ok () =
  match Completeness.certify ident with
  | Ok c ->
      Alcotest.(check int) "k = 1" 1 c.Completeness.k;
      Alcotest.(check int) "4 states" 4 c.Completeness.n_states;
      Alcotest.(check int) "8 transitions" 8 c.Completeness.n_transitions;
      Alcotest.(check bool) "tour at least 8" true (c.Completeness.tour_length >= 8)
  | Error _ -> Alcotest.fail "expected certificate"

let test_certify_not_sc () =
  let m = Fsm.of_table [ (0, 0, 1, 0); (1, 0, 1, 1) ] in
  Alcotest.(check bool) "not SC" true
    (Completeness.certify m = Error Completeness.Not_strongly_connected)

let test_certify_indistinguishable () =
  (* output constant: no k distinguishes anything *)
  let m =
    Fsm.make ~n_states:2 ~n_inputs:1 ~next:(fun s _ -> 1 - s) ~output:(fun _ _ -> 0) ()
  in
  match Completeness.certify ~k_bound:4 m with
  | Error (Completeness.Indistinguishable_pair _) -> ()
  | _ -> Alcotest.fail "expected indistinguishable pair"

let test_padded_tour () =
  match Completeness.certify ident with
  | Ok c ->
      let word = Completeness.padded_tour ident c in
      Alcotest.(check int) "tour + k" (c.Completeness.tour_length + c.Completeness.k)
        (List.length word);
      Alcotest.(check bool) "still a tour" true (Simcov_testgen.Tour.word_is_tour ident word)
  | Error _ -> Alcotest.fail "expected certificate"

let test_empirical_check_100pct () =
  match Completeness.certify ident with
  | Ok c ->
      let rng = Simcov_util.Rng.create 12 in
      let report = Completeness.check_empirically rng ident c in
      Alcotest.(check (float 0.001)) "100% coverage" 100.0
        (Simcov_coverage.Detect.coverage_pct report);
      Alcotest.(check bool) "found some faults" true (report.Simcov_coverage.Detect.effective > 10)
  | Error _ -> Alcotest.fail "expected certificate"

let test_requirements_on_good_model () =
  let model = Simcov_dlx.Testmodel.build Simcov_dlx.Testmodel.default in
  let rng = Simcov_util.Rng.create 3 in
  let r = Requirements.check ~rng model in
  Alcotest.(check bool) "r2 ok" true (Requirements.is_ok r.Requirements.r2_bounded_processing);
  Alcotest.(check bool) "r4 ok" true (Requirements.is_ok r.Requirements.r4_no_masking);
  Alcotest.(check bool) "r5 ok" true
    (Requirements.is_ok r.Requirements.r5_observable_interaction);
  Alcotest.(check bool) "all ok" true (Requirements.all_ok r)

let test_requirements_r5_violated () =
  let model =
    Simcov_dlx.Testmodel.build
      { Simcov_dlx.Testmodel.default with Simcov_dlx.Testmodel.observable_dest = false }
  in
  let r = Requirements.check model in
  match r.Requirements.r5_observable_interaction with
  | Requirements.Violated _ -> ()
  | _ -> Alcotest.fail "hiding interaction state must violate R5"

let test_requirements_r1_via_uniformity () =
  (* concrete machine: fig2-style; fault only on one member of a merged
     pair -> R1 violated; on both -> satisfied *)
  let machine =
    Fsm.of_table
      [
        (0, 0, 1, 0);
        (1, 0, 2, 0);
        (1, 1, 3, 0);
        (2, 1, 4, 1);
        (3, 1, 4, 1);
        (4, 3, 0, 4);
      ]
  in
  let mapping =
    {
      Simcov_abstraction.Homomorphism.n_abs_states = 4;
      n_abs_inputs = 4;
      state_map = (fun s -> if s = 3 then 2 else if s = 4 then 3 else s);
      input_map = Fun.id;
      output_map = Fun.id;
    }
  in
  let model = Simcov_dlx.Testmodel.build Simcov_dlx.Testmodel.default in
  let r_bad =
    Requirements.check ~concrete:(machine, mapping, fun (s, i) -> s = 3 && i = 1) model
  in
  (match r_bad.Requirements.r1_uniform_output_errors with
  | Requirements.Violated _ -> ()
  | _ -> Alcotest.fail "expected R1 violation");
  let r_good =
    Requirements.check
      ~concrete:(machine, mapping, fun (s, i) -> (s = 3 || s = 2) && i = 1)
      model
  in
  match r_good.Requirements.r1_uniform_output_errors with
  | Requirements.Satisfied _ -> ()
  | _ -> Alcotest.fail "expected R1 satisfied"

let test_validate_dlx_default () =
  let r = Methodology.validate_dlx () in
  Alcotest.(check int) "28 model states" 28 r.Methodology.model_states;
  Alcotest.(check bool) "certificate holds" true (Result.is_ok r.Methodology.certificate);
  Alcotest.(check bool) "requirements ok" true
    (Requirements.all_ok r.Methodology.requirements);
  Alcotest.(check int) "all 12 bugs detected" 12 r.Methodology.n_bugs_detected;
  Alcotest.(check (float 0.001)) "FSM coverage 100%" 100.0
    (Simcov_coverage.Detect.coverage_pct r.Methodology.fsm_fault_coverage)

let test_ablation_dest_tracking () =
  let r = Methodology.ablation_dest_tracking () in
  Alcotest.(check bool) "quotient conflict witnessed" true r.Methodology.quotient_conflict;
  Alcotest.(check bool) "abstract tour under-covers refined transitions" true
    (r.Methodology.refined_covered_by_abstract_tour < r.Methodology.refined_transitions);
  let pct_abs =
    Simcov_coverage.Detect.coverage_pct r.Methodology.fault_coverage_abstract_tour
  in
  let pct_ref =
    Simcov_coverage.Detect.coverage_pct r.Methodology.fault_coverage_refined_tour
  in
  Alcotest.(check (float 0.001)) "refined tour: 100%" 100.0 pct_ref;
  Alcotest.(check bool) "abstract tour misses faults" true (pct_abs < 100.0)

let suite =
  [
    Alcotest.test_case "certify ok" `Quick test_certify_ok;
    Alcotest.test_case "certify not SC" `Quick test_certify_not_sc;
    Alcotest.test_case "certify indistinguishable" `Quick test_certify_indistinguishable;
    Alcotest.test_case "padded tour" `Quick test_padded_tour;
    Alcotest.test_case "empirical check 100%" `Quick test_empirical_check_100pct;
    Alcotest.test_case "requirements good model" `Quick test_requirements_on_good_model;
    Alcotest.test_case "requirements r5 violated" `Quick test_requirements_r5_violated;
    Alcotest.test_case "requirements r1 uniformity" `Quick test_requirements_r1_via_uniformity;
    Alcotest.test_case "validate dlx default" `Slow test_validate_dlx_default;
    Alcotest.test_case "ablation dest tracking" `Slow test_ablation_dest_tracking;
  ]
