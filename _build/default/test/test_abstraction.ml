open Simcov_netlist
open Simcov_abstraction

let ( !! ) = Expr.( !! )
let ( &&& ) = Expr.( &&& )
let ( ^^^ ) = Expr.( ^^^ )

(* Circuit with a control register and a "datapath" register feeding
   back into control — the shape the paper's free-input promotion
   handles. *)
let mixed_circuit () =
  let open Circuit.Build in
  let ctx = create "mixed" in
  let i = input ctx "i" in
  let ctrl = reg ctx ~group:"control" "ctrl" in
  let data = reg ctx ~group:"datapath" "data" in
  assign ctx ctrl (i ^^^ data);
  assign ctx data (data ^^^ i);
  output ctx "o" ctrl;
  finish ctx

let test_free_regs_promotes_input () =
  let c = mixed_circuit () in
  let a = Netabs.free_regs c [ Circuit.reg_index c "data" ] in
  Alcotest.(check int) "one register left" 1 (Circuit.n_regs a);
  Alcotest.(check int) "one extra input" 2 (Circuit.n_inputs a);
  Alcotest.(check string) "named after the register" "free_data"
    a.Circuit.input_names.(1);
  (* ctrl's next now reads the free input where it read data *)
  let ins, regs = Expr.support a.Circuit.regs.(0).Circuit.next in
  Alcotest.(check (list int)) "reads both inputs" [ 0; 1 ] ins;
  Alcotest.(check (list int)) "no register deps" [] regs

let test_free_group () =
  let c = mixed_circuit () in
  let a = Netabs.free_group c "datapath" in
  Alcotest.(check int) "control only" 1 (Circuit.n_regs a);
  Alcotest.(check string) "kept reg" "ctrl" a.Circuit.regs.(0).Circuit.name

let test_free_regs_behavior () =
  (* Driving the freed input with the sequence the removed register
     would have produced must reproduce the original outputs. *)
  let c = mixed_circuit () in
  let a = Netabs.free_regs c [ Circuit.reg_index c "data" ] in
  let word = [ true; true; false; true; false ] in
  (* compute data's trajectory in the original *)
  let rec data_traj st acc = function
    | [] -> List.rev acc
    | i :: rest ->
        let st', _ = Circuit.step c st [| i |] in
        data_traj st' (st.(1) :: acc) rest
  in
  let datas = data_traj (Circuit.initial_state c) [] word in
  let abs_inputs = List.map2 (fun i d -> [| i; d |]) word datas in
  let orig_outs = Circuit.simulate c (List.map (fun i -> [| i |]) word) in
  let abs_outs = Circuit.simulate a abs_inputs in
  List.iter2
    (fun o1 o2 -> Alcotest.(check bool) "same output" o1.(0) o2.(0))
    orig_outs abs_outs

let test_drop_outputs () =
  let open Circuit.Build in
  let ctx = create "two_outs" in
  let i = input ctx "i" in
  let r = reg ctx "r" in
  assign ctx r i;
  output ctx "keep_me" r;
  output ctx "drop_me" (!!r);
  let c = finish ctx in
  let a = Netabs.drop_outputs c ~keep:(fun n -> n = "keep_me") in
  Alcotest.(check int) "one output left" 1 (Circuit.n_outputs a);
  Alcotest.(check string) "right one" "keep_me" a.Circuit.outputs.(0).Circuit.port_name

let test_cone_reduce_removes_dead () =
  let open Circuit.Build in
  let ctx = create "dead_state" in
  let i = input ctx "i" in
  let live = reg ctx "live" in
  let dead = reg ctx "dead" in
  assign ctx live i;
  assign ctx dead (dead ^^^ i);
  output ctx "o" live;
  let c = finish ctx in
  let a = Netabs.cone_reduce c in
  Alcotest.(check int) "dead register removed" 1 (Circuit.n_regs a);
  Alcotest.(check string) "live kept" "live" a.Circuit.regs.(0).Circuit.name

let test_remove_output_buffers () =
  let open Circuit.Build in
  let ctx = create "buffered" in
  let i = input ctx "i" in
  let core = reg ctx "core" in
  let buf = reg ctx "buf" in
  assign ctx core (core ^^^ i);
  assign ctx buf core;
  output ctx "o" buf;
  let c = finish ctx in
  let a = Netabs.remove_output_buffers c in
  Alcotest.(check int) "buffer removed" 1 (Circuit.n_regs a);
  (* output now observes core directly: one cycle earlier *)
  let word = [ [| true |]; [| false |]; [| true |]; [| true |] ] in
  let orig = Circuit.simulate c word |> List.map (fun o -> o.(0)) in
  let abs = Circuit.simulate a word |> List.map (fun o -> o.(0)) in
  (* retimed: abs output at step t equals orig output at step t+1 *)
  let rec shifted = function
    | a :: (b :: _ as rest) -> (a, b) :: shifted rest
    | _ -> []
  in
  ignore shifted;
  Alcotest.(check (list bool)) "retimed by one cycle"
    (List.tl orig)
    (List.filteri (fun idx _ -> idx < List.length orig - 1) abs)

let test_remove_output_buffers_keeps_feedback () =
  (* a register that feeds itself must not be removed *)
  let open Circuit.Build in
  let ctx = create "feedback" in
  let i = input ctx "i" in
  let r = reg ctx "toggle" in
  assign ctx r (r ^^^ i);
  output ctx "o" r;
  let c = finish ctx in
  let a = Netabs.remove_output_buffers c in
  Alcotest.(check int) "kept" 1 (Circuit.n_regs a)

let onehot_ring width =
  let open Circuit.Build in
  let ctx = create "ring" in
  let adv = input ctx "adv" in
  let regs =
    Array.init width (fun k -> reg ctx ~group:"phase" ~init:(k = 0) (Printf.sprintf "ph%d" k))
  in
  Array.iteri
    (fun k r ->
      let prev = regs.((k + width - 1) mod width) in
      assign ctx r (Expr.mux adv prev r))
    regs;
  output ctx "at_last" regs.(width - 1);
  finish ctx

let test_onehot_to_binary_counts () =
  let c = onehot_ring 4 in
  let a = Netabs.onehot_to_binary c ~group:"phase" in
  Alcotest.(check int) "4 one-hot -> 2 binary" 2 (Circuit.n_regs a);
  Alcotest.(check bool) "names tagged" true
    (a.Circuit.regs.(0).Circuit.name = "phase_bin[0]")

let test_onehot_to_binary_behavior () =
  let c = onehot_ring 4 in
  let a = Netabs.onehot_to_binary c ~group:"phase" in
  let rng = Simcov_util.Rng.create 5 in
  for _ = 1 to 20 do
    let word = List.init 10 (fun _ -> [| Simcov_util.Rng.bool rng |]) in
    let orig = Circuit.simulate c word |> List.map (fun o -> o.(0)) in
    let abs = Circuit.simulate a word |> List.map (fun o -> o.(0)) in
    Alcotest.(check (list bool)) "same observable behavior" orig abs
  done

let test_onehot_odd_size () =
  let c = onehot_ring 5 in
  let a = Netabs.onehot_to_binary c ~group:"phase" in
  Alcotest.(check int) "5 one-hot -> 3 binary" 3 (Circuit.n_regs a);
  let word = List.init 12 (fun k -> [| k mod 3 <> 0 |]) in
  let orig = Circuit.simulate c word |> List.map (fun o -> o.(0)) in
  let abs = Circuit.simulate a word |> List.map (fun o -> o.(0)) in
  Alcotest.(check (list bool)) "same behavior" orig abs

let test_run_sequence_trace () =
  let c = mixed_circuit () in
  let steps =
    [
      { Netabs.label = "free datapath"; pass = (fun c -> Netabs.free_group c "datapath") };
      { Netabs.label = "cone reduce"; pass = Netabs.cone_reduce };
    ]
  in
  let final, trace = Netabs.run_sequence c steps in
  Alcotest.(check int) "two entries" 2 (List.length trace);
  let first = List.hd trace in
  Alcotest.(check string) "label" "free datapath" first.Netabs.step_label;
  Alcotest.(check int) "before" 2 first.Netabs.regs_before;
  Alcotest.(check int) "after" 1 first.Netabs.regs_after;
  Alcotest.(check int) "final regs" 1 (Circuit.n_regs final)

(* --- Homomorphism --- *)

open Simcov_fsm

let parity_machine =
  (* 4 states = (bit0, bit1); output = bit0 xor bit1 on every step.
     Merging states by parity is an exact abstraction. *)
  Fsm.make ~n_states:4 ~n_inputs:2
    ~next:(fun s i -> s lxor (1 lsl i))
    ~output:(fun s i -> (s lxor (1 lsl i)) land 1 lxor (((s lxor (1 lsl i)) lsr 1) land 1))
    ()

let test_quotient_exact () =
  let mapping =
    {
      Homomorphism.n_abs_states = 2;
      n_abs_inputs = 2;
      state_map = (fun s -> (s land 1) lxor ((s lsr 1) land 1));
      input_map = Fun.id;
      output_map = Fun.id;
    }
  in
  match Homomorphism.quotient parity_machine mapping with
  | Error _ -> Alcotest.fail "expected exact quotient"
  | Ok abs ->
      Alcotest.(check int) "2 states" 2 abs.Fsm.n_states;
      Alcotest.(check bool) "transition preserving" true
        (Homomorphism.is_transition_preserving parity_machine abs mapping)

let test_quotient_conflict () =
  (* merging states 0 and 1 of counter3 is not exact: outputs differ *)
  let counter3 =
    Fsm.make ~n_states:3 ~n_inputs:1 ~next:(fun s _ -> (s + 1) mod 3)
      ~output:(fun s _ -> (s + 1) mod 3)
      ()
  in
  let mapping =
    {
      Homomorphism.n_abs_states = 2;
      n_abs_inputs = 1;
      state_map = (fun s -> if s = 2 then 1 else 0);
      input_map = Fun.id;
      output_map = Fun.id;
    }
  in
  match Homomorphism.quotient counter3 mapping with
  | Error c ->
      Alcotest.(check int) "conflict on merged state" 0 c.Homomorphism.abs_state
  | Ok _ -> Alcotest.fail "expected conflict"

let test_identity_mapping () =
  let m = parity_machine in
  let mapping = Homomorphism.identity_mapping m in
  match Homomorphism.quotient m mapping with
  | Ok abs -> (
      match Fsm.equivalent m abs with
      | Ok [] -> ()
      | _ -> Alcotest.fail "identity quotient differs")
  | Error _ -> Alcotest.fail "identity quotient must be exact"

let test_partition_by () =
  let m = parity_machine in
  let mapping = Homomorphism.state_partition_by m (fun s -> (s land 1) lxor (s lsr 1)) in
  Alcotest.(check int) "two classes" 2 mapping.Homomorphism.n_abs_states;
  match Homomorphism.quotient m mapping with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "parity partition is exact"

let test_forall_k_inherited () =
  (* Section 6.2: the quotient of a forall-k-distinguishable machine
     inherits the property. Verify on the parity example. *)
  let m = parity_machine in
  let mapping = Homomorphism.state_partition_by m (fun s -> (s land 1) lxor (s lsr 1)) in
  match Homomorphism.quotient m mapping with
  | Error _ -> Alcotest.fail "exact"
  | Ok abs -> (
      match (Fsm.min_forall_k m, Fsm.min_forall_k abs) with
      | Some kc, Some ka ->
          Alcotest.(check bool) "abstract k no worse" true (ka <= kc)
      | None, _ ->
          (* concrete machine has equivalent states (parity pairs!) so
             no k exists there; the abstract one must then be checked
             separately *)
          Alcotest.(check bool) "abstract has some k" true
            (Fsm.min_forall_k abs <> None)
      | _ -> Alcotest.fail "unexpected")


(* ---- fuzzing the behavior-preserving passes ---- *)

let random_circuit rng ~n_inputs ~n_regs =
  let rec gen_expr depth =
    if depth = 0 then
      match Simcov_util.Rng.int rng 4 with
      | 0 -> Expr.input (Simcov_util.Rng.int rng n_inputs)
      | 1 -> Expr.reg (Simcov_util.Rng.int rng n_regs)
      | 2 -> Expr.tru
      | _ -> Expr.fls
    else
      match Simcov_util.Rng.int rng 5 with
      | 0 -> !!(gen_expr (depth - 1))
      | 1 -> gen_expr (depth - 1) &&& gen_expr (depth - 1)
      | 2 -> Expr.( ||| ) (gen_expr (depth - 1)) (gen_expr (depth - 1))
      | 3 -> gen_expr (depth - 1) ^^^ gen_expr (depth - 1)
      | _ -> Expr.mux (gen_expr (depth - 1)) (gen_expr (depth - 1)) (gen_expr (depth - 1))
  in
  {
    Circuit.name = "fuzz";
    input_names = Array.init n_inputs (fun i -> Printf.sprintf "i%d" i);
    regs =
      Array.init n_regs (fun r ->
          {
            Circuit.name = Printf.sprintf "r%d" r;
            group = "g";
            init = Simcov_util.Rng.bool rng;
            next = gen_expr 3;
          });
    outputs = [| { Circuit.port_name = "o"; expr = gen_expr 3 } |];
    input_constraint = Expr.tru;
  }

let same_behavior rng c c' runs =
  let ok = ref true in
  for _ = 1 to runs do
    let word =
      List.init 10 (fun _ ->
          Array.init (Circuit.n_inputs c) (fun _ -> Simcov_util.Rng.bool rng))
    in
    if Circuit.simulate c word <> Circuit.simulate c' word then ok := false
  done;
  !ok

let qcheck_cone_reduce_preserves =
  QCheck.Test.make ~name:"abstraction: cone_reduce preserves observable behavior"
    ~count:80
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let rng = Simcov_util.Rng.create seed in
      let c = random_circuit rng ~n_inputs:2 ~n_regs:4 in
      same_behavior rng c (Netabs.cone_reduce c) 20)

let qcheck_constant_elim_preserves =
  QCheck.Test.make ~name:"abstraction: constant_reg_elim preserves observable behavior"
    ~count:80
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let rng = Simcov_util.Rng.create seed in
      let c = random_circuit rng ~n_inputs:2 ~n_regs:4 in
      same_behavior rng c (Netabs.constant_reg_elim c) 20)

let qcheck_tie_inputs_consistent =
  QCheck.Test.make
    ~name:"abstraction: tie_inputs equals driving the tied input constantly" ~count:80
    QCheck.(pair (int_range 1 100_000) bool)
    (fun (seed, tied_value) ->
      let rng = Simcov_util.Rng.create seed in
      let c = random_circuit rng ~n_inputs:3 ~n_regs:3 in
      let c' = Netabs.tie_inputs c [ ("i1", tied_value) ] in
      let ok = ref true in
      for _ = 1 to 20 do
        let word3 =
          List.init 10 (fun _ ->
              [| Simcov_util.Rng.bool rng; tied_value; Simcov_util.Rng.bool rng |])
        in
        let word2 = List.map (fun v -> [| v.(0); v.(2) |]) word3 in
        if Circuit.simulate c word3 <> Circuit.simulate c' word2 then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "free_regs promotes input" `Quick test_free_regs_promotes_input;
    Alcotest.test_case "free_group" `Quick test_free_group;
    Alcotest.test_case "free_regs behavior" `Quick test_free_regs_behavior;
    Alcotest.test_case "drop_outputs" `Quick test_drop_outputs;
    Alcotest.test_case "cone_reduce" `Quick test_cone_reduce_removes_dead;
    Alcotest.test_case "remove_output_buffers" `Quick test_remove_output_buffers;
    Alcotest.test_case "buffers keep feedback" `Quick test_remove_output_buffers_keeps_feedback;
    Alcotest.test_case "onehot->binary counts" `Quick test_onehot_to_binary_counts;
    Alcotest.test_case "onehot->binary behavior" `Quick test_onehot_to_binary_behavior;
    Alcotest.test_case "onehot odd size" `Quick test_onehot_odd_size;
    Alcotest.test_case "run_sequence trace" `Quick test_run_sequence_trace;
    Alcotest.test_case "quotient exact" `Quick test_quotient_exact;
    Alcotest.test_case "quotient conflict" `Quick test_quotient_conflict;
    Alcotest.test_case "identity mapping" `Quick test_identity_mapping;
    Alcotest.test_case "partition by" `Quick test_partition_by;
    Alcotest.test_case "forall-k inherited" `Quick test_forall_k_inherited;
    QCheck_alcotest.to_alcotest qcheck_cone_reduce_preserves;
    QCheck_alcotest.to_alcotest qcheck_constant_elim_preserves;
    QCheck_alcotest.to_alcotest qcheck_tie_inputs_consistent;
  ]
