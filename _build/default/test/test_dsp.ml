open Simcov_dsp.Mac

let i32 = Int32.of_int

let test_saturating_arith () =
  Alcotest.(check int32) "plain add" 7l (saturating_add 3l 4l);
  Alcotest.(check int32) "clamps high" Int32.max_int
    (saturating_add Int32.max_int 1l);
  Alcotest.(check int32) "clamps low" Int32.min_int
    (saturating_add Int32.min_int (-1l));
  Alcotest.(check int32) "mul clamps" Int32.max_int
    (saturating_mul 65536l 65536l);
  Alcotest.(check int32) "mul plain" (-12l) (saturating_mul 3l (-4l))

let test_spec_basic () =
  let s = Spec.create () in
  let r = Spec.run s [ Setc 3l; Mac 4l; Mac 5l; Read ] in
  Alcotest.(check bool) "responses" true (r = [ Ack; Ack; Ack; Value 27l ])

let test_spec_clear () =
  let s = Spec.create () in
  let r = Spec.run s [ Setc 2l; Mac 10l; Clear; Mac 3l; Read ] in
  Alcotest.(check bool) "clear wipes" true
    (List.nth r 4 = Value 6l)

let run_both ?bugs cmds = Validate.run ?bugs cmds

let check_pass name cmds =
  match run_both cmds with
  | Validate.Pass _ -> ()
  | Validate.Fail _ as f ->
      Alcotest.failf "%s: %s" name (Format.asprintf "%a" Validate.pp_outcome f)

let test_pipe_matches_spec_simple () =
  check_pass "simple" [ Setc 3l; Mac 4l; Mac 5l; Read ]

let test_pipe_read_after_mac () =
  (* read immediately after a mac: the stall path *)
  check_pass "read-after-mac" [ Setc 2l; Mac 7l; Read ]

let test_pipe_read_two_after_mac () =
  (* read two cycles after a mac: the forward path *)
  check_pass "read-2-after-mac" [ Setc 2l; Mac 7l; Setc 5l; Read ]

let test_pipe_clear_squash () =
  check_pass "clear with in-flight macs" [ Setc 2l; Mac 7l; Clear; Read ];
  check_pass "clear deep" [ Setc 2l; Mac 7l; Mac 8l; Clear; Read ]

let test_pipe_back_to_back_reads () =
  check_pass "reads back to back" [ Setc 1l; Mac 1l; Read; Read; Mac 2l; Read ]

let test_pipe_setc_between () =
  check_pass "setc between macs" [ Setc 2l; Mac 3l; Setc 10l; Mac 1l; Read ]

let test_pipe_saturation () =
  check_pass "saturation"
    [ Setc Int32.max_int; Mac 2l; Mac 2l; Read; Clear; Setc Int32.min_int; Mac 2l; Read ]

let test_pipe_stall_counted () =
  let p = Pipe.create () in
  let _ = Pipe.run p [ Setc 2l; Mac 7l; Read ] in
  let _, stalls, _ = Pipe.stats p in
  Alcotest.(check int) "one stall" 1 stalls

let test_pipe_squash_counted () =
  let p = Pipe.create () in
  let _ = Pipe.run p [ Setc 2l; Mac 7l; Mac 8l; Clear ] in
  let _, _, squashed = Pipe.stats p in
  Alcotest.(check int) "two squashed" 2 squashed

let test_bug_catalog_detectable () =
  let streams =
    [
      [ Setc 2l; Mac 7l; Read ];
      [ Setc 2l; Mac 7l; Setc 5l; Read ];
      [ Setc 2l; Mac 7l; Clear; Read ];
      [ Setc 2l; Mac 3l; Setc 10l; Read; Read ];
      [ Setc Int32.max_int; Mac 2l; Mac 2l; Setc 0l; Read ];
    ]
  in
  List.iter
    (fun (name, bugs) ->
      let detected =
        List.exists
          (fun cmds -> match Validate.run ~bugs cmds with Validate.Fail _ -> true | _ -> false)
          streams
      in
      Alcotest.(check bool) (name ^ " detectable") true detected)
    Pipe.bug_catalog

let test_testmodel_structure () =
  let m = Testmodel.build () in
  Alcotest.(check int) "4 states" 4 m.Simcov_fsm.Fsm.n_states;
  Alcotest.(check bool) "strongly connected" true
    (Simcov_graph.Scc.is_strongly_connected (Simcov_fsm.Fsm.transition_graph m));
  Alcotest.(check (option int)) "forall-1" (Some 1) (Simcov_fsm.Fsm.min_forall_k m)

let test_testmodel_stall_output () =
  let m = Testmodel.build () in
  let outs =
    Simcov_fsm.Fsm.output_word m [ Testmodel.input_mac; Testmodel.input_read ]
  in
  let o = List.nth outs 1 in
  Alcotest.(check int) "stall bit" 1 (o land 1);
  Alcotest.(check int) "forward bit" 2 (o land 2)

let test_testmodel_squash_output () =
  let m = Testmodel.build () in
  let outs =
    Simcov_fsm.Fsm.output_word m
      [ Testmodel.input_mac; Testmodel.input_mac; Testmodel.input_clear ]
  in
  let o = List.nth outs 2 in
  Alcotest.(check int) "squash count 2" 2 ((o lsr 2) land 3)

let test_tour_catches_all_dsp_bugs () =
  let m = Simcov_fsm.Fsm.tabulate (Testmodel.build ()) in
  match Simcov_testgen.Tour.transition_tour m with
  | None -> Alcotest.fail "tour must exist"
  | Some t ->
      Alcotest.(check bool) "is tour" true
        (Simcov_testgen.Tour.word_is_tour m t.Simcov_testgen.Tour.word);
      let cmds = Testmodel.concretize t.Simcov_testgen.Tour.word in
      (* the bug-free pipeline passes the tour stream *)
      (match Validate.run cmds with
      | Validate.Pass _ -> ()
      | Validate.Fail _ as f ->
          Alcotest.failf "bug-free must pass: %a" Validate.pp_outcome f);
      (* and every seeded bug is exposed *)
      List.iter
        (fun (name, detected) ->
          Alcotest.(check bool) ("tour detects " ^ name) true detected)
        (Validate.bug_campaign cmds)

let test_certificate_on_dsp_model () =
  let m = Simcov_fsm.Fsm.tabulate (Testmodel.build ()) in
  match Simcov_core.Completeness.certify m with
  | Ok cert ->
      Alcotest.(check int) "k = 1" 1 cert.Simcov_core.Completeness.k;
      let rng = Simcov_util.Rng.create 5 in
      let report = Simcov_core.Completeness.check_empirically rng m cert in
      Alcotest.(check (float 0.001)) "100%" 100.0
        (Simcov_coverage.Detect.coverage_pct report)
  | Error _ -> Alcotest.fail "certificate must hold"

let qcheck_pipe_equals_spec_random =
  QCheck.Test.make ~name:"dsp: pipeline == spec on random command streams" ~count:300
    QCheck.(pair (int_range 1 40) (int_range 1 100000))
    (fun (len, seed) ->
      let rng = Simcov_util.Rng.create seed in
      let cmds =
        List.init len (fun _ ->
            match Simcov_util.Rng.int rng 5 with
            | 0 -> Setc (Int32.of_int (Simcov_util.Rng.int rng 1000 - 500))
            | 1 | 2 -> Mac (Int32.of_int (Simcov_util.Rng.int rng 1000 - 500))
            | 3 -> Clear
            | _ -> Read)
      in
      match Validate.run cmds with Validate.Pass _ -> true | Validate.Fail _ -> false)

let qcheck_pipe_equals_spec_extreme =
  QCheck.Test.make ~name:"dsp: pipeline == spec near saturation" ~count:100
    QCheck.(pair (int_range 1 20) (int_range 1 100000))
    (fun (len, seed) ->
      let rng = Simcov_util.Rng.create seed in
      let big () =
        if Simcov_util.Rng.bool rng then Int32.max_int
        else if Simcov_util.Rng.bool rng then Int32.min_int
        else Int32.of_int (Simcov_util.Rng.int rng 65536 * 65536 / 65536)
      in
      let cmds =
        List.init len (fun _ ->
            match Simcov_util.Rng.int rng 4 with
            | 0 -> Setc (big ())
            | 1 | 2 -> Mac (big ())
            | _ -> Read)
      in
      match Validate.run cmds with Validate.Pass _ -> true | Validate.Fail _ -> false)

let suite =
  [
    Alcotest.test_case "saturating arith" `Quick test_saturating_arith;
    Alcotest.test_case "spec basic" `Quick test_spec_basic;
    Alcotest.test_case "spec clear" `Quick test_spec_clear;
    Alcotest.test_case "pipe simple" `Quick test_pipe_matches_spec_simple;
    Alcotest.test_case "pipe read after mac" `Quick test_pipe_read_after_mac;
    Alcotest.test_case "pipe read 2 after mac" `Quick test_pipe_read_two_after_mac;
    Alcotest.test_case "pipe clear squash" `Quick test_pipe_clear_squash;
    Alcotest.test_case "pipe reads back to back" `Quick test_pipe_back_to_back_reads;
    Alcotest.test_case "pipe setc between" `Quick test_pipe_setc_between;
    Alcotest.test_case "pipe saturation" `Quick test_pipe_saturation;
    Alcotest.test_case "pipe stall counted" `Quick test_pipe_stall_counted;
    Alcotest.test_case "pipe squash counted" `Quick test_pipe_squash_counted;
    Alcotest.test_case "bug catalog detectable" `Quick test_bug_catalog_detectable;
    Alcotest.test_case "testmodel structure" `Quick test_testmodel_structure;
    Alcotest.test_case "testmodel stall output" `Quick test_testmodel_stall_output;
    Alcotest.test_case "testmodel squash output" `Quick test_testmodel_squash_output;
    Alcotest.test_case "tour catches all dsp bugs" `Quick test_tour_catches_all_dsp_bugs;
    Alcotest.test_case "certificate on dsp model" `Quick test_certificate_on_dsp_model;
    QCheck_alcotest.to_alcotest qcheck_pipe_equals_spec_random;
    QCheck_alcotest.to_alcotest qcheck_pipe_equals_spec_extreme;
  ]
