open Simcov_dlx

(* ---------- ISA ---------- *)

let test_isa_classes () =
  Alcotest.(check bool) "add is RR" true (Isa.class_of Isa.Add = Isa.Alu_rr);
  Alcotest.(check bool) "addi is RI" true (Isa.class_of Isa.Addi = Isa.Alu_ri);
  Alcotest.(check bool) "lw is load" true (Isa.class_of Isa.Lw = Isa.Load);
  Alcotest.(check bool) "beqz is branch" true (Isa.class_of Isa.Beqz = Isa.Branch);
  Alcotest.(check int) "7 classes roundtrip" 7
    (List.length
       (List.filter
          (fun k -> Isa.class_index (Isa.class_of_index k) = k)
          [ 0; 1; 2; 3; 4; 5; 6 ]))

let test_isa_reads_writes () =
  let add = Isa.make ~rd:3 ~rs1:1 ~rs2:2 Isa.Add in
  Alcotest.(check (option int)) "add writes rd" (Some 3) (Isa.writes_reg add);
  Alcotest.(check (list int)) "add reads rs1 rs2" [ 1; 2 ] (Isa.reads_regs add);
  let sw = Isa.make ~rs1:1 ~rs2:2 ~imm:4 Isa.Sw in
  Alcotest.(check (option int)) "sw writes nothing" None (Isa.writes_reg sw);
  let jal = Isa.make ~imm:10 Isa.Jal in
  Alcotest.(check (option int)) "jal writes r31" (Some 31) (Isa.writes_reg jal);
  let r0dest = Isa.make ~rd:0 ~rs1:1 ~rs2:2 Isa.Add in
  Alcotest.(check (option int)) "r0 never written" None (Isa.writes_reg r0dest);
  Alcotest.(check (list int)) "r0 never read" []
    (Isa.reads_regs (Isa.make ~rs1:0 ~imm:1 Isa.Beqz))

let test_isa_parse () =
  let check_parse s =
    match Isa.of_string s with
    | Ok i -> Alcotest.(check string) ("roundtrip " ^ s) s (Isa.to_string i)
    | Error e -> Alcotest.fail e
  in
  List.iter check_parse
    [
      "add r3, r1, r2";
      "addi r4, r1, -5";
      "lw r2, 4(r1)";
      "sw r2, -8(r3)";
      "beqz r1, 3";
      "bnez r2, -2";
      "j 12";
      "jal 7";
      "jr r5";
      "jalr r6";
      "lhi r6, 255";
      "seq r1, r2, r3";
      "sgt r4, r5, r6";
      "sra r7, r1, r2";
      "seqi r1, r2, 4";
      "slli r3, r4, 2";
      "srai r5, r6, 1";
      "nop";
    ]

let test_isa_parse_program () =
  let text = "# demo\naddi r1, r0, 5\n\nadd r2, r1, r1 # double\n" in
  match Isa.parse_program text with
  | Ok prog -> Alcotest.(check int) "two instructions" 2 (Array.length prog)
  | Error e -> Alcotest.fail e

let test_isa_parse_errors () =
  Alcotest.(check bool) "bad mnemonic" true (Result.is_error (Isa.of_string "frob r1, r2"));
  Alcotest.(check bool) "bad register" true (Result.is_error (Isa.of_string "add r1, r2, r99"));
  Alcotest.(check bool) "wrong arity" true (Result.is_error (Isa.of_string "add r1, r2"))

let qcheck_isa_encode_decode =
  let gen =
    QCheck.Gen.(
      let* opn = int_bound 34 in
      let* rd = int_bound 31 in
      let* rs1 = int_bound 31 in
      let* rs2 = int_bound 31 in
      let* imm = int_range (-32768) 32767 in
      let op =
        List.nth
          [
            Isa.Add; Isa.Sub; Isa.And; Isa.Or; Isa.Xor; Isa.Slt; Isa.Seq; Isa.Sne;
            Isa.Sge; Isa.Sgt; Isa.Sle; Isa.Sll; Isa.Srl; Isa.Sra; Isa.Addi; Isa.Andi;
            Isa.Ori; Isa.Xori; Isa.Slti; Isa.Seqi; Isa.Snei; Isa.Sgei; Isa.Slli;
            Isa.Srli; Isa.Srai; Isa.Lhi; Isa.Lw; Isa.Sw; Isa.Beqz; Isa.Bnez; Isa.J;
            Isa.Jal; Isa.Jr; Isa.Jalr; Isa.Nop;
          ]
          opn
      in
      let imm = if op = Isa.J || op = Isa.Jal then abs imm else imm in
      return (Isa.make ~rd ~rs1 ~rs2 ~imm op))
  in
  QCheck.Test.make ~name:"dlx: encode/decode roundtrip" ~count:500
    (QCheck.make ~print:Isa.to_string gen)
    (fun i ->
      match Isa.decode (Isa.encode i) with
      | Some i' -> i' = Isa.canon i
      | None -> false)

(* ---------- Spec ---------- *)

let prog lines =
  match Isa.parse_program (String.concat "\n" lines) with
  | Ok p -> p
  | Error e -> failwith e

let test_spec_arithmetic () =
  let p = prog [ "addi r1, r0, 5"; "addi r2, r0, 7"; "add r3, r1, r2"; "sub r4, r2, r1" ] in
  let s = Spec.create p in
  let commits = Spec.run s in
  Alcotest.(check int) "4 commits" 4 (List.length commits);
  Alcotest.(check int32) "r3 = 12" 12l (Spec.reg s 3);
  Alcotest.(check int32) "r4 = 2" 2l (Spec.reg s 4)

let test_spec_memory () =
  let p = prog [ "addi r1, r0, 3"; "addi r2, r0, 42"; "sw r2, 5(r1)"; "lw r3, 5(r1)" ] in
  let s = Spec.create p in
  let _ = Spec.run s in
  Alcotest.(check int32) "loaded back" 42l (Spec.reg s 3);
  Alcotest.(check int32) "memory written" 42l (Spec.mem s 8)

let test_spec_branch_loop () =
  (* r1 counts down from 3; r2 accumulates *)
  let p =
    prog
      [
        "addi r1, r0, 3";
        "addi r2, r0, 0";
        "add r2, r2, r1" (* loop body at pc 2 *);
        "addi r1, r1, -1";
        "bnez r1, -3" (* back to pc 2 *);
      ]
  in
  let s = Spec.create p in
  let _ = Spec.run s in
  Alcotest.(check int32) "sum 3+2+1" 6l (Spec.reg s 2);
  Alcotest.(check bool) "halted" true (Spec.halted s)

let test_spec_jal_jr () =
  let p =
    prog
      [
        "jal 3" (* call, link r31 = 1 *);
        "addi r1, r0, 99" (* return target *);
        "j 5" (* skip over the callee to the end *);
        "addi r2, r0, 7" (* callee *);
        "jr r31";
      ]
  in
  let s = Spec.create p in
  let _ = Spec.run s in
  Alcotest.(check int32) "callee ran" 7l (Spec.reg s 2);
  Alcotest.(check int32) "returned" 99l (Spec.reg s 1)

let test_spec_r0_immutable () =
  let p = prog [ "addi r0, r0, 5"; "add r1, r0, r0" ] in
  let s = Spec.create p in
  let _ = Spec.run s in
  Alcotest.(check int32) "r0 stays 0" 0l (Spec.reg s 0);
  Alcotest.(check int32) "r1 = 0" 0l (Spec.reg s 1)

let test_spec_lhi_slt () =
  let p = prog [ "lhi r1, 1"; "addi r2, r0, -1"; "slt r3, r2, r1"; "slt r4, r1, r2" ] in
  let s = Spec.create p in
  let _ = Spec.run s in
  Alcotest.(check int32) "lhi" 65536l (Spec.reg s 1);
  Alcotest.(check int32) "-1 < 65536" 1l (Spec.reg s 3);
  Alcotest.(check int32) "not (65536 < -1)" 0l (Spec.reg s 4)


let test_spec_new_comparisons () =
  let p =
    prog
      [
        "addi r1, r0, 5";
        "addi r2, r0, 5";
        "seq r3, r1, r2";
        "sne r4, r1, r2";
        "sge r5, r1, r2";
        "sgt r6, r1, r2";
        "sle r7, r1, r2";
      ]
  in
  let s = Spec.create p in
  let _ = Spec.run s in
  Alcotest.(check int32) "seq" 1l (Spec.reg s 3);
  Alcotest.(check int32) "sne" 0l (Spec.reg s 4);
  Alcotest.(check int32) "sge" 1l (Spec.reg s 5);
  Alcotest.(check int32) "sgt" 0l (Spec.reg s 6);
  Alcotest.(check int32) "sle" 1l (Spec.reg s 7)

let test_spec_shifts () =
  let p =
    prog
      [
        "addi r1, r0, -8";
        "srai r2, r1, 1";
        "srli r3, r1, 1";
        "slli r4, r1, 1";
      ]
  in
  let s = Spec.create p in
  let _ = Spec.run s in
  Alcotest.(check int32) "sra sign-extends" (-4l) (Spec.reg s 2);
  Alcotest.(check int32) "srl zero-fills" 2147483644l (Spec.reg s 3);
  Alcotest.(check int32) "sll" (-16l) (Spec.reg s 4)

(* ---------- Pipeline vs Spec ---------- *)

let check_equiv ?preload_regs name program =
  match Validate.run_program ?preload_regs program with
  | Validate.Pass _ -> ()
  | Validate.Fail _ as f ->
      Alcotest.failf "%s: %s" name (Format.asprintf "%a" Validate.pp_outcome f)

let test_pipe_jalr () =
  check_equiv "jalr call through register"
    (prog [ "addi r1, r0, 4"; "jalr r1"; "addi r2, r0, 99"; "j 6"; "addi r3, r0, 7"; "jr r31" ])

let test_pipe_new_ops_hazards () =
  check_equiv "comparison results forwarded"
    (prog [ "addi r1, r0, 3"; "seq r2, r1, r1"; "sgt r3, r2, r0"; "sw r3, 0(r0)" ])

let test_pipe_raw_hazard_chain () =
  check_equiv "back-to-back dependent ALU ops"
    (prog [ "addi r1, r0, 1"; "add r2, r1, r1"; "add r3, r2, r2"; "add r4, r3, r2" ])

let test_pipe_load_use () =
  check_equiv "load-use hazard"
    (prog
       [
         "addi r1, r0, 9";
         "sw r1, 0(r0)";
         "lw r2, 0(r0)";
         "add r3, r2, r2" (* needs the interlock *);
       ])

let test_pipe_store_data_forward () =
  check_equiv "store data forwarded"
    (prog [ "addi r1, r0, 5"; "sw r1, 0(r0)"; "lw r2, 0(r0)"; "sw r2, 1(r0)"; "lw r3, 1(r0)" ])

let test_pipe_branch_taken () =
  check_equiv "taken branch squashes wrong-path work"
    (prog
       [
         "addi r1, r0, 1";
         "bnez r1, 2" (* skip the two poison instructions *);
         "addi r2, r0, 99" (* wrong path *);
         "addi r3, r0, 99" (* wrong path *);
         "add r4, r1, r1";
       ])

let test_pipe_branch_not_taken () =
  check_equiv "not-taken branch"
    (prog [ "addi r1, r0, 0"; "bnez r1, 2"; "addi r2, r0, 1"; "add r3, r2, r2" ])

let test_pipe_branch_depends_on_forwarded () =
  check_equiv "branch condition needs bypass"
    (prog [ "addi r1, r0, 1"; "addi r1, r1, -1"; "beqz r1, 1"; "addi r2, r0, 9"; "nop" ])

let test_pipe_loop () =
  check_equiv "countdown loop"
    (prog
       [
         "addi r1, r0, 4";
         "addi r2, r0, 0";
         "add r2, r2, r1";
         "addi r1, r1, -1";
         "bnez r1, -3";
         "add r3, r2, r2";
       ])

let test_pipe_jal_jr () =
  check_equiv "call and return"
    (prog [ "jal 3"; "addi r1, r0, 99"; "j 5"; "addi r2, r0, 7"; "jr r31" ])


let test_pipeline_trace () =
  let p = prog [ "lw r1, 0(r0)"; "add r2, r1, r1" ] in
  let t = Pipeline.trace (Pipeline.create p) in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "shows the stall" true (contains "[stall]" t);
  Alcotest.(check bool) "shows the load" true (contains "lw r1, 0(r0)" t);
  Alcotest.(check bool) "header" true (contains "MEM/WB" t)

let test_pipe_stats_stall () =
  let p = prog [ "lw r1, 0(r0)"; "add r2, r1, r1" ] in
  let pipe = Pipeline.create p in
  let _ = Pipeline.run pipe in
  let _, stalls, _ = Pipeline.stats pipe in
  Alcotest.(check int) "one load-use stall" 1 stalls

let test_pipe_stats_squash () =
  let p = prog [ "addi r1, r0, 1"; "bnez r1, 2"; "nop"; "nop"; "nop" ] in
  let pipe = Pipeline.create p in
  let _ = Pipeline.run pipe in
  let _, _, squashes = Pipeline.stats pipe in
  Alcotest.(check int) "two slots squashed" 2 squashes

(* each catalog bug must be exposed by some directed program *)
let directed_tests =
  [
    prog [ "addi r1, r0, 1"; "add r2, r1, r1"; "sw r2, 0(r0)" ] (* exmem forward *);
    prog [ "addi r1, r0, 1"; "nop"; "add r2, r1, r1"; "sw r2, 0(r0)" ] (* memwb forward *);
    prog [ "addi r1, r0, 9"; "sw r1, 0(r0)"; "lw r2, 0(r0)"; "add r3, r2, r2"; "sw r3, 1(r0)" ]
    (* load interlock *);
    prog [ "addi r1, r0, 1"; "bnez r1, 2"; "addi r2, r0, 99"; "nop"; "sw r2, 0(r0)" ]
    (* branch squash *);
    prog [ "addi r1, r0, 3"; "addi r2, r0, 5"; "add r3, r1, r2"; "add r4, r3, r1"; "sw r4, 0(r0)" ]
    (* rs2-as-rs1 forwarding *);
    prog [ "addi r1, r0, 2"; "sw r1, 0(r0)"; "lw r2, 0(r0)"; "add r3, r1, r2"; "sw r3, 1(r0)" ]
    (* interlock must look at rs2 *);
    prog [ "addi r1, r0, 0"; "beqz r1, 1"; "addi r2, r0, 5"; "sw r2, 0(r0)" ]
    (* branch polarity *);
    prog [ "addi r1, r0, 3"; "nop"; "sw r1, 0(r0)"; "lw r2, 0(r0)"; "sw r2, 1(r0)" ]
    (* store-data forward via memwb *);
    prog [ "jal 2"; "nop"; "sw r31, 0(r0)" ] (* jal link *);
    prog [ "addi r3, r0, 5"; "add r2, r3, r1"; "sw r2, 0(r0)" ] (* bypass fails rd3 *);
    prog [ "addi r1, r0, 9"; "sw r1, 0(r0)"; "lw r2, 0(r0)"; "add r3, r2, r2"; "sw r3, 1(r0)" ]
    (* interlock fails rd2 *);
    prog [ "addi r1, r0, 7"; "sw r1, 0(r0)"; "lw r2, 0(r0)"; "sw r2, 1(r0)" ]
    (* store data EX/MEM bypass *);
  ]

let test_bug_catalog_all_detectable () =
  let result = Validate.bug_campaign_multi directed_tests in
  List.iter
    (fun (name, detected) ->
      Alcotest.(check bool) (name ^ " detectable") true detected)
    result.Validate.bug_results;
  Alcotest.(check int) "all 12 bugs" 12 result.Validate.n_bugs

let test_bugfree_pipeline_passes_directed () =
  List.iteri
    (fun k p -> check_equiv (Printf.sprintf "directed %d" k) p)
    directed_tests

(* random straight-line programs with forward branches terminate *)
let random_program rng len =
  let n_regs = 8 in
  let r () = Simcov_util.Rng.int rng n_regs in
  let instrs =
    List.init len (fun k ->
        match Simcov_util.Rng.int rng 10 with
        | 0 | 1 | 2 ->
            let ops =
              [|
                Isa.Add; Isa.Sub; Isa.And; Isa.Or; Isa.Xor; Isa.Slt; Isa.Seq; Isa.Sne;
                Isa.Sge; Isa.Sgt; Isa.Sle; Isa.Sll; Isa.Srl; Isa.Sra;
              |]
            in
            Isa.make ~rd:(r ()) ~rs1:(r ()) ~rs2:(r ()) (Simcov_util.Rng.pick rng ops)
        | 3 | 4 ->
            let ops =
              [| Isa.Addi; Isa.Andi; Isa.Ori; Isa.Xori; Isa.Seqi; Isa.Snei; Isa.Slli |]
            in
            Isa.make ~rd:(r ()) ~rs1:(r ())
              ~imm:(Simcov_util.Rng.int rng 16)
              (Simcov_util.Rng.pick rng ops)
        | 5 -> Isa.make ~rd:(r ()) ~rs1:(r ()) ~imm:(Simcov_util.Rng.int rng 8) Isa.Lw
        | 6 -> Isa.make ~rs1:(r ()) ~rs2:(r ()) ~imm:(Simcov_util.Rng.int rng 8) Isa.Sw
        | 7 ->
            (* forward branch only: offset within the remaining program *)
            let max_off = max 1 (min 3 (len - k - 1)) in
            let op = if Simcov_util.Rng.bool rng then Isa.Beqz else Isa.Bnez in
            Isa.make ~rs1:(r ()) ~imm:(1 + Simcov_util.Rng.int rng max_off) op
        | _ -> Isa.nop)
  in
  Array.of_list instrs

let qcheck_pipeline_equals_spec =
  QCheck.Test.make ~name:"dlx: pipeline == spec on random programs" ~count:200
    QCheck.(pair (int_range 5 40) (int_range 1 100000))
    (fun (len, seed) ->
      let rng = Simcov_util.Rng.create seed in
      let program = random_program rng len in
      let preload_regs = List.init 7 (fun r -> (r + 1, Int32.of_int ((r * 13) + 1))) in
      match Validate.run_program ~preload_regs program with
      | Validate.Pass _ -> true
      | Validate.Fail _ -> false)


let test_hazardgen_templates_pass_bugfree () =
  (* every template runs clean on the correct pipeline *)
  List.iter
    (fun (t : Hazardgen.template) ->
      match Validate.run_program t.Hazardgen.program with
      | Validate.Pass _ -> ()
      | Validate.Fail _ as f ->
          Alcotest.failf "template %s: %s" t.Hazardgen.label
            (Format.asprintf "%a" Validate.pp_outcome f))
    (Hazardgen.templates ())

let test_hazardgen_catches_all_bugs () =
  let r = Hazardgen.bug_campaign () in
  List.iter
    (fun (name, detected) ->
      Alcotest.(check bool) ("hazard suite detects " ^ name) true detected)
    r.Validate.bug_results

let test_hazardgen_compact () =
  let programs = Hazardgen.suite () in
  Alcotest.(check bool) "many templates" true (List.length programs > 80);
  Alcotest.(check bool) "compact total" true
    (Hazardgen.total_instructions programs < 1200)

let suite =
  [
    Alcotest.test_case "isa classes" `Quick test_isa_classes;
    Alcotest.test_case "isa reads/writes" `Quick test_isa_reads_writes;
    Alcotest.test_case "isa parse" `Quick test_isa_parse;
    Alcotest.test_case "isa parse program" `Quick test_isa_parse_program;
    Alcotest.test_case "isa parse errors" `Quick test_isa_parse_errors;
    QCheck_alcotest.to_alcotest qcheck_isa_encode_decode;
    Alcotest.test_case "spec arithmetic" `Quick test_spec_arithmetic;
    Alcotest.test_case "spec memory" `Quick test_spec_memory;
    Alcotest.test_case "spec branch loop" `Quick test_spec_branch_loop;
    Alcotest.test_case "spec jal/jr" `Quick test_spec_jal_jr;
    Alcotest.test_case "spec r0" `Quick test_spec_r0_immutable;
    Alcotest.test_case "spec lhi/slt" `Quick test_spec_lhi_slt;
    Alcotest.test_case "spec new comparisons" `Quick test_spec_new_comparisons;
    Alcotest.test_case "spec shifts" `Quick test_spec_shifts;
    Alcotest.test_case "pipe jalr" `Quick test_pipe_jalr;
    Alcotest.test_case "pipe new ops hazards" `Quick test_pipe_new_ops_hazards;
    Alcotest.test_case "pipe raw chain" `Quick test_pipe_raw_hazard_chain;
    Alcotest.test_case "pipe load-use" `Quick test_pipe_load_use;
    Alcotest.test_case "pipe store forward" `Quick test_pipe_store_data_forward;
    Alcotest.test_case "pipe branch taken" `Quick test_pipe_branch_taken;
    Alcotest.test_case "pipe branch not taken" `Quick test_pipe_branch_not_taken;
    Alcotest.test_case "pipe branch forwarded cond" `Quick test_pipe_branch_depends_on_forwarded;
    Alcotest.test_case "pipe loop" `Quick test_pipe_loop;
    Alcotest.test_case "pipe jal/jr" `Quick test_pipe_jal_jr;
    Alcotest.test_case "pipe stall stats" `Quick test_pipe_stats_stall;
    Alcotest.test_case "pipeline trace" `Quick test_pipeline_trace;
    Alcotest.test_case "pipe squash stats" `Quick test_pipe_stats_squash;
    Alcotest.test_case "bug catalog detectable" `Quick test_bug_catalog_all_detectable;
    Alcotest.test_case "bug-free passes directed" `Quick test_bugfree_pipeline_passes_directed;
    Alcotest.test_case "hazardgen bug-free" `Quick test_hazardgen_templates_pass_bugfree;
    Alcotest.test_case "hazardgen catches all" `Quick test_hazardgen_catches_all_bugs;
    Alcotest.test_case "hazardgen compact" `Quick test_hazardgen_compact;
    QCheck_alcotest.to_alcotest qcheck_pipeline_equals_spec;
  ]
