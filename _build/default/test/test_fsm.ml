open Simcov_fsm

(* A small reference machine: modulo-3 counter that outputs the new
   count; input 0 = increment, input 1 = reset-to-zero. *)
let counter3 =
  Fsm.make ~n_states:3 ~n_inputs:2
    ~next:(fun s i -> if i = 0 then (s + 1) mod 3 else 0)
    ~output:(fun s i -> if i = 0 then (s + 1) mod 3 else 0)
    ()

(* The Figure 2 fragment of the paper, completed into a closed machine:
   states 1,2,3,3',4,4',5 with inputs a,b,c. Transitions on b from 3
   and 3' give different outputs; transitions on c give the same
   output. An extra input returns to 1 so the machine is strongly
   connected. See test_coverage for the error-injection version. *)
let fig2_states = [| "1"; "2"; "3"; "3'"; "4"; "4'"; "5" |]
let fig2_inputs = [| "a"; "b"; "c"; "r" |]

let fig2 =
  (* (state, input, next, output) *)
  Fsm.of_table
    [
      (0, 0, 1, 0) (* 1 -a-> 2 *);
      (1, 0, 2, 0) (* 2 -a-> 3 (the correct transition) *);
      (2, 1, 4, 1) (* 3 -b-> 4, output 1 *);
      (3, 1, 5, 2) (* 3' -b-> 4', output 2: differs *);
      (2, 2, 6, 3) (* 3 -c-> 5, output 3 *);
      (3, 2, 6, 3) (* 3' -c-> 5, same output 3 *);
      (4, 3, 0, 4) (* 4 -r-> 1 *);
      (5, 3, 0, 4) (* 4' -r-> 1 *);
      (6, 3, 0, 4) (* 5 -r-> 1 *);
    ]

let test_make_defaults () =
  Alcotest.(check int) "reset" 0 counter3.Fsm.reset;
  Alcotest.(check bool) "all valid" true (counter3.Fsm.valid 2 1)

let test_step_run () =
  let s, o = Fsm.step counter3 0 0 in
  Alcotest.(check int) "next" 1 s;
  Alcotest.(check int) "output" 1 o;
  Alcotest.(check (list int)) "output word" [ 1; 2; 0; 0 ]
    (Fsm.output_word counter3 [ 0; 0; 0; 1 ]);
  Alcotest.(check int) "final state" 1 (Fsm.final_state counter3 [ 0; 0; 0; 0 ])

let test_step_invalid () =
  Alcotest.(check bool) "invalid input raises" true
    (try
       ignore (Fsm.step fig2 0 1);
       false
     with Invalid_argument _ -> true)

let test_of_table_shape () =
  Alcotest.(check int) "states inferred" 7 fig2.Fsm.n_states;
  Alcotest.(check int) "inputs inferred" 4 fig2.Fsm.n_inputs;
  Alcotest.(check (list int)) "valid inputs at 3" [ 1; 2 ] (Fsm.valid_inputs fig2 2)

let test_tabulate_preserves () =
  let t = Fsm.tabulate fig2 in
  List.iter
    (fun (s, i, n, o) ->
      Alcotest.(check bool) "valid preserved" true (t.Fsm.valid s i);
      Alcotest.(check int) "next preserved" n (t.Fsm.next s i);
      Alcotest.(check int) "output preserved" o (t.Fsm.output s i))
    (Fsm.transitions fig2);
  Alcotest.(check int) "same transition count" (Fsm.n_transitions fig2)
    (Fsm.n_transitions t)

let test_reachable () =
  (* state 3' (index 3) and 4' (index 5) are unreachable in the correct machine *)
  let r = Fsm.reachable fig2 in
  Alcotest.(check bool) "reset reachable" true r.(0);
  Alcotest.(check bool) "3' unreachable" false r.(3);
  Alcotest.(check bool) "4' unreachable" false r.(5);
  Alcotest.(check int) "5 reachable states" 5 (Fsm.n_reachable fig2)

let test_transitions_reachable_only () =
  let ts = Fsm.transitions fig2 in
  Alcotest.(check bool) "no transition from 3'" true
    (List.for_all (fun (s, _, _, _) -> s <> 3) ts);
  Alcotest.(check int) "6 reachable transitions" 6 (List.length ts)

let test_transition_graph () =
  let g = Fsm.transition_graph counter3 in
  Alcotest.(check int) "6 edges" 6 (Simcov_graph.Digraph.n_edges g);
  Alcotest.(check bool) "strongly connected" true
    (Simcov_graph.Scc.is_strongly_connected g)

let test_equivalent_same () =
  match Fsm.equivalent counter3 counter3 with
  | Ok [] -> ()
  | Ok w ->
      Alcotest.failf "unexpected counterexample of length %d" (List.length w)
  | Error e -> Alcotest.fail e

let test_equivalent_detects_output_difference () =
  let broken =
    Fsm.make ~n_states:3 ~n_inputs:2
      ~next:(fun s i -> if i = 0 then (s + 1) mod 3 else 0)
      ~output:(fun s i -> if i = 0 then (s + 1) mod 3 else if s = 2 then 9 else 0)
      ()
  in
  match Fsm.equivalent counter3 broken with
  | Ok [] -> Alcotest.fail "expected counterexample"
  | Ok w ->
      (* counterexample must actually expose the difference *)
      Alcotest.(check bool) "outputs differ on ce" true
        (Fsm.output_word counter3 w <> Fsm.output_word broken w)
  | Error e -> Alcotest.fail e

let test_equivalent_detects_transfer_difference () =
  let broken =
    Fsm.make ~n_states:3 ~n_inputs:2
      ~next:(fun s i -> if i = 0 then (if s = 1 then 0 else (s + 1) mod 3) else 0)
      ~output:(fun s i -> if i = 0 then (s + 1) mod 3 else 0)
      ()
  in
  match Fsm.equivalent counter3 broken with
  | Ok [] -> Alcotest.fail "expected counterexample"
  | Ok w ->
      Alcotest.(check bool) "outputs differ on ce" true
        (Fsm.output_word counter3 w <> Fsm.output_word broken w)
  | Error e -> Alcotest.fail e

let test_equivalent_shortest () =
  (* the output difference above is reachable in 3 steps: 0,0 then
     observe; check minimality of the BFS counterexample *)
  let broken =
    Fsm.make ~n_states:3 ~n_inputs:2
      ~next:(fun s i -> if i = 0 then (s + 1) mod 3 else 0)
      ~output:(fun s i -> if i = 0 then (s + 1) mod 3 else if s = 2 then 9 else 0)
      ()
  in
  match Fsm.equivalent counter3 broken with
  | Ok w -> Alcotest.(check int) "shortest ce length" 3 (List.length w)
  | Error e -> Alcotest.fail e

let test_distinguish () =
  (match Fsm.distinguish counter3 0 1 with
  | Some w ->
      Alcotest.(check int) "one step suffices" 1 (List.length w)
  | None -> Alcotest.fail "states should be distinguishable");
  Alcotest.(check bool) "same state indistinguishable" true
    (Fsm.distinguish counter3 1 1 = None)

let test_distinguish_equivalent_states () =
  (* machine with two copies of the same state *)
  let m =
    Fsm.make ~n_states:2 ~n_inputs:1 ~next:(fun _ _ -> 0) ~output:(fun _ _ -> 7) ()
  in
  Alcotest.(check bool) "equivalent states" true (Fsm.distinguish m 0 1 = None)

let test_forall_k () =
  (* In counter3 every pair differs in output immediately on input 0:
     out = s+1 mod 3 differs when states differ. Input 1 gives output 0
     from every state and moves to state 0, never distinguishing. So
     NOT all length-1 sequences distinguish (input 1 fails), hence
     forall-1 is false; and since input 1 merges the states, forall-k
     is false for every k. *)
  Alcotest.(check bool) "forall-1 false (input 1 hides)" false
    (Fsm.forall_k_distinguishable counter3 ~k:1 0 1);
  Alcotest.(check bool) "forall-3 still false (merging input)" false
    (Fsm.forall_k_distinguishable counter3 ~k:3 0 1)

let test_forall_k_positive () =
  (* A machine where every input reveals the state: output = state. *)
  let ident =
    Fsm.make ~n_states:3 ~n_inputs:2
      ~next:(fun s i -> (s + i + 1) mod 3)
      ~output:(fun s _ -> s)
      ()
  in
  Alcotest.(check bool) "forall-1 true" true (Fsm.forall_k_distinguishable ident ~k:1 0 1);
  Alcotest.(check bool) "forall-2 true (monotone)" true
    (Fsm.forall_k_distinguishable ident ~k:2 0 1);
  Alcotest.(check (option int)) "min k is 1" (Some 1) (Fsm.min_forall_k ident)

let test_forall_k_needs_two_steps () =
  (* Outputs equal on the first step from states 0,1 but successors
     (2,3) differ on every input: forall-1 false, forall-2 true. *)
  let m =
    Fsm.of_table
      [
        (0, 0, 2, 0);
        (1, 0, 3, 0);
        (2, 0, 0, 1);
        (3, 0, 1, 2);
      ]
  in
  Alcotest.(check bool) "forall-1 false" false (Fsm.forall_k_distinguishable m ~k:1 0 1);
  Alcotest.(check bool) "forall-2 true" true (Fsm.forall_k_distinguishable m ~k:2 0 1)

let test_forall_k_matrix_agrees () =
  let rng = Simcov_util.Rng.create 17 in
  let m = Fsm.random_connected rng ~n_states:6 ~n_inputs:3 ~n_outputs:2 in
  for k = 1 to 3 do
    let mat = Fsm.forall_k_matrix m ~k in
    for p = 0 to 5 do
      for q = 0 to 5 do
        Alcotest.(check bool)
          (Printf.sprintf "matrix(%d,%d) k=%d" p q k)
          (Fsm.forall_k_distinguishable m ~k p q)
          mat.(p).(q)
      done
    done
  done

let test_min_forall_k_none_on_equivalent () =
  let m =
    Fsm.make ~n_states:2 ~n_inputs:1 ~next:(fun s _ -> 1 - s) ~output:(fun _ _ -> 0) ()
  in
  Alcotest.(check (option int)) "no k distinguishes equivalent states" None
    (Fsm.min_forall_k ~bound:6 m)

let test_minimize_counter () =
  let q, cls = Fsm.minimize counter3 in
  Alcotest.(check int) "already minimal" 3 q.Fsm.n_states;
  Alcotest.(check bool) "classes distinct" true (cls.(0) <> cls.(1) && cls.(1) <> cls.(2))

let test_minimize_merges () =
  (* two equivalent states 1 and 2 (same outputs, same successor) *)
  let m =
    Fsm.of_table
      [
        (0, 0, 1, 0);
        (0, 1, 2, 0);
        (1, 0, 0, 1);
        (1, 1, 0, 2);
        (2, 0, 0, 1);
        (2, 1, 0, 2);
      ]
  in
  let q, cls = Fsm.minimize m in
  Alcotest.(check int) "merged to 2 states" 2 q.Fsm.n_states;
  Alcotest.(check int) "1 and 2 same class" cls.(1) cls.(2);
  (* quotient is equivalent to the original *)
  match Fsm.equivalent m q with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "quotient not equivalent"
  | Error e -> Alcotest.fail e

let test_minimize_drops_unreachable () =
  (* 5 reachable states, of which "4" and "5" are equivalent (only r is
     valid, same output, same successor): quotient has 4 states. *)
  let q, cls = Fsm.minimize fig2 in
  Alcotest.(check int) "unreachable dropped, equivalent merged" 4 q.Fsm.n_states;
  Alcotest.(check int) "unreachable state unclassified" (-1) cls.(3);
  Alcotest.(check int) "4 and 5 merged" cls.(4) cls.(6)

let test_random_connected_is_connected () =
  let rng = Simcov_util.Rng.create 99 in
  for _ = 1 to 10 do
    let m = Fsm.random_connected rng ~n_states:8 ~n_inputs:2 ~n_outputs:3 in
    Alcotest.(check int) "all states reachable" 8 (Fsm.n_reachable m);
    Alcotest.(check bool) "transition graph SC" true
      (Simcov_graph.Scc.is_strongly_connected (Fsm.transition_graph m))
  done

let qcheck_minimize_equivalent =
  QCheck.Test.make ~name:"fsm: minimize yields an equivalent machine" ~count:50
    QCheck.(triple (int_range 2 10) (int_range 1 3) (int_range 1 200))
    (fun (n, k, seed) ->
      let rng = Simcov_util.Rng.create seed in
      let m = Fsm.random_connected rng ~n_states:n ~n_inputs:k ~n_outputs:2 in
      let q, _ = Fsm.minimize m in
      match Fsm.equivalent m q with Ok [] -> true | _ -> false)

let qcheck_distinguish_sound =
  QCheck.Test.make ~name:"fsm: distinguishing words do distinguish" ~count:50
    QCheck.(pair (int_range 3 8) (int_range 1 500))
    (fun (n, seed) ->
      let rng = Simcov_util.Rng.create seed in
      let m = Fsm.random_connected rng ~n_states:n ~n_inputs:2 ~n_outputs:2 in
      let ok = ref true in
      for s1 = 0 to n - 1 do
        for s2 = 0 to n - 1 do
          match Fsm.distinguish m s1 s2 with
          | None -> ()
          | Some w ->
              let run_from s word =
                List.fold_left
                  (fun (s, acc) i ->
                    let s', o = Fsm.step m s i in
                    (s', o :: acc))
                  (s, []) word
                |> snd
              in
              if run_from s1 w = run_from s2 w then ok := false
        done
      done;
      !ok)

let qcheck_forall_k_monotone =
  QCheck.Test.make ~name:"fsm: forall-k distinguishability is monotone in k" ~count:40
    QCheck.(pair (int_range 3 7) (int_range 1 300))
    (fun (n, seed) ->
      let rng = Simcov_util.Rng.create seed in
      let m = Fsm.random_connected rng ~n_states:n ~n_inputs:2 ~n_outputs:3 in
      let m1 = Fsm.forall_k_matrix m ~k:1 in
      let m2 = Fsm.forall_k_matrix m ~k:2 in
      let m3 = Fsm.forall_k_matrix m ~k:3 in
      let ok = ref true in
      for p = 0 to n - 1 do
        for q = 0 to n - 1 do
          if m1.(p).(q) && not m2.(p).(q) then ok := false;
          if m2.(p).(q) && not m3.(p).(q) then ok := false
        done
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "make defaults" `Quick test_make_defaults;
    Alcotest.test_case "step/run" `Quick test_step_run;
    Alcotest.test_case "step invalid" `Quick test_step_invalid;
    Alcotest.test_case "of_table shape" `Quick test_of_table_shape;
    Alcotest.test_case "tabulate preserves" `Quick test_tabulate_preserves;
    Alcotest.test_case "reachable" `Quick test_reachable;
    Alcotest.test_case "transitions reachable only" `Quick test_transitions_reachable_only;
    Alcotest.test_case "transition graph" `Quick test_transition_graph;
    Alcotest.test_case "equivalent same" `Quick test_equivalent_same;
    Alcotest.test_case "equivalent output diff" `Quick test_equivalent_detects_output_difference;
    Alcotest.test_case "equivalent transfer diff" `Quick test_equivalent_detects_transfer_difference;
    Alcotest.test_case "equivalent shortest" `Quick test_equivalent_shortest;
    Alcotest.test_case "distinguish" `Quick test_distinguish;
    Alcotest.test_case "distinguish equivalent" `Quick test_distinguish_equivalent_states;
    Alcotest.test_case "forall-k merging input" `Quick test_forall_k;
    Alcotest.test_case "forall-k positive" `Quick test_forall_k_positive;
    Alcotest.test_case "forall-k two steps" `Quick test_forall_k_needs_two_steps;
    Alcotest.test_case "forall-k matrix agrees" `Quick test_forall_k_matrix_agrees;
    Alcotest.test_case "min forall-k none" `Quick test_min_forall_k_none_on_equivalent;
    Alcotest.test_case "minimize counter" `Quick test_minimize_counter;
    Alcotest.test_case "minimize merges" `Quick test_minimize_merges;
    Alcotest.test_case "minimize drops unreachable" `Quick test_minimize_drops_unreachable;
    Alcotest.test_case "random connected" `Quick test_random_connected_is_connected;
    QCheck_alcotest.to_alcotest qcheck_minimize_equivalent;
    QCheck_alcotest.to_alcotest qcheck_distinguish_sound;
    QCheck_alcotest.to_alcotest qcheck_forall_k_monotone;
  ]

let _ = (fig2_states, fig2_inputs)
