open Simcov_fsm
open Simcov_coverage

(* The Figure 2 machine: the correct implementation goes 2 -a-> 3; the
   transfer error goes to 3' instead. Transitions on b from 3/3' give
   different outputs; transitions on c give the same output. Input r
   closes the loop back to state 1. Indices:
   0="1" 1="2" 2="3" 3="3'" 4="4" 5="4'" 6="5"; inputs 0=a 1=b 2=c 3=r. *)
let fig2_golden =
  Fsm.of_table
    [
      (0, 0, 1, 0);
      (1, 0, 2, 0);
      (2, 1, 4, 1);
      (3, 1, 5, 2);
      (2, 2, 6, 3);
      (3, 2, 6, 3);
      (4, 3, 0, 4);
      (5, 3, 0, 4);
      (6, 3, 0, 4);
    ]

let fig2_transfer = Fault.Transfer { state = 1; input = 0; wrong_next = 3 }

let test_apply_transfer () =
  let mutant = Fault.apply fig2_golden fig2_transfer in
  Alcotest.(check int) "redirected" 3 (mutant.Fsm.next 1 0);
  Alcotest.(check int) "other transitions intact" 1 (mutant.Fsm.next 0 0);
  Alcotest.(check int) "golden unchanged" 2 (fig2_golden.Fsm.next 1 0)

let test_apply_output () =
  let f = Fault.Output { state = 2; input = 1; wrong_output = 9 } in
  let mutant = Fault.apply fig2_golden f in
  Alcotest.(check int) "faulty output" 9 (mutant.Fsm.output 2 1);
  Alcotest.(check int) "others intact" 3 (mutant.Fsm.output 2 2)

let test_is_effective () =
  Alcotest.(check bool) "real transfer" true (Fault.is_effective fig2_golden fig2_transfer);
  Alcotest.(check bool) "no-op transfer" false
    (Fault.is_effective fig2_golden (Fault.Transfer { state = 1; input = 0; wrong_next = 2 }));
  Alcotest.(check bool) "fault on invalid transition" false
    (Fault.is_effective fig2_golden (Fault.Transfer { state = 0; input = 1; wrong_next = 2 }))

(* Section 4.2's point: the tour segment <a, a, b> exposes the
   transfer error, <a, a, c> does not. *)
let test_fig2_path_b_detects () =
  Alcotest.(check bool) "a,a,b detects" true
    (Detect.detects fig2_golden fig2_transfer [ 0; 0; 1; 3 ])

let test_fig2_path_c_misses () =
  let v = Detect.run_verdict fig2_golden fig2_transfer [ 0; 0; 2; 3 ] in
  Alcotest.(check bool) "a,a,c excites" true v.Detect.excited;
  Alcotest.(check bool) "a,a,c misses" false v.Detect.detected

let test_verdict_steps () =
  let v = Detect.run_verdict fig2_golden fig2_transfer [ 0; 0; 1; 3 ] in
  Alcotest.(check (option int)) "excited at step 1" (Some 1) v.Detect.excite_step;
  Alcotest.(check (option int)) "detected at step 2" (Some 2) v.Detect.detect_step

let test_verdict_validity_mismatch () =
  (* After the transfer error the mutant sits in 3' where input b is
     valid but leads elsewhere; craft a fault sending state 1 to state
     4 where only r is valid: then input b is valid in golden's state 3
     but invalid in mutant's state 4 — observable difference. *)
  let f = Fault.Transfer { state = 1; input = 0; wrong_next = 4 } in
  let v = Detect.run_verdict fig2_golden f [ 0; 0; 1 ] in
  Alcotest.(check bool) "validity mismatch detected" true v.Detect.detected

let test_output_fault_detected_at_site () =
  let f = Fault.Output { state = 2; input = 2; wrong_output = 7 } in
  let v = Detect.run_verdict fig2_golden f [ 0; 0; 2 ] in
  Alcotest.(check bool) "detected" true v.Detect.detected;
  Alcotest.(check (option int)) "at the site" (Some 2) v.Detect.detect_step;
  Alcotest.(check (option int)) "excite = detect for output faults" (Some 2)
    v.Detect.excite_step

let test_campaign () =
  let faults =
    [
      fig2_transfer;
      Fault.Output { state = 2; input = 1; wrong_output = 9 };
      Fault.Transfer { state = 1; input = 0; wrong_next = 2 } (* ineffective *);
    ]
  in
  let word = [ 0; 0; 1; 3; 0; 0; 2; 3 ] in
  let r = Detect.campaign fig2_golden faults word in
  Alcotest.(check int) "total" 3 r.Detect.total;
  Alcotest.(check int) "effective" 2 r.Detect.effective;
  Alcotest.(check int) "detected" 2 r.Detect.detected;
  Alcotest.(check (float 0.01)) "coverage 100" 100.0 (Detect.coverage_pct r)

let test_campaign_missed () =
  let word = [ 0; 0; 2; 3 ] in
  let r = Detect.campaign fig2_golden [ fig2_transfer ] word in
  Alcotest.(check int) "excited" 1 r.Detect.excited;
  Alcotest.(check int) "not detected" 0 r.Detect.detected;
  Alcotest.(check int) "missed recorded" 1 (List.length r.Detect.missed)

let test_masked_windows () =
  (* Two transfer faults that cancel: divert 1 -a-> 3' and then 3' -c->
     5 (wrong_next on the diverted path rejoins at the same state as
     golden). With word a,a,c the trajectories diverge after step 1 and
     re-converge at step 2 with no output difference: masked. *)
  let mutant = Fault.apply fig2_golden fig2_transfer in
  let windows = Detect.masked_windows fig2_golden mutant [ 0; 0; 2; 3 ] in
  Alcotest.(check bool) "one masked window" true (windows = [ (1, 2) ]);
  Alcotest.(check bool) "has_masked_transfer" true
    (Detect.has_masked_transfer fig2_golden [ fig2_transfer ] [ 0; 0; 2; 3 ])

let test_masked_windows_exposed_path () =
  let mutant = Fault.apply fig2_golden fig2_transfer in
  (* on the b path the outputs differ inside the window: not masked *)
  Alcotest.(check (list (pair int int))) "no masked window" []
    (Detect.masked_windows fig2_golden mutant [ 0; 0; 1; 3 ])

let test_transition_coverage_metrics () =
  let word = [ 0; 0; 1; 3 ] in
  Alcotest.(check int) "4 transitions covered" 4
    (Detect.transition_coverage fig2_golden word);
  Alcotest.(check int) "4 states visited" 4 (Detect.state_coverage fig2_golden word);
  Alcotest.(check bool) "not a tour" false (Detect.is_transition_tour fig2_golden word);
  let tour_word = [ 0; 0; 1; 3; 0; 0; 2; 3 ] in
  Alcotest.(check bool) "full tour" true (Detect.is_transition_tour fig2_golden tour_word)

let test_all_output_faults () =
  let faults = Fault.all_output_faults fig2_golden in
  Alcotest.(check int) "one per reachable transition" 6 (List.length faults);
  Alcotest.(check bool) "all effective" true
    (List.for_all (Fault.is_effective fig2_golden) faults)

let test_all_transfer_faults () =
  let faults = Fault.all_transfer_faults fig2_golden in
  (* 6 reachable transitions x (5 reachable states - 1 correct) = 24 *)
  Alcotest.(check int) "count" 24 (List.length faults);
  Alcotest.(check bool) "all effective" true
    (List.for_all (Fault.is_effective fig2_golden) faults)

let test_sampled_faults_effective () =
  let rng = Simcov_util.Rng.create 4 in
  let m = Fsm.random_connected rng ~n_states:10 ~n_inputs:3 ~n_outputs:4 in
  let tf = Fault.sample_transfer_faults rng m ~count:20 in
  let out = Fault.sample_output_faults rng m ~n_outputs:4 ~count:20 in
  Alcotest.(check bool) "transfer effective" true
    (List.for_all (Fault.is_effective m) tf);
  Alcotest.(check bool) "output effective" true (List.for_all (Fault.is_effective m) out);
  Alcotest.(check bool) "got a good number" true
    (List.length tf >= 15 && List.length out >= 15)

(* Uniformity through abstraction: merge states 2 ("3") and 3 ("3'")
   of the fig2 machine. A fault on the concrete transition (3', b)
   alone is non-uniform at the abstract level (the (3/3', b) abstract
   transition has a clean member), while faulting both members is
   uniform. *)
let abs_23 =
  {
    Simcov_abstraction.Homomorphism.n_abs_states = 6;
    n_abs_inputs = 4;
    state_map = (fun s -> if s = 3 then 2 else if s > 3 then s - 1 else s);
    input_map = Fun.id;
    output_map = Fun.id;
  }

(* use a machine where 3' is reachable so it has concrete transitions:
   make reset cover both branches via an extra input from 1 *)
let fig2_both =
  Fsm.of_table
    [
      (0, 0, 1, 0);
      (1, 0, 2, 0) (* a: to 3 *);
      (1, 1, 3, 0) (* b from "2": to 3' — makes 3' reachable *);
      (2, 1, 4, 1);
      (3, 1, 5, 1);
      (2, 2, 6, 3);
      (3, 2, 6, 3);
      (4, 3, 0, 4);
      (5, 3, 0, 4);
      (6, 3, 0, 4);
    ]

let test_uniformity_nonuniform () =
  let faulty (s, i) = s = 3 && i = 1 in
  let cls = Uniformity.classify fig2_both abs_23 ~faulty in
  Alcotest.(check int) "one classified error" 1 (List.length cls);
  let c = List.hd cls in
  Alcotest.(check bool) "non-uniform" false (Uniformity.is_uniform c);
  Alcotest.(check int) "one faulty member" 1 c.Uniformity.faulty_members;
  Alcotest.(check int) "one clean member" 1 c.Uniformity.clean_members;
  Alcotest.(check bool) "requirement 1 fails" false
    (Uniformity.requirement1_holds fig2_both abs_23 ~faulty)

let test_uniformity_uniform () =
  let faulty (s, i) = (s = 3 || s = 2) && i = 1 in
  Alcotest.(check bool) "requirement 1 holds" true
    (Uniformity.requirement1_holds fig2_both abs_23 ~faulty)


(* --- Conditional (non-uniform) output errors: Definition 2 --- *)

(* a diamond: two ways into state 3; the error at (3, c) shows only
   when state 3 was entered through (1, a) *)
let diamond =
  Fsm.of_table
    [
      (0, 0, 1, 0) (* r -a-> 1 *);
      (0, 1, 2, 0) (* r -b-> 2 *);
      (1, 0, 3, 1) (* 1 -a-> 3 *);
      (2, 0, 3, 2) (* 2 -a-> 3 *);
      (3, 2, 0, 3) (* 3 -c-> r *);
    ]

let cond_fault =
  Fault.Conditional_output { state = 3; input = 2; wrong_output = 9; prev = (1, 0) }

let test_conditional_fault_history_dependent () =
  (* via (1, a): exposed *)
  Alcotest.(check bool) "path through (1,a) detects" true
    (Detect.detects diamond cond_fault [ 0; 0; 2 ]);
  (* via (2, a): hidden *)
  Alcotest.(check bool) "path through (2,a) does not" false
    (Detect.detects diamond cond_fault [ 1; 0; 2 ])

let test_conditional_fault_not_uniform_kind () =
  Alcotest.(check bool) "uniform kinds" true
    (Fault.is_uniform_kind fig2_transfer
    && Fault.is_uniform_kind (Fault.Output { state = 0; input = 0; wrong_output = 1 }));
  Alcotest.(check bool) "conditional is not" false (Fault.is_uniform_kind cond_fault)

let test_conditional_fault_effective () =
  Alcotest.(check bool) "effective" true (Fault.is_effective diamond cond_fault);
  (* prev that does not lead into the site is vacuous *)
  Alcotest.(check bool) "vacuous prev" false
    (Fault.is_effective diamond
       (Fault.Conditional_output { state = 3; input = 2; wrong_output = 9; prev = (3, 2) }))

let test_certified_tour_can_miss_conditional_fault () =
  (* Requirement 1 in action: the diamond model certifies (every pair
     forall-1-distinguishable: outputs reveal states), yet a transition
     tour that happens to cover (3, c) after entering via (2, a) misses
     the non-uniform error. The specific tour below covers all 5
     transitions with (3, c) exercised only on the b-side. *)
  let word = [ 1; 0; 2; 0; 0; 2 ] in
  (* b a c a a c: transitions (0,b),(2,a),(3,c),(0,a),(1,a),(3,c) *)
  Alcotest.(check bool) "word is a tour" true
    (Simcov_testgen.Tour.word_is_tour diamond [ 1; 0; 2; 0; 0; 2 ]);
  Alcotest.(check bool) "first (3,c) via b-side misses" true
    (let v = Detect.run_verdict diamond cond_fault [ 1; 0; 2 ] in
     not v.Detect.detected);
  (* the full word's second (3,c) comes after (1,a): detected. Flip the
     two halves and the tour misses the fault entirely. *)
  Alcotest.(check bool) "this tour detects (second visit via a-side)" true
    (Detect.detects diamond cond_fault word);
  let word' = [ 0; 0; 2; 1; 0; 2 ] in
  Alcotest.(check bool) "the flipped word is also a tour" true
    (Simcov_testgen.Tour.word_is_tour diamond word');
  Alcotest.(check bool) "and it detects (a-side first)" true
    (Detect.detects diamond cond_fault word')

let test_conditional_fault_uniformity_classification () =
  (* the identity abstraction classifies the conditional fault's site
     as mixed only when history is folded in; Uniformity.classify works
     over abstractions, so here we just confirm the coarse signal:
     under the identity mapping, the site is a single concrete
     transition and the history-dependence is invisible to structural
     classification — which is exactly why the paper needs Requirement
     1 as a semantic condition. *)
  let mapping = Simcov_abstraction.Homomorphism.identity_mapping diamond in
  let faulty (s, i) = (s, i) = Fault.site cond_fault in
  let classes = Uniformity.classify diamond mapping ~faulty in
  Alcotest.(check int) "one class" 1 (List.length classes);
  Alcotest.(check bool) "structurally uniform (history hidden)" true
    (Uniformity.is_uniform (List.hd classes))

let qcheck_output_fault_always_detected_at_site =
  QCheck.Test.make ~name:"coverage: tour detects every single output fault" ~count:30
    QCheck.(pair (int_range 3 8) (int_range 1 400))
    (fun (n, seed) ->
      let rng = Simcov_util.Rng.create seed in
      let m = Fsm.random_connected rng ~n_states:n ~n_inputs:2 ~n_outputs:3 in
      match Simcov_testgen.Tour.transition_tour m with
      | None -> QCheck.assume_fail ()
      | Some tour ->
          let faults = Fault.all_output_faults m in
          List.for_all
            (fun f ->
              (not (Fault.is_effective m f)) || Detect.detects m f tour.Simcov_testgen.Tour.word)
            faults)

let suite =
  [
    Alcotest.test_case "apply transfer" `Quick test_apply_transfer;
    Alcotest.test_case "apply output" `Quick test_apply_output;
    Alcotest.test_case "is_effective" `Quick test_is_effective;
    Alcotest.test_case "fig2: path b detects" `Quick test_fig2_path_b_detects;
    Alcotest.test_case "fig2: path c misses" `Quick test_fig2_path_c_misses;
    Alcotest.test_case "verdict steps" `Quick test_verdict_steps;
    Alcotest.test_case "verdict validity mismatch" `Quick test_verdict_validity_mismatch;
    Alcotest.test_case "output fault at site" `Quick test_output_fault_detected_at_site;
    Alcotest.test_case "campaign" `Quick test_campaign;
    Alcotest.test_case "campaign missed" `Quick test_campaign_missed;
    Alcotest.test_case "masked windows" `Quick test_masked_windows;
    Alcotest.test_case "masked windows exposed" `Quick test_masked_windows_exposed_path;
    Alcotest.test_case "coverage metrics" `Quick test_transition_coverage_metrics;
    Alcotest.test_case "all output faults" `Quick test_all_output_faults;
    Alcotest.test_case "all transfer faults" `Quick test_all_transfer_faults;
    Alcotest.test_case "sampled faults" `Quick test_sampled_faults_effective;
    Alcotest.test_case "uniformity non-uniform" `Quick test_uniformity_nonuniform;
    Alcotest.test_case "uniformity uniform" `Quick test_uniformity_uniform;
    Alcotest.test_case "conditional history" `Quick test_conditional_fault_history_dependent;
    Alcotest.test_case "conditional kind" `Quick test_conditional_fault_not_uniform_kind;
    Alcotest.test_case "conditional effective" `Quick test_conditional_fault_effective;
    Alcotest.test_case "certified tour vs conditional" `Quick
      test_certified_tour_can_miss_conditional_fault;
    Alcotest.test_case "conditional uniformity class" `Quick
      test_conditional_fault_uniformity_classification;
    QCheck_alcotest.to_alcotest qcheck_output_fault_always_detected_at_site;
  ]
