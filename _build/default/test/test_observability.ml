open Simcov_netlist
open Simcov_coverage

let ( !! ) = Expr.( !! )
let ( &&& ) = Expr.( &&& )
let ( ^^^ ) = Expr.( ^^^ )

let counter () =
  let open Circuit.Build in
  let ctx = create "counter" in
  let en = input ctx "en" in
  let b0 = reg ctx "b0" in
  let b1 = reg ctx "b1" in
  assign ctx b0 (Expr.mux en (!!b0) b0);
  assign ctx b1 (Expr.mux en (b1 ^^^ b0) b1);
  output ctx "wrap" (en &&& b0 &&& b1);
  finish ctx

let enabled n = List.init n (fun _ -> [| true |])

let test_full_run_covers () =
  let c = counter () in
  let r = Observability.analyze c (enabled 8) in
  Alcotest.(check int) "both toggled" 2 r.Observability.toggled;
  Alcotest.(check int) "both observed" 2 r.Observability.observed;
  Alcotest.(check (float 0.01)) "100%" 100.0 (Observability.observability_pct r)

let test_idle_run_covers_nothing () =
  let c = counter () in
  let r = Observability.analyze c (List.init 8 (fun _ -> [| false |])) in
  Alcotest.(check int) "nothing toggles" 0 r.Observability.toggled;
  (* with en=0 throughout, outputs are constant false: no observation *)
  Alcotest.(check int) "nothing observed" 0 r.Observability.observed

let test_short_run_partial () =
  let c = counter () in
  (* one enabled step: b0 toggles, b1 does not *)
  let r = Observability.analyze c [ [| true |] ] in
  Alcotest.(check int) "only b0 toggles" 1 r.Observability.toggled

let test_dead_register_never_observed () =
  let open Circuit.Build in
  let ctx = create "dead" in
  let i = input ctx "i" in
  let live = reg ctx "live" in
  let dead = reg ctx "dead" in
  assign ctx live i;
  assign ctx dead (dead ^^^ i);
  output ctx "o" live;
  let c = finish ctx in
  let word = List.init 6 (fun k -> [| k mod 2 = 0 |]) in
  let r = Observability.analyze c word in
  Alcotest.(check int) "dead toggles" 2 r.Observability.toggled;
  Alcotest.(check int) "but only live is observed" 1 r.Observability.observed;
  Alcotest.(check int) "toggled and observed" 1 r.Observability.toggled_and_observed

let test_horizon_matters () =
  (* a 3-deep shift register to a single output: the first stage needs
     horizon >= 3 to be observed *)
  let open Circuit.Build in
  let ctx = create "shift" in
  let i = input ctx "i" in
  let s1 = reg ctx "s1" in
  let s2 = reg ctx "s2" in
  let s3 = reg ctx "s3" in
  assign ctx s1 i;
  assign ctx s2 s1;
  assign ctx s3 s2;
  output ctx "o" s3;
  let c = finish ctx in
  let word = List.init 10 (fun k -> [| k mod 3 = 0 |]) in
  let r1 = Observability.analyze ~horizon:1 c word in
  let r3 = Observability.analyze ~horizon:3 c word in
  Alcotest.(check bool) "short horizon misses s1" true
    (r1.Observability.observed < r3.Observability.observed);
  Alcotest.(check int) "horizon 3 sees all" 3 r3.Observability.observed

let test_tour_vs_random_observability () =
  (* the tour of the counter achieves full observability coverage with
     few steps; short random-ish idle-heavy runs do not *)
  let c = counter () in
  let m = Circuit.to_fsm c in
  match Simcov_testgen.Tour.transition_tour m with
  | None -> Alcotest.fail "tour"
  | Some t ->
      let word = List.map (fun i -> [| i = 1 |]) t.Simcov_testgen.Tour.word in
      let r = Observability.analyze c word in
      Alcotest.(check (float 0.01)) "tour: full" 100.0
        (Observability.observability_pct r)

let suite =
  [
    Alcotest.test_case "full run covers" `Quick test_full_run_covers;
    Alcotest.test_case "idle run covers nothing" `Quick test_idle_run_covers_nothing;
    Alcotest.test_case "short run partial" `Quick test_short_run_partial;
    Alcotest.test_case "dead register" `Quick test_dead_register_never_observed;
    Alcotest.test_case "horizon matters" `Quick test_horizon_matters;
    Alcotest.test_case "tour observability" `Quick test_tour_vs_random_observability;
  ]
