open Simcov_netlist
open Simcov_symbolic

let ( !! ) = Expr.( !! )
let ( &&& ) = Expr.( &&& )
let ( ^^^ ) = Expr.( ^^^ )

let counter () =
  let open Circuit.Build in
  let ctx = create "counter" in
  let en = input ctx "en" in
  let b0 = reg ctx "b0" in
  let b1 = reg ctx "b1" in
  assign ctx b0 (Expr.mux en (!!b0) b0);
  assign ctx b1 (Expr.mux en (b1 ^^^ b0) b1);
  output ctx "wrap" (en &&& b0 &&& b1);
  finish ctx

let broken_counter () =
  let open Circuit.Build in
  let ctx = create "broken" in
  let en = input ctx "en" in
  let b0 = reg ctx "b0" in
  let b1 = reg ctx "b1" in
  assign ctx b0 (Expr.mux en (!!b0) b0);
  assign ctx b1 (Expr.mux en (b1 ^^^ b0) b1);
  (* wrap fires one count early *)
  output ctx "wrap" (en &&& !!b0 &&& b1);
  finish ctx

let test_self_equivalent () =
  let c = counter () in
  match Equiv.check c c with
  | Equiv.Equivalent { reachable_pairs } ->
      (* lockstep: only the diagonal is reachable *)
      Alcotest.(check (float 0.001)) "diagonal pairs" 4.0 reachable_pairs
  | Equiv.Different _ -> Alcotest.fail "self-equivalence"

let test_detects_difference () =
  match Equiv.check (counter ()) (broken_counter ()) with
  | Equiv.Equivalent _ -> Alcotest.fail "must differ"
  | Equiv.Different ce ->
      Alcotest.(check string) "differing output" "wrap" ce.Equiv.output;
      (* the counterexample must be a genuinely differing configuration *)
      let eval (c : Circuit.t) state =
        let st = Array.of_list (List.map snd state) in
        let inputs = Array.of_list (List.map snd ce.Equiv.inputs) in
        let _, outs = Circuit.step c st inputs in
        outs.(0)
      in
      Alcotest.(check bool) "outputs differ on ce" true
        (eval (counter ()) ce.Equiv.state_a <> eval (broken_counter ()) ce.Equiv.state_b)

let onehot_ring width =
  let open Circuit.Build in
  let ctx = create "ring" in
  let adv = input ctx "adv" in
  let regs =
    Array.init width (fun k ->
        reg ctx ~group:"phase" ~init:(k = 0) (Printf.sprintf "ph%d" k))
  in
  Array.iteri
    (fun k r ->
      let prev = regs.((k + width - 1) mod width) in
      assign ctx r (Expr.mux adv prev r))
    regs;
  output ctx "at_last" regs.(width - 1);
  finish ctx

let test_onehot_to_binary_formally_equivalent () =
  let c = onehot_ring 4 in
  let c' = Simcov_abstraction.Netabs.onehot_to_binary c ~group:"phase" in
  match Equiv.check c c' with
  | Equiv.Equivalent { reachable_pairs } ->
      (* 4 phases, deterministic pairing *)
      Alcotest.(check (float 0.001)) "4 lockstep pairs" 4.0 reachable_pairs
  | Equiv.Different _ -> Alcotest.fail "one-hot re-encoding must be behavior-preserving"

let test_onehot_odd_formally_equivalent () =
  let c = onehot_ring 5 in
  let c' = Simcov_abstraction.Netabs.onehot_to_binary c ~group:"phase" in
  Alcotest.(check bool) "equivalent" true (Equiv.equivalent c c')

let test_constraint_limits_comparison () =
  (* two circuits that differ only on an input combination excluded by
     the constraint are equivalent under it *)
  let build flip =
    let open Circuit.Build in
    let ctx = create "constrained" in
    let x = input ctx "x" in
    let y = input ctx "y" in
    let r = reg ctx "r" in
    assign ctx r (x ^^^ y);
    output ctx "o" (if flip then r ^^^ (x &&& y) else r);
    constrain ctx (!!(x &&& y));
    finish ctx
  in
  Alcotest.(check bool) "equivalent under the constraint" true
    (Equiv.equivalent (build false) (build true))

let test_interface_mismatch () =
  let c = counter () in
  let tiny =
    let open Circuit.Build in
    let ctx = create "tiny" in
    let x = input ctx "x" in
    let y = input ctx "y" in
    let r = reg ctx "r" in
    assign ctx r (x &&& y);
    output ctx "o" r;
    finish ctx
  in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Equiv.check c tiny);
       false
     with Invalid_argument _ -> true)

let test_retimed_not_equivalent () =
  (* remove_output_buffers retimes outputs by one cycle: the checker
     must flag the difference (it is NOT sequential-equivalence
     preserving, by design) *)
  let open Circuit.Build in
  let build () =
    let ctx = create "buffered" in
    let i = input ctx "i" in
    let core = reg ctx "core" in
    let buf = reg ctx "buf" in
    assign ctx core (core ^^^ i);
    assign ctx buf core;
    output ctx "o" buf;
    finish ctx
  in
  let c = build () in
  let c' = Simcov_abstraction.Netabs.remove_output_buffers c in
  Alcotest.(check bool) "retiming changes timing" false (Equiv.equivalent c c')

(* random small circuits, cross-validated against explicit product
   equivalence *)
let random_circuit rng ~n_inputs ~n_regs =
  let rec gen_expr depth =
    if depth = 0 then
      match Simcov_util.Rng.int rng 4 with
      | 0 -> Expr.input (Simcov_util.Rng.int rng n_inputs)
      | 1 -> Expr.reg (Simcov_util.Rng.int rng n_regs)
      | 2 -> Expr.tru
      | _ -> Expr.fls
    else
      match Simcov_util.Rng.int rng 5 with
      | 0 -> Expr.( !! ) (gen_expr (depth - 1))
      | 1 -> Expr.( &&& ) (gen_expr (depth - 1)) (gen_expr (depth - 1))
      | 2 -> Expr.( ||| ) (gen_expr (depth - 1)) (gen_expr (depth - 1))
      | 3 -> Expr.( ^^^ ) (gen_expr (depth - 1)) (gen_expr (depth - 1))
      | _ -> Expr.mux (gen_expr (depth - 1)) (gen_expr (depth - 1)) (gen_expr (depth - 1))
  in
  {
    Circuit.name = "rand";
    input_names = Array.init n_inputs (fun i -> Printf.sprintf "i%d" i);
    regs =
      Array.init n_regs (fun r ->
          {
            Circuit.name = Printf.sprintf "r%d" r;
            group = "g";
            init = Simcov_util.Rng.bool rng;
            next = gen_expr 3;
          });
    outputs = [| { Circuit.port_name = "o"; expr = gen_expr 3 } |];
    input_constraint = Expr.tru;
  }

let qcheck_equiv_vs_explicit =
  QCheck.Test.make ~name:"equiv: symbolic checker agrees with explicit product machine"
    ~count:60
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let rng = Simcov_util.Rng.create seed in
      let a = random_circuit rng ~n_inputs:2 ~n_regs:3 in
      (* b: either a copy of a (equivalent) or a mutated output *)
      let mutate = Simcov_util.Rng.bool rng in
      let b =
        if not mutate then { a with Circuit.name = "copy" }
        else
          {
            a with
            Circuit.name = "mut";
            outputs =
              [|
                {
                  Circuit.port_name = "o";
                  expr = Expr.( ^^^ ) a.Circuit.outputs.(0).Circuit.expr (Expr.reg 0);
                };
              |];
          }
      in
      let sym = Equiv.equivalent a b in
      (* explicit: product-machine over packed outputs *)
      let ma = Circuit.to_fsm a and mb = Circuit.to_fsm b in
      let explicit = match Simcov_fsm.Fsm.equivalent ma mb with Ok [] -> true | _ -> false in
      sym = explicit)

let suite =
  [
    Alcotest.test_case "self equivalent" `Quick test_self_equivalent;
    Alcotest.test_case "detects difference" `Quick test_detects_difference;
    Alcotest.test_case "onehot formally equivalent" `Quick test_onehot_to_binary_formally_equivalent;
    Alcotest.test_case "onehot odd equivalent" `Quick test_onehot_odd_formally_equivalent;
    Alcotest.test_case "constraint limits comparison" `Quick test_constraint_limits_comparison;
    Alcotest.test_case "interface mismatch" `Quick test_interface_mismatch;
    Alcotest.test_case "retimed not equivalent" `Quick test_retimed_not_equivalent;
    QCheck_alcotest.to_alcotest qcheck_equiv_vs_explicit;
  ]
