open Simcov_dlx
open Simcov_fsm

let cfg = Testmodel.default

let model = Testmodel.build cfg

let test_input_roundtrip () =
  for code = 0 to Testmodel.n_input_codes cfg - 1 do
    if code land 7 < 7 then
      Alcotest.(check int) "roundtrip"
        code
        (Testmodel.input_code cfg (Testmodel.input_decode cfg code))
  done

let test_valid_input_count () =
  (* ALU-RR 64, ALU-RI 16, LOAD 16, STORE 16, BRANCH 8, JUMP 1, NOP 1 *)
  Alcotest.(check int) "122 valid abstract instructions" 122
    (Testmodel.n_valid_inputs cfg);
  Alcotest.(check int) "of 1024 codes" 1024 (Testmodel.n_input_codes cfg)

let test_model_shape () =
  Alcotest.(check int) "28 states" 28 model.Fsm.n_states;
  Alcotest.(check int) "all reachable" 28 (Fsm.n_reachable model);
  Alcotest.(check int) "28 * 122 transitions" (28 * 122) (Fsm.n_transitions model);
  Alcotest.(check bool) "strongly connected" true
    (Simcov_graph.Scc.is_strongly_connected (Fsm.transition_graph model))

let code c = Testmodel.input_code cfg c

let alu ?(rd = 1) ?(rs1 = 0) ?(rs2 = 0) () =
  code { Testmodel.cls = Isa.Alu_rr; rd; rs1; rs2; taken = false }

let load ?(rd = 1) ?(rs1 = 0) () =
  code { Testmodel.cls = Isa.Load; rd; rs1; rs2 = 0; taken = false }

let nopi = Testmodel.input_code cfg { Testmodel.cls = Isa.Nopc; rd = 0; rs1 = 0; rs2 = 0; taken = false }
let branch ~taken = code { Testmodel.cls = Isa.Branch; rd = 0; rs1 = 1; rs2 = 0; taken }
let jump = code { Testmodel.cls = Isa.Jump; rd = 0; rs1 = 0; rs2 = 0; taken = false }

let stall_bit o = o land 1
let fwd_a o = (o lsr 1) land 3
let fwd_b o = (o lsr 3) land 3
let squash_bit o = (o lsr 5) land 1

let test_load_use_stall () =
  (* load r1 then alu reading r1: stall + MEM/WB forward *)
  let outs = Fsm.output_word model [ load ~rd:1 (); alu ~rd:2 ~rs1:1 () ] in
  let o = List.nth outs 1 in
  Alcotest.(check int) "stall" 1 (stall_bit o);
  Alcotest.(check int) "operand A from MEM/WB" 2 (fwd_a o)

let test_no_stall_when_different_reg () =
  let outs = Fsm.output_word model [ load ~rd:1 (); alu ~rd:2 ~rs1:2 ~rs2:3 () ] in
  let o = List.nth outs 1 in
  Alcotest.(check int) "no stall" 0 (stall_bit o);
  Alcotest.(check int) "no forward" 0 (fwd_a o)

let test_alu_forward () =
  let outs = Fsm.output_word model [ alu ~rd:3 (); alu ~rd:2 ~rs1:3 () ] in
  let o = List.nth outs 1 in
  Alcotest.(check int) "no stall for ALU producer" 0 (stall_bit o);
  Alcotest.(check int) "EX/MEM forward" 1 (fwd_a o)

let test_memwb_forward_two_apart () =
  let outs = Fsm.output_word model [ alu ~rd:3 (); nopi; alu ~rd:2 ~rs1:3 () ] in
  let o = List.nth outs 2 in
  Alcotest.(check int) "MEM/WB forward" 2 (fwd_a o)

let test_three_apart_no_forward () =
  let outs = Fsm.output_word model [ alu ~rd:3 (); nopi; nopi; alu ~rd:2 ~rs1:3 () ] in
  let o = List.nth outs 3 in
  Alcotest.(check int) "register file" 0 (fwd_a o)

let test_fwd_b_independent () =
  let outs = Fsm.output_word model [ alu ~rd:3 (); alu ~rd:2 ~rs1:1 ~rs2:3 () ] in
  let o = List.nth outs 1 in
  Alcotest.(check int) "A from regfile" 0 (fwd_a o);
  Alcotest.(check int) "B from EX/MEM" 1 (fwd_b o)

let test_squash_resets_history () =
  (* after a taken branch the in-flight slots are bubbles *)
  let outs = Fsm.output_word model [ alu ~rd:3 (); branch ~taken:true; alu ~rd:2 ~rs1:3 () ] in
  let o_branch = List.nth outs 1 in
  Alcotest.(check int) "squash" 1 (squash_bit o_branch);
  let o = List.nth outs 2 in
  Alcotest.(check int) "no forward after squash" 0 (fwd_a o)

let test_not_taken_keeps_history () =
  let outs = Fsm.output_word model [ alu ~rd:3 (); branch ~taken:false; alu ~rd:2 ~rs1:3 () ] in
  let o = List.nth outs 2 in
  Alcotest.(check int) "not-taken branch: MEM/WB forward" 2 (fwd_a o)

let test_jump_squashes () =
  let outs = Fsm.output_word model [ jump ] in
  Alcotest.(check int) "jump squashes" 1 (squash_bit (List.hd outs))

let test_rd0_no_write_tracking () =
  let outs = Fsm.output_word model [ alu ~rd:0 ~rs1:1 (); alu ~rd:2 ~rs1:1 () ] in
  (* writing r0 is discarded: no forward to a consumer of anything *)
  let o = List.nth outs 1 in
  Alcotest.(check int) "no forward from r0 write" 0 (fwd_a o)

let test_stall_clears_memwb_slot () =
  (* load r1; dependent alu (stalls); consumer of the pre-load producer
     is now out of forwarding reach *)
  let outs =
    Fsm.output_word model
      [ alu ~rd:2 (); load ~rd:1 (); alu ~rd:3 ~rs1:1 (); alu ~rd:1 ~rs1:3 ~rs2:2 () ]
  in
  let o = List.nth outs 3 in
  (* rs1=3 matches EX/MEM producer (the stalled alu); rs2=2's producer
     fell out of the window because of the stall bubble *)
  Alcotest.(check int) "A forwards" 1 (fwd_a o);
  Alcotest.(check int) "B from regfile" 0 (fwd_b o)

let test_min_forall_k_with_observability () =
  (* Requirement 5 satisfied: interaction state observable => every
     state pair distinguished by every single input *)
  Alcotest.(check (option int)) "forall-1" (Some 1) (Fsm.min_forall_k model)

let test_forall_k_without_observability () =
  let m = Testmodel.build { cfg with Testmodel.observable_dest = false } in
  (* hidden interaction state: some pairs are not forall-k
     distinguishable for any small k *)
  Alcotest.(check (option int)) "no k up to 8" None (Fsm.min_forall_k ~bound:8 m)

let test_dest_merge_conflict () =
  match Simcov_abstraction.Homomorphism.quotient model (Testmodel.dest_merge_mapping cfg) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "dropping destination addresses must be a non-exact abstraction"

let test_destless_model_small () =
  let m = Testmodel.build { cfg with Testmodel.track_dest = false } in
  Alcotest.(check int) "6 states" 6 m.Fsm.n_states;
  Alcotest.(check bool) "still connected" true
    (Simcov_graph.Scc.is_strongly_connected (Fsm.transition_graph m))

(* ---- concretization ---- *)

let run_both word =
  let conc = Testmodel.concretize cfg word in
  Simcov_dlx.Validate.run_program ~preload_regs:conc.Testmodel.preload_regs
    ~preload_mem:conc.Testmodel.preload_mem conc.Testmodel.program

let test_concretize_simple () =
  let word = [ alu ~rd:1 ~rs1:2 ~rs2:3 (); load ~rd:2 ~rs1:1 (); alu ~rd:3 ~rs1:2 () ] in
  let conc = Testmodel.concretize cfg word in
  Alcotest.(check int) "3 issued instructions" 3 (Array.length conc.Testmodel.issue_map);
  match run_both word with
  | Simcov_dlx.Validate.Pass _ -> ()
  | f -> Alcotest.failf "bug-free pipeline must pass: %a" Simcov_dlx.Validate.pp_outcome f

let test_concretize_branches () =
  let word =
    [
      alu ~rd:1 ~rs1:2 ~rs2:3 ();
      branch ~taken:true;
      branch ~taken:false;
      jump;
      alu ~rd:2 ~rs1:1 ();
      jump;
      nopi;
    ]
  in
  match run_both word with
  | Simcov_dlx.Validate.Pass n -> Alcotest.(check int) "all issued commits" 7 n
  | f -> Alcotest.failf "must pass: %a" Simcov_dlx.Validate.pp_outcome f

let test_concretize_branch_directions () =
  (* both directions on a register whose value varies *)
  let word =
    [
      alu ~rd:1 ~rs1:1 ~rs2:1 () (* r1 != 0 stays *);
      branch ~taken:true;
      branch ~taken:false;
      load ~rd:1 ~rs1:0 ();
      branch ~taken:true;
    ]
  in
  match run_both word with
  | Simcov_dlx.Validate.Pass _ -> ()
  | f -> Alcotest.failf "must pass: %a" Simcov_dlx.Validate.pp_outcome f

let test_concretize_tour_runs_clean () =
  (* the whole CPP tour concretizes into a program on which the
     bug-free pipeline matches the spec *)
  match Simcov_testgen.Tour.transition_tour model with
  | None -> Alcotest.fail "tour must exist"
  | Some t -> (
      Alcotest.(check bool) "covers everything" true
        (Simcov_testgen.Tour.word_is_tour model t.Simcov_testgen.Tour.word);
      match run_both t.Simcov_testgen.Tour.word with
      | Simcov_dlx.Validate.Pass n ->
          Alcotest.(check bool) "thousands of commits" true (n > 3000)
      | f -> Alcotest.failf "tour program must pass: %a" Simcov_dlx.Validate.pp_outcome f)

let test_tour_program_catches_all_bugs () =
  match Simcov_testgen.Tour.transition_tour model with
  | None -> Alcotest.fail "tour must exist"
  | Some t ->
      let conc = Testmodel.concretize cfg t.Simcov_testgen.Tour.word in
      List.iter
        (fun (name, bugs) ->
          let outcome =
            Simcov_dlx.Validate.run_program ~bugs
              ~preload_regs:conc.Testmodel.preload_regs
              ~preload_mem:conc.Testmodel.preload_mem conc.Testmodel.program
          in
          match outcome with
          | Simcov_dlx.Validate.Fail _ -> ()
          | Simcov_dlx.Validate.Pass _ -> Alcotest.failf "tour missed bug %s" name)
        Simcov_dlx.Pipeline.bug_catalog

let suite =
  [
    Alcotest.test_case "input roundtrip" `Quick test_input_roundtrip;
    Alcotest.test_case "valid input count" `Quick test_valid_input_count;
    Alcotest.test_case "model shape" `Quick test_model_shape;
    Alcotest.test_case "load-use stall" `Quick test_load_use_stall;
    Alcotest.test_case "no stall different reg" `Quick test_no_stall_when_different_reg;
    Alcotest.test_case "alu forward" `Quick test_alu_forward;
    Alcotest.test_case "memwb forward" `Quick test_memwb_forward_two_apart;
    Alcotest.test_case "three apart regfile" `Quick test_three_apart_no_forward;
    Alcotest.test_case "fwd b independent" `Quick test_fwd_b_independent;
    Alcotest.test_case "squash resets history" `Quick test_squash_resets_history;
    Alcotest.test_case "not taken keeps history" `Quick test_not_taken_keeps_history;
    Alcotest.test_case "jump squashes" `Quick test_jump_squashes;
    Alcotest.test_case "rd0 not tracked" `Quick test_rd0_no_write_tracking;
    Alcotest.test_case "stall clears memwb slot" `Quick test_stall_clears_memwb_slot;
    Alcotest.test_case "forall-k with observability" `Quick test_min_forall_k_with_observability;
    Alcotest.test_case "forall-k without observability" `Quick test_forall_k_without_observability;
    Alcotest.test_case "dest merge conflict" `Quick test_dest_merge_conflict;
    Alcotest.test_case "dest-less model" `Quick test_destless_model_small;
    Alcotest.test_case "concretize simple" `Quick test_concretize_simple;
    Alcotest.test_case "concretize branches" `Quick test_concretize_branches;
    Alcotest.test_case "concretize branch directions" `Quick test_concretize_branch_directions;
    Alcotest.test_case "tour program runs clean" `Slow test_concretize_tour_runs_clean;
    Alcotest.test_case "tour program catches all bugs" `Slow test_tour_program_catches_all_bugs;
  ]
