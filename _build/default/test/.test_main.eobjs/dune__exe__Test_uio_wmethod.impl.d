test/test_uio_wmethod.ml: Alcotest Array Fsm List Printf QCheck QCheck_alcotest Simcov_core Simcov_coverage Simcov_fsm Simcov_testgen Simcov_util Tour Uio Wmethod
