test/test_core.ml: Alcotest Completeness Fsm Fun List Methodology Requirements Result Simcov_abstraction Simcov_core Simcov_coverage Simcov_dlx Simcov_fsm Simcov_testgen Simcov_util
