test/test_graph.ml: Alcotest Array Cpp Digraph Euler Fun List Mcmf QCheck QCheck_alcotest Scc Shortest Simcov_graph Simcov_util
