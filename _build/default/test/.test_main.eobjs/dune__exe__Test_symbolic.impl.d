test/test_symbolic.ml: Alcotest Circuit Expr Simcov_bdd Simcov_fsm Simcov_netlist Simcov_symbolic Simcov_util
