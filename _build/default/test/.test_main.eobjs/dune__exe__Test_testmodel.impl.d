test/test_testmodel.ml: Alcotest Array Fsm Isa List Simcov_abstraction Simcov_dlx Simcov_fsm Simcov_graph Simcov_testgen Testmodel
