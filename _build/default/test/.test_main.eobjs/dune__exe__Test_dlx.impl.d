test/test_dlx.ml: Alcotest Array Format Hazardgen Int32 Isa List Pipeline Printf QCheck QCheck_alcotest Result Simcov_dlx Simcov_util Spec String Validate
