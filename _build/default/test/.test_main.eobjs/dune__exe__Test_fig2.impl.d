test/test_fig2.ml: Alcotest Array Completeness Fig2 List Result Simcov_core Simcov_fsm Simcov_testgen Simcov_util
