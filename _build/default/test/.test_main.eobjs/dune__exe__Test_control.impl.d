test/test_control.ml: Alcotest Array Circuit Control List Netabs Simcov_abstraction Simcov_dlx Simcov_netlist Simcov_util
