test/test_symtour.ml: Alcotest Array Circuit Expr List Simcov_fsm Simcov_netlist Simcov_symbolic Simcov_testgen Symtour
