test/test_coverage.ml: Alcotest Detect Fault Fsm Fun List QCheck QCheck_alcotest Simcov_abstraction Simcov_coverage Simcov_fsm Simcov_testgen Simcov_util Uniformity
