test/test_dsp.ml: Alcotest Format Int32 List Pipe QCheck QCheck_alcotest Simcov_core Simcov_coverage Simcov_dsp Simcov_fsm Simcov_graph Simcov_testgen Simcov_util Spec Testmodel Validate
