test/test_bdd.ml: Alcotest Bdd Fun Gen List Printf QCheck QCheck_alcotest Simcov_bdd Simcov_util Test
