test/test_observability.ml: Alcotest Circuit Expr List Observability Simcov_coverage Simcov_netlist Simcov_testgen
