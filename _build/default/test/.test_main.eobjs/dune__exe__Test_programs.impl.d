test/test_programs.ml: Alcotest Array Format List Pipeline Printf Programs Simcov_dlx Spec Validate
