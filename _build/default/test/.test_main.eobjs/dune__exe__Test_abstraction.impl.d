test/test_abstraction.ml: Alcotest Array Circuit Expr Fsm Fun Homomorphism List Netabs Printf QCheck QCheck_alcotest Simcov_abstraction Simcov_fsm Simcov_netlist Simcov_util
