test/test_fsm.ml: Alcotest Array Fsm List Printf QCheck QCheck_alcotest Simcov_fsm Simcov_graph Simcov_util
