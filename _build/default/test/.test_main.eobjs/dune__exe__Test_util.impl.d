test/test_util.ml: Alcotest Array Bitvec Fun List QCheck QCheck_alcotest Rng Simcov_util String Tabulate
