test/test_serialize.ml: Alcotest Array Circuit Expr Filename List QCheck QCheck_alcotest Serialize Simcov_dlx Simcov_netlist Simcov_util Sys
