test/test_equiv.ml: Alcotest Array Circuit Equiv Expr List Printf QCheck QCheck_alcotest Simcov_abstraction Simcov_fsm Simcov_netlist Simcov_symbolic Simcov_util
