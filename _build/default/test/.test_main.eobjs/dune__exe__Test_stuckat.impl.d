test/test_stuckat.ml: Alcotest Circuit Expr List Simcov_bdd Simcov_coverage Simcov_netlist Simcov_testgen String Stuckat
