test/test_dual.ml: Alcotest Array Dual Format Isa List QCheck QCheck_alcotest Simcov_dlx Simcov_util String Validate
