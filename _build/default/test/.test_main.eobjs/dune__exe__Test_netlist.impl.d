test/test_netlist.ml: Alcotest Array Circuit Expr List QCheck QCheck_alcotest Simcov_fsm Simcov_netlist Simcov_util
