test/test_testgen.ml: Alcotest Fsm Hashtbl List QCheck QCheck_alcotest Simcov_fsm Simcov_testgen Simcov_util Tour
