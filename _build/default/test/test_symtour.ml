open Simcov_netlist
open Simcov_symbolic

let ( !! ) = Expr.( !! )
let ( &&& ) = Expr.( &&& )
let ( ^^^ ) = Expr.( ^^^ )

let counter () =
  let open Circuit.Build in
  let ctx = create "counter" in
  let en = input ctx "en" in
  let b0 = reg ctx "b0" in
  let b1 = reg ctx "b1" in
  assign ctx b0 (Expr.mux en (!!b0) b0);
  assign ctx b1 (Expr.mux en (b1 ^^^ b0) b1);
  output ctx "wrap" (en &&& b0 &&& b1);
  finish ctx

let test_symtour_counter_complete () =
  let c = counter () in
  let r = Symtour.generate c in
  Alcotest.(check bool) "complete" true r.Symtour.complete;
  Alcotest.(check (float 0.001)) "8 transitions" 8.0 r.Symtour.progress.Symtour.total;
  Alcotest.(check (float 0.001)) "all covered" 8.0 r.Symtour.progress.Symtour.covered;
  (* the word replays cleanly *)
  ignore (Circuit.simulate c r.Symtour.word);
  (* replay coverage agrees *)
  let covered, total = Symtour.coverage_of_word c r.Symtour.word in
  Alcotest.(check (float 0.001)) "replay covered" 8.0 covered;
  Alcotest.(check (float 0.001)) "replay total" 8.0 total

let test_symtour_agrees_with_explicit () =
  let c = counter () in
  let m = Circuit.to_fsm c in
  let explicit =
    match Simcov_testgen.Tour.transition_tour m with
    | Some t -> t.Simcov_testgen.Tour.n_transitions
    | None -> -1
  in
  let r = Symtour.generate c in
  Alcotest.(check (float 0.001)) "same transition count" (float_of_int explicit)
    r.Symtour.progress.Symtour.total;
  (* symbolic greedy is within a small factor of the optimum *)
  Alcotest.(check bool) "reasonable length" true
    (List.length r.Symtour.word <= 4 * explicit)

let test_symtour_respects_constraint () =
  let open Circuit.Build in
  let ctx = create "constrained" in
  let a = input ctx "a" in
  let b = input ctx "b" in
  let r = reg ctx "r" in
  assign ctx r (a ^^^ b);
  output ctx "o" r;
  constrain ctx (!!(a &&& b));
  let c = finish ctx in
  let res = Symtour.generate c in
  Alcotest.(check bool) "complete" true res.Symtour.complete;
  (* 2 states x 3 valid inputs *)
  Alcotest.(check (float 0.001)) "6 transitions" 6.0 res.Symtour.progress.Symtour.total;
  (* no step uses the forbidden combination *)
  Alcotest.(check bool) "all inputs valid" true
    (List.for_all (fun iv -> not (iv.(0) && iv.(1))) res.Symtour.word)

let test_symtour_max_steps () =
  let c = counter () in
  let r = Symtour.generate ~max_steps:3 c in
  Alcotest.(check bool) "incomplete" false r.Symtour.complete;
  Alcotest.(check int) "exactly 3 steps" 3 (List.length r.Symtour.word)

let test_symtour_partial_reachability () =
  (* register b1 can never rise: symbolic tour must cover exactly the
     reachable transitions and report completeness *)
  let open Circuit.Build in
  let ctx = create "stuck" in
  let i = input ctx "i" in
  let b0 = reg ctx "b0" in
  let b1 = reg ctx "b1" in
  assign ctx b0 (i &&& !!b1);
  assign ctx b1 (b1 &&& b0);
  output ctx "o" b0;
  let c = finish ctx in
  let r = Symtour.generate c in
  Alcotest.(check bool) "complete" true r.Symtour.complete;
  Alcotest.(check (float 0.001)) "2 states x 2 inputs" 4.0 r.Symtour.progress.Symtour.total

let test_symtour_medium_circuit () =
  (* a 6-bit circuit: 64-state space, constraint-free; the tour must
     cover all reachable transitions *)
  let open Circuit.Build in
  let ctx = create "lfsr" in
  let en = input ctx "en" in
  let bits = reg_vec ctx ~init:1 "s" 6 in
  let feedback = bits.(5) ^^^ bits.(4) in
  assign ctx bits.(0) (Expr.mux en feedback bits.(0));
  for k = 1 to 5 do
    assign ctx bits.(k) (Expr.mux en bits.(k - 1) bits.(k))
  done;
  output ctx "msb" bits.(5);
  let c = finish ctx in
  let r = Symtour.generate c in
  Alcotest.(check bool) "complete" true r.Symtour.complete;
  let m = Circuit.to_fsm c in
  Alcotest.(check (float 0.001)) "matches explicit count"
    (float_of_int (Simcov_fsm.Fsm.n_transitions m))
    r.Symtour.progress.Symtour.total

let suite =
  [
    Alcotest.test_case "symtour counter" `Quick test_symtour_counter_complete;
    Alcotest.test_case "symtour vs explicit" `Quick test_symtour_agrees_with_explicit;
    Alcotest.test_case "symtour constraint" `Quick test_symtour_respects_constraint;
    Alcotest.test_case "symtour max steps" `Quick test_symtour_max_steps;
    Alcotest.test_case "symtour partial reach" `Quick test_symtour_partial_reachability;
    Alcotest.test_case "symtour lfsr" `Quick test_symtour_medium_circuit;
  ]
