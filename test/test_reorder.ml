(* Dynamic variable reordering: sifting correctness, the rooting/GC
   contract during a sift, Node_limit aborts, the re-specified rename
   precondition, and the level-ranked dot output. *)

open Simcov_bdd

(* the classically order-adverse function x0&xn | x1&x(n+1) | ... —
   linear in one interleaving, exponential in the other *)
let adverse m n =
  let f = ref (Bdd.bfalse m) in
  for i = 0 to n - 1 do
    f := Bdd.bor m !f (Bdd.band m (Bdd.var m i) (Bdd.var m (n + i)))
  done;
  Bdd.protect m !f

let check_adverse_semantics m f n =
  (* spot-check against the defining formula on a pseudo-random walk
     of assignments (2n variables is too many to exhaust) *)
  let st = Random.State.make [| 0xC0FFEE |] in
  for _ = 1 to 200 do
    let bits = Array.init (2 * n) (fun _ -> Random.State.bool st) in
    let expect =
      let rec any i = i < n && ((bits.(i) && bits.(n + i)) || any (i + 1)) in
      any 0
    in
    Alcotest.(check bool) "adverse semantics" expect (Bdd.eval m f (fun v -> bits.(v)))
  done

let test_sift_reduces () =
  let n = 8 in
  let m = Bdd.man (2 * n) in
  let f = adverse m n in
  ignore (Bdd.gc m);
  let before = (Bdd.gc_stats m).Bdd.live in
  Bdd.reorder m;
  let after = (Bdd.gc_stats m).Bdd.live in
  Alcotest.(check bool)
    (Printf.sprintf "sift shrinks adverse order (%d -> %d)" before after)
    true
    (after * 4 < before);
  check_adverse_semantics m f n;
  let rs = Bdd.reorder_stats m in
  Alcotest.(check bool) "runs counted" true (rs.Bdd.reorder_runs >= 1);
  Alcotest.(check bool) "swaps counted" true (rs.Bdd.reorder_swaps > 0);
  Alcotest.(check int) "nodes_before recorded" before rs.Bdd.last_nodes_before;
  Alcotest.(check int) "nodes_after recorded" after rs.Bdd.last_nodes_after

let test_order_and_levels () =
  let m = Bdd.man 4 in
  Alcotest.(check (array int)) "initial order is identity" [| 0; 1; 2; 3 |]
    (Bdd.order m);
  let f = Bdd.protect m (Bdd.band m (Bdd.var m 0) (Bdd.var m 3)) in
  Bdd.set_order m [| 3; 1; 2; 0 |];
  Alcotest.(check (array int)) "set_order applied" [| 3; 1; 2; 0 |] (Bdd.order m);
  Alcotest.(check int) "level of var 3" 0 (Bdd.level_of_var m 3);
  Alcotest.(check int) "level of var 0" 3 (Bdd.level_of_var m 0);
  (* topvar is a variable index; under this order the root tests x3 *)
  Alcotest.(check int) "topvar follows order" 3 (Bdd.topvar f);
  (* support stays sorted by index, independent of the level order *)
  Alcotest.(check (list int)) "support index-sorted" [ 0; 3 ] (Bdd.support m f);
  Alcotest.(check bool) "semantics kept" true
    (Bdd.eval m f (fun v -> v = 0 || v = 3));
  Alcotest.(check bool) "falsified" false (Bdd.eval m f (fun v -> v = 0))

(* ---- randomized equivalence: op DAGs with reorders interleaved ---- *)

(* Build a random operation DAG over [nvars] variables, forcing a
   reorder (sift or random permutation) at random points, keeping a
   reference closure for every node built. Then every pool entry must
   still agree with its reference exhaustively, and sat_count/support
   must match brute force. *)
let qcheck_reorder_equivalence =
  QCheck.Test.make ~name:"reorder: random op DAGs survive random reorders"
    ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let nvars = 5 + Random.State.int st 3 in
      let m = Bdd.man nvars in
      let pool = ref [] in
      let add b f = pool := (Bdd.protect m b, f) :: !pool in
      add (Bdd.btrue m) (fun _ -> true);
      add (Bdd.bfalse m) (fun _ -> false);
      for v = 0 to nvars - 1 do
        add (Bdd.var m v) (fun a -> a v)
      done;
      let pick () = List.nth !pool (Random.State.int st (List.length !pool)) in
      let shuffle () =
        let p = Array.init nvars Fun.id in
        for i = nvars - 1 downto 1 do
          let j = Random.State.int st (i + 1) in
          let t = p.(i) in
          p.(i) <- p.(j);
          p.(j) <- t
        done;
        p
      in
      for _ = 1 to 25 do
        let a, fa = pick () and b, fb = pick () in
        (match Random.State.int st 5 with
        | 0 -> add (Bdd.band m a b) (fun x -> fa x && fb x)
        | 1 -> add (Bdd.bor m a b) (fun x -> fa x || fb x)
        | 2 -> add (Bdd.bxor m a b) (fun x -> fa x <> fb x)
        | 3 -> add (Bdd.bnot m a) (fun x -> not (fa x))
        | _ ->
            let c, fc = pick () in
            add (Bdd.ite m a b c) (fun x -> if fa x then fb x else fc x));
        match Random.State.int st 4 with
        | 0 -> Bdd.reorder m
        | 1 -> Bdd.set_order m (shuffle ())
        | _ -> ()
      done;
      Bdd.reorder m;
      let n_assign = 1 lsl nvars in
      List.iter
        (fun (b, f) ->
          let count = ref 0 in
          let ref_support = Array.make nvars false in
          for a = 0 to n_assign - 1 do
            let assign v = (a lsr v) land 1 = 1 in
            let expect = f assign in
            if expect <> Bdd.eval m b assign then
              QCheck.Test.fail_reportf "eval diverges on assignment %d" a;
            if expect then incr count;
            for v = 0 to nvars - 1 do
              if f assign <> f (fun w -> if w = v then not (assign w) else assign w)
              then ref_support.(v) <- true
            done
          done;
          if float_of_int !count <> Bdd.sat_count m ~nvars b then
            QCheck.Test.fail_reportf "sat_count diverges (expected %d)" !count;
          let expect_support =
            List.filter (fun v -> ref_support.(v)) (List.init nvars Fun.id)
          in
          if expect_support <> Bdd.support m b then
            QCheck.Test.fail_report "support diverges")
        !pool;
      true)

(* ---- GC interaction: unrooted garbage dies across a sift ---- *)

let test_gc_during_reorder () =
  let n = 6 in
  let m = Bdd.man (2 * n) in
  let f = adverse m n in
  (* pile up dead intermediates the sift's opening collection must
     reclaim — only the rooting contract keeps [f] alive *)
  for i = 0 to (2 * n) - 2 do
    ignore (Bdd.band m (Bdd.var m i) (Bdd.bnot m (Bdd.var m (i + 1))))
  done;
  let runs0 = (Bdd.gc_stats m).Bdd.runs in
  let live0 = (Bdd.gc_stats m).Bdd.live in
  Bdd.reorder m;
  let gs = Bdd.gc_stats m in
  Alcotest.(check bool) "reorder collected" true (gs.Bdd.runs > runs0);
  Alcotest.(check bool) "garbage + sift shrank the table" true
    (gs.Bdd.live < live0);
  check_adverse_semantics m f n

(* ---- Node_limit mid-sift: abort rolls back, manager stays usable ---- *)

let test_node_limit_abort () =
  let n = 8 in
  let m = Bdd.man (2 * n) in
  let f = adverse m n in
  ignore (Bdd.gc m);
  let live = (Bdd.gc_stats m).Bdd.live in
  (* no headroom for any swap's transient nodes: the first interesting
     swap fails its capacity pre-check and the sift aborts *)
  Bdd.set_max_nodes m (Some live);
  (match Bdd.reorder m with
  | () -> Alcotest.fail "expected Node_limit"
  | exception Bdd.Node_limit _ -> ());
  check_adverse_semantics m f n;
  (* manager must still be fully usable: new ops, then a successful
     sift once the ceiling is lifted *)
  Bdd.set_max_nodes m None;
  let g = Bdd.band m f (Bdd.var m 0) in
  Alcotest.(check bool) "post-abort op" true
    (Bdd.eval m g (fun v -> v = 0 || v = n));
  Bdd.reorder m;
  check_adverse_semantics m f n

(* ---- rename: precondition is about LEVELS, not indices ---- *)

let test_rename_levels () =
  let m = Bdd.man 6 in
  let f = Bdd.protect m (Bdd.band m (Bdd.var m 0) (Bdd.bor m (Bdd.var m 1) (Bdd.var m 2))) in
  let subst v = v + 3 in
  let renamed_ok g =
    (* g must be f with v+3 read where f read v *)
    List.for_all
      (fun a ->
        let bits = Array.init 6 (fun v -> (a lsr v) land 1 = 1) in
        Bdd.eval m g (fun v -> bits.(v))
        = (bits.(3) && (bits.(4) || bits.(5))))
      (List.init 64 Fun.id)
  in
  (* identity order: v+3 is monotone in both index and level *)
  Alcotest.(check bool) "fast path" true (renamed_ok (Bdd.rename m subst f));
  (* reverse the target block's levels: the same index-monotone subst
     is now level-reversing, which the old index-based precondition
     wrongly admitted to the structural path *)
  Bdd.set_order m [| 0; 1; 2; 5; 4; 3 |];
  Alcotest.(check bool) "fallback path" true (renamed_ok (Bdd.rename m subst f));
  (* non-injective maps must be rejected, not silently capture *)
  Alcotest.check_raises "non-injective rejected"
    (Invalid_argument "Bdd.rename: substitution not injective on support")
    (fun () -> ignore (Bdd.rename m (fun _ -> 4) f))

(* ---- to_dot: rank by level, label both index and level ---- *)

let test_to_dot_golden () =
  let m = Bdd.man 3 in
  let f = Bdd.protect m (Bdd.bor m (Bdd.band m (Bdd.var m 0) (Bdd.var m 1)) (Bdd.var m 2)) in
  Bdd.set_order m [| 2; 0; 1 |];
  let got = Bdd.to_dot m f in
  let expected =
    "digraph bdd {\n\
    \  node [shape=circle];\n\
    \  F [shape=box, label=\"0\"];\n\
    \  T [shape=box, label=\"1\"];\n\
    \  n7 [label=\"x2 L0\"];\n\
    \  n7 -> n5 [style=dashed];\n\
    \  n7 -> T;\n\
    \  n5 [label=\"x0 L1\"];\n\
    \  n5 -> F [style=dashed];\n\
    \  n5 -> n3;\n\
    \  n3 [label=\"x1 L2\"];\n\
    \  n3 -> F [style=dashed];\n\
    \  n3 -> T;\n\
    \  { rank=same; n7; }\n\
    \  { rank=same; n5; }\n\
    \  { rank=same; n3; }\n\
    \  root [shape=none, label=\"\"];\n\
    \  root -> n7;\n\
     }\n"
  in
  Alcotest.(check string) "dot output" expected got

(* ---- auto trigger ---- *)

(* With auto-reorder on, a sift (which collects first) can fire inside
   ANY public operation — so a value held across op boundaries must be
   rooted the whole time, not just passed as an argument. This is the
   opt-in rooting contract; [adverse]'s bare ref would dangle here. *)
let adverse_rooted m n =
  let f = ref (Bdd.bfalse m) in
  let r = Bdd.add_root m !f in
  for i = 0 to n - 1 do
    f := Bdd.bor m !f (Bdd.band m (Bdd.var m i) (Bdd.var m (n + i)));
    Bdd.set_root m r !f
  done;
  !f

let test_auto_reorder () =
  let n = 8 in
  let m = Bdd.man (2 * n) in
  Bdd.set_auto_reorder m ~ratio:1.5 ~min_nodes:64 true;
  let f = adverse_rooted m n in
  Alcotest.(check bool) "auto trigger fired" true
    ((Bdd.reorder_stats m).Bdd.reorder_runs >= 1);
  check_adverse_semantics m f n;
  Bdd.set_auto_reorder m false;
  let runs = (Bdd.reorder_stats m).Bdd.reorder_runs in
  ignore (adverse_rooted m n);
  Alcotest.(check int) "disabled" runs (Bdd.reorder_stats m).Bdd.reorder_runs

let suite =
  [
    Alcotest.test_case "sifting shrinks an adverse order" `Quick test_sift_reduces;
    Alcotest.test_case "order/level observers" `Quick test_order_and_levels;
    QCheck_alcotest.to_alcotest qcheck_reorder_equivalence;
    Alcotest.test_case "GC during reorder" `Quick test_gc_during_reorder;
    Alcotest.test_case "Node_limit aborts, manager usable" `Quick
      test_node_limit_abort;
    Alcotest.test_case "rename precondition is level-based" `Quick
      test_rename_levels;
    Alcotest.test_case "to_dot ranks by level" `Quick test_to_dot_golden;
    Alcotest.test_case "auto-reorder trigger" `Quick test_auto_reorder;
  ]
