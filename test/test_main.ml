(* chaos-child mode: the kill/resume test re-executes this binary with
   SIMCOV_CHAOS_CHILD set to run a checkpointing campaign it can kill
   (Unix.fork is unavailable once domains exist) *)
let () =
  match Sys.getenv_opt "SIMCOV_CHAOS_CHILD" with
  | Some path -> Test_robustness.chaos_child_main path
  | None -> ()

let () =
  Alcotest.run "simcov"
    [
      ("util", Test_util.suite);
      ("obs", Test_obs.suite);
      ("graph", Test_graph.suite);
      ("bdd", Test_bdd.suite);
      ("reorder", Test_reorder.suite);
      ("fsm", Test_fsm.suite);
      ("netlist", Test_netlist.suite);
      ("symbolic", Test_symbolic.suite);
      ("abstraction", Test_abstraction.suite);
      ("coverage", Test_coverage.suite);
      ("testgen", Test_testgen.suite);
      ("dlx", Test_dlx.suite);
      ("testmodel", Test_testmodel.suite);
      ("core", Test_core.suite);
      ("control", Test_control.suite);
      ("uio_wmethod", Test_uio_wmethod.suite);
      ("equiv", Test_equiv.suite);
      ("symtour", Test_symtour.suite);
      ("dsp", Test_dsp.suite);
      ("observability", Test_observability.suite);
      ("serialize", Test_serialize.suite);
      ("stuckat", Test_stuckat.suite);
      ("dual", Test_dual.suite);
      ("programs", Test_programs.suite);
      ("fig2", Test_fig2.suite);
      ("robustness", Test_robustness.suite);
      ("analysis", Test_analysis.suite);
      ("fsm_lint", Test_fsm_lint.suite);
      ("campaign", Test_campaign.suite);
      ("covdb", Test_covdb.suite);
      ("service", Test_service.suite);
    ]
