open Simcov_analysis
module Expr = Simcov_netlist.Expr
module Circuit = Simcov_netlist.Circuit
module Serialize = Simcov_netlist.Serialize
module Netabs = Simcov_abstraction.Netabs
module Homomorphism = Simcov_abstraction.Homomorphism
module Fsm = Simcov_fsm.Fsm
module Budget = Simcov_util.Budget
module Json = Simcov_util.Json
module Rng = Simcov_util.Rng
open Expr

let codes diags = List.map (fun d -> d.Diag.code) diags
let has code diags = List.mem code (codes diags)

let count_code code diags =
  List.length (List.filter (fun d -> d.Diag.code = code) diags)

let at code diags =
  match List.find_opt (fun d -> d.Diag.code = code) diags with
  | Some d -> d
  | None -> Alcotest.failf "expected a %s diagnostic, got [%s]" code
              (String.concat "; " (codes diags))

let load_fixture name =
  (* cwd is test/ under `dune runtest` but the workspace root under
     `dune exec test/test_main.exe` *)
  let candidates =
    [
      Filename.concat "fixtures" name;
      Filename.concat (Filename.concat "test" "fixtures") name;
      Filename.concat (Filename.concat (Filename.dirname Sys.executable_name) "fixtures") name;
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | None -> Alcotest.failf "fixture %s not found" name
  | Some path -> (
      match Serialize.load path with
      | Ok c -> c
      | Error e -> Alcotest.failf "fixture %s: %s" name (Serialize.error_to_string e))

(* ---- comb-cycle ---- *)

let test_comb_cycle_hand_graph () =
  let g = Netgraph.create () in
  let a = Netgraph.find_or_add_net g "a" in
  let b = Netgraph.find_or_add_net g "b" in
  Netgraph.add_driver g ~net:a ~kind:(Netgraph.Gate "not") ~fanin:[ b ];
  Netgraph.add_driver g ~net:b ~kind:(Netgraph.Gate "not") ~fanin:[ a ];
  Netgraph.mark_po g a;
  let diags = Comb_cycle.check_graph g in
  Alcotest.(check int) "one cycle" 1 (count_code "SA101" diags);
  let d = at "SA101" diags in
  Alcotest.(check bool) "cycle path reported" true (List.length d.Diag.related >= 2)

let test_comb_self_loop () =
  let g = Netgraph.create () in
  let x = Netgraph.find_or_add_net g "x" in
  Netgraph.add_driver g ~net:x ~kind:(Netgraph.Gate "buf") ~fanin:[ x ];
  Netgraph.mark_po g x;
  Alcotest.(check int) "self-loop is a cycle" 1
    (count_code "SA101" (Comb_cycle.check_graph g))

let test_lowered_circuits_are_acyclic () =
  let impl = Simcov_dlx.Control.build () in
  Alcotest.(check (list string)) "no cycles from lowering" []
    (codes (Comb_cycle.check impl))

(* ---- ternary-const ---- *)

let test_stuck_register_fixture () =
  let c = load_fixture "stuck.circ" in
  let diags = Ternary.check c in
  let d = at "SA201" diags in
  Alcotest.(check string) "stuck reg named" "stuck" (Diag.loc_name d.Diag.loc);
  Alcotest.(check int) "live reg not flagged" 1 (count_code "SA201" diags);
  let o = at "SA202" diags in
  Alcotest.(check string) "constant output named" "dead_o" (Diag.loc_name o.Diag.loc)

let test_stuck_crosschecks_stuckat () =
  (* soundness against the fault model: the same-polarity stuck-at
     fault on a ternary-stuck register is undetectable by any stimulus *)
  let c = load_fixture "stuck.circ" in
  let idx = Circuit.reg_index c "stuck" in
  let fault =
    { Simcov_coverage.Stuckat.site = Simcov_coverage.Stuckat.Reg_output idx;
      stuck = false }
  in
  let rng = Rng.create 7 in
  for _ = 1 to 20 do
    let word = List.init 32 (fun _ -> [| Rng.bool rng |]) in
    Alcotest.(check bool) "stuck-at-0 on a stuck-at-0 reg undetectable" false
      (Simcov_coverage.Stuckat.detects c fault word)
  done

let test_hold_enables () =
  let open Circuit.Build in
  let ctx = create "holds" in
  let i = input ctx "i" in
  let upd = input ctx "upd" in
  let zero = reg ctx "zero" in
  assign ctx zero (zero &&& i);
  let one = reg ctx ~init:true "one" in
  assign ctx one (one ||| i);
  let never = reg ctx "never" in
  assign ctx never (Expr.mux (zero &&& i) upd never);
  let always = reg ctx "always" in
  assign ctx always (Expr.mux (one ||| i) upd always);
  output ctx "o" (never ^^^ always);
  output ctx "keep" (zero ^^^ one);
  let diags = Ternary.check (finish ctx) in
  let d203 = at "SA203" diags in
  Alcotest.(check string) "never-enabled reg" "never" (Diag.loc_name d203.Diag.loc);
  let d204 = at "SA204" diags in
  Alcotest.(check string) "always-enabled reg" "always" (Diag.loc_name d204.Diag.loc);
  (* 'never' is also stuck, but the specific SA203 suppresses its SA201 *)
  Alcotest.(check bool) "SA201 suppressed for never" true
    (List.for_all
       (fun d -> d.Diag.code <> "SA201" || Diag.loc_name d.Diag.loc <> "never")
       diags)

let test_constant_false_constraint () =
  let open Circuit.Build in
  let ctx = create "blocked" in
  let i = input ctx "i" in
  let zero = reg ctx "zero" in
  assign ctx zero (zero &&& i);
  output ctx "o" zero;
  constrain ctx (zero &&& i);
  let diags = Ternary.check (finish ctx) in
  let d = at "SA205" diags in
  Alcotest.(check bool) "constraint-false is an error" true
    (d.Diag.severity = Diag.Error)

(* soundness: any behavior 2-valued simulation exhibits must be inside
   the ternary abstraction — a net that toggles is never reported stuck *)
let random_circuit rng =
  let n_inputs = 1 + Rng.int rng 3 in
  let n_regs = 1 + Rng.int rng 4 in
  let rec gen depth =
    if depth = 0 then
      match Rng.int rng 4 with
      | 0 -> Expr.input (Rng.int rng n_inputs)
      | 1 | 2 -> Expr.reg (Rng.int rng n_regs)
      | _ -> Expr.const (Rng.bool rng)
    else
      match Rng.int rng 6 with
      | 0 -> !!(gen (depth - 1))
      | 1 -> gen (depth - 1) &&& gen (depth - 1)
      | 2 -> gen (depth - 1) ||| gen (depth - 1)
      | 3 -> gen (depth - 1) ^^^ gen (depth - 1)
      | 4 -> Expr.mux (gen (depth - 1)) (gen (depth - 1)) (gen (depth - 1))
      | _ -> gen (depth - 1)
  in
  {
    Circuit.name = "rand";
    input_names = Array.init n_inputs (Printf.sprintf "i%d");
    regs =
      Array.init n_regs (fun k ->
          {
            Circuit.name = Printf.sprintf "r%d" k;
            group = "g";
            init = Rng.bool rng;
            next = gen (1 + Rng.int rng 3);
          });
    outputs = [| { Circuit.port_name = "o"; expr = gen 3 } |];
    input_constraint = Expr.tru;
  }

let qcheck_ternary_sound =
  QCheck.Test.make ~name:"analysis: ternary verdicts contain simulation" ~count:200
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let c = random_circuit rng in
      let res = Ternary.analyze c in
      let n_regs = Circuit.n_regs c in
      let state = ref (Circuit.initial_state c) in
      let ok = ref true in
      let check_reg r v =
        match res.Ternary.reg_values.(r) with
        | Ternary.Both -> ()
        | Ternary.Zero -> if v then ok := false
        | Ternary.One -> if not v then ok := false
      in
      for r = 0 to n_regs - 1 do
        check_reg r !state.(r)
      done;
      for _ = 1 to 48 do
        let inputs = Array.init (Circuit.n_inputs c) (fun _ -> Rng.bool rng) in
        let next, outs = Circuit.step c !state inputs in
        state := next;
        for r = 0 to n_regs - 1 do
          check_reg r !state.(r)
        done;
        (match res.Ternary.output_values.(0) with
        | Ternary.Both -> ()
        | Ternary.Zero -> if outs.(0) then ok := false
        | Ternary.One -> if not outs.(0) then ok := false)
      done;
      !ok)

(* ---- dead-logic ---- *)

let test_dead_latch_fixture () =
  let c = load_fixture "dead_latch.circ" in
  let diags = Deadlogic.check c in
  let d = at "SA301" diags in
  Alcotest.(check string) "dead latch named" "dead" (Diag.loc_name d.Diag.loc);
  let hs = Deadlogic.hints c in
  Alcotest.(check (list int)) "free list" [ Circuit.reg_index c "dead" ]
    (Deadlogic.free_list hs);
  (* the hint is exactly what cone_reduce deletes *)
  let reduced = Netabs.cone_reduce c in
  Alcotest.(check int) "cone_reduce removes the hinted latch" 1
    (Circuit.n_regs reduced);
  Alcotest.(check (list string)) "reduced model is hint-free" []
    (List.map (fun h -> h.Deadlogic.reg_name) (Deadlogic.hints reduced))

let test_constraint_only_latch_hint () =
  let open Circuit.Build in
  let ctx = create "constraint-fed" in
  let i = input ctx "i" in
  let seen = reg ctx "seen" in
  assign ctx seen (seen ||| i);
  let out = reg ctx "out" in
  assign ctx out i;
  output ctx "o" out;
  constrain ctx (!!seen ||| i);
  let c = finish ctx in
  match Deadlogic.hints c with
  | [ h ] ->
      Alcotest.(check string) "hint is the constraint-only latch" "seen"
        h.Deadlogic.reg_name;
      Alcotest.(check bool) "feeds_constraint recorded" true
        h.Deadlogic.feeds_constraint
  | hs -> Alcotest.failf "expected one hint, got %d" (List.length hs)

(* the Netgraph cone analysis and the Expr-level Circuit.output_cone
   must agree on which latches are dead, for any circuit *)
let qcheck_hints_match_output_cone =
  QCheck.Test.make ~name:"analysis: dead-latch hints = output-cone complement"
    ~count:200
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let c = random_circuit rng in
      let cone = Circuit.output_cone c in
      let dead_expected =
        List.filter
          (fun r -> not (List.mem r cone))
          (List.init (Circuit.n_regs c) Fun.id)
      in
      Deadlogic.free_list (Deadlogic.hints c) = dead_expected)

(* ---- structural ---- *)

let test_floating_net () =
  let g = Netgraph.create () in
  let f = Netgraph.find_or_add_net g "f" in
  let y = Netgraph.find_or_add_net g "y" in
  Netgraph.add_driver g ~net:y ~kind:(Netgraph.Gate "buf") ~fanin:[ f ];
  Netgraph.mark_po g y;
  let diags = Structural.check_graph g in
  let d = at "SA401" diags in
  Alcotest.(check string) "floating net named" "f" (Diag.loc_name d.Diag.loc)

let test_multi_driven_fixture () =
  let c = load_fixture "multi_driven.circ" in
  let diags = Structural.check c in
  let d = at "SA402" diags in
  Alcotest.(check string) "contended net named" "o" (Diag.loc_name d.Diag.loc);
  Alcotest.(check int) "both drivers listed" 2 (List.length d.Diag.related)

let test_unused_input_and_families () =
  let open Circuit.Build in
  let ctx = create "sloppy" in
  let u0 = input ctx "v[0]" in
  let _gap = input ctx "v[2]" in
  let unused = input ctx "spare" in
  ignore unused;
  let r = reg ctx "r" in
  assign ctx r (u0 ^^^ r);
  output ctx "o" r;
  let diags = Structural.check_circuit (finish ctx) in
  Alcotest.(check bool) "unused input flagged" true
    (List.exists
       (fun d -> d.Diag.code = "SA403" && Diag.loc_name d.Diag.loc = "spare")
       diags);
  (* v[2] is also unused, but the family check reports the gap once *)
  let fam = at "SA406" diags in
  Alcotest.(check string) "family base" "v[]" (Diag.loc_name fam.Diag.loc)

let test_duplicate_names_and_range () =
  let c =
    {
      Circuit.name = "dup";
      input_names = [| "x" |];
      regs =
        [|
          { Circuit.name = "x"; group = "g"; init = false; next = Expr.input 0 };
          { Circuit.name = "y"; group = "g"; init = false; next = Expr.input 5 };
        |];
      outputs = [| { Circuit.port_name = "o"; expr = Expr.reg 0 } |];
      input_constraint = Expr.tru;
    }
  in
  let diags = Structural.check_circuit c in
  Alcotest.(check int) "duplicate name" 1 (count_code "SA404" diags);
  Alcotest.(check int) "out-of-range leaf" 1 (count_code "SA405" diags);
  (* the orchestrator must survive this circuit: lowering would crash,
     so the lowering-dependent passes are skipped *)
  let r = Lint.run ~name:"dup" c in
  Alcotest.(check bool) "still reports SA405" true (has "SA405" r.Lint.diags);
  Alcotest.(check int) "lowering skipped" 0 r.Lint.n_nets;
  Alcotest.(check bool) "ternary not attempted" false
    (List.mem "ternary-const" r.Lint.passes)

(* ---- homo-precheck ---- *)

let test_mapping_output_conflict () =
  let m = Fsm.of_table [ (0, 0, 1, 0); (1, 0, 0, 1) ] in
  let map =
    {
      Homomorphism.n_abs_states = 1;
      n_abs_inputs = 1;
      state_map = (fun _ -> 0);
      input_map = Fun.id;
      output_map = Fun.id;
    }
  in
  let diags = Homo_precheck.check_mapping m map in
  Alcotest.(check bool) "merged-output conflict found" true (has "SA504" diags);
  (* cross-check: the full quotient construction rejects it too *)
  Alcotest.(check bool) "quotient agrees" true
    (Result.is_error (Homomorphism.quotient m map))

let test_mapping_surjectivity_and_range () =
  let m = Fsm.of_table [ (0, 0, 1, 0); (1, 0, 0, 0) ] in
  let wide =
    {
      Homomorphism.n_abs_states = 3;
      n_abs_inputs = 2;
      state_map = Fun.id;
      input_map = Fun.id;
      output_map = Fun.id;
    }
  in
  let diags = Homo_precheck.check_mapping m wide in
  Alcotest.(check bool) "unused abstract state" true (has "SA502" diags);
  Alcotest.(check bool) "unused abstract input" true (has "SA503" diags);
  let broken = { wide with Homomorphism.state_map = (fun _ -> 7) } in
  Alcotest.(check bool) "image out of range" true
    (has "SA501" (Homo_precheck.check_mapping m broken))

let test_cone_compatibility () =
  let open Circuit.Build in
  let mk deps =
    let ctx = create "cones" in
    let i = input ctx "i" in
    let a = reg ctx "a" in
    let b = reg ctx "b" in
    assign ctx a (if deps then a ^^^ b else a ^^^ i);
    assign ctx b (b ^^^ i);
    output ctx "o" a;
    finish ctx
  in
  let concrete = mk false and abstract = mk true in
  let diags = Homo_precheck.check_circuits ~concrete ~abstract in
  let d = at "SA505" diags in
  Alcotest.(check string) "offending register" "a" (Diag.loc_name d.Diag.loc);
  Alcotest.(check (list string)) "introduced dependency" [ "b" ] d.Diag.related;
  Alcotest.(check (list string)) "identity is compatible" []
    (codes (Homo_precheck.check_circuits ~concrete ~abstract:concrete))

(* ---- DLX regressions ---- *)

let test_dlx_models_lint_clean () =
  let impl = Simcov_dlx.Control.build () in
  let r = Lint.run ~name:"dlx-control" impl in
  Alcotest.(check bool) "control model fully clean" true (Lint.worst r = None);
  let test_model, _ = Simcov_dlx.Control.derive_test_model () in
  let rt = Lint.run ~name:"dlx-test" ~against:impl test_model in
  Alcotest.(check int) "derived model has no errors" 0 (Lint.count rt Diag.Error);
  Alcotest.(check bool) "homo precheck ran" true
    (List.mem "homo-precheck" rt.Lint.passes)

let test_dlx_hints_match_abstraction_chain () =
  (* mid-chain, after the dbg_* outputs are dropped but before
     cone_reduce: the latches the analyzer hints are exactly the ones
     the chain's cone_reduce step then removes *)
  let impl = Simcov_dlx.Control.build () in
  let prefix = List.filteri (fun i _ -> i < 3) Simcov_dlx.Control.abstraction_sequence in
  let c3, _ = Netabs.run_sequence impl prefix in
  let mid =
    Netabs.drop_outputs c3 ~keep:(fun n ->
        not (String.length n >= 4 && String.sub n 0 4 = "dbg_"))
  in
  let hs = Deadlogic.hints mid in
  Alcotest.(check bool) "dropping dbg outputs exposes dead latches" true
    (List.length hs > 0);
  let reduced = Netabs.cone_reduce mid in
  let hinted = List.map (fun h -> h.Deadlogic.reg_name) hs in
  let survives n =
    Array.exists (fun (r : Circuit.reg) -> r.Circuit.name = n) reduced.Circuit.regs
  in
  Alcotest.(check (list string)) "every hinted latch is removed by the chain" []
    (List.filter survives hinted);
  Alcotest.(check int) "and nothing else is removed"
    (Circuit.n_regs mid - List.length hs)
    (Circuit.n_regs reduced)

(* ---- report plumbing ---- *)

let test_json_round_trip () =
  let c = load_fixture "dead_latch.circ" in
  let r = Lint.run ~name:"dead-latch" ~against:c c in
  let text = Json.to_string (Lint.to_json r) in
  match Json.parse text with
  | Error e -> Alcotest.failf "report does not re-parse: %s" e
  | Ok j -> (
      match Lint.of_json j with
      | Error e -> Alcotest.failf "schema mismatch: %s" e
      | Ok r' ->
          Alcotest.(check bool) "identical after round trip" true (r = r'))

let test_diag_codes_in_catalog () =
  let catalog_codes =
    List.map (fun e -> e.Diag.entry_code) Diag.catalog
  in
  Alcotest.(check int) "33 stable codes" 33 (List.length catalog_codes);
  Alcotest.(check int) "codes are unique" 33
    (List.length (List.sort_uniq String.compare catalog_codes));
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (Printf.sprintf "%s has a title" e.Diag.entry_code)
        true
        (String.length e.Diag.title > 0);
      Alcotest.(check bool)
        (Printf.sprintf "%s has a fix" e.Diag.entry_code)
        true
        (String.length e.Diag.fix > 0))
    Diag.catalog;
  (* explain is the single source of truth the CLI prints from *)
  (match Diag.explain "SA610" with
  | None -> Alcotest.fail "SA610 missing from catalog"
  | Some e -> Alcotest.(check bool) "SA610 is an error" true (e.Diag.default_severity = Diag.Error));
  Alcotest.(check bool) "unknown code not explained" true
    (Diag.explain "SA999" = None);
  List.iter
    (fun fixture ->
      let r = Lint.run (load_fixture fixture) in
      List.iter
        (fun d ->
          Alcotest.(check bool)
            (Printf.sprintf "%s is catalogued" d.Diag.code)
            true
            (List.mem d.Diag.code catalog_codes))
        r.Lint.diags)
    [ "stuck.circ"; "dead_latch.circ"; "multi_driven.circ" ]

let test_budget_truncation () =
  let c = load_fixture "stuck.circ" in
  let budget = Budget.create ~max_steps:1 () in
  let r = Lint.run ~budget ~name:"tight" c in
  Alcotest.(check bool) "truncation reported, not raised" true
    (r.Lint.truncated = Some Budget.Steps);
  (* truncation must name what was NOT checked, and the skipped list must
     not claim passes that did complete *)
  Alcotest.(check bool) "skipped passes recorded" true (r.Lint.skipped <> []);
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "%s not both completed and skipped" p)
        false
        (List.mem p r.Lint.passes))
    r.Lint.skipped;
  (* skipped survives the JSON round trip *)
  (match Json.parse (Json.to_string (Lint.to_json r)) with
  | Error e -> Alcotest.failf "truncated report does not re-parse: %s" e
  | Ok j -> (
      match Lint.of_json j with
      | Error e -> Alcotest.failf "schema mismatch: %s" e
      | Ok r' ->
          Alcotest.(check (list string))
            "skipped round-trips" r.Lint.skipped r'.Lint.skipped));
  let full = Lint.run ~name:"untight" c in
  Alcotest.(check (list string)) "nothing skipped without budget" [] full.Lint.skipped

let test_fail_on_thresholds () =
  let clean = Lint.run (load_fixture "dead_latch.circ") in
  Alcotest.(check bool) "warnings fail --fail-on warning" true
    (Lint.fails clean ~threshold:Diag.Warning);
  Alcotest.(check bool) "warnings pass --fail-on error" false
    (Lint.fails clean ~threshold:Diag.Error);
  Alcotest.(check bool) "warnings fail --fail-on info" true
    (Lint.fails clean ~threshold:Diag.Info);
  let bad = Lint.run (load_fixture "multi_driven.circ") in
  Alcotest.(check bool) "errors fail --fail-on error" true
    (Lint.fails bad ~threshold:Diag.Error);
  let empty = { clean with Lint.diags = [] } in
  Alcotest.(check bool) "no diags never fails, even on info" false
    (Lint.fails empty ~threshold:Diag.Info)

let suite =
  [
    Alcotest.test_case "comb cycle in hand graph" `Quick test_comb_cycle_hand_graph;
    Alcotest.test_case "comb self loop" `Quick test_comb_self_loop;
    Alcotest.test_case "lowered circuits acyclic" `Quick test_lowered_circuits_are_acyclic;
    Alcotest.test_case "stuck register fixture" `Quick test_stuck_register_fixture;
    Alcotest.test_case "stuck vs stuck-at faults" `Quick test_stuck_crosschecks_stuckat;
    Alcotest.test_case "hold enables" `Quick test_hold_enables;
    Alcotest.test_case "constant-false constraint" `Quick test_constant_false_constraint;
    Alcotest.test_case "dead latch fixture" `Quick test_dead_latch_fixture;
    Alcotest.test_case "constraint-only latch hint" `Quick test_constraint_only_latch_hint;
    Alcotest.test_case "floating net" `Quick test_floating_net;
    Alcotest.test_case "multi-driven fixture" `Quick test_multi_driven_fixture;
    Alcotest.test_case "unused input, vector families" `Quick test_unused_input_and_families;
    Alcotest.test_case "duplicate names, range guard" `Quick test_duplicate_names_and_range;
    Alcotest.test_case "mapping output conflict" `Quick test_mapping_output_conflict;
    Alcotest.test_case "mapping surjectivity/range" `Quick test_mapping_surjectivity_and_range;
    Alcotest.test_case "cone compatibility" `Quick test_cone_compatibility;
    Alcotest.test_case "dlx models lint clean" `Quick test_dlx_models_lint_clean;
    Alcotest.test_case "dlx hints match chain" `Quick test_dlx_hints_match_abstraction_chain;
    Alcotest.test_case "json round trip" `Quick test_json_round_trip;
    Alcotest.test_case "diag codes catalogued" `Quick test_diag_codes_in_catalog;
    Alcotest.test_case "budget truncation" `Quick test_budget_truncation;
    Alcotest.test_case "fail-on thresholds" `Quick test_fail_on_thresholds;
    QCheck_alcotest.to_alcotest qcheck_ternary_sound;
    QCheck_alcotest.to_alcotest qcheck_hints_match_output_cone;
  ]
