open Simcov_netlist

let ( !! ) = Expr.( !! )
let ( &&& ) = Expr.( &&& )
let ( ||| ) = Expr.( ||| )
let ( ^^^ ) = Expr.( ^^^ )

let test_expr_folding () =
  Alcotest.(check bool) "and false" true (Expr.fls &&& Expr.input 0 = Expr.fls);
  Alcotest.(check bool) "and true" true (Expr.tru &&& Expr.input 0 = Expr.input 0);
  Alcotest.(check bool) "or true" true (Expr.tru ||| Expr.input 0 = Expr.tru);
  Alcotest.(check bool) "xor self" true (Expr.input 1 ^^^ Expr.input 1 = Expr.fls);
  Alcotest.(check bool) "double negation" true (!!(!!(Expr.input 2)) = Expr.input 2);
  Alcotest.(check bool) "mux const sel" true
    (Expr.mux Expr.tru (Expr.input 0) (Expr.input 1) = Expr.input 0);
  Alcotest.(check bool) "mux same branches" true
    (Expr.mux (Expr.input 2) (Expr.input 0) (Expr.input 0) = Expr.input 0)

let test_expr_eval () =
  let e = Expr.mux (Expr.input 0) (Expr.reg 0 &&& Expr.input 1) (!!(Expr.reg 1)) in
  let eval i0 i1 r0 r1 =
    Expr.eval
      ~inputs:(fun i -> if i = 0 then i0 else i1)
      ~regs:(fun r -> if r = 0 then r0 else r1)
      e
  in
  Alcotest.(check bool) "sel=1 path" true (eval true true true false);
  Alcotest.(check bool) "sel=1 path false" false (eval true false true false);
  Alcotest.(check bool) "sel=0 path" true (eval false false false false);
  Alcotest.(check bool) "sel=0 path false" false (eval false false false true)

let test_expr_support () =
  let e = Expr.input 3 &&& (Expr.reg 1 ||| Expr.reg 4) in
  let ins, regs = Expr.support e in
  Alcotest.(check (list int)) "inputs" [ 3 ] ins;
  Alcotest.(check (list int)) "regs" [ 1; 4 ] regs

let test_expr_map_leaves () =
  let e = Expr.input 0 &&& Expr.reg 0 in
  let e' = Expr.map_leaves ~input:(fun _ -> Expr.tru) ~reg:(fun r -> Expr.reg (r + 1)) e in
  Alcotest.(check bool) "substituted and folded" true (e' = Expr.reg 1)

let test_vec_ops () =
  let v = Expr.Vec.const ~width:4 0b1010 in
  let ev = Expr.eval ~inputs:(fun _ -> false) ~regs:(fun _ -> false) in
  Alcotest.(check bool) "eq_const matches" true (ev (Expr.Vec.eq_const v 0b1010));
  Alcotest.(check bool) "eq_const mismatch" false (ev (Expr.Vec.eq_const v 0b1011));
  Alcotest.(check int) "vec eval" 0b1010
    (Expr.Vec.eval ~inputs:(fun _ -> false) ~regs:(fun _ -> false) v)

let test_vec_onehot () =
  let ev = Expr.eval ~inputs:(fun _ -> false) ~regs:(fun _ -> false) in
  Alcotest.(check bool) "one bit set" true
    (ev (Expr.Vec.onehot (Expr.Vec.const ~width:4 0b0100)));
  Alcotest.(check bool) "two bits set" false
    (ev (Expr.Vec.onehot (Expr.Vec.const ~width:4 0b0101)));
  Alcotest.(check bool) "zero bits set" false
    (ev (Expr.Vec.onehot (Expr.Vec.const ~width:4 0)))

(* A 2-bit counter with enable input and a wrap output. *)
let counter_circuit () =
  let open Circuit.Build in
  let ctx = create "counter2" in
  let en = input ctx "en" in
  let b0 = reg ctx ~group:"count" "b0" in
  let b1 = reg ctx ~group:"count" "b1" in
  assign ctx b0 (Expr.mux en (!!b0) b0);
  assign ctx b1 (Expr.mux en (b1 ^^^ b0) b1);
  output ctx "wrap" (en &&& b0 &&& b1);
  finish ctx

let test_build_and_simulate () =
  let c = counter_circuit () in
  Alcotest.(check int) "inputs" 1 (Circuit.n_inputs c);
  Alcotest.(check int) "regs" 2 (Circuit.n_regs c);
  (* count 0,1,2,3 -> wrap on the step leaving 3 *)
  let outs = Circuit.simulate c [ [| true |]; [| true |]; [| true |]; [| true |] ] in
  let wraps = List.map (fun o -> o.(0)) outs in
  Alcotest.(check (list bool)) "wrap on last" [ false; false; false; true ] wraps

let test_simulate_disabled () =
  let c = counter_circuit () in
  let outs = Circuit.simulate c [ [| false |]; [| false |] ] in
  Alcotest.(check bool) "never wraps" true (List.for_all (fun o -> not o.(0)) outs)

let test_reg_index_groups () =
  let c = counter_circuit () in
  Alcotest.(check int) "b1 index" 1 (Circuit.reg_index c "b1");
  Alcotest.(check (list int)) "group" [ 0; 1 ] (Circuit.regs_in_group c "count");
  Alcotest.(check (list string)) "groups" [ "count" ] (Circuit.groups c)

let test_constraint_blocks_input () =
  let open Circuit.Build in
  let ctx = create "constrained" in
  let a = input ctx "a" in
  let b = input ctx "b" in
  let r = reg ctx "r" in
  assign ctx r (a ^^^ b);
  output ctx "o" r;
  constrain ctx (!!(a &&& b));
  let c = finish ctx in
  Alcotest.(check bool) "valid input" true
    (Circuit.input_valid c (Circuit.initial_state c) [| true; false |]);
  Alcotest.(check bool) "invalid input" false
    (Circuit.input_valid c (Circuit.initial_state c) [| true; true |]);
  Alcotest.(check bool) "step rejects invalid" true
    (try
       ignore (Circuit.step c (Circuit.initial_state c) [| true; true |]);
       false
     with Invalid_argument _ -> true)

let test_unassigned_register_fails () =
  let open Circuit.Build in
  let ctx = create "bad" in
  let _ = reg ctx "r" in
  match finish ctx with
  | _ -> Alcotest.fail "finish should fail"
  | exception Build_error e ->
      Alcotest.(check (list string)) "never assigned" [ "r" ] e.never_assigned;
      Alcotest.(check (list string)) "no dups" [] e.doubly_assigned

let test_build_errors_collected () =
  (* every offender reported in one error, not just the first *)
  let open Circuit.Build in
  let ctx = create "bad" in
  let a = reg ctx "a" in
  let _ = reg ctx "b" in
  let c = reg ctx "c" in
  let _ = reg ctx "d" in
  assign ctx a Expr.tru;
  assign ctx a Expr.fls;
  assign ctx c Expr.tru;
  assign ctx c Expr.fls;
  assign ctx c Expr.tru;
  match finish ctx with
  | _ -> Alcotest.fail "finish should fail"
  | exception Build_error e ->
      Alcotest.(check string) "circuit" "bad" e.circuit;
      Alcotest.(check (list string)) "dups" [ "a"; "c"; "c" ] e.doubly_assigned;
      Alcotest.(check (list string)) "missing" [ "b"; "d" ] e.never_assigned;
      Alcotest.(check bool) "message mentions both" true
        (let s = build_error_to_string e in
         let has sub =
           let n = String.length s and m = String.length sub in
           let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
           go 0
         in
         has "assigned twice" && has "never assigned")

let test_cone_analysis () =
  let open Circuit.Build in
  let ctx = create "cone" in
  let i = input ctx "i" in
  let a = reg ctx "a" in
  let b = reg ctx "b" in
  let dead = reg ctx "dead" in
  assign ctx a i;
  assign ctx b a;
  assign ctx dead (Expr.( !! ) dead);
  output ctx "o" b;
  let c = finish ctx in
  Alcotest.(check (list int)) "output cone excludes dead" [ 0; 1 ] (Circuit.output_cone c);
  Alcotest.(check (list int)) "closure of b pulls a" [ 0; 1 ]
    (Circuit.reg_support_closure c [ 1 ])

let test_to_fsm_matches_simulation () =
  let c = counter_circuit () in
  let m = Circuit.to_fsm c in
  Alcotest.(check int) "4 states" 4 m.Simcov_fsm.Fsm.n_states;
  Alcotest.(check int) "2 inputs" 2 m.Simcov_fsm.Fsm.n_inputs;
  (* run the same random words through circuit and fsm *)
  let rng = Simcov_util.Rng.create 21 in
  for _ = 1 to 20 do
    let word = List.init 8 (fun _ -> Simcov_util.Rng.int rng 2) in
    let fsm_outs = Simcov_fsm.Fsm.output_word m word in
    let circ_outs =
      Circuit.simulate c (List.map (fun v -> [| v = 1 |]) word)
      |> List.map (fun o -> if o.(0) then 1 else 0)
    in
    Alcotest.(check (list int)) "outputs agree" circ_outs fsm_outs
  done

let test_to_fsm_respects_constraint () =
  let open Circuit.Build in
  let ctx = create "constrained" in
  let a = input ctx "a" in
  let b = input ctx "b" in
  let r = reg ctx "r" in
  assign ctx r (a ||| b);
  output ctx "o" r;
  constrain ctx (!!(a &&& b));
  let c = finish ctx in
  let m = Circuit.to_fsm c in
  Alcotest.(check bool) "11 invalid" false (m.Simcov_fsm.Fsm.valid 0 3);
  Alcotest.(check bool) "01 valid" true (m.Simcov_fsm.Fsm.valid 0 1)

let test_to_fsm_size_guard () =
  let open Circuit.Build in
  let ctx = create "big" in
  let i = input ctx "i" in
  let v = reg_vec ctx "v" 25 in
  Array.iter (fun r -> assign ctx r (i &&& r)) v;
  output ctx "o" v.(0);
  let c = finish ctx in
  Alcotest.(check bool) "guard trips" true
    (try
       ignore (Circuit.to_fsm c);
       false
     with Invalid_argument _ -> true)

let qcheck_expr_eval_vs_bdd_semantics =
  (* map_leaves with identity must preserve evaluation *)
  QCheck.Test.make ~name:"netlist: identity map_leaves preserves eval" ~count:100
    QCheck.(pair (int_bound 15) (int_bound 15))
    (fun (iv, rv) ->
      let e =
        Expr.mux (Expr.input 0)
          (Expr.input 1 &&& Expr.reg 0)
          (Expr.reg 1 ^^^ (Expr.input 2 ||| Expr.reg 2))
      in
      let e' = Expr.map_leaves ~input:Expr.input ~reg:Expr.reg e in
      let inputs i = (iv lsr i) land 1 = 1 and regs r = (rv lsr r) land 1 = 1 in
      Expr.eval ~inputs ~regs e = Expr.eval ~inputs ~regs e')

let suite =
  [
    Alcotest.test_case "expr folding" `Quick test_expr_folding;
    Alcotest.test_case "expr eval" `Quick test_expr_eval;
    Alcotest.test_case "expr support" `Quick test_expr_support;
    Alcotest.test_case "expr map_leaves" `Quick test_expr_map_leaves;
    Alcotest.test_case "vec ops" `Quick test_vec_ops;
    Alcotest.test_case "vec onehot" `Quick test_vec_onehot;
    Alcotest.test_case "build and simulate" `Quick test_build_and_simulate;
    Alcotest.test_case "simulate disabled" `Quick test_simulate_disabled;
    Alcotest.test_case "reg index/groups" `Quick test_reg_index_groups;
    Alcotest.test_case "constraint blocks input" `Quick test_constraint_blocks_input;
    Alcotest.test_case "unassigned register" `Quick test_unassigned_register_fails;
    Alcotest.test_case "build errors collected" `Quick test_build_errors_collected;
    Alcotest.test_case "cone analysis" `Quick test_cone_analysis;
    Alcotest.test_case "to_fsm matches simulation" `Quick test_to_fsm_matches_simulation;
    Alcotest.test_case "to_fsm respects constraint" `Quick test_to_fsm_respects_constraint;
    Alcotest.test_case "to_fsm size guard" `Quick test_to_fsm_size_guard;
    QCheck_alcotest.to_alcotest qcheck_expr_eval_vs_bdd_semantics;
  ]
