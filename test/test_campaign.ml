(* The lockstep-equivalence contract of the unified campaign engine:
   the bit-parallel batched driver must agree with the scalar
   one-mutant-per-pass reference, verdict by verdict — detection,
   excitation, and the step each first occurred at — across lane
   boundaries and under budget truncation. *)

open Simcov_fsm
open Simcov_coverage
module Campaign = Simcov_campaign.Campaign
module Budget = Simcov_util.Budget
module Rng = Simcov_util.Rng

let verdict_eq (a : Campaign.verdict) (b : Campaign.verdict) =
  a.detected = b.detected && a.excited = b.excited
  && a.detect_step = b.detect_step
  && a.excite_step = b.excite_step

let check_outcomes_agree ~what (scalar : Fault.t Campaign.outcome)
    (batched : Fault.t Campaign.outcome) =
  let s = scalar.Campaign.report and b = batched.Campaign.report in
  if
    s.Campaign.effective <> b.Campaign.effective
    || s.Campaign.excited <> b.Campaign.excited
    || s.Campaign.detected <> b.Campaign.detected
  then
    QCheck.Test.fail_reportf
      "%s: report mismatch (scalar eff/exc/det %d/%d/%d, batched %d/%d/%d)" what
      s.Campaign.effective s.Campaign.excited s.Campaign.detected
      b.Campaign.effective b.Campaign.excited b.Campaign.detected;
  List.iter2
    (fun (fs, vs) (fb, vb) ->
      if not (Fault.equal fs fb) then
        QCheck.Test.fail_reportf "%s: verdict order differs" what;
      if not (verdict_eq vs vb) then
        QCheck.Test.fail_reportf
          "%s: verdict mismatch on %a (scalar det=%b@%s exc=%b@%s, batched \
           det=%b@%s exc=%b@%s)"
          what Fault.pp fs vs.Campaign.detected
          (match vs.Campaign.detect_step with Some n -> string_of_int n | None -> "-")
          vs.Campaign.excited
          (match vs.Campaign.excite_step with Some n -> string_of_int n | None -> "-")
          vb.Campaign.detected
          (match vb.Campaign.detect_step with Some n -> string_of_int n | None -> "-")
          vb.Campaign.excited
          (match vb.Campaign.excite_step with Some n -> string_of_int n | None -> "-"))
    scalar.Campaign.verdicts batched.Campaign.verdicts;
  true

(* a machine, a fault population mixing all three kinds, and a word *)
let random_instance seed =
  let rng = Rng.create seed in
  let n_states = 3 + Rng.int rng 20 in
  let n_inputs = 2 + Rng.int rng 3 in
  let n_outputs = 2 + Rng.int rng 3 in
  let m = Fsm.tabulate (Fsm.random_connected rng ~n_states ~n_inputs ~n_outputs) in
  let faults =
    Fault.sample_transfer_faults rng m ~count:20
    @ Fault.sample_output_faults rng m ~n_outputs ~count:20
    @ List.filter_map
        (fun (s, i, _, o) ->
          if Rng.int rng 10 = 0 then
            Some
              (Fault.Conditional_output
                 {
                   state = s;
                   input = i;
                   wrong_output = (o + 1) mod (n_outputs + 1);
                   prev = (Rng.int rng n_states, Rng.int rng n_inputs);
                 })
          else None)
        (Fsm.transitions m)
  in
  let word = Simcov_testgen.Tour.random_word rng m ~length:(20 + Rng.int rng 120) in
  (m, faults, word)

let qcheck_batched_eq_scalar =
  QCheck.Test.make
    ~name:"campaign: batched verdicts = scalar verdicts (total machines)" ~count:80
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let m, faults, word = random_instance seed in
      check_outcomes_agree ~what:"total machine"
        (Detect.campaign_scalar m faults word)
        (Detect.campaign_outcome m faults word))

(* partial machines: random validity holes exercise the halt path
   (golden rejects the next input) where a diverged mutant that still
   accepts it counts as detected *)
let random_partial_instance seed =
  let rng = Rng.create seed in
  let n_states = 3 + Rng.int rng 6 in
  let n_inputs = 2 + Rng.int rng 2 in
  let rows = ref [] in
  for s = 0 to n_states - 1 do
    for i = 0 to n_inputs - 1 do
      (* keep every state exit-capable via input 0; drop others freely *)
      if i = 0 || Rng.int rng 10 < 7 then
        rows := (s, i, Rng.int rng n_states, Rng.int rng 3) :: !rows
    done
  done;
  let m = Fsm.tabulate (Fsm.of_table (List.rev !rows)) in
  let faults =
    Fault.sample_transfer_faults rng m ~count:15
    @ Fault.sample_output_faults rng m ~n_outputs:3 ~count:15
  in
  (* deliberately unconstrained inputs: some steps are invalid on the
     golden machine, stopping the campaign word early *)
  let word = List.init (10 + Rng.int rng 60) (fun _ -> Rng.int rng n_inputs) in
  (m, faults, word)

let qcheck_batched_eq_scalar_partial =
  QCheck.Test.make
    ~name:"campaign: batched = scalar on partial machines (halt semantics)"
    ~count:80
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let m, faults, word = random_partial_instance seed in
      check_outcomes_agree ~what:"partial machine"
        (Detect.campaign_scalar m faults word)
        (Detect.campaign_outcome m faults word))

(* out-of-alphabet stimuli: an input >= n_inputs is invalid in every
   state. The flat-table paths (tabulate's wrappers, the batched
   backend's site keys) used to index [s * k + i] with such an input,
   aliasing into state s+1's row — phantom transitions, phantom site
   hits, and an out-of-bounds read at the last state. QCheck found the
   original instance at seed 31382. *)
let test_out_of_alphabet_inputs () =
  let m =
    Fsm.tabulate
      (Fsm.of_table [ (0, 0, 1, 0); (0, 1, 2, 1); (1, 0, 2, 0); (2, 0, 0, 2) ])
  in
  (* tabulate's valid must bounds-check, including at the last state
     where the aliased index would run off the table *)
  Alcotest.(check bool) "input 2 invalid at s0" false (m.Fsm.valid 0 2);
  Alcotest.(check bool) "input 2 invalid at last state" false (m.Fsm.valid 2 2);
  Alcotest.(check bool) "input -1 invalid" false (m.Fsm.valid 1 (-1));
  let faults =
    List.filter (Fault.is_effective m)
      (Fault.all_transfer_faults m @ Fault.all_output_faults m)
  in
  Alcotest.(check bool) "population not empty" true (faults <> []);
  (* golden accepts the prefix [0; 0], then input 3 halts the word for
     golden and every mutant alike: nothing after it may count *)
  List.iter
    (fun word ->
      ignore
        (check_outcomes_agree ~what:"out-of-alphabet word"
           (Detect.campaign_scalar m faults word)
           (Detect.campaign_outcome m faults word)))
    [ [ 3 ]; [ 2; 0; 0 ]; [ 0; 0; 3; 0; 1 ]; [ 0; 2; 1; 0 ]; [ 0; 0; 0; 5 ] ];
  let halted = Detect.campaign m faults [ 3; 0; 0; 0 ] in
  Alcotest.(check int) "nothing detected past the halt" 0
    halted.Campaign.detected

(* lane-boundary fault counts: 1, Sys.int_size - 1, exactly one word,
   one word + 1, two words + 1 *)
let test_lane_boundaries () =
  let rng = Rng.create 42 in
  let m =
    Fsm.tabulate (Fsm.random_connected rng ~n_states:15 ~n_inputs:3 ~n_outputs:3)
  in
  let all = List.filter (Fault.is_effective m) (Fault.all_transfer_faults m) in
  let word = Simcov_testgen.Tour.random_word rng m ~length:200 in
  Alcotest.(check bool)
    "enough faults for the largest boundary" true
    (List.length all >= 127);
  List.iter
    (fun n ->
      let faults = List.filteri (fun i _ -> i < n) all in
      let scalar = Detect.campaign_scalar m faults word in
      let batched = Detect.campaign_outcome m faults word in
      ignore
        (check_outcomes_agree
           ~what:(Printf.sprintf "%d faults" n)
           scalar batched);
      Alcotest.(check int)
        (Printf.sprintf "%d faults: all evaluated" n)
        n batched.Campaign.report.Campaign.effective)
    [ 1; 62; 63; 64; 127 ]

(* budget truncation: whole batches are evaluated or skipped, and the
   evaluated prefix carries exactly the scalar verdicts *)
let test_budget_truncation_prefix () =
  let rng = Rng.create 7 in
  let m =
    Fsm.tabulate (Fsm.random_connected rng ~n_states:12 ~n_inputs:3 ~n_outputs:3)
  in
  let all = List.filter (Fault.is_effective m) (Fault.all_transfer_faults m) in
  let faults = List.filteri (fun i _ -> i < 150) all in
  let word = Simcov_testgen.Tour.random_word rng m ~length:150 in
  let full = Detect.campaign_scalar m faults word in
  let budget = Budget.create ~max_steps:1 () in
  let truncated = Detect.campaign_outcome ~budget m faults word in
  let r = truncated.Campaign.report in
  (match r.Campaign.truncated with
  | Some Budget.Steps -> ()
  | Some res -> Alcotest.failf "wrong resource: %s" (Budget.resource_name res)
  | None -> Alcotest.fail "campaign was not truncated");
  Alcotest.(check int) "whole batches only" 0 (r.Campaign.effective mod Sys.int_size);
  Alcotest.(check bool) "some faults skipped" true (r.Campaign.skipped > 0);
  Alcotest.(check int) "effective + skipped = population"
    (List.length faults)
    (r.Campaign.effective + r.Campaign.skipped);
  (* the evaluated prefix agrees with the scalar reference, fault by
     fault, and the counters are exactly the prefix's *)
  let prefix =
    List.filteri (fun i _ -> i < r.Campaign.effective) full.Campaign.verdicts
  in
  List.iter2
    (fun (fs, vs) (ft, vt) ->
      Alcotest.(check bool) "same fault" true (Fault.equal fs ft);
      Alcotest.(check bool) "same verdict" true (verdict_eq vs vt))
    prefix truncated.Campaign.verdicts;
  let count p = List.length (List.filter (fun (_, v) -> p v) prefix) in
  Alcotest.(check int) "prefix detected" (count (fun v -> v.Campaign.detected))
    r.Campaign.detected;
  Alcotest.(check int) "prefix excited" (count (fun v -> v.Campaign.excited))
    r.Campaign.excited

(* ---- wide lanes and domain sharding ----

   The wide bit-sliced backend and the sharded driver must be
   observationally identical to the scalar reference (and hence to the
   native-int oracle): same verdicts, same order, same counters. *)

let qcheck_wide_eq_scalar =
  QCheck.Test.make
    ~name:"campaign: wide lanes / sharded = scalar (total machines)" ~count:40
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let m, faults, word = random_instance seed in
      let scalar = Detect.campaign_scalar m faults word in
      ignore
        (check_outcomes_agree ~what:"wide 256" scalar
           (Detect.campaign_outcome ~lanes:256 m faults word));
      ignore
        (check_outcomes_agree ~what:"wide 512, jobs 2" scalar
           (Detect.campaign_outcome ~lanes:512 ~jobs:2 m faults word));
      check_outcomes_agree ~what:"native lanes, jobs 3" scalar
        (Detect.campaign_outcome ~jobs:3 m faults word))

let qcheck_wide_eq_scalar_partial =
  QCheck.Test.make
    ~name:"campaign: wide lanes / sharded = scalar (partial machines)" ~count:40
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let m, faults, word = random_partial_instance seed in
      let scalar = Detect.campaign_scalar m faults word in
      ignore
        (check_outcomes_agree ~what:"partial, wide 256" scalar
           (Detect.campaign_outcome ~lanes:256 m faults word));
      check_outcomes_agree ~what:"partial, wide 256 jobs 2" scalar
        (Detect.campaign_outcome ~lanes:256 ~jobs:2 m faults word))

(* wide lane-boundary fault counts around one native word (63/64), one
   wide-word boundary (255/256/257) and a full 512-lane batch *)
let test_wide_lane_boundaries () =
  let rng = Rng.create 43 in
  let m =
    Fsm.tabulate (Fsm.random_connected rng ~n_states:22 ~n_inputs:3 ~n_outputs:3)
  in
  let all = List.filter (Fault.is_effective m) (Fault.all_transfer_faults m) in
  let word = Simcov_testgen.Tour.random_word rng m ~length:250 in
  Alcotest.(check bool)
    "enough faults for the largest boundary" true
    (List.length all >= 512);
  List.iter
    (fun n ->
      let faults = List.filteri (fun i _ -> i < n) all in
      let scalar = Detect.campaign_scalar m faults word in
      List.iter
        (fun lanes ->
          let o = Detect.campaign_outcome ~lanes m faults word in
          ignore
            (check_outcomes_agree
               ~what:(Printf.sprintf "%d faults at %d lanes" n lanes)
               scalar o);
          Alcotest.(check int)
            (Printf.sprintf "%d faults at %d lanes: all evaluated" n lanes)
            n o.Campaign.report.Campaign.effective)
        [ 256; 512 ])
    [ 63; 64; 255; 256; 257; 512 ]

(* sharded truncation: each shard evaluates whole batches forming a
   prefix of its contiguous slice; the merged verdict list is exactly
   the concatenation of those shard prefixes, and every evaluated
   verdict equals the scalar reference's *)
let test_sharded_truncation_prefix () =
  let rng = Rng.create 9 in
  let m =
    Fsm.tabulate (Fsm.random_connected rng ~n_states:12 ~n_inputs:3 ~n_outputs:3)
  in
  let all = List.filter (Fault.is_effective m) (Fault.all_transfer_faults m) in
  let faults = List.filteri (fun i _ -> i < 200) all in
  let word = Simcov_testgen.Tour.random_word rng m ~length:150 in
  let full = Detect.campaign_scalar m faults word in
  let scalar_verdicts = Array.of_list full.Campaign.verdicts in
  let n = Array.length scalar_verdicts in
  let jobs = 2 in
  let budget = Budget.create ~max_steps:jobs () in
  let o = Detect.campaign_outcome ~budget ~jobs m faults word in
  let r = o.Campaign.report in
  (match r.Campaign.truncated with
  | Some Budget.Steps -> ()
  | Some res -> Alcotest.failf "wrong resource: %s" (Budget.resource_name res)
  | None -> Alcotest.fail "campaign was not truncated");
  Alcotest.(check int) "effective + skipped = population" n
    (r.Campaign.effective + r.Campaign.skipped);
  Alcotest.(check bool) "some faults skipped" true (r.Campaign.skipped > 0);
  let ranges = Campaign.shard_ranges ~n ~jobs in
  let rem = ref o.Campaign.verdicts in
  let evaluated = ref 0 in
  Array.iter
    (fun (off, len) ->
      let j = ref 0 in
      let continue_matching = ref true in
      while !continue_matching do
        match !rem with
        | (f, v) :: tl
          when !j < len && Fault.equal f (fst scalar_verdicts.(off + !j)) ->
            Alcotest.(check bool) "verdict equals scalar" true
              (verdict_eq v (snd scalar_verdicts.(off + !j)));
            rem := tl;
            incr j
        | _ -> continue_matching := false
      done;
      Alcotest.(check bool) "shard prefix is whole batches" true
        (!j = len || !j mod Sys.int_size = 0);
      evaluated := !evaluated + !j)
    ranges;
  Alcotest.(check int) "verdicts are exactly the shard prefixes" 0
    (List.length !rem);
  Alcotest.(check int) "report counts the shard prefixes" r.Campaign.effective
    !evaluated

(* with an unlimited budget, sharding changes nothing at all: the
   merged outcome is field-for-field the sequential one *)
let test_sharded_equals_sequential () =
  let rng = Rng.create 13 in
  let m =
    Fsm.tabulate (Fsm.random_connected rng ~n_states:14 ~n_inputs:3 ~n_outputs:3)
  in
  let all = List.filter (Fault.is_effective m) (Fault.all_transfer_faults m) in
  let faults = List.filteri (fun i _ -> i < 170) all in
  let word = Simcov_testgen.Tour.random_word rng m ~length:200 in
  let seq = Detect.campaign_outcome m faults word in
  List.iter
    (fun jobs ->
      let par = Detect.campaign_outcome ~jobs m faults word in
      ignore
        (check_outcomes_agree
           ~what:(Printf.sprintf "jobs %d vs sequential" jobs)
           seq par);
      Alcotest.(check int)
        (Printf.sprintf "jobs %d: same missed count" jobs)
        (List.length seq.Campaign.report.Campaign.missed)
        (List.length par.Campaign.report.Campaign.missed))
    [ 2; 3; 5 ]

let test_unlimited_budget_not_truncated () =
  let rng = Rng.create 11 in
  let m =
    Fsm.tabulate (Fsm.random_connected rng ~n_states:8 ~n_inputs:2 ~n_outputs:2)
  in
  let faults = Fault.sample_transfer_faults rng m ~count:40 in
  let word = Simcov_testgen.Tour.random_word rng m ~length:80 in
  let r = Detect.campaign ~budget:Budget.unlimited m faults word in
  Alcotest.(check bool) "not truncated" true (r.Detect.truncated = None);
  Alcotest.(check int) "nothing skipped" 0 r.Detect.skipped

(* ---- stuck-at backend: bitvec lanes vs the scalar reference ---- *)

let ( !! ) = Simcov_netlist.Expr.( !! )
let ( &&& ) = Simcov_netlist.Expr.( &&& )
let ( ||| ) = Simcov_netlist.Expr.( ||| )
let ( ^^^ ) = Simcov_netlist.Expr.( ^^^ )

let counter () =
  let open Simcov_netlist.Circuit.Build in
  let ctx = create "counter" in
  let en = input ctx "en" in
  let b0 = reg ctx "b0" in
  let b1 = reg ctx "b1" in
  assign ctx b0 (Simcov_netlist.Expr.mux en (!!b0) b0);
  assign ctx b1 (Simcov_netlist.Expr.mux en (b1 ^^^ b0) b1);
  output ctx "wrap" (en &&& b0 &&& b1);
  finish ctx

let wide () =
  let open Simcov_netlist.Circuit.Build in
  let ctx = create "wide" in
  let a = input ctx "a" in
  let b = input ctx "b" in
  let r0 = reg ctx "r0" in
  let r1 = reg ctx "r1" in
  let r2 = reg ctx "r2" in
  assign ctx r0 (a ^^^ r2);
  assign ctx r1 ((a &&& r0) ||| (b &&& !!r0));
  assign ctx r2 (Simcov_netlist.Expr.mux b r1 (!!r1));
  output ctx "x" (r0 ^^^ (r1 &&& r2));
  output ctx "y" (!!r0 ||| b);
  finish ctx

let check_stuckat_agrees c word =
  let faults = Stuckat.all_faults c in
  let batched = Stuckat.campaign_outcome c faults word in
  List.iter2
    (fun f (fb, vb) ->
      if f <> fb then QCheck.Test.fail_reportf "stuckat: fault order differs";
      let vs = Stuckat.run_verdict c f word in
      if not (verdict_eq vs vb) then
        QCheck.Test.fail_reportf
          "stuckat: verdict mismatch on %a (scalar det=%b exc=%b, batched \
           det=%b exc=%b)"
          Stuckat.pp_fault f vs.Campaign.detected vs.Campaign.excited
          vb.Campaign.detected vb.Campaign.excited)
    faults batched.Campaign.verdicts;
  (* the wide bit-sliced backend and the sharded driver agree with the
     native-int batched run, verdict by verdict *)
  let wide = Stuckat.campaign_outcome ~lanes:256 ~jobs:2 c faults word in
  List.iter2
    (fun (fb, vb) (fw, vw) ->
      if fb <> fw then
        QCheck.Test.fail_reportf "stuckat: wide fault order differs";
      if not (verdict_eq vb vw) then
        QCheck.Test.fail_reportf "stuckat: wide verdict mismatch on %a"
          Stuckat.pp_fault fb)
    batched.Campaign.verdicts wide.Campaign.verdicts;
  true

let qcheck_stuckat_batched_eq_scalar =
  QCheck.Test.make
    ~name:"campaign: stuck-at bitvec lanes = scalar reference" ~count:100
    QCheck.(pair (int_range 1 1_000_000) (int_range 1 40))
    (fun (seed, len) ->
      let rng = Rng.create seed in
      let c = if Rng.bool rng then counter () else wide () in
      let ni = Simcov_netlist.Circuit.n_inputs c in
      let word =
        List.init len (fun _ -> Array.init ni (fun _ -> Rng.bool rng))
      in
      check_stuckat_agrees c word)

let test_stuckat_excitation_without_detection () =
  (* idle word on the counter: b0 stuck-at-1 is excited at step 0 (the
     net reads 0, the pin forces 1) but with en=0 the wrap output stays
     false either way — the classic excited-not-detected column *)
  let c = counter () in
  let word = List.init 6 (fun _ -> [| false |]) in
  let f = { Stuckat.site = Stuckat.Reg_output 0; stuck = true } in
  let v = Stuckat.run_verdict c f word in
  Alcotest.(check bool) "excited" true v.Campaign.excited;
  Alcotest.(check (option int)) "at step 0" (Some 0) v.Campaign.excite_step;
  Alcotest.(check bool) "not detected" false v.Campaign.detected;
  let r = Stuckat.campaign c (Stuckat.all_faults c) word in
  Alcotest.(check bool) "report separates columns" true
    (r.Stuckat.excited > r.Stuckat.detected)

(* ---- pipeline-bug backend vs the naive detects_bug loop ---- *)

let bug_program =
  match
    Simcov_dlx.Isa.parse_program
      "addi r1, r0, 5\nadd r2, r1, r1\nlw r3, 0(r2)\nadd r4, r3, r2\nsw r4, 4(r2)\nbeqz r4, 2\naddi r5, r0, 1\nadd r6, r5, r4"
  with
  | Ok p -> p
  | Error e -> failwith e

let test_bug_campaign_matches_naive () =
  let open Simcov_dlx in
  let r = Validate.bug_campaign_multi [ bug_program ] in
  Alcotest.(check int) "catalog size"
    (List.length Pipeline.bug_catalog)
    r.Validate.n_bugs;
  List.iter
    (fun (name, bugs) ->
      let naive = Validate.detects_bug ~program:bug_program bugs in
      let campaign = List.assoc name r.Validate.bug_results in
      Alcotest.(check bool) name naive campaign)
    Pipeline.bug_catalog;
  Alcotest.(check bool) "report not truncated" true
    (r.Validate.report.Campaign.truncated = None)

let test_bug_campaign_budget_truncates () =
  let open Simcov_dlx in
  let budget = Budget.create ~max_steps:1 () in
  let r = Validate.bug_campaign_tests ~budget [ Validate.test_program bug_program ] in
  Alcotest.(check bool) "truncated" true
    (r.Validate.report.Campaign.truncated <> None);
  Alcotest.(check bool) "some bugs skipped" true
    (r.Validate.report.Campaign.skipped > 0);
  (* every catalog bug still gets a row; skipped ones read undetected *)
  Alcotest.(check int) "full result list"
    (List.length Pipeline.bug_catalog)
    (List.length r.Validate.bug_results)

(* ---- report plumbing ---- *)

let test_json_schema () =
  let rng = Rng.create 3 in
  let m =
    Fsm.tabulate (Fsm.random_connected rng ~n_states:6 ~n_inputs:2 ~n_outputs:2)
  in
  let faults = Fault.sample_transfer_faults rng m ~count:10 in
  let word = Simcov_testgen.Tour.random_word rng m ~length:60 in
  let r = Detect.campaign m faults word in
  match Detect.to_json ~extra:[ ("model", Simcov_util.Json.String "t") ] r with
  | Simcov_util.Json.Obj fields ->
      Alcotest.(check bool) "schema tag" true
        (List.assoc_opt "schema" fields
        = Some (Simcov_util.Json.String "simcov-campaign/1"));
      List.iter
        (fun k ->
          Alcotest.(check bool) k true (List.mem_assoc k fields))
        [
          "backend"; "total"; "effective"; "excited"; "detected"; "missed";
          "skipped"; "coverage_pct"; "truncated"; "shard_failures";
          "missed_faults"; "model";
        ]
  | _ -> Alcotest.fail "campaign JSON is not an object"

(* ---- crash safety and shard isolation ---- *)

(* A deterministic synthetic backend whose workers can be poisoned: a
   batch containing a poisoned fault raises in [start] — every time, or
   only on the first attempt ([fail_once]) to model a transient worker
   fault that a retry on a fresh domain absorbs. *)
module Synth = struct
  type ctx = { poison : int -> bool; fail_once : bool Atomic.t option }
  type fault = int
  type stim = int

  let name = "synthetic"
  let max_lanes = 8
  let effective _ _ = true

  type batch = { faults : fault array; mutable t : int }

  let start ctx faults =
    if Array.exists ctx.poison faults then begin
      let blow =
        match ctx.fail_once with
        | None -> true
        | Some flag -> Atomic.compare_and_set flag false true
      in
      if blow then failwith "injected worker fault"
    end;
    { faults; t = 0 }

  let step b ~active:_ x =
    let exc = ref 0 and det = ref 0 in
    Array.iteri
      (fun l f ->
        if (f + x) mod 5 = 0 then exc := !exc lor (1 lsl l);
        if ((f * 7) + x + b.t) mod 11 = 0 then det := !det lor (1 lsl l))
      b.faults;
    b.t <- b.t + 1;
    { Campaign.excited = !exc; detected = !det; halt = false }
end

module Synth_driver = Campaign.Make (Synth)

let synth_ctx = { Synth.poison = (fun _ -> false); fail_once = None }
let synth_faults = List.init 200 Fun.id
let synth_word = List.init 60 (fun i -> i * 13 mod 29)

let check_synth_outcomes_equal ~what (a : int Campaign.outcome)
    (b : int Campaign.outcome) =
  Alcotest.(check int)
    (what ^ ": verdict count")
    (List.length a.Campaign.verdicts)
    (List.length b.Campaign.verdicts);
  List.iter2
    (fun (fa, va) (fb, vb) ->
      Alcotest.(check int) (what ^ ": fault order") fa fb;
      Alcotest.(check bool)
        (Printf.sprintf "%s: verdict for fault %d" what fa)
        true (verdict_eq va vb))
    a.Campaign.verdicts b.Campaign.verdicts;
  Alcotest.(check int)
    (what ^ ": detected")
    a.Campaign.report.Campaign.detected b.Campaign.report.Campaign.detected;
  Alcotest.(check int)
    (what ^ ": excited")
    a.Campaign.report.Campaign.excited b.Campaign.report.Campaign.excited

(* interrupt a sharded run via [should_stop] after a few checkpoint
   flushes, then resume from the snapshot under different jobs counts:
   the final outcome must equal the uninterrupted run exactly *)
let test_checkpoint_resume_equivalence () =
  let reference = Synth_driver.run synth_ctx synth_faults synth_word in
  let flushed = Atomic.make 0 in
  let latest = ref [] in
  let interrupted =
    Synth_driver.run ~jobs:2
      ~checkpoint:
        {
          Campaign.every = 1;
          flush =
            (fun pairs ->
              latest := pairs;
              Atomic.incr flushed);
        }
      ~should_stop:(fun () -> Atomic.get flushed >= 5)
      synth_ctx synth_faults synth_word
  in
  Alcotest.(check bool) "the stop actually cut the run short" true
    (interrupted.Campaign.report.Campaign.skipped > 0);
  Alcotest.(check (option string)) "a clean stop is not budget truncation" None
    (Option.map Simcov_util.Budget.resource_name
       interrupted.Campaign.report.Campaign.truncated);
  let snapshot = Hashtbl.create 64 in
  List.iter (fun (f, v) -> Hashtbl.replace snapshot f v) !latest;
  Alcotest.(check bool) "the snapshot holds some decisions" true
    (Hashtbl.length snapshot > 0);
  List.iter
    (fun jobs ->
      let resumed =
        Synth_driver.run ~jobs ~resume:(Hashtbl.find_opt snapshot) synth_ctx
          synth_faults synth_word
      in
      Alcotest.(check int)
        (Printf.sprintf "resume jobs=%d reports resumed faults" jobs)
        (Hashtbl.length snapshot)
        (List.length
           (List.filter
              (fun (f, _) -> Hashtbl.mem snapshot f)
              resumed.Campaign.verdicts));
      check_synth_outcomes_equal
        ~what:(Printf.sprintf "resume jobs=%d" jobs)
        reference resumed)
    [ 1; 3 ]

(* one shard's worker raises every time: the campaign must survive,
   report exactly that shard in [shard_failures], and the surviving
   verdicts must match the healthy run *)
let test_poisoned_shard_isolated () =
  let reference = Synth_driver.run synth_ctx synth_faults synth_word in
  let ctx = { Synth.poison = (fun f -> f = 60); fail_once = None } in
  let r =
    Synth_driver.run ~jobs:4 ~retry_backoff_s:0.001 ctx synth_faults synth_word
  in
  let rep = r.Campaign.report in
  (match rep.Campaign.shard_failures with
  | [ f ] ->
      Alcotest.(check int) "the poisoned shard" 1 f.Campaign.shard;
      Alcotest.(check int) "its fault count" 50 f.Campaign.faults;
      Alcotest.(check bool) "the error is reported" true
        (String.length f.Campaign.error > 0)
  | l -> Alcotest.failf "expected one shard failure, got %d" (List.length l));
  Alcotest.(check int) "the lost shard's faults are skipped" 50
    rep.Campaign.skipped;
  Alcotest.(check int) "surviving shards all evaluated" 150
    (List.length r.Campaign.verdicts);
  let ref_tbl = Hashtbl.create 256 in
  List.iter
    (fun (f, v) -> Hashtbl.replace ref_tbl f v)
    reference.Campaign.verdicts;
  List.iter
    (fun (f, v) ->
      Alcotest.(check bool)
        (Printf.sprintf "fault %d is outside the lost shard" f)
        true
        (f < 50 || f >= 100);
      Alcotest.(check bool)
        (Printf.sprintf "surviving verdict for fault %d" f)
        true
        (verdict_eq v (Hashtbl.find ref_tbl f)))
    r.Campaign.verdicts

(* a transient worker fault (raises once, succeeds on the retry
   domain): no shard failure surfaces and the outcome is unchanged *)
let test_transient_fault_retried () =
  let reference = Synth_driver.run synth_ctx synth_faults synth_word in
  let ctx =
    { Synth.poison = (fun f -> f = 60); fail_once = Some (Atomic.make false) }
  in
  let r =
    Synth_driver.run ~jobs:4 ~retry_backoff_s:0.001 ctx synth_faults synth_word
  in
  Alcotest.(check int) "no shard failures" 0
    (List.length r.Campaign.report.Campaign.shard_failures);
  Alcotest.(check int) "nothing skipped" 0 r.Campaign.report.Campaign.skipped;
  check_synth_outcomes_equal ~what:"after transient fault" reference r

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_batched_eq_scalar;
    QCheck_alcotest.to_alcotest qcheck_batched_eq_scalar_partial;
    Alcotest.test_case "out-of-alphabet inputs halt like scalar" `Quick
      test_out_of_alphabet_inputs;
    Alcotest.test_case "lane boundaries 1/62/63/64/127" `Quick test_lane_boundaries;
    Alcotest.test_case "budget truncation is prefix-consistent" `Quick
      test_budget_truncation_prefix;
    QCheck_alcotest.to_alcotest qcheck_wide_eq_scalar;
    QCheck_alcotest.to_alcotest qcheck_wide_eq_scalar_partial;
    Alcotest.test_case "wide lane boundaries 63/64/255/256/257/512" `Quick
      test_wide_lane_boundaries;
    Alcotest.test_case "sharded truncation is shard-prefix-consistent" `Quick
      test_sharded_truncation_prefix;
    Alcotest.test_case "sharded report equals sequential report" `Quick
      test_sharded_equals_sequential;
    Alcotest.test_case "unlimited budget never truncates" `Quick
      test_unlimited_budget_not_truncated;
    QCheck_alcotest.to_alcotest qcheck_stuckat_batched_eq_scalar;
    Alcotest.test_case "stuck-at excitation without detection" `Quick
      test_stuckat_excitation_without_detection;
    Alcotest.test_case "bug campaign matches naive loop" `Quick
      test_bug_campaign_matches_naive;
    Alcotest.test_case "bug campaign budget truncation" `Quick
      test_bug_campaign_budget_truncates;
    Alcotest.test_case "campaign JSON schema" `Quick test_json_schema;
    Alcotest.test_case "checkpoint/resume equals uninterrupted" `Quick
      test_checkpoint_resume_equivalence;
    Alcotest.test_case "poisoned shard is isolated and reported" `Quick
      test_poisoned_shard_isolated;
    Alcotest.test_case "transient worker fault absorbed by retry" `Quick
      test_transient_fault_retried;
  ]
