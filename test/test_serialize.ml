open Simcov_netlist

let ( !! ) = Expr.( !! )
let ( &&& ) = Expr.( &&& )
let ( ||| ) = Expr.( ||| )
let ( ^^^ ) = Expr.( ^^^ )

let counter () =
  let open Circuit.Build in
  let ctx = create "counter" in
  let en = input ctx "en" in
  let b0 = reg ctx ~group:"count" "b0" in
  let b1 = reg ctx ~group:"count" ~init:true "b1" in
  assign ctx b0 (Expr.mux en (!!b0) b0);
  assign ctx b1 (Expr.mux en (b1 ^^^ b0) b1);
  output ctx "wrap" (en &&& b0 &&& b1);
  constrain ctx (!!en ||| en);
  finish ctx

let roundtrip c =
  match Serialize.of_string (Serialize.to_string c) with
  | Ok c' -> c'
  | Error e -> Alcotest.failf "roundtrip parse failed: %s" (Serialize.error_to_string e)

let check_same_behavior c c' =
  Alcotest.(check int) "inputs" (Circuit.n_inputs c) (Circuit.n_inputs c');
  Alcotest.(check int) "regs" (Circuit.n_regs c) (Circuit.n_regs c');
  Alcotest.(check int) "outputs" (Circuit.n_outputs c) (Circuit.n_outputs c');
  let rng = Simcov_util.Rng.create 9 in
  for _ = 1 to 50 do
    let word =
      List.init 12 (fun _ ->
          Array.init (Circuit.n_inputs c) (fun _ -> Simcov_util.Rng.bool rng))
    in
    (* skip words invalid under the constraint *)
    try
      let a = Circuit.simulate c word in
      let b = Circuit.simulate c' word in
      Alcotest.(check bool) "same outputs" true (a = b)
    with Invalid_argument _ -> ()
  done

let test_roundtrip_counter () =
  let c = counter () in
  let c' = roundtrip c in
  check_same_behavior c c';
  Alcotest.(check string) "name" "counter" c'.Circuit.name;
  Alcotest.(check string) "group preserved" "count" c'.Circuit.regs.(0).Circuit.group;
  Alcotest.(check bool) "init preserved" true c'.Circuit.regs.(1).Circuit.init

let test_roundtrip_dlx_control () =
  (* the full 101-register control model survives a roundtrip *)
  let c = Simcov_dlx.Control.build () in
  let c' = roundtrip c in
  Alcotest.(check int) "regs" (Circuit.n_regs c) (Circuit.n_regs c');
  Alcotest.(check int) "gates" (Circuit.gate_count c) (Circuit.gate_count c');
  (* and the derived model too *)
  let final, _ = Simcov_dlx.Control.derive_test_model () in
  let final' = roundtrip final in
  check_same_behavior final final'

let test_parse_handwritten () =
  let text =
    "# a toggle\n\
     circuit toggle\n\
     input t\n\
     reg q main 0 = (xor (reg 0) (in 0))\n\
     output o = (reg 0)\n"
  in
  match Serialize.of_string text with
  | Error e -> Alcotest.fail (Serialize.error_to_string e)
  | Ok c ->
      let outs = Circuit.simulate c [ [| true |]; [| false |]; [| true |] ] in
      Alcotest.(check (list bool)) "toggles" [ false; true; true ]
        (List.map (fun o -> o.(0)) outs)

let test_parse_errors () =
  let bad kind text =
    match Serialize.of_string text with
    | Ok _ -> Alcotest.failf "%s should fail" kind
    | Error _ -> ()
  in
  bad "unknown keyword" "frobnicate x\n";
  bad "bad expression" "circuit c\ninput a\noutput o = (nand (in 0) (in 0))\n";
  bad "missing =" "circuit c\ninput a\nreg r main 0 (in 0)\n";
  bad "out-of-range reg" "circuit c\ninput a\noutput o = (reg 5)\n";
  bad "out-of-range input" "circuit c\ninput a\noutput o = (in 3)\n"

let test_save_load () =
  let c = counter () in
  let path = Filename.temp_file "simcov" ".ckt" in
  Serialize.save c path;
  (match Serialize.load path with
  | Ok c' -> check_same_behavior c c'
  | Error e -> Alcotest.fail (Serialize.error_to_string e));
  Sys.remove path

let qcheck_roundtrip_random_exprs =
  QCheck.Test.make ~name:"serialize: random expressions roundtrip" ~count:200
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let rng = Simcov_util.Rng.create seed in
      let rec gen depth =
        if depth = 0 then
          match Simcov_util.Rng.int rng 4 with
          | 0 -> Expr.input (Simcov_util.Rng.int rng 3)
          | 1 -> Expr.reg (Simcov_util.Rng.int rng 2)
          | 2 -> Expr.tru
          | _ -> Expr.fls
        else
          match Simcov_util.Rng.int rng 5 with
          | 0 -> Expr.Not (gen (depth - 1))
          | 1 -> Expr.And (gen (depth - 1), gen (depth - 1))
          | 2 -> Expr.Or (gen (depth - 1), gen (depth - 1))
          | 3 -> Expr.Xor (gen (depth - 1), gen (depth - 1))
          | _ -> Expr.Mux (gen (depth - 1), gen (depth - 1), gen (depth - 1))
      in
      let e = gen 5 in
      (* wrap in a minimal circuit *)
      let c =
        {
          Circuit.name = "t";
          input_names = [| "a"; "b"; "c" |];
          regs =
            [|
              { Circuit.name = "r0"; group = "g"; init = false; next = e };
              { Circuit.name = "r1"; group = "g"; init = true; next = Expr.reg 0 };
            |];
          outputs = [| { Circuit.port_name = "o"; expr = e } |];
          input_constraint = Expr.tru;
        }
      in
      match Serialize.of_string (Serialize.to_string c) with
      | Ok c' -> c'.Circuit.regs.(0).Circuit.next = e
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "roundtrip counter" `Quick test_roundtrip_counter;
    Alcotest.test_case "roundtrip dlx control" `Quick test_roundtrip_dlx_control;
    Alcotest.test_case "parse handwritten" `Quick test_parse_handwritten;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "save/load" `Quick test_save_load;
    QCheck_alcotest.to_alcotest qcheck_roundtrip_random_exprs;
  ]
