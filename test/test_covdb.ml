(* The durable coverage database: CRC-checked snapshot round-trips,
   torn-write and bit-rot salvage (longest valid prefix, never an
   exception), merge join semantics, and greedy set-cover
   minimization. *)

module Covdb = Simcov_covdb.Covdb
module Crc32 = Simcov_util.Crc32
module Rng = Simcov_util.Rng

let hdr ?(backend = "synthetic") ?(run = "t0") ?(config_hash = "cafe0001")
    ?(stim_hash = "beef0002") ?(word_length = 32) ?(total = 10) () =
  { Covdb.backend; run; config_hash; stim_hash; word_length; total }

let tmpfile () = Filename.temp_file "simcov_covdb" ".covdb"

let with_tmp f =
  let path = tmpfile () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let records t =
  let acc = ref [] in
  Covdb.iter t (fun k s -> acc := (k, s) :: !acc);
  List.rev !acc

(* ---- round trips ---- *)

let test_round_trip () =
  with_tmp @@ fun path ->
  let db = Covdb.create (hdr ()) in
  Covdb.set db "a" Covdb.Undetected;
  Covdb.set db "b" (Covdb.Excited 7);
  Covdb.set db "c" (Covdb.Detected { excite_step = Some 3; detect_step = 9 });
  Covdb.set db "d" (Covdb.Detected { excite_step = None; detect_step = 0 });
  Covdb.set_complete db true;
  Covdb.set_truncated db (Some "steps");
  Covdb.save db path;
  match Covdb.load path with
  | Error e -> Alcotest.failf "load failed: %s" e
  | Ok { Covdb.db = back; salvaged } ->
      Alcotest.(check bool) "not salvaged" false salvaged;
      Alcotest.(check bool) "round-trips exactly" true (Covdb.equal db back);
      Alcotest.(check (option string)) "truncation survives" (Some "steps")
        (Covdb.truncated back);
      Alcotest.(check bool) "complete survives" true (Covdb.complete back)

let test_missing_and_corrupt_header () =
  (match Covdb.load "/nonexistent/path.covdb" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "loading a missing file succeeded");
  with_tmp @@ fun path ->
  let db = Covdb.create (hdr ()) in
  Covdb.set db "a" Covdb.Undetected;
  Covdb.save db path;
  let text = In_channel.with_open_bin path In_channel.input_all in
  let damaged = Bytes.of_string text in
  Bytes.set damaged 3 'X' (* inside the header line *);
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_bytes oc damaged);
  match Covdb.load path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupt header must not salvage"

let random_db rng =
  let n = Rng.int rng 40 in
  let db =
    Covdb.create
      (hdr
         ~run:(Printf.sprintf "run%d" (Rng.int rng 1000))
         ~word_length:(Rng.int rng 500) ~total:n ())
  in
  for i = 0 to n - 1 do
    let key = Printf.sprintf "k:%d:%d" (Rng.int rng 5) i in
    let status =
      match Rng.int rng 3 with
      | 0 -> Covdb.Undetected
      | 1 -> Covdb.Excited (Rng.int rng 100)
      | _ ->
          Covdb.Detected
            {
              excite_step = (if Rng.bool rng then Some (Rng.int rng 100) else None);
              detect_step = Rng.int rng 100;
            }
    in
    Covdb.set db key status
  done;
  Covdb.set_complete db (Rng.bool rng);
  if Rng.int rng 4 = 0 then Covdb.set_truncated db (Some "wall_clock");
  db

let qcheck_round_trip =
  QCheck.Test.make ~name:"covdb: save/load round-trips exactly" ~count:100
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let db = random_db rng in
      with_tmp @@ fun path ->
      Covdb.save db path;
      match Covdb.load path with
      | Error e -> QCheck.Test.fail_reportf "load failed: %s" e
      | Ok { Covdb.db = back; salvaged } ->
          if salvaged then QCheck.Test.fail_reportf "clean snapshot salvaged";
          Covdb.equal db back)

(* ---- damage: torn writes and bit rot ---- *)

(* every byte-prefix of a snapshot loads without raising, and what it
   yields is exactly a prefix of the original's sorted records *)
let test_torn_write_salvage () =
  with_tmp @@ fun path ->
  let db = random_db (Rng.create 77) in
  Covdb.save db path;
  let text = In_channel.with_open_bin path In_channel.input_all in
  let full = records db in
  let n = String.length text in
  with_tmp @@ fun torn ->
  for k = 0 to n do
    Out_channel.with_open_bin torn (fun oc ->
        Out_channel.output_string oc (String.sub text 0 k));
    match Covdb.load torn with
    | exception e ->
        Alcotest.failf "prefix %d/%d raised %s" k n (Printexc.to_string e)
    | Error _ -> () (* header still incomplete: nothing to salvage *)
    | Ok { Covdb.db = got; salvaged } ->
        let gr = records got in
        let m = List.length gr in
        Alcotest.(check bool)
          (Printf.sprintf "prefix %d: records are a prefix" k)
          true
          (m <= List.length full
          && List.for_all2
               (fun (ka, sa) (kb, sb) -> ka = kb && Covdb.status_equal sa sb)
               gr
               (List.filteri (fun i _ -> i < m) full));
        if k < n then begin
          (* the sole clean proper prefix is the file minus its
             trailing newline; anything shorter lost the footer or
             worse and the load must say so *)
          if not salvaged then
            Alcotest.(check int)
              (Printf.sprintf "prefix %d: clean only without final newline" k)
              (n - 1) k
          else
            Alcotest.(check bool)
              (Printf.sprintf "prefix %d: marked incomplete" k)
              false (Covdb.complete got)
        end
        else Alcotest.(check bool) "full file: clean" false salvaged
  done

(* single flipped bytes: never an exception; any record the salvage
   keeps carries its original status (the CRC keeps damaged lines from
   being trusted) *)
let test_bit_rot_salvage () =
  with_tmp @@ fun path ->
  let db = random_db (Rng.create 99) in
  Covdb.save db path;
  let text = In_channel.with_open_bin path In_channel.input_all in
  let full = records db in
  let rng = Rng.create 1234 in
  with_tmp @@ fun rotten ->
  for _ = 1 to 200 do
    let pos = Rng.int rng (String.length text) in
    let damaged = Bytes.of_string text in
    Bytes.set damaged pos (Char.chr (Char.code (Bytes.get damaged pos) lxor 0x20));
    Out_channel.with_open_bin rotten (fun oc ->
        Out_channel.output_bytes oc damaged);
    match Covdb.load rotten with
    | exception e ->
        Alcotest.failf "flip at %d raised %s" pos (Printexc.to_string e)
    | Error _ -> () (* the flip landed in the header *)
    | Ok { Covdb.db = got; _ } ->
        List.iter
          (fun (k, s) ->
            match List.assoc_opt k full with
            | Some s0 ->
                Alcotest.(check bool)
                  (Printf.sprintf "flip at %d: record %s intact" pos k)
                  true (Covdb.status_equal s s0)
            | None -> Alcotest.failf "flip at %d invented record %s" pos k)
          (records got)
  done

(* ---- merge ---- *)

let db_of hdr pairs =
  let db = Covdb.create hdr in
  List.iter (fun (k, s) -> Covdb.set db k s) pairs;
  Covdb.set_complete db true;
  db

let test_merge_join () =
  let h1 = hdr ~run:"r1" () in
  let h2 = hdr ~run:"r2" ~stim_hash:"feed0003" () in
  let a =
    db_of h1
      [
        ("f1", Covdb.Excited 5);
        ("f2", Covdb.Detected { excite_step = Some 4; detect_step = 9 });
        ("f3", Covdb.Undetected);
      ]
  in
  let b =
    db_of h2
      [
        ("f1", Covdb.Detected { excite_step = None; detect_step = 2 });
        ("f2", Covdb.Detected { excite_step = Some 1; detect_step = 9 });
        ("f4", Covdb.Excited 3);
      ]
  in
  match Covdb.merge [ a; b ] with
  | Error e -> Alcotest.failf "merge failed: %s" e
  | Ok m ->
      Alcotest.(check int) "union of keys" 4 (Covdb.n_records m);
      Alcotest.(check bool) "detected beats excited" true
        (Covdb.status_equal
           (Option.get (Covdb.find m "f1"))
           (Covdb.Detected { excite_step = None; detect_step = 2 }));
      Alcotest.(check bool) "earliest excite step wins on a tie" true
        (Covdb.status_equal
           (Option.get (Covdb.find m "f2"))
           (Covdb.Detected { excite_step = Some 1; detect_step = 9 }));
      Alcotest.(check string) "runs are joined" "r1+r2" (Covdb.header m).Covdb.run;
      Alcotest.(check string) "differing stim hashes clear" ""
        (Covdb.header m).Covdb.stim_hash;
      Alcotest.(check bool) "all complete -> complete" true (Covdb.complete m)

let test_merge_incompatible () =
  let a = db_of (hdr ()) [ ("f1", Covdb.Undetected) ] in
  let b = db_of (hdr ~config_hash:"deadbeef" ()) [ ("f1", Covdb.Undetected) ] in
  (match Covdb.merge [ a; b ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "merge across configs must refuse");
  match Covdb.merge [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty merge must refuse"

(* ---- minimize ---- *)

let test_minimize_greedy () =
  let det ks =
    List.map
      (fun k -> (k, Covdb.Detected { excite_step = None; detect_step = 1 }))
      ks
  in
  let runs =
    [
      ("A", db_of (hdr ~run:"A" ()) (det [ "1"; "2"; "3" ]));
      ("B", db_of (hdr ~run:"B" ()) (det [ "3"; "4" ]));
      ("C", db_of (hdr ~run:"C" ()) (det [ "4"; "5"; "6" ]));
      ("D", db_of (hdr ~run:"D" ()) (det [ "2" ]));
    ]
  in
  match Covdb.minimize runs with
  | Error e -> Alcotest.failf "minimize failed: %s" e
  | Ok sel ->
      Alcotest.(check (list (pair string int)))
        "greedy picks A then C"
        [ ("A", 3); ("C", 3) ]
        sel.Covdb.chosen;
      Alcotest.(check int) "covers the union" 6 sel.Covdb.covered;
      Alcotest.(check int) "union size" 6 sel.Covdb.union_detected

let test_minimize_nothing_detected () =
  let runs = [ ("A", db_of (hdr ~run:"A" ()) [ ("1", Covdb.Undetected) ]) ] in
  match Covdb.minimize runs with
  | Error e -> Alcotest.failf "minimize failed: %s" e
  | Ok sel ->
      Alcotest.(check (list (pair string int))) "nothing chosen" [] sel.Covdb.chosen;
      Alcotest.(check int) "nothing to cover" 0 sel.Covdb.union_detected

(* ---- atomicity plumbing ---- *)

let test_save_leaves_no_temp () =
  let dir = Filename.temp_file "simcov_covdbdir" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      let path = Filename.concat dir "db.covdb" in
      let db = random_db (Rng.create 5) in
      Covdb.save db path;
      Covdb.save db path;
      Alcotest.(check (list string)) "only the committed snapshot remains"
        [ "db.covdb" ]
        (Array.to_list (Sys.readdir dir)))

let suite =
  [
    Alcotest.test_case "snapshot round-trip" `Quick test_round_trip;
    Alcotest.test_case "missing file / corrupt header" `Quick
      test_missing_and_corrupt_header;
    QCheck_alcotest.to_alcotest qcheck_round_trip;
    Alcotest.test_case "torn-write salvage at every prefix" `Quick
      test_torn_write_salvage;
    Alcotest.test_case "bit-rot salvage never lies" `Quick test_bit_rot_salvage;
    Alcotest.test_case "merge joins statuses" `Quick test_merge_join;
    Alcotest.test_case "merge refuses incompatible inputs" `Quick
      test_merge_incompatible;
    Alcotest.test_case "minimize is greedy set cover" `Quick test_minimize_greedy;
    Alcotest.test_case "minimize with nothing detected" `Quick
      test_minimize_nothing_detected;
    Alcotest.test_case "atomic save leaves no temp files" `Quick
      test_save_leaves_no_temp;
  ]
