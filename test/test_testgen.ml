open Simcov_fsm
open Simcov_testgen

let counter3 =
  Fsm.make ~n_states:3 ~n_inputs:2
    ~next:(fun s i -> if i = 0 then (s + 1) mod 3 else 0)
    ~output:(fun s i -> if i = 0 then (s + 1) mod 3 else s)
    ()

let test_transition_tour_counter () =
  match Tour.transition_tour counter3 with
  | None -> Alcotest.fail "expected tour"
  | Some t ->
      Alcotest.(check bool) "is a tour" true (Tour.word_is_tour counter3 t.Tour.word);
      Alcotest.(check int) "covers 6 transitions" 6 t.Tour.n_transitions;
      Alcotest.(check int) "length = list length" (List.length t.Tour.word) t.Tour.length;
      (* returns to reset: closed walk *)
      Alcotest.(check int) "closed" counter3.Fsm.reset
        (Fsm.final_state counter3 t.Tour.word)

let test_tour_length_optimality () =
  (* counter3's transition graph: in/out degrees — state 0 has in-degree
     4 (resets from 0,1,2 plus 2->0 increment) and out-degree 2, so
     extra traversals are needed; CPP must do no worse than greedy. *)
  match (Tour.transition_tour counter3, Tour.greedy_transition_tour counter3) with
  | Some opt, Some greedy ->
      Alcotest.(check bool) "optimal <= greedy" true (opt.Tour.length <= greedy.Tour.length);
      Alcotest.(check bool) "greedy also a tour" true
        (Tour.word_is_tour counter3 greedy.Tour.word)
  | _ -> Alcotest.fail "tours must exist"

let test_state_tour () =
  match Tour.state_tour counter3 with
  | None -> Alcotest.fail "expected state tour"
  | Some t ->
      let visited = Hashtbl.create 8 in
      Hashtbl.replace visited counter3.Fsm.reset ();
      let _ =
        List.fold_left
          (fun s i ->
            let s' = fst (Fsm.step counter3 s i) in
            Hashtbl.replace visited s' ();
            s')
          counter3.Fsm.reset t.Tour.word
      in
      Alcotest.(check int) "all states" 3 (Hashtbl.length visited);
      Alcotest.(check bool) "shorter than transition tour" true (t.Tour.length <= 6)

let test_tour_none_on_non_sc () =
  (* one-way machine: 0 -> 1 with no way back *)
  let m = Fsm.of_table [ (0, 0, 1, 0); (1, 0, 1, 0) ] in
  Alcotest.(check bool) "no closed tour" true (Tour.transition_tour m = None)

let test_transition_cover_non_sc () =
  let m = Fsm.of_table [ (0, 0, 1, 0); (0, 1, 2, 0); (1, 0, 1, 1); (2, 0, 2, 2) ] in
  let segments = Tour.transition_cover_segments m in
  Alcotest.(check bool) "multiple segments needed" true (List.length segments >= 2);
  (* together the segments cover all transitions *)
  let covered = Hashtbl.create 16 in
  List.iter
    (fun seg ->
      let rec go s = function
        | [] -> ()
        | i :: rest ->
            Hashtbl.replace covered (s, i) ();
            go (m.Fsm.next s i) rest
      in
      go m.Fsm.reset seg)
    segments;
  Alcotest.(check int) "all transitions covered" (Fsm.n_transitions m)
    (Hashtbl.length covered)

let test_random_word_valid () =
  let rng = Simcov_util.Rng.create 31 in
  let word = Tour.random_word rng counter3 ~length:50 in
  Alcotest.(check int) "full length" 50 (List.length word);
  (* must not raise *)
  ignore (Fsm.run counter3 word)

let test_random_word_respects_validity () =
  let m = Fsm.of_table [ (0, 0, 1, 0); (1, 1, 0, 0) ] in
  let rng = Simcov_util.Rng.create 8 in
  let word = Tour.random_word rng m ~length:20 in
  ignore (Fsm.run m word);
  Alcotest.(check int) "alternates" 20 (List.length word)

let test_word_is_tour_negative () =
  Alcotest.(check bool) "empty word is not a tour" false (Tour.word_is_tour counter3 [])

let test_word_is_tour_poisoned_suffix () =
  (* a complete tour followed by an input that is invalid where it lands
     must be rejected: such a word cannot be replayed end to end, even
     though its covering prefix is a tour *)
  let m =
    Fsm.of_table [ (0, 0, 1, 0); (1, 1, 2, 1); (2, 0, 0, 2); (2, 1, 1, 3) ]
  in
  match Tour.transition_tour m with
  | None -> Alcotest.fail "expected tour"
  | Some t ->
      let word = t.Tour.word in
      Alcotest.(check bool) "tour accepted" true (Tour.word_is_tour m word);
      let final = Fsm.final_state m word in
      (* input 1 is invalid in states 0 (reset, where a closed tour
         ends); pick any input invalid at the final state *)
      let bad =
        match List.find_opt (fun i -> not (m.Fsm.valid final i)) [ 0; 1 ] with
        | Some i -> i
        | None -> Alcotest.fail "final state accepts every input"
      in
      Alcotest.(check bool)
        "poisoned suffix rejected" false
        (Tour.word_is_tour m (word @ [ bad ]));
      (* poison in the middle, not just at the end *)
      Alcotest.(check bool)
        "poisoned middle rejected" false
        (Tour.word_is_tour m (word @ [ bad ] @ word))

let test_tour_partial_validity () =
  (* machine with per-state valid inputs; tour must only use valid ones *)
  let m =
    Fsm.of_table
      [
        (0, 0, 1, 0);
        (1, 1, 2, 1);
        (2, 0, 0, 2);
        (2, 1, 1, 3);
      ]
  in
  match Tour.transition_tour m with
  | None -> Alcotest.fail "expected tour"
  | Some t ->
      ignore (Fsm.run m t.Tour.word);
      Alcotest.(check bool) "tour" true (Tour.word_is_tour m t.Tour.word)

let qcheck_tour_on_random_machines =
  QCheck.Test.make ~name:"testgen: CPP tour covers all transitions on random machines"
    ~count:50
    QCheck.(triple (int_range 2 12) (int_range 1 3) (int_range 1 999))
    (fun (n, k, seed) ->
      let rng = Simcov_util.Rng.create seed in
      let m = Fsm.random_connected rng ~n_states:n ~n_inputs:k ~n_outputs:2 in
      match Tour.transition_tour m with
      | None -> false
      | Some t ->
          Tour.word_is_tour m t.Tour.word
          && t.Tour.length >= t.Tour.n_transitions
          && t.Tour.extra = t.Tour.length - t.Tour.n_transitions)

let qcheck_greedy_tour_valid =
  QCheck.Test.make ~name:"testgen: greedy tour is executable and covering" ~count:50
    QCheck.(pair (int_range 2 10) (int_range 1 999))
    (fun (n, seed) ->
      let rng = Simcov_util.Rng.create seed in
      let m = Fsm.random_connected rng ~n_states:n ~n_inputs:2 ~n_outputs:2 in
      match Tour.greedy_transition_tour m with
      | None -> false
      | Some t -> (
          try
            ignore (Fsm.run m t.Tour.word);
            Tour.word_is_tour m t.Tour.word
          with Invalid_argument _ -> false))

let qcheck_state_tour_visits_all =
  QCheck.Test.make ~name:"testgen: state tour visits every reachable state" ~count:50
    QCheck.(pair (int_range 2 10) (int_range 1 999))
    (fun (n, seed) ->
      let rng = Simcov_util.Rng.create seed in
      let m = Fsm.random_connected rng ~n_states:n ~n_inputs:2 ~n_outputs:2 in
      match Tour.state_tour m with
      | None -> false
      | Some t ->
          let visited = Hashtbl.create 16 in
          Hashtbl.replace visited m.Fsm.reset ();
          let _ =
            List.fold_left
              (fun s i ->
                let s' = fst (Fsm.step m s i) in
                Hashtbl.replace visited s' ();
                s')
              m.Fsm.reset t.Tour.word
          in
          Hashtbl.length visited = Fsm.n_reachable m)

let suite =
  [
    Alcotest.test_case "transition tour counter" `Quick test_transition_tour_counter;
    Alcotest.test_case "tour optimality" `Quick test_tour_length_optimality;
    Alcotest.test_case "state tour" `Quick test_state_tour;
    Alcotest.test_case "no tour on non-SC" `Quick test_tour_none_on_non_sc;
    Alcotest.test_case "transition cover non-SC" `Quick test_transition_cover_non_sc;
    Alcotest.test_case "random word valid" `Quick test_random_word_valid;
    Alcotest.test_case "random word validity" `Quick test_random_word_respects_validity;
    Alcotest.test_case "word_is_tour negative" `Quick test_word_is_tour_negative;
    Alcotest.test_case "word_is_tour poisoned suffix" `Quick
      test_word_is_tour_poisoned_suffix;
    Alcotest.test_case "tour partial validity" `Quick test_tour_partial_validity;
    QCheck_alcotest.to_alcotest qcheck_tour_on_random_machines;
    QCheck_alcotest.to_alcotest qcheck_greedy_tour_valid;
    QCheck_alcotest.to_alcotest qcheck_state_tour_visits_all;
  ]
