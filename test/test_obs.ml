(* The observability layer: metric registry semantics, the
   simcov-metrics/1 snapshot, trace sinks, and the counters' agreement
   with the engines' own statistics. Every test resets the global
   registry first — metrics are process-wide by design. *)

module Obs = Simcov_obs.Obs
module Json = Simcov_util.Json
module Budget = Simcov_util.Budget
module Bdd = Simcov_bdd.Bdd

let get_int json path =
  let rec go json = function
    | [] -> Json.to_int_opt json
    | k :: rest -> Option.bind (Json.member k json) (fun v -> go v rest)
  in
  match go json path with
  | Some v -> v
  | None -> Alcotest.failf "missing int at %s" (String.concat "." path)

let test_registry_create_on_first_use () =
  Obs.reset ();
  let c1 = Obs.counter "test.counter" in
  let c2 = Obs.counter "test.counter" in
  Alcotest.(check bool) "same cell" true (c1 == c2);
  Obs.incr c1;
  Obs.add c1 4;
  Alcotest.(check int) "visible through alias" 5 (Obs.count c2);
  let g = Obs.gauge "test.gauge" in
  Obs.set g 7;
  Obs.set_max g 3;
  Alcotest.(check int) "set_max keeps maximum" 7 (Obs.value g);
  Obs.set_max g 11;
  Alcotest.(check int) "set_max raises" 11 (Obs.value g)

let test_snapshot_schema () =
  Obs.reset ();
  let c = Obs.counter "test.snap.counter" in
  let g = Obs.gauge "test.snap.gauge" in
  let t = Obs.timer "test.snap.timer" in
  Obs.add c 42;
  Obs.set g 9;
  Obs.observe t 0.25;
  Obs.observe t 0.5;
  (* the snapshot must round-trip through its own JSON renderer *)
  let json =
    match Json.parse (Json.to_string (Obs.snapshot ())) with
    | Ok v -> v
    | Error e -> Alcotest.failf "snapshot is not valid JSON: %s" e
  in
  Alcotest.(check bool)
    "schema tag" true
    (Json.member "schema" json = Some (Json.String "simcov-metrics/1"));
  Alcotest.(check bool) "wall clock present" true
    (Json.member "wall_clock_s" json <> None);
  Alcotest.(check int) "counter value" 42 (get_int json [ "counters"; "test.snap.counter" ]);
  Alcotest.(check int) "gauge value" 9 (get_int json [ "gauges"; "test.snap.gauge" ]);
  Alcotest.(check int) "timer span count" 2
    (get_int json [ "timers"; "test.snap.timer"; "count" ]);
  (* instrumented-engine metrics are registered at module init, so they
     appear (at zero) in every snapshot: the field set is stable *)
  List.iter
    (fun name -> ignore (get_int json [ "counters"; name ]))
    [
      "bdd.cache.and.hit"; "bdd.cache.and.miss"; "bdd.cache.or.hit";
      "bdd.cache.xor.hit"; "bdd.cache.not.hit"; "bdd.cache.ite.hit";
      "bdd.unique.hit"; "bdd.unique.miss"; "bdd.gc.runs"; "bdd.gc.reclaimed";
      "symfsm.iterations"; "symfsm.images"; "campaign.batches";
      "campaign.sim_steps"; "campaign.faults_evaluated";
      "campaign.lanes_diverged";
    ];
  Obs.reset ();
  Alcotest.(check int) "reset zeroes counters" 0
    (get_int (Obs.snapshot ()) [ "counters"; "test.snap.counter" ])

let test_trace_sink () =
  Obs.reset ();
  let lines = ref [] in
  Obs.set_sink (Some (fun l -> lines := l :: !lines));
  Alcotest.(check bool) "tracing on" true (Obs.tracing ());
  Obs.event "test.ev" ~fields:(fun () -> [ ("k", Json.Int 3) ]);
  let tm = Obs.timer "test.trace.span" in
  let r = Obs.span tm (fun () -> 17) in
  Alcotest.(check int) "span returns" 17 r;
  Obs.set_sink None;
  Alcotest.(check bool) "tracing off" false (Obs.tracing ());
  (* fields thunk must not run without a sink *)
  Obs.event "test.silent" ~fields:(fun () -> Alcotest.fail "fields forced");
  let parsed =
    List.rev_map
      (fun l ->
        match Json.parse l with
        | Ok v -> v
        | Error e -> Alcotest.failf "trace line is not JSON: %s" e)
      !lines
  in
  Alcotest.(check int) "two events" 2 (List.length parsed);
  (match parsed with
  | [ ev; sp ] ->
      Alcotest.(check bool) "ev name" true
        (Json.member "ev" ev = Some (Json.String "test.ev"));
      Alcotest.(check int) "ev field" 3 (get_int ev [ "k" ]);
      Alcotest.(check bool) "span name" true
        (Json.member "ev" sp = Some (Json.String "test.trace.span"));
      Alcotest.(check bool) "span duration" true (Json.member "dur_s" sp <> None)
  | _ -> Alcotest.fail "expected exactly the two traced events");
  Alcotest.(check int) "span observed" 1 (Obs.spans tm)

let test_span_observes_on_raise () =
  Obs.reset ();
  let tm = Obs.timer "test.raise.span" in
  (try Obs.span tm (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "span recorded despite raise" 1 (Obs.spans tm)

(* ---- BDD counters vs the manager's own statistics ---- *)

let test_bdd_counters_match_gc_stats () =
  Obs.reset ();
  let m = Bdd.man 8 in
  let f =
    Bdd.conj m (List.init 8 (fun v -> Bdd.var m v)) |> Bdd.protect m
  in
  let g = Bdd.protect m (Bdd.disj m (List.init 8 (fun v -> Bdd.nvar m v))) in
  ignore (Bdd.band m f g);
  ignore (Bdd.bxor m f g);
  ignore (Bdd.bnot m f);
  ignore (Bdd.gc m);
  let st = Bdd.gc_stats m in
  let snap = Obs.snapshot () in
  Alcotest.(check int) "gc runs" st.Bdd.runs (get_int snap [ "counters"; "bdd.gc.runs" ]);
  Alcotest.(check int) "gc reclaimed" st.Bdd.reclaimed
    (get_int snap [ "counters"; "bdd.gc.reclaimed" ]);
  Alcotest.(check int) "live gauge" st.Bdd.live
    (get_int snap [ "gauges"; "bdd.nodes.live" ]);
  Alcotest.(check int) "peak gauge" st.Bdd.peak_live
    (get_int snap [ "gauges"; "bdd.nodes.peak" ]);
  (* every live node was once a unique-table miss *)
  Alcotest.(check bool) "unique misses cover peak" true
    (get_int snap [ "counters"; "bdd.unique.miss" ] >= st.Bdd.peak_live)

let test_symfsm_counters_match_traversal () =
  Obs.reset ();
  let model =
    Simcov_fsm.Fsm.tabulate
      (Simcov_fsm.Fsm.make ~n_states:6 ~n_inputs:2
         ~next:(fun s i -> if i = 0 then (s + 1) mod 6 else 0)
         ~output:(fun s i -> if i = 0 then s else 0)
         ())
  in
  let sym = Simcov_symbolic.Symfsm.of_fsm model in
  let tr = Simcov_symbolic.Symfsm.traverse sym in
  let snap = Obs.snapshot () in
  Alcotest.(check int) "iterations counter" tr.Simcov_symbolic.Symfsm.iterations
    (get_int snap [ "counters"; "symfsm.iterations" ]);
  Alcotest.(check int) "images counter" tr.Simcov_symbolic.Symfsm.images
    (get_int snap [ "counters"; "symfsm.images" ]);
  Alcotest.(check int) "iteration timer spans" tr.Simcov_symbolic.Symfsm.iterations
    (get_int snap [ "timers"; "symfsm.iteration"; "count" ])

(* ---- campaign progress invariants ---- *)

let test_campaign_progress_invariants () =
  Obs.reset ();
  let open Simcov_fsm in
  let model =
    Fsm.tabulate
      (Fsm.make ~n_states:5 ~n_inputs:2
         ~next:(fun s i -> if i = 0 then (s + 1) mod 5 else 0)
         ~output:(fun s i -> if i = 0 then s else s + 1)
         ())
  in
  let word =
    match Simcov_testgen.Tour.transition_tour model with
    | Some t -> t.Simcov_testgen.Tour.word
    | None -> Alcotest.fail "expected tour"
  in
  let rng = Simcov_util.Rng.create 7 in
  let faults =
    Simcov_coverage.Fault.sample_transfer_faults rng model ~count:100
    @ Simcov_coverage.Fault.sample_output_faults rng model ~n_outputs:6 ~count:100
  in
  let seen = ref [] in
  let r =
    Simcov_coverage.Detect.campaign
      ~on_batch:(fun p -> seen := p :: !seen)
      model faults word
  in
  let progresses = List.rev !seen in
  Alcotest.(check bool) "at least one batch" true (progresses <> []);
  let module C = Simcov_campaign.Campaign in
  List.iteri
    (fun i (p : C.progress) ->
      Alcotest.(check int) "batch index is sequential" i p.C.batch;
      Alcotest.(check bool) "faults_done <= faults_total" true
        (p.C.faults_done <= p.C.faults_total);
      Alcotest.(check bool) "detected <= faults_done" true
        (p.C.detected_so_far <= p.C.faults_done);
      Alcotest.(check bool) "elapsed_s >= 0" true (p.C.elapsed_s >= 0.0))
    progresses;
  let rec monotone extract = function
    | a :: (b :: _ as rest) ->
        extract (a : C.progress) <= extract (b : C.progress) && monotone extract rest
    | _ -> true
  in
  Alcotest.(check bool) "faults_done monotone" true
    (monotone (fun p -> p.C.faults_done) progresses);
  Alcotest.(check bool) "detected monotone" true
    (monotone (fun p -> p.C.detected_so_far) progresses);
  Alcotest.(check bool) "sim_steps monotone" true
    (monotone (fun p -> p.C.sim_steps) progresses);
  (* the last progress report accounts for every evaluated fault *)
  (match List.rev progresses with
  | last :: _ ->
      Alcotest.(check int) "final faults_done = effective"
        r.Simcov_coverage.Detect.effective last.C.faults_done
  | [] -> ());
  (* and the global counters agree with the report *)
  let snap = Obs.snapshot () in
  Alcotest.(check int) "faults_evaluated counter"
    r.Simcov_coverage.Detect.effective
    (get_int snap [ "counters"; "campaign.faults_evaluated" ]);
  Alcotest.(check int) "batches counter" (List.length progresses)
    (get_int snap [ "counters"; "campaign.batches" ])

(* ---- domain safety: no lost updates under concurrent increments ---- *)

let test_domain_hammer () =
  Obs.reset ();
  let c = Obs.counter "test.domains.counter" in
  let g = Obs.gauge "test.domains.gauge" in
  let tm = Obs.timer "test.domains.timer" in
  let iters = 200_000 in
  let worker lo =
    for i = lo to lo + iters - 1 do
      Obs.incr c;
      Obs.set_max g i;
      if i mod 50_000 = 0 then Obs.observe tm 0.001
    done
  in
  let d = Domain.spawn (fun () -> worker iters) in
  worker 0;
  Domain.join d;
  (* every increment from both domains must land: counters are atomic,
     not last-writer-wins *)
  Alcotest.(check int) "no lost increments" (2 * iters) (Obs.count c);
  Alcotest.(check int) "set_max keeps the global maximum"
    ((2 * iters) - 1) (Obs.value g);
  Alcotest.(check int) "mutex-guarded timer lost no spans" 8 (Obs.spans tm);
  (* and the merged snapshot reflects the final state *)
  let snap = Obs.snapshot () in
  Alcotest.(check int) "snapshot agrees" (2 * iters)
    (get_int snap [ "counters"; "test.domains.counter" ])

(* ---- the budget's secondary node enforcement (fake probe) ---- *)

let test_budget_node_probe () =
  let b = Budget.create ~max_nodes:10 () in
  Alcotest.(check bool) "no probe, no reading" true (Budget.live_nodes b = None);
  Alcotest.(check bool) "no probe, never Nodes" true (Budget.exceeded b = None);
  let reading = ref 5 in
  Budget.set_node_probe b (Some (fun () -> !reading));
  Alcotest.(check bool) "probe visible" true (Budget.live_nodes b = Some 5);
  Alcotest.(check bool) "below cap" true (Budget.exceeded b = None);
  reading := 10;
  (* at the cap is fine: the primary enforcer (a BDD manager) holds the
     live count AT its ceiling, which must not read as exhaustion *)
  Alcotest.(check bool) "at cap" true (Budget.exceeded b = None);
  reading := 11;
  Alcotest.(check bool) "above cap" true (Budget.exceeded b = Some Budget.Nodes);
  (match Budget.check b with
  | exception Budget.Budget_exceeded Budget.Nodes -> ()
  | _ -> Alcotest.fail "check must raise Nodes");
  Budget.set_node_probe b None;
  Alcotest.(check bool) "probe cleared" true (Budget.exceeded b = None);
  (* the shared unlimited singleton must stay stateless *)
  Budget.set_node_probe Budget.unlimited (Some (fun () -> 1_000_000));
  Alcotest.(check bool) "unlimited ignores probes" true
    (Budget.live_nodes Budget.unlimited = None)

let suite =
  [
    Alcotest.test_case "registry create-on-first-use" `Quick
      test_registry_create_on_first_use;
    Alcotest.test_case "snapshot schema" `Quick test_snapshot_schema;
    Alcotest.test_case "trace sink" `Quick test_trace_sink;
    Alcotest.test_case "span observes on raise" `Quick test_span_observes_on_raise;
    Alcotest.test_case "bdd counters match gc_stats" `Quick
      test_bdd_counters_match_gc_stats;
    Alcotest.test_case "symfsm counters match traversal" `Quick
      test_symfsm_counters_match_traversal;
    Alcotest.test_case "campaign progress invariants" `Quick
      test_campaign_progress_invariants;
    Alcotest.test_case "two-domain counter hammer" `Quick test_domain_hammer;
    Alcotest.test_case "budget node probe" `Quick test_budget_node_probe;
  ]
