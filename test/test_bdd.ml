open Simcov_bdd

let test_constants () =
  let m = Bdd.man 4 in
  Alcotest.(check bool) "true is true" true (Bdd.is_true (Bdd.btrue m));
  Alcotest.(check bool) "false is false" true (Bdd.is_false (Bdd.bfalse m));
  Alcotest.(check bool) "not true = false" true
    (Bdd.is_false (Bdd.bnot m (Bdd.btrue m)))

let test_var_eval () =
  let m = Bdd.man 3 in
  let x = Bdd.var m 0 and ny = Bdd.nvar m 1 in
  Alcotest.(check bool) "x under x=1" true (Bdd.eval m x (fun _ -> true));
  Alcotest.(check bool) "x under x=0" false (Bdd.eval m x (fun _ -> false));
  Alcotest.(check bool) "~y under y=1" false (Bdd.eval m ny (fun _ -> true))

let test_hash_consing () =
  let m = Bdd.man 4 in
  let a = Bdd.band m (Bdd.var m 0) (Bdd.var m 1) in
  let b = Bdd.band m (Bdd.var m 1) (Bdd.var m 0) in
  Alcotest.(check bool) "structural sharing" true (Bdd.equal a b)

(* exhaustively compare a BDD against a reference boolean function *)
let check_semantics m bdd f nvars =
  for assignment = 0 to (1 lsl nvars) - 1 do
    let assign v = (assignment lsr v) land 1 = 1 in
    Alcotest.(check bool)
      (Printf.sprintf "assignment %d" assignment)
      (f assign) (Bdd.eval m bdd assign)
  done

let test_connectives_semantics () =
  let m = Bdd.man 3 in
  let x = Bdd.var m 0 and y = Bdd.var m 1 and z = Bdd.var m 2 in
  check_semantics m
    (Bdd.band m x (Bdd.bor m y z))
    (fun a -> a 0 && (a 1 || a 2))
    3;
  check_semantics m (Bdd.bxor m x y) (fun a -> a 0 <> a 1) 3;
  check_semantics m (Bdd.bimp m x y) (fun a -> (not (a 0)) || a 1) 3;
  check_semantics m (Bdd.biff m x z) (fun a -> a 0 = a 2) 3;
  check_semantics m
    (Bdd.ite m x y z)
    (fun a -> if a 0 then a 1 else a 2)
    3

let test_de_morgan () =
  let m = Bdd.man 2 in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  let lhs = Bdd.bnot m (Bdd.band m x y) in
  let rhs = Bdd.bor m (Bdd.bnot m x) (Bdd.bnot m y) in
  Alcotest.(check bool) "de morgan" true (Bdd.equal lhs rhs)

let test_cofactor () =
  let m = Bdd.man 2 in
  let f = Bdd.band m (Bdd.var m 0) (Bdd.var m 1) in
  Alcotest.(check bool) "f|x=1 is y" true
    (Bdd.equal (Bdd.cofactor m f 0 true) (Bdd.var m 1));
  Alcotest.(check bool) "f|x=0 is false" true (Bdd.is_false (Bdd.cofactor m f 0 false))

let test_quantification () =
  let m = Bdd.man 2 in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  let f = Bdd.band m x y in
  Alcotest.(check bool) "exists x (x&y) = y" true (Bdd.equal (Bdd.exists m [ 0 ] f) y);
  Alcotest.(check bool) "forall x (x&y) = false" true
    (Bdd.is_false (Bdd.forall m [ 0 ] f));
  let g = Bdd.bor m x y in
  Alcotest.(check bool) "forall x (x|y) = y" true (Bdd.equal (Bdd.forall m [ 0 ] g) y);
  Alcotest.(check bool) "exists both (x&y) = true" true
    (Bdd.is_true (Bdd.exists m [ 0; 1 ] f))

let test_and_exists () =
  let m = Bdd.man 3 in
  let x = Bdd.var m 0 and y = Bdd.var m 1 and z = Bdd.var m 2 in
  let f = Bdd.band m x y and g = Bdd.bor m y z in
  let fused = Bdd.and_exists m [ 1 ] f g in
  let plain = Bdd.exists m [ 1 ] (Bdd.band m f g) in
  Alcotest.(check bool) "fused = plain" true (Bdd.equal fused plain)

let test_rename () =
  let m = Bdd.man 4 in
  let f = Bdd.band m (Bdd.var m 0) (Bdd.var m 1) in
  let g = Bdd.rename m (fun v -> v + 2) f in
  let expected = Bdd.band m (Bdd.var m 2) (Bdd.var m 3) in
  Alcotest.(check bool) "renamed" true (Bdd.equal g expected)

let test_sat_count () =
  let m = Bdd.man 3 in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  Alcotest.(check (float 1e-9)) "x&y over 3 vars" 2.0 (Bdd.sat_count m ~nvars:3 (Bdd.band m x y));
  Alcotest.(check (float 1e-9)) "x|y over 3 vars" 6.0 (Bdd.sat_count m ~nvars:3 (Bdd.bor m x y));
  Alcotest.(check (float 1e-9)) "true over 3 vars" 8.0 (Bdd.sat_count m ~nvars:3 (Bdd.btrue m));
  Alcotest.(check (float 1e-9)) "false" 0.0 (Bdd.sat_count m ~nvars:3 (Bdd.bfalse m))

let test_any_sat () =
  let m = Bdd.man 3 in
  let f = Bdd.band m (Bdd.nvar m 0) (Bdd.var m 2) in
  let cube = Bdd.any_sat m f in
  let assign v = List.assoc_opt v cube = Some true in
  Alcotest.(check bool) "sat assignment satisfies" true (Bdd.eval m f assign);
  Alcotest.(check bool) "false raises" true
    (try
       ignore (Bdd.any_sat m (Bdd.bfalse m));
       false
     with Not_found -> true)

let test_iter_sat () =
  let m = Bdd.man 3 in
  let f = Bdd.bor m (Bdd.band m (Bdd.var m 0) (Bdd.var m 1)) (Bdd.var m 2) in
  let count = ref 0 in
  Bdd.iter_sat m ~vars:[| 0; 1; 2 |] (fun _ -> incr count) f;
  Alcotest.(check int) "iter_sat count matches sat_count" 5 !count

let test_support () =
  let m = Bdd.man 4 in
  let f = Bdd.band m (Bdd.var m 0) (Bdd.var m 3) in
  Alcotest.(check (list int)) "support" [ 0; 3 ] (Bdd.support m f)

let test_restrict_cube () =
  let m = Bdd.man 3 in
  let f = Bdd.band m (Bdd.var m 0) (Bdd.bor m (Bdd.var m 1) (Bdd.var m 2)) in
  let r = Bdd.restrict_cube m [ (0, true); (1, false) ] f in
  Alcotest.(check bool) "restricted to z" true (Bdd.equal r (Bdd.var m 2))

let test_size () =
  let m = Bdd.man 3 in
  Alcotest.(check int) "var size" 3 (Bdd.size (Bdd.var m 0));
  Alcotest.(check int) "const size" 2 (Bdd.size (Bdd.btrue m))

(* a moderately large function: parity of 10 variables (BDD size is
   linear for parity). *)
let test_parity_chain () =
  let m = Bdd.man 10 in
  let parity = List.fold_left (fun acc v -> Bdd.bxor m acc (Bdd.var m v)) (Bdd.bfalse m) (List.init 10 Fun.id) in
  Alcotest.(check (float 1e-3)) "half the assignments" 512.0 (Bdd.sat_count m ~nvars:10 parity);
  Alcotest.(check bool) "linear size" true (Bdd.size parity <= 2 + (2 * 10))

let qcheck_random_exprs =
  (* random 4-variable expression evaluated against a direct interpreter *)
  let open QCheck in
  let rec expr_gen depth =
    let open Gen in
    if depth = 0 then map (fun v -> `Var v) (int_bound 3)
    else
      frequency
        [
          (2, map (fun v -> `Var v) (int_bound 3));
          (2, map2 (fun a b -> `And (a, b)) (expr_gen (depth - 1)) (expr_gen (depth - 1)));
          (2, map2 (fun a b -> `Or (a, b)) (expr_gen (depth - 1)) (expr_gen (depth - 1)));
          (1, map2 (fun a b -> `Xor (a, b)) (expr_gen (depth - 1)) (expr_gen (depth - 1)));
          (1, map (fun a -> `Not a) (expr_gen (depth - 1)));
        ]
  in
  let rec pp_expr = function
    | `Var v -> Printf.sprintf "x%d" v
    | `And (a, b) -> Printf.sprintf "(%s & %s)" (pp_expr a) (pp_expr b)
    | `Or (a, b) -> Printf.sprintf "(%s | %s)" (pp_expr a) (pp_expr b)
    | `Xor (a, b) -> Printf.sprintf "(%s ^ %s)" (pp_expr a) (pp_expr b)
    | `Not a -> Printf.sprintf "~%s" (pp_expr a)
  in
  let arb = make ~print:pp_expr (expr_gen 5) in
  Test.make ~name:"bdd: agrees with direct evaluation on random expressions"
    ~count:200 arb (fun e ->
      let m = Bdd.man 4 in
      let rec build = function
        | `Var v -> Bdd.var m v
        | `And (a, b) -> Bdd.band m (build a) (build b)
        | `Or (a, b) -> Bdd.bor m (build a) (build b)
        | `Xor (a, b) -> Bdd.bxor m (build a) (build b)
        | `Not a -> Bdd.bnot m (build a)
      in
      let bdd = build e in
      let ok = ref true in
      for assignment = 0 to 15 do
        let assign v = (assignment lsr v) land 1 = 1 in
        let rec interp = function
          | `Var v -> assign v
          | `And (a, b) -> interp a && interp b
          | `Or (a, b) -> interp a || interp b
          | `Xor (a, b) -> interp a <> interp b
          | `Not a -> not (interp a)
        in
        if interp e <> Bdd.eval m bdd assign then ok := false
      done;
      !ok)

let qcheck_quantifier_duality =
  QCheck.Test.make ~name:"bdd: exists/forall duality" ~count:100
    QCheck.(pair (int_range 1 100) (int_bound 2))
    (fun (seed, qvar) ->
      let m = Bdd.man 3 in
      let rng = Simcov_util.Rng.create seed in
      (* random function as a random truth table over 3 vars *)
      let minterms = ref (Bdd.bfalse m) in
      for assignment = 0 to 7 do
        if Simcov_util.Rng.bool rng then begin
          let cube =
            Bdd.conj m
              (List.init 3 (fun v ->
                   if (assignment lsr v) land 1 = 1 then Bdd.var m v else Bdd.nvar m v))
          in
          minterms := Bdd.bor m !minterms cube
        end
      done;
      let f = !minterms in
      let lhs = Bdd.exists m [ qvar ] f in
      let rhs = Bdd.bnot m (Bdd.forall m [ qvar ] (Bdd.bnot m f)) in
      Bdd.equal lhs rhs)

let qcheck_and_exists_fused =
  QCheck.Test.make ~name:"bdd: and_exists equals exists of band" ~count:100
    QCheck.(pair (int_range 1 10_000) (int_bound 3))
    (fun (seed, qvar) ->
      let m = Bdd.man 4 in
      let rng = Simcov_util.Rng.create seed in
      let random_fn () =
        let f = ref (Bdd.bfalse m) in
        for assignment = 0 to 15 do
          if Simcov_util.Rng.bool rng then begin
            let cube =
              Bdd.conj m
                (List.init 4 (fun v ->
                     if (assignment lsr v) land 1 = 1 then Bdd.var m v else Bdd.nvar m v))
            in
            f := Bdd.bor m !f cube
          end
        done;
        !f
      in
      let f = random_fn () and g = random_fn () in
      Bdd.equal (Bdd.and_exists m [ qvar ] f g) (Bdd.exists m [ qvar ] (Bdd.band m f g)))

let test_sat_count_guard () =
  let m = Bdd.man 4 in
  let f = Bdd.band m (Bdd.var m 0) (Bdd.var m 3) in
  Alcotest.check_raises "nvars below topvar"
    (Invalid_argument "Bdd.sat_count: nvars = 2 but support contains variable 3")
    (fun () -> ignore (Bdd.sat_count m ~nvars:2 f));
  Alcotest.check_raises "negative nvars"
    (Invalid_argument "Bdd.sat_count: negative nvars") (fun () ->
      ignore (Bdd.sat_count m ~nvars:(-1) f));
  (* at exactly the support bound the count is still defined: x0 & x3
     leaves two free variables *)
  Alcotest.(check (float 1e-9)) "nvars = support max + 1" 4.0 (Bdd.sat_count m ~nvars:4 f)

let test_man_var_limit () =
  Alcotest.(check bool) "1024 vars allowed" true
    (Bdd.num_vars (Bdd.man 1024) = 1024);
  Alcotest.(check bool) "beyond packing limit rejected" true
    (try
       ignore (Bdd.man 1025);
       false
     with Invalid_argument _ -> true)

(* stress the open-addressed tables through their resize path: a
   function with a few thousand distinct nodes *)
let test_table_resize () =
  let n = 24 in
  let m = Bdd.man ~cache_size:16 n in
  let f = ref (Bdd.bfalse m) in
  for i = 0 to n - 2 do
    f := Bdd.bor m !f (Bdd.band m (Bdd.var m i) (Bdd.var m (i + 1)))
  done;
  (* count via both enumeration-free sat_count and semantics probes *)
  let reference assign =
    let ok = ref false in
    for i = 0 to n - 2 do
      if assign i && assign (i + 1) then ok := true
    done;
    !ok
  in
  let rng = Simcov_util.Rng.create 7 in
  for _ = 1 to 500 do
    let bits = Simcov_util.Rng.int rng (1 lsl n) in
    let assign v = (bits lsr v) land 1 = 1 in
    Alcotest.(check bool) "agrees" (reference assign) (Bdd.eval m !f assign)
  done;
  Alcotest.(check bool) "thousands of nodes" true (Bdd.node_count m > 100)

let qcheck_and_exists_list =
  (* the fused multi-conjunct relational product must equal the naive
     exists-of-conjunction on random conjunct lists *)
  QCheck.Test.make ~name:"bdd: and_exists_list equals exists of conj" ~count:150
    QCheck.(pair (int_range 1 100_000) (int_range 0 4))
    (fun (seed, n_extra) ->
      let nv = 6 in
      let m = Bdd.man nv in
      let rng = Simcov_util.Rng.create seed in
      let random_fn () =
        let f = ref (Bdd.bfalse m) in
        for assignment = 0 to (1 lsl nv) - 1 do
          if Simcov_util.Rng.int rng 3 = 0 then begin
            let cube =
              Bdd.conj m
                (List.init nv (fun v ->
                     if (assignment lsr v) land 1 = 1 then Bdd.var m v else Bdd.nvar m v))
            in
            f := Bdd.bor m !f cube
          end
        done;
        !f
      in
      let conjuncts = List.init (1 + n_extra) (fun _ -> random_fn ()) in
      let vars =
        List.filter (fun _ -> Simcov_util.Rng.bool rng) (List.init nv Fun.id)
      in
      Bdd.equal
        (Bdd.and_exists_list m vars conjuncts)
        (Bdd.exists m vars (Bdd.conj m conjuncts)))

let qcheck_sat_count_matches_enumeration =
  QCheck.Test.make ~name:"bdd: sat_count equals iter_sat enumeration" ~count:100
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let m = Bdd.man 4 in
      let rng = Simcov_util.Rng.create seed in
      let f = ref (Bdd.bfalse m) in
      for assignment = 0 to 15 do
        if Simcov_util.Rng.bool rng then begin
          let cube =
            Bdd.conj m
              (List.init 4 (fun v ->
                   if (assignment lsr v) land 1 = 1 then Bdd.var m v else Bdd.nvar m v))
          in
          f := Bdd.bor m !f cube
        end
      done;
      let count = ref 0 in
      Bdd.iter_sat m ~vars:[| 0; 1; 2; 3 |] (fun _ -> incr count) !f;
      float_of_int !count = Bdd.sat_count m ~nvars:4 !f)

let suite =
  [
    Alcotest.test_case "constants" `Quick test_constants;
    Alcotest.test_case "var eval" `Quick test_var_eval;
    Alcotest.test_case "hash consing" `Quick test_hash_consing;
    Alcotest.test_case "connective semantics" `Quick test_connectives_semantics;
    Alcotest.test_case "de morgan" `Quick test_de_morgan;
    Alcotest.test_case "cofactor" `Quick test_cofactor;
    Alcotest.test_case "quantification" `Quick test_quantification;
    Alcotest.test_case "and_exists" `Quick test_and_exists;
    Alcotest.test_case "rename" `Quick test_rename;
    Alcotest.test_case "sat_count" `Quick test_sat_count;
    Alcotest.test_case "any_sat" `Quick test_any_sat;
    Alcotest.test_case "iter_sat" `Quick test_iter_sat;
    Alcotest.test_case "support" `Quick test_support;
    Alcotest.test_case "restrict_cube" `Quick test_restrict_cube;
    Alcotest.test_case "size" `Quick test_size;
    Alcotest.test_case "parity chain" `Quick test_parity_chain;
    Alcotest.test_case "sat_count guard" `Quick test_sat_count_guard;
    Alcotest.test_case "manager var limit" `Quick test_man_var_limit;
    Alcotest.test_case "table resize" `Quick test_table_resize;
    QCheck_alcotest.to_alcotest qcheck_random_exprs;
    QCheck_alcotest.to_alcotest qcheck_quantifier_duality;
    QCheck_alcotest.to_alcotest qcheck_and_exists_fused;
    QCheck_alcotest.to_alcotest qcheck_and_exists_list;
    QCheck_alcotest.to_alcotest qcheck_sat_count_matches_enumeration;
  ]
