open Simcov_graph

let build_graph n edges =
  let g = Digraph.create n in
  List.iter
    (fun (src, dst) -> ignore (Digraph.add_edge g ~src ~dst ~label:0 ~cost:1))
    edges;
  g

let build_weighted n edges =
  let g = Digraph.create n in
  List.iter
    (fun (src, dst, cost) -> ignore (Digraph.add_edge g ~src ~dst ~label:0 ~cost))
    edges;
  g

let test_digraph_basics () =
  let g = Digraph.create 3 in
  let e0 = Digraph.add_edge g ~src:0 ~dst:1 ~label:5 ~cost:2 in
  let _ = Digraph.add_edge g ~src:1 ~dst:2 ~label:7 ~cost:3 in
  Alcotest.(check int) "n_vertices" 3 (Digraph.n_vertices g);
  Alcotest.(check int) "n_edges" 2 (Digraph.n_edges g);
  let e = Digraph.edge g e0 in
  Alcotest.(check int) "src" 0 e.Digraph.src;
  Alcotest.(check int) "dst" 1 e.Digraph.dst;
  Alcotest.(check int) "label" 5 e.Digraph.label;
  Alcotest.(check int) "out_degree" 1 (Digraph.out_degree g 0);
  Alcotest.(check int) "in_degree" 1 (Digraph.in_degree g 2)

let test_digraph_parallel_edges () =
  let g = Digraph.create 2 in
  let _ = Digraph.add_edge g ~src:0 ~dst:1 ~label:0 ~cost:1 in
  let _ = Digraph.add_edge g ~src:0 ~dst:1 ~label:1 ~cost:1 in
  Alcotest.(check int) "two parallel edges" 2 (List.length (Digraph.out_edges g 0))

let test_digraph_reverse () =
  let g = build_graph 3 [ (0, 1); (1, 2) ] in
  let r = Digraph.reverse g in
  Alcotest.(check int) "reversed out-degree of 2" 1 (Digraph.out_degree r 2);
  Alcotest.(check int) "reversed out-degree of 0" 0 (Digraph.out_degree r 0)

let test_scc_single_cycle () =
  let g = build_graph 3 [ (0, 1); (1, 2); (2, 0) ] in
  Alcotest.(check bool) "cycle is SC" true (Scc.is_strongly_connected g)

let test_scc_two_components () =
  let g = build_graph 4 [ (0, 1); (1, 0); (2, 3); (3, 2); (1, 2) ] in
  let _, k = Scc.components g in
  Alcotest.(check int) "two components" 2 k;
  Alcotest.(check bool) "not SC" false (Scc.is_strongly_connected g)

let test_scc_topological_order () =
  (* edge 1 -> 2 crosses components {0,1} -> {2,3}; Tarjan numbers the
     sink component first, so comp(src) > comp(dst). *)
  let g = build_graph 4 [ (0, 1); (1, 0); (2, 3); (3, 2); (1, 2) ] in
  let comp, _ = Scc.components g in
  Alcotest.(check bool) "cross edge order" true (comp.(1) > comp.(2))

let test_scc_dag () =
  let g = build_graph 4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  let _, k = Scc.components g in
  Alcotest.(check int) "all singleton" 4 k

let test_scc_restrict_ok () =
  let g = build_graph 4 [ (0, 1); (1, 0); (2, 3) ] in
  match Scc.restrict_strongly_connected g ~root:0 with
  | Some members -> Alcotest.(check (array int)) "component 0" [| 0; 1 |] members
  | None -> Alcotest.fail "expected Some"

let test_scc_restrict_escapes () =
  let g = build_graph 3 [ (0, 1); (1, 0); (1, 2) ] in
  Alcotest.(check bool) "reachable escapes component" true
    (Scc.restrict_strongly_connected g ~root:0 = None)

let test_scc_condensation () =
  (* two 2-cycles bridged by 1 -> 2, plus a parallel bridge 0 -> 3:
     the condensation has one deduplicated cross edge *)
  let g =
    build_graph 4 [ (0, 1); (1, 0); (2, 3); (3, 2); (1, 2); (0, 3) ]
  in
  let comp, k, edges = Scc.condensation g in
  Alcotest.(check int) "two components" 2 k;
  Alcotest.(check (list (pair int int)))
    "single deduplicated cut edge"
    [ (comp.(1), comp.(2)) ]
    edges;
  (* strongly connected graph: no cross edges at all *)
  let g = build_graph 3 [ (0, 1); (1, 2); (2, 0) ] in
  let _, k, edges = Scc.condensation g in
  Alcotest.(check int) "one component" 1 k;
  Alcotest.(check (list (pair int int))) "no cut edges" [] edges

let test_scc_large_no_overflow () =
  (* a million-vertex cycle would blow the OCaml stack if Tarjan (or
     the condensation walk) recursed per vertex; the iterative
     implementation must survive it *)
  let n = 1_000_000 in
  let g = Digraph.create n in
  for v = 0 to n - 1 do
    ignore (Digraph.add_edge g ~src:v ~dst:((v + 1) mod n) ~label:0 ~cost:1)
  done;
  let _, k, edges = Scc.condensation g in
  Alcotest.(check int) "one giant component" 1 k;
  Alcotest.(check (list (pair int int))) "no cut edges" [] edges;
  (* same size as a path: n singleton components, n-1 cut edges *)
  let p = Digraph.create n in
  for v = 0 to n - 2 do
    ignore (Digraph.add_edge p ~src:v ~dst:(v + 1) ~label:0 ~cost:1)
  done;
  let _, k, edges = Scc.condensation p in
  Alcotest.(check int) "all singleton" n k;
  Alcotest.(check int) "n-1 cut edges" (n - 1) (List.length edges)

let test_bfs () =
  let g = build_graph 4 [ (0, 1); (1, 2); (0, 2) ] in
  let d = Shortest.bfs g ~source:0 in
  Alcotest.(check int) "d0" 0 d.(0);
  Alcotest.(check int) "d1" 1 d.(1);
  Alcotest.(check int) "d2 via direct edge" 1 d.(2);
  Alcotest.(check bool) "unreachable" true (d.(3) = max_int)

let test_dijkstra () =
  let g = build_weighted 4 [ (0, 1, 1); (1, 2, 1); (0, 2, 5); (2, 3, 1) ] in
  let d, pred = Shortest.dijkstra g ~source:0 in
  Alcotest.(check int) "shortest to 2" 2 d.(2);
  Alcotest.(check int) "shortest to 3" 3 d.(3);
  let path = Shortest.path_to ~pred_edge:pred g 3 in
  Alcotest.(check int) "path length" 3 (List.length path);
  (* verify the path is connected and starts at the source *)
  let first = Digraph.edge g (List.hd path) in
  Alcotest.(check int) "starts at source" 0 first.Digraph.src

let test_dijkstra_prefers_cheap () =
  let g = build_weighted 3 [ (0, 1, 10); (0, 2, 1); (2, 1, 2) ] in
  let d, _ = Shortest.dijkstra g ~source:0 in
  Alcotest.(check int) "indirect cheaper" 3 d.(1)

let test_mcmf_simple () =
  (* two disjoint unit paths 0->1->3 and 0->2->3 *)
  let net = Mcmf.create 4 in
  let _ = Mcmf.add_arc net ~src:0 ~dst:1 ~cap:1 ~cost:1 in
  let _ = Mcmf.add_arc net ~src:0 ~dst:2 ~cap:1 ~cost:2 in
  let _ = Mcmf.add_arc net ~src:1 ~dst:3 ~cap:1 ~cost:1 in
  let _ = Mcmf.add_arc net ~src:2 ~dst:3 ~cap:1 ~cost:1 in
  let flow, cost = Mcmf.solve net ~source:0 ~sink:3 in
  Alcotest.(check int) "max flow" 2 flow;
  Alcotest.(check int) "min cost" 5 cost

let test_mcmf_prefers_cheap_path () =
  let net = Mcmf.create 3 in
  let cheap = Mcmf.add_arc net ~src:0 ~dst:1 ~cap:1 ~cost:1 in
  let expensive = Mcmf.add_arc net ~src:0 ~dst:1 ~cap:1 ~cost:10 in
  let _ = Mcmf.add_arc net ~src:1 ~dst:2 ~cap:1 ~cost:0 in
  let flow, cost = Mcmf.solve net ~source:0 ~sink:2 in
  Alcotest.(check int) "flow 1" 1 flow;
  Alcotest.(check int) "cost 1" 1 cost;
  Alcotest.(check int) "cheap arc used" 1 (Mcmf.flow_on net cheap);
  Alcotest.(check int) "expensive arc unused" 0 (Mcmf.flow_on net expensive)

let test_mcmf_residual_rerouting () =
  (* classic rerouting: direct path must be partially undone. *)
  let net = Mcmf.create 4 in
  let _ = Mcmf.add_arc net ~src:0 ~dst:1 ~cap:2 ~cost:1 in
  let _ = Mcmf.add_arc net ~src:1 ~dst:3 ~cap:1 ~cost:1 in
  let _ = Mcmf.add_arc net ~src:1 ~dst:2 ~cap:1 ~cost:1 in
  let _ = Mcmf.add_arc net ~src:2 ~dst:3 ~cap:1 ~cost:1 in
  let flow, _ = Mcmf.solve net ~source:0 ~sink:3 in
  Alcotest.(check int) "flow 2" 2 flow

let check_walk g start edges =
  (* the edge list must form a connected closed walk from start *)
  let current = ref start in
  List.iter
    (fun id ->
      let e = Digraph.edge g id in
      Alcotest.(check int) "walk connected" !current e.Digraph.src;
      current := e.Digraph.dst)
    edges;
  Alcotest.(check int) "walk closed" start !current

let test_euler_cycle () =
  let g = build_graph 3 [ (0, 1); (1, 2); (2, 0) ] in
  let mult = Array.make 3 1 in
  match Euler.circuit g ~start:0 ~mult with
  | Some edges ->
      Alcotest.(check int) "three edges" 3 (List.length edges);
      check_walk g 0 edges
  | None -> Alcotest.fail "expected circuit"

let test_euler_multiplicities () =
  let g = build_graph 2 [ (0, 1); (1, 0) ] in
  let mult = [| 2; 2 |] in
  match Euler.circuit g ~start:0 ~mult with
  | Some edges ->
      Alcotest.(check int) "four traversals" 4 (List.length edges);
      check_walk g 0 edges
  | None -> Alcotest.fail "expected circuit"

let test_euler_unbalanced () =
  let g = build_graph 2 [ (0, 1) ] in
  Alcotest.(check bool) "no circuit" true (Euler.circuit g ~start:0 ~mult:[| 1 |] = None)

let test_euler_disconnected () =
  let g = build_graph 4 [ (0, 1); (1, 0); (2, 3); (3, 2) ] in
  Alcotest.(check bool) "not connected to start" true
    (Euler.circuit g ~start:0 ~mult:[| 1; 1; 1; 1 |] = None)

let test_euler_self_loop () =
  let g = build_graph 2 [ (0, 0); (0, 1); (1, 0) ] in
  match Euler.circuit g ~start:0 ~mult:[| 1; 1; 1 |] with
  | Some edges ->
      Alcotest.(check int) "three traversals" 3 (List.length edges);
      check_walk g 0 edges
  | None -> Alcotest.fail "expected circuit"

let check_tour_covers g (tour : Cpp.tour) =
  let m = Digraph.n_edges g in
  let hit = Array.make m false in
  List.iter (fun id -> hit.(id) <- true) tour.Cpp.edges;
  Alcotest.(check bool) "covers all edges" true (Array.for_all Fun.id hit)

let test_cpp_balanced_graph () =
  let g = build_graph 3 [ (0, 1); (1, 2); (2, 0) ] in
  match Cpp.solve g ~start:0 with
  | Some tour ->
      Alcotest.(check int) "tour length equals |E|" 3 tour.Cpp.length;
      Alcotest.(check int) "no extra cost" 0 tour.Cpp.extra_cost;
      check_tour_covers g tour;
      check_walk g 0 tour.Cpp.edges
  | None -> Alcotest.fail "expected tour"

let test_cpp_unbalanced_graph () =
  (* 0->1 twice requires revisiting: edges (0,1),(1,0),(0,2),(2,0) are
     balanced, but adding another (0,1) forces one duplicated return. *)
  let g = build_graph 3 [ (0, 1); (1, 0); (0, 2); (2, 0); (0, 1) ] in
  match Cpp.solve g ~start:0 with
  | Some tour ->
      check_tour_covers g tour;
      check_walk g 0 tour.Cpp.edges;
      Alcotest.(check int) "one extra traversal" 6 tour.Cpp.length;
      Alcotest.(check int) "extra cost 1" 1 tour.Cpp.extra_cost
  | None -> Alcotest.fail "expected tour"

let test_cpp_not_strongly_connected () =
  let g = build_graph 2 [ (0, 1) ] in
  Alcotest.(check bool) "no tour" true (Cpp.solve g ~start:0 = None)

let test_cpp_self_loops () =
  let g = build_graph 2 [ (0, 0); (0, 1); (1, 1); (1, 0) ] in
  match Cpp.solve g ~start:0 with
  | Some tour ->
      check_tour_covers g tour;
      check_walk g 0 tour.Cpp.edges;
      Alcotest.(check int) "length 4" 4 tour.Cpp.length
  | None -> Alcotest.fail "expected tour"

let test_greedy_covers () =
  let g = build_graph 3 [ (0, 1); (1, 2); (2, 0); (0, 2); (2, 1); (1, 0) ] in
  match Cpp.greedy g ~start:0 with
  | Some tour ->
      check_tour_covers g tour;
      check_walk g 0 tour.Cpp.edges
  | None -> Alcotest.fail "expected greedy tour"

let test_greedy_never_shorter_than_cpp () =
  let rng = Simcov_util.Rng.create 123 in
  for _ = 1 to 20 do
    let n = 3 + Simcov_util.Rng.int rng 5 in
    let g = Digraph.create n in
    (* random cycle ensures strong connectivity *)
    for v = 0 to n - 1 do
      ignore (Digraph.add_edge g ~src:v ~dst:((v + 1) mod n) ~label:0 ~cost:1)
    done;
    for _ = 1 to n * 2 do
      let s = Simcov_util.Rng.int rng n and d = Simcov_util.Rng.int rng n in
      ignore (Digraph.add_edge g ~src:s ~dst:d ~label:0 ~cost:1)
    done;
    match (Cpp.solve g ~start:0, Cpp.greedy g ~start:0) with
    | Some opt, Some gr ->
        Alcotest.(check bool) "optimal <= greedy" true (opt.Cpp.cost <= gr.Cpp.cost);
        Alcotest.(check bool) "optimal >= lower bound" true
          (opt.Cpp.cost >= Cpp.lower_bound g);
        check_tour_covers g opt;
        check_tour_covers g gr
    | _ -> Alcotest.fail "tours must exist on SC graphs"
  done

let qcheck_cpp_random =
  QCheck.Test.make ~name:"cpp: random SC graphs yield covering closed walks" ~count:40
    QCheck.(pair (int_range 2 8) (int_range 1 42))
    (fun (n, seed) ->
      let rng = Simcov_util.Rng.create seed in
      let g = Digraph.create n in
      for v = 0 to n - 1 do
        ignore (Digraph.add_edge g ~src:v ~dst:((v + 1) mod n) ~label:0 ~cost:1)
      done;
      for _ = 1 to n do
        let s = Simcov_util.Rng.int rng n and d = Simcov_util.Rng.int rng n in
        ignore (Digraph.add_edge g ~src:s ~dst:d ~label:0 ~cost:1)
      done;
      match Cpp.solve g ~start:0 with
      | None -> false
      | Some tour ->
          let m = Digraph.n_edges g in
          let hit = Array.make m false in
          let ok = ref true in
          let current = ref 0 in
          List.iter
            (fun id ->
              let e = Digraph.edge g id in
              if e.Digraph.src <> !current then ok := false;
              current := e.Digraph.dst;
              hit.(id) <- true)
            tour.Cpp.edges;
          !ok && !current = 0 && Array.for_all Fun.id hit
          && tour.Cpp.length = List.length tour.Cpp.edges)

let qcheck_cpp_cost_identity =
  QCheck.Test.make ~name:"cpp: tour cost = lower bound + extra cost" ~count:50
    QCheck.(pair (int_range 2 10) (int_range 1 999))
    (fun (n, seed) ->
      let rng = Simcov_util.Rng.create seed in
      let g = Digraph.create n in
      for v = 0 to n - 1 do
        ignore
          (Digraph.add_edge g ~src:v ~dst:((v + 1) mod n) ~label:0
             ~cost:(1 + Simcov_util.Rng.int rng 4))
      done;
      for _ = 1 to n do
        let s = Simcov_util.Rng.int rng n and d = Simcov_util.Rng.int rng n in
        ignore (Digraph.add_edge g ~src:s ~dst:d ~label:0 ~cost:(1 + Simcov_util.Rng.int rng 4))
      done;
      match Cpp.solve g ~start:0 with
      | None -> false
      | Some tour ->
          tour.Cpp.cost = Cpp.lower_bound g + tour.Cpp.extra_cost
          &&
          (* walking the tour and summing edge costs gives tour.cost *)
          let total = List.fold_left (fun acc id -> acc + (Digraph.edge g id).Digraph.cost) 0 tour.Cpp.edges in
          total = tour.Cpp.cost)

let qcheck_scc_mutual_reachability =
  QCheck.Test.make ~name:"scc: same component iff mutually reachable" ~count:50
    QCheck.(pair (int_range 2 8) (int_range 1 999))
    (fun (n, seed) ->
      let rng = Simcov_util.Rng.create seed in
      let g = Digraph.create n in
      for _ = 1 to 2 * n do
        let s = Simcov_util.Rng.int rng n and d = Simcov_util.Rng.int rng n in
        ignore (Digraph.add_edge g ~src:s ~dst:d ~label:0 ~cost:1)
      done;
      let comp, _ = Scc.components g in
      let reach = Array.init n (fun v -> Shortest.bfs g ~source:v) in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          let mutual = reach.(u).(v) <> max_int && reach.(v).(u) <> max_int in
          if (comp.(u) = comp.(v)) <> mutual then ok := false
        done
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "digraph basics" `Quick test_digraph_basics;
    Alcotest.test_case "digraph parallel edges" `Quick test_digraph_parallel_edges;
    Alcotest.test_case "digraph reverse" `Quick test_digraph_reverse;
    Alcotest.test_case "scc single cycle" `Quick test_scc_single_cycle;
    Alcotest.test_case "scc two components" `Quick test_scc_two_components;
    Alcotest.test_case "scc topological order" `Quick test_scc_topological_order;
    Alcotest.test_case "scc dag" `Quick test_scc_dag;
    Alcotest.test_case "scc restrict ok" `Quick test_scc_restrict_ok;
    Alcotest.test_case "scc restrict escapes" `Quick test_scc_restrict_escapes;
    Alcotest.test_case "scc condensation" `Quick test_scc_condensation;
    Alcotest.test_case "scc 1M vertices, no overflow" `Quick test_scc_large_no_overflow;
    Alcotest.test_case "bfs" `Quick test_bfs;
    Alcotest.test_case "dijkstra" `Quick test_dijkstra;
    Alcotest.test_case "dijkstra prefers cheap" `Quick test_dijkstra_prefers_cheap;
    Alcotest.test_case "mcmf simple" `Quick test_mcmf_simple;
    Alcotest.test_case "mcmf prefers cheap" `Quick test_mcmf_prefers_cheap_path;
    Alcotest.test_case "mcmf rerouting" `Quick test_mcmf_residual_rerouting;
    Alcotest.test_case "euler cycle" `Quick test_euler_cycle;
    Alcotest.test_case "euler multiplicities" `Quick test_euler_multiplicities;
    Alcotest.test_case "euler unbalanced" `Quick test_euler_unbalanced;
    Alcotest.test_case "euler disconnected" `Quick test_euler_disconnected;
    Alcotest.test_case "euler self loop" `Quick test_euler_self_loop;
    Alcotest.test_case "cpp balanced" `Quick test_cpp_balanced_graph;
    Alcotest.test_case "cpp unbalanced" `Quick test_cpp_unbalanced_graph;
    Alcotest.test_case "cpp not SC" `Quick test_cpp_not_strongly_connected;
    Alcotest.test_case "cpp self loops" `Quick test_cpp_self_loops;
    Alcotest.test_case "greedy covers" `Quick test_greedy_covers;
    Alcotest.test_case "greedy vs cpp" `Quick test_greedy_never_shorter_than_cpp;
    QCheck_alcotest.to_alcotest qcheck_cpp_random;
    QCheck_alcotest.to_alcotest qcheck_cpp_cost_identity;
    QCheck_alcotest.to_alcotest qcheck_scc_mutual_reachability;
  ]
