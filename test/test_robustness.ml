(* Chaos tests for the resource-governance layer: BDD garbage
   collection against a GC-free oracle, budgeted traversals and tours,
   the validate-dlx degradation ladder, and parser fuzzing. *)

open Simcov_bdd
open Simcov_netlist
module Budget = Simcov_util.Budget
module Rng = Simcov_util.Rng

(* structural equality across managers (hash-consing only holds within
   one manager) *)
let rec same_shape a b =
  if Bdd.is_false a then Bdd.is_false b
  else if Bdd.is_true a then Bdd.is_true b
  else
    (not (Bdd.is_false b || Bdd.is_true b))
    && Bdd.topvar a = Bdd.topvar b
    && same_shape (Bdd.low a) (Bdd.low b)
    && same_shape (Bdd.high a) (Bdd.high b)

(* --- GC vs. oracle: random op sequences with forced sweeps --- *)

(* Run the same random 500-op sequence in a collected manager (sweep
   forced every [sweep_every] ops, every live value rooted) and in an
   untouched oracle manager; the value pools must stay node-for-node
   identical. *)
let gc_oracle_run ~seed ~sweep_every =
  let nvars = 10 in
  let m = Bdd.man nvars in
  let o = Bdd.man nvars in
  let rng = Rng.create seed in
  (* parallel pools; pool_m entries are rooted in m *)
  let pool_m = ref [| Bdd.btrue m |] in
  let pool_o = ref [| Bdd.btrue o |] in
  let roots = Hashtbl.create 64 in
  let push a b =
    Hashtbl.replace roots (Bdd.id a) (Bdd.add_root m a);
    pool_m := Array.append !pool_m [| a |];
    pool_o := Array.append !pool_o [| b |]
  in
  let pick_pair () =
    let i = Rng.int rng (Array.length !pool_m) in
    ((!pool_m).(i), (!pool_o).(i))
  in
  for step = 1 to 500 do
    (match Rng.int rng 7 with
    | 0 ->
        let v = Rng.int rng nvars in
        push (Bdd.var m v) (Bdd.var o v)
    | 1 ->
        let a, a' = pick_pair () in
        let b, b' = pick_pair () in
        push (Bdd.band m a b) (Bdd.band o a' b')
    | 2 ->
        let a, a' = pick_pair () in
        let b, b' = pick_pair () in
        push (Bdd.bor m a b) (Bdd.bor o a' b')
    | 3 ->
        let a, a' = pick_pair () in
        let b, b' = pick_pair () in
        push (Bdd.bxor m a b) (Bdd.bxor o a' b')
    | 4 ->
        let a, a' = pick_pair () in
        push (Bdd.bnot m a) (Bdd.bnot o a')
    | 5 ->
        let a, a' = pick_pair () in
        let b, b' = pick_pair () in
        let c, c' = pick_pair () in
        push (Bdd.ite m a b c) (Bdd.ite o a' b' c')
    | _ ->
        let a, a' = pick_pair () in
        let vs = [ Rng.int rng nvars; Rng.int rng nvars ] in
        push (Bdd.exists m vs a) (Bdd.exists o vs a'));
    if step mod sweep_every = 0 then ignore (Bdd.gc m)
  done;
  Array.iteri
    (fun i a ->
      if not (same_shape a (!pool_o).(i)) then
        Alcotest.failf "pool entry %d diverged after GC (seed %d)" i seed)
    !pool_m;
  (* hash-consing must survive: recomputing an old value physically
     rediscovers the rooted node *)
  let n = Array.length !pool_m in
  for i = 0 to n - 1 do
    for j = i + 1 to min (i + 5) (n - 1) do
      let fresh = Bdd.band m (!pool_m).(i) (!pool_m).(j) in
      let fresh' = Bdd.band m (!pool_m).(i) (!pool_m).(j) in
      Alcotest.(check bool) "recomputation is hash-consed" true
        (Bdd.equal fresh fresh')
    done
  done

let test_gc_oracle () =
  List.iter
    (fun (seed, k) -> gc_oracle_run ~seed ~sweep_every:k)
    [ (1, 25); (2, 50); (3, 100); (4, 7) ]

let test_gc_preserves_counts () =
  (* sat_count and size of a rooted BDD are identical before and after
     a sweep that reclaims garbage around it *)
  let m = Bdd.man 12 in
  let f =
    Bdd.protect m
      (Bdd.conj m
         (List.init 6 (fun i ->
              Bdd.bor m (Bdd.var m (2 * i)) (Bdd.nvar m ((2 * i) + 1)))))
  in
  (* garbage: a pile of unrooted intermediates *)
  for i = 0 to 10 do
    ignore (Bdd.bxor m f (Bdd.var m (i mod 12)))
  done;
  let count0 = Bdd.sat_count m ~nvars:12 f in
  let size0 = Bdd.size f in
  let live_before = Bdd.node_count m in
  let freed = Bdd.gc m in
  Alcotest.(check bool) "something was reclaimed" true (freed > 0);
  Alcotest.(check bool) "live count dropped" true (Bdd.node_count m < live_before);
  Alcotest.(check (float 0.0)) "sat_count stable" count0 (Bdd.sat_count m ~nvars:12 f);
  Alcotest.(check int) "size stable" size0 (Bdd.size f);
  let stats = Bdd.gc_stats m in
  Alcotest.(check bool) "stats recorded" true
    (stats.Bdd.runs >= 1 && stats.Bdd.reclaimed >= freed)

let test_auto_gc_retry () =
  (* a node ceiling forces automatic collect-and-retry mid-operation;
     results must match an unlimited manager *)
  let nvars = 14 in
  let m = Bdd.man ~max_nodes:80 nvars in
  let o = Bdd.man nvars in
  let acc_m = ref (Bdd.btrue m) in
  let acc_o = ref (Bdd.btrue o) in
  let root = Bdd.add_root m !acc_m in
  for i = 0 to nvars - 2 do
    acc_m := Bdd.band m !acc_m (Bdd.bxor m (Bdd.var m i) (Bdd.var m (i + 1)));
    Bdd.set_root m root !acc_m;
    acc_o := Bdd.band o !acc_o (Bdd.bxor o (Bdd.var o i) (Bdd.var o (i + 1)))
  done;
  Alcotest.(check bool) "ceiling respected" true (Bdd.node_count m <= 80);
  Alcotest.(check bool) "collections happened" true ((Bdd.gc_stats m).Bdd.runs > 0);
  Alcotest.(check bool) "same function as oracle" true (same_shape !acc_m !acc_o)

let test_node_limit_raises_when_hopeless () =
  (* when even a sweep cannot fit the operands, Node_limit escapes and
     the manager stays usable *)
  let m = Bdd.man ~max_nodes:8 16 in
  let acc = ref (Bdd.btrue m) in
  let root = Bdd.add_root m !acc in
  (match
     for i = 0 to 15 do
       acc := Bdd.band m !acc (Bdd.bxor m (Bdd.var m i) (Bdd.var m ((i + 7) mod 16)));
       Bdd.set_root m root !acc
     done
   with
  | () -> Alcotest.fail "expected Node_limit"
  | exception Bdd.Node_limit _ -> ());
  (* still usable afterwards *)
  Alcotest.(check bool) "manager alive" true
    (Bdd.is_true (Bdd.bor m !acc (Bdd.bnot m !acc)))

let test_unlimited_budget_is_stateless () =
  (* the shared unlimited budget is a singleton: stepping it must not
     accumulate state across unrelated computations *)
  Budget.step Budget.unlimited;
  Budget.step Budget.unlimited;
  Alcotest.(check int) "no steps accumulate" 0 (Budget.steps_used Budget.unlimited)

(* --- budgeted traversal and tour --- *)

let toggle_circuit () =
  let open Circuit.Build in
  let ctx = create "toggle3" in
  let en = input ctx "en" in
  let b = reg_vec ctx "b" 3 in
  (* 3-bit binary counter, gated by [en] *)
  let next =
    [|
      Expr.( !! ) b.(0);
      Expr.( ^^^ ) b.(1) b.(0);
      Expr.( ^^^ ) b.(2) (Expr.( &&& ) b.(1) b.(0));
    |]
  in
  Array.iteri (fun i r -> assign ctx r (Expr.mux en next.(i) r)) b;
  output ctx "msb" b.(2);
  finish ctx

let test_traverse_truncation_is_sound () =
  let c = toggle_circuit () in
  let sym = Simcov_symbolic.Symfsm.of_circuit c in
  let exact = Simcov_symbolic.Symfsm.traverse sym in
  Alcotest.(check bool) "exact is exact" true
    (exact.Simcov_symbolic.Symfsm.truncated = None);
  let man = sym.Simcov_symbolic.Symfsm.man in
  for max_steps = 1 to 4 do
    let budget = Budget.create ~max_steps () in
    let tr = Simcov_symbolic.Symfsm.traverse ~budget sym in
    Alcotest.(check bool)
      (Printf.sprintf "truncated at %d steps" max_steps)
      true
      (tr.Simcov_symbolic.Symfsm.truncated = Some Budget.Steps);
    (* the partial reached set under-approximates the fixpoint *)
    let outside =
      Bdd.band man tr.Simcov_symbolic.Symfsm.reached
        (Bdd.bnot man exact.Simcov_symbolic.Symfsm.reached)
    in
    Alcotest.(check bool) "subset of the fixpoint" true (Bdd.is_false outside);
    Alcotest.(check bool) "iterations bounded" true
      (tr.Simcov_symbolic.Symfsm.iterations <= max_steps)
  done

let test_gc_interleaved_traversal_agrees () =
  (* regression for the rooting contract: collections forced by a node
     ceiling in the middle of of_circuit / traverse — sweeping while
     expr_bdd siblings, image results and frontier sets are held as
     intermediates — must leave the fixpoint identical to an unlimited
     oracle, or truncate to a sound under-approximation; never raise *)
  let c = toggle_circuit () in
  let oracle = Simcov_symbolic.Symfsm.of_circuit c in
  let exact = Simcov_symbolic.Symfsm.traverse oracle in
  let exact_states =
    Simcov_symbolic.Symfsm.count_states oracle exact.Simcov_symbolic.Symfsm.reached
  in
  let gc_complete_runs = ref 0 in
  List.iter
    (fun max_nodes ->
      match
        Simcov_symbolic.Symfsm.of_circuit ~budget:(Budget.create ~max_nodes ()) c
      with
      | exception Bdd.Node_limit _ -> () (* even the relation does not fit *)
      | sym -> (
          let tr = Simcov_symbolic.Symfsm.traverse sym in
          let states =
            Simcov_symbolic.Symfsm.count_states sym
              tr.Simcov_symbolic.Symfsm.reached
          in
          match tr.Simcov_symbolic.Symfsm.truncated with
          | Some Budget.Nodes ->
              Alcotest.(check bool)
                (Printf.sprintf "ceiling %d: truncation is sound" max_nodes)
                true (states <= exact_states)
          | Some r ->
              Alcotest.failf "ceiling %d: unexpected truncation by %s" max_nodes
                (Budget.resource_name r)
          | None ->
              Alcotest.(check (float 0.0))
                (Printf.sprintf "ceiling %d: fixpoint agrees" max_nodes)
                exact_states states;
              if (Bdd.gc_stats sym.Simcov_symbolic.Symfsm.man).Bdd.runs > 0 then
                incr gc_complete_runs))
    [ 40; 50; 60; 70; 80; 100; 120 ];
  (* the sweep must include runs that both garbage-collected and
     completed exactly — otherwise the ceilings stopped exercising the
     GC-interleaved path and need retuning *)
  Alcotest.(check bool) "GC-interleaved exact runs observed" true
    (!gc_complete_runs >= 2)

let test_symtour_chaos_budgets () =
  let c = toggle_circuit () in
  let exact = Simcov_symbolic.Symtour.generate c in
  Alcotest.(check bool) "unbudgeted tour completes" true
    exact.Simcov_symbolic.Symtour.complete;
  let rng = Rng.create 77 in
  for trial = 1 to 12 do
    let budget =
      match Rng.int rng 3 with
      | 0 -> Budget.create ~max_steps:(1 + Rng.int rng 5) ()
      | 1 -> Budget.create ~max_nodes:(30 + Rng.int rng 200) ()
      | _ ->
          Budget.create
            ~max_steps:(1 + Rng.int rng 5)
            ~max_nodes:(30 + Rng.int rng 200) ()
    in
    match Simcov_symbolic.Symtour.generate ~budget c with
    | r ->
        (* a well-formed partial result: progress never exceeds the
           total and completeness implies no truncation *)
        let p = r.Simcov_symbolic.Symtour.progress in
        Alcotest.(check bool) "covered <= total" true
          (p.Simcov_symbolic.Symtour.covered <= p.Simcov_symbolic.Symtour.total +. 0.5);
        Alcotest.(check int) "word matches steps"
          p.Simcov_symbolic.Symtour.steps
          (List.length r.Simcov_symbolic.Symtour.word);
        if r.Simcov_symbolic.Symtour.complete then
          Alcotest.(check bool) "complete implies not truncated" true
            (r.Simcov_symbolic.Symtour.truncated_by = None)
    | exception e ->
        Alcotest.failf "tour raised %s (trial %d)" (Printexc.to_string e) trial
  done

(* --- the validate-dlx degradation ladder --- *)

let test_ladder_tiny_node_budget () =
  let budget = Budget.create ~max_nodes:64 () in
  let r = Simcov_core.Methodology.validate_dlx ~budget () in
  let open Simcov_core.Methodology in
  Alcotest.(check bool) "explicit tier" true (r.symbolic.tier = Explicit);
  Alcotest.(check int) "both symbolic tiers noted" 2
    (List.length r.symbolic.degradations);
  (* the explicit figures agree with the tabulated model *)
  Alcotest.(check (float 0.0)) "states" (float_of_int r.model_states)
    r.symbolic.sym_states;
  Alcotest.(check (float 0.0)) "transitions"
    (float_of_int r.model_transitions)
    r.symbolic.sym_transitions;
  (* and the rest of the pipeline was untouched by the degradation *)
  Alcotest.(check bool) "certificate still holds" true (Result.is_ok r.certificate);
  Alcotest.(check int) "all bugs still found" (List.length r.bug_results)
    r.n_bugs_detected

let test_ladder_unlimited_symbolic_agrees () =
  let r = Simcov_core.Methodology.validate_dlx () in
  let open Simcov_core.Methodology in
  Alcotest.(check bool) "top tier" true (r.symbolic.tier = Partitioned_symbolic);
  Alcotest.(check (list string)) "no degradation" [] r.symbolic.degradations;
  Alcotest.(check (float 0.0)) "symbolic states agree"
    (float_of_int r.model_states) r.symbolic.sym_states;
  Alcotest.(check (float 0.0)) "symbolic transitions agree"
    (float_of_int r.model_transitions)
    r.symbolic.sym_transitions

let test_validate_chaos_budgets () =
  (* random tightened budgets: the pipeline either returns a
     well-formed report or signals Budget_exceeded — never anything
     else *)
  let rng = Rng.create 4242 in
  for trial = 1 to 8 do
    let budget =
      match Rng.int rng 3 with
      | 0 -> Budget.create ~max_nodes:(32 + Rng.int rng 5000) ()
      | 1 -> Budget.create ~timeout_s:(Rng.float rng 0.05) ()
      | _ ->
          Budget.create
            ~timeout_s:(0.01 +. Rng.float rng 0.1)
            ~max_nodes:(32 + Rng.int rng 5000) ()
    in
    match Simcov_core.Methodology.validate_dlx ~budget () with
    | r ->
        let open Simcov_core.Methodology in
        Alcotest.(check bool) "figures populated" true
          (r.symbolic.sym_states > 0.0 && r.symbolic.sym_transitions > 0.0);
        Alcotest.(check bool) "degradations explain the tier" true
          (match r.symbolic.tier with
          | Partitioned_symbolic -> r.symbolic.degradations = []
          | Monolithic_symbolic -> List.length r.symbolic.degradations = 1
          | Explicit -> List.length r.symbolic.degradations = 2)
    | exception Budget.Budget_exceeded _ -> ()
    | exception e ->
        Alcotest.failf "validate_dlx raised %s (trial %d)" (Printexc.to_string e)
          trial
  done

(* --- serializer fuzzing --- *)

let test_serialize_fuzz () =
  let c = toggle_circuit () in
  let dump = Serialize.to_string c in
  let n = String.length dump in
  let rng = Rng.create 99 in
  for _ = 1 to 2000 do
    let b = Bytes.of_string dump in
    (* corrupt 1-3 random bytes with arbitrary values *)
    for _ = 0 to Rng.int rng 3 do
      Bytes.set b (Rng.int rng n) (Char.chr (Rng.int rng 256))
    done;
    let text = Bytes.to_string b in
    match Serialize.of_string text with
    | Ok _ -> ()
    | Error e ->
        (* positioned errors point into the input *)
        let open Serialize in
        if e.line < 0 || e.col < 0 then
          Alcotest.failf "negative error position for %S" text
    | exception e ->
        Alcotest.failf "of_string raised %s on corrupted dump" (Printexc.to_string e)
  done;
  (* truncation at every byte boundary is also harmless *)
  for k = 0 to n - 1 do
    match Serialize.of_string (String.sub dump 0 k) with
    | Ok _ | Error _ -> ()
    | exception e ->
        Alcotest.failf "of_string raised %s on truncated dump" (Printexc.to_string e)
  done

(* --- crash chaos: SIGKILL a checkpointing campaign, resume it --- *)

module Campaign = Simcov_campaign.Campaign
module Covdb = Simcov_covdb.Covdb
module Detect = Simcov_coverage.Detect
module Fault = Simcov_coverage.Fault

let verdict_of_status = function
  | Covdb.Undetected ->
      {
        Campaign.detected = false;
        excited = false;
        detect_step = None;
        excite_step = None;
      }
  | Covdb.Excited e ->
      {
        Campaign.detected = false;
        excited = true;
        detect_step = None;
        excite_step = Some e;
      }
  | Covdb.Detected { excite_step; detect_step } ->
      {
        Campaign.detected = true;
        excited = excite_step <> None;
        detect_step = Some detect_step;
        excite_step;
      }

let status_of_verdict (v : Campaign.verdict) =
  match (v.Campaign.detect_step, v.Campaign.excite_step) with
  | Some ds, es -> Covdb.Detected { excite_step = es; detect_step = ds }
  | None, Some es -> Covdb.Excited es
  | None, None -> Covdb.Undetected

let campaign_verdict_eq (a : Campaign.verdict) (b : Campaign.verdict) =
  a.Campaign.detected = b.Campaign.detected
  && a.Campaign.excited = b.Campaign.excited
  && a.Campaign.detect_step = b.Campaign.detect_step
  && a.Campaign.excite_step = b.Campaign.excite_step

(* The tentpole's end-to-end durability claim, exercised with a real
   [kill -9]. [Unix.fork] is off-limits once any test has spawned a
   domain (OCaml 5 forbids mixing them), so the child is this very test
   binary re-executed with [SIMCOV_CHAOS_CHILD=<path>] in its
   environment: {!chaos_child_main} (dispatched from [test_main]
   before Alcotest starts) runs an FSM-fault campaign flushing a
   coverage snapshot after every batch. The parent kills it mid-run at
   an arbitrary point, loads whatever snapshot made it to disk, and
   resumes — the resumed run's verdicts must equal the uninterrupted
   reference exactly. Because [Covdb.save] is atomic (temp + fsync +
   rename), the parent can never observe a torn snapshot, only an
   older complete one or none at all — and any kill time whatsoever
   (before the first flush, mid-campaign, after completion) must
   produce the same final report. *)

(* parent and child rebuild the identical instance from the seed *)
let chaos_instance () =
  let rng = Rng.create 2026 in
  let m =
    Simcov_fsm.Fsm.tabulate
      (Simcov_fsm.Fsm.random_connected rng ~n_states:12 ~n_inputs:3
         ~n_outputs:3)
  in
  let faults =
    Fault.sample_transfer_faults rng m ~count:80
    @ Fault.sample_output_faults rng m ~n_outputs:3 ~count:80
  in
  let word = Simcov_testgen.Tour.random_word rng m ~length:120 in
  (m, faults, word)

let chaos_save_snapshot ~total path pairs =
  let db =
    Covdb.create
      {
        Covdb.backend = "fsm-fault";
        run = "chaos";
        config_hash = "0";
        stim_hash = "0";
        word_length = 120;
        total;
      }
  in
  List.iter
    (fun (f, v) -> Covdb.set db (Fault.key f) (status_of_verdict v))
    pairs;
  Covdb.save db path

let chaos_child_main path =
  let m, faults, word = chaos_instance () in
  (* small batches, a flush after every one, slowed down so the
     parent's kill lands mid-campaign *)
  ignore
    (Detect.campaign_outcome ~lanes:8
       ~on_batch:(fun _ -> Unix.sleepf 0.005)
       ~checkpoint:
         {
           Campaign.every = 1;
           flush = chaos_save_snapshot ~total:(List.length faults) path;
         }
       m faults word);
  exit 0

let test_kill_resume_equivalence () =
  if not Sys.unix then ()
  else begin
    let m, faults, word = chaos_instance () in
    let reference = Detect.campaign_outcome m faults word in
    for trial = 1 to 3 do
      let path = Filename.temp_file "simcov_chaos" ".covdb" in
      Sys.remove path;
      Fun.protect
        ~finally:(fun () ->
          (* the snapshot, plus any temp file orphaned by the kill *)
          let dir = Filename.dirname path and base = Filename.basename path in
          Array.iter
            (fun f ->
              if
                String.length f >= String.length base
                && String.sub f 0 (String.length base) = base
              then try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
            (Sys.readdir dir))
        (fun () ->
          let env =
            Array.append (Unix.environment ())
              [| "SIMCOV_CHAOS_CHILD=" ^ path |]
          in
          let pid =
            Unix.create_process_env Sys.executable_name
              [| Sys.executable_name |]
              env Unix.stdin Unix.stdout Unix.stderr
          in
          Unix.sleepf (0.02 *. float_of_int trial);
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          ignore (Unix.waitpid [] pid);
          let snapshot = Hashtbl.create 128 in
          (match Covdb.load path with
          | Ok { Covdb.db; _ } ->
              Covdb.iter db (fun k s ->
                  Hashtbl.replace snapshot k (verdict_of_status s))
          | Error _ -> () (* killed before the first flush *));
          let resumed =
            Detect.campaign_outcome
              ~resume:(fun f -> Hashtbl.find_opt snapshot (Fault.key f))
              m faults word
          in
          Alcotest.(check int)
            (Printf.sprintf "trial %d: verdict count" trial)
            (List.length reference.Campaign.verdicts)
            (List.length resumed.Campaign.verdicts);
          List.iter2
            (fun (fa, va) (fb, vb) ->
              if not (Fault.equal fa fb) then
                Alcotest.failf "trial %d: fault order differs" trial;
              Alcotest.(check bool)
                (Printf.sprintf "trial %d: verdict agrees" trial)
                true (campaign_verdict_eq va vb))
            reference.Campaign.verdicts resumed.Campaign.verdicts;
          Alcotest.(check int)
            (Printf.sprintf "trial %d: detected count" trial)
            reference.Campaign.report.Campaign.detected
            resumed.Campaign.report.Campaign.detected)
    done
  end

let suite =
  [
    Alcotest.test_case "gc vs oracle (random ops)" `Quick test_gc_oracle;
    Alcotest.test_case "gc preserves counts" `Quick test_gc_preserves_counts;
    Alcotest.test_case "auto gc-retry under ceiling" `Quick test_auto_gc_retry;
    Alcotest.test_case "node limit when hopeless" `Quick test_node_limit_raises_when_hopeless;
    Alcotest.test_case "unlimited budget stateless" `Quick test_unlimited_budget_is_stateless;
    Alcotest.test_case "traverse truncation sound" `Quick test_traverse_truncation_is_sound;
    Alcotest.test_case "gc-interleaved traversal agrees" `Quick
      test_gc_interleaved_traversal_agrees;
    Alcotest.test_case "symtour chaos budgets" `Quick test_symtour_chaos_budgets;
    Alcotest.test_case "ladder: tiny node budget" `Quick test_ladder_tiny_node_budget;
    Alcotest.test_case "ladder: unlimited agrees" `Quick test_ladder_unlimited_symbolic_agrees;
    Alcotest.test_case "validate chaos budgets" `Quick test_validate_chaos_budgets;
    Alcotest.test_case "serialize fuzz" `Quick test_serialize_fuzz;
    Alcotest.test_case "kill -9 + resume equals uninterrupted" `Quick
      test_kill_resume_equivalence;
  ]
