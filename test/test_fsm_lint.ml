(* FSM static analysis: golden machines with known defects, and QCheck
   properties tying the lint verdicts to the ground-truth algorithms
   (minimization, fault simulation) they are meant to predict. *)

open Simcov_fsm
open Simcov_testgen
open Simcov_analysis
module Budget = Simcov_util.Budget
module Json = Simcov_util.Json
module Rng = Simcov_util.Rng
module Detect = Simcov_coverage.Detect

let has code r = List.exists (fun d -> d.Diag.code = code) r.Fsm_lint.diags
let diag code r = List.find (fun d -> d.Diag.code = code) r.Fsm_lint.diags

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* ---- golden machines ---- *)

(* minimal, strongly connected, total: the clean baseline *)
let counter3 =
  Fsm.make ~n_states:3 ~n_inputs:2
    ~next:(fun s i -> if i = 0 then (s + 1) mod 3 else 0)
    ~output:(fun s i -> if i = 0 then (s + 1) mod 3 else s)
    ()

(* states 1 and 2 are behaviorally identical: SA620 *)
let nonminimal =
  Fsm.of_table
    [ (0, 0, 1, 0); (0, 1, 2, 0); (1, 0, 0, 1); (2, 0, 0, 1) ]

(* state 1 is a sink with a self-loop: reachable but no way back, SA610 *)
let oneway = Fsm.of_table [ (0, 0, 1, 0); (1, 0, 1, 1) ]

(* state 1 is reachable and accepts no input at all: SA601 (and SA610) *)
let deadend = Fsm.of_table [ (0, 0, 1, 0) ]

(* state 1 appears only as a source: SA602 unreachable *)
let unreachable = Fsm.of_table [ (0, 0, 0, 0); (1, 0, 0, 1) ]

(* input 1 is valid nowhere (alphabet inferred from the max index): SA603 *)
let dead_input = Fsm.of_table [ (0, 0, 0, 0); (0, 2, 0, 1) ]

let test_clean_machine () =
  let r = Fsm_lint.run ~name:"counter3" counter3 in
  Alcotest.(check int) "no errors" 0 (Fsm_lint.count r Diag.Error);
  Alcotest.(check bool) "passes --fail-on error" false
    (Fsm_lint.fails r ~threshold:Diag.Error);
  Alcotest.(check int) "one SCC" 1 r.Fsm_lint.stats.Fsm_lint.n_sccs;
  Alcotest.(check int) "3 classes" 3 r.Fsm_lint.stats.Fsm_lint.n_classes;
  (match r.Fsm_lint.stats.Fsm_lint.certified_k with
  | None -> Alcotest.fail "expected a certified k"
  | Some k -> Alcotest.(check bool) "certified k positive" true (k >= 1));
  Alcotest.(check bool) "SA630 certificate present" true (has "SA630" r);
  Alcotest.(check (list string)) "nothing skipped" [] r.Fsm_lint.skipped;
  Alcotest.(check bool) "all passes ran" true
    (List.mem "fault-structural" r.Fsm_lint.passes)

let test_disconnected () =
  let r = Fsm_lint.run ~name:"oneway" oneway in
  Alcotest.(check bool) "SA610 reported" true (has "SA610" r);
  Alcotest.(check bool) "fails --fail-on error" true
    (Fsm_lint.fails r ~threshold:Diag.Error);
  Alcotest.(check int) "two SCCs" 2 r.Fsm_lint.stats.Fsm_lint.n_sccs;
  (* the witness names a condensation cut edge *)
  let d = diag "SA610" r in
  Alcotest.(check bool) "cut-edge witness" true
    (List.exists (contains ~sub:"no way back") d.Diag.related);
  (* no tour exists, so the fault-structural pass cannot run *)
  Alcotest.(check bool) "fault-structural not claimed" false
    (List.mem "fault-structural" r.Fsm_lint.passes)

let test_nonminimal () =
  let r = Fsm_lint.run ~name:"nonminimal" nonminimal in
  Alcotest.(check bool) "SA620 reported" true (has "SA620" r);
  Alcotest.(check int) "2 classes over 3 states" 2
    r.Fsm_lint.stats.Fsm_lint.n_classes;
  Alcotest.(check bool) "no certified k" true
    (r.Fsm_lint.stats.Fsm_lint.certified_k = None);
  (* ∀k can never hold with an equivalent pair: the pass is skipped,
     not silently absent *)
  Alcotest.(check bool) "distinguishability skipped" true
    (List.mem "distinguishability" r.Fsm_lint.skipped)

let test_well_formedness_codes () =
  let r = Fsm_lint.run deadend in
  Alcotest.(check bool) "SA601 dead end" true (has "SA601" r);
  Alcotest.(check bool) "SA610 too" true (has "SA610" r);
  let r = Fsm_lint.run unreachable in
  Alcotest.(check bool) "SA602 unreachable" true (has "SA602" r);
  Alcotest.(check bool) "warning only" false
    (Fsm_lint.fails r ~threshold:Diag.Error);
  let r = Fsm_lint.run dead_input in
  Alcotest.(check bool) "SA603 dead input" true (has "SA603" r);
  (* of_table machines are rarely completely specified *)
  let r = Fsm_lint.run nonminimal in
  Alcotest.(check bool) "SA605 partial spec" true (has "SA605" r)

let test_suite_cover () =
  (* words for counter3: [0;0;0] covers the increment cycle, [1] the
     reset from 0; the repeat adds nothing and the reset edges from
     states 1 and 2 stay uncovered *)
  let suite = [ [ 0; 0; 0 ]; [ 1 ]; [ 0; 0; 0 ] ] in
  let r = Fsm_lint.run ~suite counter3 in
  match r.Fsm_lint.suite with
  | None -> Alcotest.fail "suite report expected"
  | Some s ->
      Alcotest.(check int) "3 words" 3 s.Fsm_lint.n_words;
      Alcotest.(check int) "4 of 6 transitions" 4 s.Fsm_lint.suite_transitions;
      Alcotest.(check (list int)) "word 2 redundant" [ 2 ] s.Fsm_lint.redundant;
      Alcotest.(check (list (pair int int)))
        "missed resets" [ (1, 1); (2, 1) ]
        (List.sort compare s.Fsm_lint.missed);
      Alcotest.(check bool) "SA651 missed transitions" true (has "SA651" r);
      Alcotest.(check bool) "SA652 redundant word" true (has "SA652" r)

let test_suite_invalid_word () =
  (* input 1 is invalid in state 1 of [nonminimal]: the word dies there
     and only its executable prefix counts (matching Detect) *)
  let r = Fsm_lint.run ~suite:[ [ 0; 1 ] ] nonminimal in
  Alcotest.(check bool) "SA650 invalid input" true (has "SA650" r);
  match r.Fsm_lint.suite with
  | None -> Alcotest.fail "suite report expected"
  | Some s ->
      Alcotest.(check int) "prefix covers 1 transition" 1
        s.Fsm_lint.suite_transitions

let test_budget_skip () =
  let budget = Budget.create ~max_steps:2 () in
  let r = Fsm_lint.run ~budget ~suite:[ [ 0 ] ] counter3 in
  Alcotest.(check bool) "truncated" true (r.Fsm_lint.truncated <> None);
  Alcotest.(check bool) "skipped recorded" true (r.Fsm_lint.skipped <> []);
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "%s not both run and skipped" p)
        false
        (List.mem p r.Fsm_lint.passes))
    r.Fsm_lint.skipped

let test_json_round_trip () =
  List.iter
    (fun (name, suite, m) ->
      let r = Fsm_lint.run ~name ?suite m in
      let text = Json.to_string (Fsm_lint.to_json r) in
      match Json.parse text with
      | Error e -> Alcotest.failf "%s does not re-parse: %s" name e
      | Ok j -> (
          match Fsm_lint.of_json j with
          | Error e -> Alcotest.failf "%s schema mismatch: %s" name e
          | Ok r' ->
              Alcotest.(check bool)
                (Printf.sprintf "%s identical after round trip" name)
                true (r = r')))
    [
      ("counter3", Some [ [ 0; 0; 0 ]; [ 1 ] ], counter3);
      ("oneway", None, oneway);
      ("nonminimal", None, nonminimal);
    ]

(* ---- generator gates (Precheck and the *_checked variants) ---- *)

let test_precheck_refusals () =
  (match Tour.transition_tour_checked oneway with
  | Ok _ -> Alcotest.fail "tour on a disconnected machine"
  | Error r -> Alcotest.(check string) "SA610 refusal" "SA610" r.Precheck.code);
  (match Wmethod.suite_checked nonminimal with
  | Ok _ -> Alcotest.fail "W-suite on a non-minimal machine"
  | Error r -> Alcotest.(check string) "SA620 refusal" "SA620" r.Precheck.code);
  (match Uio.checking_sequence_checked oneway with
  | Ok _ -> Alcotest.fail "checking sequence on a disconnected machine"
  | Error r -> Alcotest.(check string) "SA610 first" "SA610" r.Precheck.code);
  (* clean machines sail through, and the checked result matches the
     unchecked generator *)
  (match Tour.transition_tour_checked counter3 with
  | Error r -> Alcotest.failf "refused clean machine: %s" r.Precheck.reason
  | Ok t ->
      Alcotest.(check bool) "same tour as unchecked" true
        (Some t.Tour.word
        = Option.map (fun t -> t.Tour.word) (Tour.transition_tour counter3)));
  match Wmethod.suite_checked counter3 with
  | Error r -> Alcotest.failf "refused clean machine: %s" r.Precheck.reason
  | Ok words ->
      Alcotest.(check bool) "same suite as unchecked" true
        (words = Wmethod.suite counter3)

(* ---- QCheck properties ---- *)

(* duplicate the reset state (clone its rows, redirect one incoming
   transition onto the clone): minimization must always catch it. The
   reset state is the one state that stays reachable no matter which
   incoming edge the redirect steals. *)
let clone_state (m : Fsm.t) s =
  let n = m.Fsm.n_states in
  let p, pi, _, _ =
    List.find (fun (_, _, nx, _) -> nx = s) (Fsm.transitions m)
  in
  Fsm.make ~n_states:(n + 1) ~n_inputs:m.Fsm.n_inputs ~reset:m.Fsm.reset
    ~valid:(fun st i -> m.Fsm.valid (if st = n then s else st) i)
    ~next:(fun st i ->
      if st = n then m.Fsm.next s i
      else if st = p && i = pi then n
      else m.Fsm.next st i)
    ~output:(fun st i -> m.Fsm.output (if st = n then s else st) i)
    ()

let qcheck_minimized_is_minimal =
  QCheck.Test.make ~name:"fsm_lint: minimized machine lints minimal" ~count:60
    QCheck.(triple (int_range 2 10) (int_range 1 3) (int_range 1 999))
    (fun (n, k, seed) ->
      let n = max 2 n and k = max 1 k and seed = max 1 seed in
      let rng = Rng.create seed in
      let m = Fsm.random_connected rng ~n_states:n ~n_inputs:k ~n_outputs:2 in
      let q, _ = Fsm.minimize m in
      let r = Fsm_lint.run q in
      (not (has "SA620" r))
      && r.Fsm_lint.stats.Fsm_lint.n_classes
         = r.Fsm_lint.stats.Fsm_lint.n_reachable)

let qcheck_duplicate_state_caught =
  QCheck.Test.make ~name:"fsm_lint: duplicated state always flagged SA620"
    ~count:60
    QCheck.(triple (int_range 2 8) (int_range 1 3) (int_range 1 999))
    (fun (n, k, seed) ->
      let n = max 2 n and k = max 1 k and seed = max 1 seed in
      let rng = Rng.create seed in
      let m = Fsm.random_connected rng ~n_states:n ~n_inputs:k ~n_outputs:2 in
      let m' = clone_state m m.Fsm.reset in
      let r = Fsm_lint.run m' in
      has "SA620" r
      && r.Fsm_lint.stats.Fsm_lint.certified_k = None
      && Precheck.minimal m' <> Ok ())

let qcheck_suite_cover_matches_simulation =
  (* the suite-cover pass predicts coverage by graph walk; it must
     agree exactly with Detect.transitions_covered, including the
     die-at-first-invalid-input semantics *)
  QCheck.Test.make
    ~name:"fsm_lint: predicted suite coverage = simulated coverage" ~count:60
    QCheck.(
      quad (int_range 2 8) (int_range 1 3) (int_range 1 999)
        (list_of_size Gen.(1 -- 5) (list_of_size Gen.(0 -- 12) (int_bound 3))))
    (fun (n, k, seed, words) ->
      let n = max 2 n and k = max 1 k and seed = max 1 seed in
      let rng = Rng.create seed in
      let m = Fsm.random_connected rng ~n_states:n ~n_inputs:k ~n_outputs:2 in
      (* clamp symbols into the alphabet: random_connected machines are
         total with a permissive [valid], so an out-of-range symbol is
         an array overflow, not an invalid input (the invalid-input
         path is covered by the golden of_table test above) *)
      let words = List.map (List.map (fun i -> i mod k)) words in
      let r = Fsm_lint.run ~suite:words m in
      match r.Fsm_lint.suite with
      | None -> false
      | Some s ->
          let simulated =
            List.sort_uniq compare
              (List.concat_map (Detect.transitions_covered m) words)
          in
          let predicted =
            List.filter
              (fun (st, i, _, _) -> not (List.mem (st, i) s.Fsm_lint.missed))
              (Fsm.transitions m)
            |> List.map (fun (st, i, _, _) -> (st, i))
          in
          simulated = predicted
          && List.length simulated = s.Fsm_lint.suite_transitions)

let suite =
  [
    Alcotest.test_case "clean machine certified" `Quick test_clean_machine;
    Alcotest.test_case "disconnected machine" `Quick test_disconnected;
    Alcotest.test_case "non-minimal machine" `Quick test_nonminimal;
    Alcotest.test_case "well-formedness codes" `Quick test_well_formedness_codes;
    Alcotest.test_case "suite cover prediction" `Quick test_suite_cover;
    Alcotest.test_case "suite invalid word" `Quick test_suite_invalid_word;
    Alcotest.test_case "budget skips recorded" `Quick test_budget_skip;
    Alcotest.test_case "json round trip" `Quick test_json_round_trip;
    Alcotest.test_case "precheck refusals" `Quick test_precheck_refusals;
    QCheck_alcotest.to_alcotest qcheck_minimized_is_minimal;
    QCheck_alcotest.to_alcotest qcheck_duplicate_state_caught;
    QCheck_alcotest.to_alcotest qcheck_suite_cover_matches_simulation;
  ]
