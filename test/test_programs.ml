open Simcov_dlx

let assemble k =
  match Programs.program k with
  | Ok p -> p
  | Error e -> Alcotest.fail (Programs.error_to_string e)

let test_kernels_assemble () =
  List.iter
    (fun k ->
      let p = assemble k in
      Alcotest.(check bool) (k.Programs.name ^ " nonempty") true (Array.length p > 0))
    Programs.all

let test_kernels_compute_expected_values () =
  List.iter
    (fun k ->
      let s =
        match Programs.run_spec k with
        | Ok s -> s
        | Error e -> Alcotest.fail (Programs.error_to_string e)
      in
      List.iter
        (fun (r, v) ->
          Alcotest.(check int32)
            (Printf.sprintf "%s: r%d" k.Programs.name r)
            v (Spec.reg s r))
        k.Programs.checks)
    Programs.all

let test_kernels_halt () =
  List.iter
    (fun k ->
      let s = Spec.create (assemble k) in
      let commits = Spec.run ~max_steps:5000 s in
      Alcotest.(check bool) (k.Programs.name ^ " halts") true (Spec.halted s);
      Alcotest.(check bool) (k.Programs.name ^ " does work") true (List.length commits > 5))
    Programs.all

let test_kernels_through_pipeline () =
  List.iter
    (fun (name, outcome) ->
      match outcome with
      | Ok (Validate.Pass _) -> ()
      | Ok (Validate.Fail _ as f) ->
          Alcotest.failf "%s on the 5-stage pipeline: %s" name
            (Format.asprintf "%a" Validate.pp_outcome f)
      | Error e -> Alcotest.fail (Programs.error_to_string e))
    (Programs.validate_all ())

let test_kernels_through_dual_issue () =
  List.iter
    (fun (name, outcome) ->
      match outcome with
      | Ok (Validate.Pass _) -> ()
      | Ok (Validate.Fail _ as f) ->
          Alcotest.failf "%s on the dual-issue machine: %s" name
            (Format.asprintf "%a" Validate.pp_outcome f)
      | Error e -> Alcotest.fail (Programs.error_to_string e))
    (Programs.validate_all_dual ())

let test_kernels_expose_bugs () =
  (* the kernels are dependence-heavy enough that most pipeline bugs
     show on at least one of them *)
  let detected =
    List.filter
      (fun (_, bugs) ->
        List.exists
          (fun k ->
            match Validate.run_program ~bugs (assemble k) with
            | Validate.Fail _ -> true
            | Validate.Pass _ -> false)
          Programs.all)
      Pipeline.bug_catalog
  in
  Alcotest.(check bool)
    (Printf.sprintf "kernels catch %d/12 bugs" (List.length detected))
    true
    (List.length detected >= 8)

let test_find () =
  Alcotest.(check bool) "gcd present" true (Programs.find "gcd" <> None);
  Alcotest.(check bool) "unknown absent" true (Programs.find "quux" = None)

let suite =
  [
    Alcotest.test_case "kernels assemble" `Quick test_kernels_assemble;
    Alcotest.test_case "kernels compute" `Quick test_kernels_compute_expected_values;
    Alcotest.test_case "kernels halt" `Quick test_kernels_halt;
    Alcotest.test_case "kernels on pipeline" `Quick test_kernels_through_pipeline;
    Alcotest.test_case "kernels on dual issue" `Quick test_kernels_through_dual_issue;
    Alcotest.test_case "kernels expose bugs" `Quick test_kernels_expose_bugs;
    Alcotest.test_case "find" `Quick test_find;
  ]
