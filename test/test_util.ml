open Simcov_util

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Rng.next a = Rng.next b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 5)

let test_rng_int_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 10 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 10)
  done

let test_rng_int_covers () =
  let rng = Rng.create 3 in
  let hit = Array.make 8 false in
  for _ = 1 to 500 do
    hit.(Rng.int rng 8) <- true
  done;
  Alcotest.(check bool) "all buckets hit" true (Array.for_all Fun.id hit)

let test_rng_copy_independent () =
  let a = Rng.create 9 in
  let _ = Rng.next a in
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.next a) (Rng.next b)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 5 in
  let a = Array.init 20 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 20 Fun.id) sorted

let test_rng_split_independent () =
  let a = Rng.create 11 in
  let b = Rng.split a in
  let equal_count = ref 0 in
  for _ = 1 to 50 do
    if Rng.next a = Rng.next b then incr equal_count
  done;
  Alcotest.(check int) "independent streams" 0 !equal_count

let test_bitvec_roundtrip () =
  let v = Bitvec.create ~width:8 0b1011_0010 in
  Alcotest.(check int) "to_int" 0b1011_0010 (Bitvec.to_int v);
  Alcotest.(check bool) "bit1" true (Bitvec.get v 1);
  Alcotest.(check bool) "bit0" false (Bitvec.get v 0);
  Alcotest.(check bool) "bit7" true (Bitvec.get v 7)

let test_bitvec_truncates () =
  let v = Bitvec.create ~width:4 0xFF in
  Alcotest.(check int) "truncated" 0xF (Bitvec.to_int v)

let test_bitvec_set () =
  let v = Bitvec.zero ~width:6 in
  let v = Bitvec.set v 3 true in
  Alcotest.(check int) "set bit 3" 8 (Bitvec.to_int v);
  let v = Bitvec.set v 3 false in
  Alcotest.(check int) "clear bit 3" 0 (Bitvec.to_int v)

let test_bitvec_slice_concat () =
  let v = Bitvec.create ~width:8 0b1101_0110 in
  let hi = Bitvec.slice v ~lo:4 ~hi:7 in
  let lo = Bitvec.slice v ~lo:0 ~hi:3 in
  Alcotest.(check int) "hi nibble" 0b1101 (Bitvec.to_int hi);
  Alcotest.(check int) "lo nibble" 0b0110 (Bitvec.to_int lo);
  let back = Bitvec.concat hi lo in
  Alcotest.(check int) "concat restores" (Bitvec.to_int v) (Bitvec.to_int back);
  Alcotest.(check int) "concat width" 8 (Bitvec.width back)

let test_bitvec_popcount () =
  Alcotest.(check int) "popcount" 5 (Bitvec.popcount (Bitvec.create ~width:8 0b0111_1010))

let test_bitvec_all () =
  let l = List.of_seq (Bitvec.all ~width:3) in
  Alcotest.(check int) "8 vectors" 8 (List.length l);
  Alcotest.(check int) "last is 7" 7 (Bitvec.to_int (List.nth l 7))

let test_bitvec_fold_bits () =
  let v = Bitvec.create ~width:5 0b10101 in
  let ones = Bitvec.fold_bits (fun _ b acc -> if b then acc + 1 else acc) v 0 in
  Alcotest.(check int) "fold counts ones" 3 ones

(* ---- JSON rendering: every float must produce parseable output ---- *)

let json_roundtrip v =
  match Json.parse (Json.to_string v) with
  | Ok v' -> v'
  | Error e -> Alcotest.failf "JSON round-trip failed: %s" e

let test_json_nonfinite_renders_null () =
  List.iter
    (fun f ->
      Alcotest.(check string)
        (Printf.sprintf "%h renders null" f)
        "null"
        (Json.to_string (Json.Float f));
      (* and the whole document stays parseable, coming back as Null *)
      Alcotest.(check bool)
        "round-trips as Null" true
        (json_roundtrip (Json.Obj [ ("x", Json.Float f) ])
        = Json.Obj [ ("x", Json.Null) ]))
    [ Float.nan; infinity; neg_infinity ]

let test_json_finite_float_roundtrip () =
  List.iter
    (fun f ->
      match json_roundtrip (Json.Float f) with
      | Json.Float f' ->
          Alcotest.(check bool)
            (Printf.sprintf "%h survives exactly" f)
            true
            (Int64.equal (Int64.bits_of_float f) (Int64.bits_of_float f'))
      | other ->
          Alcotest.failf "expected a Float back, got %s" (Json.to_string other))
    [ 0.; -0.; 1.5; -3.25; 0.1; 1e-300; 1.7976931348623157e308; 4.0 ]

let test_json_minified_nonfinite_in_list () =
  (* a metrics snapshot full of nan timers must still be valid JSON *)
  let doc = Json.List [ Json.Float Float.nan; Json.Int 3; Json.Float infinity ] in
  Alcotest.(check string)
    "minified" "[null,3,null]"
    (Json.to_string ~indent:0 doc);
  Alcotest.(check bool)
    "parses" true
    (json_roundtrip doc = Json.List [ Json.Null; Json.Int 3; Json.Null ])

let test_tabulate_render () =
  let t = Tabulate.create [ "a"; "bb" ] in
  Tabulate.add_row t [ "xxx"; "y" ];
  let s = Tabulate.render t in
  Alcotest.(check bool) "header present" true
    (String.length s > 0 && String.sub s 0 1 = "a");
  Alcotest.(check bool) "row present" true
    (String.length s > 10)

(* ---- Budget.split / reclaim: sub-budget carving ---- *)

(* [Budget.step] charges first and raises when the counter reaches the
   cap, so after exhaustion [steps_used] reads the full allowance (and a
   zero-allowance child completes no work at all). *)
let spend_until_exceeded b =
  let completed = ref 0 in
  (try
     while true do
       Budget.step b;
       incr completed
     done
   with Budget.Budget_exceeded Budget.Steps -> ());
  !completed

let test_budget_split_partitions () =
  let parent = Budget.create ~max_steps:10 () in
  Budget.step parent;
  (* 9 steps remain; three children must share exactly those 9 *)
  let kids = Budget.split parent ~n:3 in
  Alcotest.(check int) "three children" 3 (Array.length kids);
  Array.iter (fun k -> ignore (spend_until_exceeded k)) kids;
  let allowances = Array.map Budget.steps_used kids in
  Alcotest.(check int) "children share the parent's remainder" 9
    (Array.fold_left ( + ) 0 allowances);
  (* near-equal slices: max - min <= 1 *)
  let mn = Array.fold_left min max_int allowances
  and mx = Array.fold_left max 0 allowances in
  Alcotest.(check bool) "slices near-equal" true (mx - mn <= 1);
  (* the parent was charged up front: no steps left for it either *)
  Alcotest.(check bool) "parent exhausted after split" true
    (match Budget.exceeded parent with Some Budget.Steps -> true | _ -> false)

let test_budget_split_exhausted_parent () =
  let parent = Budget.create ~max_steps:4 () in
  ignore (spend_until_exceeded parent);
  let kids = Budget.split parent ~n:4 in
  Array.iter
    (fun k ->
      Alcotest.(check int) "zero-allowance child completes no work" 0
        (spend_until_exceeded k))
    kids

let test_budget_split_reclaim () =
  let parent = Budget.create ~max_steps:12 () in
  let kids = Budget.split parent ~n:3 in
  (* each child got 4; spend 1 in the first, everything in the second,
     nothing in the third *)
  Budget.step kids.(0);
  ignore (spend_until_exceeded kids.(1));
  Array.iter (fun k -> Budget.reclaim parent k) kids;
  (* unspent = 3 + 0 + 4 = 7 reclaimed, so the parent stands at 12 - 7 *)
  Alcotest.(check int) "reclaim restores unspent steps" 5
    (Budget.steps_used parent);
  Alcotest.(check (option reject)) "parent usable again" None
    (Budget.exceeded parent)

let test_budget_split_unlimited () =
  let kids = Budget.split Budget.unlimited ~n:2 in
  Array.iter
    (fun k ->
      for _ = 1 to 1_000 do
        Budget.step k
      done;
      Alcotest.(check (option reject)) "unlimited child never exceeds" None
        (Budget.exceeded k))
    kids;
  (* spending in a child of [unlimited] must not mutate the shared
     sentinel *)
  Alcotest.(check int) "unlimited sentinel untouched" 0
    (Budget.steps_used Budget.unlimited)

let qcheck_bitvec_slice =
  QCheck.Test.make ~name:"bitvec: slice/concat roundtrip" ~count:200
    QCheck.(pair (int_bound 255) (int_range 1 7))
    (fun (v, cut) ->
      let bv = Bitvec.create ~width:8 v in
      let hi = Bitvec.slice bv ~lo:cut ~hi:7 in
      let lo = Bitvec.slice bv ~lo:0 ~hi:(cut - 1) in
      Bitvec.to_int (Bitvec.concat hi lo) = Bitvec.to_int bv)

let qcheck_rng_float_range =
  QCheck.Test.make ~name:"rng: float in range" ~count:100 QCheck.(int_range 1 1000)
    (fun seed ->
      let rng = Rng.create seed in
      let f = Rng.float rng 3.0 in
      f >= 0.0 && f < 3.0)

(* ---- crc32 ---- *)

let test_crc32_known_answer () =
  (* the standard check value for the IEEE polynomial *)
  Alcotest.(check string) "crc32(\"123456789\")" "cbf43926"
    (Crc32.to_hex (Crc32.string "123456789"));
  Alcotest.(check string) "crc32(\"\")" "00000000"
    (Crc32.to_hex (Crc32.string ""))

let test_crc32_incremental () =
  let whole = "the quick brown fox jumps over the lazy dog" in
  Alcotest.(check int32) "update 0l s = string s" (Crc32.string whole)
    (Crc32.update 0l whole);
  let a = String.sub whole 0 17 and b = String.sub whole 17 (String.length whole - 17) in
  Alcotest.(check int32) "incremental = whole" (Crc32.string whole)
    (Crc32.update (Crc32.update 0l a) b);
  Alcotest.(check int32) "substring agrees" (Crc32.string a)
    (Crc32.substring whole ~pos:0 ~len:17)

let qcheck_crc32_hex_roundtrip =
  QCheck.Test.make ~name:"crc32: to_hex/of_hex round-trip (incl. high bit)"
    ~count:200 QCheck.string (fun s ->
      let c = Crc32.string s in
      Crc32.of_hex (Crc32.to_hex c) = Some c)

let test_crc32_of_hex_rejects () =
  List.iter
    (fun s ->
      Alcotest.(check bool) ("rejects " ^ s) true (Crc32.of_hex s = None))
    [ ""; "cbf4392"; "cbf439260"; "cbf4392g"; "0xcbf439" ]

(* ---- durable writes ---- *)

let test_durable_write_is_atomic_on_raise () =
  let path = Filename.temp_file "simcov_durable" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Durable.write_string path "original";
      (match
         Durable.write_file path (fun oc ->
             output_string oc "partial garbage";
             failwith "writer blew up")
       with
      | () -> Alcotest.fail "write_file swallowed the exception"
      | exception Failure _ -> ());
      Alcotest.(check string) "destination untouched" "original"
        (In_channel.with_open_bin path In_channel.input_all);
      let dir = Filename.dirname path and base = Filename.basename path in
      Array.iter
        (fun f ->
          if String.length f > String.length base
             && String.sub f 0 (String.length base) = base then
            Alcotest.failf "leftover temp file %s" f)
        (Sys.readdir dir))

let suite =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng seeds differ" `Quick test_rng_seeds_differ;
    Alcotest.test_case "rng int bounds" `Quick test_rng_int_bounds;
    Alcotest.test_case "rng int covers" `Quick test_rng_int_covers;
    Alcotest.test_case "rng copy" `Quick test_rng_copy_independent;
    Alcotest.test_case "rng shuffle" `Quick test_rng_shuffle_permutation;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent;
    Alcotest.test_case "bitvec roundtrip" `Quick test_bitvec_roundtrip;
    Alcotest.test_case "bitvec truncates" `Quick test_bitvec_truncates;
    Alcotest.test_case "bitvec set" `Quick test_bitvec_set;
    Alcotest.test_case "bitvec slice/concat" `Quick test_bitvec_slice_concat;
    Alcotest.test_case "bitvec popcount" `Quick test_bitvec_popcount;
    Alcotest.test_case "bitvec all" `Quick test_bitvec_all;
    Alcotest.test_case "bitvec fold_bits" `Quick test_bitvec_fold_bits;
    Alcotest.test_case "json non-finite floats render null" `Quick
      test_json_nonfinite_renders_null;
    Alcotest.test_case "json finite floats round-trip" `Quick
      test_json_finite_float_roundtrip;
    Alcotest.test_case "json minified non-finite" `Quick
      test_json_minified_nonfinite_in_list;
    Alcotest.test_case "tabulate render" `Quick test_tabulate_render;
    Alcotest.test_case "budget split partitions remainder" `Quick
      test_budget_split_partitions;
    Alcotest.test_case "budget split of exhausted parent" `Quick
      test_budget_split_exhausted_parent;
    Alcotest.test_case "budget reclaim restores unspent" `Quick
      test_budget_split_reclaim;
    Alcotest.test_case "budget split of unlimited" `Quick
      test_budget_split_unlimited;
    QCheck_alcotest.to_alcotest qcheck_bitvec_slice;
    QCheck_alcotest.to_alcotest qcheck_rng_float_range;
    Alcotest.test_case "crc32 known answer" `Quick test_crc32_known_answer;
    Alcotest.test_case "crc32 incremental" `Quick test_crc32_incremental;
    QCheck_alcotest.to_alcotest qcheck_crc32_hex_roundtrip;
    Alcotest.test_case "crc32 of_hex rejects" `Quick test_crc32_of_hex_rejects;
    Alcotest.test_case "durable write atomic on raise" `Quick
      test_durable_write_is_atomic_on_raise;
  ]
