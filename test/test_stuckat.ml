open Simcov_netlist
open Simcov_coverage

let ( !! ) = Expr.( !! )
let ( &&& ) = Expr.( &&& )
let ( ^^^ ) = Expr.( ^^^ )

let counter () =
  let open Circuit.Build in
  let ctx = create "counter" in
  let en = input ctx "en" in
  let b0 = reg ctx "b0" in
  let b1 = reg ctx "b1" in
  assign ctx b0 (Expr.mux en (!!b0) b0);
  assign ctx b1 (Expr.mux en (b1 ^^^ b0) b1);
  output ctx "wrap" (en &&& b0 &&& b1);
  finish ctx

let enabled n = List.init n (fun _ -> [| true |])

let test_all_faults_enumerated () =
  let c = counter () in
  (* 2 regs + 1 input, both polarities *)
  Alcotest.(check int) "6 faults" 6 (List.length (Stuckat.all_faults c))

let test_full_word_covers_all () =
  let c = counter () in
  (* the stimulus must exercise both en polarities: an always-enabled
     word can never expose en-stuck-at-1 *)
  let word = enabled 4 @ [ [| false |] ] @ enabled 6 in
  let r = Stuckat.campaign c (Stuckat.all_faults c) word in
  Alcotest.(check int) "all detected" r.Stuckat.total r.Stuckat.detected;
  Alcotest.(check (float 0.01)) "100%" 100.0 (Stuckat.coverage_pct r)

let test_idle_word_misses () =
  let c = counter () in
  (* with en = 0 forever, the output is stuck false anyway: only the
     en-stuck-at-1 fault changes anything *)
  let r = Stuckat.campaign c (Stuckat.all_faults c) (List.init 8 (fun _ -> [| false |])) in
  Alcotest.(check bool) "some missed" true (List.length r.Stuckat.missed > 0)

let test_specific_fault () =
  let c = counter () in
  (* b0 stuck at 0: the counter can never leave even states; wrap never
     fires *)
  let f = { Stuckat.site = Stuckat.Reg_output 0; stuck = false } in
  Alcotest.(check bool) "detected by full count" true (Stuckat.detects c f (enabled 4));
  Alcotest.(check bool) "not detected by 1 step" false (Stuckat.detects c f (enabled 1))

let test_input_stuck () =
  let c = counter () in
  let f = { Stuckat.site = Stuckat.Primary_input 0; stuck = true } in
  (* driving en=0 while it is stuck at 1 diverges once the count wraps *)
  Alcotest.(check bool) "detected" true
    (Stuckat.detects c f (List.init 8 (fun _ -> [| false |])))

let test_tour_stuckat_coverage () =
  (* the transition tour exercises every (state, input) pair, which on
     this circuit includes both en polarities in distinguishing
     positions: full stuck-at coverage *)
  let c = counter () in
  let m = Circuit.to_fsm c in
  match Simcov_testgen.Tour.transition_tour m with
  | None -> Alcotest.fail "tour"
  | Some t ->
      let word = List.map (fun i -> [| i = 1 |]) t.Simcov_testgen.Tour.word in
      let r = Stuckat.campaign c (Stuckat.all_faults c) word in
      Alcotest.(check (float 0.01)) "tour: 100% stuck-at" 100.0 (Stuckat.coverage_pct r)

let test_bdd_to_dot () =
  let man = Simcov_bdd.Bdd.man 3 in
  let f =
    Simcov_bdd.Bdd.band man (Simcov_bdd.Bdd.var man 0) (Simcov_bdd.Bdd.var man 2)
  in
  let dot = Simcov_bdd.Bdd.to_dot man f in
  Alcotest.(check bool) "digraph present" true
    (String.length dot > 20 && String.sub dot 0 11 = "digraph bdd");
  Alcotest.(check bool) "mentions x0" true
    (String.length dot > 0
    &&
    let found = ref false in
    String.iteri
      (fun i ch ->
        if ch = 'x' && i + 1 < String.length dot && dot.[i + 1] = '0' then found := true)
      dot;
    !found)

let suite =
  [
    Alcotest.test_case "all faults enumerated" `Quick test_all_faults_enumerated;
    Alcotest.test_case "full word covers" `Quick test_full_word_covers_all;
    Alcotest.test_case "idle word misses" `Quick test_idle_word_misses;
    Alcotest.test_case "specific fault" `Quick test_specific_fault;
    Alcotest.test_case "input stuck" `Quick test_input_stuck;
    Alcotest.test_case "tour stuck-at coverage" `Quick test_tour_stuckat_coverage;
    Alcotest.test_case "bdd to_dot" `Quick test_bdd_to_dot;
  ]
