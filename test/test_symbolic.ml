open Simcov_netlist
open Simcov_symbolic.Symfsm

let ( !! ) = Expr.( !! )
let ( &&& ) = Expr.( &&& )
let ( ^^^ ) = Expr.( ^^^ )

(* 2-bit counter with enable; state 00 -> 01 -> 10 -> 11 -> 00 *)
let counter_circuit () =
  let open Circuit.Build in
  let ctx = create "counter2" in
  let en = input ctx "en" in
  let b0 = reg ctx "b0" in
  let b1 = reg ctx "b1" in
  assign ctx b0 (Expr.mux en (!!b0) b0);
  assign ctx b1 (Expr.mux en (b1 ^^^ b0) b1);
  output ctx "wrap" (en &&& b0 &&& b1);
  finish ctx

(* A circuit whose reachable set is a strict subset: b1 can never
   become true because its next is b1 && b0 starting from 00. *)
let stuck_circuit () =
  let open Circuit.Build in
  let ctx = create "stuck" in
  let i = input ctx "i" in
  let b0 = reg ctx "b0" in
  let b1 = reg ctx "b1" in
  assign ctx b0 (i &&& !!b1);
  assign ctx b1 (b1 &&& b0);
  output ctx "o" b0;
  finish ctx

let test_of_circuit_shapes () =
  let t = of_circuit (counter_circuit ()) in
  Alcotest.(check int) "state vars" 2 t.n_state_vars;
  Alcotest.(check int) "input vars" 1 t.n_input_vars

let test_reachable_full () =
  let t = of_circuit (counter_circuit ()) in
  let _, iters = reachable t in
  Alcotest.(check (float 0.001)) "all 4 states" 4.0 (count_reachable t);
  Alcotest.(check bool) "few iterations" true (iters <= 5)

let test_reachable_strict_subset () =
  let t = of_circuit (stuck_circuit ()) in
  (* states: 00 and 10 only (b1 stays 0; b0 toggles with i) *)
  Alcotest.(check (float 0.001)) "2 of 4 states" 2.0 (count_reachable t)

let test_count_transitions () =
  let t = of_circuit (counter_circuit ()) in
  (* 4 reachable states x 2 inputs, no constraint *)
  Alcotest.(check (float 0.001)) "8 transitions" 8.0 (count_transitions t)

let test_counts_match_explicit () =
  let c = counter_circuit () in
  let t = of_circuit c in
  let m = Circuit.to_fsm c in
  Alcotest.(check (float 0.001)) "reachable matches"
    (float_of_int (Simcov_fsm.Fsm.n_reachable m))
    (count_reachable t);
  Alcotest.(check (float 0.001)) "transitions match"
    (float_of_int (Simcov_fsm.Fsm.n_transitions m))
    (count_transitions t)

let test_constraint_counts () =
  let open Circuit.Build in
  let ctx = create "constrained" in
  let a = input ctx "a" in
  let b = input ctx "b" in
  let r = reg ctx "r" in
  assign ctx r (a ^^^ b);
  output ctx "o" r;
  constrain ctx (Expr.( !! ) (a &&& b));
  let c = finish ctx in
  let t = of_circuit c in
  Alcotest.(check (float 0.001)) "3 of 4 input combos valid" 3.0 (count_valid_inputs t);
  Alcotest.(check (float 0.001)) "input space" 4.0 (input_space_size t);
  (* 2 reachable states x 3 valid inputs *)
  Alcotest.(check (float 0.001)) "6 transitions" 6.0 (count_transitions t)

let test_image_preimage () =
  let t = of_circuit (counter_circuit ()) in
  (* image of {00} under both inputs: {00 (en=0), 01 (en=1)} *)
  let s00 = state_cube t [| false; false |] in
  let img = image t s00 in
  Alcotest.(check (float 0.001)) "two successors" 2.0 (count_states t img);
  (* preimage of {01}: states that can reach 01 = {00 (en), 01 (hold)} *)
  let s01 = state_cube t [| true; false |] in
  let pre = preimage t s01 in
  Alcotest.(check (float 0.001)) "two predecessors" 2.0 (count_states t pre)

let test_pick_state () =
  let t = of_circuit (counter_circuit ()) in
  (match pick_state t t.init with
  | Some s -> Alcotest.(check bool) "initial is 00" true (s = [| false; false |])
  | None -> Alcotest.fail "init nonempty");
  Alcotest.(check bool) "empty set" true
    (pick_state t (Simcov_bdd.Bdd.bfalse t.man) = None)

let test_of_fsm_counts () =
  let counter3 =
    Simcov_fsm.Fsm.make ~n_states:3 ~n_inputs:2
      ~next:(fun s i -> if i = 0 then (s + 1) mod 3 else 0)
      ~output:(fun s i -> if i = 0 then (s + 1) mod 3 else s)
      ()
  in
  let t = of_fsm counter3 in
  Alcotest.(check (float 0.001)) "3 reachable" 3.0 (count_reachable t);
  Alcotest.(check (float 0.001)) "6 transitions" 6.0 (count_transitions t)

let test_of_fsm_respects_validity () =
  let m = Simcov_fsm.Fsm.of_table [ (0, 0, 1, 0); (1, 1, 0, 1) ] in
  let t = of_fsm m in
  Alcotest.(check (float 0.001)) "2 transitions" 2.0 (count_transitions t);
  Alcotest.(check (float 0.001)) "2 valid input combos" 2.0 (count_valid_inputs t)

let test_symbolic_vs_explicit_random () =
  let rng = Simcov_util.Rng.create 77 in
  for _ = 1 to 10 do
    let m = Simcov_fsm.Fsm.random_connected rng ~n_states:6 ~n_inputs:2 ~n_outputs:2 in
    let t = of_fsm m in
    Alcotest.(check (float 0.001)) "reachable agrees"
      (float_of_int (Simcov_fsm.Fsm.n_reachable m))
      (count_reachable t);
    Alcotest.(check (float 0.001)) "transitions agree"
      (float_of_int (Simcov_fsm.Fsm.n_transitions m))
      (count_transitions t)
  done

(* ------------------------------------------------------------------ *)
(* Partitioned transition relation vs the monolithic oracle            *)
(* ------------------------------------------------------------------ *)

let check_partitioned_against_oracle t =
  let open Simcov_bdd in
  let eq = Bdd.equal in
  (* traversals: all four strategies produce the same fixpoint in the
     same number of iterations *)
  let base = traverse ~partitioned:false ~frontier:false t in
  let ok = ref true in
  List.iter
    (fun (p, f) ->
      let tr = traverse ~partitioned:p ~frontier:f t in
      if (not (eq tr.reached base.reached)) || tr.iterations <> base.iterations then
        ok := false)
    [ (false, true); (true, false); (true, true) ];
  (* image/preimage agree on assorted sets over the cur vars *)
  let sets = [ t.init; image_mono t t.init; base.reached ] in
  List.iter
    (fun s ->
      if not (eq (image t s) (image_mono t s)) then ok := false;
      if not (eq (preimage t s) (preimage_mono t s)) then ok := false)
    sets;
  !ok

let qcheck_partitioned_fsm =
  QCheck.Test.make
    ~name:"symfsm: partitioned image/preimage/reachable = monolithic (random FSMs)"
    ~count:100
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let rng = Simcov_util.Rng.create seed in
      let n_states = 2 + Simcov_util.Rng.int rng 9 in
      let n_inputs = 1 + Simcov_util.Rng.int rng 3 in
      let m =
        Simcov_fsm.Fsm.random_connected rng ~n_states ~n_inputs ~n_outputs:2
      in
      check_partitioned_against_oracle (of_fsm m))

let random_circuit rng =
  let open Simcov_util in
  let open Circuit.Build in
  let n_regs = 1 + Rng.int rng 4 in
  let n_inputs = 1 + Rng.int rng 3 in
  let ctx = create "rand" in
  let inputs = Array.init n_inputs (fun i -> input ctx (Printf.sprintf "i%d" i)) in
  let regs =
    Array.init n_regs (fun i -> reg ctx ~init:(Rng.bool rng) (Printf.sprintf "r%d" i))
  in
  let leaves = Array.append inputs regs in
  let rec rexpr depth =
    if depth = 0 then Rng.pick rng leaves
    else
      match Rng.int rng 6 with
      | 0 -> Expr.( !! ) (rexpr (depth - 1))
      | 1 -> Expr.( &&& ) (rexpr (depth - 1)) (rexpr (depth - 1))
      | 2 -> Expr.( ||| ) (rexpr (depth - 1)) (rexpr (depth - 1))
      | 3 -> Expr.( ^^^ ) (rexpr (depth - 1)) (rexpr (depth - 1))
      | 4 -> Expr.mux (rexpr (depth - 1)) (rexpr (depth - 1)) (rexpr (depth - 1))
      | _ -> Rng.pick rng leaves
  in
  Array.iter (fun r -> assign ctx r (rexpr 3)) regs;
  output ctx "o" (rexpr 2);
  if Rng.int rng 3 = 0 then constrain ctx (Expr.( ||| ) inputs.(0) (rexpr 1));
  finish ctx

let qcheck_partitioned_circuit =
  QCheck.Test.make
    ~name:"symfsm: partitioned image/preimage/reachable = monolithic (random circuits)"
    ~count:100
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let rng = Simcov_util.Rng.create seed in
      check_partitioned_against_oracle (of_circuit (random_circuit rng)))

(* regression on the DLX test model: frontier-based and full-set
   traversal must produce the identical fixpoint in the identical
   number of iterations, partitioned and monolithic alike *)
let test_dlx_frontier_regression () =
  let model =
    Simcov_fsm.Fsm.tabulate (Simcov_dlx.Testmodel.build Simcov_dlx.Testmodel.default)
  in
  let t = of_fsm model in
  let base = traverse ~partitioned:false ~frontier:false t in
  List.iter
    (fun (p, f) ->
      let tr = traverse ~partitioned:p ~frontier:f t in
      Alcotest.(check bool)
        (Printf.sprintf "fixpoint agrees (partitioned=%b frontier=%b)" p f)
        true
        (Simcov_bdd.Bdd.equal tr.reached base.reached);
      Alcotest.(check int)
        (Printf.sprintf "iteration count agrees (partitioned=%b frontier=%b)" p f)
        base.iterations tr.iterations)
    [ (false, true); (true, false); (true, true) ];
  Alcotest.(check (float 0.001))
    "reachable count matches the explicit model"
    (float_of_int (Simcov_fsm.Fsm.n_reachable model))
    (count_states t base.reached);
  Alcotest.(check bool) "partitioned image = oracle on the DLX model" true
    (check_partitioned_against_oracle t)

let test_traversal_stats () =
  let t = of_circuit (counter_circuit ()) in
  let tr = reachable_stats t in
  Alcotest.(check int) "one stat per iteration" tr.iterations
    (List.length tr.iter_stats);
  Alcotest.(check int) "images counted" tr.iterations tr.images;
  (* frontier sizes: 1 new state per layer on the counter, and the
     first frontier is the initial state *)
  (match tr.iter_stats with
  | first :: _ ->
      Alcotest.(check (float 0.001)) "first frontier is init" 1.0 first.frontier_states
  | [] -> Alcotest.fail "no stats");
  Alcotest.(check bool) "memoized traversal is reused" true
    (reachable_stats t == tr)

let suite =
  [
    Alcotest.test_case "of_circuit shapes" `Quick test_of_circuit_shapes;
    Alcotest.test_case "reachable full" `Quick test_reachable_full;
    Alcotest.test_case "reachable strict subset" `Quick test_reachable_strict_subset;
    Alcotest.test_case "count transitions" `Quick test_count_transitions;
    Alcotest.test_case "counts match explicit" `Quick test_counts_match_explicit;
    Alcotest.test_case "constraint counts" `Quick test_constraint_counts;
    Alcotest.test_case "image/preimage" `Quick test_image_preimage;
    Alcotest.test_case "pick state" `Quick test_pick_state;
    Alcotest.test_case "of_fsm counts" `Quick test_of_fsm_counts;
    Alcotest.test_case "of_fsm validity" `Quick test_of_fsm_respects_validity;
    Alcotest.test_case "symbolic vs explicit" `Quick test_symbolic_vs_explicit_random;
    Alcotest.test_case "DLX frontier regression" `Quick test_dlx_frontier_regression;
    Alcotest.test_case "traversal stats" `Quick test_traversal_stats;
    QCheck_alcotest.to_alcotest qcheck_partitioned_fsm;
    QCheck_alcotest.to_alcotest qcheck_partitioned_circuit;
  ]
