(* Service layer: job schema round-trips, the content-hash model
   cache, the shared execution engine, the pool scheduler, and the
   socket daemon. The load-bearing properties: a job that goes over
   the wire produces the same bytes as the one-shot CLI path, a warm
   cache is observably hit without changing any report, and
   cancellation mid-campaign leaves a loadable simcov-covdb/1
   checkpoint a resumed run completes from exactly. *)

open Alcotest
module Json = Simcov_util.Json
module Obs = Simcov_obs.Obs
module Job = Simcov_service.Job
module Model_cache = Simcov_service.Model_cache
module Service = Simcov_service.Service
module Pool = Simcov_service.Pool
module Daemon = Simcov_service.Daemon
module Covdb = Simcov_covdb.Covdb

(* naive substring search: enough for asserting on rendered JSON *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  nn = 0 || at 0

let coverage_job ?checkpoint ?(count = 40) ?(jobs = 1) () =
  Job.make
    (Job.Coverage
       {
         (Job.default_coverage ~model:"dlx") with
         Job.cov_seed = 7;
         cov_count = count;
         cov_jobs = jobs;
         cov_checkpoint = checkpoint;
       })

(* ---- simcov-job/1 round-trips ---- *)

let test_job_roundtrip () =
  let specs =
    [
      Job.Validate_dlx { Job.default_validate with Job.va_seed = 11; va_jobs = 3 };
      Job.Lint
        {
          (Job.default_lint ~model:"dlx-test") with
          Job.li_fsm = true;
          li_k_bound = 4;
          li_fail_on = Simcov_analysis.Diag.Warning;
        };
      Job.Coverage
        {
          (Job.default_coverage ~model:"dlx") with
          Job.cov_faults = Job.Stuckat_faults;
          cov_checkpoint = Some "cp.covdb";
          cov_resume = Some "old.covdb";
          cov_fail_under = Some 95.5;
        };
      Job.Merge { inputs = [ "a.covdb"; "b.covdb" ]; output = "out.covdb" };
      Job.Minimize { inputs = [ "a.covdb" ] };
      Job.Stats Job.default_stats;
    ]
  in
  List.iter
    (fun spec ->
      let j = Job.make ~id:"t-1" ~timeout_s:30. ~max_nodes:1000 spec in
      match Job.of_json (Job.to_json j) with
      | Ok j' ->
          check string "kind survives" (Job.kind j) (Job.kind j');
          check string "round-trip is exact"
            (Json.to_string (Job.to_json j))
            (Json.to_string (Job.to_json j'))
      | Error e -> failf "round-trip of %s failed: %s" (Job.kind j) e)
    specs

let test_job_defaults_and_errors () =
  (* the minimal request: every param takes its CLI default *)
  (match Job.of_json (Json.Obj [ ("kind", Json.String "coverage") ]) with
  | Ok { Job.spec = Job.Coverage p; _ } ->
      check int "default seed" 2026 p.Job.cov_seed;
      check int "default count" 150 p.Job.cov_count;
      check int "default jobs" 1 p.Job.cov_jobs
  | Ok _ -> fail "parsed to the wrong kind"
  | Error e -> failf "minimal job rejected: %s" e);
  let rejected j =
    match Job.of_json j with Ok _ -> false | Error _ -> true
  in
  check bool "unknown kind rejected" true
    (rejected (Json.Obj [ ("kind", Json.String "frobnicate") ]));
  check bool "missing kind rejected" true (rejected (Json.Obj []));
  check bool "wrong schema rejected" true
    (rejected
       (Json.Obj
          [ ("schema", Json.String "simcov-job/999"); ("kind", Json.String "stats") ]));
  check bool "ill-typed param rejected" true
    (rejected
       (Json.Obj
          [
            ("kind", Json.String "coverage");
            ("params", Json.Obj [ ("seed", Json.String "tuesday") ]);
          ]));
  check bool "lint without model rejected" true
    (rejected (Json.Obj [ ("kind", Json.String "lint") ]))

let test_envelope_shape () =
  let env =
    Job.envelope ~id:"j1" ~kind:"coverage" ~status:Job.Interrupted ~exit_code:130
      ~error:"stopped" ()
  in
  check bool "has status" true (Json.member "status" env <> None);
  check (option string) "status name" (Some "interrupted")
    (Option.bind (Json.member "status" env) Json.to_string_opt);
  check (option int) "exit code" (Some 130)
    (Option.bind (Json.member "exit_code" env) Json.to_int_opt);
  (* a request never carries status: the stream demultiplexes on it *)
  check bool "request has no status" true
    (Json.member "status" (Job.to_json (coverage_job ())) = None)

(* ---- model cache ---- *)

let test_cache_hits_and_eviction () =
  let c = Model_cache.create () in
  let resolve () =
    match Model_cache.circuit_of_spec c "dlx-control" with
    | Ok (_, name, _) -> name
    | Error e -> failf "resolve failed: %s" e
  in
  ignore (resolve ());
  ignore (resolve ());
  let hits, misses, _ = Model_cache.counts c in
  check int "one miss" 1 misses;
  check int "one hit" 1 hits;
  let entries, bytes = Model_cache.stats c in
  check int "one entry" 1 entries;
  check bool "entry is costed" true (bytes > 0);
  (* a one-entry cache thrashes: alternating keys always evict *)
  let tiny = Model_cache.create ~max_entries:1 () in
  ignore (Model_cache.circuit_of_spec tiny "dlx-control");
  ignore (Model_cache.circuit_of_spec tiny "dlx-test");
  ignore (Model_cache.circuit_of_spec tiny "dlx-control");
  let hits, misses, evictions = Model_cache.counts tiny in
  check int "no hits under thrash" 0 hits;
  check int "three misses" 3 misses;
  check bool "evictions counted" true (evictions >= 2);
  let entries, _ = Model_cache.stats tiny in
  check int "bounded to one entry" 1 entries

(* ---- the CRC-32-only file keys were forgeable ---- *)

(* reflected CRC-32 table (poly 0xEDB88320), reimplemented here so the
   test can FORGE a collision instead of hoping for one: every table
   entry has a distinct top byte, so walking the register backwards
   forces the 4 table indices, and 4 appended bytes then drive the
   register to any chosen value *)
let crc_table =
  Array.init 256 (fun n ->
      let r = ref n in
      for _ = 0 to 7 do
        r := if !r land 1 = 1 then (!r lsr 1) lxor 0xEDB88320 else !r lsr 1
      done;
      !r)

(* 4 bytes whose appension leaves the CRC-32 of a string with checksum
   [crc_a] unchanged *)
let forge_suffix crc_a =
  let reg = Int32.to_int (Int32.logxor crc_a 0xFFFFFFFFl) land 0xFFFFFFFF in
  let idx = Array.make 4 0 in
  let w = ref reg in
  for i = 3 downto 0 do
    let top = !w lsr 24 in
    let j = ref 0 in
    while crc_table.(!j) lsr 24 <> top do incr j done;
    idx.(i) <- !j;
    w := ((!w lxor crc_table.(!j)) lsl 8) land 0xFFFFFFFF
  done;
  let bytes = Bytes.create 4 in
  let r = ref reg in
  for i = 0 to 3 do
    let b = (!r land 0xff) lxor idx.(i) in
    Bytes.set bytes i (Char.chr b);
    r := (!r lsr 8) lxor crc_table.((!r lxor b) land 0xff)
  done;
  Bytes.to_string bytes

let test_cache_crc_collision () =
  let module Crc32 = Simcov_util.Crc32 in
  let a =
    Simcov_netlist.Serialize.to_string
      (fst (Simcov_dlx.Control.derive_test_model ()))
  in
  let b = a ^ forge_suffix (Crc32.string a) in
  check bool "contents differ" true (a <> b);
  check bool "checksums collide" true (Crc32.string a = Crc32.string b);
  let write s =
    let path = Filename.temp_file "simcov_crc" ".circ" in
    Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s);
    path
  in
  let pa = write a and pb = write b in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove pa;
      Sys.remove pb)
    (fun () ->
      let c = Model_cache.create () in
      (match Model_cache.circuit_of_spec c pa with
      | Ok _ -> ()
      | Error e -> failf "serialized model failed to parse: %s" e);
      (* under the old [file:<crc>] keys the forged file shared A's
         slot and was silently served A's parsed circuit; the
         (length, crc) key must treat it as a distinct resolution *)
      let hits0, _, _ = Model_cache.counts c in
      ignore (Model_cache.circuit_of_spec c pb);
      let hits1, misses, _ = Model_cache.counts c in
      check int "forged file does not hit the cache" hits0 hits1;
      check int "two distinct resolutions" 2 misses)

let test_cache_observable_in_metrics () =
  let reg = Obs.registry ~label:"cache-metrics" in
  Obs.with_registry reg (fun () ->
      let c = Model_cache.create () in
      ignore (Model_cache.circuit_of_spec c "dlx-control");
      ignore (Model_cache.circuit_of_spec c "dlx-control");
      let snap = Json.to_string (Obs.snapshot ()) in
      check bool "hit counter exported" true (contains snap "service.cache.hits");
      check bool "entries gauge exported" true
        (contains snap "service.cache.entries"));
  Obs.release reg

(* ---- Service.run ---- *)

let run_report job =
  let o = Service.run ~cache:(Model_cache.create ()) job in
  check int "exit 0" 0 o.Service.exit_code;
  match o.Service.report with
  | Some r -> Json.to_string r
  | None -> fail "no report"

let test_warm_cache_identical_report () =
  let cache = Model_cache.create () in
  let run () =
    let o = Service.run ~cache (coverage_job ()) in
    check int "exit 0" 0 o.Service.exit_code;
    match o.Service.report with
    | Some r -> Json.to_string r
    | None -> fail "no report"
  in
  let cold = run () in
  let warm = run () in
  check string "warm report is byte-identical" cold warm;
  let hits, _, _ = Model_cache.counts cache in
  check bool "second run hit the cache" true (hits > 0)

let test_cancellation_leaves_loadable_checkpoint () =
  let dir = Filename.temp_file "simcov-svc" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let cp = Filename.concat dir "cancel.covdb" in
  (* flip should_stop after the first batch reports: a deterministic
     mid-campaign cancellation (count 40 -> 80 faults -> 2 batches) *)
  let stopped = ref false in
  let o =
    Service.run
      ~cache:(Model_cache.create ())
      ~should_stop:(fun () -> !stopped)
      ~on_progress:(fun _ -> stopped := true)
      (coverage_job ~checkpoint:cp ())
  in
  check int "interrupted exit" 130 o.Service.exit_code;
  check bool "flagged interrupted" true o.Service.interrupted;
  (match Covdb.load cp with
  | Error e -> failf "checkpoint unreadable: %s" e
  | Ok { Covdb.db; salvaged } ->
      check bool "not salvaged" false salvaged;
      check bool "partial progress persisted" true (Covdb.n_records db > 0);
      check bool "marked incomplete" false (Covdb.complete db));
  (* the resumed run finishes the campaign and matches the
     uninterrupted report exactly *)
  let resumed =
    Service.run
      ~cache:(Model_cache.create ())
      (Job.make
         (Job.Coverage
            {
              (Job.default_coverage ~model:"dlx") with
              Job.cov_seed = 7;
              cov_count = 40;
              cov_resume = Some cp;
            }))
  in
  check int "resumed run completes" 0 resumed.Service.exit_code;
  let baseline = run_report (coverage_job ()) in
  (match resumed.Service.report with
  | Some r -> check string "resume equals uninterrupted" baseline (Json.to_string r)
  | None -> fail "resumed run produced no report");
  Sys.remove cp;
  Unix.rmdir dir

(* ---- pool ---- *)

let test_pool_concurrent_same_job () =
  (* one worker serializes the two submissions, so the second must
     resolve its model from the cache; cov_jobs = 2 exercises the
     domain-token path *)
  let cache = Model_cache.create () in
  let pool = Pool.create ~cache ~workers:1 () in
  let lock = Mutex.create () in
  let results = Hashtbl.create 4 in
  let lines = Hashtbl.create 4 in
  let submit n =
    let tag = Printf.sprintf "same-%d" n in
    let on_line l =
      Mutex.protect lock (fun () ->
          Hashtbl.replace lines tag (l :: (Option.value ~default:[] (Hashtbl.find_opt lines tag))))
    in
    let on_done env = Mutex.protect lock (fun () -> Hashtbl.replace results tag env) in
    match Pool.submit pool ~on_line ~on_done (coverage_job ~jobs:2 ()) with
    | Ok id -> id
    | Error e -> failf "submit rejected: %s" e
  in
  let _ = submit 1 and _ = submit 2 in
  Pool.wait pool;
  let report tag =
    match Json.member "report" (Hashtbl.find results tag) with
    | Some r -> Json.to_string r
    | None -> failf "%s resolved without a report" tag
  in
  check string "identical jobs, identical reports" (report "same-1") (report "same-2");
  let hits, _, _ = Model_cache.counts cache in
  check bool "second job hit the model cache" true (hits > 0);
  (* per-job registries: each stream carries exactly its own lifecycle *)
  Hashtbl.iter
    (fun tag ls ->
      let count needle = List.length (List.filter (fun l -> contains l needle) ls) in
      check int (tag ^ " has one job.start") 1 (count "\"ev\":\"job.start\"");
      check int (tag ^ " has one job.done") 1 (count "\"ev\":\"job.done\""))
    lines;
  Pool.drain pool

let test_pool_cancel_and_drain () =
  let pool = Pool.create ~workers:1 ~queue_limit:2 () in
  let lock = Mutex.create () in
  let envs = ref [] in
  let on_done env = Mutex.protect lock (fun () -> envs := env :: !envs) in
  (* a long job occupies the worker; the queued one is cancelled *)
  let id1 =
    match Pool.submit pool ~on_done (coverage_job ~count:2000 ()) with
    | Ok id -> id
    | Error e -> failf "submit 1: %s" e
  in
  let id2 =
    match Pool.submit pool ~on_done (coverage_job ()) with
    | Ok id -> id
    | Error e -> failf "submit 2: %s" e
  in
  check bool "distinct ids" true (id1 <> id2);
  (* wait until the worker has actually picked job 1 up, so the two
     cancels deterministically hit one running and one queued job *)
  let state_of id =
    match Json.member "jobs" (Pool.list pool) with
    | Some (Json.List jobs) ->
        List.find_map
          (fun j ->
            match (Json.member "id" j, Json.member "state" j) with
            | Some (Json.String i), Some (Json.String s) when i = id -> Some s
            | _ -> None)
          jobs
    | _ -> None
  in
  let rec await_running n =
    if state_of id1 <> Some "running" then
      if n = 0 then fail "job 1 never started running"
      else begin
        Unix.sleepf 0.01;
        await_running (n - 1)
      end
  in
  await_running 1000;
  check bool "cancel queued job" true (Pool.cancel pool id2);
  check bool "cancel running job" true (Pool.cancel pool id1);
  Pool.wait pool;
  check bool "unknown id not cancellable" false (Pool.cancel pool "no-such");
  let statuses =
    List.filter_map
      (fun e -> Option.bind (Json.member "status" e) Json.to_string_opt)
      !envs
  in
  check int "both resolved" 2 (List.length statuses);
  check bool "queued one cancelled" true (List.mem "cancelled" statuses);
  check bool "running one stopped" true
    (List.exists (fun s -> s = "interrupted" || s = "done") statuses);
  Pool.drain pool;
  match Pool.submit pool (coverage_job ()) with
  | Ok _ -> fail "drained pool accepted a job"
  | Error _ -> ()

(* ---- daemon ---- *)

let test_daemon_roundtrip () =
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "simcov-test-%d.sock" (Unix.getpid ()))
  in
  let server =
    Domain.spawn (fun () -> Daemon.serve ~socket ~workers:1 ())
  in
  let rec await_socket n =
    if Sys.file_exists socket then ()
    else if n = 0 then fail "daemon socket never appeared"
    else begin
      Unix.sleepf 0.05;
      await_socket (n - 1)
    end
  in
  await_socket 100;
  Fun.protect
    ~finally:(fun () ->
      (* SIGTERM drains the daemon; serve must come back Ok *)
      Unix.kill (Unix.getpid ()) Sys.sigterm;
      match Domain.join server with
      | Ok () -> ()
      | Error e -> failf "serve failed: %s" e)
    (fun () ->
      (match Daemon.ping ~socket with
      | Ok j -> check bool "ping ok" true (Json.member "ok" j = Some (Json.Bool true))
      | Error e -> failf "ping: %s" e);
      let events = ref 0 in
      let env =
        match
          Daemon.submit ~socket ~on_event:(fun _ -> incr events) (coverage_job ())
        with
        | Ok env -> env
        | Error e -> failf "submit: %s" e
      in
      check (option string) "job done" (Some "done")
        (Option.bind (Json.member "status" env) Json.to_string_opt);
      check bool "progress was streamed" true (!events > 0);
      (* the wire report re-renders to the one-shot engine's bytes *)
      let direct = run_report (coverage_job ()) in
      (match Json.member "report" env with
      | Some r -> check string "wire report byte-identical" direct (Json.to_string r)
      | None -> fail "envelope has no report");
      (match Daemon.list_jobs ~socket with
      | Ok j -> (
          check (option string) "jobs schema" (Some "simcov-jobs/1")
            (Option.bind (Json.member "schema" j) Json.to_string_opt);
          match Json.member "jobs" j with
          | Some (Json.List [ _ ]) -> ()
          | _ -> fail "expected exactly one listed job")
      | Error e -> failf "jobs: %s" e);
      (* malformed job: a rejected envelope with exit code 6, not a
         dropped connection *)
      match
        Daemon.submit ~socket
          (match
             Job.of_json (Json.Obj [ ("kind", Json.String "stats") ])
           with
          | Ok j -> j
          | Error e -> failf "stats job: %s" e)
      with
      | Ok env ->
          check (option string) "stats over the wire" (Some "done")
            (Option.bind (Json.member "status" env) Json.to_string_opt)
      | Error e -> failf "stats submit: %s" e)

let suite =
  [
    test_case "job JSON round-trips exactly" `Quick test_job_roundtrip;
    test_case "job defaults and rejections" `Quick test_job_defaults_and_errors;
    test_case "result envelope shape" `Quick test_envelope_shape;
    test_case "cache counts hits, misses, evictions" `Quick test_cache_hits_and_eviction;
    test_case "cache metrics exported via obs" `Quick test_cache_observable_in_metrics;
    test_case "forged CRC-32 collision cannot alias a cached file" `Quick
      test_cache_crc_collision;
    test_case "warm cache: identical report, hit counted" `Quick
      test_warm_cache_identical_report;
    test_case "cancellation leaves loadable checkpoint" `Quick
      test_cancellation_leaves_loadable_checkpoint;
    test_case "pool: concurrent identical jobs" `Quick test_pool_concurrent_same_job;
    test_case "pool: cancel and drain" `Quick test_pool_cancel_and_drain;
    test_case "daemon: socket round-trip and drain" `Quick test_daemon_roundtrip;
  ]
