(* simcov — command-line front end for the simulation-coverage
   validation methodology (Gupta, Malik, Ashar, DAC 1997).

   Subcommands:
     validate-dlx   run the full methodology on the pipelined DLX
     tour           generate a transition tour / test program
     abstract       show the Figure 3(b) abstraction sequence
     stats          symbolic statistics of the derived control model
     fig2           the Figure 2 limitation demo
     run            assemble and co-simulate a DLX program
     serve          job daemon on a Unix socket
     submit / jobs  daemon clients

   The heavy lifting lives in lib/service: each job-shaped subcommand
   builds a Job.t and hands it to Service.run; this file only parses
   flags and routes the outcome's report/human/notes to the right
   stream. The same jobs go over the wire to `simcov serve`.

   Exit codes: 0 success; 1 validation failed (bugs missed /
   certificate failed); 2 usage error; 3 resource limit exceeded;
   4 malformed input file; 5 campaign degraded by worker failures;
   6 job rejected by the daemon (queue full or draining);
   7 socket / protocol error; 130 interrupted (SIGINT/SIGTERM) with a
   final checkpoint flushed. *)

open Cmdliner
module Budget = Simcov_util.Budget
module Json = Simcov_util.Json
module Obs = Simcov_obs.Obs
module Job = Simcov_service.Job
module Service = Simcov_service.Service
module Daemon = Simcov_service.Daemon

let exits =
  [
    Cmd.Exit.info 0 ~doc:"on success.";
    Cmd.Exit.info 1 ~doc:"when validation fails (bugs missed or certificate failed).";
    Cmd.Exit.info 2 ~doc:"on command-line parsing errors.";
    Cmd.Exit.info 3 ~doc:"when a resource limit (--timeout, --max-nodes) is exceeded.";
    Cmd.Exit.info 4 ~doc:"on malformed input files.";
    Cmd.Exit.info 5
      ~doc:
        "when a campaign completed degraded: one or more worker shards failed \
         after retries (see the report's $(b,shard_failures)).";
    Cmd.Exit.info 6
      ~doc:
        "when the daemon rejected the job (queue full, or draining after \
         SIGTERM).";
    Cmd.Exit.info 7 ~doc:"on a socket or protocol error talking to the daemon.";
    Cmd.Exit.info 130
      ~doc:
        "when interrupted (SIGINT/SIGTERM) mid-campaign; with \
         $(b,--checkpoint) a final snapshot is flushed first.";
  ]

let cmd_info name ~doc = Cmd.info name ~doc ~exits

(* ---- the shared common-options term ----

   Every job-shaped subcommand takes the same resource and output
   options; they are defined once here instead of per command. *)

type common = {
  timeout_s : float option;
  max_nodes : int option;
  metrics : string option;
  trace : string option;
  json : bool;
}

let common_term =
  let timeout =
    let doc = "Abort (exit 3) if the run exceeds $(docv) seconds of wall time." in
    Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SEC" ~doc)
  in
  let max_nodes =
    let doc =
      "Cap live BDD nodes at $(docv); symbolic phases garbage-collect, then \
       degrade or stop when the cap is hit."
    in
    Arg.(value & opt (some int) None & info [ "max-nodes" ] ~docv:"N" ~doc)
  in
  let metrics =
    let doc =
      "Write a $(b,simcov-metrics/1) JSON snapshot (engine counters, gauges \
       and per-phase wall times) to $(docv) when the command finishes; \
       $(b,-) writes it to stdout (the human-readable report then moves to \
       stderr)."
    in
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)
  in
  let trace =
    let doc =
      "Stream engine trace events (one minified JSON object per line) to \
       $(docv) while the command runs; $(b,-) streams to stdout."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the machine-readable report as JSON.")
  in
  let build timeout_s max_nodes metrics trace json =
    { timeout_s; max_nodes; metrics; trace; json }
  in
  Term.(const build $ timeout $ max_nodes $ metrics $ trace $ json)

let budget_of_common c =
  match (c.timeout_s, c.max_nodes) with
  | None, None -> Budget.unlimited
  | timeout_s, max_nodes -> Budget.create ?timeout_s ?max_nodes ()

(* legacy budget term for the non-job commands (model) *)
let budget_term =
  Term.(const (fun c -> budget_of_common c) $ common_term)

(* map resource exhaustion escaping a non-job subcommand to exit 3 *)
let guarded f =
  try f () with
  | Budget.Budget_exceeded r ->
      Printf.eprintf "error: resource limit exceeded (out of %s)\n"
        (Budget.resource_name r);
      3
  | Simcov_bdd.Bdd.Node_limit live ->
      Printf.eprintf "error: BDD node ceiling reached (%d nodes live)\n" live;
      3

(* ---- observability plumbing (--metrics / --trace) ---- *)

(* metrics on stdout claims the machine-readable stream: callers route
   their human-readable report to stderr in that case *)
let metrics_on_stdout c = c.metrics = Some "-"

(* Reset the metric registry, install the trace sink, run the command,
   and — whatever way it exits — tear the sink down and write the
   snapshot. The snapshot is written even on a resource-limit exit so a
   truncated run still reports what it spent. *)
let with_obs c f =
  Obs.reset ();
  let close_trace =
    match c.trace with
    | None -> fun () -> ()
    | Some "-" ->
        Obs.set_sink (Some print_endline);
        fun () -> flush stdout
    | Some path ->
        (* published atomically at close: the destination never holds a
           torn trace, only the previous one until commit *)
        let w = Simcov_util.Durable.start path in
        let oc = Simcov_util.Durable.channel w in
        Obs.set_sink
          (Some
             (fun line ->
               output_string oc line;
               output_char oc '\n'));
        fun () -> Simcov_util.Durable.commit w
  in
  Fun.protect
    ~finally:(fun () ->
      Obs.set_sink None;
      close_trace ();
      match c.metrics with
      | None -> ()
      | Some path ->
          let doc = Json.to_string (Obs.snapshot ()) ^ "\n" in
          if path = "-" then begin
            print_string doc;
            flush stdout
          end
          else Simcov_util.Durable.write_string path doc)
    f

(* commands whose engines allocate no BDD nodes: a node allowance would
   be silently inert, so say so (budget.mli, "enforcement split") *)
let warn_inert_max_nodes c =
  if c.max_nodes <> None then
    prerr_endline
      "warning: --max-nodes has no effect here (this command runs no BDD \
       engine); use --timeout to bound the run"

(* ---- running a job through the service ---- *)

(* render a Service outcome the way the monolithic subcommands used to:
   report JSON (with --json) or human text to stdout — stderr when
   --metrics - claims stdout — and notes/errors to stderr *)
let print_outcome c (o : Service.outcome) =
  (match o.Service.error with
  | Some e -> Printf.eprintf "error: %s\n" e
  | None ->
      if c.json then
        match o.Service.report with
        | Some r -> print_endline (Json.to_string r)
        | None -> ()
      else if o.Service.human <> "" then begin
        let out = if metrics_on_stdout c then stderr else stdout in
        output_string out o.Service.human;
        flush out
      end);
  List.iter (fun n -> Printf.eprintf "%s\n%!" n) o.Service.notes;
  o.Service.exit_code

let run_job ?should_stop ?on_progress ?chaos_kill_after c job =
  with_obs c @@ fun () ->
  print_outcome c
    (Service.run ?should_stop ?on_progress ?chaos_kill_after job)

(* campaigns convert SIGINT/SIGTERM into a clean batch-boundary stop
   with a final checkpoint flush; the handler scope is the run only *)
let with_interrupt f =
  let interrupted = Atomic.make false in
  let on_signal = Sys.Signal_handle (fun _ -> Atomic.set interrupted true) in
  let prev_int = Sys.signal Sys.sigint on_signal in
  let prev_term = Sys.signal Sys.sigterm on_signal in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigint prev_int;
      Sys.set_signal Sys.sigterm prev_term)
    (fun () -> f (fun () -> Atomic.get interrupted))

let config_term =
  let regs =
    let doc = "Number of registers in the reduced file (power of two)." in
    Arg.(value & opt int 4 & info [ "regs" ] ~docv:"N" ~doc)
  in
  let no_track =
    let doc =
      "Drop destination-register addresses from the test-model state (the \
       Section 6.3 'abstracting too much' configuration)."
    in
    Arg.(value & flag & info [ "no-track-dest" ] ~doc)
  in
  let no_obs =
    let doc = "Hide the interaction state from the outputs (violates Requirement 5)." in
    Arg.(value & flag & info [ "no-observable-dest" ] ~doc)
  in
  let build n_regs no_track no_obs =
    {
      Simcov_dlx.Testmodel.n_regs;
      track_dest = not no_track;
      observable_dest = not no_obs;
    }
  in
  Term.(const build $ regs $ no_track $ no_obs)

let seed_term =
  Arg.(value & opt int 2026 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

(* ---- campaign parallelism (--jobs / --lanes) ---- *)

let bounded_int ~name lo hi =
  let parse s =
    match int_of_string_opt s with
    | Some v when v >= lo && v <= hi -> Ok v
    | _ ->
        Error
          (`Msg (Printf.sprintf "%s must be an integer in [%d, %d]" name lo hi))
  in
  Arg.conv (parse, Format.pp_print_int)

let parallel_term =
  let jobs =
    Arg.(
      value
      & opt (bounded_int ~name:"--jobs" 1 256) 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Shard the campaign's faults across $(docv) domains. The merged \
             report is bit-identical to the sequential run (deterministic \
             shard order; budgets are carved into per-shard sub-budgets).")
  in
  let lanes =
    Arg.(
      value
      & opt (bounded_int ~name:"--lanes" 1 65536) Sys.int_size
      & info [ "lanes" ] ~docv:"N"
          ~doc:
            "Mutant lanes per simulation pass. Up to 63 (the default) runs \
             the native-int bit-parallel backend; wider values (256, 512, \
             1024, ...) run the bit-sliced wide backend, evaluating $(docv) \
             mutants per golden pass.")
  in
  Term.(const (fun jobs lanes -> (jobs, lanes)) $ jobs $ lanes)

(* ---- BDD variable reordering (--reorder) ---- *)

let reorder_term =
  let mode =
    Arg.enum
      [
        ("off", Job.Reorder_off);
        ("on", Job.Reorder_on);
        ("auto", Job.Reorder_auto);
      ]
  in
  Arg.(
    value
    & opt mode Job.Reorder_off
    & info [ "reorder" ] ~docv:"MODE"
        ~doc:
          "BDD dynamic variable reordering (Rudell sifting) for the symbolic \
           phase. $(b,off) (default) keeps the build-time interleaved order — \
           byte-identical reports to previous releases. $(b,auto) sifts \
           whenever the unique table has grown past a ratio since the last \
           pass. $(b,on) additionally sifts once right after the model is \
           compiled.")

(* ---- validate-dlx ---- *)

let validate_dlx config seed (jobs, lanes) reorder common =
  let p =
    {
      Job.va_regs = config.Simcov_dlx.Testmodel.n_regs;
      va_track_dest = config.Simcov_dlx.Testmodel.track_dest;
      va_observable_dest = config.Simcov_dlx.Testmodel.observable_dest;
      va_seed = seed;
      va_lanes = lanes;
      va_jobs = jobs;
      va_reorder = reorder;
    }
  in
  run_job common
    (Job.make ?timeout_s:common.timeout_s ?max_nodes:common.max_nodes
       (Job.Validate_dlx p))

let validate_cmd =
  let doc = "Run the full validation methodology on the pipelined DLX." in
  Cmd.v
    (cmd_info "validate-dlx" ~doc)
    Term.(
      const validate_dlx $ config_term $ seed_term $ parallel_term
      $ reorder_term $ common_term)

(* ---- tour ---- *)

let tour config emit =
  let open Simcov_dlx in
  let model = Simcov_fsm.Fsm.tabulate (Testmodel.build config) in
  match Simcov_testgen.Tour.transition_tour model with
  | None ->
      prerr_endline "error: test model is not strongly connected";
      1
  | Some t ->
      Printf.printf "test model: %d states, %d transitions\n"
        (Simcov_fsm.Fsm.n_reachable model)
        t.Simcov_testgen.Tour.n_transitions;
      Printf.printf "transition tour: %d inputs (%d extra traversals)\n"
        t.Simcov_testgen.Tour.length t.Simcov_testgen.Tour.extra;
      let conc = Testmodel.concretize config t.Simcov_testgen.Tour.word in
      Printf.printf "concretized program: %d instructions (%d issued)\n"
        (Array.length conc.Testmodel.program)
        (Array.length conc.Testmodel.issue_map);
      (match emit with
      | None -> ()
      | Some path ->
          Simcov_util.Durable.write_file path (fun oc ->
              List.iter
                (fun (r, v) -> Printf.fprintf oc "# preload r%d = %ld\n" r v)
                conc.Testmodel.preload_regs;
              Array.iter
                (fun i -> output_string oc (Isa.to_string i ^ "\n"))
                conc.Testmodel.program);
          Printf.printf "program written to %s\n" path);
      0

let tour_cmd =
  let doc = "Generate the minimum transition tour and its DLX test program." in
  let emit =
    Arg.(
      value
      & opt (some string) None
      & info [ "emit-program" ] ~docv:"FILE" ~doc:"Write the program as assembly.")
  in
  Cmd.v (cmd_info "tour" ~doc) Term.(const tour $ config_term $ emit)

(* ---- abstract ---- *)

let abstract emit =
  let final, trace = Simcov_dlx.Control.derive_test_model () in
  Printf.printf "%-45s %5s %5s %7s %7s\n" "abstraction step" "before" "after" "inputs"
    "gates";
  List.iter
    (fun (e : Simcov_abstraction.Netabs.trace_entry) ->
      Printf.printf "%-45s %5d %5d %7d %7d\n" e.Simcov_abstraction.Netabs.step_label
        e.Simcov_abstraction.Netabs.regs_before e.Simcov_abstraction.Netabs.regs_after
        e.Simcov_abstraction.Netabs.inputs_after e.Simcov_abstraction.Netabs.gates_after)
    trace;
  (match emit with
  | None -> ()
  | Some path ->
      Simcov_netlist.Serialize.save final path;
      Printf.printf "derived model written to %s\n" path);
  0

let abstract_cmd =
  let doc = "Derive the control test model, printing the abstraction sequence." in
  let emit =
    Arg.(
      value
      & opt (some string) None
      & info [ "emit" ] ~docv:"FILE" ~doc:"Write the derived model (text netlist).")
  in
  Cmd.v (cmd_info "abstract" ~doc) Term.(const abstract $ emit)

(* ---- stats ---- *)

let stats reorder common =
  run_job common
    (Job.make ?timeout_s:common.timeout_s ?max_nodes:common.max_nodes
       (Job.Stats { Job.st_reorder = reorder }))

let stats_cmd =
  let doc = "Symbolic (BDD) statistics of the derived control test model." in
  Cmd.v (cmd_info "stats" ~doc) Term.(const stats $ reorder_term $ common_term)

(* ---- fig2 ---- *)

let fig2 () =
  List.iter
    (fun (r : Simcov_core.Fig2.row) ->
      Printf.printf "%-9s %-12s tour=%b detected=%b\n" r.Simcov_core.Fig2.machine
        r.Simcov_core.Fig2.tour r.Simcov_core.Fig2.is_tour r.Simcov_core.Fig2.detected)
    (Simcov_core.Fig2.experiment ());
  0

let fig2_cmd =
  let doc = "Reproduce the Figure 2 transition-tour limitation demo." in
  Cmd.v (cmd_info "fig2" ~doc) Term.(const fig2 $ const ())

(* ---- run ---- *)

let run_file path bug_name do_trace =
  let text = In_channel.with_open_text path In_channel.input_all in
  match Simcov_dlx.Isa.parse_program text with
  | Error e ->
      Printf.eprintf "error: %s: %s\n" path e;
      4
  | Ok program -> (
      let bugs =
        match bug_name with
        | None -> Simcov_dlx.Pipeline.no_bugs
        | Some name -> (
            match List.assoc_opt name Simcov_dlx.Pipeline.bug_catalog with
            | Some b -> b
            | None ->
                Printf.eprintf "unknown bug %s; known bugs:\n" name;
                List.iter
                  (fun (n, _) -> Printf.eprintf "  %s\n" n)
                  Simcov_dlx.Pipeline.bug_catalog;
                exit 2)
      in
      if do_trace then
        print_string (Simcov_dlx.Pipeline.trace (Simcov_dlx.Pipeline.create ~bugs program));
      match Simcov_dlx.Validate.run_program ~bugs program with
      | Simcov_dlx.Validate.Pass n ->
          Printf.printf "PASS: %d commits match the specification\n" n;
          0
      | Simcov_dlx.Validate.Fail _ as f ->
          Format.printf "%a@." Simcov_dlx.Validate.pp_outcome f;
          1)

let run_cmd =
  let doc = "Assemble a DLX program and co-simulate spec vs pipeline." in
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Assembly file.")
  in
  let bug =
    Arg.(
      value
      & opt (some string) None
      & info [ "bug" ] ~docv:"NAME" ~doc:"Inject a named pipeline bug.")
  in
  let do_trace =
    Arg.(value & flag & info [ "trace" ] ~doc:"Print the per-cycle pipeline diagram.")
  in
  Cmd.v (cmd_info "run" ~doc) Term.(const run_file $ file $ bug $ do_trace)

(* ---- dsp ---- *)

let dsp () =
  let open Simcov_dsp.Mac in
  let model = Simcov_fsm.Fsm.tabulate (Testmodel.build ()) in
  match Simcov_core.Completeness.certify model with
  | Error _ ->
      prerr_endline "error: DSP test model failed certification";
      1
  | Ok cert ->
      Printf.printf
        "DSP MAC test model: %d states, %d transitions, forall-%d-distinguishable\n"
        cert.Simcov_core.Completeness.n_states cert.Simcov_core.Completeness.n_transitions
        cert.Simcov_core.Completeness.k;
      let word = Simcov_core.Completeness.padded_tour model cert in
      let cmds = Testmodel.concretize word in
      Printf.printf "tour: %d inputs -> %d commands\n" (List.length word)
        (List.length cmds);
      let results = Validate.bug_campaign cmds in
      List.iter
        (fun (name, detected) ->
          Printf.printf "  %-18s %s\n" name (if detected then "DETECTED" else "missed"))
        results;
      if List.for_all snd results then 0 else 1

let dsp_cmd =
  let doc = "Run the methodology on the fixed-program DSP (MAC ASIC) case study." in
  Cmd.v (cmd_info "dsp" ~doc) Term.(const dsp $ const ())

(* ---- model: operate on a serialized circuit ---- *)

let model_cmd_run path do_tour max_steps budget =
  guarded @@ fun () ->
  match Simcov_netlist.Serialize.load path with
  | Error e ->
      Printf.eprintf "error: %s: %s\n" path (Simcov_netlist.Serialize.error_to_string e);
      4
  | Ok c ->
      Format.printf "%a@." Simcov_netlist.Circuit.pp_stats c;
      let sym = Simcov_symbolic.Symfsm.of_circuit ~budget c in
      let open Simcov_symbolic.Symfsm in
      let r, iters = reachable sym in
      Printf.printf "reachable states: %.0f of %.0f (in %d iterations)\n"
        (count_states sym r) (state_space_size sym) iters;
      Printf.printf "valid input combinations: %.0f of %.0f\n" (count_valid_inputs sym)
        (input_space_size sym);
      Printf.printf "transitions to cover: %.0f\n" (count_transitions sym);
      if do_tour then begin
        let res = Simcov_symbolic.Symtour.generate ~max_steps ~budget c in
        Printf.printf "symbolic tour: %d steps, %.0f/%.0f transitions covered%s\n"
          res.Simcov_symbolic.Symtour.progress.Simcov_symbolic.Symtour.steps
          res.Simcov_symbolic.Symtour.progress.Simcov_symbolic.Symtour.covered
          res.Simcov_symbolic.Symtour.progress.Simcov_symbolic.Symtour.total
          (if res.Simcov_symbolic.Symtour.complete then " (complete)" else " (truncated)");
        match res.Simcov_symbolic.Symtour.truncated_by with
        | Some r ->
            Printf.printf "tour cut short: out of %s\n" (Budget.resource_name r)
        | None -> ()
      end;
      0

let model_cmd =
  let doc = "Analyze a serialized circuit: statistics and optional symbolic tour." in
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Circuit file.")
  in
  let do_tour =
    Arg.(value & flag & info [ "tour" ] ~doc:"Generate a symbolic transition tour.")
  in
  let max_steps =
    Arg.(
      value & opt int 100_000
      & info [ "max-steps" ] ~docv:"N" ~doc:"Symbolic tour step budget.")
  in
  Cmd.v
    (cmd_info "model" ~doc)
    Term.(const model_cmd_run $ file $ do_tour $ max_steps $ budget_term)

(* ---- lint ---- *)

let catalog_json entries =
  Json.Obj
    [
      ("schema", Json.String "simcov-diag-catalog/1");
      ( "entries",
        Json.List
          (List.map
             (fun (e : Simcov_analysis.Diag.catalog_entry) ->
               Json.Obj
                 [
                   ("code", Json.String e.Simcov_analysis.Diag.entry_code);
                   ( "severity",
                     Json.String
                       (Simcov_analysis.Diag.severity_name
                          e.Simcov_analysis.Diag.default_severity) );
                   ("title", Json.String e.Simcov_analysis.Diag.title);
                   ("fix", Json.String e.Simcov_analysis.Diag.fix);
                 ])
             entries) );
    ]

let print_entry (e : Simcov_analysis.Diag.catalog_entry) =
  Printf.printf "%s (%s)\n  %s\n  fix: %s\n" e.Simcov_analysis.Diag.entry_code
    (Simcov_analysis.Diag.severity_name e.Simcov_analysis.Diag.default_severity)
    e.Simcov_analysis.Diag.title e.Simcov_analysis.Diag.fix

(* --explain CODE prints one catalog entry; bare --explain (or
   --explain all) walks the whole catalog *)
let explain_code ~json code =
  match code with
  | "all" ->
      let entries = Simcov_analysis.Diag.catalog in
      if json then print_endline (Json.to_string (catalog_json entries))
      else List.iter print_entry entries;
      0
  | code -> (
      match Simcov_analysis.Diag.explain code with
      | Some e ->
          if json then print_endline (Json.to_string (catalog_json [ e ]))
          else print_entry e;
          0
      | None ->
          Printf.eprintf "error: unknown diagnostic code '%s'\n" code;
          4)

let lint model against fsm suite_file k_bound explain fail_on common =
  match explain with
  | Some code -> explain_code ~json:common.json code
  | None -> (
      match model with
      | None ->
          prerr_endline "error: a MODEL argument is required (or use --explain CODE)";
          4
      | Some model ->
          warn_inert_max_nodes common;
          let p =
            {
              Job.li_model = model;
              li_against = against;
              li_fsm = fsm;
              li_suite = suite_file;
              li_k_bound = k_bound;
              li_fail_on = fail_on;
            }
          in
          run_job common
            (Job.make ?timeout_s:common.timeout_s ?max_nodes:common.max_nodes
               (Job.Lint p)))

let lint_cmd =
  let doc =
    "Statically analyze a model: structural lint, combinational cycles, \
     ternary constants, dead logic, abstraction prechecks — or, with \
     $(b,--fsm), the FSM-level Theorem 1 precondition certification \
     (connectivity, minimality, forall-k-distinguishability, R1/R4)."
  in
  let model =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"MODEL"
          ~doc:
            "Circuit file, or a builtin: $(b,dlx-control) (the pipelined DLX \
             control implementation), $(b,dlx-test) (the derived test model). \
             With $(b,--fsm): $(b,dlx-test) / $(b,dsp) (the explicit test \
             models) or any circuit small enough to enumerate. Optional only \
             with $(b,--explain).")
  in
  let fsm =
    Arg.(
      value & flag
      & info [ "fsm" ]
          ~doc:
            "Lint $(i,MODEL) as an explicit Mealy machine (SA6xx passes; \
             $(b,simcov-fsmlint/1) JSON) instead of as a netlist.")
  in
  let suite_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "suite" ] ~docv:"FILE"
          ~doc:
            "With $(b,--fsm): statically predict the state/transition coverage \
             of the input words in $(docv) (one word per line, space-separated \
             input indices, $(b,#) comments) and flag redundant words and \
             missed transitions.")
  in
  let k_bound =
    Arg.(
      value
      & opt (bounded_int ~name:"--k-bound" 1 64) 8
      & info [ "k-bound" ] ~docv:"K"
          ~doc:"With $(b,--fsm): bound of the forall-k-distinguishability search.")
  in
  let explain =
    Arg.(
      value
      & opt ~vopt:(Some "all") (some string) None
      & info [ "explain" ] ~docv:"CODE"
          ~doc:
            "Print the catalog entry (title, severity, suggested fix) for a \
             stable diagnostic code such as $(b,SA101) or $(b,SA620), and \
             exit; bare $(b,--explain) (or $(b,--explain all)) lists the \
             whole catalog.")
  in
  let against =
    Arg.(
      value
      & opt (some string) None
      & info [ "against" ] ~docv:"MODEL"
          ~doc:
            "Concrete model $(i,MODEL) was abstracted from; enables the \
             homomorphism cone-compatibility precheck.")
  in
  let fail_on =
    let sev =
      Arg.enum
        [
          ("error", Simcov_analysis.Diag.Error);
          ("warning", Simcov_analysis.Diag.Warning);
          ("info", Simcov_analysis.Diag.Info);
        ]
    in
    Arg.(
      value
      & opt sev Simcov_analysis.Diag.Error
      & info [ "fail-on" ] ~docv:"SEVERITY"
          ~doc:"Exit 1 when a diagnostic of $(docv) (or higher) is reported.")
  in
  Cmd.v
    (cmd_info "lint" ~doc)
    Term.(
      const lint $ model $ against $ fsm $ suite_file $ k_bound $ explain
      $ fail_on $ common_term)

(* ---- coverage: fault campaigns through the service engine ---- *)

let persist_term =
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Write a durable $(b,simcov-covdb/1) snapshot of per-fault \
             results to $(docv) periodically and at exit (atomic temp-file + \
             fsync + rename, CRC per record); a killed run resumes from it \
             with $(b,--resume).")
  in
  let every =
    Arg.(
      value & opt int 1
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:"Flush the checkpoint after every $(docv) completed batches.")
  in
  let resume =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"FILE"
          ~doc:
            "Resume from a $(b,simcov-covdb/1) snapshot: already-decided \
             faults are retired without re-simulation, and the final report \
             is identical to the uninterrupted run's. The snapshot must come \
             from the same campaign configuration and stimulus (same model, \
             fault population, $(b,--seed), $(b,--steps)). Unless \
             $(b,--checkpoint) is also given, new snapshots overwrite \
             $(docv).")
  in
  let chaos =
    Arg.(
      value
      & opt (some int) None
      & info [ "chaos-kill-after" ] ~docv:"N"
          ~doc:
            "Testing hook for the chaos harness: SIGKILL this process right \
             after the $(docv)-th checkpoint flush commits (requires \
             $(b,--checkpoint)).")
  in
  Term.(
    const (fun checkpoint every resume chaos -> (checkpoint, every, resume, chaos))
    $ checkpoint $ every $ resume $ chaos)

let coverage_run model kind seed count steps fail_under progress (jobs, lanes)
    reorder (checkpoint, checkpoint_every, resume, chaos_kill_after) common =
  warn_inert_max_nodes common;
  let p =
    {
      Job.cov_model = model;
      cov_faults = (match kind with `Fsm -> Job.Fsm_faults | `Stuckat -> Job.Stuckat_faults);
      cov_seed = seed;
      cov_count = count;
      cov_steps = steps;
      cov_fail_under = fail_under;
      cov_lanes = lanes;
      cov_jobs = jobs;
      cov_checkpoint = checkpoint;
      cov_checkpoint_every = checkpoint_every;
      cov_resume = resume;
      cov_reorder = reorder;
    }
  in
  let on_progress =
    (* progress goes to stderr only: stdout is reserved for the report
       (the stdout-purity CI check pins this down) *)
    if progress then
      Some
        (fun (pr : Simcov_campaign.Campaign.progress) ->
          Format.fprintf Format.err_formatter "%a@."
            Simcov_campaign.Campaign.pp_progress pr)
    else None
  in
  with_interrupt @@ fun should_stop ->
  run_job ~should_stop ?on_progress ?chaos_kill_after common
    (Job.make ?timeout_s:common.timeout_s ?max_nodes:common.max_nodes
       (Job.Coverage p))

let coverage_cmd =
  let doc =
    "Run a fault campaign (FSM error-model or stuck-at) through the shared \
     bit-parallel campaign engine."
  in
  let model =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"MODEL"
          ~doc:
            "$(b,dlx) (the DLX test model / its derived control netlist), a \
             builtin ($(b,dlx-control), $(b,dlx-test)) or a circuit file.")
  in
  let kind =
    let k = Arg.enum [ ("fsm", `Fsm); ("stuckat", `Stuckat) ] in
    Arg.(
      value & opt k `Fsm
      & info [ "faults" ] ~docv:"KIND"
          ~doc:
            "Fault model: $(b,fsm) (transfer + output error-model mutants on the \
             enumerated machine) or $(b,stuckat) (netlist stuck-at faults under \
             random constraint-respecting stimuli).")
  in
  let count =
    Arg.(
      value & opt int 150
      & info [ "count" ] ~docv:"N"
          ~doc:"FSM faults sampled per kind (transfer, output).")
  in
  let steps =
    Arg.(
      value & opt int 256
      & info [ "steps" ] ~docv:"N" ~doc:"Stimulus length for stuck-at campaigns.")
  in
  let fail_under =
    Arg.(
      value
      & opt (some float) None
      & info [ "fail-under" ] ~docv:"PCT"
          ~doc:"Exit 1 when coverage falls below $(docv) percent.")
  in
  let progress =
    Arg.(
      value & flag
      & info [ "progress" ] ~doc:"Print per-batch campaign progress to stderr.")
  in
  Cmd.v
    (cmd_info "coverage" ~doc)
    Term.(
      const coverage_run $ model $ kind $ seed_term $ count $ steps $ fail_under
      $ progress $ parallel_term $ reorder_term $ persist_term $ common_term)

(* ---- merge / minimize: offline aggregation of coverage snapshots ---- *)

let merge_run inputs output common =
  run_job common (Job.make (Job.Merge { inputs; output }))

let merge_cmd =
  let doc =
    "Union $(b,simcov-covdb/1) snapshots of the same campaign configuration \
     (per fault, the strongest status and earliest steps win) into one \
     durable snapshot."
  in
  let inputs =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"FILE" ~doc:"Input $(b,simcov-covdb/1) snapshots.")
  in
  let output =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"OUT" ~doc:"Merged snapshot destination.")
  in
  Cmd.v (cmd_info "merge" ~doc) Term.(const merge_run $ inputs $ output $ common_term)

let minimize_run inputs common =
  run_job common (Job.make (Job.Minimize { inputs }))

let minimize_cmd =
  let doc =
    "Greedy set-cover over $(b,simcov-covdb/1) snapshots: pick the smallest \
     run subset (largest marginal detection first) that covers every fault \
     the whole fleet detected — a minimal regression suite."
  in
  let inputs =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"FILE" ~doc:"Input $(b,simcov-covdb/1) snapshots.")
  in
  Cmd.v (cmd_info "minimize" ~doc) Term.(const minimize_run $ inputs $ common_term)

(* ---- serve / submit / jobs: the daemon front-end ---- *)

let socket_term =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let serve socket queue_limit workers =
  match Daemon.serve ~socket ~queue_limit ~workers () with
  | Ok () -> 0
  | Error e ->
      Printf.eprintf "error: %s\n" e;
      7

let serve_cmd =
  let doc =
    "Run the job daemon: accept newline-delimited $(b,simcov-job/1) requests \
     over a Unix socket, stream $(b,simcov-metrics/1) snapshots and JSONL \
     trace events while each job runs, then the result envelope. SIGTERM \
     drains the queue through the durable checkpoint path and exits 0."
  in
  let queue_limit =
    Arg.(
      value & opt int 64
      & info [ "queue-limit" ] ~docv:"N"
          ~doc:"Reject new jobs (exit 6 at the client) beyond $(docv) queued.")
  in
  let workers =
    Arg.(
      value & opt (bounded_int ~name:"--workers" 1 64) 2
      & info [ "workers" ] ~docv:"N" ~doc:"Concurrent job worker domains.")
  in
  Cmd.v
    (cmd_info "serve" ~doc)
    Term.(const serve $ socket_term $ queue_limit $ workers)

(* a --param KEY=VALUE becomes a params field; values parse as JSON
   scalars when they look like one, strings otherwise *)
let param_value s =
  match Json.parse s with
  | Ok ((Json.Int _ | Json.Float _ | Json.Bool _ | Json.Null) as v) -> v
  | _ -> Json.String s

let build_job_json kind id timeout_s max_nodes params =
  let fields =
    List.map
      (fun kv ->
        match String.index_opt kv '=' with
        | Some i ->
            ( String.sub kv 0 i,
              param_value (String.sub kv (i + 1) (String.length kv - i - 1)) )
        | None -> (kv, Json.Bool true))
      params
  in
  Json.Obj
    ([ ("schema", Json.String Job.schema_id); ("kind", Json.String kind) ]
    @ (match id with Some i -> [ ("id", Json.String i) ] | None -> [])
    @ (match timeout_s with Some t -> [ ("timeout_s", Json.Float t) ] | None -> [])
    @ (match max_nodes with Some n -> [ ("max_nodes", Json.Int n) ] | None -> [])
    @ [ ("params", Json.Obj fields) ])

let submit socket kind file id params quiet report_only common =
  let job_json =
    match file with
    | Some path -> (
        let read () =
          if path = "-" then Ok (In_channel.input_all stdin)
          else
            try Ok (In_channel.with_open_text path In_channel.input_all)
            with Sys_error e -> Error e
        in
        match read () with
        | Error e ->
            Printf.eprintf "error: %s\n" e;
            Error 4
        | Ok text -> (
            match Json.parse text with
            | Error e ->
                Printf.eprintf "error: %s: %s\n" path e;
                Error 4
            | Ok j -> Ok j))
    | None -> (
        match kind with
        | Some kind ->
            Ok (build_job_json kind id common.timeout_s common.max_nodes params)
        | None ->
            prerr_endline "error: a job KIND (or --file JOB.json) is required";
            Error 2)
  in
  match job_json with
  | Error code -> code
  | Ok j -> (
      match Job.of_json j with
      | Error e ->
          Printf.eprintf "error: invalid job: %s\n" e;
          4
      | Ok job -> (
          let on_event ev =
            if not quiet then Printf.eprintf "%s\n%!" (Json.to_string ~indent:0 ev)
          in
          match Daemon.submit ~socket ~on_event job with
          | Error e ->
              Printf.eprintf "error: %s\n" e;
              7
          | Ok envelope ->
              (* re-rendering the parsed report with the library
                 renderer reproduces the one-shot CLI output byte for
                 byte (parse ∘ render is the identity on its image) *)
              (if report_only then
                 match Json.member "report" envelope with
                 | Some r -> print_endline (Json.to_string r)
                 | None -> ()
               else print_endline (Json.to_string envelope));
              (match Json.member "exit_code" envelope with
              | Some (Json.Int c) -> c
              | _ -> 7)))

let submit_cmd =
  let doc =
    "Submit a job to a running $(b,simcov serve) daemon and stream its \
     progress: trace/metrics events to stderr, the $(b,simcov-job/1) result \
     envelope to stdout; exits with the job's exit code."
  in
  let kind =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"KIND"
          ~doc:
            "Job kind: $(b,validate-dlx), $(b,lint), $(b,coverage), \
             $(b,merge), $(b,minimize) or $(b,stats).")
  in
  let file =
    Arg.(
      value
      & opt (some string) None
      & info [ "file" ] ~docv:"FILE"
          ~doc:"Read the full $(b,simcov-job/1) request from $(docv) ($(b,-) for stdin).")
  in
  let id =
    Arg.(
      value
      & opt (some string) None
      & info [ "id" ] ~docv:"ID" ~doc:"Job id echoed in the envelope.")
  in
  let params =
    Arg.(
      value & opt_all string []
      & info [ "param"; "p" ] ~docv:"KEY=VALUE"
          ~doc:
            "A job parameter, e.g. $(b,-p model=dlx -p jobs=2); repeatable. \
             Values parse as JSON scalars when they look like one.")
  in
  let quiet =
    Arg.(
      value & flag
      & info [ "quiet"; "q" ] ~doc:"Do not echo streamed events to stderr.")
  in
  let report_only =
    Arg.(
      value & flag
      & info [ "report-only" ]
          ~doc:
            "Print only the envelope's $(b,report) member — byte-identical \
             to the one-shot subcommand's $(b,--json) output.")
  in
  Cmd.v
    (cmd_info "submit" ~doc)
    Term.(
      const submit $ socket_term $ kind $ file $ id $ params $ quiet
      $ report_only $ common_term)

let jobs_cmd_run socket cancel =
  match cancel with
  | Some id -> (
      match Daemon.cancel_job ~socket ~id with
      | Ok reply ->
          print_endline (Json.to_string reply);
          0
      | Error e ->
          Printf.eprintf "error: %s\n" e;
          7)
  | None -> (
      match Daemon.list_jobs ~socket with
      | Ok reply ->
          print_endline (Json.to_string reply);
          0
      | Error e ->
          Printf.eprintf "error: %s\n" e;
          7)

let jobs_cmd =
  let doc = "List (or cancel) jobs on a running $(b,simcov serve) daemon." in
  let cancel =
    Arg.(
      value
      & opt (some string) None
      & info [ "cancel" ] ~docv:"ID" ~doc:"Cancel the job with id $(docv).")
  in
  Cmd.v (cmd_info "jobs" ~doc) Term.(const jobs_cmd_run $ socket_term $ cancel)

(* ---- main ---- *)

let () =
  (* Wide campaigns allocate lane-set words at a rate the default
     256k-word minor arena turns into back-to-back minor collections;
     a 4M-word arena (32 MB, and per domain) keeps the allocation rate
     off the collector without noticeable footprint for a CLI run. *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 4 * 1024 * 1024 };
  let doc = "validation methodology using simulation coverage (DAC 1997)" in
  let info = Cmd.info "simcov" ~version:"1.0.0" ~doc ~exits in
  let group =
    Cmd.group info
      [
        validate_cmd; tour_cmd; abstract_cmd; stats_cmd; fig2_cmd; run_cmd; dsp_cmd;
        model_cmd; lint_cmd; coverage_cmd; merge_cmd; minimize_cmd; serve_cmd;
        submit_cmd; jobs_cmd;
      ]
  in
  exit (Cmd.eval' ~term_err:2 group)
