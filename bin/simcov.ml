(* simcov — command-line front end for the simulation-coverage
   validation methodology (Gupta, Malik, Ashar, DAC 1997).

   Subcommands:
     validate-dlx   run the full methodology on the pipelined DLX
     tour           generate a transition tour / test program
     abstract       show the Figure 3(b) abstraction sequence
     stats          symbolic statistics of the derived control model
     fig2           the Figure 2 limitation demo
     run            assemble and co-simulate a DLX program

   Exit codes: 0 success; 1 validation failed (bugs missed /
   certificate failed); 2 usage error; 3 resource limit exceeded;
   4 malformed input file; 5 campaign degraded by worker failures;
   130 interrupted (SIGINT/SIGTERM) with a final checkpoint flushed. *)

open Cmdliner
module Budget = Simcov_util.Budget

let exits =
  [
    Cmd.Exit.info 0 ~doc:"on success.";
    Cmd.Exit.info 1 ~doc:"when validation fails (bugs missed or certificate failed).";
    Cmd.Exit.info 2 ~doc:"on command-line parsing errors.";
    Cmd.Exit.info 3 ~doc:"when a resource limit (--timeout, --max-nodes) is exceeded.";
    Cmd.Exit.info 4 ~doc:"on malformed input files.";
    Cmd.Exit.info 5
      ~doc:
        "when a campaign completed degraded: one or more worker shards failed \
         after retries (see the report's $(b,shard_failures)).";
    Cmd.Exit.info 130
      ~doc:
        "when interrupted (SIGINT/SIGTERM) mid-campaign; with \
         $(b,--checkpoint) a final snapshot is flushed first.";
  ]

let cmd_info name ~doc = Cmd.info name ~doc ~exits

let budget_term =
  let timeout =
    let doc = "Abort (exit 3) if the run exceeds $(docv) seconds of wall time." in
    Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SEC" ~doc)
  in
  let max_nodes =
    let doc =
      "Cap live BDD nodes at $(docv); symbolic phases garbage-collect, then \
       degrade or stop when the cap is hit."
    in
    Arg.(value & opt (some int) None & info [ "max-nodes" ] ~docv:"N" ~doc)
  in
  let build timeout_s max_nodes =
    match (timeout_s, max_nodes) with
    | None, None -> Budget.unlimited
    | _ -> Budget.create ?timeout_s ?max_nodes ()
  in
  Term.(const build $ timeout $ max_nodes)

(* map resource exhaustion escaping a subcommand to exit 3 *)
let guarded f =
  try f () with
  | Budget.Budget_exceeded r ->
      Printf.eprintf "error: resource limit exceeded (out of %s)\n"
        (Budget.resource_name r);
      3
  | Simcov_bdd.Bdd.Node_limit live ->
      Printf.eprintf "error: BDD node ceiling reached (%d nodes live)\n" live;
      3

(* ---- observability plumbing (--metrics / --trace) ---- *)

module Obs = Simcov_obs.Obs

let obs_term =
  let metrics =
    let doc =
      "Write a $(b,simcov-metrics/1) JSON snapshot (engine counters, gauges \
       and per-phase wall times) to $(docv) when the command finishes; \
       $(b,-) writes it to stdout (the human-readable report then moves to \
       stderr)."
    in
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)
  in
  let trace =
    let doc =
      "Stream engine trace events (one minified JSON object per line) to \
       $(docv) while the command runs; $(b,-) streams to stdout."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  Term.(const (fun metrics trace -> (metrics, trace)) $ metrics $ trace)

(* metrics on stdout claims the machine-readable stream: callers route
   their human-readable report to stderr in that case *)
let metrics_on_stdout (metrics, _trace) = metrics = Some "-"

(* Reset the metric registry, install the trace sink, run the command,
   and — whatever way it exits — tear the sink down and write the
   snapshot. The snapshot is written even on a resource-limit exit so a
   truncated run still reports what it spent. *)
let with_obs (metrics, trace) f =
  Obs.reset ();
  let close_trace =
    match trace with
    | None -> fun () -> ()
    | Some "-" ->
        Obs.set_sink (Some print_endline);
        fun () -> flush stdout
    | Some path ->
        (* published atomically at close: the destination never holds a
           torn trace, only the previous one until commit *)
        let w = Simcov_util.Durable.start path in
        let oc = Simcov_util.Durable.channel w in
        Obs.set_sink
          (Some
             (fun line ->
               output_string oc line;
               output_char oc '\n'));
        fun () -> Simcov_util.Durable.commit w
  in
  Fun.protect
    ~finally:(fun () ->
      Obs.set_sink None;
      close_trace ();
      match metrics with
      | None -> ()
      | Some path ->
          let doc = Simcov_util.Json.to_string (Obs.snapshot ()) ^ "\n" in
          if path = "-" then begin
            print_string doc;
            flush stdout
          end
          else Simcov_util.Durable.write_string path doc)
    f

(* commands whose engines allocate no BDD nodes: a node allowance would
   be silently inert, so say so (budget.mli, "enforcement split") *)
let warn_inert_max_nodes budget =
  if Budget.max_nodes budget <> None then
    prerr_endline
      "warning: --max-nodes has no effect here (this command runs no BDD \
       engine); use --timeout to bound the run"

let config_term =
  let regs =
    let doc = "Number of registers in the reduced file (power of two)." in
    Arg.(value & opt int 4 & info [ "regs" ] ~docv:"N" ~doc)
  in
  let no_track =
    let doc =
      "Drop destination-register addresses from the test-model state (the \
       Section 6.3 'abstracting too much' configuration)."
    in
    Arg.(value & flag & info [ "no-track-dest" ] ~doc)
  in
  let no_obs =
    let doc = "Hide the interaction state from the outputs (violates Requirement 5)." in
    Arg.(value & flag & info [ "no-observable-dest" ] ~doc)
  in
  let build n_regs no_track no_obs =
    {
      Simcov_dlx.Testmodel.n_regs;
      track_dest = not no_track;
      observable_dest = not no_obs;
    }
  in
  Term.(const build $ regs $ no_track $ no_obs)

let seed_term =
  Arg.(value & opt int 2026 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

(* ---- campaign parallelism (--jobs / --lanes) ---- *)

let bounded_int ~name lo hi =
  let parse s =
    match int_of_string_opt s with
    | Some v when v >= lo && v <= hi -> Ok v
    | _ ->
        Error
          (`Msg (Printf.sprintf "%s must be an integer in [%d, %d]" name lo hi))
  in
  Arg.conv (parse, Format.pp_print_int)

let parallel_term =
  let jobs =
    Arg.(
      value
      & opt (bounded_int ~name:"--jobs" 1 256) 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Shard the campaign's faults across $(docv) domains. The merged \
             report is bit-identical to the sequential run (deterministic \
             shard order; budgets are carved into per-shard sub-budgets).")
  in
  let lanes =
    Arg.(
      value
      & opt (bounded_int ~name:"--lanes" 1 65536) Sys.int_size
      & info [ "lanes" ] ~docv:"N"
          ~doc:
            "Mutant lanes per simulation pass. Up to 63 (the default) runs \
             the native-int bit-parallel backend; wider values (256, 512, \
             1024, ...) run the bit-sliced wide backend, evaluating $(docv) \
             mutants per golden pass.")
  in
  Term.(const (fun jobs lanes -> (jobs, lanes)) $ jobs $ lanes)

(* ---- validate-dlx ---- *)

let validate_dlx config seed (jobs, lanes) budget obs =
  guarded @@ fun () ->
  with_obs obs @@ fun () ->
  let ppf =
    if metrics_on_stdout obs then Format.err_formatter else Format.std_formatter
  in
  let report =
    Simcov_core.Methodology.validate_dlx ~config ~seed ~budget ~lanes ~jobs ()
  in
  Format.fprintf ppf "%a@." Simcov_core.Methodology.pp_run_report report;
  if Simcov_core.Methodology.campaigns_truncated report then 3
  else if
    report.Simcov_core.Methodology.lint_errors = []
    (* FSM precondition gate: warnings are recorded, errors fail *)
    && not
         (Simcov_analysis.Fsm_lint.fails
            report.Simcov_core.Methodology.fsm_lint
            ~threshold:Simcov_analysis.Diag.Error)
    && report.Simcov_core.Methodology.n_bugs_detected
       = List.length report.Simcov_core.Methodology.bug_results
    && Result.is_ok report.Simcov_core.Methodology.certificate
  then 0
  else 1

let validate_cmd =
  let doc = "Run the full validation methodology on the pipelined DLX." in
  Cmd.v
    (cmd_info "validate-dlx" ~doc)
    Term.(
      const validate_dlx $ config_term $ seed_term $ parallel_term $ budget_term
      $ obs_term)

(* ---- tour ---- *)

let tour config emit =
  let open Simcov_dlx in
  let model = Simcov_fsm.Fsm.tabulate (Testmodel.build config) in
  match Simcov_testgen.Tour.transition_tour model with
  | None ->
      prerr_endline "error: test model is not strongly connected";
      1
  | Some t ->
      Printf.printf "test model: %d states, %d transitions\n"
        (Simcov_fsm.Fsm.n_reachable model)
        t.Simcov_testgen.Tour.n_transitions;
      Printf.printf "transition tour: %d inputs (%d extra traversals)\n"
        t.Simcov_testgen.Tour.length t.Simcov_testgen.Tour.extra;
      let conc = Testmodel.concretize config t.Simcov_testgen.Tour.word in
      Printf.printf "concretized program: %d instructions (%d issued)\n"
        (Array.length conc.Testmodel.program)
        (Array.length conc.Testmodel.issue_map);
      (match emit with
      | None -> ()
      | Some path ->
          Simcov_util.Durable.write_file path (fun oc ->
              List.iter
                (fun (r, v) -> Printf.fprintf oc "# preload r%d = %ld\n" r v)
                conc.Testmodel.preload_regs;
              Array.iter
                (fun i -> output_string oc (Isa.to_string i ^ "\n"))
                conc.Testmodel.program);
          Printf.printf "program written to %s\n" path);
      0

let tour_cmd =
  let doc = "Generate the minimum transition tour and its DLX test program." in
  let emit =
    Arg.(
      value
      & opt (some string) None
      & info [ "emit-program" ] ~docv:"FILE" ~doc:"Write the program as assembly.")
  in
  Cmd.v (cmd_info "tour" ~doc) Term.(const tour $ config_term $ emit)

(* ---- abstract ---- *)

let abstract emit =
  let final, trace = Simcov_dlx.Control.derive_test_model () in
  Printf.printf "%-45s %5s %5s %7s %7s\n" "abstraction step" "before" "after" "inputs"
    "gates";
  List.iter
    (fun (e : Simcov_abstraction.Netabs.trace_entry) ->
      Printf.printf "%-45s %5d %5d %7d %7d\n" e.Simcov_abstraction.Netabs.step_label
        e.Simcov_abstraction.Netabs.regs_before e.Simcov_abstraction.Netabs.regs_after
        e.Simcov_abstraction.Netabs.inputs_after e.Simcov_abstraction.Netabs.gates_after)
    trace;
  (match emit with
  | None -> ()
  | Some path ->
      Simcov_netlist.Serialize.save final path;
      Printf.printf "derived model written to %s\n" path);
  0

let abstract_cmd =
  let doc = "Derive the control test model, printing the abstraction sequence." in
  let emit =
    Arg.(
      value
      & opt (some string) None
      & info [ "emit" ] ~docv:"FILE" ~doc:"Write the derived model (text netlist).")
  in
  Cmd.v (cmd_info "abstract" ~doc) Term.(const abstract $ emit)

(* ---- stats ---- *)

let stats budget obs =
  guarded @@ fun () ->
  with_obs obs @@ fun () ->
  let out = if metrics_on_stdout obs then stderr else stdout in
  let ppf = Format.formatter_of_out_channel out in
  let final, _ = Simcov_dlx.Control.derive_test_model () in
  Format.fprintf ppf "%a@." Simcov_netlist.Circuit.pp_stats final;
  let sym = Simcov_symbolic.Symfsm.of_circuit ~budget final in
  let open Simcov_symbolic.Symfsm in
  let tr = reachable_stats ~budget sym in
  Printf.fprintf out "reachable states: %.0f of %.0f (in %d iterations, %.2fs)\n"
    (count_states sym tr.reached) (state_space_size sym) tr.iterations
    tr.total_time_s;
  List.iter
    (fun st ->
      Printf.fprintf out
        "  iter %d: frontier %.0f states (%d nodes), reached %d nodes, %d live, %.3fs\n"
        st.iteration st.frontier_states st.frontier_nodes st.reached_nodes
        st.live_nodes st.time_s)
    tr.iter_stats;
  if tr.gc_runs > 0 then
    Printf.fprintf out "BDD garbage collections: %d (peak %d live nodes)\n" tr.gc_runs
      tr.peak_live_nodes;
  match tr.truncated with
  | Some r ->
      Printf.fprintf out "traversal truncated: out of %s after %d iterations\n"
        (Budget.resource_name r) tr.iterations;
      3
  | None ->
      Printf.fprintf out "valid input combinations: %.0f of %.0f\n"
        (count_valid_inputs sym) (input_space_size sym);
      Printf.fprintf out "transitions to cover: %.0f\n" (count_transitions sym);
      0

let stats_cmd =
  let doc = "Symbolic (BDD) statistics of the derived control test model." in
  Cmd.v (cmd_info "stats" ~doc) Term.(const stats $ budget_term $ obs_term)

(* ---- fig2 ---- *)

let fig2 () =
  List.iter
    (fun (r : Simcov_core.Fig2.row) ->
      Printf.printf "%-9s %-12s tour=%b detected=%b\n" r.Simcov_core.Fig2.machine
        r.Simcov_core.Fig2.tour r.Simcov_core.Fig2.is_tour r.Simcov_core.Fig2.detected)
    (Simcov_core.Fig2.experiment ());
  0

let fig2_cmd =
  let doc = "Reproduce the Figure 2 transition-tour limitation demo." in
  Cmd.v (cmd_info "fig2" ~doc) Term.(const fig2 $ const ())

(* ---- run ---- *)

let run_file path bug_name do_trace =
  let text = In_channel.with_open_text path In_channel.input_all in
  match Simcov_dlx.Isa.parse_program text with
  | Error e ->
      Printf.eprintf "error: %s: %s\n" path e;
      4
  | Ok program -> (
      let bugs =
        match bug_name with
        | None -> Simcov_dlx.Pipeline.no_bugs
        | Some name -> (
            match List.assoc_opt name Simcov_dlx.Pipeline.bug_catalog with
            | Some b -> b
            | None ->
                Printf.eprintf "unknown bug %s; known bugs:\n" name;
                List.iter
                  (fun (n, _) -> Printf.eprintf "  %s\n" n)
                  Simcov_dlx.Pipeline.bug_catalog;
                exit 2)
      in
      if do_trace then
        print_string (Simcov_dlx.Pipeline.trace (Simcov_dlx.Pipeline.create ~bugs program));
      match Simcov_dlx.Validate.run_program ~bugs program with
      | Simcov_dlx.Validate.Pass n ->
          Printf.printf "PASS: %d commits match the specification\n" n;
          0
      | Simcov_dlx.Validate.Fail _ as f ->
          Format.printf "%a@." Simcov_dlx.Validate.pp_outcome f;
          1)

let run_cmd =
  let doc = "Assemble a DLX program and co-simulate spec vs pipeline." in
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Assembly file.")
  in
  let bug =
    Arg.(
      value
      & opt (some string) None
      & info [ "bug" ] ~docv:"NAME" ~doc:"Inject a named pipeline bug.")
  in
  let do_trace =
    Arg.(value & flag & info [ "trace" ] ~doc:"Print the per-cycle pipeline diagram.")
  in
  Cmd.v (cmd_info "run" ~doc) Term.(const run_file $ file $ bug $ do_trace)

(* ---- dsp ---- *)

let dsp () =
  let open Simcov_dsp.Mac in
  let model = Simcov_fsm.Fsm.tabulate (Testmodel.build ()) in
  match Simcov_core.Completeness.certify model with
  | Error _ ->
      prerr_endline "error: DSP test model failed certification";
      1
  | Ok cert ->
      Printf.printf
        "DSP MAC test model: %d states, %d transitions, forall-%d-distinguishable\n"
        cert.Simcov_core.Completeness.n_states cert.Simcov_core.Completeness.n_transitions
        cert.Simcov_core.Completeness.k;
      let word = Simcov_core.Completeness.padded_tour model cert in
      let cmds = Testmodel.concretize word in
      Printf.printf "tour: %d inputs -> %d commands\n" (List.length word)
        (List.length cmds);
      let results = Validate.bug_campaign cmds in
      List.iter
        (fun (name, detected) ->
          Printf.printf "  %-18s %s\n" name (if detected then "DETECTED" else "missed"))
        results;
      if List.for_all snd results then 0 else 1

let dsp_cmd =
  let doc = "Run the methodology on the fixed-program DSP (MAC ASIC) case study." in
  Cmd.v (cmd_info "dsp" ~doc) Term.(const dsp $ const ())

(* ---- model: operate on a serialized circuit ---- *)

let model_cmd_run path do_tour max_steps budget =
  guarded @@ fun () ->
  match Simcov_netlist.Serialize.load path with
  | Error e ->
      Printf.eprintf "error: %s: %s\n" path (Simcov_netlist.Serialize.error_to_string e);
      4
  | Ok c ->
      Format.printf "%a@." Simcov_netlist.Circuit.pp_stats c;
      let sym = Simcov_symbolic.Symfsm.of_circuit ~budget c in
      let open Simcov_symbolic.Symfsm in
      let r, iters = reachable sym in
      Printf.printf "reachable states: %.0f of %.0f (in %d iterations)\n"
        (count_states sym r) (state_space_size sym) iters;
      Printf.printf "valid input combinations: %.0f of %.0f\n" (count_valid_inputs sym)
        (input_space_size sym);
      Printf.printf "transitions to cover: %.0f\n" (count_transitions sym);
      if do_tour then begin
        let res = Simcov_symbolic.Symtour.generate ~max_steps ~budget c in
        Printf.printf "symbolic tour: %d steps, %.0f/%.0f transitions covered%s\n"
          res.Simcov_symbolic.Symtour.progress.Simcov_symbolic.Symtour.steps
          res.Simcov_symbolic.Symtour.progress.Simcov_symbolic.Symtour.covered
          res.Simcov_symbolic.Symtour.progress.Simcov_symbolic.Symtour.total
          (if res.Simcov_symbolic.Symtour.complete then " (complete)" else " (truncated)");
        match res.Simcov_symbolic.Symtour.truncated_by with
        | Some r ->
            Printf.printf "tour cut short: out of %s\n" (Budget.resource_name r)
        | None -> ()
      end;
      0

let model_cmd =
  let doc = "Analyze a serialized circuit: statistics and optional symbolic tour." in
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Circuit file.")
  in
  let do_tour =
    Arg.(value & flag & info [ "tour" ] ~doc:"Generate a symbolic transition tour.")
  in
  let max_steps =
    Arg.(
      value & opt int 100_000
      & info [ "max-steps" ] ~docv:"N" ~doc:"Symbolic tour step budget.")
  in
  Cmd.v
    (cmd_info "model" ~doc)
    Term.(const model_cmd_run $ file $ do_tour $ max_steps $ budget_term)

(* ---- lint ---- *)

(* a MODEL argument is a serialized-circuit path or a builtin name *)
let load_model spec =
  match spec with
  | "dlx-control" -> Ok (Simcov_dlx.Control.build (), "dlx-control")
  | "dlx-test" ->
      Ok (fst (Simcov_dlx.Control.derive_test_model ()), "dlx-test")
  | path -> (
      match Simcov_netlist.Serialize.load path with
      | Ok c -> Ok (c, Filename.basename path)
      | Error e -> Error (Simcov_netlist.Serialize.error_to_string e))

(* an FSM MODEL argument: the DLX / DSP test-model builtins, or any
   circuit small enough for Circuit.to_fsm to enumerate *)
let load_fsm_model spec =
  match spec with
  | "dlx" | "dlx-test" ->
      Ok
        ( Simcov_fsm.Fsm.tabulate (Simcov_dlx.Testmodel.build Simcov_dlx.Testmodel.default),
          "dlx-test" )
  | "dsp" -> Ok (Simcov_fsm.Fsm.tabulate (Simcov_dsp.Mac.Testmodel.build ()), "dsp")
  | path -> (
      match load_model path with
      | Error e -> Error e
      | Ok (c, name) -> (
          match Simcov_netlist.Circuit.to_fsm c with
          | exception Invalid_argument msg ->
              Error (Printf.sprintf "cannot enumerate as an FSM (%s)" msg)
          | m -> Ok (Simcov_fsm.Fsm.tabulate m, name)))

(* suite file: one input word per line, symbols as space-separated
   integer indices; '#' starts a comment *)
let load_suite path =
  try
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let words = ref [] and lno = ref 0 in
        (try
           while true do
             incr lno;
             let line = input_line ic in
             let line =
               match String.index_opt line '#' with
               | Some i -> String.sub line 0 i
               | None -> line
             in
             let toks =
               String.split_on_char ' ' line
               |> List.concat_map (String.split_on_char '\t')
               |> List.filter (fun s -> s <> "")
             in
             if toks <> [] then
               words :=
                 List.map
                   (fun t ->
                     match int_of_string_opt t with
                     | Some i -> i
                     | None ->
                         failwith
                           (Printf.sprintf "line %d: '%s' is not an input index"
                              !lno t))
                   toks
                 :: !words
           done
         with End_of_file -> ());
        Ok (List.rev !words))
  with
  | Sys_error e -> Error e
  | Failure e -> Error e

let explain_code code =
  match Simcov_analysis.Diag.explain code with
  | Some e ->
      Printf.printf "%s (%s)\n  %s\n  fix: %s\n" e.Simcov_analysis.Diag.entry_code
        (Simcov_analysis.Diag.severity_name e.Simcov_analysis.Diag.default_severity)
        e.Simcov_analysis.Diag.title e.Simcov_analysis.Diag.fix;
      0
  | None ->
      Printf.eprintf "error: unknown diagnostic code '%s'\n" code;
      4

let lint model against fsm suite_file k_bound explain json_out fail_on budget obs =
  guarded @@ fun () ->
  with_obs obs @@ fun () ->
  warn_inert_max_nodes budget;
  let open Simcov_analysis in
  match explain with
  | Some code -> explain_code code
  | None -> (
      match model with
      | None ->
          prerr_endline "error: a MODEL argument is required (or use --explain CODE)";
          4
      | Some model ->
          let finish ~truncated ~fails report_json report_pp =
            (if json_out then print_endline (Simcov_util.Json.to_string report_json)
             else
               let ppf =
                 if metrics_on_stdout obs then Format.err_formatter
                 else Format.std_formatter
               in
               report_pp ppf);
            if truncated then 3 else if fails then 1 else 0
          in
          if fsm then (
            match load_fsm_model model with
            | Error e ->
                Printf.eprintf "error: %s: %s\n" model e;
                4
            | Ok (m, name) -> (
                let suite =
                  match suite_file with
                  | None -> Ok None
                  | Some path -> (
                      match load_suite path with
                      | Ok words -> Ok (Some words)
                      | Error e ->
                          Printf.eprintf "error: %s: %s\n" path e;
                          Error 4)
                in
                match suite with
                | Error code -> code
                | Ok suite ->
                    let report = Fsm_lint.run ~budget ~name ~k_bound ?suite m in
                    finish
                      ~truncated:(report.Fsm_lint.truncated <> None)
                      ~fails:(Fsm_lint.fails report ~threshold:fail_on)
                      (Fsm_lint.to_json report)
                      (fun ppf -> Format.fprintf ppf "%a@." Fsm_lint.pp report)))
          else (
            if suite_file <> None then
              prerr_endline "warning: --suite only applies to --fsm; ignored";
            match load_model model with
            | Error e ->
                Printf.eprintf "error: %s: %s\n" model e;
                4
            | Ok (c, name) -> (
                let against_c =
                  match against with
                  | None -> Ok None
                  | Some spec -> (
                      match load_model spec with
                      | Ok (conc, _) -> Ok (Some conc)
                      | Error e ->
                          Printf.eprintf "error: %s: %s\n" spec e;
                          Error 4)
                in
                match against_c with
                | Error code -> code
                | Ok against ->
                    let report = Lint.run ~budget ~name ?against c in
                    finish
                      ~truncated:(report.Lint.truncated <> None)
                      ~fails:(Lint.fails report ~threshold:fail_on)
                      (Lint.to_json report)
                      (fun ppf -> Format.fprintf ppf "%a@." Lint.pp report))))

let lint_cmd =
  let doc =
    "Statically analyze a model: structural lint, combinational cycles, \
     ternary constants, dead logic, abstraction prechecks — or, with \
     $(b,--fsm), the FSM-level Theorem 1 precondition certification \
     (connectivity, minimality, forall-k-distinguishability, R1/R4)."
  in
  let model =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"MODEL"
          ~doc:
            "Circuit file, or a builtin: $(b,dlx-control) (the pipelined DLX \
             control implementation), $(b,dlx-test) (the derived test model). \
             With $(b,--fsm): $(b,dlx-test) / $(b,dsp) (the explicit test \
             models) or any circuit small enough to enumerate. Optional only \
             with $(b,--explain).")
  in
  let fsm =
    Arg.(
      value & flag
      & info [ "fsm" ]
          ~doc:
            "Lint $(i,MODEL) as an explicit Mealy machine (SA6xx passes; \
             $(b,simcov-fsmlint/1) JSON) instead of as a netlist.")
  in
  let suite_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "suite" ] ~docv:"FILE"
          ~doc:
            "With $(b,--fsm): statically predict the state/transition coverage \
             of the input words in $(docv) (one word per line, space-separated \
             input indices, $(b,#) comments) and flag redundant words and \
             missed transitions.")
  in
  let k_bound =
    Arg.(
      value
      & opt (bounded_int ~name:"--k-bound" 1 64) 8
      & info [ "k-bound" ] ~docv:"K"
          ~doc:"With $(b,--fsm): bound of the forall-k-distinguishability search.")
  in
  let explain =
    Arg.(
      value
      & opt (some string) None
      & info [ "explain" ] ~docv:"CODE"
          ~doc:
            "Print the catalog entry (title, severity, suggested fix) for a \
             stable diagnostic code such as $(b,SA101) or $(b,SA620), and exit.")
  in
  let against =
    Arg.(
      value
      & opt (some string) None
      & info [ "against" ] ~docv:"MODEL"
          ~doc:
            "Concrete model $(i,MODEL) was abstracted from; enables the \
             homomorphism cone-compatibility precheck.")
  in
  let json_out =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
  in
  let fail_on =
    let sev =
      Arg.enum
        [
          ("error", Simcov_analysis.Diag.Error);
          ("warning", Simcov_analysis.Diag.Warning);
          ("info", Simcov_analysis.Diag.Info);
        ]
    in
    Arg.(
      value
      & opt sev Simcov_analysis.Diag.Error
      & info [ "fail-on" ] ~docv:"SEVERITY"
          ~doc:"Exit 1 when a diagnostic of $(docv) (or higher) is reported.")
  in
  Cmd.v
    (cmd_info "lint" ~doc)
    Term.(
      const lint $ model $ against $ fsm $ suite_file $ k_bound $ explain
      $ json_out $ fail_on $ budget_term $ obs_term)

(* ---- durable coverage databases (simcov-covdb/1) ---- *)

module Covdb = Simcov_covdb.Covdb

(* The campaign verdict <-> covdb status conversion is exact: the
   driver guarantees [detected <=> detect_step] and
   [excited <=> excite_step], so a verdict resumed from a snapshot is
   byte-identical to the one the interrupted run computed. *)
let status_of_verdict (v : Simcov_campaign.Campaign.verdict) =
  match (v.Simcov_campaign.Campaign.detect_step, v.Simcov_campaign.Campaign.excite_step) with
  | Some detect_step, excite_step -> Covdb.Detected { excite_step; detect_step }
  | None, Some es -> Covdb.Excited es
  | None, None -> Covdb.Undetected

let verdict_of_status = function
  | Covdb.Undetected ->
      {
        Simcov_campaign.Campaign.detected = false;
        excited = false;
        detect_step = None;
        excite_step = None;
      }
  | Covdb.Excited es ->
      {
        Simcov_campaign.Campaign.detected = false;
        excited = true;
        detect_step = None;
        excite_step = Some es;
      }
  | Covdb.Detected { excite_step; detect_step } ->
      {
        Simcov_campaign.Campaign.detected = true;
        excited = excite_step <> None;
        detect_step = Some detect_step;
        excite_step;
      }

let hash_hex parts =
  Simcov_util.Crc32.to_hex
    (List.fold_left (fun c s -> Simcov_util.Crc32.update c (s ^ "\n")) 0l parts)

(* the snapshot header's two fingerprints: [config_hash] identifies the
   fault population (merge compatibility), [stim_hash] the stimulus
   word (additionally required to resume — recorded step indices only
   make sense against the same word) *)
let config_hash ~backend ~model keys = hash_hex (backend :: model :: keys)
let stim_hash_ints word = hash_hex (List.map string_of_int word)

let stim_hash_bits word =
  hash_hex
    (List.map
       (fun a ->
         String.init (Array.length a) (fun i -> if a.(i) then '1' else '0'))
       word)

type persist_opts = {
  checkpoint_file : string option;
  checkpoint_every : int;
  resume_file : string option;
  chaos_kill_after : int option;
}

let persist_term =
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Write a durable $(b,simcov-covdb/1) snapshot of per-fault \
             results to $(docv) periodically and at exit (atomic temp-file + \
             fsync + rename, CRC per record); a killed run resumes from it \
             with $(b,--resume).")
  in
  let every =
    Arg.(
      value & opt int 1
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:"Flush the checkpoint after every $(docv) completed batches.")
  in
  let resume =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"FILE"
          ~doc:
            "Resume from a $(b,simcov-covdb/1) snapshot: already-decided \
             faults are retired without re-simulation, and the final report \
             is identical to the uninterrupted run's. The snapshot must come \
             from the same campaign configuration and stimulus (same model, \
             fault population, $(b,--seed), $(b,--steps)). Unless \
             $(b,--checkpoint) is also given, new snapshots overwrite \
             $(docv).")
  in
  let chaos =
    Arg.(
      value
      & opt (some int) None
      & info [ "chaos-kill-after" ] ~docv:"N"
          ~doc:
            "Testing hook for the chaos harness: SIGKILL this process right \
             after the $(docv)-th checkpoint flush commits (requires \
             $(b,--checkpoint)).")
  in
  Term.(
    const (fun checkpoint_file checkpoint_every resume_file chaos_kill_after ->
        { checkpoint_file; checkpoint_every; resume_file; chaos_kill_after })
    $ checkpoint $ every $ resume $ chaos)

(* Run one campaign crash-safely: validate and inject [--resume],
   periodically flush [--checkpoint] snapshots, convert SIGINT/SIGTERM
   into a clean batch-boundary stop, and always leave a final snapshot
   behind (marked complete only when nothing was cut short). Returns
   [Error exit_code] on an unusable resume snapshot. *)
let run_persisted (type f) popts ~(hdr : Covdb.header) ~(key : f -> string)
    ~(run :
       ?resume:(f -> Simcov_campaign.Campaign.verdict option) ->
       ?checkpoint:f Simcov_campaign.Campaign.checkpoint ->
       should_stop:(unit -> bool) ->
       unit ->
       f Simcov_campaign.Campaign.outcome) =
  let module Campaign = Simcov_campaign.Campaign in
  let resume_db =
    match popts.resume_file with
    | None -> Ok None
    | Some path -> (
        match Covdb.load path with
        | Error e -> Error (Printf.sprintf "%s: %s" path e)
        | Ok { Covdb.db; salvaged } ->
            let h = Covdb.header db in
            if
              h.Covdb.backend <> hdr.Covdb.backend
              || h.Covdb.config_hash <> hdr.Covdb.config_hash
            then
              Error
                (Printf.sprintf
                   "%s: snapshot is for a different campaign configuration \
                    (snapshot %s/%s, this run %s/%s)"
                   path h.Covdb.backend h.Covdb.config_hash hdr.Covdb.backend
                   hdr.Covdb.config_hash)
            else if
              h.Covdb.stim_hash <> hdr.Covdb.stim_hash
              || h.Covdb.word_length <> hdr.Covdb.word_length
            then
              Error
                (Printf.sprintf
                   "%s: snapshot was recorded against a different stimulus \
                    word; rerun with the producing run's --seed/--steps"
                   path)
            else begin
              if salvaged then
                Printf.eprintf
                  "warning: %s: damaged snapshot; salvaged %d valid records\n%!"
                  path (Covdb.n_records db);
              Ok (Some db)
            end)
  in
  match resume_db with
  | Error e ->
      Printf.eprintf "error: %s\n" e;
      Error 4
  | Ok db_opt ->
      let ck_file =
        match popts.checkpoint_file with
        | Some _ as f -> f
        | None -> popts.resume_file
      in
      let save_snapshot ~complete ~truncated pairs =
        match ck_file with
        | None -> ()
        | Some path ->
            let db = Covdb.create hdr in
            List.iter
              (fun (f, v) -> Covdb.set db (key f) (status_of_verdict v))
              pairs;
            Covdb.set_complete db complete;
            Covdb.set_truncated db truncated;
            Covdb.save db path
      in
      let flushes = Atomic.make 0 in
      let checkpoint =
        match ck_file with
        | None -> None
        | Some _ ->
            Some
              {
                Campaign.every = max 1 popts.checkpoint_every;
                flush =
                  (fun pairs ->
                    save_snapshot ~complete:false ~truncated:None pairs;
                    let n = 1 + Atomic.fetch_and_add flushes 1 in
                    match popts.chaos_kill_after with
                    | Some k when n >= k ->
                        (* the chaos harness's deterministic crash
                           point: an uncatchable kill right after a
                           flush commits *)
                        Unix.kill (Unix.getpid ()) Sys.sigkill
                    | _ -> ());
              }
      in
      let resume =
        Option.map
          (fun db f -> Option.map verdict_of_status (Covdb.find db (key f)))
          db_opt
      in
      let interrupted = Atomic.make false in
      let on_signal = Sys.Signal_handle (fun _ -> Atomic.set interrupted true) in
      let prev_int = Sys.signal Sys.sigint on_signal in
      let prev_term = Sys.signal Sys.sigterm on_signal in
      let outcome =
        Fun.protect
          ~finally:(fun () ->
            Sys.set_signal Sys.sigint prev_int;
            Sys.set_signal Sys.sigterm prev_term)
          (fun () ->
            run ?resume ?checkpoint
              ~should_stop:(fun () -> Atomic.get interrupted)
              ())
      in
      let r = outcome.Campaign.report in
      let complete =
        (not (Atomic.get interrupted))
        && r.Campaign.truncated = None
        && r.Campaign.shard_failures = []
        && r.Campaign.skipped = 0
      in
      save_snapshot ~complete
        ~truncated:(Option.map Budget.resource_name r.Campaign.truncated)
        outcome.Campaign.verdicts;
      Ok (outcome, Atomic.get interrupted)

(* exit-code priority for a campaign run: an interrupt outranks a
   degraded-but-finished run, which outranks truncation, which
   outranks a coverage threshold miss *)
let campaign_exit ~fail_under ~interrupted ~pct
    (r : _ Simcov_campaign.Campaign.report) =
  if interrupted then 130
  else if r.Simcov_campaign.Campaign.shard_failures <> [] then 5
  else if r.Simcov_campaign.Campaign.truncated <> None then 3
  else match fail_under with Some t when pct < t -> 1 | _ -> 0

(* ---- coverage: fault campaigns through the shared engine ---- *)

let coverage_run model kind json_out seed count steps fail_under progress
    (jobs, lanes) popts budget obs =
  guarded @@ fun () ->
  with_obs obs @@ fun () ->
  warn_inert_max_nodes budget;
  let human_ppf =
    if metrics_on_stdout obs then Format.err_formatter else Format.std_formatter
  in
  let module Campaign = Simcov_campaign.Campaign in
  let module Detect = Simcov_coverage.Detect in
  let module Stuckat = Simcov_coverage.Stuckat in
  let module Fault = Simcov_coverage.Fault in
  let module Fsm = Simcov_fsm.Fsm in
  let module Circuit = Simcov_netlist.Circuit in
  let rng = Simcov_util.Rng.create seed in
  let on_batch =
    (* progress goes to stderr only: stdout is reserved for the report
       (the stdout-purity CI check pins this down) *)
    if progress then
      Some
        (fun (p : Campaign.progress) ->
          Format.fprintf Format.err_formatter "%a@." Campaign.pp_progress p)
    else None
  in
  let finish ~name ~word_length json pct (r : _ Campaign.report) interrupted =
    if json_out then
      print_endline
        (Simcov_util.Json.to_string
           (json
              [
                ("model", Simcov_util.Json.String name);
                ("word_length", Simcov_util.Json.Int word_length);
              ]));
    List.iter
      (fun (sf : Campaign.shard_failure) ->
        Printf.eprintf "warning: shard %d (%d faults) failed: %s\n%!"
          sf.Campaign.shard sf.Campaign.faults sf.Campaign.error)
      r.Campaign.shard_failures;
    if interrupted then
      Printf.eprintf "interrupted: %s\n%!"
        (match
           ( popts.checkpoint_file,
             popts.resume_file )
         with
        | Some f, _ | None, Some f ->
            Printf.sprintf "final checkpoint flushed to %s; rerun with --resume %s" f f
        | None, None -> "partial report above (no --checkpoint to resume from)");
    campaign_exit ~fail_under ~interrupted ~pct r
  in
  let fsm_faults m =
    let n_outputs =
      List.fold_left (fun acc (_, _, _, o) -> max acc (o + 1)) 1 (Fsm.transitions m)
    in
    Fault.sample_transfer_faults rng m ~count
    @ Fault.sample_output_faults rng m ~n_outputs ~count
  in
  let run_fsm ~name m word =
    let faults = fsm_faults m in
    let hdr =
      {
        Covdb.backend = "fsm-fault";
        run = Printf.sprintf "%s:fsm:seed%d" name seed;
        config_hash =
          config_hash ~backend:"fsm-fault" ~model:name (List.map Fault.key faults);
        stim_hash = stim_hash_ints word;
        word_length = List.length word;
        total = List.length faults;
      }
    in
    match
      run_persisted popts ~hdr ~key:Fault.key
        ~run:(fun ?resume ?checkpoint ~should_stop () ->
          Detect.campaign_outcome ?on_batch ?resume ?checkpoint ~should_stop
            ~budget ~lanes ~jobs m faults word)
    with
    | Error code -> code
    | Ok (outcome, interrupted) ->
        let r = outcome.Campaign.report in
        if not json_out then
          Format.fprintf human_ppf "%s: FSM fault coverage over %d inputs@.  %a@."
            name (List.length word) Detect.pp_report r;
        finish ~name ~word_length:(List.length word)
          (fun extra -> Detect.to_json ~extra r)
          (Detect.coverage_pct r) r interrupted
  in
  (* random constraint-respecting stimuli for a netlist: rejection
     sampling per step, giving up on a step (and ending the word) after
     too many invalid draws *)
  let random_circuit_word c ~steps =
    let ni = Circuit.n_inputs c in
    let state = ref (Circuit.initial_state c) in
    let acc = ref [] in
    (try
       for _ = 1 to steps do
         let tries = ref 0 and found = ref None in
         while !found = None && !tries < 1000 do
           let iv = Array.init ni (fun _ -> Simcov_util.Rng.bool rng) in
           if Circuit.input_valid c !state iv then found := Some iv;
           incr tries
         done;
         match !found with
         | None -> raise Exit
         | Some iv ->
             acc := iv :: !acc;
             let s', _ = Circuit.step c !state iv in
             state := s'
       done
     with Exit -> ());
    List.rev !acc
  in
  match kind with
  | `Fsm -> (
      if model = "dlx" then begin
        (* the DLX test model with its certified transition tour — the
           same campaign validate-dlx embeds, standalone *)
        let m = Fsm.tabulate (Simcov_dlx.Testmodel.build Simcov_dlx.Testmodel.default) in
        let word =
          match Simcov_core.Completeness.certify m with
          | Ok cert -> Simcov_core.Completeness.padded_tour m cert
          | Error _ -> (
              match Simcov_testgen.Tour.greedy_transition_tour m with
              | Some t -> t.Simcov_testgen.Tour.word
              | None -> (Simcov_testgen.Tour.transition_cover m).Simcov_testgen.Tour.word)
        in
        run_fsm ~name:"dlx" m word
      end
      else
        match load_model model with
        | Error e ->
            Printf.eprintf "error: %s: %s\n" model e;
            4
        | Ok (c, name) -> (
            match Circuit.to_fsm c with
            | exception Invalid_argument msg ->
                Printf.eprintf "error: %s: cannot enumerate as an FSM (%s)\n" name msg;
                4
            | m ->
                let m = Fsm.tabulate m in
                let word =
                  match Simcov_testgen.Tour.greedy_transition_tour m with
                  | Some t -> t.Simcov_testgen.Tour.word
                  | None ->
                      (Simcov_testgen.Tour.transition_cover m).Simcov_testgen.Tour.word
                in
                run_fsm ~name m word))
  | `Stuckat -> (
      let spec = if model = "dlx" then "dlx-test" else model in
      match load_model spec with
      | Error e ->
          Printf.eprintf "error: %s: %s\n" spec e;
          4
      | Ok (c, name) -> (
          let word = random_circuit_word c ~steps in
          let faults = Stuckat.all_faults c in
          let hdr =
            {
              Covdb.backend = "stuck-at";
              run = Printf.sprintf "%s:stuckat:seed%d" name seed;
              config_hash =
                config_hash ~backend:"stuck-at" ~model:name
                  (List.map Stuckat.fault_key faults);
              stim_hash = stim_hash_bits word;
              word_length = List.length word;
              total = List.length faults;
            }
          in
          match
            run_persisted popts ~hdr ~key:Stuckat.fault_key
              ~run:(fun ?resume ?checkpoint ~should_stop () ->
                Stuckat.campaign_outcome ?on_batch ?resume ?checkpoint
                  ~should_stop ~budget ~lanes ~jobs c faults word)
          with
          | Error code -> code
          | Ok (outcome, interrupted) ->
              let r = outcome.Campaign.report in
              if not json_out then
                Format.fprintf human_ppf
                  "%s: stuck-at coverage over %d vectors@.  %a@." name
                  (List.length word) Stuckat.pp_report r;
              finish ~name ~word_length:(List.length word)
                (fun extra -> Stuckat.to_json ~extra r)
                (Stuckat.coverage_pct r) r interrupted))

let coverage_cmd =
  let doc =
    "Run a fault campaign (FSM error-model or stuck-at) through the shared \
     bit-parallel campaign engine."
  in
  let model =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"MODEL"
          ~doc:
            "$(b,dlx) (the DLX test model / its derived control netlist), a \
             builtin ($(b,dlx-control), $(b,dlx-test)) or a circuit file.")
  in
  let kind =
    let k = Arg.enum [ ("fsm", `Fsm); ("stuckat", `Stuckat) ] in
    Arg.(
      value & opt k `Fsm
      & info [ "faults" ] ~docv:"KIND"
          ~doc:
            "Fault model: $(b,fsm) (transfer + output error-model mutants on the \
             enumerated machine) or $(b,stuckat) (netlist stuck-at faults under \
             random constraint-respecting stimuli).")
  in
  let json_out =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the $(b,simcov-campaign/1) report as JSON.")
  in
  let count =
    Arg.(
      value & opt int 150
      & info [ "count" ] ~docv:"N"
          ~doc:"FSM faults sampled per kind (transfer, output).")
  in
  let steps =
    Arg.(
      value & opt int 256
      & info [ "steps" ] ~docv:"N" ~doc:"Stimulus length for stuck-at campaigns.")
  in
  let fail_under =
    Arg.(
      value
      & opt (some float) None
      & info [ "fail-under" ] ~docv:"PCT"
          ~doc:"Exit 1 when coverage falls below $(docv) percent.")
  in
  let progress =
    Arg.(
      value & flag
      & info [ "progress" ] ~doc:"Print per-batch campaign progress to stderr.")
  in
  Cmd.v
    (cmd_info "coverage" ~doc)
    Term.(
      const coverage_run $ model $ kind $ json_out $ seed_term $ count $ steps
      $ fail_under $ progress $ parallel_term $ persist_term $ budget_term
      $ obs_term)

(* ---- merge / minimize: offline aggregation of coverage snapshots ---- *)

(* shared loader: salvage-tolerant (a damaged snapshot contributes its
   valid prefix, with a warning), but an unreadable file or corrupt
   header is exit 4 *)
let load_dbs paths =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest -> (
        match Covdb.load p with
        | Error e ->
            Printf.eprintf "error: %s: %s\n" p e;
            Error 4
        | Ok { Covdb.db; salvaged } ->
            if salvaged then
              Printf.eprintf
                "warning: %s: damaged snapshot; salvaged %d valid records\n" p
                (Covdb.n_records db);
            go ((p, db) :: acc) rest)
  in
  go [] paths

let merge_run inputs output json_out =
  guarded @@ fun () ->
  match load_dbs inputs with
  | Error code -> code
  | Ok dbs -> (
      match Covdb.merge (List.map snd dbs) with
      | Error e ->
          Printf.eprintf "error: %s\n" e;
          4
      | Ok out ->
          Covdb.save out output;
          let u, e, d = Covdb.counts out in
          (if json_out then
             let open Simcov_util.Json in
             print_endline
               (to_string
                  (Obj
                     [
                       ("schema", String "simcov-merge/1");
                       ( "inputs",
                         List
                           (List.map
                              (fun (p, db) ->
                                let _, _, di = Covdb.counts db in
                                Obj
                                  [
                                    ("path", String p);
                                    ("run", String (Covdb.header db).Covdb.run);
                                    ("records", Int (Covdb.n_records db));
                                    ("detected", Int di);
                                    ("complete", Bool (Covdb.complete db));
                                  ])
                              dbs) );
                       ("output", String output);
                       ("records", Int (Covdb.n_records out));
                       ("undetected", Int u);
                       ("excited", Int e);
                       ("detected", Int d);
                       ("complete", Bool (Covdb.complete out));
                     ]))
           else
             Printf.printf
               "merged %d snapshots -> %s: %d records (%d detected, %d \
                excited-only, %d undetected)%s\n"
               (List.length dbs) output (Covdb.n_records out) d e u
               (if Covdb.complete out then "" else " [incomplete]"));
          0)

let merge_cmd =
  let doc =
    "Union $(b,simcov-covdb/1) snapshots of the same campaign configuration \
     (per fault, the strongest status and earliest steps win) into one \
     durable snapshot."
  in
  let inputs =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"FILE" ~doc:"Input $(b,simcov-covdb/1) snapshots.")
  in
  let output =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"OUT" ~doc:"Merged snapshot destination.")
  in
  let json_out =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit a $(b,simcov-merge/1) summary as JSON.")
  in
  Cmd.v (cmd_info "merge" ~doc) Term.(const merge_run $ inputs $ output $ json_out)

let minimize_run inputs json_out =
  guarded @@ fun () ->
  match load_dbs inputs with
  | Error code -> code
  | Ok dbs -> (
      match Covdb.minimize dbs with
      | Error e ->
          Printf.eprintf "error: %s\n" e;
          4
      | Ok sel ->
          (if json_out then
             let open Simcov_util.Json in
             print_endline
               (to_string
                  (Obj
                     [
                       ("schema", String "simcov-minimize/1");
                       ( "selected",
                         List
                           (List.map
                              (fun (path, gain) ->
                                Obj
                                  [
                                    ("path", String path);
                                    ("new_covered", Int gain);
                                  ])
                              sel.Covdb.chosen) );
                       ("covered", Int sel.Covdb.covered);
                       ("union_detected", Int sel.Covdb.union_detected);
                     ]))
           else begin
             Printf.printf
               "%d of %d runs cover %d/%d detected faults:\n"
               (List.length sel.Covdb.chosen)
               (List.length dbs) sel.Covdb.covered sel.Covdb.union_detected;
             List.iter
               (fun (path, gain) -> Printf.printf "  %s (+%d)\n" path gain)
               sel.Covdb.chosen
           end);
          0)

let minimize_cmd =
  let doc =
    "Greedy set-cover over $(b,simcov-covdb/1) snapshots: pick the smallest \
     run subset (largest marginal detection first) that covers every fault \
     the whole fleet detected — a minimal regression suite."
  in
  let inputs =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"FILE" ~doc:"Input $(b,simcov-covdb/1) snapshots.")
  in
  let json_out =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit a $(b,simcov-minimize/1) report as JSON.")
  in
  Cmd.v (cmd_info "minimize" ~doc) Term.(const minimize_run $ inputs $ json_out)

(* ---- main ---- *)

let () =
  (* Wide campaigns allocate lane-set words at a rate the default
     256k-word minor arena turns into back-to-back minor collections;
     a 4M-word arena (32 MB, and per domain) keeps the allocation rate
     off the collector without noticeable footprint for a CLI run. *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 4 * 1024 * 1024 };
  let doc = "validation methodology using simulation coverage (DAC 1997)" in
  let info = Cmd.info "simcov" ~version:"1.0.0" ~doc ~exits in
  let group =
    Cmd.group info
      [
        validate_cmd; tour_cmd; abstract_cmd; stats_cmd; fig2_cmd; run_cmd; dsp_cmd;
        model_cmd; lint_cmd; coverage_cmd; merge_cmd; minimize_cmd;
      ]
  in
  exit (Cmd.eval' ~term_err:2 group)
