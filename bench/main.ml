(* Benchmark harness: regenerates every quantitative artifact of the
   paper's evaluation (Figure 2, Figure 3(b), the Section 7.2 model
   statistics) plus the ablations its arguments call for, and a
   Bechamel micro-benchmark suite. See EXPERIMENTS.md for the
   paper-vs-measured record. *)

open Simcov_util
open Simcov_fsm
open Simcov_dlx
open Simcov_core

let seed = 20260707
let quick = Array.exists (fun a -> a = "--quick") Sys.argv
let json = Array.exists (fun a -> a = "--json") Sys.argv

let time_it f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let pct a b = if b = 0 then 100.0 else 100.0 *. float_of_int a /. float_of_int b

let fmt_float f =
  if Float.abs f >= 1e6 then Printf.sprintf "%.3e" f else Printf.sprintf "%.0f" f

(* ------------------------------------------------------------------ *)
(* E1 — Figure 2: limitations of transition tours                      *)
(* ------------------------------------------------------------------ *)

let exp_fig2 () =
  let t =
    Tabulate.create [ "machine"; "tour"; "is transition tour"; "error detected" ]
  in
  List.iter
    (fun (r : Fig2.row) ->
      Tabulate.add_row t
        [
          r.Fig2.machine;
          r.Fig2.tour;
          string_of_bool r.Fig2.is_tour;
          string_of_bool r.Fig2.detected;
        ])
    (Fig2.experiment ());
  Tabulate.print ~title:"E1 / Figure 2 — a tour may or may not expose a transfer error" t;
  let rng = Rng.create seed in
  let n = 200 in
  let d_orig = Fig2.random_tour_detection rng ~n Fig2.original in
  let d_rep = Fig2.random_tour_detection rng ~n Fig2.repaired in
  let t2 = Tabulate.create [ "machine"; "random covering walks"; "detected"; "rate" ] in
  Tabulate.add_row t2
    [ "original"; string_of_int n; string_of_int d_orig; Printf.sprintf "%.1f%%" (pct d_orig n) ];
  Tabulate.add_row t2
    [ "repaired"; string_of_int n; string_of_int d_rep; Printf.sprintf "%.1f%%" (pct d_rep n) ];
  Tabulate.print
    ~title:"E1b — random covering walks: repair (∀1-distinguishability) makes detection certain"
    t2

(* ------------------------------------------------------------------ *)
(* E2 — Figure 3(b): the abstraction sequence                          *)
(* ------------------------------------------------------------------ *)

let paper_fig3b = [ 118; 110; 86; 54; 46; 22 ]

let exp_fig3b () =
  let _, trace = Control.derive_test_model () in
  let t =
    Tabulate.create
      [ "abstraction step"; "regs before"; "regs after"; "inputs"; "gates"; "paper (after)" ]
  in
  List.iteri
    (fun k (e : Simcov_abstraction.Netabs.trace_entry) ->
      Tabulate.add_row t
        [
          e.Simcov_abstraction.Netabs.step_label;
          string_of_int e.Simcov_abstraction.Netabs.regs_before;
          string_of_int e.Simcov_abstraction.Netabs.regs_after;
          string_of_int e.Simcov_abstraction.Netabs.inputs_after;
          string_of_int e.Simcov_abstraction.Netabs.gates_after;
          string_of_int (List.nth paper_fig3b k);
        ])
    trace;
  Tabulate.print
    ~title:
      "E2 / Figure 3(b) — state-space abstraction sequence (ours 101 -> 32; paper 160 -> 22)"
    t

(* ------------------------------------------------------------------ *)
(* E3 — Section 7.2: test-model statistics (symbolic)                  *)
(* ------------------------------------------------------------------ *)

let exp_sec72 () =
  let final, _ = Control.derive_test_model () in
  let sym, t_build = time_it (fun () -> Simcov_symbolic.Symfsm.of_circuit final) in
  let open Simcov_symbolic.Symfsm in
  let reach, t_reach = time_it (fun () -> reachable sym) in
  let r, iters = reach in
  let n_reach = count_states sym r in
  let n_valid = count_valid_inputs sym in
  let n_trans = count_transitions sym in
  let t = Tabulate.create [ "statistic"; "ours"; "paper" ] in
  let row a b c = Tabulate.add_row t [ a; b; c ] in
  row "latches (state elements)" (string_of_int sym.n_state_vars) "22";
  row "primary inputs" (string_of_int sym.n_input_vars) "25";
  row "primary outputs" (string_of_int (Array.length sym.outputs)) "4";
  row "valid input combinations"
    (Printf.sprintf "%s of 2^%d" (fmt_float n_valid) sym.n_input_vars)
    "8228 of 2^25";
  row "reachable states"
    (Printf.sprintf "%s of 2^%d" (fmt_float n_reach) sym.n_state_vars)
    "13,720 of 2^22";
  row "reachability iterations" (string_of_int iters) "-";
  row "transitions to cover" (fmt_float n_trans) "123 million";
  row "tour length lower bound" (fmt_float n_trans) "1069 million (non-optimal tour)";
  row "transition-relation conjuncts"
    (Printf.sprintf "%d (%d nodes total)" (List.length sym.parts)
       (List.fold_left (fun acc p -> acc + Simcov_bdd.Bdd.size p.rel) 0 sym.parts))
    "-";
  row "relation build time (partitioned)" (Printf.sprintf "%.2fs" t_build)
    "~10s (Ultrasparc 166MHz)";
  row "reachability time" (Printf.sprintf "%.2fs" t_reach) "-";
  Tabulate.print ~title:"E3 / Section 7.2 — derived test-model statistics" t

(* ------------------------------------------------------------------ *)
(* E4 — Theorem 3, empirically: fault coverage of test sets            *)
(* ------------------------------------------------------------------ *)

let exp_thm3 () =
  let rng = Rng.create seed in
  let model = Fsm.tabulate (Testmodel.build Testmodel.default) in
  let cert =
    match Completeness.certify model with
    | Ok c -> c
    | Error _ -> failwith "certificate must hold on the default model"
  in
  let cpp = Completeness.padded_tour model cert in
  let greedy =
    match Simcov_testgen.Tour.greedy_transition_tour model with
    | Some t -> t.Simcov_testgen.Tour.word
    | None -> assert false
  in
  let state_t =
    match Simcov_testgen.Tour.state_tour model with
    | Some t -> t.Simcov_testgen.Tour.word
    | None -> assert false
  in
  let rand_same = Simcov_testgen.Tour.random_word rng model ~length:(List.length cpp) in
  let rand_tenth =
    Simcov_testgen.Tour.random_word rng model ~length:(List.length cpp / 10)
  in
  let rand_short = Simcov_testgen.Tour.random_word rng model ~length:120 in
  let n_outputs =
    List.fold_left (fun acc (_, _, _, o) -> max acc (o + 1)) 1 (Fsm.transitions model)
  in
  let faults =
    Simcov_coverage.Fault.sample_transfer_faults rng model ~count:300
    @ Simcov_coverage.Fault.sample_output_faults rng model ~n_outputs ~count:300
  in
  let t =
    Tabulate.create
      [ "test set"; "length"; "state cov"; "transition cov"; "fault coverage" ]
  in
  let eval name word =
    let report = Simcov_coverage.Detect.campaign model faults word in
    Tabulate.add_row t
      [
        name;
        string_of_int (List.length word);
        Printf.sprintf "%d/%d"
          (Simcov_coverage.Detect.state_coverage model word)
          (Fsm.n_reachable model);
        Printf.sprintf "%d/%d"
          (Simcov_coverage.Detect.transition_coverage model word)
          (Fsm.n_transitions model);
        Printf.sprintf "%.1f%%" (Simcov_coverage.Detect.coverage_pct report);
      ]
  in
  eval "CPP transition tour (+k pad)" cpp;
  eval "greedy transition tour" greedy;
  eval "state tour" state_t;
  eval "random walk (same length)" rand_same;
  eval "random walk (1/10 length)" rand_tenth;
  eval "random walk (length 120)" rand_short;
  Tabulate.print
    ~title:
      "E4 / Theorem 3 — fault coverage on the DLX test model (600 sampled transfer+output errors)"
    t;

  (* pipeline-level: seeded implementation bugs vs concretized programs *)
  let run_bugs word =
    let conc = Testmodel.concretize Testmodel.default word in
    List.map
      (fun (name, bugs) ->
        ( name,
          match
            Validate.run_program ~bugs ~preload_regs:conc.Testmodel.preload_regs
              ~preload_mem:conc.Testmodel.preload_mem conc.Testmodel.program
          with
          | Validate.Fail _ -> true
          | Validate.Pass _ -> false ))
      Pipeline.bug_catalog
  in
  let tour_bugs = run_bugs cpp in
  let rand_bugs = run_bugs rand_same in
  let rand_bugs_tenth = run_bugs rand_tenth in
  let rand_bugs_short = run_bugs rand_short in
  let t2 =
    Tabulate.create
      [ "pipeline bug"; "tour program"; "random (same)"; "random (1/10)"; "random (120)" ]
  in
  List.iter
    (fun (name, d) ->
      let f l = if List.assoc name l then "detected" else "missed" in
      Tabulate.add_row t2
        [
          name;
          (if d then "detected" else "missed");
          f rand_bugs;
          f rand_bugs_tenth;
          f rand_bugs_short;
        ])
    tour_bugs;
  let count l = List.length (List.filter snd l) in
  let n = List.length tour_bugs in
  Tabulate.add_row t2
    [
      "TOTAL";
      Printf.sprintf "%d/%d" (count tour_bugs) n;
      Printf.sprintf "%d/%d" (count rand_bugs) n;
      Printf.sprintf "%d/%d" (count rand_bugs_tenth) n;
      Printf.sprintf "%d/%d" (count rand_bugs_short) n;
    ];
  Tabulate.print
    ~title:"E4b — seeded pipeline bugs: tour-derived program vs random programs" t2;

  (* the structured baseline: directed hazard templates (ref [18]) *)
  let hz = Hazardgen.bug_campaign () in
  let hz_len = Hazardgen.total_instructions (Hazardgen.suite ()) in
  let conc_tour = Testmodel.concretize Testmodel.default cpp in
  let t3 = Tabulate.create [ "test set"; "instructions"; "bugs detected"; "guarantee" ] in
  Tabulate.add_row t3
    [
      "certified transition tour";
      string_of_int (Array.length conc_tour.Testmodel.program);
      Printf.sprintf "%d/%d" (count tour_bugs) n;
      "complete for the modeled error classes (Thm 3)";
    ];
  Tabulate.add_row t3
    [
      "hazard templates (Iwashita-style, [18])";
      string_of_int hz_len;
      Printf.sprintf "%d/%d" hz.Validate.n_detected hz.Validate.n_bugs;
      "only what the template list enumerates";
    ];
  Tabulate.add_row t3
    [
      "random (tour length)";
      string_of_int (List.length rand_same);
      Printf.sprintf "%d/%d" (count rand_bugs) n;
      "none";
    ];
  Tabulate.add_row t3
    [
      "random (120)";
      string_of_int 120;
      Printf.sprintf "%d/%d" (count rand_bugs_short) n;
      "none";
    ];
  Tabulate.print
    ~title:"E4c — test-generation strategies: cost vs guarantee" t3

(* ------------------------------------------------------------------ *)
(* E5 — Section 6.3: abstracting too much (interlock ablation)         *)
(* ------------------------------------------------------------------ *)

let exp_sec63 () =
  let r = Methodology.ablation_dest_tracking ~seed () in
  let t = Tabulate.create [ "quantity"; "dest-tracking model"; "dest-less model" ] in
  Tabulate.add_row t [ "states"; "28"; "6" ];
  Tabulate.add_row t
    [
      "transitions";
      string_of_int r.Methodology.refined_transitions;
      string_of_int r.Methodology.abstract_transitions;
    ];
  Tabulate.add_row t
    [
      "tour length";
      string_of_int r.Methodology.refined_tour_length;
      string_of_int r.Methodology.abstract_tour_length;
    ];
  Tabulate.add_row t
    [
      "refined transitions covered by tour";
      string_of_int r.Methodology.refined_transitions;
      Printf.sprintf "%d (%.1f%%)" r.Methodology.refined_covered_by_abstract_tour
        (pct r.Methodology.refined_covered_by_abstract_tour r.Methodology.refined_transitions);
    ];
  Tabulate.add_row t
    [
      "fault coverage (same 300 faults)";
      Printf.sprintf "%.1f%%"
        (Simcov_coverage.Detect.coverage_pct r.Methodology.fault_coverage_refined_tour);
      Printf.sprintf "%.1f%%"
        (Simcov_coverage.Detect.coverage_pct r.Methodology.fault_coverage_abstract_tour);
    ];
  Tabulate.add_row t
    [
      "exact homomorphic quotient?";
      "yes (identity)";
      (if r.Methodology.quotient_conflict then "NO (conflict)" else "yes");
    ];
  Tabulate.print
    ~title:"E5 / Section 6.3 — dropping destination-register state abstracts too much" t;
  (* uniformity: transitions where the dest-less model mispredicts the
     control action are exactly the non-uniform output errors *)
  let refined = Fsm.tabulate (Testmodel.build Testmodel.default) in
  let abstract =
    Fsm.tabulate (Testmodel.build { Testmodel.default with Testmodel.track_dest = false })
  in
  let mapping = Testmodel.dest_merge_mapping Testmodel.default in
  let faulty (s, i) =
    let sa = mapping.Simcov_abstraction.Homomorphism.state_map s in
    refined.Fsm.output s i land 0x3F <> abstract.Fsm.output sa i land 0x3F
  in
  let classes = Simcov_coverage.Uniformity.classify refined mapping ~faulty in
  let non_uniform =
    List.filter (fun c -> not (Simcov_coverage.Uniformity.is_uniform c)) classes
  in
  let t2 = Tabulate.create [ "quantity"; "count" ] in
  Tabulate.add_row t2
    [
      "abstract transitions with mispredicted control";
      string_of_int (List.length classes);
    ];
  Tabulate.add_row t2
    [
      "of which non-uniform (Requirement 1 violated)";
      string_of_int (List.length non_uniform);
    ];
  Tabulate.print ~title:"E5b — Requirement 1 (uniformity) under the dest-less abstraction" t2

(* ------------------------------------------------------------------ *)
(* E6 — tour length: optimal vs greedy                                 *)
(* ------------------------------------------------------------------ *)

let exp_tour_length () =
  let t =
    Tabulate.create
      [ "model"; "states"; "transitions"; "CPP tour"; "greedy tour"; "overhead" ]
  in
  let add name model =
    match
      ( Simcov_testgen.Tour.transition_tour model,
        Simcov_testgen.Tour.greedy_transition_tour model )
    with
    | Some opt, Some gr ->
        Tabulate.add_row t
          [
            name;
            string_of_int (Fsm.n_reachable model);
            string_of_int opt.Simcov_testgen.Tour.n_transitions;
            string_of_int opt.Simcov_testgen.Tour.length;
            string_of_int gr.Simcov_testgen.Tour.length;
            Printf.sprintf "%.2fx"
              (float_of_int gr.Simcov_testgen.Tour.length
              /. float_of_int opt.Simcov_testgen.Tour.length);
          ]
    | _ -> Tabulate.add_row t [ name; "-"; "-"; "-"; "-"; "-" ]
  in
  List.iter
    (fun n_regs ->
      let model =
        Fsm.tabulate (Testmodel.build { Testmodel.default with Testmodel.n_regs })
      in
      add (Printf.sprintf "DLX test model, %d regs" n_regs) model)
    (if quick then [ 2; 4 ] else [ 2; 4; 8 ]);
  let rng = Rng.create seed in
  List.iter
    (fun n ->
      add
        (Printf.sprintf "random machine, %d states" n)
        (Fsm.random_connected rng ~n_states:n ~n_inputs:4 ~n_outputs:4))
    (if quick then [ 50 ] else [ 50; 200; 500 ]);
  Tabulate.print ~title:"E6 — transition-tour length: Chinese-postman optimal vs greedy" t

(* ------------------------------------------------------------------ *)
(* E7 — ∀k-distinguishability profiles                                 *)
(* ------------------------------------------------------------------ *)

let exp_forall_k () =
  let t = Tabulate.create [ "model"; "k=1"; "k=2"; "k=3"; "k=4"; "min k (all pairs)" ] in
  let profile name model =
    let seen = Fsm.reachable model in
    let n = model.Fsm.n_states in
    let frac k =
      let mat = Fsm.forall_k_matrix model ~k in
      let good = ref 0 and total = ref 0 in
      for p = 0 to n - 1 do
        for q = p + 1 to n - 1 do
          if seen.(p) && seen.(q) then begin
            incr total;
            if mat.(p).(q) then incr good
          end
        done
      done;
      Printf.sprintf "%.1f%%" (pct !good !total)
    in
    let cells = List.map frac [ 1; 2; 3; 4 ] in
    let mink =
      match Fsm.min_forall_k ~bound:8 model with
      | Some k -> string_of_int k
      | None -> "none <= 8"
    in
    Tabulate.add_row t ((name :: cells) @ [ mink ])
  in
  profile "DLX test model (R5 satisfied)" (Fsm.tabulate (Testmodel.build Testmodel.default));
  profile "DLX test model (R5 violated: dest hidden)"
    (Fsm.tabulate
       (Testmodel.build { Testmodel.default with Testmodel.observable_dest = false }));
  profile "Figure 2 fragment (original)" Fig2.original;
  profile "Figure 2 fragment (repaired)" Fig2.repaired;
  Tabulate.print
    ~title:"E7 / Definition 5 — fraction of reachable state pairs ∀k-distinguishable" t;
  (* the pair at the heart of Figure 2: state 3 vs the error successor
     3' (unreachable in the correct machine, hence tracked separately) *)
  let t2 = Tabulate.create [ "machine"; "pair"; "k=1"; "k=2"; "k=3"; "k=4" ] in
  let pair name m =
    Tabulate.add_row t2
      (name :: "3 vs 3'"
      :: List.map
           (fun k -> string_of_bool (Fsm.forall_k_distinguishable m ~k 2 3))
           [ 1; 2; 3; 4 ])
  in
  pair "Figure 2 (original)" Fig2.original;
  pair "Figure 2 (repaired)" Fig2.repaired;
  Tabulate.print
    ~title:
      "E7b — the Figure 2 pair: ∀k-distinguishability of 3 vs 3' decides tour completeness"
    t2

(* ------------------------------------------------------------------ *)
(* E9 — conformance-testing baselines: tour vs checking seq vs W      *)
(* ------------------------------------------------------------------ *)

let exp_conformance_baselines () =
  let t =
    Tabulate.create
      [ "machine"; "test set"; "input symbols"; "transfer-fault coverage" ]
  in
  let eval name m =
    (* transfer faults may redirect into ANY specification state,
       including ones unreachable in the correct machine (Figure 2's
       3') *)
    let faults =
      List.concat_map
        (fun (s, i, s', _) ->
          List.filter_map
            (fun d ->
              if d = s' then None
              else Some (Simcov_coverage.Fault.Transfer { state = s; input = i; wrong_next = d }))
            (List.init m.Fsm.n_states Fun.id))
        (Fsm.transitions m)
    in
    let row set_name len coverage =
      Tabulate.add_row t [ name; set_name; string_of_int len; coverage ]
    in
    (* the padded tour when the model certifies (Theorem 1 requires the
       k-step exposure window after the last transition), the plain
       tour otherwise *)
    (let tour_word, tour_label =
       match Completeness.certify ~scope:`All m with
       | Ok cert ->
           (Some (Completeness.padded_tour m cert), "transition tour (certified, +k pad)")
       | Error _ -> (
           match Simcov_testgen.Tour.transition_tour m with
           | Some tour -> (Some tour.Simcov_testgen.Tour.word, "transition tour (UNcertified)")
           | None -> (None, "transition tour"))
     in
     match tour_word with
     | Some word ->
         let r = Simcov_coverage.Detect.campaign m faults word in
         row tour_label (List.length word)
           (Printf.sprintf "%.1f%%" (Simcov_coverage.Detect.coverage_pct r))
     | None -> row tour_label 0 "-");
    (match Simcov_testgen.Uio.checking_sequence ~scope:`All m with
    | Some cs ->
        let r = Simcov_coverage.Detect.campaign m faults cs in
        row "checking sequence (tour+UIO)" (List.length cs)
          (Printf.sprintf "%.1f%%" (Simcov_coverage.Detect.coverage_pct r))
    | None -> row "checking sequence (tour+UIO)" 0 "no UIOs");
    let words = Simcov_testgen.Wmethod.suite ~scope:`All m in
    let r = Simcov_testgen.Wmethod.campaign m faults words in
    row "W-method (P.W suite)"
      (Simcov_testgen.Wmethod.total_length words)
      (Printf.sprintf "%.1f%%" (Simcov_coverage.Detect.coverage_pct r))
  in
  eval "Figure 2 (original)" Fig2.original;
  eval "Figure 2 (repaired)" Fig2.repaired;
  eval "DLX test model (2 regs)"
    (Fsm.tabulate (Testmodel.build { Testmodel.default with Testmodel.n_regs = 2 }));
  eval "DSP MAC test model" (Fsm.tabulate (Simcov_dsp.Mac.Testmodel.build ()));
  Tabulate.print
    ~title:
      "E9 — conformance baselines: a plain tour misses what per-transition verification \
       catches (at a length cost); with the paper's Requirements the plain tour already \
       reaches 100%"
    t

(* ------------------------------------------------------------------ *)
(* E10 — the second design class: the fixed-program DSP (Section 5)   *)
(* ------------------------------------------------------------------ *)

let exp_dsp () =
  let open Simcov_dsp.Mac in
  let model = Fsm.tabulate (Testmodel.build ()) in
  let cert =
    match Completeness.certify model with Ok c -> c | Error _ -> failwith "dsp certify"
  in
  let word = Completeness.padded_tour model cert in
  let cmds = Testmodel.concretize word in
  let t = Tabulate.create [ "quantity"; "value" ] in
  Tabulate.add_row t [ "test-model states"; string_of_int cert.Completeness.n_states ];
  Tabulate.add_row t
    [ "test-model transitions"; string_of_int cert.Completeness.n_transitions ];
  Tabulate.add_row t [ "certificate k"; string_of_int cert.Completeness.k ];
  Tabulate.add_row t [ "tour length"; string_of_int (List.length word) ];
  Tabulate.add_row t [ "command stream"; string_of_int (List.length cmds) ];
  let campaign = Validate.bug_campaign cmds in
  Tabulate.add_row t
    [
      "seeded pipeline bugs detected";
      Printf.sprintf "%d/%d"
        (List.length (List.filter snd campaign))
        (List.length campaign);
    ];
  let rng = Rng.create seed in
  let fsm_report = Completeness.check_empirically rng model cert in
  Tabulate.add_row t
    [
      "FSM fault coverage";
      Printf.sprintf "%.1f%%" (Simcov_coverage.Detect.coverage_pct fsm_report);
    ];
  Tabulate.print
    ~title:"E10 / Section 5 — the fixed-program DSP (MAC ASIC): same methodology, same shape"
    t

(* ------------------------------------------------------------------ *)
(* E11 — symbolic tour + observability metric                          *)
(* ------------------------------------------------------------------ *)

(* a mid-size circuit family: symbolic tours without explicit
   enumeration (E11), and the tour-length probe of the E13 JSON *)
let lfsr width taps =
  let open Simcov_netlist in
  let open Circuit.Build in
  let ctx = create "lfsr" in
  let en = input ctx "en" in
  let bits = reg_vec ctx ~init:1 "s" width in
  let feedback =
    List.fold_left (fun acc t -> Expr.( ^^^ ) acc bits.(t)) Expr.fls taps
  in
  assign ctx bits.(0) (Expr.mux en feedback bits.(0));
  for k = 1 to width - 1 do
    assign ctx bits.(k) (Expr.mux en bits.(k - 1) bits.(k))
  done;
  output ctx "msb" bits.(width - 1);
  finish ctx

let exp_symbolic_tour () =
  let t =
    Tabulate.create
      [ "circuit"; "latches"; "transitions"; "tour steps"; "complete"; "time" ]
  in
  List.iter
    (fun (width, taps) ->
      let c = lfsr width taps in
      let r, dt = time_it (fun () -> Simcov_symbolic.Symtour.generate c) in
      Tabulate.add_row t
        [
          Printf.sprintf "lfsr-%d" width;
          string_of_int width;
          fmt_float r.Simcov_symbolic.Symtour.progress.Simcov_symbolic.Symtour.total;
          string_of_int (List.length r.Simcov_symbolic.Symtour.word);
          string_of_bool r.Simcov_symbolic.Symtour.complete;
          Printf.sprintf "%.2fs" dt;
        ])
    (if quick then [ (6, [ 5; 4 ]); (8, [ 7; 5; 4; 3 ]) ]
     else [ (6, [ 5; 4 ]); (8, [ 7; 5; 4; 3 ]); (10, [ 9; 6 ]) ]);
  Tabulate.print
    ~title:
      "E11 — symbolic (implicit) tour generation, the paper's Section 6.5 machinery"
    t;
  (* observability metric on the tour word vs an idle-heavy word *)
  let c = lfsr 6 [ 5; 4 ] in
  let tour = Simcov_symbolic.Symtour.generate c in
  let obs_tour =
    Simcov_coverage.Observability.analyze ~horizon:6 c tour.Simcov_symbolic.Symtour.word
  in
  let rng = Rng.create seed in
  let idle =
    List.init (List.length tour.Simcov_symbolic.Symtour.word) (fun _ ->
        [| Rng.int rng 4 = 0 |])
  in
  let obs_idle = Simcov_coverage.Observability.analyze ~horizon:6 c idle in
  let t2 = Tabulate.create [ "stimulus"; "toggle cov"; "observability cov" ] in
  let row name (r : Simcov_coverage.Observability.report) =
    Tabulate.add_row t2
      [
        name;
        Printf.sprintf "%.0f%%" (Simcov_coverage.Observability.toggle_pct r);
        Printf.sprintf "%.0f%%" (Simcov_coverage.Observability.observability_pct r);
      ]
  in
  row "symbolic tour" obs_tour;
  row "idle-heavy random (same length)" obs_idle;
  Tabulate.print
    ~title:"E11b — observability-based metric ([11]-style) on the same stimuli" t2

(* ------------------------------------------------------------------ *)
(* E12 — dual-issue: the superscalar case Section 5 motivates          *)
(* ------------------------------------------------------------------ *)

let exp_dual () =
  let pcs = Dual.pair_classes () in
  let program = Dual.concretize_pairs pcs in
  let d = Dual.create program in
  let _ = Dual.run d in
  let cycles, duals, singles = Dual.stats d in
  let t = Tabulate.create [ "quantity"; "value" ] in
  Tabulate.add_row t [ "feasible pair classes"; string_of_int (List.length pcs) ];
  Tabulate.add_row t [ "pair-coverage program"; Printf.sprintf "%d instructions" (Array.length program) ];
  Tabulate.add_row t
    [ "golden machine"; Printf.sprintf "%d cycles, %d dual + %d single issues" cycles duals singles ];
  let campaign = Dual.bug_campaign program in
  List.iter
    (fun (name, det) ->
      Tabulate.add_row t [ "bug " ^ name; (if det then "DETECTED" else "missed") ])
    campaign;
  (* random programs for contrast *)
  let rng = Rng.create seed in
  let random_program len =
    let r () = Rng.int rng 8 in
    Array.init len (fun k ->
        match Rng.int rng 10 with
        | 0 | 1 | 2 -> Isa.make ~rd:(r ()) ~rs1:(r ()) ~rs2:(r ()) Isa.Add
        | 3 | 4 -> Isa.make ~rd:(r ()) ~rs1:(r ()) ~imm:(Rng.int rng 16) Isa.Addi
        | 5 -> Isa.make ~rd:(r ()) ~rs1:(r ()) ~imm:(Rng.int rng 8) Isa.Lw
        | 6 -> Isa.make ~rs1:(r ()) ~rs2:(r ()) ~imm:(Rng.int rng 8) Isa.Sw
        | 7 ->
            let max_off = max 1 (min 3 (len - k - 1)) in
            Isa.make ~rs1:(r ()) ~imm:(1 + Rng.int rng max_off) Isa.Bnez
        | _ -> Isa.nop)
  in
  let count_random len =
    let p = random_program len in
    List.length (List.filter snd (Dual.bug_campaign p))
  in
  Tabulate.add_row t
    [ "random program (same length)"; Printf.sprintf "%d/4 bugs" (count_random (Array.length program)) ];
  Tabulate.add_row t [ "random program (40)"; Printf.sprintf "%d/4 bugs" (count_random 40) ];
  Tabulate.print
    ~title:
      "E12 — dual-issue DLX: pair-class coverage exposes every pairing-rule bug (the        superscalar case of Section 5)"
    t

(* ------------------------------------------------------------------ *)
(* E16 — dynamic variable reordering: sifting vs the build-time order  *)
(* ------------------------------------------------------------------ *)

(* returns the JSON fragment E13 embeds under "reorder" *)
let exp_reorder () =
  let final, _ = Control.derive_test_model () in
  let open Simcov_symbolic.Symfsm in
  let run mode =
    let t0 = Unix.gettimeofday () in
    let sym = of_circuit ~reorder:mode final in
    let tr = traverse sym in
    let wall = Unix.gettimeofday () -. t0 in
    (sym, tr, count_states sym tr.reached, wall)
  in
  let _, tr_off, states_off, wall_off = run `Off in
  let sym_on, tr_on, states_on, wall_on = run `On in
  if states_on <> states_off || tr_on.iterations <> tr_off.iterations then
    failwith "E16: reordered traversal disagrees with the baseline";
  let reduction =
    1. -. (float_of_int tr_on.peak_live_nodes /. float_of_int tr_off.peak_live_nodes)
  in
  let rs = Simcov_bdd.Bdd.reorder_stats sym_on.man in
  let t = Tabulate.create [ "reorder"; "total"; "peak nodes"; "sift runs"; "swaps" ] in
  Tabulate.add_row t
    [ "off (build order)"; Printf.sprintf "%.2fs" wall_off;
      string_of_int tr_off.peak_live_nodes; "-"; "-" ];
  Tabulate.add_row t
    [ "on (sifting)"; Printf.sprintf "%.2fs" wall_on;
      string_of_int tr_on.peak_live_nodes;
      string_of_int rs.Simcov_bdd.Bdd.reorder_runs;
      string_of_int rs.Simcov_bdd.Bdd.reorder_swaps ];
  Tabulate.add_row t
    [ "peak reduction"; Printf.sprintf "%.1f%%" (100. *. reduction); ""; ""; "" ];
  Tabulate.print
    ~title:
      "E16 — DLX-model reachability under dynamic variable reordering (Rudell \
       sifting) vs the interleaved build-time order"
    t;
  Printf.sprintf
    "{\"off\": {\"total_s\": %.4f, \"peak_bdd_nodes\": %d}, \"on\": \
     {\"total_s\": %.4f, \"peak_bdd_nodes\": %d, \"sift_runs\": %d, \
     \"sift_swaps\": %d}, \"peak_reduction\": %.4f}"
    wall_off tr_off.peak_live_nodes wall_on tr_on.peak_live_nodes
    rs.Simcov_bdd.Bdd.reorder_runs rs.Simcov_bdd.Bdd.reorder_swaps reduction

(* ------------------------------------------------------------------ *)
(* E13 — symbolic traversal: partitioned TR + frontier BFS ablation    *)
(* ------------------------------------------------------------------ *)

let exp_traversal reorder_json =
  let final, _ = Control.derive_test_model () in
  let open Simcov_symbolic.Symfsm in
  (* each configuration gets a fresh manager so cache warm-up and node
     counts are not shared between runs *)
  let run (partitioned, frontier) =
    let sym = of_circuit final in
    let tb0 = Unix.gettimeofday () in
    if not partitioned then ignore (trans sym);
    let build_s = Unix.gettimeofday () -. tb0 in
    let tr = traverse ~partitioned ~frontier sym in
    (build_s, tr, count_states sym tr.reached)
  in
  let configs =
    [
      ((false, false), "monolithic + full-set (seed baseline)");
      ((false, true), "monolithic + frontier");
      ((true, false), "partitioned + full-set");
      ((true, true), "partitioned + frontier (default)");
    ]
  in
  let results = List.map (fun (cfg, name) -> (cfg, name, run cfg)) configs in
  let total (b, (tr : traversal)) = b +. tr.total_time_s in
  let _, _, (base_build, base_tr, base_states) = List.hd results in
  let base_total = total (base_build, base_tr) in
  let t =
    Tabulate.create
      [ "configuration"; "build"; "reach"; "total"; "iters"; "images"; "peak nodes"; "speedup" ]
  in
  List.iter
    (fun (_, name, (build_s, tr, _)) ->
      Tabulate.add_row t
        [
          name;
          Printf.sprintf "%.2fs" build_s;
          Printf.sprintf "%.2fs" tr.total_time_s;
          Printf.sprintf "%.2fs" (total (build_s, tr));
          string_of_int tr.iterations;
          string_of_int tr.images;
          string_of_int tr.peak_live_nodes;
          Printf.sprintf "%.1fx" (base_total /. total (build_s, tr));
        ])
    results;
  Tabulate.print
    ~title:
      "E13 — DLX-model symbolic reachability: partitioned transition relation and \
       frontier BFS vs the monolithic baseline"
    t;
  (* all four must agree — each config has its own manager, so compare
     iteration and state counts here (exact BDD equality on a shared
     manager is covered by the test suite) *)
  List.iter
    (fun (_, name, (_, (tr : traversal), states)) ->
      if tr.iterations <> base_tr.iterations || states <> base_states then
        failwith ("E13: traversal disagrees with baseline: " ^ name))
    results;
  if json then begin
    let _, _, (best_build, best_tr, _) = List.nth results 3 in
    let sym = of_circuit final in
    let tour, tour_s =
      time_it (fun () -> Simcov_symbolic.Symtour.generate (lfsr 8 [ 7; 5; 4; 3 ]))
    in
    let buf = Buffer.create 1024 in
    let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    add "{\n";
    add "  \"model\": \"dlx-control\",\n";
    add "  \"latches\": %d,\n" sym.n_state_vars;
    add "  \"inputs\": %d,\n" sym.n_input_vars;
    add "  \"reachable_states\": %.0f,\n" base_states;
    add "  \"iterations\": %d,\n" base_tr.iterations;
    add "  \"configs\": [\n";
    List.iteri
      (fun i ((partitioned, frontier), _, (build_s, (tr : traversal), _)) ->
        add
          "    {\"partitioned\": %b, \"frontier\": %b, \"build_s\": %.4f, \
           \"reach_s\": %.4f, \"total_s\": %.4f, \"images\": %d, \
           \"peak_bdd_nodes\": %d}%s\n"
          partitioned frontier build_s tr.total_time_s (total (build_s, tr)) tr.images
          tr.peak_live_nodes
          (if i < List.length results - 1 then "," else ""))
      results;
    add "  ],\n";
    add "  \"speedup_total\": %.2f,\n" (base_total /. total (best_build, best_tr));
    add "  \"reorder\": %s,\n" reorder_json;
    add "  \"tour\": {\"circuit\": \"lfsr-8\", \"length\": %d, \"complete\": %b, \
         \"time_s\": %.4f}\n"
      (List.length tour.Simcov_symbolic.Symtour.word)
      tour.Simcov_symbolic.Symtour.complete tour_s;
    add "}\n";
    Simcov_util.Durable.write_string "BENCH_symbolic.json" (Buffer.contents buf);
    print_endline "wrote BENCH_symbolic.json"
  end

(* ------------------------------------------------------------------ *)
(* E14 — campaign throughput: bit-parallel driver vs scalar reference  *)
(* ------------------------------------------------------------------ *)

(* Same faults, same word, two engines: the scalar one-mutant-per-pass
   reference (Detect.campaign_scalar / Stuckat.run_verdict) against the
   shared bit-parallel driver that packs up to Sys.int_size mutants
   into the bit lanes of one simulation pass. The reports must agree
   exactly; the JSON artifact records the throughput ratio. *)
let exp_campaign () =
  let module Detect = Simcov_coverage.Detect in
  let module Stuckat = Simcov_coverage.Stuckat in
  let module Circuit = Simcov_netlist.Circuit in
  let rng = Rng.create seed in
  (* FSM error-model campaign on the DLX test model over its tour *)
  let model = Fsm.tabulate (Testmodel.build Testmodel.default) in
  let word =
    match Completeness.certify model with
    | Ok cert -> Completeness.padded_tour model cert
    | Error _ -> failwith "E14: DLX test model lost its certificate"
  in
  let n_outputs =
    List.fold_left (fun acc (_, _, _, o) -> max acc (o + 1)) 1 (Fsm.transitions model)
  in
  let per_kind = if quick then 60 else 300 in
  let fsm_faults =
    Simcov_coverage.Fault.sample_transfer_faults rng model ~count:per_kind
    @ Simcov_coverage.Fault.sample_output_faults rng model ~n_outputs ~count:per_kind
  in
  let scalar_o, fsm_scalar_s = time_it (fun () -> Detect.campaign_scalar model fsm_faults word) in
  let batched_o, fsm_batched_s =
    time_it (fun () -> Detect.campaign_outcome model fsm_faults word)
  in
  let sr = scalar_o.Simcov_campaign.Campaign.report
  and br = batched_o.Simcov_campaign.Campaign.report in
  if
    sr.Simcov_campaign.Campaign.detected <> br.Simcov_campaign.Campaign.detected
    || sr.Simcov_campaign.Campaign.excited <> br.Simcov_campaign.Campaign.excited
  then failwith "E14: batched FSM campaign disagrees with the scalar reference";
  (* stuck-at campaign on the derived test-model netlist under random
     constraint-respecting stimuli *)
  let circuit, _ = Control.derive_test_model () in
  let sa_word =
    let ni = Circuit.n_inputs circuit in
    let state = ref (Circuit.initial_state circuit) in
    List.init
      (if quick then 128 else 512)
      (fun _ ->
        let rec draw tries =
          if tries > 1000 then failwith "E14: no valid stimulus found"
          else
            let iv = Array.init ni (fun _ -> Rng.bool rng) in
            if Circuit.input_valid circuit !state iv then iv else draw (tries + 1)
        in
        let iv = draw 0 in
        state := fst (Circuit.step circuit !state iv);
        iv)
  in
  let sa_faults = Stuckat.all_faults circuit in
  let sa_scalar, sa_scalar_s =
    time_it (fun () ->
        List.map (fun f -> Stuckat.run_verdict circuit f sa_word) sa_faults)
  in
  let sa_batched, sa_batched_s =
    time_it (fun () -> Stuckat.campaign_outcome circuit sa_faults sa_word)
  in
  let sa_scalar_det =
    List.length (List.filter (fun (v : Simcov_campaign.Campaign.verdict) -> v.detected) sa_scalar)
  in
  let sar = sa_batched.Simcov_campaign.Campaign.report in
  if sa_scalar_det <> sar.Simcov_campaign.Campaign.detected then
    failwith "E14: batched stuck-at campaign disagrees with the scalar reference";
  let rate n s = if s > 0.0 then float_of_int n /. s else infinity in
  let n_fsm = sr.Simcov_campaign.Campaign.effective in
  let n_sa = List.length sa_faults in
  let t = Tabulate.create [ "campaign"; "faults"; "scalar"; "batched"; "faults/s scalar"; "faults/s batched"; "speedup" ] in
  let row name n ss bs =
    Tabulate.add_row t
      [
        name;
        string_of_int n;
        Printf.sprintf "%.3fs" ss;
        Printf.sprintf "%.3fs" bs;
        Printf.sprintf "%.0f" (rate n ss);
        Printf.sprintf "%.0f" (rate n bs);
        Printf.sprintf "%.1fx" (ss /. bs);
      ]
  in
  row "dlx fsm-fault (tour)" n_fsm fsm_scalar_s fsm_batched_s;
  row "dlx-test stuck-at (random)" n_sa sa_scalar_s sa_batched_s;
  Tabulate.print
    ~title:
      "E14 — unified campaign engine: bit-parallel lanes vs the scalar reference \
       (identical verdicts, one golden pass per 63 mutants)"
    t;
  (* the JSON fragment is combined with E15's sweep into one
     BENCH_coverage.json artifact (schema /2) by [exp_campaign_wide] *)
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "  \"fsm_fault\": {\"model\": \"dlx\", \"word_length\": %d, \"faults\": %d,\n"
    (List.length word) n_fsm;
  add "    \"detected\": %d, \"scalar_s\": %.4f, \"batched_s\": %.4f,\n"
    br.Simcov_campaign.Campaign.detected fsm_scalar_s fsm_batched_s;
  add "    \"faults_per_sec_scalar\": %.1f, \"faults_per_sec_batched\": %.1f,\n"
    (rate n_fsm fsm_scalar_s) (rate n_fsm fsm_batched_s);
  add "    \"speedup\": %.2f},\n" (fsm_scalar_s /. fsm_batched_s);
  add "  \"stuckat\": {\"model\": \"dlx-test\", \"word_length\": %d, \"faults\": %d,\n"
    (List.length sa_word) n_sa;
  add "    \"detected\": %d, \"scalar_s\": %.4f, \"batched_s\": %.4f,\n"
    sar.Simcov_campaign.Campaign.detected sa_scalar_s sa_batched_s;
  add "    \"faults_per_sec_scalar\": %.1f, \"faults_per_sec_batched\": %.1f,\n"
    (rate n_sa sa_scalar_s) (rate n_sa sa_batched_s);
  add "    \"speedup\": %.2f}" (sa_scalar_s /. sa_batched_s);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* E15 — domain-parallel wide campaigns: lanes x jobs sweep            *)
(* ------------------------------------------------------------------ *)

(* The same DLX FSM campaign at growing lane widths and shard counts.
   Every configuration must reproduce the 63-lane batched report
   exactly (which the QCheck suite already pins against the scalar
   reference); the artifact records per-configuration throughput and
   the speedup over both the scalar engine and the 63-lane batched
   baseline that PR 4 shipped. Times are best-of-N wall clock — the
   box this runs on is shared, so the minimum is the honest estimate
   of the code's own cost. *)
let exp_campaign_wide e14_fragment =
  let module Detect = Simcov_coverage.Detect in
  let rng = Rng.create (seed + 15) in
  let model = Fsm.tabulate (Testmodel.build Testmodel.default) in
  let word =
    match Completeness.certify model with
    | Ok cert -> Completeness.padded_tour model cert
    | Error _ -> failwith "E15: DLX test model lost its certificate"
  in
  let n_outputs =
    List.fold_left (fun acc (_, _, _, o) -> max acc (o + 1)) 1 (Fsm.transitions model)
  in
  let per_kind = if quick then 256 else 2048 in
  let faults =
    Simcov_coverage.Fault.sample_transfer_faults rng model ~count:per_kind
    @ Simcov_coverage.Fault.sample_output_faults rng model ~n_outputs ~count:per_kind
  in
  let reps = if quick then 2 else 7 in
  let scalar_o, scalar_once_s =
    time_it (fun () -> Detect.campaign_scalar model faults word)
  in
  let sref = scalar_o.Simcov_campaign.Campaign.report in
  let configs =
    if quick then [ (63, 1); (256, 1); (512, 2); (512, 4) ]
    else
      List.concat_map
        (fun lanes -> List.map (fun jobs -> (lanes, jobs)) [ 1; 2; 4 ])
        [ 63; 256; 512; 1024 ]
  in
  let workers_of jobs = min jobs (max 1 (Domain.recommended_domain_count ())) in
  (* warm-up pass doubles as the correctness cross-check *)
  List.iter
    (fun (lanes, jobs) ->
      let o = Detect.campaign_outcome ~lanes ~jobs model faults word in
      let r = o.Simcov_campaign.Campaign.report in
      if
        r.Simcov_campaign.Campaign.detected
        <> sref.Simcov_campaign.Campaign.detected
        || r.Simcov_campaign.Campaign.excited
           <> sref.Simcov_campaign.Campaign.excited
      then
        failwith
          (Printf.sprintf
             "E15: campaign at lanes=%d jobs=%d disagrees with the scalar \
              reference"
             lanes jobs))
    configs;
  (* interleave the repetitions across configurations so load drift on
     a shared box biases every configuration's minimum equally *)
  let mins = Array.make (List.length configs) infinity in
  for _rep = 1 to reps do
    List.iteri
      (fun i (lanes, jobs) ->
        let s =
          snd
            (time_it (fun () ->
                 Detect.campaign_outcome ~lanes ~jobs model faults word))
        in
        mins.(i) <- min mins.(i) s)
      configs
  done;
  let measured = List.mapi (fun i (lanes, jobs) -> (lanes, jobs, mins.(i))) configs in
  let base63_s =
    match
      List.find_opt (fun (lanes, jobs, _) -> lanes = Sys.int_size && jobs = 1) measured
    with
    | Some (_, _, t) -> t
    | None -> (
        match measured with
        | (_, _, t) :: _ -> t
        | [] -> failwith "E15: empty sweep")
  in
  let n = sref.Simcov_campaign.Campaign.effective in
  let rate s = if s > 0.0 then float_of_int n /. s else infinity in
  let t =
    Tabulate.create
      [ "lanes"; "jobs"; "workers"; "time"; "faults/s"; "vs scalar"; "vs 63-lane" ]
  in
  List.iter
    (fun (lanes, jobs, s) ->
      Tabulate.add_row t
        [
          string_of_int lanes;
          string_of_int jobs;
          string_of_int (workers_of jobs);
          Printf.sprintf "%.4fs" s;
          Printf.sprintf "%.0f" (rate s);
          Printf.sprintf "%.1fx" (scalar_once_s /. s);
          Printf.sprintf "%.2fx" (base63_s /. s);
        ])
    measured;
  Tabulate.print
    ~title:
      (Printf.sprintf
         "E15 — domain-parallel wide campaigns (%d DLX FSM faults, identical \
          reports at every configuration)"
         n)
    t;
  if json then begin
    let buf = Buffer.create 1024 in
    let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    add "{\n";
    add "  \"schema\": \"simcov-bench-coverage/2\",\n";
    add "  \"lanes\": %d,\n" Sys.int_size;
    add "%s,\n" e14_fragment;
    add "  \"wide_campaign\": {\"model\": \"dlx\", \"word_length\": %d, \"faults\": %d,\n"
      (List.length word) n;
    add "    \"detected\": %d, \"scalar_s\": %.4f, \"batched63_s\": %.4f,\n"
      sref.Simcov_campaign.Campaign.detected scalar_once_s base63_s;
    add "    \"configs\": [\n";
    let last = List.length measured - 1 in
    List.iteri
      (fun i (lanes, jobs, s) ->
        add
          "      {\"lanes\": %d, \"jobs\": %d, \"workers\": %d, \"time_s\": \
           %.4f, \"faults_per_sec\": %.1f, \"speedup_vs_scalar\": %.2f, \
           \"speedup_vs_batched63\": %.2f}%s\n"
          lanes jobs (workers_of jobs) s (rate s) (scalar_once_s /. s)
          (base63_s /. s)
          (if i = last then "" else ","))
      measured;
    add "    ]}\n";
    add "}\n";
    Simcov_util.Durable.write_string "BENCH_coverage.json" (Buffer.contents buf);
    print_endline "wrote BENCH_coverage.json"
  end

(* ------------------------------------------------------------------ *)
(* E8 — Bechamel micro-benchmarks                                      *)
(* ------------------------------------------------------------------ *)

let bechamel_suite () =
  let open Bechamel in
  let open Toolkit in
  let bdd_work () =
    let m = Simcov_bdd.Bdd.man 16 in
    let f = ref (Simcov_bdd.Bdd.btrue m) in
    for v = 0 to 7 do
      f :=
        Simcov_bdd.Bdd.band m !f
          (Simcov_bdd.Bdd.bor m (Simcov_bdd.Bdd.var m v) (Simcov_bdd.Bdd.var m (15 - v)))
    done;
    Simcov_bdd.Bdd.size !f
  in
  let rng0 = Rng.create 99 in
  let random_machine = Fsm.random_connected rng0 ~n_states:300 ~n_inputs:3 ~n_outputs:4 in
  let reach_work () = Fsm.n_reachable random_machine in
  let tour_machine = Fsm.random_connected rng0 ~n_states:100 ~n_inputs:3 ~n_outputs:4 in
  let tour_work () =
    match Simcov_testgen.Tour.transition_tour tour_machine with
    | Some t -> t.Simcov_testgen.Tour.length
    | None -> 0
  in
  let loop_program =
    match
      Isa.parse_program
        "addi r1, r0, 50\n\
         addi r2, r0, 0\n\
         add r2, r2, r1\n\
         lw r3, 0(r2)\n\
         add r2, r2, r3\n\
         addi r1, r1, -1\n\
         bnez r1, -4"
    with
    | Ok p -> p
    | Error e -> failwith e
  in
  let pipeline_work () =
    let p = Pipeline.create loop_program in
    List.length (Pipeline.run p)
  in
  let spec_work () =
    let s = Spec.create loop_program in
    List.length (Spec.run s)
  in
  let model = Fsm.tabulate (Testmodel.build Testmodel.default) in
  let forall_k_work () = Fsm.forall_k_matrix model ~k:2 in
  let tests =
    Test.make_grouped ~name:"simcov" ~fmt:"%s/%s"
      [
        Test.make ~name:"bdd-build-16var" (Staged.stage bdd_work);
        Test.make ~name:"fsm-reach-300" (Staged.stage reach_work);
        Test.make ~name:"cpp-tour-100" (Staged.stage tour_work);
        Test.make ~name:"pipeline-loop" (Staged.stage pipeline_work);
        Test.make ~name:"spec-loop" (Staged.stage spec_work);
        Test.make ~name:"forall-k-matrix" (Staged.stage (fun () -> forall_k_work ()));
      ]
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second (if quick then 0.1 else 0.5))
      ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let t = Tabulate.create [ "micro-benchmark"; "time per run" ] in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let cell =
        match Analyze.OLS.estimates ols_result with
        | Some [ est ] ->
            if est > 1e9 then Printf.sprintf "%.2f s" (est /. 1e9)
            else if est > 1e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
            else if est > 1e3 then Printf.sprintf "%.2f us" (est /. 1e3)
            else Printf.sprintf "%.0f ns" est
        | _ -> "n/a"
      in
      rows := (name, cell) :: !rows)
    results;
  List.iter (fun (n, c) -> Tabulate.add_row t [ n; c ]) (List.sort compare !rows);
  Tabulate.print ~title:"E8 — micro-benchmarks (Bechamel, monotonic clock)" t

(* ------------------------------------------------------------------ *)

let () =
  (* same minor-arena sizing as the simcov CLI, so campaign timings
     here reflect what the shipped binary does *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 4 * 1024 * 1024 };
  Printf.printf "simcov benchmark harness (seed %d)%s\n" seed
    (if quick then " [--quick]" else "");
  exp_fig2 ();
  exp_fig3b ();
  if not quick then exp_sec72 ()
  else print_endline "\n(E3 symbolic statistics skipped under --quick)";
  exp_thm3 ();
  exp_sec63 ();
  exp_tour_length ();
  exp_forall_k ();
  exp_conformance_baselines ();
  exp_dsp ();
  exp_dual ();
  exp_symbolic_tour ();
  exp_traversal (exp_reorder ());
  exp_campaign_wide (exp_campaign ());
  bechamel_suite ();
  print_newline ()
