(** Engine-agnostic fault-simulation campaigns.

    Every coverage number in the methodology is produced by the same
    experiment: instantiate a population of faulty variants of a golden
    model, replay a stimulus word against golden and variants in
    lockstep, and classify each fault as effective / excited / detected
    / missed. The three fault domains in this repository — FSM error
    models (Definitions 1–4), netlist stuck-at faults, and the DLX
    pipeline bug catalog — used to run this experiment through three
    disjoint scalar loops. This module factors the experiment itself
    out: a {!BACKEND} describes one fault domain (how to batch mutants
    and what one lockstep step observes) and {!Make} provides the single
    campaign driver, which is

    - {e bit-parallel}: mutants are packed into the bit lanes of an
      OCaml [int] (up to [Sys.int_size] per batch, backend-capped by
      {!BACKEND.max_lanes}), so one golden pass over the word evaluates
      a whole batch — the classic parallel-pattern fault-simulation
      trick;
    - {e budget-aware}: {!Simcov_util.Budget} is checkpointed between
      batches and exhaustion yields a [truncated]-tagged partial report
      (whole batches are evaluated or skipped, never split, so a
      truncated report is prefix-consistent with the full run); the
      driver never raises on exhaustion;
    - {e observable}: a per-batch {!progress} callback carries
      throughput counters for CLI and bench reporting.

    Lane encoding: lane [l] of a batch is fault [l] of the fault array
    passed to {!BACKEND.start}; an [int] used as a lane set has bit [l]
    set when lane [l] is a member. Bit 62 (the sign bit of a 63-bit
    OCaml [int]) is an ordinary lane — all lane-set operations are
    bitwise. *)

module Budget = Simcov_util.Budget

(** {1 Verdicts and step events} *)

type verdict = {
  detected : bool;
  excited : bool;
  detect_step : int option;  (** first step (0-based) with an observable difference *)
  excite_step : int option;  (** first step the golden run traverses the fault site *)
}

type event = {
  excited : int;  (** lane set whose fault site the golden run traversed this step *)
  detected : int;  (** lane set with an observable difference this step *)
  halt : bool;
      (** the golden run cannot continue (stimulus invalid for the
          golden model); the batch stops after this event's lane sets
          are folded in *)
}

(** {1 Backends} *)

(** One fault domain: a golden model type, a fault type, a stimulus
    type, and a batched lockstep simulator. *)
module type BACKEND = sig
  type ctx  (** the golden model, possibly pre-tabulated *)

  type fault
  type stim  (** one element of the stimulus word *)

  val name : string
  (** Backend tag recorded in reports (["fsm-fault"], ["stuck-at"], …). *)

  val max_lanes : int
  (** Upper bound on lanes per batch; the driver uses
      [min max_lanes Sys.int_size]. A scalar backend declares [1]. *)

  val effective : ctx -> fault -> bool
  (** Faults that actually change behavior locally; ineffective faults
      count toward [total] only and are never simulated. *)

  type batch
  (** Mutable lockstep state for one batch of faults (golden state plus
      per-lane mutant state). *)

  val start : ctx -> fault array -> batch
  (** Begin a batch at reset. The array has at most
      [min max_lanes Sys.int_size] entries, all effective. *)

  val step : batch -> active:int -> stim -> event
  (** Advance the batch by one stimulus element. [active] is the lane
      set still undetected; lanes outside it need not be simulated
      precisely (the driver masks the returned lane sets with
      [active]). *)
end

(** {1 Reports} *)

type 'f report = {
  backend : string;
  total : int;  (** faults submitted, including ineffective ones *)
  effective : int;  (** effective faults actually evaluated *)
  excited : int;
  detected : int;
  missed : 'f list;  (** effective, excited, yet undetected *)
  skipped : int;  (** effective faults left unevaluated by truncation *)
  truncated : Budget.resource option;
      (** [Some r] when the budget ran out mid-campaign; the counters
          then describe the evaluated prefix of the fault list *)
}

val coverage_pct : 'f report -> float
(** [100 * detected / effective] (100.0 when no effective fault was
    evaluated). *)

val pp_report : Format.formatter -> 'f report -> unit

val to_json :
  ?fault:('f -> Simcov_util.Json.t) ->
  ?extra:(string * Simcov_util.Json.t) list ->
  'f report ->
  Simcov_util.Json.t
(** Render as the [simcov-campaign/1] schema: an object with [schema],
    [backend], [total], [effective], [excited], [detected], [missed]
    (count), [skipped], [coverage_pct] and [truncated]
    ([null] or the resource name). When [fault] is given, the missed
    faults themselves are listed under [missed_faults]; [extra] fields
    are appended verbatim. *)

type progress = {
  batch : int;  (** 0-based index of the batch just finished *)
  batches : int;
  faults_done : int;  (** effective faults evaluated so far *)
  faults_total : int;  (** effective faults in the campaign *)
  detected_so_far : int;
  sim_steps : int;  (** lockstep steps executed so far (all batches) *)
  elapsed_s : float;
}

type 'f outcome = {
  report : 'f report;
  verdicts : ('f * verdict) list;
      (** per-fault verdicts for the evaluated effective faults, in
          fault-list order *)
}

(** {1 Lane-set helpers (for backends)} *)

val ones : int -> int
(** [ones n] has the low [n] bits set ([0 <= n <= Sys.int_size]). *)

val iter_bits : int -> (int -> unit) -> unit
(** Apply the function to each set bit's index, ascending. *)

(** {1 The driver} *)

module Make (B : BACKEND) : sig
  val run :
    ?budget:Budget.t ->
    ?on_batch:(progress -> unit) ->
    B.ctx ->
    B.fault list ->
    B.stim list ->
    B.fault outcome
  (** Run the campaign: filter effective faults, batch them
      [min B.max_lanes Sys.int_size] to a word, and lockstep-simulate
      each batch over the stimulus word, recording per-lane excitation
      and detection (a lane's simulation stops at its first detection;
      a batch stops when every lane is detected or the backend halts).
      One budget step is consumed per batch; when the budget is
      exhausted the remaining batches are skipped and the report is
      tagged [truncated]. Never raises [Budget_exceeded]. *)
end
