(** Engine-agnostic fault-simulation campaigns.

    Every coverage number in the methodology is produced by the same
    experiment: instantiate a population of faulty variants of a golden
    model, replay a stimulus word against golden and variants in
    lockstep, and classify each fault as effective / excited / detected
    / missed. The three fault domains in this repository — FSM error
    models (Definitions 1–4), netlist stuck-at faults, and the DLX
    pipeline bug catalog — used to run this experiment through three
    disjoint scalar loops. This module factors the experiment itself
    out: a {!BACKEND} describes one fault domain (how to batch mutants
    and what one lockstep step observes) and {!Make} provides the single
    campaign driver, which is

    - {e bit-parallel}: mutants are packed into the lanes of a
      {!Simcov_util.Lanes} set — a native OCaml [int] (63 lanes, the
      default) or a bit-sliced wide set (256/512/1024 lanes via
      {!BACKEND_W} / {!Make_wide}) — so one golden pass over the word
      evaluates a whole batch: the classic parallel-pattern
      fault-simulation trick, freed of the word-size cap;
    - {e domain-parallel}: [run ~jobs:n] splits the effective-fault
      array into [n] contiguous shards, runs them on [Domain.spawn]
      workers with sub-budgets carved by {!Simcov_util.Budget.split},
      and merges the shard reports deterministically (see below);
    - {e budget-aware}: {!Simcov_util.Budget} is checkpointed between
      batches and exhaustion yields a [truncated]-tagged partial report
      (whole batches are evaluated or skipped, never split); the driver
      never raises on exhaustion;
    - {e observable}: a per-batch {!progress} callback carries
      throughput counters for CLI and bench reporting; under sharding
      the shared counters are atomics and the callback is serialized.

    {b Determinism / merge contract.} Shards are contiguous slices of
    the effective-fault array in fault order (a pure function of
    [(n, jobs)]; see {!shard_ranges}). Each shard evaluates whole
    batches in order, so its evaluated faults are a prefix of the
    shard; the merged [verdicts] list is the concatenation of shard
    prefixes in shard order, every evaluated verdict is identical to
    the scalar run's verdict for that fault, [truncated] is the first
    shard's truncation reason in shard order (so [Some] iff any shard
    was truncated), and [effective]/[skipped] count evaluated and
    unevaluated effective faults across all shards. With an unlimited
    budget the sharded report equals the sequential one exactly.

    Lane encoding: lane [l] of a batch is fault [l] of the fault array
    passed to {!BACKEND.start}; a lane set has lane [l] as a member
    when bit [l] is set. For the native-[int] representation bit 62
    (the sign bit of a 63-bit OCaml [int]) is an ordinary lane — all
    lane-set operations are bitwise. *)

module Budget = Simcov_util.Budget
module Lanes = Simcov_util.Lanes

(** {1 Verdicts and step events} *)

type verdict = {
  detected : bool;
  excited : bool;
  detect_step : int option;  (** first step (0-based) with an observable difference *)
  excite_step : int option;  (** first step the golden run traverses the fault site *)
}

type 'l lane_event = {
  excited : 'l;  (** lane set whose fault site the golden run traversed this step *)
  detected : 'l;  (** lane set with an observable difference this step *)
  halt : bool;
      (** the golden run cannot continue (stimulus invalid for the
          golden model); the batch stops after this event's lane sets
          are folded in *)
}

type event = int lane_event
(** The native-[int] lane-set event of {!BACKEND} backends. *)

(** {1 Backends} *)

(** One fault domain: a golden model type, a fault type, a stimulus
    type, and a batched lockstep simulator — over native-[int] lane
    sets. This is the zero-overhead default; {!BACKEND_W} is the same
    contract over an arbitrary lane representation. *)
module type BACKEND = sig
  type ctx  (** the golden model, possibly pre-tabulated *)

  type fault
  type stim  (** one element of the stimulus word *)

  val name : string
  (** Backend tag recorded in reports (["fsm-fault"], ["stuck-at"], …). *)

  val max_lanes : int
  (** Upper bound on lanes per batch; the driver uses
      [min max_lanes Sys.int_size]. A scalar backend declares [1]. *)

  val effective : ctx -> fault -> bool
  (** Faults that actually change behavior locally; ineffective faults
      count toward [total] only and are never simulated. *)

  type batch
  (** Mutable lockstep state for one batch of faults (golden state plus
      per-lane mutant state). *)

  val start : ctx -> fault array -> batch
  (** Begin a batch at reset. The array has at most
      [min max_lanes Sys.int_size] entries, all effective. *)

  val step : batch -> active:int -> stim -> event
  (** Advance the batch by one stimulus element. [active] is the lane
      set still undetected; lanes outside it need not be simulated
      precisely (the driver masks the returned lane sets with
      [active]). *)
end

(** The same backend contract over an explicit lane representation
    [L] : one batch carries up to [min max_lanes L.width] mutants.
    Instantiate [L] with {!Simcov_util.Lanes.Wide} for 256/512/1024
    lanes per golden pass. *)
module type BACKEND_W = sig
  module L : Lanes.S

  type ctx
  type fault
  type stim

  val name : string
  val max_lanes : int
  val effective : ctx -> fault -> bool

  type batch

  val start : ctx -> fault array -> batch
  val step : batch -> active:L.t -> stim -> L.t lane_event
end

(** {1 Reports} *)

type 'f report = {
  backend : string;
  total : int;  (** faults submitted, including ineffective ones *)
  effective : int;  (** effective faults actually evaluated *)
  excited : int;
  detected : int;
  missed : 'f list;  (** effective, excited, yet undetected *)
  skipped : int;  (** effective faults left unevaluated by truncation *)
  truncated : Budget.resource option;
      (** [Some r] when the budget ran out mid-campaign; the counters
          then describe the evaluated shard prefixes of the fault list *)
}

val coverage_pct : 'f report -> float
(** [100 * detected / effective] (100.0 when no effective fault was
    evaluated). *)

val pp_report : Format.formatter -> 'f report -> unit

val to_json :
  ?fault:('f -> Simcov_util.Json.t) ->
  ?extra:(string * Simcov_util.Json.t) list ->
  'f report ->
  Simcov_util.Json.t
(** Render as the [simcov-campaign/1] schema: an object with [schema],
    [backend], [total], [effective], [excited], [detected], [missed]
    (count), [skipped], [coverage_pct] and [truncated]
    ([null] or the resource name). When [fault] is given, the missed
    faults themselves are listed under [missed_faults]; [extra] fields
    are appended verbatim. *)

type progress = {
  batch : int;  (** 0-based index of the batch just finished; under
                    sharding, a completion-order sequence number *)
  batches : int;
  faults_done : int;  (** effective faults evaluated so far *)
  faults_total : int;  (** effective faults in the campaign *)
  detected_so_far : int;
  sim_steps : int;  (** lockstep steps executed so far (all batches) *)
  elapsed_s : float;
}

type 'f outcome = {
  report : 'f report;
  verdicts : ('f * verdict) list;
      (** per-fault verdicts for the evaluated effective faults, in
          fault-list order (shard-prefix order under truncation) *)
}

(** {1 Lane-set helpers (for backends)} *)

val ones : int -> int
(** [ones n] has the low [n] bits set ([0 <= n <= Sys.int_size]). *)

val iter_bits : int -> (int -> unit) -> unit
(** Apply the function to each set bit's index, ascending. *)

val shard_ranges : n:int -> jobs:int -> (int * int) array
(** The contiguous balanced shard decomposition used by [run ~jobs]:
    [(offset, length)] per shard, covering [0..n-1] in order with
    [min jobs (max n 1)] shards of near-equal length (the first
    [n mod jobs] shards get one extra element). Exposed so tests can
    state the merge contract exactly. *)

(** {1 The drivers} *)

module Make_wide (B : BACKEND_W) : sig
  val run :
    ?budget:Budget.t ->
    ?jobs:int ->
    ?on_batch:(progress -> unit) ->
    B.ctx ->
    B.fault list ->
    B.stim list ->
    B.fault outcome
  (** Run the campaign: filter effective faults, batch them
      [min B.max_lanes B.L.width] to a word, and lockstep-simulate
      each batch over the stimulus word, recording per-lane excitation
      and detection (a lane's simulation stops at its first detection;
      a batch stops when every lane is detected or the backend halts).
      One budget step is consumed per batch; when the budget is
      exhausted the remaining batches are skipped and the report is
      tagged [truncated]. Never raises [Budget_exceeded].

      [jobs > 1] shards the effective faults across that many domains
      (clamped to the fault count), each with a sub-budget from
      {!Budget.split}; reports are merged per the determinism contract
      above and unspent sub-allowances are {!Budget.reclaim}ed. *)
end

module Make (B : BACKEND) : sig
  val run :
    ?budget:Budget.t ->
    ?jobs:int ->
    ?on_batch:(progress -> unit) ->
    B.ctx ->
    B.fault list ->
    B.stim list ->
    B.fault outcome
  (** {!Make_wide} specialized to native-[int] lane sets
      ({!Lanes.Native}): the zero-overhead 63-lane path, and the
      oracle the wide path is tested against. *)
end
