(** Engine-agnostic fault-simulation campaigns.

    Every coverage number in the methodology is produced by the same
    experiment: instantiate a population of faulty variants of a golden
    model, replay a stimulus word against golden and variants in
    lockstep, and classify each fault as effective / excited / detected
    / missed. The three fault domains in this repository — FSM error
    models (Definitions 1–4), netlist stuck-at faults, and the DLX
    pipeline bug catalog — used to run this experiment through three
    disjoint scalar loops. This module factors the experiment itself
    out: a {!BACKEND} describes one fault domain (how to batch mutants
    and what one lockstep step observes) and {!Make} provides the single
    campaign driver, which is

    - {e bit-parallel}: mutants are packed into the lanes of a
      {!Simcov_util.Lanes} set — a native OCaml [int] (63 lanes, the
      default) or a bit-sliced wide set (256/512/1024 lanes via
      {!BACKEND_W} / {!Make_wide}) — so one golden pass over the word
      evaluates a whole batch: the classic parallel-pattern
      fault-simulation trick, freed of the word-size cap;
    - {e domain-parallel}: [run ~jobs:n] splits the effective-fault
      array into [n] contiguous shards, runs them on [Domain.spawn]
      workers with sub-budgets carved by {!Simcov_util.Budget.split},
      and merges the shard reports deterministically (see below);
    - {e budget-aware}: {!Simcov_util.Budget} is checkpointed between
      batches and exhaustion yields a [truncated]-tagged partial report
      (whole batches are evaluated or skipped, never split); the driver
      never raises on exhaustion;
    - {e observable}: a per-batch {!progress} callback carries
      throughput counters for CLI and bench reporting; under sharding
      the shared counters are atomics and the callback is serialized.

    {b Determinism / merge contract.} Shards are contiguous slices of
    the effective-fault array in fault order (a pure function of
    [(n, jobs)]; see {!shard_ranges}). Each shard evaluates whole
    batches in order, so its evaluated faults are a prefix of the
    shard; the merged [verdicts] list is the concatenation of shard
    prefixes in shard order, every evaluated verdict is identical to
    the scalar run's verdict for that fault, [truncated] is the first
    shard's truncation reason in shard order (so [Some] iff any shard
    was truncated), and [effective]/[skipped] count evaluated and
    unevaluated effective faults across all shards. With an unlimited
    budget the sharded report equals the sequential one exactly.

    Lane encoding: lane [l] of a batch is fault [l] of the fault array
    passed to {!BACKEND.start}; a lane set has lane [l] as a member
    when bit [l] is set. For the native-[int] representation bit 62
    (the sign bit of a 63-bit OCaml [int]) is an ordinary lane — all
    lane-set operations are bitwise. *)

module Budget = Simcov_util.Budget
module Lanes = Simcov_util.Lanes

(** {1 Verdicts and step events} *)

type verdict = {
  detected : bool;
  excited : bool;
  detect_step : int option;  (** first step (0-based) with an observable difference *)
  excite_step : int option;  (** first step the golden run traverses the fault site *)
}

type 'l lane_event = {
  excited : 'l;  (** lane set whose fault site the golden run traversed this step *)
  detected : 'l;  (** lane set with an observable difference this step *)
  halt : bool;
      (** the golden run cannot continue (stimulus invalid for the
          golden model); the batch stops after this event's lane sets
          are folded in *)
}

type event = int lane_event
(** The native-[int] lane-set event of {!BACKEND} backends. *)

(** {1 Backends} *)

(** One fault domain: a golden model type, a fault type, a stimulus
    type, and a batched lockstep simulator — over native-[int] lane
    sets. This is the zero-overhead default; {!BACKEND_W} is the same
    contract over an arbitrary lane representation. *)
module type BACKEND = sig
  type ctx  (** the golden model, possibly pre-tabulated *)

  type fault
  type stim  (** one element of the stimulus word *)

  val name : string
  (** Backend tag recorded in reports (["fsm-fault"], ["stuck-at"], …). *)

  val max_lanes : int
  (** Upper bound on lanes per batch; the driver uses
      [min max_lanes Sys.int_size]. A scalar backend declares [1]. *)

  val effective : ctx -> fault -> bool
  (** Faults that actually change behavior locally; ineffective faults
      count toward [total] only and are never simulated. *)

  type batch
  (** Mutable lockstep state for one batch of faults (golden state plus
      per-lane mutant state). *)

  val start : ctx -> fault array -> batch
  (** Begin a batch at reset. The array has at most
      [min max_lanes Sys.int_size] entries, all effective. *)

  val step : batch -> active:int -> stim -> event
  (** Advance the batch by one stimulus element. [active] is the lane
      set still undetected; lanes outside it need not be simulated
      precisely (the driver masks the returned lane sets with
      [active]). *)
end

(** The same backend contract over an explicit lane representation
    [L] : one batch carries up to [min max_lanes L.width] mutants.
    Instantiate [L] with {!Simcov_util.Lanes.Wide} for 256/512/1024
    lanes per golden pass. *)
module type BACKEND_W = sig
  module L : Lanes.S

  type ctx
  type fault
  type stim

  val name : string
  val max_lanes : int
  val effective : ctx -> fault -> bool

  type batch

  val start : ctx -> fault array -> batch
  val step : batch -> active:L.t -> stim -> L.t lane_event
end

(** {1 Reports} *)

type shard_failure = {
  shard : int;  (** index into {!shard_ranges}'s decomposition *)
  faults : int;  (** effective faults the failed shard was assigned *)
  error : string;  (** [Printexc.to_string] of the last attempt's exception *)
}
(** A shard whose worker raised on every attempt (initial run plus
    retries on fresh domains); its faults are counted in [skipped]. *)

type 'f report = {
  backend : string;
  total : int;  (** faults submitted, including ineffective ones *)
  effective : int;  (** effective faults actually evaluated *)
  excited : int;
  detected : int;
  missed : 'f list;  (** effective, excited, yet undetected *)
  skipped : int;  (** effective faults left unevaluated by truncation *)
  truncated : Budget.resource option;
      (** [Some r] when the budget ran out mid-campaign; the counters
          then describe the evaluated shard prefixes of the fault list *)
  shard_failures : shard_failure list;
      (** shards lost to worker faults, in shard order; empty on any
          healthy run (and always on the sequential path, where there
          is no pool to isolate an exception from) *)
}

val coverage_pct : 'f report -> float
(** [100 * detected / effective] (100.0 when no effective fault was
    evaluated). *)

val pp_report : Format.formatter -> 'f report -> unit

val to_json :
  ?fault:('f -> Simcov_util.Json.t) ->
  ?extra:(string * Simcov_util.Json.t) list ->
  'f report ->
  Simcov_util.Json.t
(** Render as the [simcov-campaign/1] schema: an object with [schema],
    [backend], [total], [effective], [excited], [detected], [missed]
    (count), [skipped], [coverage_pct] and [truncated]
    ([null] or the resource name). When [fault] is given, the missed
    faults themselves are listed under [missed_faults]; [extra] fields
    are appended verbatim. *)

type progress = {
  batch : int;  (** 0-based index of the batch just finished; under
                    sharding, a completion-order sequence number *)
  batches : int;
  faults_done : int;  (** effective faults evaluated so far *)
  faults_total : int;  (** effective faults in the campaign *)
  detected_so_far : int;
  sim_steps : int;  (** lockstep steps executed so far (all batches) *)
  elapsed_s : float;
}

val pp_progress : Format.formatter -> progress -> unit
(** One human-readable progress line (no trailing newline) — the
    rendering the CLI writes to stderr. *)

type 'f outcome = {
  report : 'f report;
  verdicts : ('f * verdict) list;
      (** per-fault verdicts for the evaluated effective faults
          (including resumed ones), in fault-list order *)
}

type 'f checkpoint = {
  every : int;
      (** flush after every [every] completed batches (counted across
          all shards); [<= 0] disables periodic flushing *)
  flush : ('f * verdict) list -> unit;
      (** Receives every verdict decided so far — resumed verdicts
          included, so a chain of interrupted runs never loses earlier
          decisions. The list is unordered and may repeat a fault when
          a retried shard re-evaluates a batch; consumers must key by
          fault. Called under the checkpoint lock: keep it quick, and
          never let it raise. *)
}
(** Periodic persistence hook, designed to feed [Covdb.save]: because a
    verdict depends only on [(fault, stimulus word)], a snapshot taken
    at any batch boundary can seed [?resume] of a later run — under any
    [jobs]/lane-width configuration — and that run's final report is
    identical to the uninterrupted one. *)

(** {1 Lane-set helpers (for backends)} *)

val ones : int -> int
(** [ones n] has the low [n] bits set ([0 <= n <= Sys.int_size]). *)

val iter_bits : int -> (int -> unit) -> unit
(** Apply the function to each set bit's index, ascending. *)

val shard_ranges : n:int -> jobs:int -> (int * int) array
(** The contiguous balanced shard decomposition used by [run ~jobs]:
    [(offset, length)] per shard, covering [0..n-1] in order with
    [min jobs (max n 1)] shards of near-equal length (the first
    [n mod jobs] shards get one extra element). Exposed so tests can
    state the merge contract exactly. *)

(** {1 The drivers} *)

module Make_wide (B : BACKEND_W) : sig
  val run :
    ?budget:Budget.t ->
    ?jobs:int ->
    ?max_workers:int ->
    ?on_batch:(progress -> unit) ->
    ?resume:(B.fault -> verdict option) ->
    ?checkpoint:B.fault checkpoint ->
    ?should_stop:(unit -> bool) ->
    ?shard_retries:int ->
    ?retry_backoff_s:float ->
    B.ctx ->
    B.fault list ->
    B.stim list ->
    B.fault outcome
  (** Run the campaign: filter effective faults, batch them
      [min B.max_lanes B.L.width] to a word, and lockstep-simulate
      each batch over the stimulus word, recording per-lane excitation
      and detection (a lane's simulation stops at its first detection;
      a batch stops when every lane is detected or the backend halts).
      One budget step is consumed per batch; when the budget is
      exhausted the remaining batches are skipped and the report is
      tagged [truncated]. Never raises [Budget_exceeded].

      [jobs > 1] shards the effective faults across that many domains
      (clamped to the undecided-fault count), each with a sub-budget
      from {!Budget.split}; reports are merged per the determinism
      contract above and unspent sub-allowances are
      {!Budget.reclaim}ed.

      [max_workers] additionally caps the number of {e concurrently
      running} worker domains (the shard decomposition — and with it
      the report — stays a function of [jobs] alone): a scheduler
      running several campaigns at once hands each a slice of one
      global domain budget this way, so a wide campaign cannot
      oversubscribe the cores other jobs are using. The default is the
      hardware parallelism cap alone.

      {b Crash safety and isolation} (all default off):
      - [resume] retires faults whose verdict a previous run already
        recorded: [Some v] injects [v] verbatim and the fault is never
        simulated, [None] leaves it for this run. Only undecided faults
        are sharded, so resuming changes batching — but not verdicts,
        which depend only on [(fault, word)]; the assembled report
        equals the uninterrupted run's.
      - [checkpoint] flushes cumulative verdicts every [every] batches
        (see {!type-checkpoint}). The driver never flushes at the end
        of the run — the caller persists the final outcome itself,
        where it also knows completeness.
      - [should_stop] is polled before each batch (and before each
        budget spend); once true, every shard stops cleanly at its next
        batch boundary. The report is then partial exactly as under
        truncation, except [truncated] stays [None] — the caller
        (e.g. a SIGINT handler) knows why it stopped.
      - A worker exception aborts only its shard: the shard is retried
        [shard_retries] times, each retry on a freshly spawned domain
        after an exponentially growing backoff starting at
        [retry_backoff_s] (sharing the shard's remaining sub-budget),
        and a shard failing every attempt becomes a {!shard_failure}
        entry, its faults counted in [skipped]. Sequential runs
        ([jobs = 1]) propagate the exception instead. *)
end

module Make (B : BACKEND) : sig
  val run :
    ?budget:Budget.t ->
    ?jobs:int ->
    ?max_workers:int ->
    ?on_batch:(progress -> unit) ->
    ?resume:(B.fault -> verdict option) ->
    ?checkpoint:B.fault checkpoint ->
    ?should_stop:(unit -> bool) ->
    ?shard_retries:int ->
    ?retry_backoff_s:float ->
    B.ctx ->
    B.fault list ->
    B.stim list ->
    B.fault outcome
  (** {!Make_wide} specialized to native-[int] lane sets
      ({!Lanes.Native}): the zero-overhead 63-lane path, and the
      oracle the wide path is tested against. *)
end
