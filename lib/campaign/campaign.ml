module Budget = Simcov_util.Budget
module Json = Simcov_util.Json
module Lanes = Simcov_util.Lanes
module Obs = Simcov_obs.Obs

let c_batches = Obs.counter "campaign.batches"
let c_sim_steps = Obs.counter "campaign.sim_steps"
let c_faults_evaluated = Obs.counter "campaign.faults_evaluated"
let c_shards = Obs.counter "campaign.shards"
let tm_batch = Obs.timer "campaign.batch"
let g_throughput = Obs.gauge "campaign.sim_steps_per_s"
let g_jobs = Obs.gauge "campaign.jobs"
let g_workers = Obs.gauge "campaign.workers"
let g_lanes = Obs.gauge "campaign.lanes"

type verdict = {
  detected : bool;
  excited : bool;
  detect_step : int option;
  excite_step : int option;
}

type 'l lane_event = { excited : 'l; detected : 'l; halt : bool }
type event = int lane_event

module type BACKEND = sig
  type ctx
  type fault
  type stim

  val name : string
  val max_lanes : int
  val effective : ctx -> fault -> bool

  type batch

  val start : ctx -> fault array -> batch
  val step : batch -> active:int -> stim -> event
end

module type BACKEND_W = sig
  module L : Lanes.S

  type ctx
  type fault
  type stim

  val name : string
  val max_lanes : int
  val effective : ctx -> fault -> bool

  type batch

  val start : ctx -> fault array -> batch
  val step : batch -> active:L.t -> stim -> L.t lane_event
end

type 'f report = {
  backend : string;
  total : int;
  effective : int;
  excited : int;
  detected : int;
  missed : 'f list;
  skipped : int;
  truncated : Budget.resource option;
}

let coverage_pct r =
  if r.effective = 0 then 100.0
  else 100.0 *. float_of_int r.detected /. float_of_int r.effective

let pp_report ppf r =
  Format.fprintf ppf
    "faults: %d total, %d effective, %d excited, %d detected (%.1f%%), %d missed"
    r.total r.effective r.excited r.detected (coverage_pct r)
    (List.length r.missed);
  match r.truncated with
  | None -> ()
  | Some res ->
      Format.fprintf ppf " [truncated: out of %s, %d skipped]"
        (Budget.resource_name res) r.skipped

let to_json ?fault ?(extra = []) r =
  let base =
    [
      ("schema", Json.String "simcov-campaign/1");
      ("backend", Json.String r.backend);
      ("total", Json.Int r.total);
      ("effective", Json.Int r.effective);
      ("excited", Json.Int r.excited);
      ("detected", Json.Int r.detected);
      ("missed", Json.Int (List.length r.missed));
      ("skipped", Json.Int r.skipped);
      ("coverage_pct", Json.Float (coverage_pct r));
      ( "truncated",
        match r.truncated with
        | None -> Json.Null
        | Some res -> Json.String (Budget.resource_name res) );
    ]
  in
  let missed_faults =
    match fault with
    | None -> []
    | Some f -> [ ("missed_faults", Json.List (List.map f r.missed)) ]
  in
  Json.Obj (base @ missed_faults @ extra)

type progress = {
  batch : int;
  batches : int;
  faults_done : int;
  faults_total : int;
  detected_so_far : int;
  sim_steps : int;
  elapsed_s : float;
}

type 'f outcome = { report : 'f report; verdicts : ('f * verdict) list }

let ones n = if n >= Sys.int_size then -1 else (1 lsl n) - 1

let iter_bits m f = Simcov_util.Lanes.iter_word 0 m f

(* Contiguous balanced shard ranges: [shard_ranges ~n ~jobs] covers
   [0..n-1] with [min jobs (max n 1)] ranges of near-equal length (the
   first [n mod jobs] ranges get one extra fault), in fault order. The
   decomposition is a pure function of [n] and [jobs], which is what
   makes sharded reports deterministic and testable. *)
let shard_ranges ~n ~jobs =
  let jobs = max 1 (min jobs (max n 1)) in
  let base = n / jobs and extra = n mod jobs in
  Array.init jobs (fun i ->
      let len = base + if i < extra then 1 else 0 in
      let off = (i * base) + min i extra in
      (off, len))

(* consume one budget step without letting exhaustion escape as an
   exception: a campaign degrades, it does not throw *)
let spend budget =
  match Budget.exceeded budget with
  | Some _ as r -> r
  | None -> ( try Budget.step budget; None with Budget.Budget_exceeded r -> Some r)

module Make_wide (B : BACKEND_W) = struct
  module L = B.L

  exception Stop_batch
  exception Stop_run

  (* Per-shard accumulator: everything a worker domain mutates is
     confined to its own [shard_acc]; the parent merges after join. *)
  type shard_acc = {
    mutable a_excited : int;
    mutable a_detected : int;
    mutable a_missed : B.fault list; (* reversed *)
    mutable a_verdicts : (B.fault * verdict) list; (* reversed *)
    mutable a_evaluated : int;
    mutable a_steps : int;
    mutable a_truncated : Budget.resource option;
  }

  (* The lockstep batch loop over one contiguous slice of the effective
     fault array. [notify] fires after each completed batch with the
     shard-local batch index/total and that batch's increments; the
     caller decides whether those feed a global progress callback
     directly (sequential run) or shared atomics (sharded run). *)
  let run_shard ~budget ~notify ctx (eff : B.fault array) (stims : B.stim array)
      =
    let n = Array.length eff in
    let width = max 1 (min B.max_lanes L.width) in
    let batches = if n = 0 then 0 else ((n - 1) / width) + 1 in
    let acc =
      {
        a_excited = 0;
        a_detected = 0;
        a_missed = [];
        a_verdicts = [];
        a_evaluated = 0;
        a_steps = 0;
        a_truncated = None;
      }
    in
    (try
       for bi = 0 to batches - 1 do
         (match spend budget with
         | Some res ->
             acc.a_truncated <- Some res;
             raise Stop_run
         | None -> ());
         Obs.span tm_batch
           ~fields:(fun () ->
             [
               ("backend", Json.String B.name);
               ("batch", Json.Int bi);
               ("detected", Json.Int acc.a_detected);
               ("sim_steps", Json.Int acc.a_steps);
             ])
         @@ fun () ->
         Obs.incr c_batches;
         let lo = bi * width in
         let bw = min width (n - lo) in
         let sub = Array.sub eff lo bw in
         let batch = B.start ctx sub in
         let exc_step = Array.make bw (-1) and det_step = Array.make bw (-1) in
         let active = ref (L.ones bw) in
         (* [live] mirrors the cardinality of [active]: retirement is an
            integer compare per step instead of an emptiness scan of the
            lane set *)
         let live = ref bw in
         let batch_steps = ref 0 in
         (try
            Array.iteri
              (fun step stim ->
                let ev = B.step batch ~active:!active stim in
                incr batch_steps;
                Obs.incr c_sim_steps;
                L.iter2_inter ev.excited !active (fun l ->
                    if exc_step.(l) < 0 then exc_step.(l) <- step);
                let det_n = ref 0 in
                L.iter2_inter ev.detected !active (fun l ->
                    det_step.(l) <- step;
                    Stdlib.incr det_n);
                if !det_n > 0 then begin
                  (* diff against the raw event set: lanes already
                     retired are clear in [active], so this equals
                     removing exactly the newly detected ones *)
                  active := L.diff !active ev.detected;
                  live := !live - !det_n
                end;
                if ev.halt || !live = 0 then raise Stop_batch)
              stims
          with Stop_batch -> ());
         acc.a_steps <- acc.a_steps + !batch_steps;
         let batch_det = ref 0 in
         for l = 0 to bw - 1 do
           let v =
             {
               detected = det_step.(l) >= 0;
               excited = exc_step.(l) >= 0;
               detect_step = (if det_step.(l) >= 0 then Some det_step.(l) else None);
               excite_step = (if exc_step.(l) >= 0 then Some exc_step.(l) else None);
             }
           in
           if v.excited then acc.a_excited <- acc.a_excited + 1;
           if v.detected then begin
             acc.a_detected <- acc.a_detected + 1;
             Stdlib.incr batch_det
           end
           else if v.excited then acc.a_missed <- sub.(l) :: acc.a_missed;
           acc.a_verdicts <- (sub.(l), v) :: acc.a_verdicts
         done;
         acc.a_evaluated <- lo + bw;
         Obs.add c_faults_evaluated bw;
         notify acc ~batch:bi ~batches ~batch_faults:bw ~batch_det:!batch_det
           ~batch_steps:!batch_steps
       done
     with Stop_run -> ());
    acc

  let run ?(budget = Budget.unlimited) ?(jobs = 1) ?on_batch ctx faults word =
    let t0 = Unix.gettimeofday () in
    let total = List.length faults in
    let eff = Array.of_list (List.filter (B.effective ctx) faults) in
    let n = Array.length eff in
    let stims = Array.of_list word in
    let jobs = max 1 (min jobs (max n 1)) in
    Obs.set g_jobs jobs;
    Obs.set g_lanes (max 1 (min B.max_lanes L.width));
    let report_of ~excited ~detected ~missed ~verdicts ~evaluated ~truncated =
      let report =
        {
          backend = B.name;
          total;
          effective = evaluated;
          excited;
          detected;
          missed;
          skipped = n - evaluated;
          truncated;
        }
      in
      { report; verdicts }
    in
    let finish sim_steps =
      let elapsed = Unix.gettimeofday () -. t0 in
      if elapsed > 1e-9 then
        Obs.set g_throughput (int_of_float (float_of_int sim_steps /. elapsed))
    in
    if jobs = 1 then begin
      (* sequential path: identical batch loop, progress reported with
         global = shard-local indices *)
      let notify acc ~batch ~batches ~batch_faults:_ ~batch_det:_
          ~batch_steps:_ =
        match on_batch with
        | None -> ()
        | Some f ->
            f
              {
                batch;
                batches;
                faults_done = acc.a_evaluated;
                faults_total = n;
                detected_so_far = acc.a_detected;
                sim_steps = acc.a_steps;
                elapsed_s = Unix.gettimeofday () -. t0;
              }
      in
      let acc = run_shard ~budget ~notify ctx eff stims in
      finish acc.a_steps;
      report_of ~excited:acc.a_excited ~detected:acc.a_detected
        ~missed:(List.rev acc.a_missed)
        ~verdicts:(List.rev acc.a_verdicts)
        ~evaluated:acc.a_evaluated ~truncated:acc.a_truncated
    end
    else begin
      let ranges = shard_ranges ~n ~jobs in
      let width = max 1 (min B.max_lanes L.width) in
      let batches_total =
        Array.fold_left
          (fun s (_, len) -> s + if len = 0 then 0 else ((len - 1) / width) + 1)
          0 ranges
      in
      let sub_budgets = Budget.split budget ~n:jobs in
      (* shared, race-free progress state; the [on_batch] callback
         itself is serialized on a mutex *)
      let batches_done = Atomic.make 0 in
      let faults_done = Atomic.make 0 in
      let det_sum = Atomic.make 0 in
      let steps_sum = Atomic.make 0 in
      let progress_lock = Mutex.create () in
      let notify _ ~batch:_ ~batches:_ ~batch_faults ~batch_det ~batch_steps =
        let b = Atomic.fetch_and_add batches_done 1 in
        let fd = batch_faults + Atomic.fetch_and_add faults_done batch_faults in
        let det = batch_det + Atomic.fetch_and_add det_sum batch_det in
        let st = batch_steps + Atomic.fetch_and_add steps_sum batch_steps in
        match on_batch with
        | None -> ()
        | Some f ->
            Mutex.lock progress_lock;
            Fun.protect
              ~finally:(fun () -> Mutex.unlock progress_lock)
              (fun () ->
                f
                  {
                    batch = b;
                    batches = batches_total;
                    faults_done = fd;
                    faults_total = n;
                    detected_so_far = det;
                    sim_steps = st;
                    elapsed_s = Unix.gettimeofday () -. t0;
                  })
      in
      let run_one i =
        let off, len = ranges.(i) in
        let slice = Array.sub eff off len in
        Obs.incr c_shards;
        run_shard ~budget:sub_budgets.(i) ~notify ctx slice stims
      in
      (* [jobs] fixes the shard decomposition (and with it the report),
         while the number of concurrently running domains is capped at
         the hardware parallelism: shards are independent, so a worker
         pool draining them in any interleaving produces the same accs,
         and oversubscribing domains on too few cores only buys
         stop-the-world handshake churn. Each [accs] slot is written by
         exactly one claimant, and the joins order those writes before
         the merge below. *)
      let workers =
        min jobs (max 1 (Domain.recommended_domain_count ()))
      in
      Obs.set g_workers workers;
      let accs = Array.make jobs None in
      let next = Atomic.make 0 in
      let drain () =
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < jobs then begin
            accs.(i) <- Some (run_one i);
            loop ()
          end
        in
        loop ()
      in
      let domains =
        Array.init (workers - 1) (fun _ -> Domain.spawn drain)
      in
      drain ();
      Array.iter Domain.join domains;
      let accs = Array.map Option.get accs in
      Array.iter (Budget.reclaim budget) sub_budgets;
      (* deterministic merge: shard order = fault order, each shard's
         evaluated faults are a prefix of that shard *)
      let sum f = Array.fold_left (fun s a -> s + f a) 0 accs in
      let truncated =
        Array.fold_left
          (fun t a -> if t <> None then t else a.a_truncated)
          None accs
      in
      finish (sum (fun a -> a.a_steps));
      report_of
        ~excited:(sum (fun a -> a.a_excited))
        ~detected:(sum (fun a -> a.a_detected))
        ~missed:
          (List.concat_map (fun a -> List.rev a.a_missed) (Array.to_list accs))
        ~verdicts:
          (List.concat_map
             (fun a -> List.rev a.a_verdicts)
             (Array.to_list accs))
        ~evaluated:(sum (fun a -> a.a_evaluated))
        ~truncated
    end
end

module Make (B : BACKEND) = struct
  module W = Make_wide (struct
    module L = Lanes.Native
    include B
  end)

  let run = W.run
end
