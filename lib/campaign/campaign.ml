module Budget = Simcov_util.Budget
module Json = Simcov_util.Json
module Obs = Simcov_obs.Obs

let c_batches = Obs.counter "campaign.batches"
let c_sim_steps = Obs.counter "campaign.sim_steps"
let c_faults_evaluated = Obs.counter "campaign.faults_evaluated"
let tm_batch = Obs.timer "campaign.batch"
let g_throughput = Obs.gauge "campaign.sim_steps_per_s"

type verdict = {
  detected : bool;
  excited : bool;
  detect_step : int option;
  excite_step : int option;
}

type event = { excited : int; detected : int; halt : bool }

module type BACKEND = sig
  type ctx
  type fault
  type stim

  val name : string
  val max_lanes : int
  val effective : ctx -> fault -> bool

  type batch

  val start : ctx -> fault array -> batch
  val step : batch -> active:int -> stim -> event
end

type 'f report = {
  backend : string;
  total : int;
  effective : int;
  excited : int;
  detected : int;
  missed : 'f list;
  skipped : int;
  truncated : Budget.resource option;
}

let coverage_pct r =
  if r.effective = 0 then 100.0
  else 100.0 *. float_of_int r.detected /. float_of_int r.effective

let pp_report ppf r =
  Format.fprintf ppf
    "faults: %d total, %d effective, %d excited, %d detected (%.1f%%), %d missed"
    r.total r.effective r.excited r.detected (coverage_pct r)
    (List.length r.missed);
  match r.truncated with
  | None -> ()
  | Some res ->
      Format.fprintf ppf " [truncated: out of %s, %d skipped]"
        (Budget.resource_name res) r.skipped

let to_json ?fault ?(extra = []) r =
  let base =
    [
      ("schema", Json.String "simcov-campaign/1");
      ("backend", Json.String r.backend);
      ("total", Json.Int r.total);
      ("effective", Json.Int r.effective);
      ("excited", Json.Int r.excited);
      ("detected", Json.Int r.detected);
      ("missed", Json.Int (List.length r.missed));
      ("skipped", Json.Int r.skipped);
      ("coverage_pct", Json.Float (coverage_pct r));
      ( "truncated",
        match r.truncated with
        | None -> Json.Null
        | Some res -> Json.String (Budget.resource_name res) );
    ]
  in
  let missed_faults =
    match fault with
    | None -> []
    | Some f -> [ ("missed_faults", Json.List (List.map f r.missed)) ]
  in
  Json.Obj (base @ missed_faults @ extra)

type progress = {
  batch : int;
  batches : int;
  faults_done : int;
  faults_total : int;
  detected_so_far : int;
  sim_steps : int;
  elapsed_s : float;
}

type 'f outcome = { report : 'f report; verdicts : ('f * verdict) list }

let ones n = if n >= Sys.int_size then -1 else (1 lsl n) - 1

let iter_bits m f =
  let m = ref m and i = ref 0 in
  while !m <> 0 do
    if !m land 1 = 1 then f !i;
    m := !m lsr 1;
    incr i
  done

(* consume one budget step without letting exhaustion escape as an
   exception: a campaign degrades, it does not throw *)
let spend budget =
  match Budget.exceeded budget with
  | Some _ as r -> r
  | None -> ( try Budget.step budget; None with Budget.Budget_exceeded r -> Some r)

module Make (B : BACKEND) = struct
  exception Stop_batch
  exception Stop_run

  let run ?(budget = Budget.unlimited) ?on_batch ctx faults word =
    let t0 = Unix.gettimeofday () in
    let total = List.length faults in
    let eff = Array.of_list (List.filter (B.effective ctx) faults) in
    let n = Array.length eff in
    let width = max 1 (min B.max_lanes Sys.int_size) in
    let batches = if n = 0 then 0 else ((n - 1) / width) + 1 in
    let stims = Array.of_list word in
    let excited = ref 0 and detected = ref 0 in
    let missed = ref [] and verdicts = ref [] in
    let sim_steps = ref 0 in
    let truncated = ref None in
    let evaluated = ref 0 in
    (try
       for bi = 0 to batches - 1 do
         (match spend budget with
         | Some res ->
             truncated := Some res;
             raise Stop_run
         | None -> ());
         Obs.span tm_batch
           ~fields:(fun () ->
             [
               ("backend", Json.String B.name);
               ("batch", Json.Int bi);
               ("detected", Json.Int !detected);
               ("sim_steps", Json.Int !sim_steps);
             ])
         @@ fun () ->
         Obs.incr c_batches;
         let lo = bi * width in
         let bw = min width (n - lo) in
         let sub = Array.sub eff lo bw in
         let batch = B.start ctx sub in
         let exc_step = Array.make bw (-1) and det_step = Array.make bw (-1) in
         let active = ref (ones bw) in
         (try
            Array.iteri
              (fun step stim ->
                if !active = 0 then raise Stop_batch;
                let ev = B.step batch ~active:!active stim in
                incr sim_steps;
                Obs.incr c_sim_steps;
                iter_bits (ev.excited land !active) (fun l ->
                    if exc_step.(l) < 0 then exc_step.(l) <- step);
                let newly_det = ev.detected land !active in
                iter_bits newly_det (fun l -> det_step.(l) <- step);
                active := !active land lnot newly_det;
                if ev.halt then raise Stop_batch)
              stims
          with Stop_batch -> ());
         for l = 0 to bw - 1 do
           let v =
             {
               detected = det_step.(l) >= 0;
               excited = exc_step.(l) >= 0;
               detect_step = (if det_step.(l) >= 0 then Some det_step.(l) else None);
               excite_step = (if exc_step.(l) >= 0 then Some exc_step.(l) else None);
             }
           in
           if v.excited then incr excited;
           if v.detected then incr detected
           else if v.excited then missed := sub.(l) :: !missed;
           verdicts := (sub.(l), v) :: !verdicts
         done;
         evaluated := lo + bw;
         Obs.add c_faults_evaluated bw;
         match on_batch with
         | None -> ()
         | Some f ->
             f
               {
                 batch = bi;
                 batches;
                 faults_done = !evaluated;
                 faults_total = n;
                 detected_so_far = !detected;
                 sim_steps = !sim_steps;
                 elapsed_s = Unix.gettimeofday () -. t0;
               }
       done
     with Stop_run -> ());
    let elapsed = Unix.gettimeofday () -. t0 in
    if elapsed > 1e-9 then
      Obs.set g_throughput
        (int_of_float (float_of_int !sim_steps /. elapsed));
    let report =
      {
        backend = B.name;
        total;
        effective = !evaluated;
        excited = !excited;
        detected = !detected;
        missed = List.rev !missed;
        skipped = n - !evaluated;
        truncated = !truncated;
      }
    in
    { report; verdicts = List.rev !verdicts }
end
