module Budget = Simcov_util.Budget
module Json = Simcov_util.Json
module Lanes = Simcov_util.Lanes
module Obs = Simcov_obs.Obs

let c_batches = Obs.counter "campaign.batches"
let c_sim_steps = Obs.counter "campaign.sim_steps"
let c_faults_evaluated = Obs.counter "campaign.faults_evaluated"
let c_shards = Obs.counter "campaign.shards"
let c_checkpoints = Obs.counter "campaign.checkpoints"
let c_resumed = Obs.counter "campaign.resumed_faults"
let c_shard_retries = Obs.counter "campaign.shard_retries"
let c_shard_failures = Obs.counter "campaign.shard_failures"
let tm_batch = Obs.timer "campaign.batch"
let g_throughput = Obs.gauge "campaign.sim_steps_per_s"
let g_jobs = Obs.gauge "campaign.jobs"
let g_workers = Obs.gauge "campaign.workers"
let g_lanes = Obs.gauge "campaign.lanes"

type verdict = {
  detected : bool;
  excited : bool;
  detect_step : int option;
  excite_step : int option;
}

type 'l lane_event = { excited : 'l; detected : 'l; halt : bool }
type event = int lane_event

module type BACKEND = sig
  type ctx
  type fault
  type stim

  val name : string
  val max_lanes : int
  val effective : ctx -> fault -> bool

  type batch

  val start : ctx -> fault array -> batch
  val step : batch -> active:int -> stim -> event
end

module type BACKEND_W = sig
  module L : Lanes.S

  type ctx
  type fault
  type stim

  val name : string
  val max_lanes : int
  val effective : ctx -> fault -> bool

  type batch

  val start : ctx -> fault array -> batch
  val step : batch -> active:L.t -> stim -> L.t lane_event
end

type shard_failure = { shard : int; faults : int; error : string }

type 'f report = {
  backend : string;
  total : int;
  effective : int;
  excited : int;
  detected : int;
  missed : 'f list;
  skipped : int;
  truncated : Budget.resource option;
  shard_failures : shard_failure list;
}

let coverage_pct r =
  if r.effective = 0 then 100.0
  else 100.0 *. float_of_int r.detected /. float_of_int r.effective

let pp_report ppf r =
  Format.fprintf ppf
    "faults: %d total, %d effective, %d excited, %d detected (%.1f%%), %d missed"
    r.total r.effective r.excited r.detected (coverage_pct r)
    (List.length r.missed);
  (match r.truncated with
  | None -> ()
  | Some res ->
      Format.fprintf ppf " [truncated: out of %s, %d skipped]"
        (Budget.resource_name res) r.skipped);
  match r.shard_failures with
  | [] -> ()
  | fs ->
      Format.fprintf ppf " [%d failed shard%s: %s]" (List.length fs)
        (if List.length fs = 1 then "" else "s")
        (String.concat "; "
           (List.map
              (fun f -> Printf.sprintf "shard %d (%d faults): %s" f.shard f.faults f.error)
              fs))

let to_json ?fault ?(extra = []) r =
  let base =
    [
      ("schema", Json.String "simcov-campaign/1");
      ("backend", Json.String r.backend);
      ("total", Json.Int r.total);
      ("effective", Json.Int r.effective);
      ("excited", Json.Int r.excited);
      ("detected", Json.Int r.detected);
      ("missed", Json.Int (List.length r.missed));
      ("skipped", Json.Int r.skipped);
      ("coverage_pct", Json.Float (coverage_pct r));
      ( "truncated",
        match r.truncated with
        | None -> Json.Null
        | Some res -> Json.String (Budget.resource_name res) );
      ( "shard_failures",
        Json.List
          (List.map
             (fun f ->
               Json.Obj
                 [
                   ("shard", Json.Int f.shard);
                   ("faults", Json.Int f.faults);
                   ("error", Json.String f.error);
                 ])
             r.shard_failures) );
    ]
  in
  let missed_faults =
    match fault with
    | None -> []
    | Some f -> [ ("missed_faults", Json.List (List.map f r.missed)) ]
  in
  Json.Obj (base @ missed_faults @ extra)

type progress = {
  batch : int;
  batches : int;
  faults_done : int;
  faults_total : int;
  detected_so_far : int;
  sim_steps : int;
  elapsed_s : float;
}

let pp_progress ppf p =
  Format.fprintf ppf "batch %d/%d: %d/%d faults, %d detected, %d sim steps, %.2fs"
    (p.batch + 1) p.batches p.faults_done p.faults_total p.detected_so_far
    p.sim_steps p.elapsed_s

type 'f outcome = { report : 'f report; verdicts : ('f * verdict) list }

(* Periodic persistence: [flush] receives every verdict decided so far
   (including resumed ones) after each [every] completed batches. The
   list is unordered and may contain duplicate faults when a retried
   shard re-evaluates a batch — consumers key by fault. *)
type 'f checkpoint = { every : int; flush : ('f * verdict) list -> unit }

let ones n = if n >= Sys.int_size then -1 else (1 lsl n) - 1

let iter_bits m f = Simcov_util.Lanes.iter_word 0 m f

(* Contiguous balanced shard ranges: [shard_ranges ~n ~jobs] covers
   [0..n-1] with [min jobs (max n 1)] ranges of near-equal length (the
   first [n mod jobs] ranges get one extra fault), in fault order. The
   decomposition is a pure function of [n] and [jobs], which is what
   makes sharded reports deterministic and testable. *)
let shard_ranges ~n ~jobs =
  let jobs = max 1 (min jobs (max n 1)) in
  let base = n / jobs and extra = n mod jobs in
  Array.init jobs (fun i ->
      let len = base + if i < extra then 1 else 0 in
      let off = (i * base) + min i extra in
      (off, len))

(* consume one budget step without letting exhaustion escape as an
   exception: a campaign degrades, it does not throw *)
let spend budget =
  match Budget.exceeded budget with
  | Some _ as r -> r
  | None -> ( try Budget.step budget; None with Budget.Budget_exceeded r -> Some r)

module Make_wide (B : BACKEND_W) = struct
  module L = B.L

  exception Stop_batch
  exception Stop_run

  (* Per-shard accumulator: everything a worker domain mutates is
     confined to its own [shard_acc]; the parent merges after join. *)
  type shard_acc = {
    mutable a_excited : int;
    mutable a_detected : int;
    mutable a_missed : B.fault list; (* reversed *)
    mutable a_verdicts : (B.fault * verdict) list; (* reversed *)
    mutable a_evaluated : int;
    mutable a_steps : int;
    mutable a_truncated : Budget.resource option;
  }

  (* The lockstep batch loop over one contiguous slice of the effective
     fault array. [notify] fires after each completed batch with the
     shard-local batch index/total and that batch's increments; the
     caller decides whether those feed a global progress callback
     directly (sequential run) or shared atomics (sharded run). [sink]
     receives each completed batch's verdicts (checkpoint accumulation)
     and [stop] is polled at every batch boundary (cooperative
     interruption: the shard winds down exactly like budget exhaustion
     but leaves [a_truncated] unset). *)
  let run_shard ~budget ~notify ~stop ~sink ctx (eff : B.fault array)
      (stims : B.stim array) =
    let n = Array.length eff in
    let width = max 1 (min B.max_lanes L.width) in
    let batches = if n = 0 then 0 else ((n - 1) / width) + 1 in
    let acc =
      {
        a_excited = 0;
        a_detected = 0;
        a_missed = [];
        a_verdicts = [];
        a_evaluated = 0;
        a_steps = 0;
        a_truncated = None;
      }
    in
    (try
       for bi = 0 to batches - 1 do
         if stop () then raise Stop_run;
         (match spend budget with
         | Some res ->
             acc.a_truncated <- Some res;
             raise Stop_run
         | None -> ());
         Obs.span tm_batch
           ~fields:(fun () ->
             [
               ("backend", Json.String B.name);
               ("batch", Json.Int bi);
               ("detected", Json.Int acc.a_detected);
               ("sim_steps", Json.Int acc.a_steps);
             ])
         @@ fun () ->
         Obs.incr c_batches;
         let lo = bi * width in
         let bw = min width (n - lo) in
         let sub = Array.sub eff lo bw in
         let batch = B.start ctx sub in
         let exc_step = Array.make bw (-1) and det_step = Array.make bw (-1) in
         let active = ref (L.ones bw) in
         (* [live] mirrors the cardinality of [active]: retirement is an
            integer compare per step instead of an emptiness scan of the
            lane set *)
         let live = ref bw in
         let batch_steps = ref 0 in
         (try
            Array.iteri
              (fun step stim ->
                let ev = B.step batch ~active:!active stim in
                incr batch_steps;
                Obs.incr c_sim_steps;
                L.iter2_inter ev.excited !active (fun l ->
                    if exc_step.(l) < 0 then exc_step.(l) <- step);
                let det_n = ref 0 in
                L.iter2_inter ev.detected !active (fun l ->
                    det_step.(l) <- step;
                    Stdlib.incr det_n);
                if !det_n > 0 then begin
                  (* diff against the raw event set: lanes already
                     retired are clear in [active], so this equals
                     removing exactly the newly detected ones *)
                  active := L.diff !active ev.detected;
                  live := !live - !det_n
                end;
                if ev.halt || !live = 0 then raise Stop_batch)
              stims
          with Stop_batch -> ());
         acc.a_steps <- acc.a_steps + !batch_steps;
         let batch_det = ref 0 in
         let bverd = ref [] in
         for l = 0 to bw - 1 do
           let v =
             {
               detected = det_step.(l) >= 0;
               excited = exc_step.(l) >= 0;
               detect_step = (if det_step.(l) >= 0 then Some det_step.(l) else None);
               excite_step = (if exc_step.(l) >= 0 then Some exc_step.(l) else None);
             }
           in
           if v.excited then acc.a_excited <- acc.a_excited + 1;
           if v.detected then begin
             acc.a_detected <- acc.a_detected + 1;
             Stdlib.incr batch_det
           end
           else if v.excited then acc.a_missed <- sub.(l) :: acc.a_missed;
           acc.a_verdicts <- (sub.(l), v) :: acc.a_verdicts;
           bverd := (sub.(l), v) :: !bverd
         done;
         acc.a_evaluated <- lo + bw;
         Obs.add c_faults_evaluated bw;
         sink !bverd;
         notify acc ~batch:bi ~batches ~batch_faults:bw ~batch_det:!batch_det
           ~batch_steps:!batch_steps
       done
     with Stop_run -> ());
    acc

  let run ?(budget = Budget.unlimited) ?(jobs = 1) ?(max_workers = max_int)
      ?on_batch ?resume ?checkpoint ?(should_stop = fun () -> false)
      ?(shard_retries = 1) ?(retry_backoff_s = 0.05) ctx faults word =
    let t0 = Unix.gettimeofday () in
    let total = List.length faults in
    let eff = Array.of_list (List.filter (B.effective ctx) faults) in
    let n_eff = Array.length eff in
    let stims = Array.of_list word in
    (* Resumed faults retire before batching: a verdict recorded by an
       earlier (checkpointed) run is injected as-is and only undecided
       faults are simulated. Verdicts are a pure function of
       (fault, word), independent of batching and sharding, so the
       assembled report matches an uninterrupted run exactly. *)
    let pre =
      match resume with
      | None -> Array.make n_eff None
      | Some f -> Array.map f eff
    in
    let n_pre = Array.fold_left (fun c v -> if v = None then c else c + 1) 0 pre in
    if n_pre > 0 then begin
      Obs.add c_resumed n_pre;
      Obs.event "campaign.resume" ~fields:(fun () ->
          [ ("faults", Json.Int n_pre); ("remaining", Json.Int (n_eff - n_pre)) ])
    end;
    let todo_idx = Array.make (n_eff - n_pre) 0 in
    let ti = ref 0 in
    Array.iteri
      (fun i v ->
        if v = None then begin
          todo_idx.(!ti) <- i;
          Stdlib.incr ti
        end)
      pre;
    let todo = Array.map (fun i -> eff.(i)) todo_idx in
    let n = Array.length todo in
    let jobs = max 1 (min jobs (max n 1)) in
    Obs.set g_jobs jobs;
    Obs.set g_lanes (max 1 (min B.max_lanes L.width));
    (* checkpoint accumulation, shared by every shard: each completed
       batch appends its verdicts under the lock, and every [every]
       batches the cumulative list (seeded with the resumed verdicts,
       so a chain of interrupted runs never loses earlier decisions)
       is handed to [flush] *)
    let ck_lock = Mutex.create () in
    let decided =
      ref
        (match checkpoint with
        | None -> []
        | Some _ ->
            let l = ref [] in
            Array.iteri
              (fun i v ->
                match v with Some v -> l := (eff.(i), v) :: !l | None -> ())
              pre;
            !l)
    in
    let ck_batches = ref 0 in
    let sink =
      match checkpoint with
      | None -> fun _ -> ()
      | Some c ->
          fun bvs ->
            Mutex.lock ck_lock;
            Fun.protect
              ~finally:(fun () -> Mutex.unlock ck_lock)
              (fun () ->
                decided := List.rev_append bvs !decided;
                Stdlib.incr ck_batches;
                if c.every > 0 && !ck_batches mod c.every = 0 then begin
                  Obs.incr c_checkpoints;
                  Obs.event "campaign.checkpoint" ~fields:(fun () ->
                      [ ("decided", Json.Int (List.length !decided)) ]);
                  c.flush !decided
                end)
    in
    let ranges = shard_ranges ~n ~jobs in
    let finish results =
      let sim_steps =
        Array.fold_left
          (fun s -> function Ok a -> s + a.a_steps | Error _ -> s)
          0 results
      in
      let elapsed = Unix.gettimeofday () -. t0 in
      if elapsed > 1e-9 then
        Obs.set g_throughput (int_of_float (float_of_int sim_steps /. elapsed))
    in
    (* Deterministic assembly, shared by the sequential and sharded
       paths: verdicts land back at their fault's position in the
       effective-fault order — resumed verdicts at theirs, each Ok
       shard's evaluated prefix at its slice's — and every derived
       count/list is read off that one array. Failed shards leave
       holes, which surface as [skipped] plus a [shard_failures]
       entry. *)
    let assemble (results : (shard_acc, string) result array) =
      let final = Array.copy pre in
      Array.iteri
        (fun s res ->
          match res with
          | Error _ -> ()
          | Ok acc ->
              let off, _ = ranges.(s) in
              List.iteri
                (fun j (_, v) -> final.(todo_idx.(off + j)) <- Some v)
                (List.rev acc.a_verdicts))
        results;
      let excited = ref 0 and detected = ref 0 and evaluated = ref 0 in
      let missed = ref [] and verdicts = ref [] in
      for i = n_eff - 1 downto 0 do
        match final.(i) with
        | None -> ()
        | Some v ->
            Stdlib.incr evaluated;
            if v.excited then Stdlib.incr excited;
            if v.detected then Stdlib.incr detected
            else if v.excited then missed := eff.(i) :: !missed;
            verdicts := (eff.(i), v) :: !verdicts
      done;
      let truncated =
        Array.fold_left
          (fun t res ->
            if t <> None then t
            else match res with Ok a -> a.a_truncated | Error _ -> None)
          None results
      in
      let shard_failures =
        List.rev
          (snd
             (Array.fold_left
                (fun (s, acc) res ->
                  match res with
                  | Ok _ -> (s + 1, acc)
                  | Error error ->
                      (s + 1, { shard = s; faults = snd ranges.(s); error } :: acc))
                (0, []) results))
      in
      finish results;
      {
        report =
          {
            backend = B.name;
            total;
            effective = !evaluated;
            excited = !excited;
            detected = !detected;
            missed = !missed;
            skipped = n_eff - !evaluated;
            truncated;
            shard_failures;
          };
        verdicts = !verdicts;
      }
    in
    if jobs = 1 then begin
      (* sequential path: identical batch loop, progress reported with
         global = shard-local indices, exceptions propagate (there is
         no pool to isolate them from) *)
      let notify acc ~batch ~batches ~batch_faults:_ ~batch_det:_
          ~batch_steps:_ =
        match on_batch with
        | None -> ()
        | Some f ->
            f
              {
                batch;
                batches;
                faults_done = acc.a_evaluated;
                faults_total = n;
                detected_so_far = acc.a_detected;
                sim_steps = acc.a_steps;
                elapsed_s = Unix.gettimeofday () -. t0;
              }
      in
      let acc = run_shard ~budget ~notify ~stop:should_stop ~sink ctx todo stims in
      assemble [| Ok acc |]
    end
    else begin
      let width = max 1 (min B.max_lanes L.width) in
      let batches_total =
        Array.fold_left
          (fun s (_, len) -> s + if len = 0 then 0 else ((len - 1) / width) + 1)
          0 ranges
      in
      let sub_budgets = Budget.split budget ~n:jobs in
      (* shared, race-free progress state; the [on_batch] callback
         itself is serialized on a mutex *)
      let batches_done = Atomic.make 0 in
      let faults_done = Atomic.make 0 in
      let det_sum = Atomic.make 0 in
      let steps_sum = Atomic.make 0 in
      let progress_lock = Mutex.create () in
      let notify _ ~batch:_ ~batches:_ ~batch_faults ~batch_det ~batch_steps =
        let b = Atomic.fetch_and_add batches_done 1 in
        let fd = batch_faults + Atomic.fetch_and_add faults_done batch_faults in
        let det = batch_det + Atomic.fetch_and_add det_sum batch_det in
        let st = batch_steps + Atomic.fetch_and_add steps_sum batch_steps in
        match on_batch with
        | None -> ()
        | Some f ->
            Mutex.lock progress_lock;
            Fun.protect
              ~finally:(fun () -> Mutex.unlock progress_lock)
              (fun () ->
                f
                  {
                    batch = b;
                    batches = batches_total;
                    faults_done = fd;
                    faults_total = n;
                    detected_so_far = det;
                    sim_steps = st;
                    elapsed_s = Unix.gettimeofday () -. t0;
                  })
      in
      let run_one i =
        let off, len = ranges.(i) in
        let slice = Array.sub todo off len in
        Obs.incr c_shards;
        run_shard ~budget:sub_budgets.(i) ~notify ~stop:should_stop ~sink ctx
          slice stims
      in
      (* Worker fault isolation: an exception in one shard must not
         tear down the pool. The failing attempt is retried — each
         retry on a freshly spawned domain (a worker poisoned by the
         failure cannot contaminate it) after an exponentially growing
         backoff, sharing the shard's remaining sub-budget — and a
         shard that exhausts its retries degrades to an [Error] slot
         that the assembly reports as a [shard_failure] instead of
         aborting the campaign. *)
      let attempt i =
        let rec go k backoff first_err =
          let res =
            if k = 0 then
              try Ok (run_one i) with e -> Error (Printexc.to_string e)
            else begin
              Unix.sleepf backoff;
              (* the fresh retry domain starts in the default Obs
                 registry: re-install the campaign's scope so a scoped
                 job's retries keep counting into its own snapshot *)
              let reg = Obs.current () in
              Domain.join
                (Domain.spawn (fun () ->
                     Obs.with_registry reg (fun () ->
                         try Ok (run_one i)
                         with e -> Error (Printexc.to_string e))))
            end
          in
          match res with
          | Ok _ as ok -> ok
          | Error msg ->
              if k >= shard_retries then begin
                Obs.incr c_shard_failures;
                Obs.event "campaign.shard_failure" ~fields:(fun () ->
                    [ ("shard", Json.Int i); ("error", Json.String msg) ]);
                Error
                  (match first_err with
                  | Some f when f <> msg ->
                      msg ^ " (first attempt: " ^ f ^ ")"
                  | _ -> msg)
              end
              else begin
                Obs.incr c_shard_retries;
                Obs.event "campaign.shard_retry" ~fields:(fun () ->
                    [
                      ("shard", Json.Int i);
                      ("attempt", Json.Int (k + 1));
                      ("error", Json.String msg);
                    ]);
                go (k + 1) (backoff *. 2.)
                  (Some (Option.value first_err ~default:msg))
              end
        in
        go 0 retry_backoff_s None
      in
      (* [jobs] fixes the shard decomposition (and with it the report),
         while the number of concurrently running domains is capped at
         the hardware parallelism: shards are independent, so a worker
         pool draining them in any interleaving produces the same accs,
         and oversubscribing domains on too few cores only buys
         stop-the-world handshake churn. Each [results] slot is written
         by exactly one claimant, and the joins order those writes
         before the assembly below. *)
      let workers =
        min jobs (max 1 (min max_workers (Domain.recommended_domain_count ())))
      in
      Obs.set g_workers workers;
      let results = Array.make jobs None in
      let next = Atomic.make 0 in
      let drain () =
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < jobs then begin
            results.(i) <- Some (attempt i);
            loop ()
          end
        in
        loop ()
      in
      (* workers inherit the caller's Obs registry: a scoped job's
         shard metrics must land in that job's snapshot, not in the
         default registry a fresh domain starts in *)
      let reg = Obs.current () in
      let domains =
        Array.init (workers - 1) (fun _ ->
            Domain.spawn (fun () -> Obs.with_registry reg drain))
      in
      drain ();
      Array.iter Domain.join domains;
      let results = Array.map Option.get results in
      Array.iter (Budget.reclaim budget) sub_budgets;
      assemble results
    end
end

module Make (B : BACKEND) = struct
  module W = Make_wide (struct
    module L = Lanes.Native
    include B
  end)

  let run = W.run
end
