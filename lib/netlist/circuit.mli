(** Sequential circuits: registers + combinational logic + primary I/O.

    This is the structural-RTL substitute for the paper's Verilog
    models. Registers carry a [group] tag (e.g. ["fetch"],
    ["interlock"], ["dest_ex"]) so abstraction passes can select the
    state variables a derivation step removes or re-encodes — the
    paper's "abstraction over state variables" (Section 6.1).

    An optional [input_constraint] expression (over inputs and current
    state) encodes which input combinations are valid — the paper's
    "of the 2^25 possible input combinations, only 8228 are valid"
    (Section 7.2). *)

type reg = { name : string; group : string; init : bool; next : Expr.t }
type port = { port_name : string; expr : Expr.t }

type t = {
  name : string;
  input_names : string array;
  regs : reg array;
  outputs : port array;
  input_constraint : Expr.t;  (** [tru] when unconstrained *)
}

val n_inputs : t -> int
val n_regs : t -> int
val n_outputs : t -> int
val gate_count : t -> int
(** Total AST nodes across next-state and output logic. *)

val reg_index : t -> string -> int
(** Index of a register by name. @raise Not_found. *)

val regs_in_group : t -> string -> int list

val groups : t -> string list
(** Distinct group tags in declaration order. *)

(** {1 Simulation} *)

type state = bool array

val initial_state : t -> state

val step : t -> state -> bool array -> state * bool array
(** [step c s inputs] is [(next_state, outputs)].
    @raise Invalid_argument if the input vector violates
    [input_constraint] under [s]. *)

val input_valid : t -> state -> bool array -> bool

val simulate : t -> bool array list -> bool array list
(** Outputs over time from the initial state. *)

(** {1 Structural analysis} *)

val reg_support_closure : t -> int list -> int list
(** Transitive closure of register-to-register dependencies: the
    registers (sorted) whose values can influence the given seed
    registers' next-state logic, including the seeds. *)

val output_cone : t -> int list
(** Registers in the cone of influence of the outputs (fixpoint over
    next-state dependencies). *)

(** {1 Conversion} *)

val to_fsm : ?max_state_bits:int -> t -> Simcov_fsm.Fsm.t
(** Enumerate the circuit as an explicit Mealy machine: states are
    register valuations (packed little-endian), inputs are input
    valuations, outputs are packed output vectors. Input validity
    follows [input_constraint].
    @raise Invalid_argument when the circuit has more than
    [max_state_bits] (default 20) registers or more than 20 inputs. *)

(** {1 Construction DSL} *)

module Build : sig
  type build_error = {
    circuit : string;  (** name passed to {!create} *)
    doubly_assigned : string list;
        (** registers assigned more than once, in offense order *)
    never_assigned : string list;
        (** registers with no next-state function, in declaration order *)
  }

  exception Build_error of build_error

  val build_error_to_string : build_error -> string

  type ctx

  val create : string -> ctx

  val input : ctx -> string -> Expr.t
  val input_vec : ctx -> string -> int -> Expr.Vec.t

  val reg : ctx -> ?group:string -> ?init:bool -> string -> Expr.t
  (** Declare a register, returning its current-value expression; the
      next-state function must be assigned later with {!assign}. *)

  val reg_vec : ctx -> ?group:string -> ?init:int -> string -> int -> Expr.Vec.t

  val assign : ctx -> Expr.t -> Expr.t -> unit
  (** [assign ctx r next] sets the next-state function of the register
      whose current-value expression is [r] (must be a [Reg] leaf
      returned by {!reg}/{!reg_vec}). Assigning a register twice is
      recorded (the first assignment stands) and reported by
      {!finish}, so one pass surfaces every offender. *)

  val assign_vec : ctx -> Expr.Vec.t -> Expr.Vec.t -> unit

  val output : ctx -> string -> Expr.t -> unit
  val output_vec : ctx -> string -> Expr.Vec.t -> unit

  val constrain : ctx -> Expr.t -> unit
  (** Conjoin a clause onto the input-validity constraint. *)

  val finish : ctx -> t
  (** @raise Build_error listing {e all} doubly-assigned and
      never-assigned registers at once. *)
end

val pp_stats : Format.formatter -> t -> unit
