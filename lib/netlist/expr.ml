type t =
  | Const of bool
  | Input of int
  | Reg of int
  | Not of t
  | And of t * t
  | Or of t * t
  | Xor of t * t
  | Mux of t * t * t

let tru = Const true
let fls = Const false
let const b = Const b
let input i = Input i
let reg r = Reg r

let ( !! ) = function
  | Const b -> Const (not b)
  | Not e -> e
  | e -> Not e

let ( &&& ) a b =
  match (a, b) with
  | Const false, _ | _, Const false -> Const false
  | Const true, e | e, Const true -> e
  | a, b when a = b -> a
  | a, b -> And (a, b)

let ( ||| ) a b =
  match (a, b) with
  | Const true, _ | _, Const true -> Const true
  | Const false, e | e, Const false -> e
  | a, b when a = b -> a
  | a, b -> Or (a, b)

let ( ^^^ ) a b =
  match (a, b) with
  | Const false, e | e, Const false -> e
  | Const true, e | e, Const true -> ( !! ) e
  | a, b when a = b -> Const false
  | a, b -> Xor (a, b)

let mux sel hi lo =
  match sel with
  | Const true -> hi
  | Const false -> lo
  | _ -> if hi = lo then hi else Mux (sel, hi, lo)

let eq a b = ( !! ) (a ^^^ b)

let conj l = List.fold_left ( &&& ) tru l
let disj l = List.fold_left ( ||| ) fls l

let rec eval ~inputs ~regs = function
  | Const b -> b
  | Input i -> inputs i
  | Reg r -> regs r
  | Not e -> not (eval ~inputs ~regs e)
  | And (a, b) -> eval ~inputs ~regs a && eval ~inputs ~regs b
  | Or (a, b) -> eval ~inputs ~regs a || eval ~inputs ~regs b
  | Xor (a, b) -> eval ~inputs ~regs a <> eval ~inputs ~regs b
  | Mux (s, h, l) -> if eval ~inputs ~regs s then eval ~inputs ~regs h else eval ~inputs ~regs l

(* Lane-parallel evaluation: each int carries one boolean per bit
   lane, so one pass evaluates the expression for every lane at once.
   A Const is broadcast to all lanes; lanes beyond the caller's
   population carry garbage (e.g. from lnot) and must be masked by the
   caller. *)
let rec eval_lanes ~inputs ~regs = function
  | Const b -> if b then -1 else 0
  | Input i -> inputs i
  | Reg r -> regs r
  | Not e -> lnot (eval_lanes ~inputs ~regs e)
  | And (a, b) -> eval_lanes ~inputs ~regs a land eval_lanes ~inputs ~regs b
  | Or (a, b) -> eval_lanes ~inputs ~regs a lor eval_lanes ~inputs ~regs b
  | Xor (a, b) -> eval_lanes ~inputs ~regs a lxor eval_lanes ~inputs ~regs b
  | Mux (s, h, l) ->
      let sv = eval_lanes ~inputs ~regs s in
      (sv land eval_lanes ~inputs ~regs h) lor (lnot sv land eval_lanes ~inputs ~regs l)

(* the same evaluator over an arbitrary lane representation; [compl]
   is width-masked, so (unlike the raw-int version) no caller-side
   cleanup of garbage bits is needed beyond the population mask *)
module Wide_eval (L : Simcov_util.Lanes.S) = struct
  let rec eval ~inputs ~regs = function
    | Const b -> if b then L.full else L.zero
    | Input i -> inputs i
    | Reg r -> regs r
    | Not e -> L.compl (eval ~inputs ~regs e)
    | And (a, b) -> L.inter (eval ~inputs ~regs a) (eval ~inputs ~regs b)
    | Or (a, b) -> L.union (eval ~inputs ~regs a) (eval ~inputs ~regs b)
    | Xor (a, b) -> L.xor (eval ~inputs ~regs a) (eval ~inputs ~regs b)
    | Mux (s, h, l) ->
        let sv = eval ~inputs ~regs s in
        L.union
          (L.inter sv (eval ~inputs ~regs h))
          (L.inter (L.compl sv) (eval ~inputs ~regs l))
end

let rec map_leaves ~input ~reg = function
  | Const b -> Const b
  | Input i -> input i
  | Reg r -> reg r
  | Not e -> ( !! ) (map_leaves ~input ~reg e)
  | And (a, b) -> map_leaves ~input ~reg a &&& map_leaves ~input ~reg b
  | Or (a, b) -> map_leaves ~input ~reg a ||| map_leaves ~input ~reg b
  | Xor (a, b) -> map_leaves ~input ~reg a ^^^ map_leaves ~input ~reg b
  | Mux (s, h, l) ->
      mux (map_leaves ~input ~reg s) (map_leaves ~input ~reg h) (map_leaves ~input ~reg l)

let support e =
  let ins = Hashtbl.create 8 and rgs = Hashtbl.create 8 in
  let rec go = function
    | Const _ -> ()
    | Input i -> Hashtbl.replace ins i ()
    | Reg r -> Hashtbl.replace rgs r ()
    | Not e -> go e
    | And (a, b) | Or (a, b) | Xor (a, b) ->
        go a;
        go b
    | Mux (s, h, l) ->
        go s;
        go h;
        go l
  in
  go e;
  let sorted tbl = Hashtbl.fold (fun k () acc -> k :: acc) tbl [] |> List.sort Int.compare in
  (sorted ins, sorted rgs)

let rec size = function
  | Const _ | Input _ | Reg _ -> 1
  | Not e -> 1 + size e
  | And (a, b) | Or (a, b) | Xor (a, b) -> 1 + size a + size b
  | Mux (s, h, l) -> 1 + size s + size h + size l

module Vec = struct
  type expr_t = t
  type t = expr_t array

  let const ~width v = Array.init width (fun i -> Const ((v lsr i) land 1 = 1))
  let inputs ~first ~width = Array.init width (fun i -> Input (first + i))
  let regs ~first ~width = Array.init width (fun i -> Reg (first + i))

  let eq_const v c =
    conj
      (Array.to_list
         (Array.mapi (fun i b -> if (c lsr i) land 1 = 1 then b else ( !! ) b) v))

  let eq a b =
    assert (Array.length a = Array.length b);
    conj (Array.to_list (Array.map2 (fun x y -> ( !! ) (x ^^^ y)) a b))

  let mux sel hi lo =
    assert (Array.length hi = Array.length lo);
    Array.map2 (fun h l -> mux sel h l) hi lo

  let onehot v =
    (* exactly one bit set: popcount = 1 via pairwise expansion; for
       the small vectors in control logic a quadratic form is fine *)
    let n = Array.length v in
    let terms =
      List.init n (fun i ->
          conj (List.init n (fun j -> if i = j then v.(j) else ( !! ) v.(j))))
    in
    disj terms

  let decode = eq_const

  let eval ~inputs ~regs v =
    let acc = ref 0 in
    Array.iteri (fun i e -> if eval ~inputs ~regs e then acc := !acc lor (1 lsl i)) v;
    !acc
end
