(** Text serialization of circuits.

    A small line-oriented exchange format so derived test models can be
    dumped, diffed, and reloaded (the role the paper's Verilog/BLIF
    files played between VIS and SIS):

    {v
    circuit <name>
    input <name>
    reg <name> <group> <0|1> = <expr>
    output <name> = <expr>
    constraint <expr>
    v}

    Expressions are S-expressions over [(in N)], [(reg N)], [0], [1],
    [(not e)], [(and e e)], [(or e e)], [(xor e e)],
    [(mux c t e)]. Lines starting with [#] are comments. Register and
    input indices refer to declaration order. *)

val to_string : Circuit.t -> string

type error = {
  line : int;  (** 1-based; 0 when no position applies (I/O, internal) *)
  col : int;  (** 1-based column in the raw line; 0 when [line] is 0 *)
  msg : string;
}

val error_to_string : error -> string
(** ["line L, column C: msg"], or just the message for positionless
    errors. *)

val pp_error : Format.formatter -> error -> unit

val of_string : string -> (Circuit.t, error) result
(** Inverse of {!to_string} (also accepts hand-written files). Total:
    malformed input of any kind — including bytes this parser never
    anticipated — yields [Error], never an exception. *)

val save : Circuit.t -> string -> unit
(** Write to a file path. *)

val load : string -> (Circuit.t, error) result
