type reg = { name : string; group : string; init : bool; next : Expr.t }
type port = { port_name : string; expr : Expr.t }

type t = {
  name : string;
  input_names : string array;
  regs : reg array;
  outputs : port array;
  input_constraint : Expr.t;
}

let n_inputs c = Array.length c.input_names
let n_regs c = Array.length c.regs
let n_outputs c = Array.length c.outputs

let gate_count c =
  let total = ref (Expr.size c.input_constraint) in
  Array.iter (fun r -> total := !total + Expr.size r.next) c.regs;
  Array.iter (fun o -> total := !total + Expr.size o.expr) c.outputs;
  !total

let reg_index c name =
  let found = ref (-1) in
  Array.iteri (fun i (r : reg) -> if r.name = name then found := i) c.regs;
  if !found < 0 then raise Not_found else !found

let regs_in_group c group =
  let acc = ref [] in
  Array.iteri (fun i r -> if r.group = group then acc := i :: !acc) c.regs;
  List.rev !acc

let groups c =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  Array.iter
    (fun r ->
      if not (Hashtbl.mem seen r.group) then begin
        Hashtbl.add seen r.group ();
        acc := r.group :: !acc
      end)
    c.regs;
  List.rev !acc

type state = bool array

let initial_state c = Array.map (fun r -> r.init) c.regs

let input_valid c state inputs =
  Expr.eval ~inputs:(fun i -> inputs.(i)) ~regs:(fun r -> state.(r)) c.input_constraint

let step c state inputs =
  assert (Array.length state = n_regs c);
  if Array.length inputs <> n_inputs c then
    invalid_arg "Circuit.step: input vector width mismatch";
  if not (input_valid c state inputs) then
    invalid_arg "Circuit.step: input combination violates the constraint";
  let inputs_f i = inputs.(i) and regs_f r = state.(r) in
  let next = Array.map (fun r -> Expr.eval ~inputs:inputs_f ~regs:regs_f r.next) c.regs in
  let outs =
    Array.map (fun o -> Expr.eval ~inputs:inputs_f ~regs:regs_f o.expr) c.outputs
  in
  (next, outs)

let simulate c input_seq =
  let rec go state acc = function
    | [] -> List.rev acc
    | inputs :: rest ->
        let state', outs = step c state inputs in
        go state' (outs :: acc) rest
  in
  go (initial_state c) [] input_seq

let reg_support_closure c seeds =
  let n = n_regs c in
  let in_set = Array.make n false in
  let queue = Queue.create () in
  List.iter
    (fun r ->
      if not in_set.(r) then begin
        in_set.(r) <- true;
        Queue.add r queue
      end)
    seeds;
  while not (Queue.is_empty queue) do
    let r = Queue.pop queue in
    let _, dep_regs = Expr.support c.regs.(r).next in
    List.iter
      (fun d ->
        if not in_set.(d) then begin
          in_set.(d) <- true;
          Queue.add d queue
        end)
      dep_regs
  done;
  let acc = ref [] in
  for r = n - 1 downto 0 do
    if in_set.(r) then acc := r :: !acc
  done;
  !acc

let output_cone c =
  let seeds =
    Array.fold_left
      (fun acc o ->
        let _, rs = Expr.support o.expr in
        List.rev_append rs acc)
      [] c.outputs
  in
  reg_support_closure c seeds

let to_fsm ?(max_state_bits = 20) c =
  let nr = n_regs c and ni = n_inputs c in
  if nr > max_state_bits then
    invalid_arg
      (Printf.sprintf "Circuit.to_fsm: %d registers exceed the explicit limit %d" nr
         max_state_bits);
  if ni > 20 then invalid_arg "Circuit.to_fsm: too many inputs to enumerate";
  let n_states = 1 lsl nr and n_inputs = 1 lsl ni in
  let unpack_state s r = (s lsr r) land 1 = 1 in
  let unpack_input v i = (v lsr i) land 1 = 1 in
  let reset =
    Array.to_list (initial_state c)
    |> List.mapi (fun i b -> if b then 1 lsl i else 0)
    |> List.fold_left ( lor ) 0
  in
  let eval_next s v =
    let inputs = unpack_input v and regs = unpack_state s in
    let acc = ref 0 in
    Array.iteri
      (fun r (rg : reg) -> if Expr.eval ~inputs ~regs rg.next then acc := !acc lor (1 lsl r))
      c.regs;
    !acc
  in
  let eval_output s v =
    let inputs = unpack_input v and regs = unpack_state s in
    let acc = ref 0 in
    Array.iteri
      (fun i o -> if Expr.eval ~inputs ~regs o.expr then acc := !acc lor (1 lsl i))
      c.outputs;
    !acc
  in
  let valid s v =
    Expr.eval ~inputs:(unpack_input v) ~regs:(unpack_state s) c.input_constraint
  in
  Simcov_fsm.Fsm.make ~reset ~valid ~n_states ~n_inputs ~next:eval_next
    ~output:eval_output
    ~state_name:(fun s -> Printf.sprintf "%s[%0*x]" c.name ((nr + 3) / 4) s)
    ~input_name:(fun v -> Printf.sprintf "%0*x" ((ni + 3) / 4) v)
    ()

module Build = struct
  type build_error = {
    circuit : string;
    doubly_assigned : string list;
    never_assigned : string list;
  }

  exception Build_error of build_error

  let build_error_to_string e =
    let clause label = function
      | [] -> []
      | names -> [ Printf.sprintf "%s: %s" label (String.concat ", " names) ]
    in
    Printf.sprintf "Circuit.Build \"%s\": %s" e.circuit
      (String.concat "; "
         (clause "assigned twice" e.doubly_assigned
         @ clause "never assigned" e.never_assigned))

  type pending_reg = {
    p_name : string;
    p_group : string;
    p_init : bool;
    mutable p_next : Expr.t option;
  }

  type ctx = {
    c_name : string;
    mutable inputs : string list; (* reversed *)
    mutable n_in : int;
    mutable pregs : pending_reg list; (* reversed *)
    mutable n_reg : int;
    mutable outs : port list; (* reversed *)
    mutable constr : Expr.t;
    mutable dups : string list; (* doubly-assigned register names, reversed *)
  }

  let create c_name =
    {
      c_name;
      inputs = [];
      n_in = 0;
      pregs = [];
      n_reg = 0;
      outs = [];
      constr = Expr.tru;
      dups = [];
    }

  let input ctx name =
    let i = ctx.n_in in
    ctx.inputs <- name :: ctx.inputs;
    ctx.n_in <- i + 1;
    Expr.input i

  let input_vec ctx name width =
    Array.init width (fun b -> input ctx (Printf.sprintf "%s[%d]" name b))

  let reg ctx ?(group = "main") ?(init = false) name =
    let r = ctx.n_reg in
    ctx.pregs <- { p_name = name; p_group = group; p_init = init; p_next = None } :: ctx.pregs;
    ctx.n_reg <- r + 1;
    Expr.reg r

  let reg_vec ctx ?(group = "main") ?(init = 0) name width =
    Array.init width (fun b ->
        reg ctx ~group ~init:((init lsr b) land 1 = 1) (Printf.sprintf "%s[%d]" name b))

  let find_pending ctx idx =
    (* pregs is reversed: register k lives at position n_reg - 1 - k *)
    List.nth ctx.pregs (ctx.n_reg - 1 - idx)

  (* a double assignment is recorded (keeping the first) rather than
     raised, so finish can report every offender at once *)
  let assign ctx r next =
    match r with
    | Expr.Reg idx ->
        let p = find_pending ctx idx in
        (match p.p_next with
        | Some _ -> ctx.dups <- p.p_name :: ctx.dups
        | None -> p.p_next <- Some next)
    | _ -> invalid_arg "Circuit.Build.assign: not a register expression"

  let assign_vec ctx rv nv =
    assert (Array.length rv = Array.length nv);
    Array.iteri (fun i r -> assign ctx r nv.(i)) rv

  let output ctx port_name expr = ctx.outs <- { port_name; expr } :: ctx.outs

  let output_vec ctx name v =
    Array.iteri (fun i e -> output ctx (Printf.sprintf "%s[%d]" name i) e) v

  let constrain ctx e = ctx.constr <- Expr.( &&& ) ctx.constr e

  let finish ctx =
    let missing =
      List.rev
        (List.filter_map
           (fun p -> if p.p_next = None then Some p.p_name else None)
           ctx.pregs)
    in
    if missing <> [] || ctx.dups <> [] then
      raise
        (Build_error
           {
             circuit = ctx.c_name;
             doubly_assigned = List.rev ctx.dups;
             never_assigned = missing;
           });
    let regs =
      List.rev_map
        (fun p ->
          match p.p_next with
          | None -> assert false
          | Some next -> { name = p.p_name; group = p.p_group; init = p.p_init; next })
        ctx.pregs
      |> Array.of_list
    in
    {
      name = ctx.c_name;
      input_names = Array.of_list (List.rev ctx.inputs);
      regs;
      outputs = Array.of_list (List.rev ctx.outs);
      input_constraint = ctx.constr;
    }
end

let pp_stats ppf c =
  Format.fprintf ppf "%s: %d inputs, %d regs, %d outputs, %d gates" c.name (n_inputs c)
    (n_regs c) (n_outputs c) (gate_count c)
