let expr_to_buf buf e =
  let rec go = function
    | Expr.Const true -> Buffer.add_char buf '1'
    | Expr.Const false -> Buffer.add_char buf '0'
    | Expr.Input i -> Buffer.add_string buf (Printf.sprintf "(in %d)" i)
    | Expr.Reg r -> Buffer.add_string buf (Printf.sprintf "(reg %d)" r)
    | Expr.Not a ->
        Buffer.add_string buf "(not ";
        go a;
        Buffer.add_char buf ')'
    | Expr.And (a, b) -> binary "and" a b
    | Expr.Or (a, b) -> binary "or" a b
    | Expr.Xor (a, b) -> binary "xor" a b
    | Expr.Mux (s, h, l) ->
        Buffer.add_string buf "(mux ";
        go s;
        Buffer.add_char buf ' ';
        go h;
        Buffer.add_char buf ' ';
        go l;
        Buffer.add_char buf ')'
  and binary tag a b =
    Buffer.add_char buf '(';
    Buffer.add_string buf tag;
    Buffer.add_char buf ' ';
    go a;
    Buffer.add_char buf ' ';
    go b;
    Buffer.add_char buf ')'
  in
  go e

let to_string (c : Circuit.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf ("circuit " ^ c.Circuit.name ^ "\n");
  Array.iter (fun n -> Buffer.add_string buf ("input " ^ n ^ "\n")) c.Circuit.input_names;
  Array.iter
    (fun (r : Circuit.reg) ->
      Buffer.add_string buf
        (Printf.sprintf "reg %s %s %d = " r.Circuit.name r.Circuit.group
           (if r.Circuit.init then 1 else 0));
      expr_to_buf buf r.Circuit.next;
      Buffer.add_char buf '\n')
    c.Circuit.regs;
  Array.iter
    (fun (o : Circuit.port) ->
      Buffer.add_string buf ("output " ^ o.Circuit.port_name ^ " = ");
      expr_to_buf buf o.Circuit.expr;
      Buffer.add_char buf '\n')
    c.Circuit.outputs;
  if c.Circuit.input_constraint <> Expr.tru then begin
    Buffer.add_string buf "constraint ";
    expr_to_buf buf c.Circuit.input_constraint;
    Buffer.add_char buf '\n'
  end;
  Buffer.contents buf

(* --- parsing --- *)

type error = { line : int; col : int; msg : string }

let error_to_string e =
  if e.line = 0 then e.msg
  else Printf.sprintf "line %d, column %d: %s" e.line e.col e.msg

let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)

type token = Lparen | Rparen | Atom of string

let is_ws c = c = ' ' || c = '\t' || c = '\r'

(* [off] is the 0-based index of [s] within its source line, so token
   columns are 1-based positions in that line *)
let tokenize s off =
  let tokens = ref [] in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    let col = off + !i + 1 in
    (match s.[!i] with
    | '(' ->
        tokens := (Lparen, col) :: !tokens;
        incr i
    | ')' ->
        tokens := (Rparen, col) :: !tokens;
        incr i
    | c when is_ws c -> incr i
    | _ ->
        let start = !i in
        while !i < n && s.[!i] <> '(' && s.[!i] <> ')' && not (is_ws s.[!i]) do
          incr i
        done;
        tokens := (Atom (String.sub s start (!i - start)), col) :: !tokens)
  done;
  List.rev !tokens

let ( let* ) = Result.bind

(* [eol] is the column just past the last token, for errors at
   end-of-expression *)
let parse_expr tokens ~eol =
  let rec parse = function
    | (Atom "0", _) :: rest -> Ok (Expr.Const false, rest)
    | (Atom "1", _) :: rest -> Ok (Expr.Const true, rest)
    | (Lparen, _) :: (Atom "in", _) :: (Atom n, c) :: (Rparen, _) :: rest -> (
        match int_of_string_opt n with
        | Some i when i >= 0 -> Ok (Expr.Input i, rest)
        | _ -> Error (c, "bad input index " ^ n))
    | (Lparen, _) :: (Atom "reg", _) :: (Atom n, c) :: (Rparen, _) :: rest -> (
        match int_of_string_opt n with
        | Some r when r >= 0 -> Ok (Expr.Reg r, rest)
        | _ -> Error (c, "bad register index " ^ n))
    | (Lparen, _) :: (Atom "not", _) :: rest ->
        let* a, rest = parse rest in
        let* rest = expect_rparen rest in
        Ok (Expr.Not a, rest)
    | (Lparen, _) :: (Atom (("and" | "or" | "xor") as tag), _) :: rest ->
        let* a, rest = parse rest in
        let* b, rest = parse rest in
        let* rest = expect_rparen rest in
        let e =
          match tag with
          | "and" -> Expr.And (a, b)
          | "or" -> Expr.Or (a, b)
          | _ -> Expr.Xor (a, b)
        in
        Ok (e, rest)
    | (Lparen, _) :: (Atom "mux", _) :: rest ->
        let* s, rest = parse rest in
        let* h, rest = parse rest in
        let* l, rest = parse rest in
        let* rest = expect_rparen rest in
        Ok (Expr.Mux (s, h, l), rest)
    | (t, c) :: _ ->
        Error
          ( c,
            Printf.sprintf "unexpected token %s"
              (match t with Lparen -> "(" | Rparen -> ")" | Atom a -> a) )
    | [] -> Error (eol, "unexpected end of expression")
  and expect_rparen = function
    | (Rparen, _) :: rest -> Ok rest
    | (_, c) :: _ -> Error (c, "expected )")
    | [] -> Error (eol, "expected )")
  in
  let* e, rest = parse tokens in
  match rest with
  | [] -> Ok e
  | (_, c) :: _ -> Error (c, "trailing tokens after expression")

(* first and one-past-last non-whitespace index of [s] in [lo, hi) *)
let trim_span s lo hi =
  let lo = ref lo and hi = ref hi in
  while !lo < !hi && is_ws s.[!lo] do
    incr lo
  done;
  while !hi > !lo && is_ws s.[!hi - 1] do
    decr hi
  done;
  (!lo, !hi)

let of_string_internal text =
  let lines = String.split_on_char '\n' text in
  let name = ref "circuit" in
  let inputs = ref [] in
  let regs = ref [] in
  let outputs = ref [] in
  let constraints = ref [] in
  let parse_line lineno line =
    let stop0 =
      match String.index_opt line '#' with
      | Some i -> i
      | None -> String.length line
    in
    let start, stop = trim_span line 0 stop0 in
    if start >= stop then Ok ()
    else
      let err ?(col = start + 1) msg = Error { line = lineno; col; msg } in
      let expr ~off s = parse_expr (tokenize s off) ~eol:(stop + 1) in
      let kw_end =
        match String.index_from_opt line start ' ' with
        | Some sp when sp < stop -> sp
        | _ -> stop
      in
      let kw = String.sub line start (kw_end - start) in
      let rest_start, _ = trim_span line kw_end stop in
      let rest = String.sub line rest_start (stop - rest_start) in
      if rest = "" then err ("cannot parse: " ^ kw)
      else
        match kw with
        | "circuit" ->
            name := rest;
            Ok ()
        | "input" ->
            inputs := rest :: !inputs;
            Ok ()
        | "reg" -> (
            match String.index_from_opt line rest_start '=' with
            | None -> err ~col:(stop + 1) "missing '='"
            | Some eq when eq >= stop -> err ~col:(stop + 1) "missing '='"
            | Some eq -> (
                let hlo, hhi = trim_span line rest_start eq in
                let head = String.sub line hlo (hhi - hlo) in
                let blo, _ = trim_span line (eq + 1) stop in
                let body = String.sub line blo (stop - blo) in
                match String.split_on_char ' ' head |> List.filter (fun s -> s <> "") with
                | [ rname; group; init ] -> (
                    match (int_of_string_opt init, expr ~off:blo body) with
                    | Some iv, Ok next when iv = 0 || iv = 1 ->
                        regs :=
                          ( lineno,
                            { Circuit.name = rname; group; init = iv = 1; next } )
                          :: !regs;
                        Ok ()
                    | _, Error (col, msg) -> err ~col msg
                    | _ -> err ~col:(hlo + 1) "bad reg init (want 0 or 1)")
                | _ -> err ~col:(hlo + 1) "want: reg <name> <group> <0|1> = <expr>"))
        | "output" -> (
            match String.index_from_opt line rest_start '=' with
            | None -> err ~col:(stop + 1) "missing '='"
            | Some eq when eq >= stop -> err ~col:(stop + 1) "missing '='"
            | Some eq -> (
                let hlo, hhi = trim_span line rest_start eq in
                let oname = String.sub line hlo (hhi - hlo) in
                let blo, _ = trim_span line (eq + 1) stop in
                let body = String.sub line blo (stop - blo) in
                if oname = "" then err ~col:(hlo + 1) "want: output <name> = <expr>"
                else
                  match expr ~off:blo body with
                  | Ok e ->
                      outputs := (lineno, { Circuit.port_name = oname; expr = e }) :: !outputs;
                      Ok ()
                  | Error (col, msg) -> err ~col msg))
        | "constraint" -> (
            match expr ~off:rest_start rest with
            | Ok e ->
                constraints := (lineno, e) :: !constraints;
                Ok ()
            | Error (col, msg) -> err ~col msg)
        | _ -> err ("unknown keyword: " ^ kw)
  in
  let rec go lineno = function
    | [] -> Ok ()
    | line :: rest -> (
        match parse_line lineno line with Ok () -> go (lineno + 1) rest | Error _ as e -> e)
  in
  let* () = go 1 lines in
  let regs = List.rev !regs and outputs = List.rev !outputs in
  let constraints = List.rev !constraints in
  let circuit =
    {
      Circuit.name = !name;
      input_names = Array.of_list (List.rev !inputs);
      regs = Array.of_list (List.map snd regs);
      outputs = Array.of_list (List.map snd outputs);
      input_constraint =
        List.fold_left (fun acc (_, e) -> Expr.( &&& ) acc e) Expr.tru constraints;
    }
  in
  (* sanity: leaf indices within bounds, reported at the line that
     introduced the expression *)
  let ni = Circuit.n_inputs circuit and nr = Circuit.n_regs circuit in
  let check_expr lineno e =
    let ins, rgs = Expr.support e in
    if List.for_all (fun i -> i < ni) ins && List.for_all (fun r -> r < nr) rgs
    then Ok ()
    else
      Error
        {
          line = lineno;
          col = 1;
          msg = "expression references an undeclared input/register";
        }
  in
  let rec check_all = function
    | [] -> Ok circuit
    | (lineno, e) :: rest -> (
        match check_expr lineno e with Ok () -> check_all rest | Error _ as err -> err)
  in
  check_all
    (List.map (fun (l, (r : Circuit.reg)) -> (l, r.Circuit.next)) regs
    @ List.map (fun (l, (o : Circuit.port)) -> (l, o.Circuit.expr)) outputs
    @ constraints)

(* total: any exception from a malformed dump (including ones this
   parser does not anticipate) becomes an error value *)
let of_string text =
  match of_string_internal text with
  | result -> result
  | exception exn ->
      Error { line = 0; col = 0; msg = "internal error: " ^ Printexc.to_string exn }

let save c path = Simcov_util.Durable.write_string path (to_string c)

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error e -> Error { line = 0; col = 0; msg = e }
