(** Boolean expressions over primary inputs and register outputs.

    The combinational-logic layer of the netlist IR. Smart constructors
    perform constant folding and a few local simplifications so that
    abstraction passes (which substitute constants and free inputs into
    existing logic) shrink the circuit instead of growing it. *)

type t =
  | Const of bool
  | Input of int  (** primary input by index *)
  | Reg of int  (** current-cycle register value by index *)
  | Not of t
  | And of t * t
  | Or of t * t
  | Xor of t * t
  | Mux of t * t * t  (** [Mux (sel, hi, lo)]: [hi] when [sel] *)

val tru : t
val fls : t
val const : bool -> t
val input : int -> t
val reg : int -> t

val ( !! ) : t -> t
(** Negation (folds constants and double negation). *)

val ( &&& ) : t -> t -> t
val ( ||| ) : t -> t -> t
val ( ^^^ ) : t -> t -> t
val mux : t -> t -> t -> t
val eq : t -> t -> t
(** XNOR. *)

val conj : t list -> t
val disj : t list -> t

val eval : inputs:(int -> bool) -> regs:(int -> bool) -> t -> bool

val eval_lanes : inputs:(int -> int) -> regs:(int -> int) -> t -> int
(** Bit-parallel evaluation: bit [l] of every int is an independent
    boolean lane, so one call evaluates the expression for up to
    [Sys.int_size] valuations at once. Constants broadcast to all
    lanes; bits beyond the lanes the caller populated are unspecified
    (negation sets them) and must be masked off by the caller. *)

(** {!eval_lanes} generalized over a lane representation: one call
    evaluates the expression for up to [L.width] valuations at once.
    Constants broadcast to the full width; complement is width-masked,
    so results only ever carry bits the caller's population mask keeps. *)
module Wide_eval (L : Simcov_util.Lanes.S) : sig
  val eval : inputs:(int -> L.t) -> regs:(int -> L.t) -> t -> L.t
end

val map_leaves : input:(int -> t) -> reg:(int -> t) -> t -> t
(** Substitute expressions for leaves (rebuilding with the smart
    constructors, so substitution of constants simplifies). *)

val support : t -> (int list * int list)
(** [(inputs, regs)] referenced, each sorted ascending without
    duplicates. *)

val size : t -> int
(** Number of AST nodes (a gate-count proxy). *)

(** {1 Multi-bit vectors}

    A vector is little-endian: element 0 is the least significant
    bit. *)

module Vec : sig
  type expr := t
  type t = expr array

  val const : width:int -> int -> t
  val inputs : first:int -> width:int -> t
  val regs : first:int -> width:int -> t
  val eq_const : t -> int -> expr
  (** Equality with an integer constant. *)

  val eq : t -> t -> expr
  val mux : expr -> t -> t -> t
  val onehot : t -> expr
  (** Exactly-one-bit-set predicate. *)

  val decode : t -> int -> expr
  (** [decode v i] is true when the binary value of [v] equals [i] —
      alias of {!eq_const}, named for one-hot/binary re-encodings. *)

  val eval : inputs:(int -> bool) -> regs:(int -> bool) -> t -> int
end
