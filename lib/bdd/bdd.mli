(** Reduced Ordered Binary Decision Diagrams.

    A from-scratch ROBDD package in the style of Bryant (1986) with a
    shared unique table and per-operation computed caches. It is the
    substitute for the SIS/VIS BDD machinery the paper used to build
    implicit transition-relation representations of test models
    (Sections 2 and 6.5).

    All nodes live inside a manager; mixing nodes from two managers is
    a programming error (detected by assertions in debug builds).
    Variables are integers [0 .. num_vars - 1]. The {e order} the
    diagram descends in is a separate notion, the {e level}: a manager
    starts with level = variable index, and dynamic reordering
    ({!reorder}, {!set_auto_reorder}, {!set_order}) permutes the
    var↔level map while preserving every held node's identity and
    boolean function. Functions documented "by index" ({!topvar},
    {!support}, {!sat_count}, {!eval}, {!iter_sat}, {!any_sat}) are
    insensitive to the order; only {!rename}'s fast path and the DOT
    layout depend on levels. *)

type man
(** A BDD manager: unique table, caches, variable count, and the
    var↔level order map. *)

type t
(** A BDD node (hash-consed; structural equality is physical
    equality). The physical node is stable across reordering. *)

exception Node_limit of int
(** Raised (with the current live-node count) when an operation needs
    a new node, the manager's node ceiling is reached, and garbage
    collection cannot reclaim enough space — or when a reordering pass
    had to abort for the same reason. The operation's partial work is
    discarded; the manager remains usable. *)

val man : ?cache_size:int -> ?max_nodes:int -> int -> man
(** [man nvars] creates a manager for variables [0 .. nvars - 1] with
    the identity order. [max_nodes] bounds the number of {e live}
    nodes (default: the 2^26 packing limit); when the bound is hit the
    manager garbage-collects from the registered roots and retries
    before raising {!Node_limit}. *)

val num_vars : man -> int
val node_count : man -> int
(** Number of currently live nodes (unique-table size); decreases
    after a {!gc}. *)

val peak_node_count : man -> int
(** High-water mark of {!node_count} over the manager's lifetime. *)

val max_nodes : man -> int option
val set_max_nodes : man -> int option -> unit
(** Adjust the live-node ceiling; [None] removes it. *)

(** {1 Roots and garbage collection}

    The manager's garbage collector is mark-and-sweep over the unique
    table: nodes reachable from registered roots (and from the
    arguments of the operation in flight) survive, all other table
    entries are dropped and their uids recycled, and every operation
    cache is invalidated. It runs when {!gc} is called explicitly, or
    automatically when the node ceiling is reached mid-operation (the
    operation is then retried from its pinned arguments).

    {b Contract}: on a manager with a node ceiling, or when calling
    {!gc} directly, every BDD held across public operations must be
    reachable from a registered root. An unrooted BDD survives as an
    OCaml value but loses hash-consing: rebuilding the same function
    later yields a physically distinct node, so {!equal} would report
    [false] on semantically equal functions. Two cases are pinned
    automatically: the arguments of every operation in flight (at any
    nesting depth), and literal nodes ({!var} / {!nvar}), which live
    for the manager's lifetime. Everything else held across an
    operation needs {!add_root} / {!protect} / {!pinned}.

    Reordering operates under the same contract: a sifting pass first
    garbage-collects (the sweep set above), then rewrites the
    surviving table. Enabling {!set_auto_reorder} therefore opts the
    manager into the contract exactly as setting a node ceiling
    does. *)

type root
(** A registration handle; updatable, so a traversal can keep exactly
    its current frontier pinned. *)

val add_root : man -> t -> root
val set_root : man -> root -> t -> unit
val remove_root : man -> root -> unit

val protect : man -> t -> t
(** [protect m t] registers [t] as a root for the manager's lifetime
    and returns it — for long-lived structures (transition-relation
    conjuncts, initial states) that are never unpinned. *)

val pinned : man -> t -> (unit -> 'a) -> 'a
(** [pinned m t f] runs [f] with [t] registered as a root and
    unregisters it on the way out (normal return or exception) — the
    scoped pin for an intermediate that must stay live across the
    operations [f] performs. *)

val gc : man -> int
(** Collect now; returns the number of nodes reclaimed. *)

type gc_stats = {
  runs : int;  (** collections performed *)
  reclaimed : int;  (** total nodes reclaimed across all runs *)
  live : int;  (** current live nodes *)
  peak_live : int;  (** lifetime high-water mark *)
}

val gc_stats : man -> gc_stats

(** {1 Dynamic variable reordering}

    Rudell-style sifting: each variable (or glued group) is moved
    through every level by adjacent-level swaps and left at the
    position minimising the total live-node count. Nodes are rewritten
    in place, so every held [t] value keeps denoting the same boolean
    function through the same physical node; all operation caches are
    invalidated. *)

val reorder : man -> unit
(** Run one sifting pass now, under the GC rooting contract (a
    collection happens first — unrooted nodes are swept).
    @raise Invalid_argument if called from inside an operation
    callback (e.g. {!iter_sat}).
    @raise Node_limit if the node ceiling forced the pass to abort;
    the manager is left consistent and usable, at whatever order the
    completed swaps produced. *)

val set_auto_reorder : man -> ?ratio:float -> ?min_nodes:int -> bool -> unit
(** [set_auto_reorder m true] arms automatic sifting: a pass runs
    before a public operation whenever the live count exceeds [ratio]
    (default 2.0, must be > 1.0) times the live count after the
    previous pass, and at least [min_nodes] (default 4096) nodes are
    live. Auto passes never raise: an abort simply leaves the manager
    at the order reached. Enabling this opts into the GC rooting
    contract (see above). *)

val set_groups : man -> int list list -> unit
(** Declare glued variable groups (e.g. current/next-state pairs):
    each group moves as one block during sifting, preserving the
    relative order inside it. Groups must be disjoint, non-empty, and
    occupy contiguous levels at declaration time.
    @raise Invalid_argument otherwise. *)

val set_order : man -> int array -> unit
(** [set_order m perm] forces the order to [perm] (a permutation of
    [0 .. num_vars - 1]; [perm.(l)] becomes the variable at level
    [l]), by adjacent swaps under the rooting contract.
    @raise Node_limit as for {!reorder}. *)

val order : man -> int array
(** The current order: element [l] is the variable at level [l]. *)

val level_of_var : man -> int -> int
(** The level a variable currently sits at. *)

type reorder_stats = {
  reorder_runs : int;  (** sifting passes completed *)
  reorder_swaps : int;  (** total adjacent-level swaps *)
  last_nodes_before : int;  (** live nodes entering the last pass *)
  last_nodes_after : int;  (** live nodes leaving the last pass *)
}

val reorder_stats : man -> reorder_stats

(** {1 Constants and literals} *)

val bfalse : man -> t
val btrue : man -> t
val var : man -> int -> t
(** Positive literal. Created on first use and pinned for the
    manager's lifetime, so a bare literal is always safe to hold
    across other operations. @raise Invalid_argument out of range. *)

val nvar : man -> int -> t
(** Negative literal; same lifetime guarantee as {!var}. *)

val of_bool : man -> bool -> t

(** {1 Structure} *)

val is_true : t -> bool
val is_false : t -> bool
val equal : t -> t -> bool
val id : t -> int
val topvar : t -> int
(** The {e variable index} tested at this node — under a non-identity
    order this need not be the minimum of {!support}; the node merely
    sits at the outermost {e level} of the diagram.
    @raise Invalid_argument on constants. *)

val low : t -> t
val high : t -> t
val size : t -> int
(** Number of distinct nodes reachable from this root (including
    constants). *)

(** {1 Boolean connectives} *)

val bnot : man -> t -> t
val band : man -> t -> t -> t
val bor : man -> t -> t -> t
val bxor : man -> t -> t -> t
val bimp : man -> t -> t -> t
val biff : man -> t -> t -> t
val ite : man -> t -> t -> t -> t

val conj : man -> t list -> t
val disj : man -> t list -> t

(** {1 Cofactors, quantification, substitution} *)

val cofactor : man -> t -> int -> bool -> t
(** [cofactor m f v b] is f with variable [v] fixed to [b]. *)

val exists : man -> int list -> t -> t
(** Existential quantification over a set of variables. *)

val forall : man -> int list -> t -> t

val and_exists : man -> int list -> t -> t -> t
(** Fused relational product: [exists vars (band f g)] without building
    the full conjunction — the workhorse of image computation. *)

val and_exists_list : man -> int list -> t list -> t
(** [and_exists_list m vars conjuncts] is
    [exists m vars (conj m conjuncts)] computed with early
    quantification: conjuncts are folded in the given order and each
    variable of [vars] is quantified out together with the last
    conjunct whose support mentions it, so intermediate products never
    carry dead variables. The conjunct order is the caller's
    clustering/ordering heuristic; the result does not depend on it.
    [and_exists_list m vars []] is [btrue m]. *)

val rename : man -> (int -> int) -> t -> t
(** Variable renaming: the function mapping assignment [a] to
    [f (a ∘ subst)]. The mapping must be injective on the support
    ({!Invalid_argument} otherwise — a non-injective substitution has
    no well-defined renamed function). When the substitution is
    monotone {e in the current level order} on the support, the
    renaming is a fast structural rewrite; otherwise it falls back to
    a (correct, slower) ITE composition. Note the precondition for the
    fast path is about {e levels}, not indices: after reordering, an
    index-monotone map may be level-non-monotone — the dispatcher
    checks and picks the right path, callers need not care. *)

val restrict_cube : man -> (int * bool) list -> t -> t
(** Fix several variables at once. *)

(** {1 Satisfiability} *)

val any_sat : man -> t -> (int * bool) list
(** One satisfying partial assignment (don't-care variables omitted),
    in descent order — i.e. sorted by current level, not necessarily
    by variable index.
    @raise Not_found on the false BDD. *)

val sat_count : man -> nvars:int -> t -> float
(** Number of satisfying assignments over a space of [nvars] variables
    (as a float: the paper's models have up to 2^25 assignments). The
    counted space is variable {e indices} [0 .. nvars - 1]; the result
    is independent of the current order.
    @raise Invalid_argument if [nvars] is negative or smaller than some
    variable in the BDD's support (the count would silently be wrong
    otherwise). *)

val iter_sat : man -> vars:int array -> (bool array -> unit) -> t -> unit
(** Enumerate all satisfying total assignments over exactly the
    variables [vars] (in the given order, which need not relate to the
    manager's level order); the callback receives a reused buffer —
    copy it if you keep it. Variables outside [vars] must not occur in
    the BDD's support. *)

val support : man -> t -> int list
(** Variable indices the function depends on, ascending by index
    (independent of the current order). *)

val eval : man -> t -> (int -> bool) -> bool
(** Evaluate under a total assignment. *)

val pp : Format.formatter -> t -> unit
(** Small diagnostic printer (node id and size). *)

val to_dot : ?var_name:(int -> string) -> man -> t -> string
(** Graphviz rendering of the diagram: one node per BDD node labeled
    with its variable name and current level ("xN Lk"), dashed edges
    for the low (0) branch, solid for the high (1) branch, and one
    [rank=same] group per populated level so the drawing stacks in
    order even after reordering. *)
