type t = False | True | Node of { v : int; lo : t; hi : t; uid : int }

(* ------------------------------------------------------------------ *)
(* Packed int keys                                                     *)
(*                                                                     *)
(* Every table in the manager is keyed by a single native int: a node  *)
(* is identified by (var, lo_uid, hi_uid) packed as                    *)
(*   var:10 | lo:26 | hi:26                                            *)
(* (62 bits, always non-negative), and a binary-operation cache entry  *)
(* by (uid_a, uid_b) packed as a:26 | b:26. The limits — 1024          *)
(* variables, 2^26 (~67M) live nodes — are far beyond what fits in     *)
(* memory here and are enforced explicitly. Uids of garbage-collected  *)
(* nodes are recycled, so the 2^26 ceiling applies to peak live nodes, *)
(* not to the total ever allocated.                                    *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Telemetry                                                           *)
(*                                                                     *)
(* Process-global counters shared by every manager (cf. the Obs        *)
(* overhead contract: each probe below is one int store, which is what *)
(* lets them sit inside the cache-lookup hot paths). The live/peak     *)
(* gauges track the manager that allocated or collected most recently. *)
(* ------------------------------------------------------------------ *)

module Obs = Simcov_obs.Obs

let c_unique_hit = Obs.counter "bdd.unique.hit"
let c_unique_miss = Obs.counter "bdd.unique.miss"
let c_and_hit = Obs.counter "bdd.cache.and.hit"
let c_and_miss = Obs.counter "bdd.cache.and.miss"
let c_or_hit = Obs.counter "bdd.cache.or.hit"
let c_or_miss = Obs.counter "bdd.cache.or.miss"
let c_xor_hit = Obs.counter "bdd.cache.xor.hit"
let c_xor_miss = Obs.counter "bdd.cache.xor.miss"
let c_not_hit = Obs.counter "bdd.cache.not.hit"
let c_not_miss = Obs.counter "bdd.cache.not.miss"
let c_ite_hit = Obs.counter "bdd.cache.ite.hit"
let c_ite_miss = Obs.counter "bdd.cache.ite.miss"
let c_gc_runs = Obs.counter "bdd.gc.runs"
let c_gc_reclaimed = Obs.counter "bdd.gc.reclaimed"
let g_nodes_live = Obs.gauge "bdd.nodes.live"
let g_nodes_peak = Obs.gauge "bdd.nodes.peak"

let uid_bits = 26
let uid_limit = 1 lsl uid_bits
let var_limit = 1 lsl (62 - (2 * uid_bits))

let pack3 v lo hi = (v lsl (2 * uid_bits)) lor (lo lsl uid_bits) lor hi
let pack2 a b = (a lsl uid_bits) lor b

(* ------------------------------------------------------------------ *)
(* Open-addressed int-keyed hash tables                                *)
(*                                                                     *)
(* Linear probing over power-of-two arrays, no deletion (the unique    *)
(* table is compacted wholesale by the garbage collector instead).     *)
(* ------------------------------------------------------------------ *)

let empty_key = min_int

let mix k =
  let h = k * 0x2545F4914F6CDD1D in
  h lxor (h lsr 29)

module Itab = struct
  type 'a tab = {
    mutable keys : int array;
    mutable data : 'a array;
    mutable used : int;
    dummy : 'a;
  }

  let round_pow2 n =
    let rec go c = if c >= n then c else go (c * 2) in
    go 16

  let create size dummy =
    let n = round_pow2 size in
    { keys = Array.make n empty_key; data = Array.make n dummy; used = 0; dummy }

  (* index of [k], or -1 when absent *)
  let find_idx t k =
    let m = Array.length t.keys - 1 in
    let keys = t.keys in
    let rec go i =
      let key = Array.unsafe_get keys i in
      if key = k then i else if key = empty_key then -1 else go ((i + 1) land m)
    in
    go (mix k land m)

  let value t i = Array.unsafe_get t.data i

  let resize t =
    let old_keys = t.keys and old_data = t.data in
    let n = 2 * Array.length old_keys in
    let keys = Array.make n empty_key and data = Array.make n t.dummy in
    let m = n - 1 in
    Array.iteri
      (fun i k ->
        if k <> empty_key then begin
          let rec go j =
            if Array.unsafe_get keys j = empty_key then j else go ((j + 1) land m)
          in
          let j = go (mix k land m) in
          keys.(j) <- k;
          data.(j) <- old_data.(i)
        end)
      old_keys;
    t.keys <- keys;
    t.data <- data

  let add t k v =
    if 4 * (t.used + 1) > 3 * Array.length t.keys then resize t;
    let m = Array.length t.keys - 1 in
    let rec go i =
      let key = Array.unsafe_get t.keys i in
      if key = empty_key then begin
        t.keys.(i) <- k;
        t.data.(i) <- v;
        t.used <- t.used + 1
      end
      else if key = k then t.data.(i) <- v
      else go ((i + 1) land m)
    in
    go (mix k land m)

  let iter f t =
    let keys = t.keys and data = t.data in
    for i = 0 to Array.length keys - 1 do
      let k = Array.unsafe_get keys i in
      if k <> empty_key then f k (Array.unsafe_get data i)
    done

  let length t = t.used
end

(* ITE needs three uids (78 bits), so its cache carries two key words
   per entry. *)
module Itab2 = struct
  type 'a tab = {
    mutable ka : int array;
    mutable kb : int array;
    mutable data : 'a array;
    mutable used : int;
    dummy : 'a;
  }

  let create size dummy =
    let n = Itab.round_pow2 size in
    {
      ka = Array.make n empty_key;
      kb = Array.make n 0;
      data = Array.make n dummy;
      used = 0;
      dummy;
    }

  let hash a b = mix (a lxor mix b)

  let find_idx t a b =
    let m = Array.length t.ka - 1 in
    let rec go i =
      let key = Array.unsafe_get t.ka i in
      if key = a && Array.unsafe_get t.kb i = b then i
      else if key = empty_key then -1
      else go ((i + 1) land m)
    in
    go (hash a b land m)

  let value t i = Array.unsafe_get t.data i

  let resize t =
    let old_ka = t.ka and old_kb = t.kb and old_data = t.data in
    let n = 2 * Array.length old_ka in
    let ka = Array.make n empty_key
    and kb = Array.make n 0
    and data = Array.make n t.dummy in
    let m = n - 1 in
    Array.iteri
      (fun i a ->
        if a <> empty_key then begin
          let b = old_kb.(i) in
          let rec go j =
            if Array.unsafe_get ka j = empty_key then j else go ((j + 1) land m)
          in
          let j = go (hash a b land m) in
          ka.(j) <- a;
          kb.(j) <- b;
          data.(j) <- old_data.(i)
        end)
      old_ka;
    t.ka <- ka;
    t.kb <- kb;
    t.data <- data

  let add t a b v =
    if 4 * (t.used + 1) > 3 * Array.length t.ka then resize t;
    let m = Array.length t.ka - 1 in
    let rec go i =
      let key = Array.unsafe_get t.ka i in
      if key = empty_key then begin
        t.ka.(i) <- a;
        t.kb.(i) <- b;
        t.data.(i) <- v;
        t.used <- t.used + 1
      end
      else if key = a && Array.unsafe_get t.kb i = b then t.data.(i) <- v
      else go ((i + 1) land m)
    in
    go (hash a b land m)
end

(* ------------------------------------------------------------------ *)
(* Manager                                                             *)
(* ------------------------------------------------------------------ *)

type gc_stats = {
  runs : int;
  reclaimed : int;
  live : int;
  peak_live : int;
}

type man = {
  nvars : int;
  cache_size0 : int;
  mutable unique : t Itab.tab;
  mutable next_uid : int;
  mutable free_uids : int list;  (* uids of swept nodes, ready for reuse *)
  mutable and_cache : t Itab.tab;
  mutable or_cache : t Itab.tab;
  mutable xor_cache : t Itab.tab;
  mutable not_cache : t Itab.tab;
  mutable ite_cache : t Itab2.tab;
  mutable max_nodes : int;  (* live-node ceiling; [uid_limit] = unbounded *)
  pos_lits : t array;  (* literal nodes, created on first use, never swept *)
  neg_lits : t array;
  roots : (int, t) Hashtbl.t;  (* registered external roots *)
  mutable next_root : int;
  mutable temp_roots : t list;  (* arguments of the op in flight *)
  mutable op_depth : int;  (* public-operation nesting depth *)
  mutable gc_runs : int;
  mutable gc_reclaimed : int;
  mutable peak_live : int;
}

exception Node_limit of int

(* Internal: the unique table is full; the outermost public operation
   catches this, garbage-collects, and retries. *)
exception Gc_needed

let man ?(cache_size = 1 lsl 14) ?max_nodes nvars =
  if nvars < 0 then invalid_arg "Bdd.man: negative variable count";
  if nvars > var_limit then
    invalid_arg
      (Printf.sprintf "Bdd.man: %d variables exceeds the packing limit of %d" nvars
         var_limit);
  let max_nodes =
    match max_nodes with
    | None -> uid_limit
    | Some n ->
        if n <= 0 then invalid_arg "Bdd.man: non-positive max_nodes";
        min n uid_limit
  in
  {
    nvars;
    cache_size0 = cache_size;
    unique = Itab.create cache_size False;
    next_uid = 2;
    free_uids = [];
    and_cache = Itab.create cache_size False;
    or_cache = Itab.create cache_size False;
    xor_cache = Itab.create cache_size False;
    not_cache = Itab.create (cache_size / 4) False;
    ite_cache = Itab2.create (cache_size / 4) False;
    max_nodes;
    pos_lits = Array.make nvars False;
    neg_lits = Array.make nvars False;
    roots = Hashtbl.create 16;
    next_root = 0;
    temp_roots = [];
    op_depth = 0;
    gc_runs = 0;
    gc_reclaimed = 0;
    peak_live = 0;
  }

let num_vars m = m.nvars
let live_nodes m = Itab.length m.unique
let node_count m = live_nodes m + 2
let peak_node_count m = m.peak_live + 2
let max_nodes m = if m.max_nodes >= uid_limit then None else Some m.max_nodes

let set_max_nodes m limit =
  match limit with
  | None -> m.max_nodes <- uid_limit
  | Some n ->
      if n <= 0 then invalid_arg "Bdd.set_max_nodes: non-positive limit";
      m.max_nodes <- min n uid_limit

let gc_stats m =
  {
    runs = m.gc_runs;
    reclaimed = m.gc_reclaimed;
    live = live_nodes m;
    peak_live = m.peak_live;
  }

let bfalse _ = False
let btrue _ = True
let of_bool _ b = if b then True else False

let id = function False -> 0 | True -> 1 | Node n -> n.uid

(* ------------------------------------------------------------------ *)
(* Roots and garbage collection                                        *)
(*                                                                     *)
(* Nodes themselves are immutable OCaml values; collecting means       *)
(* compacting the unique table down to the nodes reachable from the    *)
(* registered roots (plus the arguments of the operation in flight)    *)
(* and recycling the uids of everything else. Op caches may reference  *)
(* swept nodes, so every sweep invalidates them wholesale.             *)
(*                                                                     *)
(* Contract: on a manager with a node limit (or under explicit [gc]    *)
(* calls), any BDD held across public operations must be reachable     *)
(* from a registered root — otherwise its nodes are swept and later    *)
(* re-creation breaks hash-consing (physical [equal] on semantically   *)
(* equal functions). The symbolic layer registers its relation         *)
(* conjuncts, reached sets and frontiers accordingly.                  *)
(* ------------------------------------------------------------------ *)

type root = int

let add_root m t =
  let r = m.next_root in
  m.next_root <- r + 1;
  Hashtbl.replace m.roots r t;
  r

let set_root m r t = Hashtbl.replace m.roots r t
let remove_root m r = Hashtbl.remove m.roots r

let protect m t =
  ignore (add_root m t);
  t

(* Scoped pin: keep [t] rooted for the duration of [f] — for an
   intermediate that must stay live across further operations but not
   beyond. *)
let pinned m t f =
  let r = add_root m t in
  Fun.protect ~finally:(fun () -> remove_root m r) f

let gc m =
  (* mark: recursion depth is bounded by the variable count (variables
     strictly increase along lo/hi edges) *)
  let marked = Bytes.make (max 2 m.next_uid) '\000' in
  let rec mark t =
    match t with
    | False | True -> ()
    | Node n ->
        if Bytes.unsafe_get marked n.uid = '\000' then begin
          Bytes.unsafe_set marked n.uid '\001';
          mark n.lo;
          mark n.hi
        end
  in
  Hashtbl.iter (fun _ t -> mark t) m.roots;
  List.iter mark m.temp_roots;
  (* literal nodes are pinned for the manager's lifetime: a bare
     literal held by a caller across operations must never be swept *)
  Array.iter mark m.pos_lits;
  Array.iter mark m.neg_lits;
  (* sweep: rebuild the unique table with only marked nodes (children
     of a marked node are marked, so every rebuilt key is unchanged)
     and recycle the uids of the rest *)
  let before = Itab.length m.unique in
  let survivors = ref [] in
  let n_live = ref 0 in
  Itab.iter
    (fun key node ->
      match node with
      | Node n ->
          if Bytes.unsafe_get marked n.uid = '\001' then begin
            survivors := (key, node) :: !survivors;
            incr n_live
          end
          else m.free_uids <- n.uid :: m.free_uids
      | False | True -> ())
    m.unique;
  let fresh = Itab.create (max m.cache_size0 ((!n_live * 4 / 3) + 16)) False in
  List.iter (fun (key, node) -> Itab.add fresh key node) !survivors;
  m.unique <- fresh;
  (* every op cache may point at swept nodes: invalidate them all *)
  m.and_cache <- Itab.create m.cache_size0 False;
  m.or_cache <- Itab.create m.cache_size0 False;
  m.xor_cache <- Itab.create m.cache_size0 False;
  m.not_cache <- Itab.create (m.cache_size0 / 4) False;
  m.ite_cache <- Itab2.create (m.cache_size0 / 4) False;
  let freed = before - !n_live in
  m.gc_runs <- m.gc_runs + 1;
  m.gc_reclaimed <- m.gc_reclaimed + freed;
  Obs.incr c_gc_runs;
  Obs.add c_gc_reclaimed freed;
  Obs.set g_nodes_live !n_live;
  Obs.event "bdd.gc" ~fields:(fun () ->
      [ ("freed", Simcov_util.Json.Int freed);
        ("live", Simcov_util.Json.Int !n_live) ]);
  freed

(* Run a public operation: pin its BDD arguments, and at the outermost
   nesting level turn [Gc_needed] into collect-and-retry (the retry
   recomputes from the pinned arguments with cold caches, so a sweep
   in the middle of a half-built result is safe). Collection is only
   attempted when the caller opted into resource governance (a node
   limit or registered roots); otherwise the limit is a hard error, as
   an unrooted legacy caller would not survive a sweep. *)
let run_op m args f =
  (* arguments are pinned at every nesting depth, so a public op called
     internally on an unrooted intermediate is protected even when the
     collection fires deeper in the nesting *)
  let saved = m.temp_roots in
  m.temp_roots <- List.rev_append args saved;
  if m.op_depth > 0 then begin
    m.op_depth <- m.op_depth + 1;
    Fun.protect
      ~finally:(fun () ->
        m.temp_roots <- saved;
        m.op_depth <- m.op_depth - 1)
      f
  end
  else begin
    m.op_depth <- 1;
    Fun.protect
      ~finally:(fun () ->
        m.temp_roots <- saved;
        m.op_depth <- 0)
      (fun () ->
        let governed = m.max_nodes < uid_limit || Hashtbl.length m.roots > 0 in
        let rec attempt tries =
          try f ()
          with Gc_needed ->
            if not governed then raise (Node_limit (live_nodes m));
            let freed = gc m in
            if freed = 0 || tries = 0 then raise (Node_limit (live_nodes m));
            attempt (tries - 1)
        in
        attempt 2)
  end

let alloc_uid m =
  match m.free_uids with
  | u :: rest ->
      m.free_uids <- rest;
      u
  | [] ->
      if m.next_uid >= uid_limit then raise Gc_needed;
      let u = m.next_uid in
      m.next_uid <- u + 1;
      u

let mk m v lo hi =
  if lo == hi then lo
  else begin
    let key = pack3 v (id lo) (id hi) in
    let i = Itab.find_idx m.unique key in
    if i >= 0 then begin
      Obs.incr c_unique_hit;
      Itab.value m.unique i
    end
    else begin
      if Itab.length m.unique >= m.max_nodes then raise Gc_needed;
      Obs.incr c_unique_miss;
      let n = Node { v; lo; hi; uid = alloc_uid m } in
      Itab.add m.unique key n;
      let live = Itab.length m.unique in
      if live > m.peak_live then m.peak_live <- live;
      Obs.set g_nodes_live live;
      Obs.set_max g_nodes_peak live;
      n
    end
  end

(* Literals are created on first use and cached for the manager's
   lifetime; the GC marks the cache, so a literal can never be swept
   out from under a caller holding it across other operations. *)
let var m v =
  if v < 0 || v >= m.nvars then invalid_arg "Bdd.var: variable out of range";
  match m.pos_lits.(v) with
  | False ->
      let n = run_op m [] (fun () -> mk m v False True) in
      m.pos_lits.(v) <- n;
      n
  | n -> n

let nvar m v =
  if v < 0 || v >= m.nvars then invalid_arg "Bdd.nvar: variable out of range";
  match m.neg_lits.(v) with
  | False ->
      let n = run_op m [] (fun () -> mk m v True False) in
      m.neg_lits.(v) <- n;
      n
  | n -> n

let is_true t = t == True
let is_false t = t == False
let equal a b = a == b

let topvar = function
  | Node n -> n.v
  | False | True -> invalid_arg "Bdd.topvar: constant"

let low = function
  | Node n -> n.lo
  | (False | True) as c -> c

let high = function
  | Node n -> n.hi
  | (False | True) as c -> c

let size t =
  let seen = Hashtbl.create 64 in
  let rec go t =
    match t with
    | False | True -> ()
    | Node n ->
        if not (Hashtbl.mem seen n.uid) then begin
          Hashtbl.add seen n.uid ();
          go n.lo;
          go n.hi
        end
  in
  go t;
  Hashtbl.length seen + 2

(* The variable of a node for cofactoring purposes: constants sort
   below every real variable. *)
let level = function False | True -> max_int | Node n -> n.v

let cof t v =
  match t with
  | Node n when n.v = v -> (n.lo, n.hi)
  | _ -> (t, t)

let rec bnot_rec m t =
  match t with
  | False -> True
  | True -> False
  | Node n -> (
      let i = Itab.find_idx m.not_cache n.uid in
      if i >= 0 then begin
        Obs.incr c_not_hit;
        Itab.value m.not_cache i
      end
      else begin
        Obs.incr c_not_miss;
        let r = mk m n.v (bnot_rec m n.lo) (bnot_rec m n.hi) in
        Itab.add m.not_cache n.uid r;
        r
      end)

let bnot m t = run_op m [ t ] (fun () -> bnot_rec m t)

let rec band_rec m a b =
  match (a, b) with
  | False, _ | _, False -> False
  | True, x | x, True -> x
  | Node na, Node nb ->
      if a == b then a
      else begin
        let key =
          if na.uid <= nb.uid then pack2 na.uid nb.uid else pack2 nb.uid na.uid
        in
        let i = Itab.find_idx m.and_cache key in
        if i >= 0 then begin
          Obs.incr c_and_hit;
          Itab.value m.and_cache i
        end
        else begin
          Obs.incr c_and_miss;
          let v = min na.v nb.v in
          let alo, ahi = cof a v and blo, bhi = cof b v in
          let r = mk m v (band_rec m alo blo) (band_rec m ahi bhi) in
          Itab.add m.and_cache key r;
          r
        end
      end

let band m a b = run_op m [ a; b ] (fun () -> band_rec m a b)

(* Direct recursive OR with its own cache — the original kernel
   expanded a|b as ~(~a & ~b), paying three negation walks per
   operation. *)
let rec bor_rec m a b =
  match (a, b) with
  | True, _ | _, True -> True
  | False, x | x, False -> x
  | Node na, Node nb ->
      if a == b then a
      else begin
        let key =
          if na.uid <= nb.uid then pack2 na.uid nb.uid else pack2 nb.uid na.uid
        in
        let i = Itab.find_idx m.or_cache key in
        if i >= 0 then begin
          Obs.incr c_or_hit;
          Itab.value m.or_cache i
        end
        else begin
          Obs.incr c_or_miss;
          let v = min na.v nb.v in
          let alo, ahi = cof a v and blo, bhi = cof b v in
          let r = mk m v (bor_rec m alo blo) (bor_rec m ahi bhi) in
          Itab.add m.or_cache key r;
          r
        end
      end

let bor m a b = run_op m [ a; b ] (fun () -> bor_rec m a b)

let rec bxor_rec m a b =
  match (a, b) with
  | False, x | x, False -> x
  | True, x | x, True -> bnot_rec m x
  | Node na, Node nb ->
      if a == b then False
      else begin
        let key =
          if na.uid <= nb.uid then pack2 na.uid nb.uid else pack2 nb.uid na.uid
        in
        let i = Itab.find_idx m.xor_cache key in
        if i >= 0 then begin
          Obs.incr c_xor_hit;
          Itab.value m.xor_cache i
        end
        else begin
          Obs.incr c_xor_miss;
          let v = min na.v nb.v in
          let alo, ahi = cof a v and blo, bhi = cof b v in
          let r = mk m v (bxor_rec m alo blo) (bxor_rec m ahi bhi) in
          Itab.add m.xor_cache key r;
          r
        end
      end

let bxor m a b = run_op m [ a; b ] (fun () -> bxor_rec m a b)

(* Compound connectives run as ONE public operation: on a mid-op
   collection the retry restarts the whole body from the pinned
   arguments, so the inner intermediate needs no root of its own. *)
let bimp m a b = run_op m [ a; b ] (fun () -> bor_rec m (bnot_rec m a) b)
let biff m a b = run_op m [ a; b ] (fun () -> bnot_rec m (bxor_rec m a b))

let rec ite_rec m c t e =
  match c with
  | True -> t
  | False -> e
  | Node _ ->
      if t == e then t
      else if is_true t && is_false e then c
      else begin
        let ka = pack2 (id c) (id t) and kb = id e in
        let i = Itab2.find_idx m.ite_cache ka kb in
        if i >= 0 then begin
          Obs.incr c_ite_hit;
          Itab2.value m.ite_cache i
        end
        else begin
          Obs.incr c_ite_miss;
          let v = min (level c) (min (level t) (level e)) in
          let clo, chi = cof c v
          and tlo, thi = cof t v
          and elo, ehi = cof e v in
          let r = mk m v (ite_rec m clo tlo elo) (ite_rec m chi thi ehi) in
          Itab2.add m.ite_cache ka kb r;
          r
        end
      end

let ite m c t e = run_op m [ c; t; e ] (fun () -> ite_rec m c t e)

(* n-ary folds pin the whole operand list up front — the not-yet-folded
   tail must survive any collection triggered while folding the head *)
let conj m ts = run_op m ts (fun () -> List.fold_left (band_rec m) True ts)
let disj m ts = run_op m ts (fun () -> List.fold_left (bor_rec m) False ts)

let rec cofactor_rec m t v b =
  match t with
  | False | True -> t
  | Node n ->
      if n.v > v then t
      else if n.v = v then if b then n.hi else n.lo
      else mk m n.v (cofactor_rec m n.lo v b) (cofactor_rec m n.hi v b)

let cofactor m t v b = run_op m [ t ] (fun () -> cofactor_rec m t v b)

(* A quantified-variable set as a flat bool array, validated against
   the manager's variable range. *)
let var_set m vars =
  let vset = Array.make m.nvars false in
  List.iter
    (fun v ->
      if v < 0 || v >= m.nvars then invalid_arg "Bdd: variable out of range";
      vset.(v) <- true)
    vars;
  vset

(* Quantification: membership probed in a flat bool array; results
   memoized per call keyed by node uid (valid because the var set is
   fixed for the call). *)
let quantify_impl m ~disjunctive vset t =
  let cache = Itab.create 256 False in
  let combine a b = if disjunctive then bor_rec m a b else band_rec m a b in
  let rec go t =
    match t with
    | False | True -> t
    | Node n -> (
        let i = Itab.find_idx cache n.uid in
        if i >= 0 then Itab.value cache i
        else begin
          let r =
            if vset.(n.v) then combine (go n.lo) (go n.hi)
            else mk m n.v (go n.lo) (go n.hi)
          in
          Itab.add cache n.uid r;
          r
        end)
  in
  go t

let quantify m ~disjunctive vars t =
  let vset = var_set m vars in
  run_op m [ t ] (fun () -> quantify_impl m ~disjunctive vset t)

let exists m vars t = quantify m ~disjunctive:true vars t
let forall m vars t = quantify m ~disjunctive:false vars t

(* Fused AND-EXISTS: quantifies while conjoining, pruning as soon as a
   branch reaches True under the quantifier. *)
let and_exists_impl m vset f g =
  let cache = Itab.create 1024 False in
  let rec go f g =
    match (f, g) with
    | False, _ | _, False -> False
    | True, True -> True
    | _ ->
        let fid = id f and gid = id g in
        let key = if fid <= gid then pack2 fid gid else pack2 gid fid in
        let i = Itab.find_idx cache key in
        if i >= 0 then Itab.value cache i
        else begin
          let v = min (level f) (level g) in
          let flo, fhi = cof f v and glo, ghi = cof g v in
          let r =
            if vset.(v) then begin
              let lo = go flo glo in
              if is_true lo then True else bor_rec m lo (go fhi ghi)
            end
            else mk m v (go flo glo) (go fhi ghi)
          in
          Itab.add cache key r;
          r
        end
  in
  go f g

let and_exists m vars f g =
  let vset = var_set m vars in
  run_op m [ f; g ] (fun () -> and_exists_impl m vset f g)

let support _m t =
  let seen = Hashtbl.create 64 in
  let vars = Hashtbl.create 16 in
  let rec go t =
    match t with
    | False | True -> ()
    | Node n ->
        if not (Hashtbl.mem seen n.uid) then begin
          Hashtbl.add seen n.uid ();
          Hashtbl.replace vars n.v ();
          go n.lo;
          go n.hi
        end
  in
  go t;
  Hashtbl.fold (fun v () acc -> v :: acc) vars [] |> List.sort Int.compare

(* Multi-operand fused AND-EXISTS with early quantification: fold the
   conjuncts left to right, and quantify each variable out with the
   conjunct in which it occurs for the last time — at that point no
   remaining conjunct mentions it, so
     exists V (c0 & c1 & ... & cn)
   = exists V_n (... (exists V_1 ((exists V_0 c0) & c1) ...) & cn)
   where V_i is the set of variables whose last occurrence is c_i.
   Intermediate results never carry variables that are already dead,
   which is the whole point of a partitioned transition relation.
   Conjunct order is the caller's ordering heuristic; correctness does
   not depend on it. *)
let and_exists_list m vars conjuncts =
  match conjuncts with
  | [] -> True
  | [ f ] -> exists m vars f
  | _ ->
      let fs = Array.of_list conjuncts in
      let n = Array.length fs in
      let qset = var_set m vars in
      (* last.(v) = index of the last conjunct whose support contains v *)
      let last = Array.make m.nvars (-1) in
      Array.iteri
        (fun i f -> List.iter (fun v -> last.(v) <- i) (support m f))
        fs;
      let quantify_at = Array.make n [] in
      Array.iteri
        (fun v l -> if qset.(v) && l >= 0 then quantify_at.(l) <- v :: quantify_at.(l))
        last;
      run_op m conjuncts (fun () ->
          let acc = ref True in
          for i = 0 to n - 1 do
            acc :=
              (match quantify_at.(i) with
              | [] -> band_rec m !acc fs.(i)
              | q -> and_exists_impl m (var_set m q) !acc fs.(i))
          done;
          !acc)

let rename m subst t =
  run_op m [ t ] (fun () ->
      let cache = Itab.create 256 False in
      let rec go t =
        match t with
        | False | True -> t
        | Node n -> (
            let i = Itab.find_idx cache n.uid in
            if i >= 0 then Itab.value cache i
            else begin
              let v' = subst n.v in
              assert (v' >= 0 && v' < m.nvars);
              let r = mk m v' (go n.lo) (go n.hi) in
              Itab.add cache n.uid r;
              r
            end)
      in
      go t)

let restrict_cube m assigns t =
  List.fold_left (fun acc (v, b) -> cofactor m acc v b) t assigns

let any_sat _m t =
  let rec go t acc =
    match t with
    | True -> List.rev acc
    | False -> raise Not_found
    | Node n -> if is_false n.hi then go n.lo ((n.v, false) :: acc) else go n.hi ((n.v, true) :: acc)
  in
  go t []

let sat_count _m ~nvars t =
  if nvars < 0 then invalid_arg "Bdd.sat_count: negative nvars";
  (* precomputed powers of two replace the Float.pow call that used to
     run on every node and every leaf *)
  let pow2 = Array.init (nvars + 1) (fun i -> Float.ldexp 1.0 i) in
  let cache = Hashtbl.create 256 in
  (* count over the subspace of variables >= from *)
  let rec go t from =
    match t with
    | False -> 0.0
    | True -> pow2.(nvars - from)
    | Node n ->
        if n.v >= nvars then
          invalid_arg
            (Printf.sprintf "Bdd.sat_count: nvars = %d but support contains variable %d"
               nvars n.v);
        let below =
          match Hashtbl.find_opt cache n.uid with
          | Some c -> c
          | None ->
              let c = go n.lo (n.v + 1) +. go n.hi (n.v + 1) in
              Hashtbl.add cache n.uid c;
              c
        in
        below *. pow2.(n.v - from)
  in
  go t 0

let eval _m t assign =
  let rec go t =
    match t with
    | True -> true
    | False -> false
    | Node n -> if assign n.v then go n.hi else go n.lo
  in
  go t

let iter_sat m ~vars f t =
  let k = Array.length vars in
  let buf = Array.make k false in
  let rec go i t =
    if i = k then begin
      match t with
      | True -> f buf
      | False -> ()
      | Node _ -> invalid_arg "Bdd.iter_sat: support escapes vars"
    end
    else if not (is_false t) then begin
      let v = vars.(i) in
      (* [t] stays live across the whole low-branch enumeration, which
         runs further cofactor operations: pin it *)
      pinned m t (fun () ->
          buf.(i) <- false;
          go (i + 1) (cofactor m t v false);
          buf.(i) <- true;
          go (i + 1) (cofactor m t v true))
    end
  in
  if not (is_false t) then go 0 t

let pp ppf t = Format.fprintf ppf "<bdd #%d, %d nodes>" (id t) (size t)

let to_dot ?(var_name = fun v -> "x" ^ string_of_int v) t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph bdd {\n";
  Buffer.add_string buf "  node [shape=circle];\n";
  Buffer.add_string buf "  F [shape=box, label=\"0\"];\n";
  Buffer.add_string buf "  T [shape=box, label=\"1\"];\n";
  let seen = Hashtbl.create 64 in
  let node_ref = function False -> "F" | True -> "T" | Node n -> "n" ^ string_of_int n.uid in
  let rec go t =
    match t with
    | False | True -> ()
    | Node n ->
        if not (Hashtbl.mem seen n.uid) then begin
          Hashtbl.add seen n.uid ();
          Buffer.add_string buf
            (Printf.sprintf "  n%d [label=\"%s\"];\n" n.uid (var_name n.v));
          Buffer.add_string buf
            (Printf.sprintf "  n%d -> %s [style=dashed];\n" n.uid (node_ref n.lo));
          Buffer.add_string buf (Printf.sprintf "  n%d -> %s;\n" n.uid (node_ref n.hi));
          go n.lo;
          go n.hi
        end
  in
  go t;
  Buffer.add_string buf (Printf.sprintf "  root [shape=none, label=\"\"];\n  root -> %s;\n" (node_ref t));
  Buffer.add_string buf "}\n";
  Buffer.contents buf
