type t = False | True | Node of { mutable v : int; mutable lo : t; mutable hi : t; uid : int }
(* Node fields are mutable for exactly one reason: an adjacent-level
   swap during dynamic reordering rewrites a node in place, so every
   OCaml value holding it (roots, pinned arguments, cached literals)
   keeps seeing the same boolean function through the same physical
   node. Outside [swap_adjacent] the fields are never written. *)

(* ------------------------------------------------------------------ *)
(* Packed int keys                                                     *)
(*                                                                     *)
(* Every table in the manager is keyed by a single native int. The     *)
(* unique table is split per variable, so its key is just the child    *)
(* pair (lo_uid, hi_uid) packed as lo:26 | hi:26; a binary-operation   *)
(* cache entry is (uid_a, uid_b) packed the same way. The limits —     *)
(* 1024 variables, 2^26 (~67M) live nodes — are far beyond what fits   *)
(* in memory here and are enforced explicitly. Uids of garbage-        *)
(* collected nodes are recycled, so the 2^26 ceiling applies to peak   *)
(* live nodes, not to the total ever allocated.                        *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Telemetry                                                           *)
(*                                                                     *)
(* Process-global counters shared by every manager (cf. the Obs        *)
(* overhead contract: each probe below is one int store, which is what *)
(* lets them sit inside the cache-lookup hot paths). The live/peak     *)
(* gauges track the manager that allocated or collected most recently. *)
(* ------------------------------------------------------------------ *)

module Obs = Simcov_obs.Obs

let c_unique_hit = Obs.counter "bdd.unique.hit"
let c_unique_miss = Obs.counter "bdd.unique.miss"
let c_and_hit = Obs.counter "bdd.cache.and.hit"
let c_and_miss = Obs.counter "bdd.cache.and.miss"
let c_or_hit = Obs.counter "bdd.cache.or.hit"
let c_or_miss = Obs.counter "bdd.cache.or.miss"
let c_xor_hit = Obs.counter "bdd.cache.xor.hit"
let c_xor_miss = Obs.counter "bdd.cache.xor.miss"
let c_not_hit = Obs.counter "bdd.cache.not.hit"
let c_not_miss = Obs.counter "bdd.cache.not.miss"
let c_ite_hit = Obs.counter "bdd.cache.ite.hit"
let c_ite_miss = Obs.counter "bdd.cache.ite.miss"
let c_gc_runs = Obs.counter "bdd.gc.runs"
let c_gc_reclaimed = Obs.counter "bdd.gc.reclaimed"
let g_nodes_live = Obs.gauge "bdd.nodes.live"
let g_nodes_peak = Obs.gauge "bdd.nodes.peak"
let c_reorder_runs = Obs.counter "bdd.reorder.runs"
let c_reorder_swaps = Obs.counter "bdd.reorder.swaps"
let g_reorder_before = Obs.gauge "bdd.reorder.nodes_before"
let g_reorder_after = Obs.gauge "bdd.reorder.nodes_after"

let uid_bits = 26
let uid_limit = 1 lsl uid_bits
let var_limit = 1 lsl 10

let pack2 a b = (a lsl uid_bits) lor b

(* ------------------------------------------------------------------ *)
(* Open-addressed int-keyed hash tables                                *)
(*                                                                     *)
(* Linear probing over power-of-two arrays. Deletion uses tombstones   *)
(* (needed by the reordering swap, which unlinks individual nodes);    *)
(* the garbage collector still compacts wholesale. Real keys are       *)
(* always non-negative, so the two sentinels live in the negative      *)
(* range.                                                              *)
(* ------------------------------------------------------------------ *)

let empty_key = min_int
let tomb_key = min_int + 1

let mix k =
  let h = k * 0x2545F4914F6CDD1D in
  h lxor (h lsr 29)

module Itab = struct
  type 'a tab = {
    mutable keys : int array;
    mutable data : 'a array;
    mutable used : int;  (* live entries *)
    mutable filled : int;  (* live entries + tombstones *)
    dummy : 'a;
  }

  let round_pow2 n =
    let rec go c = if c >= n then c else go (c * 2) in
    go 16

  let create size dummy =
    let n = round_pow2 size in
    {
      keys = Array.make n empty_key;
      data = Array.make n dummy;
      used = 0;
      filled = 0;
      dummy;
    }

  (* index of [k], or -1 when absent; tombstones are skipped *)
  let find_idx t k =
    let m = Array.length t.keys - 1 in
    let keys = t.keys in
    let rec go i =
      let key = Array.unsafe_get keys i in
      if key = k then i else if key = empty_key then -1 else go ((i + 1) land m)
    in
    go (mix k land m)

  let value t i = Array.unsafe_get t.data i

  (* rehash, dropping tombstones; grows only when the live load asks
     for it (a rehash at the same size is how a tombstone-heavy table
     recovers) *)
  let resize t =
    let old_keys = t.keys and old_data = t.data in
    let len = Array.length old_keys in
    let n = if 2 * (t.used + 1) > len then 2 * len else len in
    let keys = Array.make n empty_key and data = Array.make n t.dummy in
    let m = n - 1 in
    Array.iteri
      (fun i k ->
        if k <> empty_key && k <> tomb_key then begin
          let rec go j =
            if Array.unsafe_get keys j = empty_key then j else go ((j + 1) land m)
          in
          let j = go (mix k land m) in
          keys.(j) <- k;
          data.(j) <- old_data.(i)
        end)
      old_keys;
    t.keys <- keys;
    t.data <- data;
    t.filled <- t.used

  let add t k v =
    if 4 * (t.filled + 1) > 3 * Array.length t.keys then resize t;
    let m = Array.length t.keys - 1 in
    (* remember the first tombstone on the probe path: if the key is
       absent it is the insertion slot *)
    let rec go i tomb =
      let key = Array.unsafe_get t.keys i in
      if key = empty_key then begin
        if tomb >= 0 then begin
          t.keys.(tomb) <- k;
          t.data.(tomb) <- v
        end
        else begin
          t.keys.(i) <- k;
          t.data.(i) <- v;
          t.filled <- t.filled + 1
        end;
        t.used <- t.used + 1
      end
      else if key = k then t.data.(i) <- v
      else if key = tomb_key && tomb < 0 then go ((i + 1) land m) i
      else go ((i + 1) land m) tomb
    in
    go (mix k land m) (-1)

  let remove t k =
    let i = find_idx t k in
    if i >= 0 then begin
      t.keys.(i) <- tomb_key;
      t.data.(i) <- t.dummy;
      t.used <- t.used - 1
    end

  let iter f t =
    let keys = t.keys and data = t.data in
    for i = 0 to Array.length keys - 1 do
      let k = Array.unsafe_get keys i in
      if k <> empty_key && k <> tomb_key then f k (Array.unsafe_get data i)
    done

  let length t = t.used
end

(* ITE needs three uids (78 bits), so its cache carries two key words
   per entry. *)
module Itab2 = struct
  type 'a tab = {
    mutable ka : int array;
    mutable kb : int array;
    mutable data : 'a array;
    mutable used : int;
    dummy : 'a;
  }

  let create size dummy =
    let n = Itab.round_pow2 size in
    {
      ka = Array.make n empty_key;
      kb = Array.make n 0;
      data = Array.make n dummy;
      used = 0;
      dummy;
    }

  let hash a b = mix (a lxor mix b)

  let find_idx t a b =
    let m = Array.length t.ka - 1 in
    let rec go i =
      let key = Array.unsafe_get t.ka i in
      if key = a && Array.unsafe_get t.kb i = b then i
      else if key = empty_key then -1
      else go ((i + 1) land m)
    in
    go (hash a b land m)

  let value t i = Array.unsafe_get t.data i

  let resize t =
    let old_ka = t.ka and old_kb = t.kb and old_data = t.data in
    let n = 2 * Array.length old_ka in
    let ka = Array.make n empty_key
    and kb = Array.make n 0
    and data = Array.make n t.dummy in
    let m = n - 1 in
    Array.iteri
      (fun i a ->
        if a <> empty_key then begin
          let b = old_kb.(i) in
          let rec go j =
            if Array.unsafe_get ka j = empty_key then j else go ((j + 1) land m)
          in
          let j = go (hash a b land m) in
          ka.(j) <- a;
          kb.(j) <- b;
          data.(j) <- old_data.(i)
        end)
      old_ka;
    t.ka <- ka;
    t.kb <- kb;
    t.data <- data

  let add t a b v =
    if 4 * (t.used + 1) > 3 * Array.length t.ka then resize t;
    let m = Array.length t.ka - 1 in
    let rec go i =
      let key = Array.unsafe_get t.ka i in
      if key = empty_key then begin
        t.ka.(i) <- a;
        t.kb.(i) <- b;
        t.data.(i) <- v;
        t.used <- t.used + 1
      end
      else if key = a && Array.unsafe_get t.kb i = b then t.data.(i) <- v
      else go ((i + 1) land m)
    in
    go (hash a b land m)
end

(* ------------------------------------------------------------------ *)
(* Manager                                                             *)
(* ------------------------------------------------------------------ *)

type gc_stats = {
  runs : int;
  reclaimed : int;
  live : int;
  peak_live : int;
}

type reorder_stats = {
  reorder_runs : int;
  reorder_swaps : int;
  last_nodes_before : int;
  last_nodes_after : int;
}

type man = {
  nvars : int;
  cache_size0 : int;
  (* unique table, split per VARIABLE (not per level): a node whose
     variable merely changes level during a swap never moves tables *)
  subtables : t Itab.tab array;
  (* the var <-> level indirection: [var_of_level.(l)] is the variable
     sitting at position [l] of the order, [level_of_var] its inverse.
     Both start as the identity and change only under reordering. *)
  level_of_var : int array;
  var_of_level : int array;
  mutable live : int;  (* total nodes across all subtables *)
  mutable next_uid : int;
  mutable free_uids : int list;  (* uids of swept nodes, ready for reuse *)
  mutable n_free : int;  (* List.length free_uids, maintained *)
  mutable and_cache : t Itab.tab;
  mutable or_cache : t Itab.tab;
  mutable xor_cache : t Itab.tab;
  mutable not_cache : t Itab.tab;
  mutable ite_cache : t Itab2.tab;
  mutable max_nodes : int;  (* live-node ceiling; [uid_limit] = unbounded *)
  pos_lits : t array;  (* literal nodes, created on first use, never swept *)
  neg_lits : t array;
  roots : (int, t) Hashtbl.t;  (* registered external roots *)
  mutable next_root : int;
  mutable temp_roots : t list;  (* arguments of the op in flight *)
  mutable op_depth : int;  (* public-operation nesting depth *)
  mutable gc_runs : int;
  mutable gc_reclaimed : int;
  mutable peak_live : int;
  (* dynamic reordering *)
  mutable auto_reorder : bool;
  mutable reorder_ratio : float;  (* growth ratio that triggers a sift *)
  mutable reorder_min : int;  (* no auto sift below this live count *)
  mutable last_reorder_live : int;  (* live count at the last sift *)
  mutable in_reorder : bool;
  mutable groups : int array array;  (* level-glued variable groups *)
  mutable reorder_runs : int;
  mutable reorder_swapped : int;
  mutable last_before : int;
  mutable last_after : int;
  mutable refs : int array;  (* uid -> refcount; non-empty during a sift only *)
}

exception Node_limit of int

(* Internal: the unique table is full; the outermost public operation
   catches this, garbage-collects, and retries. *)
exception Gc_needed

let man ?(cache_size = 1 lsl 14) ?max_nodes nvars =
  if nvars < 0 then invalid_arg "Bdd.man: negative variable count";
  if nvars > var_limit then
    invalid_arg
      (Printf.sprintf "Bdd.man: %d variables exceeds the limit of %d" nvars
         var_limit);
  let max_nodes =
    match max_nodes with
    | None -> uid_limit
    | Some n ->
        if n <= 0 then invalid_arg "Bdd.man: non-positive max_nodes";
        min n uid_limit
  in
  {
    nvars;
    cache_size0 = cache_size;
    subtables = Array.init nvars (fun _ -> Itab.create 16 False);
    level_of_var = Array.init nvars Fun.id;
    var_of_level = Array.init nvars Fun.id;
    live = 0;
    next_uid = 2;
    free_uids = [];
    n_free = 0;
    and_cache = Itab.create cache_size False;
    or_cache = Itab.create cache_size False;
    xor_cache = Itab.create cache_size False;
    not_cache = Itab.create (cache_size / 4) False;
    ite_cache = Itab2.create (cache_size / 4) False;
    max_nodes;
    pos_lits = Array.make nvars False;
    neg_lits = Array.make nvars False;
    roots = Hashtbl.create 16;
    next_root = 0;
    temp_roots = [];
    op_depth = 0;
    gc_runs = 0;
    gc_reclaimed = 0;
    peak_live = 0;
    auto_reorder = false;
    reorder_ratio = 2.0;
    reorder_min = 4096;
    last_reorder_live = 4096;
    in_reorder = false;
    groups = [||];
    reorder_runs = 0;
    reorder_swapped = 0;
    last_before = 0;
    last_after = 0;
    refs = [||];
  }

let num_vars m = m.nvars
let live_nodes m = m.live
let node_count m = live_nodes m + 2
let peak_node_count m = m.peak_live + 2
let max_nodes m = if m.max_nodes >= uid_limit then None else Some m.max_nodes

let set_max_nodes m limit =
  match limit with
  | None -> m.max_nodes <- uid_limit
  | Some n ->
      if n <= 0 then invalid_arg "Bdd.set_max_nodes: non-positive limit";
      m.max_nodes <- min n uid_limit

let gc_stats (m : man) : gc_stats =
  {
    runs = m.gc_runs;
    reclaimed = m.gc_reclaimed;
    live = live_nodes m;
    peak_live = m.peak_live;
  }

let reorder_stats (m : man) : reorder_stats =
  {
    reorder_runs = m.reorder_runs;
    reorder_swaps = m.reorder_swapped;
    last_nodes_before = m.last_before;
    last_nodes_after = m.last_after;
  }

let order m = Array.copy m.var_of_level
let level_of_var m v =
  if v < 0 || v >= m.nvars then invalid_arg "Bdd.level_of_var: variable out of range";
  m.level_of_var.(v)

let bfalse _ = False
let btrue _ = True
let of_bool _ b = if b then True else False

let id = function False -> 0 | True -> 1 | Node n -> n.uid

(* ------------------------------------------------------------------ *)
(* Roots and garbage collection                                        *)
(*                                                                     *)
(* Collecting means compacting the unique table down to the nodes      *)
(* reachable from the registered roots (plus the arguments of the      *)
(* operation in flight) and recycling the uids of everything else. Op  *)
(* caches may reference swept nodes, so every sweep invalidates them   *)
(* wholesale.                                                          *)
(*                                                                     *)
(* Contract: on a manager with a node limit (or under explicit [gc]    *)
(* or [reorder] calls), any BDD held across public operations must be  *)
(* reachable from a registered root — otherwise its nodes are swept    *)
(* and later re-creation breaks hash-consing (physical [equal] on      *)
(* semantically equal functions). The symbolic layer registers its     *)
(* relation conjuncts, reached sets and frontiers accordingly.         *)
(* ------------------------------------------------------------------ *)

type root = int

let add_root m t =
  let r = m.next_root in
  m.next_root <- r + 1;
  Hashtbl.replace m.roots r t;
  r

let set_root m r t = Hashtbl.replace m.roots r t
let remove_root m r = Hashtbl.remove m.roots r

let protect m t =
  ignore (add_root m t);
  t

(* Scoped pin: keep [t] rooted for the duration of [f] — for an
   intermediate that must stay live across further operations but not
   beyond. *)
let pinned m t f =
  let r = add_root m t in
  Fun.protect ~finally:(fun () -> remove_root m r) f

let clear_caches m =
  m.and_cache <- Itab.create m.cache_size0 False;
  m.or_cache <- Itab.create m.cache_size0 False;
  m.xor_cache <- Itab.create m.cache_size0 False;
  m.not_cache <- Itab.create (m.cache_size0 / 4) False;
  m.ite_cache <- Itab2.create (m.cache_size0 / 4) False

let gc m =
  (* mark: recursion depth is bounded by the variable count (levels
     strictly increase along lo/hi edges) *)
  let marked = Bytes.make (max 2 m.next_uid) '\000' in
  let rec mark t =
    match t with
    | False | True -> ()
    | Node n ->
        if Bytes.unsafe_get marked n.uid = '\000' then begin
          Bytes.unsafe_set marked n.uid '\001';
          mark n.lo;
          mark n.hi
        end
  in
  Hashtbl.iter (fun _ t -> mark t) m.roots;
  List.iter mark m.temp_roots;
  (* literal nodes are pinned for the manager's lifetime: a bare
     literal held by a caller across operations must never be swept *)
  Array.iter mark m.pos_lits;
  Array.iter mark m.neg_lits;
  (* sweep: rebuild each subtable with only marked nodes (children of a
     marked node are marked, so every rebuilt key is unchanged) and
     recycle the uids of the rest *)
  let before = m.live in
  let n_live = ref 0 in
  Array.iteri
    (fun v tab ->
      let survivors = ref [] in
      let n_here = ref 0 in
      Itab.iter
        (fun key node ->
          match node with
          | Node n ->
              if Bytes.unsafe_get marked n.uid = '\001' then begin
                survivors := (key, node) :: !survivors;
                incr n_here
              end
              else begin
                m.free_uids <- n.uid :: m.free_uids;
                m.n_free <- m.n_free + 1
              end
          | False | True -> ())
        tab;
      let fresh = Itab.create ((!n_here * 4 / 3) + 16) False in
      List.iter (fun (key, node) -> Itab.add fresh key node) !survivors;
      m.subtables.(v) <- fresh;
      n_live := !n_live + !n_here)
    m.subtables;
  m.live <- !n_live;
  (* every op cache may point at swept nodes: invalidate them all *)
  clear_caches m;
  let freed = before - !n_live in
  m.gc_runs <- m.gc_runs + 1;
  m.gc_reclaimed <- m.gc_reclaimed + freed;
  Obs.incr c_gc_runs;
  Obs.add c_gc_reclaimed freed;
  Obs.set g_nodes_live !n_live;
  Obs.event "bdd.gc" ~fields:(fun () ->
      [ ("freed", Simcov_util.Json.Int freed);
        ("live", Simcov_util.Json.Int !n_live) ]);
  freed

(* forward reference: the sifting pass, defined after the node
   constructors it needs *)
let reorder_pass = ref (fun (_ : man) -> false)

(* Run a public operation: pin its BDD arguments, and at the outermost
   nesting level turn [Gc_needed] into collect-and-retry (the retry
   recomputes from the pinned arguments with cold caches, so a sweep
   in the middle of a half-built result is safe). Collection is only
   attempted when the caller opted into resource governance (a node
   limit or registered roots); otherwise the limit is a hard error, as
   an unrooted legacy caller would not survive a sweep. *)
let run_op m args f =
  (* arguments are pinned at every nesting depth, so a public op called
     internally on an unrooted intermediate is protected even when the
     collection fires deeper in the nesting *)
  let saved = m.temp_roots in
  m.temp_roots <- List.rev_append args saved;
  if m.op_depth > 0 then begin
    m.op_depth <- m.op_depth + 1;
    Fun.protect
      ~finally:(fun () ->
        m.temp_roots <- saved;
        m.op_depth <- m.op_depth - 1)
      f
  end
  else begin
    (* auto-reorder fires between public operations, never inside one;
       the arguments just pinned are part of the sift's sweep set.
       Enabling it is an opt-in to the rooting contract above (a sift
       garbage-collects first). *)
    if
      m.auto_reorder && not m.in_reorder
      && m.live >= m.reorder_min
      && float_of_int m.live
         > m.reorder_ratio *. float_of_int m.last_reorder_live
    then ignore (!reorder_pass m);
    m.op_depth <- 1;
    Fun.protect
      ~finally:(fun () ->
        m.temp_roots <- saved;
        m.op_depth <- 0)
      (fun () ->
        let governed = m.max_nodes < uid_limit || Hashtbl.length m.roots > 0 in
        let rec attempt tries =
          try f ()
          with Gc_needed ->
            if not governed then raise (Node_limit (live_nodes m));
            let freed = gc m in
            if freed = 0 || tries = 0 then raise (Node_limit (live_nodes m));
            attempt (tries - 1)
        in
        attempt 2)
  end

let alloc_uid m =
  match m.free_uids with
  | u :: rest ->
      m.free_uids <- rest;
      m.n_free <- m.n_free - 1;
      u
  | [] ->
      if m.next_uid >= uid_limit then raise Gc_needed;
      let u = m.next_uid in
      m.next_uid <- u + 1;
      u

let mk m v lo hi =
  if lo == hi then lo
  else begin
    let tab = m.subtables.(v) in
    let key = pack2 (id lo) (id hi) in
    let i = Itab.find_idx tab key in
    if i >= 0 then begin
      Obs.incr c_unique_hit;
      Itab.value tab i
    end
    else begin
      if m.live >= m.max_nodes then raise Gc_needed;
      Obs.incr c_unique_miss;
      let n = Node { v; lo; hi; uid = alloc_uid m } in
      Itab.add tab key n;
      m.live <- m.live + 1;
      if m.live > m.peak_live then m.peak_live <- m.live;
      Obs.set g_nodes_live m.live;
      Obs.set_max g_nodes_peak m.live;
      n
    end
  end

(* Literals are created on first use and cached for the manager's
   lifetime; the GC marks the cache, so a literal can never be swept
   out from under a caller holding it across other operations. *)
let var m v =
  if v < 0 || v >= m.nvars then invalid_arg "Bdd.var: variable out of range";
  match m.pos_lits.(v) with
  | False ->
      let n = run_op m [] (fun () -> mk m v False True) in
      m.pos_lits.(v) <- n;
      n
  | n -> n

let nvar m v =
  if v < 0 || v >= m.nvars then invalid_arg "Bdd.nvar: variable out of range";
  match m.neg_lits.(v) with
  | False ->
      let n = run_op m [] (fun () -> mk m v True False) in
      m.neg_lits.(v) <- n;
      n
  | n -> n

let is_true t = t == True
let is_false t = t == False
let equal a b = a == b

let topvar = function
  | Node n -> n.v
  | False | True -> invalid_arg "Bdd.topvar: constant"

let low = function
  | Node n -> n.lo
  | (False | True) as c -> c

let high = function
  | Node n -> n.hi
  | (False | True) as c -> c

let size t =
  let seen = Hashtbl.create 64 in
  let rec go t =
    match t with
    | False | True -> ()
    | Node n ->
        if not (Hashtbl.mem seen n.uid) then begin
          Hashtbl.add seen n.uid ();
          go n.lo;
          go n.hi
        end
  in
  go t;
  Hashtbl.length seen + 2

(* The order position of a node for cofactoring purposes: constants
   sort below every real level. *)
let lvl m = function
  | False | True -> max_int
  | Node n -> Array.unsafe_get m.level_of_var n.v

let cof t v =
  match t with
  | Node n when n.v = v -> (n.lo, n.hi)
  | _ -> (t, t)

(* The split variable of a binary operation: whichever operand's top
   variable sits higher in the order. *)
let top2 m na_v nb_v =
  if Array.unsafe_get m.level_of_var na_v <= Array.unsafe_get m.level_of_var nb_v
  then na_v
  else nb_v

let rec bnot_rec m t =
  match t with
  | False -> True
  | True -> False
  | Node n -> (
      let i = Itab.find_idx m.not_cache n.uid in
      if i >= 0 then begin
        Obs.incr c_not_hit;
        Itab.value m.not_cache i
      end
      else begin
        Obs.incr c_not_miss;
        let r = mk m n.v (bnot_rec m n.lo) (bnot_rec m n.hi) in
        Itab.add m.not_cache n.uid r;
        r
      end)

let bnot m t = run_op m [ t ] (fun () -> bnot_rec m t)

let rec band_rec m a b =
  match (a, b) with
  | False, _ | _, False -> False
  | True, x | x, True -> x
  | Node na, Node nb ->
      if a == b then a
      else begin
        let key =
          if na.uid <= nb.uid then pack2 na.uid nb.uid else pack2 nb.uid na.uid
        in
        let i = Itab.find_idx m.and_cache key in
        if i >= 0 then begin
          Obs.incr c_and_hit;
          Itab.value m.and_cache i
        end
        else begin
          Obs.incr c_and_miss;
          let v = top2 m na.v nb.v in
          let alo, ahi = cof a v and blo, bhi = cof b v in
          let r = mk m v (band_rec m alo blo) (band_rec m ahi bhi) in
          Itab.add m.and_cache key r;
          r
        end
      end

let band m a b = run_op m [ a; b ] (fun () -> band_rec m a b)

(* Direct recursive OR with its own cache — the original kernel
   expanded a|b as ~(~a & ~b), paying three negation walks per
   operation. *)
let rec bor_rec m a b =
  match (a, b) with
  | True, _ | _, True -> True
  | False, x | x, False -> x
  | Node na, Node nb ->
      if a == b then a
      else begin
        let key =
          if na.uid <= nb.uid then pack2 na.uid nb.uid else pack2 nb.uid na.uid
        in
        let i = Itab.find_idx m.or_cache key in
        if i >= 0 then begin
          Obs.incr c_or_hit;
          Itab.value m.or_cache i
        end
        else begin
          Obs.incr c_or_miss;
          let v = top2 m na.v nb.v in
          let alo, ahi = cof a v and blo, bhi = cof b v in
          let r = mk m v (bor_rec m alo blo) (bor_rec m ahi bhi) in
          Itab.add m.or_cache key r;
          r
        end
      end

let bor m a b = run_op m [ a; b ] (fun () -> bor_rec m a b)

let rec bxor_rec m a b =
  match (a, b) with
  | False, x | x, False -> x
  | True, x | x, True -> bnot_rec m x
  | Node na, Node nb ->
      if a == b then False
      else begin
        let key =
          if na.uid <= nb.uid then pack2 na.uid nb.uid else pack2 nb.uid na.uid
        in
        let i = Itab.find_idx m.xor_cache key in
        if i >= 0 then begin
          Obs.incr c_xor_hit;
          Itab.value m.xor_cache i
        end
        else begin
          Obs.incr c_xor_miss;
          let v = top2 m na.v nb.v in
          let alo, ahi = cof a v and blo, bhi = cof b v in
          let r = mk m v (bxor_rec m alo blo) (bxor_rec m ahi bhi) in
          Itab.add m.xor_cache key r;
          r
        end
      end

let bxor m a b = run_op m [ a; b ] (fun () -> bxor_rec m a b)

(* Compound connectives run as ONE public operation: on a mid-op
   collection the retry restarts the whole body from the pinned
   arguments, so the inner intermediate needs no root of its own. *)
let bimp m a b = run_op m [ a; b ] (fun () -> bor_rec m (bnot_rec m a) b)
let biff m a b = run_op m [ a; b ] (fun () -> bnot_rec m (bxor_rec m a b))

let rec ite_rec m c t e =
  match c with
  | True -> t
  | False -> e
  | Node _ ->
      if t == e then t
      else if is_true t && is_false e then c
      else begin
        let ka = pack2 (id c) (id t) and kb = id e in
        let i = Itab2.find_idx m.ite_cache ka kb in
        if i >= 0 then begin
          Obs.incr c_ite_hit;
          Itab2.value m.ite_cache i
        end
        else begin
          Obs.incr c_ite_miss;
          let l = min (lvl m c) (min (lvl m t) (lvl m e)) in
          let v = m.var_of_level.(l) in
          let clo, chi = cof c v
          and tlo, thi = cof t v
          and elo, ehi = cof e v in
          let r = mk m v (ite_rec m clo tlo elo) (ite_rec m chi thi ehi) in
          Itab2.add m.ite_cache ka kb r;
          r
        end
      end

let ite m c t e = run_op m [ c; t; e ] (fun () -> ite_rec m c t e)

(* n-ary folds pin the whole operand list up front — the not-yet-folded
   tail must survive any collection triggered while folding the head *)
let conj m ts = run_op m ts (fun () -> List.fold_left (band_rec m) True ts)
let disj m ts = run_op m ts (fun () -> List.fold_left (bor_rec m) False ts)

let cofactor_rec m t v b =
  let lv = m.level_of_var.(v) in
  let rec go t =
    match t with
    | False | True -> t
    | Node n ->
        if Array.unsafe_get m.level_of_var n.v > lv then t
        else if n.v = v then if b then n.hi else n.lo
        else mk m n.v (go n.lo) (go n.hi)
  in
  go t

let cofactor m t v b = run_op m [ t ] (fun () -> cofactor_rec m t v b)

(* A quantified-variable set as a flat bool array, validated against
   the manager's variable range. *)
let var_set m vars =
  let vset = Array.make m.nvars false in
  List.iter
    (fun v ->
      if v < 0 || v >= m.nvars then invalid_arg "Bdd: variable out of range";
      vset.(v) <- true)
    vars;
  vset

(* Quantification: membership probed in a flat bool array; results
   memoized per call keyed by node uid (valid because the var set is
   fixed for the call). *)
let quantify_impl m ~disjunctive vset t =
  let cache = Itab.create 256 False in
  let combine a b = if disjunctive then bor_rec m a b else band_rec m a b in
  let rec go t =
    match t with
    | False | True -> t
    | Node n -> (
        let i = Itab.find_idx cache n.uid in
        if i >= 0 then Itab.value cache i
        else begin
          let r =
            if vset.(n.v) then combine (go n.lo) (go n.hi)
            else mk m n.v (go n.lo) (go n.hi)
          in
          Itab.add cache n.uid r;
          r
        end)
  in
  go t

let quantify m ~disjunctive vars t =
  let vset = var_set m vars in
  run_op m [ t ] (fun () -> quantify_impl m ~disjunctive vset t)

let exists m vars t = quantify m ~disjunctive:true vars t
let forall m vars t = quantify m ~disjunctive:false vars t

(* Fused AND-EXISTS: quantifies while conjoining, pruning as soon as a
   branch reaches True under the quantifier. *)
let and_exists_impl m vset f g =
  let cache = Itab.create 1024 False in
  let rec go f g =
    match (f, g) with
    | False, _ | _, False -> False
    | True, True -> True
    | _ ->
        let fid = id f and gid = id g in
        let key = if fid <= gid then pack2 fid gid else pack2 gid fid in
        let i = Itab.find_idx cache key in
        if i >= 0 then Itab.value cache i
        else begin
          let l = min (lvl m f) (lvl m g) in
          let v = m.var_of_level.(l) in
          let flo, fhi = cof f v and glo, ghi = cof g v in
          let r =
            if vset.(v) then begin
              let lo = go flo glo in
              if is_true lo then True else bor_rec m lo (go fhi ghi)
            end
            else mk m v (go flo glo) (go fhi ghi)
          in
          Itab.add cache key r;
          r
        end
  in
  go f g

let and_exists m vars f g =
  let vset = var_set m vars in
  run_op m [ f; g ] (fun () -> and_exists_impl m vset f g)

let support _m t =
  let seen = Hashtbl.create 64 in
  let vars = Hashtbl.create 16 in
  let rec go t =
    match t with
    | False | True -> ()
    | Node n ->
        if not (Hashtbl.mem seen n.uid) then begin
          Hashtbl.add seen n.uid ();
          Hashtbl.replace vars n.v ();
          go n.lo;
          go n.hi
        end
  in
  go t;
  Hashtbl.fold (fun v () acc -> v :: acc) vars [] |> List.sort Int.compare

(* Multi-operand fused AND-EXISTS with early quantification: fold the
   conjuncts left to right, and quantify each variable out with the
   conjunct in which it occurs for the last time — at that point no
   remaining conjunct mentions it, so
     exists V (c0 & c1 & ... & cn)
   = exists V_n (... (exists V_1 ((exists V_0 c0) & c1) ...) & cn)
   where V_i is the set of variables whose last occurrence is c_i.
   Intermediate results never carry variables that are already dead,
   which is the whole point of a partitioned transition relation.
   Conjunct order is the caller's ordering heuristic; correctness does
   not depend on it. *)
let and_exists_list m vars conjuncts =
  match conjuncts with
  | [] -> True
  | [ f ] -> exists m vars f
  | _ ->
      let fs = Array.of_list conjuncts in
      let n = Array.length fs in
      let qset = var_set m vars in
      (* last.(v) = index of the last conjunct whose support contains v *)
      let last = Array.make m.nvars (-1) in
      Array.iteri
        (fun i f -> List.iter (fun v -> last.(v) <- i) (support m f))
        fs;
      let quantify_at = Array.make n [] in
      Array.iteri
        (fun v l -> if qset.(v) && l >= 0 then quantify_at.(l) <- v :: quantify_at.(l))
        last;
      run_op m conjuncts (fun () ->
          let acc = ref True in
          for i = 0 to n - 1 do
            acc :=
              (match quantify_at.(i) with
              | [] -> band_rec m !acc fs.(i)
              | q -> and_exists_impl m (var_set m q) !acc fs.(i))
          done;
          !acc)

(* Variable renaming. The precondition is stated against the ORDER, not
   the variable indices: a substitution that is monotone on indices can
   be non-monotone on levels once the manager has been reordered, and
   the structural rewrite below would then silently build an unreduced
   (wrong) diagram. The dispatcher checks the substitution on the
   support — injectivity is required; level-monotonicity selects the
   fast structural path, anything else falls back to a bottom-up ITE
   composition that is correct for every injective substitution. *)
let rename m subst t =
  match t with
  | False | True -> t
  | Node _ ->
      let sup = support m t in
      let targets =
        List.map
          (fun v ->
            let v' = subst v in
            if v' < 0 || v' >= m.nvars then
              invalid_arg "Bdd.rename: target variable out of range";
            v')
          sup
      in
      let seen = Hashtbl.create 16 in
      List.iter
        (fun v' ->
          if Hashtbl.mem seen v' then
            invalid_arg "Bdd.rename: substitution not injective on support";
          Hashtbl.add seen v' ())
        targets;
      let by_level =
        List.sort
          (fun a b -> compare m.level_of_var.(a) m.level_of_var.(b))
          sup
      in
      let monotone =
        let rec chk prev = function
          | [] -> true
          | v :: rest ->
              let l' = m.level_of_var.(subst v) in
              l' > prev && chk l' rest
        in
        chk (-1) by_level
      in
      if monotone then
        run_op m [ t ] (fun () ->
            let cache = Itab.create 256 False in
            let rec go t =
              match t with
              | False | True -> t
              | Node n -> (
                  let i = Itab.find_idx cache n.uid in
                  if i >= 0 then Itab.value cache i
                  else begin
                    (* level-monotone on the support: children map to
                       strictly deeper levels, so the structural rewrite
                       preserves reducedness *)
                    let r = mk m (subst n.v) (go n.lo) (go n.hi) in
                    Itab.add cache n.uid r;
                    r
                  end)
            in
            go t)
      else
        run_op m [ t ] (fun () ->
            let cache = Itab.create 256 False in
            let rec go t =
              match t with
              | False | True -> t
              | Node n -> (
                  let i = Itab.find_idx cache n.uid in
                  if i >= 0 then Itab.value cache i
                  else begin
                    let lo = go n.lo in
                    let hi = go n.hi in
                    (* injectivity on the support guarantees no capture:
                       the renamed subtrees cannot mention the fresh
                       literal *)
                    let r = ite_rec m (var m (subst n.v)) hi lo in
                    Itab.add cache n.uid r;
                    r
                  end)
            in
            go t)

let restrict_cube m assigns t =
  List.fold_left (fun acc (v, b) -> cofactor m acc v b) t assigns

let any_sat _m t =
  let rec go t acc =
    match t with
    | True -> List.rev acc
    | False -> raise Not_found
    | Node n -> if is_false n.hi then go n.lo ((n.v, false) :: acc) else go n.hi ((n.v, true) :: acc)
  in
  go t []

(* Model counting against the LEVEL structure: the counted space is the
   variables with index < nvars, but the DAG descends in level order,
   so the "free variables skipped between a parent and a child" are
   counted through a per-level prefix sum. Under the identity order
   this reduces to exactly the index arithmetic the kernel always used
   (bit-identical floats). *)
let sat_count m ~nvars t =
  if nvars < 0 then invalid_arg "Bdd.sat_count: negative nvars";
  let nlev = m.nvars in
  (* cnt_upto.(l) = counted variables sitting at levels < l *)
  let cnt_upto = Array.make (nlev + 1) 0 in
  for l = 0 to nlev - 1 do
    cnt_upto.(l + 1) <-
      cnt_upto.(l) + (if m.var_of_level.(l) < nvars then 1 else 0)
  done;
  let in_levels = cnt_upto.(nlev) in
  (* counted indices beyond the manager's variables (callers may count
     over a space wider than the manager) are free everywhere *)
  let extra = nvars - in_levels in
  (* precomputed powers of two replace the Float.pow call that used to
     run on every node and every leaf *)
  let pow2 = Array.init (nvars + 1) (fun i -> Float.ldexp 1.0 i) in
  let cache = Hashtbl.create 256 in
  (* count over the subspace of levels >= froml *)
  let rec go t froml =
    match t with
    | False -> 0.0
    | True -> pow2.(in_levels - cnt_upto.(froml) + extra)
    | Node n ->
        if n.v >= nvars then
          invalid_arg
            (Printf.sprintf "Bdd.sat_count: nvars = %d but support contains variable %d"
               nvars n.v);
        let l = m.level_of_var.(n.v) in
        let below =
          match Hashtbl.find_opt cache n.uid with
          | Some c -> c
          | None ->
              let c = go n.lo (l + 1) +. go n.hi (l + 1) in
              Hashtbl.add cache n.uid c;
              c
        in
        below *. pow2.(cnt_upto.(l) - cnt_upto.(froml))
  in
  go t 0

let eval _m t assign =
  let rec go t =
    match t with
    | True -> true
    | False -> false
    | Node n -> if assign n.v then go n.hi else go n.lo
  in
  go t

let iter_sat m ~vars f t =
  let k = Array.length vars in
  let buf = Array.make k false in
  let rec go i t =
    if i = k then begin
      match t with
      | True -> f buf
      | False -> ()
      | Node _ -> invalid_arg "Bdd.iter_sat: support escapes vars"
    end
    else if not (is_false t) then begin
      let v = vars.(i) in
      (* [t] stays live across the whole low-branch enumeration, which
         runs further cofactor operations: pin it *)
      pinned m t (fun () ->
          buf.(i) <- false;
          go (i + 1) (cofactor m t v false);
          buf.(i) <- true;
          go (i + 1) (cofactor m t v true))
    end
  in
  if not (is_false t) then go 0 t

let pp ppf t = Format.fprintf ppf "<bdd #%d, %d nodes>" (id t) (size t)

(* ------------------------------------------------------------------ *)
(* Dynamic variable reordering (Rudell sifting)                        *)
(*                                                                     *)
(* The primitive is the adjacent-level swap: exchange the variables at *)
(* levels l and l+1 by rewriting, in place, exactly the level-l nodes  *)
(* that depend on both. Everything else keeps its physical identity,   *)
(* which is what lets every held OCaml value (roots, pinned arguments, *)
(* literals) survive a reorder untouched. A sift garbage-collects      *)
(* first — the same sweep-set contract as [gc] — then maintains exact  *)
(* reference counts so dead nodes are unlinked eagerly during swaps.   *)
(* ------------------------------------------------------------------ *)

let grow_refs m uid =
  let len = Array.length m.refs in
  if uid >= len then begin
    let fresh = Array.make (max (uid + 1) (2 * len)) 0 in
    Array.blit m.refs 0 fresh 0 len;
    m.refs <- fresh
  end

let ref_incr m t =
  match t with
  | False | True -> ()
  | Node n ->
      grow_refs m n.uid;
      m.refs.(n.uid) <- m.refs.(n.uid) + 1

(* Decrement with eager cascade: a node whose count reaches zero is
   unlinked from its subtable, its uid recycled, and its children
   released in turn. Only ever called during a sift. *)
let rec ref_decr m t =
  match t with
  | False | True -> ()
  | Node n ->
      let r = m.refs.(n.uid) - 1 in
      m.refs.(n.uid) <- r;
      if r = 0 then begin
        Itab.remove m.subtables.(n.v) (pack2 (id n.lo) (id n.hi));
        m.free_uids <- n.uid :: m.free_uids;
        m.n_free <- m.n_free + 1;
        m.live <- m.live - 1;
        ref_decr m n.lo;
        ref_decr m n.hi
      end

(* Exact counts from parent edges plus every element of the sweep set
   (roots, in-flight pinned arguments, the literal caches). After the
   preceding gc each live node is reachable, hence counted >= 1. *)
let build_refs m =
  m.refs <- Array.make (max 2 m.next_uid) 0;
  Array.iter
    (fun tab ->
      Itab.iter
        (fun _ node ->
          match node with
          | Node n ->
              ref_incr m n.lo;
              ref_incr m n.hi
          | False | True -> ())
        tab)
    m.subtables;
  Hashtbl.iter (fun _ t -> ref_incr m t) m.roots;
  List.iter (ref_incr m) m.temp_roots;
  Array.iter (ref_incr m) m.pos_lits;
  Array.iter (ref_incr m) m.neg_lits

(* Node lookup/creation inside a swap: the caller's capacity pre-check
   has guaranteed both uid and ceiling headroom, so this never raises.
   A fresh node starts at refcount 0 (the caller takes its reference);
   its children gain one reference each. *)
let mk_swap m v lo hi =
  if lo == hi then lo
  else begin
    let tab = m.subtables.(v) in
    let key = pack2 (id lo) (id hi) in
    let i = Itab.find_idx tab key in
    if i >= 0 then Itab.value tab i
    else begin
      let uid =
        match m.free_uids with
        | u :: rest ->
            m.free_uids <- rest;
            m.n_free <- m.n_free - 1;
            u
        | [] ->
            let u = m.next_uid in
            m.next_uid <- u + 1;
            u
      in
      grow_refs m uid;
      m.refs.(uid) <- 0;
      let n = Node { v; lo; hi; uid } in
      Itab.add tab key n;
      m.live <- m.live + 1;
      if m.live > m.peak_live then m.peak_live <- m.live;
      ref_incr m lo;
      ref_incr m hi;
      n
    end
  end

(* Worst case an adjacent swap allocates two fresh nodes per rewritten
   one; [checked] refuses the swap when that could overrun the node
   ceiling or the uid space (rollbacks run unchecked: they only
   recreate nodes the forward swap just freed). *)
let swap_capacity m k =
  m.live + (2 * k) <= m.max_nodes
  && m.n_free + (uid_limit - m.next_uid) >= 2 * k

(* Swap the variables at levels [l] and [l+1]. Returns false (leaving
   the manager untouched) when [checked] and the capacity test fails. *)
let swap_adjacent m ~checked l =
  let x = m.var_of_level.(l) and y = m.var_of_level.(l + 1) in
  let xtab = m.subtables.(x) in
  (* the nodes to rewrite: level-l nodes with a level-(l+1) child. All
     other x-nodes keep their keys (the subtable is per variable, not
     per level) and simply sink one level with x itself. *)
  let interesting = ref [] in
  let k = ref 0 in
  Itab.iter
    (fun key node ->
      match node with
      | Node n ->
          let dep c = match c with Node c -> c.v = y | False | True -> false in
          if dep n.lo || dep n.hi then begin
            interesting := (key, node) :: !interesting;
            incr k
          end
      | False | True -> ())
    xtab;
  if checked && not (swap_capacity m !k) then false
  else begin
    (* unlink up front: the keys change, and lookups for the rewritten
       children must never hit a stale entry *)
    List.iter (fun (key, _) -> Itab.remove xtab key) !interesting;
    List.iter
      (fun (_, node) ->
        match node with
        | Node n ->
            let f0 = n.lo and f1 = n.hi in
            let f00, f01 =
              match f0 with
              | Node c when c.v = y -> (c.lo, c.hi)
              | _ -> (f0, f0)
            and f10, f11 =
              match f1 with
              | Node c when c.v = y -> (c.lo, c.hi)
              | _ -> (f1, f1)
            in
            (* the rewritten node keeps its uid and physical identity:
               it becomes the level-l y-node over two level-(l+1)
               x-cofactors. It cannot reduce away ([f00] != [f01] or
               [f10] != [f11] since some child really tests y). *)
            let nlo = mk_swap m x f00 f10 in
            let nhi = mk_swap m x f01 f11 in
            (* take the new references before dropping the old ones, so
               a shared cofactor can never be cascade-freed in between *)
            ref_incr m nlo;
            ref_incr m nhi;
            ref_decr m f0;
            ref_decr m f1;
            n.v <- y;
            n.lo <- nlo;
            n.hi <- nhi;
            Itab.add m.subtables.(y) (pack2 (id nlo) (id nhi)) node
        | False | True -> ())
      !interesting;
    m.var_of_level.(l) <- y;
    m.var_of_level.(l + 1) <- x;
    m.level_of_var.(x) <- l + 1;
    m.level_of_var.(y) <- l;
    m.reorder_swapped <- m.reorder_swapped + 1;
    Obs.incr c_reorder_swaps;
    true
  end

(* ---- grouped (block) sifting ---- *)

let set_groups m groups =
  let gid = Array.make m.nvars (-1) in
  let arr =
    List.map
      (fun g ->
        if g = [] then invalid_arg "Bdd.set_groups: empty group";
        List.iter
          (fun v ->
            if v < 0 || v >= m.nvars then
              invalid_arg "Bdd.set_groups: variable out of range";
            if gid.(v) >= 0 then
              invalid_arg "Bdd.set_groups: variable in two groups";
            gid.(v) <- 0)
          g;
        let a = Array.of_list g in
        Array.sort
          (fun a b -> compare m.level_of_var.(a) m.level_of_var.(b))
          a;
        let l0 = m.level_of_var.(a.(0)) in
        Array.iteri
          (fun i v ->
            if m.level_of_var.(v) <> l0 + i then
              invalid_arg "Bdd.set_groups: group not level-contiguous")
          a;
        a)
      groups
  in
  m.groups <- Array.of_list arr

(* The sequence of blocks in level order. Groups that are still
   level-contiguous move as one block; a group broken apart (e.g. by an
   explicit [set_order]) degrades to singletons. *)
let block_sequence m =
  let n = m.nvars in
  let gid = Array.make n (-1) in
  Array.iteri (fun g vars -> Array.iter (fun v -> gid.(v) <- g) vars) m.groups;
  let seq = ref [] in
  let l = ref 0 in
  while !l < n do
    let v = m.var_of_level.(!l) in
    let g = gid.(v) in
    let sz = if g >= 0 then Array.length m.groups.(g) else 1 in
    let contiguous =
      g >= 0
      && sz <= n - !l
      && Array.for_all
           (fun v' ->
             let lv = m.level_of_var.(v') in
             lv >= !l && lv < !l + sz)
           m.groups.(g)
    in
    if contiguous then begin
      seq := Array.init sz (fun i -> m.var_of_level.(!l + i)) :: !seq;
      l := !l + sz
    end
    else begin
      seq := [| v |] :: !seq;
      incr l
    end
  done;
  Array.of_list (List.rev !seq)

(* Exchange the adjacent blocks at positions [i] and [i+1] of [seq]: a
   p-block passes a q-block through p*q adjacent swaps (each level of
   the upper block sinks past the lower block, bottom level first). On
   a capacity abort the completed swaps are rolled back — unchecked,
   they only recreate nodes the forward swaps just freed — so group
   contiguity survives the abort. *)
let swap_blocks m seq i =
  let bp = seq.(i) and bq = seq.(i + 1) in
  let p = Array.length bp and q = Array.length bq in
  let l0 = m.level_of_var.(bp.(0)) in
  let done_swaps = ref [] in
  let ok = ref true in
  (try
     for b = p - 1 downto 0 do
       for s = 0 to q - 1 do
         let l = l0 + b + s in
         if swap_adjacent m ~checked:true l then done_swaps := l :: !done_swaps
         else begin
           ok := false;
           raise Exit
         end
       done
     done
   with Exit -> ());
  if !ok then begin
    seq.(i) <- bq;
    seq.(i + 1) <- bp;
    true
  end
  else begin
    (* newest first: the consed list is already in reverse order *)
    List.iter (fun l -> ignore (swap_adjacent m ~checked:false l)) !done_swaps;
    false
  end

let block_node_count m blk =
  Array.fold_left (fun acc v -> acc + Itab.length m.subtables.(v)) 0 blk

(* Sift one block: walk it to the nearer end, then all the way to the
   other end, tracking the total live count at every position; finish
   at the best position seen. Movement in one direction stops early
   once the table grows past [max_growth] times the best — the
   standard Rudell truncation. *)
let sift_block m seq blk aborted =
  let nb = Array.length seq in
  let idx = ref (-1) in
  Array.iteri (fun i b -> if b == blk then idx := i) seq;
  if !idx >= 0 then begin
    let start = !idx in
    let best_live = ref m.live and best_pos = ref start in
    let cur = ref start in
    let max_growth = 1.2 in
    let move dir =
      let keep_going = ref true in
      while !keep_going do
        if (dir > 0 && !cur >= nb - 1) || (dir < 0 && !cur <= 0) then
          keep_going := false
        else begin
          let i = if dir > 0 then !cur else !cur - 1 in
          if not (swap_blocks m seq i) then begin
            aborted := true;
            keep_going := false
          end
          else begin
            cur := !cur + dir;
            if m.live < !best_live then begin
              best_live := m.live;
              best_pos := !cur
            end;
            if float_of_int m.live > max_growth *. float_of_int !best_live
            then keep_going := false
          end
        end
      done
    in
    if start >= nb / 2 then begin
      move 1;
      if not !aborted then move (-1)
    end
    else begin
      move (-1);
      if not !aborted then move 1
    end;
    (* settle at the best position seen *)
    while (not !aborted) && !cur <> !best_pos do
      let down = !best_pos > !cur in
      let i = if down then !cur else !cur - 1 in
      if swap_blocks m seq i then cur := !cur + (if down then 1 else -1)
      else aborted := true
    done
  end

(* One full sifting pass over all blocks, largest first. Returns true
   when a capacity abort cut the pass short (the manager is left at a
   consistent inter-swap point either way). *)
let sift_all m =
  let seq = block_sequence m in
  if Array.length seq <= 1 then false
  else begin
    let order = Array.copy seq in
    Array.sort
      (fun a b -> compare (block_node_count m b) (block_node_count m a))
      order;
    let aborted = ref false in
    Array.iter (fun blk -> if not !aborted then sift_block m seq blk aborted) order;
    !aborted
  end

(* The full reorder: gc to the minimal live set, build exact refcounts,
   sift, then drop the refs and every op cache (cache entries name
   uids that may have been freed and recycled during the pass). *)
let reorder_internal m =
  m.in_reorder <- true;
  Fun.protect
    ~finally:(fun () ->
      m.in_reorder <- false;
      m.refs <- [||];
      clear_caches m)
    (fun () ->
      ignore (gc m);
      let before = m.live in
      build_refs m;
      let swaps0 = m.reorder_swapped in
      let aborted = sift_all m in
      m.reorder_runs <- m.reorder_runs + 1;
      m.last_reorder_live <- max m.live m.reorder_min;
      m.last_before <- before;
      m.last_after <- m.live;
      Obs.incr c_reorder_runs;
      Obs.set g_reorder_before before;
      Obs.set g_reorder_after m.live;
      Obs.set g_nodes_live m.live;
      Obs.event "bdd.reorder" ~fields:(fun () ->
          [ ("nodes_before", Simcov_util.Json.Int before);
            ("nodes_after", Simcov_util.Json.Int m.live);
            ("swaps", Simcov_util.Json.Int (m.reorder_swapped - swaps0));
            ("aborted", Simcov_util.Json.Bool aborted) ]);
      aborted)

let () = reorder_pass := fun m -> reorder_internal m

let reorder m =
  if m.op_depth > 0 then invalid_arg "Bdd.reorder: operation in flight";
  if m.nvars > 1 then begin
    let aborted = reorder_internal m in
    if aborted then raise (Node_limit m.live)
  end

let set_auto_reorder m ?(ratio = 2.0) ?(min_nodes = 4096) on =
  if ratio <= 1.0 then invalid_arg "Bdd.set_auto_reorder: ratio must exceed 1.0";
  if min_nodes < 1 then invalid_arg "Bdd.set_auto_reorder: non-positive min_nodes";
  m.auto_reorder <- on;
  m.reorder_ratio <- ratio;
  m.reorder_min <- min_nodes;
  if on then m.last_reorder_live <- max m.live min_nodes

let set_order m perm =
  if m.op_depth > 0 then invalid_arg "Bdd.set_order: operation in flight";
  if Array.length perm <> m.nvars then
    invalid_arg "Bdd.set_order: not a permutation of the variables";
  let seen = Array.make (max 1 m.nvars) false in
  Array.iter
    (fun v ->
      if v < 0 || v >= m.nvars || seen.(v) then
        invalid_arg "Bdd.set_order: not a permutation of the variables";
      seen.(v) <- true)
    perm;
  if m.nvars > 1 then begin
    m.in_reorder <- true;
    Fun.protect
      ~finally:(fun () ->
        m.in_reorder <- false;
        m.refs <- [||];
        clear_caches m)
      (fun () ->
        ignore (gc m);
        build_refs m;
        (* selection in place: bubble the variable destined for level l
           up from wherever it currently sits *)
        let aborted = ref false in
        for l = 0 to m.nvars - 1 do
          if not !aborted then begin
            let j = m.level_of_var.(perm.(l)) in
            let k = ref (j - 1) in
            while (not !aborted) && !k >= l do
              if swap_adjacent m ~checked:true !k then decr k
              else aborted := true
            done
          end
        done;
        if !aborted then raise (Node_limit m.live))
  end

(* ------------------------------------------------------------------ *)

let to_dot ?(var_name = fun v -> "x" ^ string_of_int v) m t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph bdd {\n";
  Buffer.add_string buf "  node [shape=circle];\n";
  Buffer.add_string buf "  F [shape=box, label=\"0\"];\n";
  Buffer.add_string buf "  T [shape=box, label=\"1\"];\n";
  let seen = Hashtbl.create 64 in
  (* uids per level, in discovery order — the rank groups that keep a
     reordered diagram drawn in order *)
  let per_level = Array.make (max 1 m.nvars) [] in
  let node_ref = function False -> "F" | True -> "T" | Node n -> "n" ^ string_of_int n.uid in
  let rec go t =
    match t with
    | False | True -> ()
    | Node n ->
        if not (Hashtbl.mem seen n.uid) then begin
          Hashtbl.add seen n.uid ();
          let l = m.level_of_var.(n.v) in
          per_level.(l) <- n.uid :: per_level.(l);
          Buffer.add_string buf
            (Printf.sprintf "  n%d [label=\"%s L%d\"];\n" n.uid (var_name n.v) l);
          Buffer.add_string buf
            (Printf.sprintf "  n%d -> %s [style=dashed];\n" n.uid (node_ref n.lo));
          Buffer.add_string buf (Printf.sprintf "  n%d -> %s;\n" n.uid (node_ref n.hi));
          go n.lo;
          go n.hi
        end
  in
  go t;
  (* one rank per populated level, top of the order first *)
  Array.iter
    (fun uids ->
      match uids with
      | [] -> ()
      | _ ->
          Buffer.add_string buf "  { rank=same;";
          List.iter
            (fun uid -> Buffer.add_string buf (Printf.sprintf " n%d;" uid))
            (List.rev uids);
          Buffer.add_string buf " }\n")
    per_level;
  Buffer.add_string buf (Printf.sprintf "  root [shape=none, label=\"\"];\n  root -> %s;\n" (node_ref t));
  Buffer.add_string buf "}\n";
  Buffer.contents buf
