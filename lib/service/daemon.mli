(** The streaming front-end: a Unix-domain-socket job server and its
    line-protocol clients.

    {b Protocol.} Newline-delimited JSON, one request per connection:
    the client sends a single line and reads lines until the server
    closes. Requests:

    - a [simcov-job/1] job object (see {!Job.of_json}): the server
      enqueues it and streams back, in order, JSONL trace events and
      throttled minified [simcov-metrics/1] snapshots while the job
      runs, then exactly one [simcov-job/1] {e result envelope} — the
      only line carrying a [status] member — and closes. A job the
      queue cannot accept (full, or draining) resolves immediately to
      a [rejected] envelope with exit code 6; a malformed job line
      likewise, carrying the parse error.
    - [{"op":"jobs"}]: one [simcov-jobs/1] queue snapshot line.
    - [{"op":"cancel","id":ID}]: one [{"ok":BOOL,"id":ID}] line.
    - [{"op":"ping"}]: one [{"ok":true}] line.

    {b Lifecycle.} {!serve} owns the socket path (any stale file is
    replaced) and accepts until SIGTERM or SIGINT, then drains: queued
    jobs resolve [cancelled], running jobs are stopped at the next
    batch boundary through their durable checkpoint ([interrupted],
    exit 130), every open connection still receives its final
    envelope, the socket file is removed, and {!serve} returns [Ok ()]
    — the CLI's exit 0. A client whose connection drops mid-stream has
    its job cancelled. *)

module Json = Simcov_util.Json

val serve :
  socket:string ->
  ?queue_limit:int ->
  ?workers:int ->
  ?domain_tokens:int ->
  ?cache:Model_cache.t ->
  unit ->
  (unit, string) result
(** Run the daemon until SIGTERM/SIGINT, then drain. [Error msg] only
    on socket setup failure (the CLI's exit 7). *)

(** {1 Clients}

    Each connects to [socket], performs one request, and returns the
    server's reply; [Error msg] on connection or protocol failure (the
    CLI's exit 7). *)

val submit :
  socket:string -> ?on_event:(Json.t -> unit) -> Job.t -> (Json.t, string) result
(** Submit a job and block until its result envelope, feeding each
    streamed trace/metrics line to [on_event] as it arrives. *)

val list_jobs : socket:string -> (Json.t, string) result
val cancel_job : socket:string -> id:string -> (Json.t, string) result
val ping : socket:string -> (Json.t, string) result
