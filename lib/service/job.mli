(** Job specifications: the [simcov-job/1] schema.

    One {!t} describes one unit of work the service can execute — the
    same work the one-shot CLI subcommands used to wire up by hand:
    the full DLX validation, a lint run, a fault campaign, a coverage
    snapshot merge/minimize, or the symbolic statistics of the derived
    control model. The CLI subcommands construct jobs from flags; the
    daemon parses them off the wire with {!of_json}; both hand them to
    [Service.run].

    {b Wire format.} A job request is one JSON object:

    {v
    {"schema":"simcov-job/1","kind":"coverage","id":"cov-1",
     "timeout_s":30.0,"max_nodes":100000,
     "params":{"model":"dlx","faults":"fsm","seed":2026,...}}
    v}

    [schema], [id], [timeout_s], [max_nodes] and every [params] field
    are optional; omitted fields take the CLI defaults, so the minimal
    [{"kind":"coverage"}] is a complete job. {!of_json} is total and
    pure; {!to_json} round-trips exactly.

    The service replies with the {e result envelope}, also tagged
    [simcov-job/1] — distinguished from a request by the presence of
    [status]:

    {v
    {"schema":"simcov-job/1","id":"cov-1","kind":"coverage",
     "status":"done","exit_code":0,"report":{...simcov-campaign/1...}}
    v}

    [report] holds the job's existing versioned report
    ([simcov-lint/1], [simcov-fsmlint/1], [simcov-campaign/1],
    [simcov-validate/1], [simcov-stats/1], [simcov-merge/1],
    [simcov-minimize/1]); [error] appears instead on failures. *)

module Json = Simcov_util.Json

type reorder_mode = Reorder_off | Reorder_on | Reorder_auto
(** BDD dynamic-variable-reordering policy for the job's symbolic
    phase; wire values ["off"] (the default — omitted when rendering,
    so pre-reorder requests round-trip unchanged), ["on"], ["auto"]. *)

val reorder_name : reorder_mode -> string
val reorder_of_name : string -> reorder_mode option

type validate_params = {
  va_regs : int;  (** registers in the reduced file (default 4) *)
  va_track_dest : bool;
  va_observable_dest : bool;
  va_seed : int;
  va_lanes : int;
  va_jobs : int;
  va_reorder : reorder_mode;
}

type lint_params = {
  li_model : string;  (** builtin name or circuit file path *)
  li_against : string option;
  li_fsm : bool;  (** FSM-level (SA6xx) instead of netlist passes *)
  li_suite : string option;  (** suite file, [--fsm] only *)
  li_k_bound : int;
  li_fail_on : Simcov_analysis.Diag.severity;
}

type fault_kind = Fsm_faults | Stuckat_faults

type coverage_params = {
  cov_model : string;
  cov_faults : fault_kind;
  cov_seed : int;
  cov_count : int;  (** FSM faults sampled per kind *)
  cov_steps : int;  (** stimulus length for stuck-at campaigns *)
  cov_fail_under : float option;
  cov_lanes : int;
  cov_jobs : int;
  cov_checkpoint : string option;
  cov_checkpoint_every : int;
  cov_resume : string option;
  cov_reorder : reorder_mode;
      (** accepted and round-tripped for schema uniformity; the
          campaign engines are simulation-only today, so it only
          matters to jobs with a symbolic leg *)
}

type stats_params = { st_reorder : reorder_mode }

type spec =
  | Validate_dlx of validate_params
  | Lint of lint_params
  | Coverage of coverage_params
  | Merge of { inputs : string list; output : string }
  | Minimize of { inputs : string list }
  | Stats of stats_params

type t = {
  id : string option;  (** caller-chosen id echoed in the envelope *)
  spec : spec;
  timeout_s : float option;  (** per-job wall-clock budget *)
  max_nodes : int option;  (** per-job BDD node budget *)
}

val schema_id : string
(** ["simcov-job/1"]. *)

val kind : t -> string
(** ["validate-dlx"], ["lint"], ["coverage"], ["merge"], ["minimize"]
    or ["stats"]. *)

val default_validate : validate_params
val default_lint : model:string -> lint_params
val default_coverage : model:string -> coverage_params
val default_stats : stats_params

val make : ?id:string -> ?timeout_s:float -> ?max_nodes:int -> spec -> t

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result
(** Total inverse of {!to_json}; unknown [kind]s and ill-typed fields
    yield [Error], unknown {e fields} are ignored (schema growth). *)

(** {1 Result envelope} *)

type status = Done | Failed | Interrupted | Cancelled | Rejected

val status_name : status -> string
(** ["done"], ["failed"], ["interrupted"], ["cancelled"],
    ["rejected"]. *)

val envelope :
  id:string ->
  kind:string ->
  status:status ->
  exit_code:int ->
  ?error:string ->
  ?report:Json.t ->
  unit ->
  Json.t
(** The result envelope described above. *)
