(** Bounded job queue and domain-budgeted scheduler.

    The daemon's execution core, usable in-process by tests: a FIFO
    queue of {!Job.t}s bounded at [queue_limit], drained by [workers]
    worker domains, under one global {e domain-token} budget shared
    with the campaign engine's [--jobs] sharding. A worker holds one
    token implicitly; before running a job that declares [jobs = n] it
    acquires up to [n - 1] extra tokens (taking only what is free —
    never blocking) and passes the total as the campaign's
    [max_workers] cap, so concurrent jobs time-share the machine's
    cores without changing any job's report (shard decomposition stays
    exactly as requested).

    Each job runs under its own labeled {!Simcov_obs.Obs} registry:
    its trace events (including the [job.progress] stream) and
    throttled [simcov-metrics/1] snapshots are forwarded line-by-line
    to the submitter's [on_line], and never interleave with a
    concurrent job's. The final [simcov-job/1] result envelope goes to
    [on_done].

    Cancellation: {!cancel} on a queued job resolves it immediately
    with status [cancelled]; on a running job it flips the job's
    [should_stop], which drains the campaign through its durable
    checkpoint and resolves with status [interrupted] (exit 130).
    {!drain} does this to the whole pool — the daemon's SIGTERM path. *)

module Json = Simcov_util.Json

type t

val create :
  ?cache:Model_cache.t ->
  ?queue_limit:int ->
  ?workers:int ->
  ?domain_tokens:int ->
  unit ->
  t
(** Defaults: the shared model cache, queue bound 64, 2 worker
    domains, [Domain.recommended_domain_count ()] domain tokens. *)

val submit :
  t ->
  ?on_line:(string -> unit) ->
  ?on_done:(Json.t -> unit) ->
  Job.t ->
  (string, string) result
(** Enqueue a job. Returns the assigned id (the job's own [id] when
    given and unused, a generated [job-N] otherwise) or [Error reason]
    when the queue is full or the pool is draining — the daemon maps
    that to a [rejected] envelope with exit code 6. [on_line] receives
    streamed trace/metrics lines (called from a worker domain; must be
    thread-safe). [on_done] receives the final envelope exactly once. *)

val cancel : t -> string -> bool
(** [true] if the id named a queued or running job. *)

val list : t -> Json.t
(** The [simcov-jobs/1] snapshot:
    [{"schema":"simcov-jobs/1","jobs":[{"id","kind","state"},...]}]
    with [state] one of [queued], [running], or a final
    {!Job.status_name}. *)

val wait : t -> unit
(** Block until every submitted job has resolved. *)

val drain : t -> unit
(** Stop accepting, cancel every queued job, interrupt every running
    job (through the durable checkpoint path), wait for the workers to
    exit. Idempotent. *)
