module Budget = Simcov_util.Budget
module Crc32 = Simcov_util.Crc32
module Json = Simcov_util.Json
module Obs = Simcov_obs.Obs
module Circuit = Simcov_netlist.Circuit
module Serialize = Simcov_netlist.Serialize
module Fsm = Simcov_fsm.Fsm
module Lint = Simcov_analysis.Lint
module Fsm_lint = Simcov_analysis.Fsm_lint

let c_hits = Obs.counter "service.cache.hits"
let c_misses = Obs.counter "service.cache.misses"
let c_evictions = Obs.counter "service.cache.evictions"
let g_entries = Obs.gauge "service.cache.entries"
let g_bytes = Obs.gauge "service.cache.bytes"

type sym_entry = {
  sym : Simcov_symbolic.Symfsm.t;
  s_reorder : bool;  (** job asked for reordering: daemon may sift it *)
  s_lock : Mutex.t;  (** serializes jobs sharing this manager *)
}

type payload =
  | P_circuit of Circuit.t * string  (** circuit, canonical key *)
  | P_fsm of Fsm.t
  | P_lint of Lint.report
  | P_fsm_lint of Fsm_lint.report
  | P_sym of sym_entry  (** compiled symbolic machine (live BDD manager) *)

type entry = { payload : payload; bytes : int; mutable tick : int }

type t = {
  max_bytes : int;
  max_entries : int;
  table : (string, entry) Hashtbl.t;
  mutable total_bytes : int;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable eviction_hook : (unit -> unit) option;
  lock : Mutex.t;
}

let create ?(max_bytes = 64 * 1024 * 1024) ?(max_entries = 256) () =
  {
    max_bytes;
    max_entries;
    table = Hashtbl.create 64;
    total_bytes = 0;
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    eviction_hook = None;
    lock = Mutex.create ();
  }

let shared = create ()

let locked t f = Mutex.protect t.lock f

(* evict least-recently-used entries until within both bounds; the
   table is small (hundreds of entries at most), so a linear scan per
   eviction is cheaper than maintaining an ordered structure *)
let enforce_bounds t =
  while
    Hashtbl.length t.table > t.max_entries || t.total_bytes > t.max_bytes
  do
    let victim =
      Hashtbl.fold
        (fun k e acc ->
          match acc with
          | Some (_, oldest) when oldest.tick <= e.tick -> acc
          | _ -> Some (k, e))
        t.table None
    in
    match victim with
    | None -> t.total_bytes <- 0 (* empty table: bounds are vacuous *)
    | Some (k, e) ->
        Hashtbl.remove t.table k;
        t.total_bytes <- t.total_bytes - e.bytes;
        t.evictions <- t.evictions + 1;
        Obs.incr c_evictions
  done

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some e ->
          t.clock <- t.clock + 1;
          e.tick <- t.clock;
          t.hits <- t.hits + 1;
          Obs.incr c_hits;
          Some e.payload
      | None ->
          t.misses <- t.misses + 1;
          Obs.incr c_misses;
          None)

let set_eviction_hook t hook =
  locked t (fun () -> t.eviction_hook <- Some hook)

let store t key payload ~bytes =
  let fire =
    locked t (fun () ->
        (match Hashtbl.find_opt t.table key with
        | Some old -> t.total_bytes <- t.total_bytes - old.bytes
        | None -> ());
        t.clock <- t.clock + 1;
        let evictions0 = t.evictions in
        Hashtbl.replace t.table key { payload; bytes; tick = t.clock };
        t.total_bytes <- t.total_bytes + bytes;
        enforce_bounds t;
        Obs.set g_entries (Hashtbl.length t.table);
        Obs.set g_bytes t.total_bytes;
        if t.evictions > evictions0 then t.eviction_hook else None)
  in
  (* fired OUTSIDE the lock: the hook may take arbitrary time (it
     typically schedules a between-jobs BDD reorder) and must not
     serialize cache traffic behind it *)
  match fire with Some hook -> hook () | None -> ()

let counts t = locked t (fun () -> (t.hits, t.misses, t.evictions))
let stats t = locked t (fun () -> (Hashtbl.length t.table, t.total_bytes))

(* ---- circuits ---- *)

(* Content fingerprint: (byte length, CRC-32), not CRC-32 alone. A
   32-bit checksum WILL collide across the lifetime of a long-lived
   daemon (and is trivial to collide deliberately); the length makes
   any same-length forgery still a 1-in-2^32 accident instead of a
   silently served wrong model, and same-prefix truncations (the
   common corruption) always differ in length. *)
let fingerprint s =
  Printf.sprintf "%d:%s" (String.length s) (Crc32.to_hex (Crc32.string s))

let canonical_of c =
  let s = Serialize.to_string c in
  ("circ:" ^ fingerprint s, String.length s)

let read_file path =
  try Ok (In_channel.with_open_bin path In_channel.input_all)
  with Sys_error e -> Error e

let builtin_circuit = function
  | "dlx-control" -> Some (fun () -> Simcov_dlx.Control.build ())
  | "dlx-test" -> Some (fun () -> fst (Simcov_dlx.Control.derive_test_model ()))
  | _ -> None

let circuit_of_spec t spec =
  let cached raw_key name build =
    match find t raw_key with
    | Some (P_circuit (c, canonical)) -> Ok (c, name, canonical)
    | Some _ | None -> (
        match build () with
        | Error e -> Error e
        | Ok c ->
            let canonical, bytes = canonical_of c in
            store t raw_key (P_circuit (c, canonical)) ~bytes;
            Ok (c, name, canonical))
  in
  match builtin_circuit spec with
  | Some build ->
      cached ("builtin:" ^ spec) spec (fun () -> Ok (build ()))
  | None -> (
      match read_file spec with
      | Error e -> Error e
      | Ok text ->
          let raw_key = "file:" ^ fingerprint text in
          cached raw_key (Filename.basename spec) (fun () ->
              Serialize.of_string text
              |> Result.map_error Serialize.error_to_string))

(* ---- tabulated FSMs ---- *)

(* a tabulated machine's footprint is its transition tables *)
let fsm_bytes m = (8 * 2 * Fsm.n_transitions m) + 256

let fsm_of_spec t spec =
  let cached key name build =
    match find t key with
    | Some (P_fsm m) -> Ok (m, name, key)
    | Some _ | None -> (
        match build () with
        | Error e -> Error e
        | Ok m ->
            store t key (P_fsm m) ~bytes:(fsm_bytes m);
            Ok (m, name, key))
  in
  match spec with
  | "dlx" | "dlx-test" ->
      cached "fsm-builtin:dlx-test" "dlx-test" (fun () ->
          Ok
            (Fsm.tabulate
               (Simcov_dlx.Testmodel.build Simcov_dlx.Testmodel.default)))
  | "dsp" ->
      cached "fsm-builtin:dsp" "dsp" (fun () ->
          Ok (Fsm.tabulate (Simcov_dsp.Mac.Testmodel.build ())))
  | spec -> (
      match circuit_of_spec t spec with
      | Error e -> Error e
      | Ok (c, name, canonical) ->
          cached ("fsm:" ^ canonical) name (fun () ->
              match Circuit.to_fsm c with
              | exception Invalid_argument msg ->
                  Error (Printf.sprintf "cannot enumerate as an FSM (%s)" msg)
              | m -> Ok (Fsm.tabulate m)))

(* ---- compiled symbolic machines ---- *)

module Symfsm = Simcov_symbolic.Symfsm

(* a manager's footprint is dominated by its unique table and caches *)
let sym_bytes (sf : Symfsm.t) =
  (48 * Simcov_bdd.Bdd.node_count sf.Symfsm.man) + 4096

(* Cache a compiled symbolic machine — the expensive part of a [stats]
   job — keyed by the circuit's canonical key AND the reorder mode, so
   an [off] job can never observe an order mutated by an [on]/[auto]
   job (byte-identical reports stay byte-identical). The per-entry
   mutex serializes jobs that share the live manager; the daemon's
   between-jobs sifting takes the same mutex ({!reorder_cached}). *)
let sym_of_circuit t ~reorder ~canonical build =
  let mode = Job.reorder_name reorder in
  let key = Printf.sprintf "sym:%s:%s" canonical mode in
  let fresh () =
    let sf = build () in
    let se =
      {
        sym = sf;
        s_reorder = reorder <> Job.Reorder_off;
        s_lock = Mutex.create ();
      }
    in
    store t key (P_sym se) ~bytes:(sym_bytes sf);
    se
  in
  match find t key with
  | Some (P_sym se) -> se
  | Some _ | None -> fresh ()

(* Between-jobs reordering of every cached reorder-enabled manager.
   [try_lock]: a manager busy under a running job is simply skipped —
   it will be sifted after a later job instead; never block the worker
   on another job's traversal. *)
let reorder_cached t =
  let syms =
    locked t (fun () ->
        Hashtbl.fold
          (fun _ e acc ->
            match e.payload with
            | P_sym se when se.s_reorder -> se :: acc
            | _ -> acc)
          t.table [])
  in
  List.iter
    (fun se ->
      if Mutex.try_lock se.s_lock then
        Fun.protect
          ~finally:(fun () -> Mutex.unlock se.s_lock)
          (fun () -> Symfsm.reorder_now se.sym))
    syms

(* ---- lint verdicts ---- *)

let report_bytes json = String.length (Json.to_string ~indent:0 json)

let lint t ~budget ~name ~key ?against c =
  let cache_key =
    "lint:" ^ key ^ ":"
    ^ match against with Some (_, ak) -> ak | None -> "-"
  in
  match find t cache_key with
  | Some (P_lint r) -> r
  | Some _ | None ->
      let r = Lint.run ~budget ~name ?against:(Option.map fst against) c in
      if r.Lint.truncated = None then
        store t cache_key (P_lint r) ~bytes:(report_bytes (Lint.to_json r));
      r

let fsm_lint t ~budget ~name ~key ~k_bound ?suite m =
  match suite with
  | Some _ -> Fsm_lint.run ~budget ~name ~k_bound ?suite m
  | None -> (
      let cache_key = Printf.sprintf "fsmlint:%s:k%d" key k_bound in
      match find t cache_key with
      | Some (P_fsm_lint r) -> r
      | Some _ | None ->
          let r = Fsm_lint.run ~budget ~name ~k_bound m in
          if r.Fsm_lint.truncated = None then
            store t cache_key (P_fsm_lint r)
              ~bytes:(report_bytes (Fsm_lint.to_json r));
          r)
